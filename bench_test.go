// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§4), plus ablations for the design choices DESIGN.md calls
// out. Absolute numbers reflect the interpreter substrate; the comparisons
// between P (suffix "/P") and the FACADE-transformed P' (suffix "/P2")
// reproduce the paper's shapes. Custom metrics reported per benchmark:
//
//	gc-ms/op        stop-the-world collection time
//	peakMB          peak memory (heap + native)
//	edges/s         GraphChi throughput (Figure 4a)
//	dataObjs        heap objects allocated for data classes
//	instr/s         transform compilation speed
//
// Run everything: go test -bench=. -benchmem .
package repro

import (
	"fmt"
	"testing"

	"repro/facade"
	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/gps"
	"repro/internal/graphchi"
	"repro/internal/heap"
	"repro/internal/hyracks"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/offheap"
	"repro/internal/vm"
)

// benchPair caches compiled (P, P') pairs across benchmarks.
var benchProgs = map[string][2]*ir.Program{}

func programs(b *testing.B, name string, build func() (*ir.Program, *ir.Program, error)) (*ir.Program, *ir.Program) {
	b.Helper()
	if pair, ok := benchProgs[name]; ok {
		return pair[0], pair[1]
	}
	p, p2, err := build()
	if err != nil {
		b.Fatal(err)
	}
	benchProgs[name] = [2]*ir.Program{p, p2}
	return p, p2
}

// ---------------------------------------------------------------------------
// Table 2: GraphChi PR/CC across heap budgets.

func BenchmarkTable2GraphChi(b *testing.B) {
	p, p2 := programs(b, "graphchi", graphchi.BuildPrograms)
	g := datagen.PowerLawGraph(8000, 120000, 42)
	for _, app := range []graphchi.App{graphchi.PageRank, graphchi.ConnectedComponents} {
		sg := graphchi.Shard(g, 20, app == graphchi.ConnectedComponents)
		for _, hp := range []struct {
			label string
			bytes int64
		}{{"8g", 24 << 20}, {"6g", 18 << 20}, {"4g", 12 << 20}} {
			for _, pr := range []struct {
				label string
				prog  *ir.Program
			}{{"P", p}, {"P2", p2}} {
				b.Run(fmt.Sprintf("%s-%s/%s", app, hp.label, pr.label), func(b *testing.B) {
					cfg := graphchi.Config{App: app, Workers: 4, Iterations: 2, MemoryBudget: hp.bytes / 2}
					var last *graphchi.Metrics
					for i := 0; i < b.N; i++ {
						m, err := vm.New(pr.prog, vm.Config{HeapSize: int(hp.bytes)})
						if err != nil {
							b.Fatal(err)
						}
						met, _, err := graphchi.Run(m, sg, cfg)
						if err != nil {
							b.Fatal(err)
						}
						last = met
					}
					reportGraphchi(b, last)
				})
			}
		}
	}
}

func reportGraphchi(b *testing.B, m *graphchi.Metrics) {
	b.ReportMetric(float64(m.GT.Milliseconds()), "gc-ms/op")
	b.ReportMetric(float64(m.PM)/(1<<20), "peakMB")
	b.ReportMetric(float64(m.DataObjects), "dataObjs")
	b.ReportMetric(m.Throughput(), "edges/s")
	// Pause-time distribution of the last run, from the observability
	// snapshot (latency shape matters as much as total GT for the paper's
	// argument; a P' run with zero collections reports zeros).
	pauses := m.Obs.Histograms[obs.HistGCPause]
	b.ReportMetric(float64(pauses.Quantile(0.5))/1e6, "p50pause-ms")
	b.ReportMetric(float64(pauses.Quantile(0.95))/1e6, "p95pause-ms")
	b.ReportMetric(float64(pauses.Max)/1e6, "maxpause-ms")
}

// ---------------------------------------------------------------------------
// Figure 4(a): throughput vs graph size.

func BenchmarkFigure4aThroughput(b *testing.B) {
	p, p2 := programs(b, "graphchi", graphchi.BuildPrograms)
	for s := 1; s <= 4; s++ {
		g := datagen.PowerLawGraph(2000*s, 30000*s, 42)
		for _, app := range []graphchi.App{graphchi.PageRank, graphchi.ConnectedComponents} {
			sg := graphchi.Shard(g, 20, app == graphchi.ConnectedComponents)
			for _, pr := range []struct {
				label string
				prog  *ir.Program
			}{{"P", p}, {"P2", p2}} {
				b.Run(fmt.Sprintf("%s/edges-%d/%s", app, 30000*s, pr.label), func(b *testing.B) {
					var last *graphchi.Metrics
					for i := 0; i < b.N; i++ {
						m, err := vm.New(pr.prog, vm.Config{HeapSize: 24 << 20})
						if err != nil {
							b.Fatal(err)
						}
						met, _, err := graphchi.Run(m, sg, graphchi.Config{
							App: app, Workers: 4, Iterations: 2, MemoryBudget: 12 << 20,
						})
						if err != nil {
							b.Fatal(err)
						}
						last = met
					}
					b.ReportMetric(last.Throughput(), "edges/s")
				})
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Table 3 and Figures 4(b)/4(c): Hyracks ES/WC across dataset sizes.

func hyracksDataset(app string, size int) ([][]byte, hyracks.Job) {
	const nodes = 2
	unit := int64(48 << 10)
	total := int(int64(size) * unit)
	if app == "WC" {
		corpus := datagen.CorpusSkewed(total, 200, uint64(size))
		return datagen.Partition(corpus, nodes), hyracks.WordCountJob{}
	}
	const keyLen, recLen = 8, 32
	nRecs := total / recLen
	recs := datagen.SortRecords(nRecs, keyLen, recLen-keyLen, uint64(size))
	var data []byte
	for _, r := range recs {
		data = append(data, r...)
	}
	per := (nRecs / nodes) * recLen
	parts := make([][]byte, nodes)
	for i := 0; i < nodes; i++ {
		lo := i * per
		hi := lo + per
		if i == nodes-1 {
			hi = len(data)
		}
		parts[i] = data[lo:hi]
	}
	return parts, hyracks.ExternalSortJob{KeyLen: keyLen, RecLen: recLen, RunRecords: 2048}
}

func benchHyracks(b *testing.B, app string) {
	p, p2 := programs(b, "hyracks", hyracks.BuildPrograms)
	heap := 4 << 20
	for _, size := range []int{3, 5, 10, 14, 19} {
		parts, job := hyracksDataset(app, size)
		for _, pr := range []struct {
			label string
			prog  *ir.Program
			cap   int64
		}{{"P", p, 0}, {"P2", p2, int64(heap) * 8}} {
			b.Run(fmt.Sprintf("%dGB/%s", size, pr.label), func(b *testing.B) {
				var last *hyracks.Result
				for i := 0; i < b.N; i++ {
					res, err := hyracks.RunJob(pr.prog, job, parts,
						cluster.Config{NumNodes: 2, HeapPerNode: heap}, pr.cap, dfs.New())
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(float64(last.GT.Milliseconds()), "gc-ms/op")
				b.ReportMetric(float64(last.PM)/(1<<20), "peakMB")
				if last.OME {
					b.ReportMetric(1, "OME")
				} else {
					b.ReportMetric(0, "OME")
				}
			})
		}
	}
}

func BenchmarkTable3HyracksES(b *testing.B) { benchHyracks(b, "ES") }
func BenchmarkTable3HyracksWC(b *testing.B) { benchHyracks(b, "WC") }

// Figures 4(b)/(c) report the same runs' peak memory; the peakMB metric of
// the Table 3 benchmarks carries the series. These wrappers exist so every
// figure has a named bench target.
func BenchmarkFigure4bMemoryES(b *testing.B) { benchHyracks(b, "ES") }
func BenchmarkFigure4cMemoryWC(b *testing.B) { benchHyracks(b, "WC") }

// ---------------------------------------------------------------------------
// §4.3: GPS.

func BenchmarkGPSSection43(b *testing.B) {
	p, p2 := programs(b, "gps", gps.BuildPrograms)
	g := datagen.PowerLawGraph(6000, 90000, 100)
	for _, app := range []gps.App{gps.PageRank, gps.KMeans, gps.RandomWalk} {
		for _, pr := range []struct {
			label string
			prog  *ir.Program
		}{{"P", p}, {"P2", p2}} {
			b.Run(fmt.Sprintf("%s/%s", app, pr.label), func(b *testing.B) {
				var last *gps.Result
				for i := 0; i < b.N; i++ {
					res, err := gps.Run(pr.prog, g, gps.Config{
						App: app, Nodes: 2, HeapPerNode: 16 << 20, Supersteps: 4, Seed: 7,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(float64(last.GT.Milliseconds()), "gc-ms/op")
				b.ReportMetric(float64(last.PM)/(1<<20), "peakMB")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// §4.1 object census.

func BenchmarkObjectBound(b *testing.B) {
	p, p2 := programs(b, "graphchi", graphchi.BuildPrograms)
	g := datagen.PowerLawGraph(4000, 60000, 11)
	sg := graphchi.Shard(g, 20, false)
	for _, pr := range []struct {
		label string
		prog  *ir.Program
	}{{"P", p}, {"P2", p2}} {
		b.Run(pr.label, func(b *testing.B) {
			var last *graphchi.Metrics
			for i := 0; i < b.N; i++ {
				m, err := vm.New(pr.prog, vm.Config{HeapSize: 32 << 20})
				if err != nil {
					b.Fatal(err)
				}
				met, _, err := graphchi.Run(m, sg, graphchi.Config{
					App: graphchi.PageRank, Workers: 4, Iterations: 2, MemoryBudget: 8 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = met
			}
			b.ReportMetric(float64(last.DataObjects), "dataObjs")
			b.ReportMetric(float64(last.Pages), "pages")
		})
	}
}

// ---------------------------------------------------------------------------
// §4.1-4.3 compilation speed.

func BenchmarkTransformSpeed(b *testing.B) {
	targets := []struct {
		name    string
		src     string
		classes []string
	}{
		{"GraphChi", graphchi.Source, graphchi.DataClasses},
		{"Hyracks", hyracks.Source, hyracks.DataClasses},
		{"GPS", gps.Source, gps.DataClasses},
	}
	for _, tg := range targets {
		b.Run(tg.name, func(b *testing.B) {
			p, err := facade.Compile(map[string]string{"b.fj": tg.src})
			if err != nil {
				b.Fatal(err)
			}
			n := p.InstrsInClasses(tg.classes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Transform(p, core.Options{DataClasses: tg.classes}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perOp := b.Elapsed().Seconds() / float64(b.N)
			if perOp > 0 {
				b.ReportMetric(float64(n)/perOp, "instr/s")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (§2.4, §3.6 design choices).

// BenchmarkAblationPageRecycling measures iteration-based reclamation with
// and without the free-page pool.
func BenchmarkAblationPageRecycling(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"recycle", false}, {"no-recycle", true}} {
		b.Run(mode.name, func(b *testing.B) {
			rt := offheap.NewRuntime()
			rt.DisableRecycle = mode.disable
			ic := 0
			s := rt.NewIterScope(nil, &ic, 0)
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.IterationStart()
				for j := 0; j < 1000; j++ {
					s.Current().AllocRecord(1, 48)
				}
				s.IterationEnd()
			}
			b.StopTimer()
			b.ReportMetric(float64(rt.Stats().PagesCreated), "pagesCreated")
		})
	}
}

// BenchmarkAblationHeaderFootprint compares the bytes a dataset occupies as
// managed objects (12/16-byte headers) vs page records (4/8-byte headers),
// the §2.4 space argument.
func BenchmarkAblationHeaderFootprint(b *testing.B) {
	src := `
class Pair { int a; int b; }
class Main {
    static void main() {
        Pair[] ps = new Pair[10000];
        for (int i = 0; i < ps.length; i = i + 1) {
            Pair p = new Pair();
            p.a = i;
            p.b = i + 1;
            ps[i] = p;
        }
        Sys.println(ps.length);
    }
}
`
	prog, err := facade.Compile(map[string]string{"p.fj": src})
	if err != nil {
		b.Fatal(err)
	}
	p2, err := facade.Transform(prog, facade.TransformOptions{DataClasses: []string{"Pair", "Main"}})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("heap-objects", func(b *testing.B) {
		var bytesUsed int64
		for i := 0; i < b.N; i++ {
			res, err := facade.Run(prog, facade.WithHeapSize(16<<20))
			if err != nil {
				b.Fatal(err)
			}
			bytesUsed = res.VM.Heap.Stats().AllocBytes
			res.Close()
		}
		b.ReportMetric(float64(bytesUsed)/10000, "B/record")
	})
	b.Run("page-records", func(b *testing.B) {
		var bytesUsed int64
		for i := 0; i < b.N; i++ {
			res, err := facade.Run(p2, facade.WithHeapSize(16<<20))
			if err != nil {
				b.Fatal(err)
			}
			bytesUsed = res.VM.RT.Stats().BytesInUse
			res.Close()
		}
		b.ReportMetric(float64(bytesUsed)/10000, "B/record")
	})
}

// BenchmarkAblationAllocationPath compares raw allocation throughput:
// nursery TLAB allocation + GC vs page bump allocation + iteration free.
func BenchmarkAblationAllocationPath(b *testing.B) {
	src := `
class Cell { long v; }
class Main {
    static void main() {
        for (int i = 0; i < 50000; i = i + 1) {
            Cell c = new Cell();
            c.v = i;
        }
        Sys.println(0);
    }
}
`
	prog, err := facade.Compile(map[string]string{"c.fj": src})
	if err != nil {
		b.Fatal(err)
	}
	p2, err := facade.Transform(prog, facade.TransformOptions{DataClasses: []string{"Cell", "Main"}})
	if err != nil {
		b.Fatal(err)
	}
	for _, pr := range []struct {
		name string
		p    *ir.Program
	}{{"heap", prog}, {"pages", p2}} {
		b.Run(pr.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := facade.Run(pr.p, facade.WithHeapSize(8<<20))
				if err != nil {
					b.Fatal(err)
				}
				res.Close()
			}
		})
	}
}

// BenchmarkAblationParallelMark measures the full collector over a large
// live object graph with 1 vs 4 mark workers (the paper's runs use
// HotSpot's parallel collector).
func BenchmarkAblationParallelMark(b *testing.B) {
	src := "class Object { }\nclass Node { int v; Node next; }\n"
	files, err := stdlibFreeParse(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			hp := heap.New(heap.Config{HeapSize: 96 << 20, GCWorkers: workers}, files)
			tc := hp.RegisterThread()
			tc.EndExternal()
			defer func() {
				tc.BeginExternal()
				hp.UnregisterThread(tc)
			}()
			node := files.Class("Node")
			next := node.FindField("next")
			var root heap.Addr
			hp.AddRoots(heap.RootFunc(func(visit func(heap.Addr) heap.Addr) {
				root = visit(root)
			}))
			// Wide graph: one root array fanning out to 150k short chains
			// (marking a single linked list cannot parallelize).
			const fanout = 150000
			arr, err := hp.AllocArray(tc, lang.ClassType("Node"), fanout, 0)
			if err != nil {
				b.Fatal(err)
			}
			root = arr
			for i := 0; i < fanout; i++ {
				a, err := hp.AllocObject(tc, node, 0)
				if err != nil {
					b.Fatal(err)
				}
				c, err := hp.AllocObject(tc, node, 0)
				if err != nil {
					b.Fatal(err)
				}
				hp.SetRef(a, next.Offset, c)
				hp.SetRef(root, i*8, a)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := hp.ForceGC(tc, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// stdlibFreeParse builds a hierarchy without the FJ stdlib (heap-level
// benches need only the class layout).
func stdlibFreeParse(src string) (*lang.Hierarchy, error) {
	f, err := lang.Parse("bench.fj", src)
	if err != nil {
		return nil, err
	}
	return lang.BuildHierarchy(f)
}

// BenchmarkAblationDevirt measures §3.6's static call resolution on the
// GPS PageRank data path: resolve-per-call vs pool access by static type.
func BenchmarkAblationDevirt(b *testing.B) {
	p, err := facade.Compile(map[string]string{"gps.fj": gps.Source})
	if err != nil {
		b.Fatal(err)
	}
	g := datagen.PowerLawGraph(4000, 60000, 100)
	for _, mode := range []struct {
		name   string
		devirt bool
	}{{"resolve", false}, {"devirt", true}} {
		p2, err := core.Transform(p, core.Options{DataClasses: gps.DataClasses, Devirtualize: mode.devirt})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gps.Run(p2, g, gps.Config{
					App: gps.PageRank, Nodes: 2, HeapPerNode: 16 << 20, Supersteps: 4, Seed: 7,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDCE measures liveness-driven dead-code elimination on
// the GraphChi PageRank data path (Table 2's workload): interpreted
// instruction count with and without DCE, same output either way.
func BenchmarkAblationDCE(b *testing.B) {
	p, err := facade.Compile(map[string]string{"graphchi.fj": graphchi.Source})
	if err != nil {
		b.Fatal(err)
	}
	g := datagen.PowerLawGraph(2000, 30000, 42)
	sg := graphchi.Shard(g, 10, false)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"nodce", true}, {"dce", false}} {
		p2, err := core.Transform(p, core.Options{DataClasses: graphchi.DataClasses, DisableDCE: mode.disable})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.name, func(b *testing.B) {
			var last *graphchi.Metrics
			for i := 0; i < b.N; i++ {
				m, err := vm.New(p2, vm.Config{HeapSize: 16 << 20})
				if err != nil {
					b.Fatal(err)
				}
				met, _, err := graphchi.Run(m, sg, graphchi.Config{
					App: graphchi.PageRank, Workers: 2, Iterations: 2, MemoryBudget: 8 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = met
			}
			b.ReportMetric(float64(last.Obs.Counters[obs.CtrInstructions]), "interp-instrs")
			b.ReportMetric(float64(p2.DCERemoved), "dce-removed")
		})
	}
}

// BenchmarkAblationLifetimes measures the lifetime pass's placement
// machinery on the Table 2 workloads (GraphChi PageRank and Connected
// Components): with lifetimes enforced, long-lived sites pretenure
// straight into the old generation and epoch-local sites land in
// bulk-reset regions, so the minor collector evacuates fewer young
// objects. "promoted" counts young-gen evacuation copies; output is
// identical in every mode (the differential battery pins that).
func BenchmarkAblationLifetimes(b *testing.B) {
	p, err := facade.Compile(map[string]string{"graphchi.fj": graphchi.Source})
	if err != nil {
		b.Fatal(err)
	}
	lifetimes := analysis.Lifetimes(p)
	g := datagen.PowerLawGraph(2000, 30000, 42)
	for _, app := range []graphchi.App{graphchi.PageRank, graphchi.ConnectedComponents} {
		sg := graphchi.Shard(g, 10, app == graphchi.ConnectedComponents)
		for _, mode := range []struct {
			name string
			mode heap.LifetimeMode
		}{{"off", heap.LifetimeOff}, {"enforce", heap.LifetimeEnforce}} {
			b.Run(fmt.Sprintf("%s/%s", app, mode.name), func(b *testing.B) {
				var promoted, pretenured, region float64
				for i := 0; i < b.N; i++ {
					cfg := vm.Config{HeapSize: 10 << 20}
					if mode.mode != heap.LifetimeOff {
						cfg.Lifetimes = lifetimes
						cfg.LifetimeMode = mode.mode
					}
					m, err := vm.New(p, cfg)
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := graphchi.Run(m, sg, graphchi.Config{
						App: app, Workers: 2, Iterations: 2, MemoryBudget: 8 << 20,
					}); err != nil {
						b.Fatal(err)
					}
					promoted = float64(m.Heap.Stats().Promoted)
					snap := m.Obs().Snapshot()
					pretenured = float64(snap.Counters[obs.CtrLifetimePretenured])
					region = float64(snap.Counters[obs.CtrLifetimeRegionAllocs])
				}
				b.ReportMetric(promoted, "promoted")
				b.ReportMetric(pretenured, "pretenured")
				b.ReportMetric(region, "region-allocs")
			})
		}
	}
}

// BenchmarkInterpreter is a plain VM baseline (recursive fib), useful for
// normalizing the framework numbers against interpreter speed.
func BenchmarkInterpreter(b *testing.B) {
	src := `
class Main {
    static int fib(int n) {
        if (n < 2) { return n; }
        return Main.fib(n - 1) + Main.fib(n - 2);
    }
    static void main() { Sys.println(Main.fib(22)); }
}
class D { int x; }
`
	prog, err := facade.Compile(map[string]string{"f.fj": src})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := facade.Run(prog, facade.WithHeapSize(8<<20))
		if err != nil {
			b.Fatal(err)
		}
		res.Close()
	}
}
