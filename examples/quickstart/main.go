// Quickstart: compile an FJ program, run it as-is (program P, data on the
// managed heap under the generational collector), apply the FACADE
// transform, run the result (program P', data in off-heap pages behind
// bounded facade pools), and compare what the memory system did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/facade"
)

const src = `
// A tuple class and a tiny aggregation over many instances — the shape of
// a Big Data data path.
class Tuple {
    int key;
    double value;
    Tuple(int key, double value) {
        this.key = key;
        this.value = value;
    }
    double weighted() { return this.value * 1.5; }
}

class Main {
    static void main() {
        double total = 0.0;
        for (int iter = 0; iter < 10; iter = iter + 1) {
            Sys.iterStart();                    // iteration boundary (§3.6)
            Tuple[] batch = new Tuple[20000];
            for (int i = 0; i < batch.length; i = i + 1) {
                batch[i] = new Tuple(i, 1.0 / (i + 1));
            }
            for (int i = 0; i < batch.length; i = i + 1) {
                total = total + batch[i].weighted();
            }
            Sys.iterEnd();                      // bulk page reclamation
        }
        Sys.println(total);
    }
}
`

func main() {
	// 1. Compile FJ to IR: this is program P.
	prog, err := facade.Compile(map[string]string{"quickstart.fj": src})
	if err != nil {
		log.Fatalf("compile: %v", err)
	}

	// 2. Run P on the managed heap (16 MB budget).
	outP, resP, err := facade.RunMain(prog, facade.RunConfig{HeapSize: 16 << 20})
	if err != nil {
		log.Fatalf("run P: %v", err)
	}
	defer resP.Close()

	// 3. FACADE-transform the data path: this is program P'.
	p2, err := facade.Transform(prog, facade.TransformOptions{
		DataClasses: []string{"Tuple", "Main"},
	})
	if err != nil {
		log.Fatalf("transform: %v", err)
	}

	// 4. Run P' with the same heap budget.
	outP2, resP2, err := facade.RunMain(p2, facade.RunConfig{HeapSize: 16 << 20})
	if err != nil {
		log.Fatalf("run P': %v", err)
	}
	defer resP2.Close()

	fmt.Printf("P  output: %s", outP)
	fmt.Printf("P' output: %s", outP2)
	if outP != outP2 {
		log.Fatal("outputs differ — the transform must be semantics-preserving")
	}

	hs, hs2 := resP.VM.Heap.Stats(), resP2.VM.Heap.Stats()
	tupleP := resP.VM.Heap.ClassAllocCount(prog.H.Class("Tuple"))
	tupleP2 := resP2.VM.Heap.ClassAllocCount(p2.H.Class("TupleFacade"))
	fmt.Println()
	fmt.Printf("%-34s %12s %12s\n", "", "P (heap)", "P' (facade)")
	fmt.Printf("%-34s %12d %12d\n", "Tuple heap objects allocated", tupleP, tupleP2)
	fmt.Printf("%-34s %12d %12d\n", "collections (minor+full)", hs.MinorGCs+hs.FullGCs, hs2.MinorGCs+hs2.FullGCs)
	fmt.Printf("%-34s %12.1f %12.1f\n", "GC time (ms)", float64(hs.GCTime.Microseconds())/1000, float64(hs2.GCTime.Microseconds())/1000)
	if resP2.VM.RT != nil {
		ns := resP2.VM.RT.Stats()
		fmt.Printf("%-34s %12s %12d\n", "native pages (32 KB, recycled)", "-", ns.PagesCreated)
		fmt.Printf("%-34s %12s %12d\n", "page records allocated", "-", ns.Records)
	}
	fmt.Printf("%-34s %12d %12d\n", "pool bound for Tuple (§3.3)", 0, p2.Bounds["Tuple"])
}
