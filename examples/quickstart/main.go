// Quickstart: compile an FJ program, run it as-is (program P, data on the
// managed heap under the generational collector), apply the FACADE
// transform, run the result (program P', data in off-heap pages behind
// bounded facade pools), and compare what the memory system did.
//
//	go run ./examples/quickstart
package main

import (
	_ "embed"
	"fmt"
	"log"

	"repro/facade"
)

// The FJ program lives in its own file so `facadec vet` (and CI) can check
// it directly; its "// facadec: data=..." directive names the data classes.
//
//go:embed quickstart.fj
var src string

func main() {
	// 1. Compile FJ to IR: this is program P.
	prog, err := facade.Compile(map[string]string{"quickstart.fj": src})
	if err != nil {
		log.Fatalf("compile: %v", err)
	}

	// 2. Run P on the managed heap (16 MB budget).
	resP, err := facade.Run(prog, facade.WithHeapSize(16<<20))
	if err != nil {
		log.Fatalf("run P: %v", err)
	}
	defer resP.Close()

	// 3. FACADE-transform the data path: this is program P'.
	p2, err := facade.Transform(prog, facade.TransformOptions{
		DataClasses: facade.DataClassesDirective(src),
	})
	if err != nil {
		log.Fatalf("transform: %v", err)
	}

	// 4. Run P' with the same heap budget.
	resP2, err := facade.Run(p2, facade.WithHeapSize(16<<20))
	if err != nil {
		log.Fatalf("run P': %v", err)
	}
	defer resP2.Close()

	outP, outP2 := resP.Output(), resP2.Output()
	fmt.Printf("P  output: %s", outP)
	fmt.Printf("P' output: %s", outP2)
	if outP != outP2 {
		log.Fatal("outputs differ — the transform must be semantics-preserving")
	}

	// 5. Compare what the memory system did, via the public stats mirror.
	st, st2 := resP.Stats(), resP2.Stats()
	fmt.Println()
	fmt.Printf("%-34s %12s %12s\n", "", "P (heap)", "P' (facade)")
	fmt.Printf("%-34s %12d %12d\n", "Tuple heap objects allocated", st.ClassAllocs["Tuple"], st2.ClassAllocs["TupleFacade"])
	fmt.Printf("%-34s %12d %12d\n", "collections (minor+full)", st.Heap.MinorGCs+st.Heap.FullGCs, st2.Heap.MinorGCs+st2.Heap.FullGCs)
	fmt.Printf("%-34s %12.1f %12.1f\n", "GC time (ms)", float64(st.Heap.GCTime.Microseconds())/1000, float64(st2.Heap.GCTime.Microseconds())/1000)
	fmt.Printf("%-34s %12.3f %12.3f\n", "p95 GC pause (ms)", float64(st.GCPauses().Quantile(0.95))/1e6, float64(st2.GCPauses().Quantile(0.95))/1e6)
	fmt.Printf("%-34s %12s %12d\n", "native pages (32 KB, recycled)", "-", st2.Offheap.PagesCreated)
	fmt.Printf("%-34s %12s %12d\n", "page records allocated", "-", st2.Offheap.Records)
	fmt.Printf("%-34s %12d %12d\n", "pool bound for Tuple (§3.3)", 0, p2.Bounds["Tuple"])
}
