// GraphChi PageRank example: runs the out-of-core graph engine on a
// synthetic power-law graph, once as program P and once FACADE-transformed
// as P', and prints the Table 2-style comparison plus the top-ranked
// vertices.
//
//	go run ./examples/graphchi-pagerank
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/datagen"
	"repro/internal/graphchi"
)

func main() {
	const (
		vertices = 5000
		edges    = 80000
		heap     = 24 << 20
	)
	g := datagen.PowerLawGraph(vertices, edges, 2024)
	sg := graphchi.Shard(g, 20, false)
	cfg := graphchi.Config{
		App:          graphchi.PageRank,
		Workers:      4,
		Iterations:   3,
		MemoryBudget: heap / 2, // GraphChi derives the load budget from -Xmx
	}

	p, p2, err := graphchi.BuildPrograms()
	if err != nil {
		log.Fatal(err)
	}

	metP, ranks, err := graphchi.RunProgram(p, heap, sg, cfg)
	if err != nil {
		log.Fatalf("P: %v", err)
	}

	metP2, ranks2, err := graphchi.RunProgram(p2, heap, sg, cfg)
	if err != nil {
		log.Fatalf("P': %v", err)
	}

	for i := range ranks {
		if ranks[i] != ranks2[i] {
			log.Fatalf("vertex %d: P=%v P'=%v", i, ranks[i], ranks2[i])
		}
	}

	fmt.Printf("PageRank over %d vertices / %d edges, heap %d MB, %d sub-iterations\n\n",
		vertices, edges, heap>>20, metP.SubIters)
	fmt.Printf("%-26s %10s %10s\n", "", "PR (P)", "PR' (P')")
	fmt.Printf("%-26s %10.2f %10.2f\n", "total time ET (s)", metP.ET.Seconds(), metP2.ET.Seconds())
	fmt.Printf("%-26s %10.2f %10.2f\n", "update time UT (s)", metP.UT.Seconds(), metP2.UT.Seconds())
	fmt.Printf("%-26s %10.2f %10.2f\n", "load time LT (s)", metP.LT.Seconds(), metP2.LT.Seconds())
	fmt.Printf("%-26s %10.2f %10.2f\n", "GC time GT (s)", metP.GT.Seconds(), metP2.GT.Seconds())
	pauses, pauses2 := metP.Obs.Histograms["heap.gc_pause_ns"], metP2.Obs.Histograms["heap.gc_pause_ns"]
	fmt.Printf("%-26s %10.3f %10.3f\n", "p95 GC pause (ms)", float64(pauses.Quantile(0.95))/1e6, float64(pauses2.Quantile(0.95))/1e6)
	fmt.Printf("%-26s %10.1f %10.1f\n", "peak memory PM (MB)", float64(metP.PM)/(1<<20), float64(metP2.PM)/(1<<20))
	fmt.Printf("%-26s %10d %10d\n", "data-type heap objects", metP.DataObjects, metP2.DataObjects)
	fmt.Printf("%-26s %10d %10d\n", "throughput (edges/s)", int(metP.Throughput()), int(metP2.Throughput()))

	type rv struct {
		v int
		r float64
	}
	top := make([]rv, len(ranks))
	for i, r := range ranks {
		top[i] = rv{i, r}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("\ntop-ranked vertices:")
	for _, t := range top[:5] {
		fmt.Printf("  vertex %5d  rank %.4f\n", t.v, t.r)
	}
}
