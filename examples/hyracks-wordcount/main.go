// Hyracks word-count example: a MapReduce-style job on the simulated
// shared-nothing cluster. Each node tokenizes its text partition in the
// data path, counts words in an FJ HashMap, shuffles by word hash, and
// reduces. Run with a deliberately small per-node heap to watch program P
// fail with OutOfMemoryError while the FACADE-transformed P' finishes.
//
//	go run ./examples/hyracks-wordcount
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/hyracks"
)

func main() {
	const (
		nodes       = 2
		heapPerNode = 2 << 20 // deliberately tight
		corpusBytes = 700_000
		uniquePerK  = 300 // fresh identifiers per 1000 words (web data)
	)
	corpus := datagen.CorpusSkewed(corpusBytes, uniquePerK, 7)
	parts := datagen.Partition(corpus, nodes)
	fmt.Printf("word count over %d KB of text on %d nodes, %d MB heap per node\n\n",
		corpusBytes>>10, nodes, heapPerNode>>20)

	p, p2, err := hyracks.BuildPrograms()
	if err != nil {
		log.Fatal(err)
	}

	fsP := dfs.New()
	resP, err := hyracks.RunJob(p, hyracks.WordCountJob{}, parts,
		cluster.Config{NumNodes: nodes, HeapPerNode: heapPerNode}, 0, fsP)
	if err != nil {
		log.Fatalf("P: %v", err)
	}
	fsP2 := dfs.New()
	resP2, err := hyracks.RunJob(p2, hyracks.WordCountJob{}, parts,
		cluster.Config{NumNodes: nodes, HeapPerNode: heapPerNode}, int64(heapPerNode)*8, fsP2)
	if err != nil {
		log.Fatalf("P': %v", err)
	}

	describe := func(label string, r *hyracks.Result, fs *dfs.FS) {
		if r.OME {
			fmt.Printf("%-4s OutOfMemoryError after %.2fs (peak heap %.1f MB)\n",
				label, r.OMEAt.Seconds(), float64(r.HeapPeak)/(1<<20))
			return
		}
		fmt.Printf("%-4s finished in %.2fs  GC %.3fs  peak heap %.1f MB  native %.1f MB\n",
			label, r.ET.Seconds(), r.GT.Seconds(),
			float64(r.HeapPeak)/(1<<20), float64(r.NativePeak)/(1<<20))
		var lines int
		for _, path := range fs.List("/out/WC/") {
			data, _ := fs.Read(path)
			lines += strings.Count(string(data), "\n")
		}
		fmt.Printf("     distinct words: %d\n", lines)
	}
	describe("P", resP, fsP)
	describe("P'", resP2, fsP2)
}
