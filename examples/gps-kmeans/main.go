// GPS k-means example: vertex-centric clustering on the Pregel-style
// engine. Points live in the data path as KPoint objects; every superstep
// assigns points to the nearest broadcast centroid and the master reduces
// partial sums into new centroids. Runs both program variants and checks
// they agree.
//
//	go run ./examples/gps-kmeans
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/internal/gps"
)

func main() {
	g := datagen.PowerLawGraph(4000, 50000, 99)
	cfg := gps.Config{
		App:         gps.KMeans,
		Nodes:       3,
		HeapPerNode: 16 << 20,
		Supersteps:  6,
		K:           5,
	}

	p, p2, err := gps.BuildPrograms()
	if err != nil {
		log.Fatal(err)
	}
	resP, err := gps.Run(p, g, cfg)
	if err != nil {
		log.Fatalf("P: %v", err)
	}
	resP2, err := gps.Run(p2, g, cfg)
	if err != nil {
		log.Fatalf("P': %v", err)
	}
	for i := range resP.Values {
		if resP.Values[i] != resP2.Values[i] {
			log.Fatalf("point %d assigned differently: P=%v P'=%v", i, resP.Values[i], resP2.Values[i])
		}
	}

	fmt.Printf("k-means over %d points (degree embedding), k=%d, %d supersteps, %d nodes\n\n",
		g.NumVertices, cfg.K, cfg.Supersteps, cfg.Nodes)
	sizes := make([]int, cfg.K)
	for _, v := range resP.Values {
		sizes[int(v)]++
	}
	for c, cent := range resP.Centroids {
		fmt.Printf("  cluster %d: centroid (%7.2f, %7.2f)  %6d points\n", c, cent[0], cent[1], sizes[c])
	}
	fmt.Printf("\n%-22s %10s %10s\n", "", "P", "P'")
	fmt.Printf("%-22s %10.2f %10.2f\n", "total time (s)", resP.ET.Seconds(), resP2.ET.Seconds())
	fmt.Printf("%-22s %10.3f %10.3f\n", "GC time (s)", resP.GT.Seconds(), resP2.GT.Seconds())
	fmt.Printf("%-22s %10.1f %10.1f\n", "peak memory (MB)", float64(resP.PM)/(1<<20), float64(resP2.PM)/(1<<20))
}
