package facade

import "testing"

// Additional hand-written corpus: each program targets a specific feature
// interaction of the transform. All run as P and P' and must agree.

func TestRecursionEquivalence(t *testing.T) {
	src := `
class Tree {
    int v;
    Tree left;
    Tree right;
    Tree(int v) { this.v = v; }
    int sum() {
        int s = this.v;
        if (this.left != null) { s = s + this.left.sum(); }
        if (this.right != null) { s = s + this.right.sum(); }
        return s;
    }
    int depth() {
        int l = 0;
        int r = 0;
        if (this.left != null) { l = this.left.depth(); }
        if (this.right != null) { r = this.right.depth(); }
        if (l > r) { return l + 1; }
        return r + 1;
    }
}
class Main {
    static Tree build(int depth, int base) {
        Tree t = new Tree(base);
        if (depth > 0) {
            t.left = Main.build(depth - 1, base * 2);
            t.right = Main.build(depth - 1, base * 2 + 1);
        }
        return t;
    }
    static void main() {
        Tree t = Main.build(10, 1);
        Sys.println(t.sum());
        Sys.println(t.depth());
    }
}
`
	// 2^11-1 nodes labeled 1..2047 heap-style: sum = 2047*2048/2.
	out := runBoth(t, src, []string{"Tree", "Main"})
	if out != "2096128\n11\n" {
		t.Fatalf("got %q", out)
	}
}

// TestMixedInterfaceImplementors covers the paper's explicit allowance:
// "both a data class and a non-data class implement the same Java
// interface". The data class gets an IFacade twin used inside the data
// path; the control class keeps the original interface and its code is
// untouched. (Passing a control implementor INTO the data path would
// violate the closed-world model and require refactoring, per §3.1.)
func TestMixedInterfaceImplementors(t *testing.T) {
	src := `
interface Sized { int size(); }
class DataBuf implements Sized {
    int n;
    DataBuf(int n) { this.n = n; }
    int size() { return this.n; }
}
class CtlBuf implements Sized {
    int size() { return 77; }
}
class CtlDriver {
    static int measure(Sized s) { return s.size(); }
    static int measureCtl() {
        CtlBuf c = new CtlBuf();
        return CtlDriver.measure(c);
    }
}
class Main {
    static int viaIface(Sized s) { return s.size(); }
    static void main() {
        DataBuf d = new DataBuf(5);
        Sys.println(d.size());
        Sys.println(Main.viaIface(d));
        Sys.println(CtlDriver.measureCtl());
    }
}
`
	out := runBoth(t, src, []string{"DataBuf", "Main"})
	if out != "5\n5\n77\n" {
		t.Fatalf("got %q", out)
	}
}

func TestStaticFieldsAcrossTransform(t *testing.T) {
	src := `
class Reg {
    static int count;
    static Reg last;
    int v;
    Reg(int v) {
        this.v = v;
        Reg.count = Reg.count + 1;
        Reg.last = this;
    }
}
class Main {
    static void main() {
        for (int i = 0; i < 10; i = i + 1) {
            Reg r = new Reg(i * i);
        }
        Sys.println(Reg.count);
        Sys.println(Reg.last.v);
    }
}
`
	out := runBoth(t, src, []string{"Reg", "Main"})
	if out != "10\n81\n" {
		t.Fatalf("got %q", out)
	}
}

func TestNestedArraysEquivalence(t *testing.T) {
	src := `
class Main {
    static void main() {
        int[][] grid = new int[4][];
        for (int i = 0; i < 4; i = i + 1) {
            grid[i] = new int[4];
            for (int j = 0; j < 4; j = j + 1) {
                grid[i][j] = i * 10 + j;
            }
        }
        int trace = 0;
        for (int i = 0; i < 4; i = i + 1) { trace = trace + grid[i][i]; }
        Sys.println(trace);
        long[] ls = new long[3];
        ls[1] = 1234567890123L;
        Sys.println(ls[0] + ls[1]);
        double[][] m = new double[2][];
        m[0] = new double[2];
        m[1] = m[0];
        m[0][1] = 2.5;
        Sys.println(m[1][1]);
        boolean[] bs = new boolean[2];
        bs[1] = true;
        Sys.println(bs[0]);
        Sys.println(bs[1]);
    }
}
class D { int x; }
`
	out := runBoth(t, src, []string{"D", "Main"})
	if out != "66\n1234567890123\n2.5\nfalse\ntrue\n" {
		t.Fatalf("got %q", out)
	}
}

func TestStringHeavyEquivalence(t *testing.T) {
	src := `
class Main {
    static void main() {
        String[] words = new String[4];
        words[0] = "delta";
        words[1] = "alpha";
        words[2] = "charlie";
        words[3] = "bravo";
        // Selection sort by compareTo.
        for (int i = 0; i < words.length; i = i + 1) {
            int min = i;
            for (int j = i + 1; j < words.length; j = j + 1) {
                if (words[j].compareTo(words[min]) < 0) { min = j; }
            }
            String t = words[i];
            words[i] = words[min];
            words[min] = t;
        }
        for (int i = 0; i < words.length; i = i + 1) {
            Sys.println(words[i]);
        }
        Sys.println(words[0].charAt(0));
        Sys.println(words[1].length());
    }
}
`
	out := runBoth(t, src, []string{"Main"})
	if out != "alpha\nbravo\ncharlie\ndelta\n97\n5\n" {
		t.Fatalf("got %q", out)
	}
}

func TestIterationScopedRecordsWithLongLivedRoots(t *testing.T) {
	// Records created before any iteration live in the default manager
	// and survive every iteration end (§3.6).
	src := `
class Acc {
    long total;
    void add(long v) { this.total = this.total + v; }
}
class Item {
    int v;
    Item(int v) { this.v = v; }
}
class Main {
    static void main() {
        Acc acc = new Acc();
        for (int it = 0; it < 5; it = it + 1) {
            Sys.iterStart();
            for (int i = 0; i < 1000; i = i + 1) {
                Item x = new Item(i);
                acc.add(x.v);
            }
            Sys.iterEnd();
        }
        Sys.println(acc.total);
    }
}
`
	out := runBoth(t, src, []string{"Acc", "Item", "Main"})
	if out != "2497500\n" {
		t.Fatalf("got %q", out)
	}
}

func TestObjectMethodsOnDataReceivers(t *testing.T) {
	// equals/hashCode inherited from Object must work through the Facade
	// base class in P'.
	src := `
class Thing {
    int id;
    Thing(int id) { this.id = id; }
}
class Named {
    int id;
    Named(int id) { this.id = id; }
    boolean equals(Object o) {
        if (!(o instanceof Named)) { return false; }
        Named n = (Named) o;
        return n.id == this.id;
    }
    int hashCode() { return this.id; }
}
class Main {
    static void main() {
        Thing a = new Thing(1);
        Thing b = new Thing(1);
        Sys.println(a.equals(a));
        Sys.println(a.equals(b));
        Sys.println(a.hashCode());
        Named x = new Named(9);
        Named y = new Named(9);
        Sys.println(x.equals(y));
        Sys.println(x.hashCode());
        Object o = x;
        Sys.println(o.equals(a));
    }
}
`
	out := runBoth(t, src, []string{"Thing", "Named", "Main"})
	if out != "true\nfalse\n0\ntrue\n9\nfalse\n" {
		t.Fatalf("got %q", out)
	}
}

func TestHashMapResizeUnderTransform(t *testing.T) {
	// Force several HashMap resizes (collection data classes, §3.1).
	src := `
class Key {
    int k;
    Key(int k) { this.k = k; }
    int hashCode() { return this.k * 31; }
    boolean equals(Object o) {
        if (!(o instanceof Key)) { return false; }
        return ((Key) o).k == this.k;
    }
}
class Val { int v; Val(int v) { this.v = v; } }
class Main {
    static void main() {
        HashMap m = new HashMap(4);
        for (int i = 0; i < 500; i = i + 1) {
            m.put(new Key(i), new Val(i * 3));
        }
        Sys.println(m.size());
        int hits = 0;
        for (int i = 0; i < 500; i = i + 1) {
            Val v = (Val) m.get(new Key(i));
            if (v != null && v.v == i * 3) { hits = hits + 1; }
        }
        Sys.println(hits);
        Sys.println(m.get(new Key(1000)) == null);
    }
}
`
	out := runBoth(t, src, []string{"Key", "Val", "HashMap", "MapEntry", "ArrayList", "Main"})
	if out != "500\n500\ntrue\n" {
		t.Fatalf("got %q", out)
	}
}

// TestConversionRoundTrip drives data through both synthesized conversion
// functions (§3.5): a control-path Box holds a data-typed field, so the
// transformed data path must convert page records to heap objects when
// storing into it (case 3.3) and heap objects back to page records when
// loading from it (case 4.3) — including a nested array field.
func TestConversionRoundTrip(t *testing.T) {
	src := `
class D {
    int v;
    int[] samples;
    D sibling;
    D(int v) {
        this.v = v;
        this.samples = new int[3];
        this.samples[0] = v * 10;
        this.samples[2] = v * 30;
    }
}
class Box {
    D d;
}
class Worker {
    void produce(Box b, int v) {
        D x = new D(v);
        x.sibling = new D(v + 100);
        b.d = x;              // exit point: record graph -> heap objects
    }
    int consume(Box b) {
        D x = b.d;            // entry point: heap objects -> record graph
        int s = x.v + x.samples[0] + x.samples[2];
        if (x.sibling != null) { s = s + x.sibling.v; }
        return s;
    }
}
class Main {
    static void main() {
        Box b = new Box();
        Worker w = new Worker();
        w.produce(b, 7);
        Sys.println(b.d == null);
        Sys.println(w.consume(b));
        w.produce(b, 9);
        Sys.println(w.consume(b));
    }
}
`
	out := runBoth(t, src, []string{"D", "Worker", "Main"})
	// 7 + 70 + 210 + 107 = 394; 9 + 90 + 270 + 109 = 478.
	if out != "false\n394\n478\n" {
		t.Fatalf("got %q", out)
	}
}

// TestGCMovesFacadesMidFlight forces collections in the middle of the
// transformed data path: a control-path helper churns the heap (facades
// and control objects move), after which the data path keeps using its
// bound facades and page records. The pageRef longs must travel with the
// moving facade objects.
func TestGCMovesFacadesMidFlight(t *testing.T) {
	src := `
class CtlChurn {
    static int churn(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            int[] garbage = new int[64];
            garbage[0] = i;
            acc = acc + garbage[0];
        }
        return acc;
    }
}
class Rec {
    int v;
    Rec next;
    Rec(int v) { this.v = v; }
    int walk() {
        int s = 0;
        Rec c = this;
        while (c != null) {
            s = s + c.v;
            c = c.next;
        }
        return s;
    }
}
class Main {
    static void main() {
        Rec head = null;
        for (int i = 0; i < 100; i = i + 1) {
            Rec r = new Rec(i);
            r.next = head;
            head = r;
        }
        int before = head.walk();
        // Control-path churn: with a small heap this runs several
        // collections while head's record chain is live.
        int noise = CtlChurn.churn(20000);
        int after = head.walk();
        Sys.println(before);
        Sys.println(after);
        Sys.println(before == after);
        Sys.println(noise);
    }
}
`
	prog, err := Compile(map[string]string{"t.fj": src})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Transform(prog, TransformOptions{DataClasses: []string{"Rec", "Main"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p2, WithHeapSize(2<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	want := "4950\n4950\ntrue\n199990000\n"
	if out := res.Output(); out != want {
		t.Fatalf("got %q want %q", out, want)
	}
	hs := res.VM.Heap.Stats()
	if hs.MinorGCs+hs.FullGCs == 0 {
		t.Fatal("churn did not trigger collections; the test is vacuous")
	}
}

func TestOversizeEarlyReleaseSemanticsAndReclamation(t *testing.T) {
	// Sys.release is a semantic no-op (P and P' agree) but lets P' drop
	// superseded oversize arrays before the iteration ends (§3.6,
	// optimization 3) — exercised here through ArrayList growth well past
	// the 32 KB page size.
	src := `
class Item { int v; Item(int v) { this.v = v; } }
class Main {
    static void main() {
        ArrayList xs = new ArrayList(4);
        for (int i = 0; i < 20000; i = i + 1) {
            xs.add(new Item(i));
        }
        long sum = 0L;
        for (int i = 0; i < xs.size(); i = i + 1) {
            Item it = (Item) xs.get(i);
            sum = sum + it.v;
        }
        Sys.println(sum);
    }
}
`
	classes := []string{"Item", "ArrayList", "HashMap", "MapEntry", "Main"}
	out := runBoth(t, src, classes)
	if out != "199990000\n" {
		t.Fatalf("got %q", out)
	}
	// Reclamation: without early release, every doubling generation of
	// the backing array (4, 8, ..., 32768 slots => ~500 KB total) stays
	// until iteration end; with it, only the final generation's pages
	// remain oversize-live.
	prog, err := Compile(map[string]string{"t.fj": src})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Transform(prog, TransformOptions{DataClasses: classes})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p2, WithHeapSize(32<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	st := res.VM.RT.Stats()
	// Live bytes: 20000 records (~16 B) + final 32768-slot array (256 KB)
	// + pages. Superseded arrays (4..16384 slots, ~260 KB of oversize)
	// must be gone.
	finalArray := int64(32768 * 8)
	if st.BytesInUse > finalArray+int64(20000*24)+int64(64*32<<10) {
		t.Fatalf("bytes in use %d suggests superseded arrays were not released", st.BytesInUse)
	}
}

func TestDevirtualizedRunEquivalence(t *testing.T) {
	src := `
class P2 {
    double x;
    double y;
    P2(double x, double y) { this.x = x; this.y = y; }
    double dot(P2 o) { return this.x * o.x + this.y * o.y; }
}
class Main {
    static void main() {
        double acc = 0.0;
        for (int i = 0; i < 2000; i = i + 1) {
            P2 a = new P2(i, i + 1);
            P2 b = new P2(i + 2, i + 3);
            acc = acc + a.dot(b);
        }
        Sys.println(acc);
    }
}
`
	prog, err := Compile(map[string]string{"t.fj": src})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(prog, WithHeapSize(16<<20))
	if err != nil {
		t.Fatal(err)
	}
	outP := r1.Output()
	r1.Close()
	p3, err := Transform(prog, TransformOptions{DataClasses: []string{"P2", "Main"}, Devirtualize: true})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(p3, WithHeapSize(16<<20))
	if err != nil {
		t.Fatal(err)
	}
	outP3 := r3.Output()
	r3.Close()
	if outP != outP3 {
		t.Fatalf("devirtualized run diverges: %q vs %q", outP, outP3)
	}
}
