package facade

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/obs"
)

// VetOption configures a Vet pipeline run (functional options, mirroring
// Run's Option pattern).
type VetOption func(*vetOptions)

type vetOptions struct {
	dataClasses  []string
	strict       bool
	seed         string
	devirtualize bool
	lifetimes    bool
}

// VetWithDataClasses names the data classes for the FACADE transform. When
// not given, Vet looks for a "// facadec: data=C1,C2" directive line in the
// sources.
func VetWithDataClasses(classes ...string) VetOption {
	return func(o *vetOptions) { o.dataClasses = classes }
}

// VetStrict disables data-set closure expansion (core.Options.NoAutoClose).
func VetStrict() VetOption {
	return func(o *vetOptions) { o.strict = true }
}

// VetWithSeedViolation injects a known violation into P' before linting it —
// one of analysis.SeedViolation's kinds ("use-before-def", "pool-clobber") —
// for exercising the linter against a clean program.
func VetWithSeedViolation(kind string) VetOption {
	return func(o *vetOptions) { o.seed = kind }
}

// VetDevirtualize forwards core.Options.Devirtualize.
func VetDevirtualize() VetOption {
	return func(o *vetOptions) { o.devirtualize = true }
}

// VetLifetimes runs the lifetime-inference pass over program P and includes
// its per-allocation-site file:line classification report (facadec vet
// -lifetimes).
func VetLifetimes() VetOption {
	return func(o *vetOptions) { o.lifetimes = true }
}

// VetResult carries everything a vet run produced.
type VetResult struct {
	P  *ir.Program // compiled program (P)
	P2 *ir.Program // transformed program (P'), nil if verification of P failed

	// File optionally names the vetted source (set by callers vetting one
	// file at a time, e.g. facadec); it appears in the JSON report.
	File string

	// VerifyErrs lists IR verifier failures (compiler bugs), formatted.
	VerifyErrs []string
	// Diagnostics lists lint findings as "file:line:col: [check] msg".
	Diagnostics []string

	VerifiedFuncs int
	LintFindings  int
	DCERemoved    int
	// Lifetimes lists the per-site lifetime classifications of P as
	// "file:line:col: [lifetime] ..." lines (VetLifetimes), and
	// LifetimeCounts tallies them per class name.
	Lifetimes      []string
	LifetimeCounts map[string]int
	// Bounds are P2's §3.3 pool bounds; TightBounds the liveness-tightened
	// bounds a TightenBounds build would use (computed on a copy — P2
	// itself keeps signature-sized pools).
	Bounds, TightBounds map[string]int
}

// Clean reports whether vet found nothing: the program verifies in both
// forms and the linter is silent.
func (r *VetResult) Clean() bool { return len(r.VerifyErrs) == 0 && len(r.Diagnostics) == 0 }

// Report renders a short human-readable summary.
func (r *VetResult) Report() string {
	var sb strings.Builder
	for _, e := range r.VerifyErrs {
		fmt.Fprintf(&sb, "verify: %s\n", e)
	}
	for _, d := range r.Diagnostics {
		fmt.Fprintf(&sb, "%s\n", d)
	}
	for _, l := range r.Lifetimes {
		fmt.Fprintf(&sb, "%s\n", l)
	}
	fmt.Fprintf(&sb, "vet: %d function(s) verified, %d finding(s), %d instruction(s) removed by DCE\n",
		r.VerifiedFuncs, r.LintFindings, r.DCERemoved)
	if r.LifetimeCounts != nil {
		fmt.Fprintf(&sb, "vet: lifetimes: %d epoch-local, %d long-lived, %d unknown\n",
			r.LifetimeCounts["epoch-local"], r.LifetimeCounts["long-lived"], r.LifetimeCounts["unknown"])
	}
	if len(r.Bounds) > 0 {
		var names []string
		for n := range r.Bounds {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if t, ok := r.TightBounds[n]; ok && t < r.Bounds[n] {
				fmt.Fprintf(&sb, "vet: pool %s: bound %d tightens to %d over live ranges\n", n, r.Bounds[n], t)
			}
		}
	}
	return sb.String()
}

// Vet compiles the given sources, verifies and lints program P, applies
// the FACADE transform (with DCE), and verifies and lints P'. It is the
// engine behind `facadec vet` and the golden-diagnostics tests. A non-nil
// error means the pipeline itself could not run (parse/type/transform
// failure); verifier and lint results are reported in the VetResult.
func Vet(sources map[string]string, vopts ...VetOption) (*VetResult, error) {
	var opts vetOptions
	for _, opt := range vopts {
		opt(&opts)
	}
	p, err := Compile(sources)
	if err != nil {
		return nil, err
	}
	r := &VetResult{P: p}
	if err := analysis.VerifyProgram(p); err != nil {
		r.VerifyErrs = append(r.VerifyErrs, "P: "+err.Error())
		return r, nil
	}
	r.VerifiedFuncs += len(p.FuncList)
	r.addFindings(analysis.LintProgram(p))
	if opts.lifetimes {
		r.LifetimeCounts = make(map[string]int)
		for _, sc := range analysis.LifetimeReport(p) {
			r.Lifetimes = append(r.Lifetimes, sc.String())
			r.LifetimeCounts[sc.Class.String()]++
		}
	}

	data := opts.dataClasses
	if len(data) == 0 {
		for _, src := range sources {
			if d := DataClassesDirective(src); len(d) > 0 {
				data = append(data, d...)
			}
		}
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("no data classes: pass -data or add a \"// facadec: data=C1,C2\" directive")
	}
	p2, err := Transform(p, TransformOptions{
		DataClasses: data, NoAutoClose: opts.strict, Devirtualize: opts.devirtualize,
	})
	if err != nil {
		return nil, err
	}
	r.P2 = p2
	r.DCERemoved = p2.DCERemoved
	r.Bounds = p2.Bounds
	if err := analysis.VerifyProgram(p2); err != nil {
		r.VerifyErrs = append(r.VerifyErrs, "P': "+err.Error())
		return r, nil
	}
	r.VerifiedFuncs += len(p2.FuncList)
	if opts.seed != "" {
		if err := analysis.SeedViolation(p2, opts.seed); err != nil {
			return nil, err
		}
	}
	r.addFindings(analysis.LintProgram(p2))

	// Preview liveness-tightened bounds on a copy of the bounds map.
	tight := &ir.Program{
		H: p2.H, Funcs: p2.Funcs, FuncList: p2.FuncList,
		Transformed: true, Bounds: make(map[string]int, len(p2.Bounds)),
	}
	for k, v := range p2.Bounds {
		tight.Bounds[k] = v
	}
	r.TightBounds = analysis.TightenBounds(tight)
	return r, nil
}

// VetJSONSchema identifies the machine-readable vet report format emitted
// by VetResult.JSON (facadec vet -json).
const VetJSONSchema = "facade.vet/v1"

// JSON renders the result as the facade.vet/v1 machine-readable report.
// The encoding is deterministic (obs.EncodeDeterministic: sorted keys,
// stable number formatting, trailing newline), so the bytes are stable
// across runs and Go versions — CI and the golden tests diff them
// directly.
func (r *VetResult) JSON(w io.Writer) error {
	report := map[string]any{
		"schema":         VetJSONSchema,
		"clean":          r.Clean(),
		"file":           r.File,
		"verify_errors":  emptyNotNil(r.VerifyErrs),
		"diagnostics":    emptyNotNil(r.Diagnostics),
		"verified_funcs": r.VerifiedFuncs,
		"lint_findings":  r.LintFindings,
		"dce_removed":    r.DCERemoved,
	}
	if r.Bounds != nil {
		report["bounds"] = r.Bounds
	}
	if len(r.TightBounds) > 0 {
		report["tight_bounds"] = r.TightBounds
	}
	if r.LifetimeCounts != nil {
		report["lifetimes"] = emptyNotNil(r.Lifetimes)
		report["lifetime_counts"] = r.LifetimeCounts
	}
	return obs.EncodeDeterministic(w, report)
}

// emptyNotNil keeps empty lists as [] (not null) in the JSON report.
func emptyNotNil(s []string) []string {
	if s == nil {
		return []string{}
	}
	return s
}

func (r *VetResult) addFindings(fs []analysis.Finding) {
	r.LintFindings += len(fs)
	for _, f := range fs {
		r.Diagnostics = append(r.Diagnostics, f.String())
	}
}

// DataClassesDirective extracts the data-class list from a
// "// facadec: data=C1,C2" directive line in an FJ source file, returning
// nil when no directive is present.
func DataClassesDirective(src string) []string {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "//") {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, "//"))
		if !strings.HasPrefix(rest, "facadec:") {
			continue
		}
		rest = strings.TrimSpace(strings.TrimPrefix(rest, "facadec:"))
		if !strings.HasPrefix(rest, "data=") {
			continue
		}
		var out []string
		for _, c := range strings.Split(strings.TrimPrefix(rest, "data="), ",") {
			if c = strings.TrimSpace(c); c != "" {
				out = append(out, c)
			}
		}
		return out
	}
	return nil
}

// VerifyProgram re-exports the analysis verifier for callers that hold an
// ir.Program (engines, tests) without importing internal/analysis.
func VerifyProgram(p *ir.Program) error { return analysis.VerifyProgram(p) }

// LintProgram re-exports the facade-safety linter, returning formatted
// diagnostics.
func LintProgram(p *ir.Program) []string {
	var out []string
	for _, f := range analysis.LintProgram(p) {
		out = append(out, f.String())
	}
	return out
}
