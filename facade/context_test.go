package facade

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// slowLoopSrc runs for seconds at interpreter speed — long enough that a
// cancellation mid-run is guaranteed to land on a safepoint poll.
const slowLoopSrc = `
class Main {
    static void main() {
        long acc = 0L;
        for (long i = 0L; i < 4000000000L; i = i + 1) {
            acc = acc + i;
        }
        Sys.println(acc);
    }
}
`

func TestRunContextCancelMidRun(t *testing.T) {
	prog, err := Compile(map[string]string{"t.fj": slowLoopSrc})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunContext(ctx, prog, WithHeapSize(8<<20))
	elapsed := time.Since(start)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("CanceledError does not unwrap to context.Canceled")
	}
	if res == nil {
		t.Fatal("canceled run returned no partial result")
	}
	res.Close()
	// The loop alone runs for many seconds; cancellation must unwind at
	// the next safepoint, not at the end.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; safepoint polling is not working", elapsed)
	}
}

func TestRunContextDeadline(t *testing.T) {
	prog, err := Compile(map[string]string{"t.fj": slowLoopSrc})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res, err := RunContext(ctx, prog, WithHeapSize(8<<20))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded through CanceledError", err)
	}
	if res != nil {
		res.Close()
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	prog, err := Compile(map[string]string{"t.fj": `
class Main {
    static void main() { Sys.println(1); }
}
`})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, prog)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CanceledError", err)
	}
	if res != nil {
		t.Fatal("pre-canceled context must not start the run")
	}
}

// reuseSrc mixes heap allocation, statics via rand, and data-class records
// so VM reuse has real state to reset: string cache, RNG, heap arena,
// and (under transform) the page store.
const reuseSrc = `
// facadec: data=Rec,Main
class Rec {
    long a;
    Rec(long a) { this.a = a; }
}
class Main {
    static void main() {
        long acc = 0L;
        for (int it = 0; it < 5; it = it + 1) {
            Sys.iterStart();
            for (int i = 0; i < 1000; i = i + 1) {
                Rec r = new Rec(Sys.rand(1000));
                acc = acc + r.a;
            }
            Sys.iterEnd();
        }
        Sys.println(acc);
    }
}
`

func TestWithReusedVMBitIdenticalAndReseeded(t *testing.T) {
	for _, transform := range []bool{false, true} {
		t.Run(fmt.Sprintf("transform=%v", transform), func(t *testing.T) {
			prog, err := Compile(map[string]string{"t.fj": reuseSrc})
			if err != nil {
				t.Fatal(err)
			}
			p := prog
			if transform {
				p, err = Transform(prog, TransformOptions{DataClasses: []string{"Rec", "Main"}})
				if err != nil {
					t.Fatal(err)
				}
			}
			r1, err := Run(p, WithHeapSize(8<<20), WithRandSeed(9))
			if err != nil {
				t.Fatal(err)
			}
			out1 := r1.Output()
			r1.Close()

			// Same seed on the reused VM: byte-identical replay.
			r2, err := Run(p, WithHeapSize(8<<20), WithRandSeed(9), WithReusedVM(r1.VM))
			if err != nil {
				t.Fatalf("reused run: %v", err)
			}
			if out2 := r2.Output(); out2 != out1 {
				t.Fatalf("warm replay diverges: %q vs %q", out2, out1)
			}
			r2.Close()

			// Different seed on the same VM: the RNG must have been
			// reset, not continued.
			r3, err := Run(p, WithHeapSize(8<<20), WithRandSeed(10), WithReusedVM(r2.VM))
			if err != nil {
				t.Fatal(err)
			}
			if r3.Output() == out1 {
				t.Fatal("different seed produced identical output; job state leaked across reuse")
			}
			r3.Close()
		})
	}
}

// TestWithReusedVMClearsPageQuota guards cross-job isolation: a warm VM
// used by a quota-bearing job must not carry that quota into a later job
// that set none (the later job would spuriously hit ErrPageQuota).
func TestWithReusedVMClearsPageQuota(t *testing.T) {
	prog, err := Compile(map[string]string{"t.fj": reuseSrc})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Transform(prog, TransformOptions{DataClasses: []string{"Rec", "Main"}})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(p, WithHeapSize(8<<20), WithRandSeed(9), WithPageQuota(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	out1 := r1.Output()
	r1.Close()
	if q := r1.VM.RT.PageQuota(); q != 1<<20 {
		t.Fatalf("quota after quota-bearing run = %d, want %d", q, 1<<20)
	}

	// Reuse with no quota option: the previous job's cap must be gone.
	r2, err := Run(p, WithHeapSize(8<<20), WithRandSeed(9), WithReusedVM(r1.VM))
	if err != nil {
		t.Fatalf("quota leaked into reused run: %v", err)
	}
	defer r2.Close()
	if q := r2.VM.RT.PageQuota(); q != 0 {
		t.Fatalf("reused VM still has quota %d; stale cap survived reuse", q)
	}
	if out2 := r2.Output(); out2 != out1 {
		t.Fatalf("reused run diverges: %q vs %q", out2, out1)
	}
}

func TestWithReusedVMRejectsMismatches(t *testing.T) {
	progA, err := Compile(map[string]string{"t.fj": reuseSrc})
	if err != nil {
		t.Fatal(err)
	}
	progB, err := Compile(map[string]string{"t.fj": reuseSrc})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(progA, WithHeapSize(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := Run(progB, WithHeapSize(8<<20), WithReusedVM(r.VM)); err == nil {
		t.Fatal("reuse across different programs must fail")
	}
	if _, err := Run(progA, WithHeapSize(16<<20), WithReusedVM(r.VM)); err == nil {
		t.Fatal("reuse across heap sizes must fail")
	}
}

// TestConcurrentRunsBitIdentical is the issue's concurrency battery:
// parallel Run calls with distinct heap budgets and fault seeds must
// produce exactly the per-config outputs (and errors) the same configs
// produce sequentially. Run under -race in CI.
func TestConcurrentRunsBitIdentical(t *testing.T) {
	prog, err := Compile(map[string]string{"t.fj": reuseSrc})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Transform(prog, TransformOptions{DataClasses: []string{"Rec", "Main"}})
	if err != nil {
		t.Fatal(err)
	}
	type config struct {
		transformed bool
		heap        int
		seed        int64
		faults      string
	}
	var configs []config
	for _, transformed := range []bool{false, true} {
		for _, heap := range []int{2 << 20, 8 << 20} {
			for i, faults := range []string{"", "alloc=0.00005,seed=11", "page=0.001,seed=23"} {
				configs = append(configs, config{transformed, heap, int64(i + 1), faults})
			}
		}
	}
	run := func(c config) (string, string) {
		pr := prog
		if c.transformed {
			pr = p2
		}
		opts := []Option{WithHeapSize(c.heap), WithRandSeed(c.seed)}
		if c.faults != "" {
			opts = append(opts, WithFaults(c.faults))
		}
		res, err := Run(pr, opts...)
		var out, errStr string
		if res != nil {
			out = res.Output()
			res.Close()
		}
		if err != nil {
			errStr = err.Error()
		}
		return out, errStr
	}

	// Sequential oracle.
	wantOut := make([]string, len(configs))
	wantErr := make([]string, len(configs))
	for i, c := range configs {
		wantOut[i], wantErr[i] = run(c)
	}

	// Same configs, all at once.
	gotOut := make([]string, len(configs))
	gotErr := make([]string, len(configs))
	var wg sync.WaitGroup
	for i, c := range configs {
		wg.Add(1)
		go func(i int, c config) {
			defer wg.Done()
			gotOut[i], gotErr[i] = run(c)
		}(i, c)
	}
	wg.Wait()

	for i, c := range configs {
		if gotOut[i] != wantOut[i] || gotErr[i] != wantErr[i] {
			t.Errorf("config %+v diverges under concurrency:\n  out %q vs %q\n  err %q vs %q",
				c, gotOut[i], wantOut[i], gotErr[i], wantErr[i])
		}
	}
}
