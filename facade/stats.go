package facade

import (
	"time"

	"repro/internal/obs"
)

// RunStats is the public, JSON-marshalable mirror of everything a run
// measured: heap and collector counters, off-heap page-store counters,
// interpreter counters, per-class allocation counts, and the full
// observability snapshot (named counters, gauges, histograms, events).
// It contains no internal types, so callers can report on a run without
// importing internal/vm or internal/heap.
type RunStats struct {
	Heap     HeapStats     `json:"heap"`
	Offheap  OffheapStats  `json:"offheap"`
	VM       VMStats       `json:"vm"`
	Faults   FaultStats    `json:"faults"`
	Recovery RecoveryStats `json:"recovery"`
	Analysis AnalysisStats `json:"analysis"`

	// ClassAllocs counts heap allocations per class name; array
	// allocations appear under "[]elem" keys.
	ClassAllocs map[string]int64 `json:"class_allocs"`

	// Lifetimes is the per-allocation-site runtime profile (sites with
	// recorded activity only); empty unless the run had lifetimes enabled
	// (WithLifetimes, on by default in observe mode for programs compiled
	// with site IDs).
	Lifetimes []SiteLifetime `json:"lifetimes,omitempty"`

	Counters   map[string]int64     `json:"counters"`
	Gauges     map[string]int64     `json:"gauges"`
	Histograms map[string]Histogram `json:"histograms"`
	Events     []Event              `json:"events,omitempty"`
}

// HeapStats mirrors the managed heap's counters.
type HeapStats struct {
	AllocBytes   int64         `json:"alloc_bytes"`
	AllocObjects int64         `json:"alloc_objects"`
	MinorGCs     int64         `json:"minor_gcs"`
	FullGCs      int64         `json:"full_gcs"`
	GCTime       time.Duration `json:"gc_time_ns"`
	Promoted     int64         `json:"promoted"`
	MarkedNodes  int64         `json:"marked_nodes"`
	PeakUsed     int64         `json:"peak_used"`
	LiveAfterGC  int64         `json:"live_after_gc"`
	HeapSize     int64         `json:"heap_size"`
}

// OffheapStats mirrors the native page store's counters; zero for
// untransformed programs.
type OffheapStats struct {
	PagesCreated  int64 `json:"pages_created"`
	PagesLive     int64 `json:"pages_live"`
	PagesLiveHW   int64 `json:"pages_live_hw"`
	PagesRecycled int64 `json:"pages_recycled"`
	Oversize      int64 `json:"oversize"`
	Records       int64 `json:"records"`
	BytesInUse    int64 `json:"bytes_in_use"`
	PeakBytes     int64 `json:"peak_bytes"`
	Managers      int64 `json:"managers"`

	// Tiering counters (WithTiering); all zero — and omitted from the
	// JSON encoding — when the run had no disk tier.
	PagesSpilled  int64 `json:"pages_spilled,omitempty"`
	PagesPromoted int64 `json:"pages_promoted,omitempty"`
	PagesResident int64 `json:"pages_resident,omitempty"`
	PagesDisk     int64 `json:"pages_disk,omitempty"`
	SpillBytes    int64 `json:"spill_bytes,omitempty"`
	PromoteBytes  int64 `json:"promote_bytes,omitempty"`
}

// FaultStats counts the injected faults a run absorbed (all zero unless
// the run was configured with WithFaults).
type FaultStats struct {
	HeapAllocInjected   int64 `json:"heap_alloc_injected"`
	PageAcquireInjected int64 `json:"page_acquire_injected"`
	TierSpillInjected   int64 `json:"tier_spill_injected,omitempty"`
	TierLoadInjected    int64 `json:"tier_load_injected,omitempty"`
}

// RecoveryStats mirrors the runtime's recovery.* counters: the
// fault-tolerance work the engines performed on this VM (checkpoints and
// restores for the cluster engines, interval replays, worker rebuilds,
// and budget degradations for GraphChi). All zero for a failure-free run.
type RecoveryStats struct {
	Checkpoints        int64 `json:"checkpoints"`
	CheckpointBytes    int64 `json:"checkpoint_bytes"`
	CheckpointsDropped int64 `json:"checkpoints_dropped"`
	Restores           int64 `json:"restores"`
	NodeRestarts       int64 `json:"node_restarts"`
	TaskRetries        int64 `json:"task_retries"`
	TasksDegraded      int64 `json:"tasks_degraded"`
	IntervalRetries    int64 `json:"interval_retries"`
	WorkerRestarts     int64 `json:"worker_restarts"`
	BudgetHalvings     int64 `json:"budget_halvings"`
}

// AnalysisStats mirrors the static-analysis counters: functions checked by
// the IR verifier and findings raised by the facade-safety linter (both
// populated when the run used WithVerify), the instructions removed by
// dead-code elimination when the program was transformed, and the lifetime
// pass's runtime consumption (pretenured and region-placed allocations,
// and sites the profiler demoted back to unknown).
type AnalysisStats struct {
	VerifiedFuncs        int64 `json:"verify_funcs"`
	LintFindings         int64 `json:"lint_findings"`
	DCERemoved           int64 `json:"dce_removed"`
	LifetimePretenured   int64 `json:"lifetime_pretenured"`
	LifetimeRegionAllocs int64 `json:"lifetime_region_allocs"`
	LifetimeDemotions    int64 `json:"lifetime_demotions"`
}

// SiteLifetime is one allocation site's runtime profile: what the static
// pass predicted (possibly demoted since) and what the profiler measured.
type SiteLifetime struct {
	Site     int32  `json:"site"`
	Class    string `json:"class"` // "epoch-local", "long-lived", "unknown"
	Allocs   int64  `json:"allocs"`
	Bytes    int64  `json:"bytes"`
	Sampled  int64  `json:"sampled,omitempty"`
	Survived int64  `json:"survived,omitempty"`
}

// VMStats mirrors the interpreter's execution counters.
type VMStats struct {
	Instructions      int64 `json:"instructions"`
	BoundaryCrossings int64 `json:"boundary_crossings"`
	FacadePoolHits    int64 `json:"facade_pool_hits"`
}

// Histogram is the public mirror of a fixed-bucket histogram snapshot.
// Counts[i] holds observations <= Bounds[i]; the final entry of Counts is
// the overflow bucket.
type Histogram struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
}

// Quantile estimates the q-th quantile (0 <= q <= 1) from the buckets,
// clamped to the observed min/max. Returns 0 for an empty histogram.
func (h Histogram) Quantile(q float64) int64 {
	return h.snap().Quantile(q)
}

// Mean returns the average observation, or 0 for an empty histogram.
func (h Histogram) Mean() float64 { return h.snap().Mean() }

func (h Histogram) snap() obs.HistogramSnapshot {
	return obs.HistogramSnapshot{
		Bounds: h.Bounds, Counts: h.Counts,
		Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
	}
}

// Event is one entry of the run's bounded event stream.
type Event struct {
	// Seq is a global sequence number (gaps mean the ring buffer
	// overwrote older events).
	Seq uint64 `json:"seq"`
	// Nanos is the emission time relative to the start of the run.
	Nanos int64 `json:"t_ns"`
	// Kind is the event kind: "gc", "iteration", "phase", "pm_release".
	Kind  string `json:"kind"`
	Label string `json:"label,omitempty"`
	// A, B, C are kind-specific payloads (for "gc": pause ns and bytes).
	A int64 `json:"a,omitempty"`
	B int64 `json:"b,omitempty"`
	C int64 `json:"c,omitempty"`
}

// GCPauses returns the overall GC pause histogram (nanoseconds), covering
// minor and full collections. Quantile gives p50/p95/... pause times.
func (s RunStats) GCPauses() Histogram { return s.Histograms[obs.HistGCPause] }

// Stats snapshots everything the run measured. The snapshot is
// internally consistent but the run should be complete (Call returned)
// for totals to be final.
func (r *Result) Stats() RunStats {
	hs := r.VM.Heap.Stats()
	st := RunStats{
		Heap: HeapStats{
			AllocBytes:   hs.AllocBytes,
			AllocObjects: hs.AllocObjects,
			MinorGCs:     hs.MinorGCs,
			FullGCs:      hs.FullGCs,
			GCTime:       hs.GCTime,
			Promoted:     hs.Promoted,
			MarkedNodes:  hs.MarkedNodes,
			PeakUsed:     hs.PeakUsed,
			LiveAfterGC:  hs.LiveAfterGC,
			HeapSize:     hs.HeapSize,
		},
		ClassAllocs: r.VM.Heap.ClassAllocCounts(),
	}
	if r.VM.RT != nil {
		ns := r.VM.RT.Stats()
		st.Offheap = OffheapStats{
			PagesCreated:  ns.PagesCreated,
			PagesLive:     ns.PagesLive,
			PagesLiveHW:   ns.PagesLiveHW,
			PagesRecycled: ns.PagesRecycled,
			Oversize:      ns.Oversize,
			Records:       ns.Records,
			BytesInUse:    ns.BytesInUse,
			PeakBytes:     ns.PeakBytes,
			Managers:      ns.Managers,
			PagesSpilled:  ns.PagesSpilled,
			PagesPromoted: ns.PagesPromoted,
			PagesResident: ns.PagesResident,
			PagesDisk:     ns.PagesDisk,
			SpillBytes:    ns.SpillBytes,
			PromoteBytes:  ns.PromoteBytes,
		}
	}
	snap := r.VM.Obs().Snapshot()
	st.VM = VMStats{
		Instructions:      snap.Counters[obs.CtrInstructions],
		BoundaryCrossings: snap.Counters[obs.CtrBoundaryCalls],
		FacadePoolHits:    snap.Counters[obs.CtrFacadePoolHits],
	}
	st.Faults = FaultStats{
		HeapAllocInjected:   snap.Counters[obs.CtrFaultHeapAlloc],
		PageAcquireInjected: snap.Counters[obs.CtrFaultPageAcquire],
		TierSpillInjected:   snap.Counters[obs.CtrFaultTierSpill],
		TierLoadInjected:    snap.Counters[obs.CtrFaultTierLoad],
	}
	st.Recovery = RecoveryStats{
		Checkpoints:        snap.Counters[obs.CtrCheckpoints],
		CheckpointBytes:    snap.Counters[obs.CtrCheckpointBytes],
		CheckpointsDropped: snap.Counters[obs.CtrCheckpointsDropped],
		Restores:           snap.Counters[obs.CtrRestores],
		NodeRestarts:       snap.Counters[obs.CtrNodeRestarts],
		TaskRetries:        snap.Counters[obs.CtrTaskRetries],
		TasksDegraded:      snap.Counters[obs.CtrTasksDegraded],
		IntervalRetries:    snap.Counters[obs.CtrIntervalRetries],
		WorkerRestarts:     snap.Counters[obs.CtrWorkerRestarts],
		BudgetHalvings:     snap.Counters[obs.CtrBudgetHalvings],
	}
	st.Analysis = AnalysisStats{
		VerifiedFuncs:        snap.Counters[obs.CtrVerifyFuncs],
		LintFindings:         snap.Counters[obs.CtrLintFindings],
		DCERemoved:           snap.Counters[obs.CtrDCERemoved],
		LifetimePretenured:   snap.Counters[obs.CtrLifetimePretenured],
		LifetimeRegionAllocs: snap.Counters[obs.CtrLifetimeRegionAllocs],
		LifetimeDemotions:    snap.Counters[obs.CtrLifetimeDemotions],
	}
	for _, sp := range r.VM.Heap.SiteProfile() {
		st.Lifetimes = append(st.Lifetimes, SiteLifetime{
			Site:     sp.Site,
			Class:    sp.Life.String(),
			Allocs:   sp.Allocs,
			Bytes:    sp.Bytes,
			Sampled:  sp.Sampled,
			Survived: sp.Survived,
		})
	}
	st.Counters = snap.Counters
	st.Gauges = snap.Gauges
	st.Histograms = make(map[string]Histogram, len(snap.Histograms))
	for name, h := range snap.Histograms {
		st.Histograms[name] = Histogram{
			Bounds: h.Bounds, Counts: h.Counts,
			Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
		}
	}
	st.Events = make([]Event, len(snap.Events))
	for i, e := range snap.Events {
		st.Events[i] = publicEvent(e)
	}
	return st
}

func publicEvent(e obs.Event) Event {
	return Event{Seq: e.Seq, Nanos: e.Nanos, Kind: e.Kind, Label: e.Label, A: e.A, B: e.B, C: e.C}
}
