package facade_test

// Standing regression gates over the shipped FJ programs: every
// examples/*/*.fj must vet clean (verifier + linter on both P and P') and
// produce identical output in P and P'; the three engine data paths
// (GraphChi, GPS, Hyracks) must verify and lint clean in both forms; and
// DCE must be output-preserving while actually removing instructions.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/facade"
	"repro/internal/gps"
	"repro/internal/graphchi"
	"repro/internal/hyracks"
	"repro/internal/ir"
)

func exampleSources(t *testing.T) map[string]string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "examples", "*", "*.fj"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 4 {
		t.Fatalf("expected at least 4 example .fj files, found %d: %v", len(paths), paths)
	}
	out := map[string]string{}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[p] = string(src)
	}
	return out
}

func TestExamplesVetCleanAndEquivalent(t *testing.T) {
	for path, src := range exampleSources(t) {
		path, src := path, src
		t.Run(filepath.Base(path), func(t *testing.T) {
			r, err := facade.Vet(map[string]string{path: src})
			if err != nil {
				t.Fatalf("vet: %v", err)
			}
			if !r.Clean() {
				t.Fatalf("vet not clean:\n%s", r.Report())
			}
			resP, err := facade.Run(r.P, facade.WithHeapSize(64<<20))
			if err != nil {
				t.Fatalf("run P: %v", err)
			}
			outP := resP.Output()
			resP.Close()
			resP2, err := facade.Run(r.P2, facade.WithHeapSize(64<<20))
			if err != nil {
				t.Fatalf("run P': %v", err)
			}
			outP2 := resP2.Output()
			resP2.Close()
			if outP == "" || outP != outP2 {
				t.Fatalf("P/P' outputs differ or empty.\nP:\n%s\nP':\n%s", outP, outP2)
			}
		})
	}
}

func TestEngineProgramsVerifyAndLintClean(t *testing.T) {
	engines := []struct {
		name  string
		build func() (*ir.Program, *ir.Program, error)
	}{
		{"graphchi", graphchi.BuildPrograms},
		{"gps", gps.BuildPrograms},
		{"hyracks", hyracks.BuildPrograms},
	}
	for _, e := range engines {
		e := e
		t.Run(e.name, func(t *testing.T) {
			p, p2, err := e.build()
			if err != nil {
				t.Fatal(err)
			}
			if err := facade.VerifyProgram(p); err != nil {
				t.Fatalf("P: %v", err)
			}
			if ds := facade.LintProgram(p); len(ds) > 0 {
				t.Fatalf("P lint: %v", ds)
			}
			if err := facade.VerifyProgram(p2); err != nil {
				t.Fatalf("P': %v", err)
			}
			if ds := facade.LintProgram(p2); len(ds) > 0 {
				t.Fatalf("P' lint: %v", ds)
			}
		})
	}
}

func TestDCEPreservesOutputAndRemovesInstructions(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "examples", "graphchi-pagerank", "pagerank.fj"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := facade.Compile(map[string]string{"pagerank.fj": string(src)})
	if err != nil {
		t.Fatal(err)
	}
	data := facade.DataClassesDirective(string(src))
	plain, err := facade.Transform(prog, facade.TransformOptions{DataClasses: data, DisableDCE: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := facade.Transform(prog, facade.TransformOptions{DataClasses: data})
	if err != nil {
		t.Fatal(err)
	}
	if opt.DCERemoved == 0 {
		t.Fatal("DCE removed nothing on the pagerank data path")
	}
	if got, want := opt.NumInstrs(), plain.NumInstrs()-opt.DCERemoved; got != want {
		t.Fatalf("instruction accounting: %d instrs after DCE, want %d", got, want)
	}
	r1, err := facade.Run(plain, facade.WithHeapSize(32<<20))
	if err != nil {
		t.Fatal(err)
	}
	outPlain := r1.Output()
	r1.Close()
	r2, err := facade.Run(opt, facade.WithHeapSize(32<<20))
	if err != nil {
		t.Fatal(err)
	}
	outOpt := r2.Output()
	r2.Close()
	if outPlain != outOpt {
		t.Fatalf("DCE changed output.\nwithout:\n%s\nwith:\n%s", outPlain, outOpt)
	}
}
