package facade

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Randomized semantic-equivalence testing: generate random FJ programs
// over a fixed data-class schema — object creation, field traffic, array
// traffic, virtual calls, casts, instanceof, nested loops, iteration
// markers — run them as P and as P', and require identical output. This is
// the transform's strongest correctness evidence beyond the hand-written
// corpus: every generated statement exercises some row of Table 1.

// progGen builds a random but well-typed Main.main body.
type progGen struct {
	rng  *rand.Rand
	sb   strings.Builder
	nVar int
	// live variables by kind
	ints    []string
	longs   []string
	doubles []string
	nodes   []string // type Node
	leaves  []string // type Leaf extends Node
	arrs    []string // type int[]
	objs    []string // type Object
	depth   int
}

const fuzzSchema = `
class Node {
    int key;
    long tag;
    Node link;
    Node(int key) { this.key = key; this.tag = 7L; }
    int weight() { return this.key * 2; }
    int kind() { return 1; }
}
class Leaf extends Node {
    double extra;
    Leaf(int key) { this.key = key; this.extra = 0.5; }
    int weight() { return this.key * 3; }
    int kind() { return 2; }
}
`

func (g *progGen) fresh(prefix string) string {
	g.nVar++
	return fmt.Sprintf("%s%d", prefix, g.nVar)
}

func (g *progGen) pick(list []string) string {
	return list[g.rng.Intn(len(list))]
}

func (g *progGen) intExpr() string {
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprint(g.rng.Intn(100))
	case 1:
		return g.pick(g.ints)
	case 2:
		return fmt.Sprintf("(%s + %s)", g.pick(g.ints), g.pick(g.ints))
	case 3:
		return fmt.Sprintf("(%s * %d)", g.pick(g.ints), 1+g.rng.Intn(5))
	case 4:
		if len(g.nodes) > 0 {
			return fmt.Sprintf("%s.weight()", g.pick(g.nodes))
		}
		return g.pick(g.ints)
	default:
		if len(g.nodes) > 0 {
			return fmt.Sprintf("%s.key", g.pick(g.nodes))
		}
		return g.pick(g.ints)
	}
}

func (g *progGen) stmt() {
	switch g.rng.Intn(12) {
	case 0: // new int local
		v := g.fresh("i")
		fmt.Fprintf(&g.sb, "int %s = %s;\n", v, g.intExpr())
		g.ints = append(g.ints, v)
	case 1: // new Node or Leaf
		v := g.fresh("n")
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&g.sb, "Node %s = new Node(%s);\n", v, g.intExpr())
			g.nodes = append(g.nodes, v)
		} else {
			fmt.Fprintf(&g.sb, "Node %s = new Leaf(%s);\n", v, g.intExpr())
			g.nodes = append(g.nodes, v)
		}
	case 2: // field write
		if len(g.nodes) > 0 {
			fmt.Fprintf(&g.sb, "%s.key = %s;\n", g.pick(g.nodes), g.intExpr())
		}
	case 3: // link write + read
		if len(g.nodes) > 1 {
			a, b := g.pick(g.nodes), g.pick(g.nodes)
			fmt.Fprintf(&g.sb, "%s.link = %s;\n", a, b)
			fmt.Fprintf(&g.sb, "if (%s.link != null) { sum = sum + %s.link.key; }\n", a, a)
		}
	case 4: // array create
		v := g.fresh("a")
		fmt.Fprintf(&g.sb, "int[] %s = new int[%d];\n", v, 1+g.rng.Intn(8))
		g.arrs = append(g.arrs, v)
	case 5: // array write/read with safe index
		if len(g.arrs) > 0 {
			a := g.pick(g.arrs)
			idx := g.rng.Intn(8)
			fmt.Fprintf(&g.sb, "%s[%d %% %s.length] = %s;\n", a, idx, a, g.intExpr())
			fmt.Fprintf(&g.sb, "sum = sum + %s[%d %% %s.length];\n", a, idx, a)
		}
	case 6: // accumulate
		fmt.Fprintf(&g.sb, "sum = sum + %s;\n", g.intExpr())
	case 7: // loop — variables declared inside go out of scope at the brace
		if g.depth < 2 {
			g.depth++
			saveI, saveL, saveD := len(g.ints), len(g.longs), len(g.doubles)
			saveN, saveLf, saveA, saveO := len(g.nodes), len(g.leaves), len(g.arrs), len(g.objs)
			v := g.fresh("k")
			fmt.Fprintf(&g.sb, "for (int %s = 0; %s < %d; %s = %s + 1) {\n", v, v, 2+g.rng.Intn(5), v, v)
			g.ints = append(g.ints, v)
			for i := 0; i < 1+g.rng.Intn(3); i++ {
				g.stmt()
			}
			fmt.Fprintf(&g.sb, "}\n")
			g.ints = g.ints[:saveI]
			g.longs = g.longs[:saveL]
			g.doubles = g.doubles[:saveD]
			g.nodes = g.nodes[:saveN]
			g.leaves = g.leaves[:saveLf]
			g.arrs = g.arrs[:saveA]
			g.objs = g.objs[:saveO]
			g.depth--
		}
	case 8: // instanceof + cast via Object
		if len(g.nodes) > 0 {
			n := g.pick(g.nodes)
			fmt.Fprintf(&g.sb, "{ Object o = %s;\n", n)
			fmt.Fprintf(&g.sb, "  if (o instanceof Leaf) { Leaf lf = (Leaf) o; sum = sum + lf.kind(); }\n")
			fmt.Fprintf(&g.sb, "  if (o instanceof Node) { sum = sum + ((Node) o).kind(); } }\n")
		}
	case 9: // virtual dispatch accumulation
		if len(g.nodes) > 0 {
			fmt.Fprintf(&g.sb, "sum = sum + %s.kind() * 10;\n", g.pick(g.nodes))
		}
	case 10: // long/double mix
		if len(g.nodes) > 0 {
			n := g.pick(g.nodes)
			fmt.Fprintf(&g.sb, "%s.tag = %s.tag + %d;\n", n, n, g.rng.Intn(9))
			fmt.Fprintf(&g.sb, "sum = sum + (int) %s.tag;\n", n)
		}
	case 11: // iteration-scoped churn
		if g.depth == 0 {
			fmt.Fprintf(&g.sb, "Sys.iterStart();\n")
			fmt.Fprintf(&g.sb, "for (int z = 0; z < %d; z = z + 1) { Node tz = new Node(z); sum = sum + tz.weight(); }\n", 5+g.rng.Intn(30))
			fmt.Fprintf(&g.sb, "Sys.iterEnd();\n")
		}
	}
}

func (g *progGen) generate(nStmts int) string {
	g.sb.WriteString(fuzzSchema)
	g.sb.WriteString("class Main {\n  static void main() {\n    int sum = 0;\n")
	g.ints = []string{"sum"}
	for i := 0; i < nStmts; i++ {
		g.stmt()
	}
	g.sb.WriteString("    Sys.println(sum);\n")
	// Also print a digest of every live node.
	for _, n := range g.nodes {
		fmt.Fprintf(&g.sb, "    Sys.println(%s.key * 1000 + %s.kind());\n", n, n)
	}
	g.sb.WriteString("  }\n}\n")
	return g.sb.String()
}

func TestRandomProgramEquivalence(t *testing.T) {
	const programs = 60
	for seed := 0; seed < programs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			g := &progGen{rng: rand.New(rand.NewSource(int64(seed)))}
			src := g.generate(30)
			prog, err := Compile(map[string]string{"fuzz.fj": src})
			if err != nil {
				t.Fatalf("generated program does not compile: %v\n%s", err, src)
			}
			// Compiler-bug oracle: anything the type checker accepts must
			// pass the IR verifier, before and after the transform.
			if err := analysis.VerifyProgram(prog); err != nil {
				t.Fatalf("P fails IR verification (compiler bug): %v\n%s", err, src)
			}
			resP, err := Run(prog, WithHeapSize(16<<20))
			if err != nil {
				t.Fatalf("P: %v\n%s", err, src)
			}
			outP := resP.Output()
			resP.Close()
			// Lifetime oracle: enforcing the static placement (pretenuring
			// + epoch regions) must not change observable behavior. The
			// generated programs allocate inside iteration boundaries
			// (case 11), so this exercises region placement and bulk reset.
			resPL, err := Run(prog, WithHeapSize(16<<20), WithLifetimes(LifetimesEnforce))
			if err != nil {
				t.Fatalf("P (lifetimes enforced): %v\n%s", err, src)
			}
			outPL := resPL.Output()
			resPL.Close()
			if outP != outPL {
				t.Fatalf("lifetime-enforcement divergence (seed %d):\nP:          %q\nP enforced: %q\nprogram:\n%s",
					seed, outP, outPL, src)
			}
			p2, err := Transform(prog, TransformOptions{DataClasses: []string{"Node", "Leaf", "Main"}})
			if err != nil {
				t.Fatalf("transform: %v\n%s", err, src)
			}
			if err := analysis.VerifyProgram(p2); err != nil {
				t.Fatalf("P' fails IR verification (transform bug): %v\n%s", err, src)
			}
			if fs := analysis.LintProgram(p2); len(fs) > 0 {
				t.Fatalf("P' fails facade-safety lint: %s\n%s", fs[0], src)
			}
			resP2, err := Run(p2, WithHeapSize(16<<20))
			if err != nil {
				t.Fatalf("P': %v\n%s", err, src)
			}
			outP2 := resP2.Output()
			resP2.Close()
			if outP != outP2 {
				t.Fatalf("divergence (seed %d):\nP:  %q\nP': %q\nprogram:\n%s", seed, outP, outP2, src)
			}
			// Tiered leg: P' under a watermark tight enough that pages spill
			// to disk mid-run. The disk tier is pure mechanism — residency
			// moves, output must not.
			resPT, err := Run(p2, WithHeapSize(16<<20), WithTiering(t.TempDir(), 2, 1))
			if err != nil {
				t.Fatalf("P' (tiered): %v\n%s", err, src)
			}
			outPT := resPT.Output()
			resPT.Close()
			if outP != outPT {
				t.Fatalf("tiering divergence (seed %d):\nP:        %q\nP' tiered: %q\nprogram:\n%s",
					seed, outP, outPT, src)
			}
			// Third variant: the devirtualizing transform (§3.6) must also
			// preserve semantics.
			p3, err := Transform(prog, TransformOptions{
				DataClasses: []string{"Node", "Leaf", "Main"}, Devirtualize: true,
			})
			if err != nil {
				t.Fatalf("devirt transform: %v\n%s", err, src)
			}
			if err := analysis.VerifyProgram(p3); err != nil {
				t.Fatalf("P'' fails IR verification (devirt bug): %v\n%s", err, src)
			}
			resP3, err := Run(p3, WithHeapSize(16<<20))
			if err != nil {
				t.Fatalf("P'' (devirt): %v\n%s", err, src)
			}
			outP3 := resP3.Output()
			resP3.Close()
			if outP != outP3 {
				t.Fatalf("devirt divergence (seed %d):\nP:   %q\nP'': %q\nprogram:\n%s", seed, outP, outP3, src)
			}
		})
	}
}
