package facade

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// runBoth compiles src, runs it as P, transforms it with the given data
// classes, runs P', and requires identical output. Both programs must also
// pass the IR verifier and the facade-safety linter — every corpus test is
// a standing regression gate for the static analyses. It returns the
// shared output.
func runBoth(t *testing.T, src string, dataClasses []string) string {
	t.Helper()
	prog, err := Compile(map[string]string{"test.fj": src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := analysis.VerifyProgram(prog); err != nil {
		t.Fatalf("verify P: %v", err)
	}
	if fs := analysis.LintProgram(prog); len(fs) > 0 {
		t.Fatalf("lint P: %d finding(s), first: %s", len(fs), fs[0])
	}
	resP, err := Run(prog, WithHeapSize(32<<20))
	if err != nil {
		t.Fatalf("run P: %v", err)
	}
	outP := resP.Output()
	resP.Close()

	p2, err := Transform(prog, TransformOptions{DataClasses: dataClasses})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	if err := analysis.VerifyProgram(p2); err != nil {
		t.Fatalf("verify P': %v", err)
	}
	if fs := analysis.LintProgram(p2); len(fs) > 0 {
		t.Fatalf("lint P': %d finding(s), first: %s", len(fs), fs[0])
	}
	resP2, err := Run(p2, WithHeapSize(32<<20))
	if err != nil {
		t.Fatalf("run P': %v", err)
	}
	outP2 := resP2.Output()
	resP2.Close()

	if outP != outP2 {
		t.Fatalf("P and P' disagree.\nP:\n%s\nP':\n%s", outP, outP2)
	}
	return outP
}

func TestArithmeticEquivalence(t *testing.T) {
	src := `
class Main {
    static void main() {
        int a = 7;
        int b = -3;
        Sys.println(a + b);
        Sys.println(a * b);
        Sys.println(a / b);
        Sys.println(a % b);
        long l = 1234567890123L;
        Sys.println(l * 3L);
        double d = 1.5;
        Sys.println(d / 4.0);
        Sys.println(a < b);
        Sys.println((double) a);
        Sys.println((int) 3.99);
        int s = 1;
        for (int i = 0; i < 10; i = i + 1) { s = s * 2; }
        Sys.println(s);
    }
}
class Dummy { int x; }
`
	out := runBoth(t, src, []string{"Dummy", "Main"})
	want := "4\n-21\n-2\n1\n3703703670369\n0.375\nfalse\n7\n3\n1024\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

// TestPaperExample mirrors Figure 2: Professor/Student with an object
// graph manipulated through methods.
func TestPaperExample(t *testing.T) {
	src := `
class Student {
    int id;
    String name;
    Student(int id, String name) {
        this.id = id;
        this.name = name;
    }
}
class Professor {
    int id;
    Student[] students;
    String name;
    int numStudents;
    Professor(int id) {
        this.id = id;
        this.students = new Student[16];
        this.numStudents = 0;
    }
    void addStudent(Student s) {
        this.students[this.numStudents] = s;
        this.numStudents = this.numStudents + 1;
    }
    int total() { return this.numStudents; }
    Student get(int i) { return this.students[i]; }
}
class Main {
    static void main() {
        Professor f = new Professor(1254);
        Student s = new Student(9, "alice");
        Professor p = f;
        Student t = s;
        p.addStudent(t);
        p.addStudent(new Student(10, "bob"));
        Sys.println(p.total());
        Sys.println(p.get(0).name);
        Sys.println(p.get(1).name);
        Sys.println(p.get(1).id);
        Object o = p.get(0);
        Sys.println(o instanceof Student);
        Sys.println(o instanceof Professor);
        Student back = (Student) o;
        Sys.println(back.id);
        Sys.println(back.equals(t));
        Sys.println(back.equals(p.get(1)));
    }
}
`
	out := runBoth(t, src, []string{"Professor", "Student", "Main"})
	want := "2\nalice\nbob\n10\ntrue\nfalse\n9\ntrue\nfalse\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestAllocationChurnEquivalence(t *testing.T) {
	// Allocate far more objects than fit in the nursery so the collector
	// (P) and page recycling (P') both engage.
	src := `
class Node {
    int val;
    Node next;
    Node(int v) { this.val = v; }
}
class Main {
    static void main() {
        long sum = 0L;
        for (int iter = 0; iter < 20; iter = iter + 1) {
            Sys.iterStart();
            Node head = null;
            for (int i = 0; i < 2000; i = i + 1) {
                Node n = new Node(i);
                n.next = head;
                head = n;
            }
            Node c = head;
            while (c != null) {
                sum = sum + c.val;
                c = c.next;
            }
            Sys.iterEnd();
        }
        Sys.println(sum);
    }
}
`
	out := runBoth(t, src, []string{"Node", "Main"})
	if out != "39980000\n" {
		t.Fatalf("got %q", out)
	}
}

func TestVirtualDispatchAndInterfaces(t *testing.T) {
	src := `
interface Shape { double area(); }
class Rect implements Shape {
    double w;
    double h;
    Rect(double w, double h) { this.w = w; this.h = h; }
    double area() { return this.w * this.h; }
}
class Square extends Rect {
    Square(double s) { this.w = s; this.h = s; }
    double area() { return this.w * this.w; }
}
class Main {
    static void main() {
        Shape[] shapes = new Shape[3];
        shapes[0] = new Rect(2.0, 3.0);
        shapes[1] = new Square(4.0);
        shapes[2] = new Rect(1.0, 10.0);
        double total = 0.0;
        for (int i = 0; i < shapes.length; i = i + 1) {
            total = total + shapes[i].area();
        }
        Sys.println(total);
        Sys.println(shapes[1] instanceof Square);
        Sys.println(shapes[0] instanceof Square);
        Rect r = (Rect) shapes[1];
        Sys.println(r.area());
    }
}
`
	out := runBoth(t, src, []string{"Rect", "Square", "Main"})
	want := "32\ntrue\nfalse\n16\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestStringsAndCollections(t *testing.T) {
	src := `
class Main {
    static void main() {
        HashMap m = new HashMap(8);
        m.put("apple", new Counter());
        m.put("banana", new Counter());
        Counter c = (Counter) m.get("apple");
        c.inc();
        c.inc();
        Counter b = (Counter) m.get("banana");
        b.inc();
        Sys.println(((Counter) m.get("apple")).n);
        Sys.println(((Counter) m.get("banana")).n);
        Sys.println(m.get("cherry") == null);
        Sys.println(m.size());
        String s = "hello";
        Sys.println(s.length());
        Sys.println(s.hashCode());
        Sys.println(s.equals("hello"));
        Sys.println(s.equals("world"));
        Sys.println(s);
    }
}
class Counter {
    int n;
    void inc() { this.n = this.n + 1; }
}
`
	out := runBoth(t, src, []string{"Counter", "HashMap", "MapEntry", "ArrayList", "Main"})
	want := "2\n1\ntrue\n2\n5\n99162322\ntrue\nfalse\nhello\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestSynchronizedEquivalence(t *testing.T) {
	src := `
class Box {
    int v;
    void bump() {
        synchronized (this) {
            this.v = this.v + 1;
        }
    }
}
class Main {
    static void main() {
        Box b = new Box();
        for (int i = 0; i < 100; i = i + 1) { b.bump(); }
        synchronized (b) {
            Sys.println(b.v);
        }
    }
}
`
	out := runBoth(t, src, []string{"Box", "Main"})
	if out != "100\n" {
		t.Fatalf("got %q", out)
	}
}

func TestObjectBoundHolds(t *testing.T) {
	// The headline property: in P', the number of live data-class heap
	// objects is the facade count, independent of how many records exist.
	src := `
class Item {
    int v;
    Item(int v) { this.v = v; }
    int get() { return this.v; }
}
class Main {
    static void main() {
        long sum = 0L;
        Item[] items = new Item[5000];
        for (int i = 0; i < 5000; i = i + 1) {
            items[i] = new Item(i);
        }
        for (int i = 0; i < 5000; i = i + 1) {
            sum = sum + items[i].get();
        }
        Sys.println(sum);
    }
}
`
	prog, err := Compile(map[string]string{"test.fj": src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p2, err := Transform(prog, TransformOptions{DataClasses: []string{"Item", "Main"}})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	res, err := Run(p2, WithHeapSize(32<<20))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	defer res.Close()
	if out := res.Output(); out != "12497500\n" {
		t.Fatalf("got %q", out)
	}
	// Count heap allocations of the facade class for Item: bounded by the
	// pool size, not by the 5000 records.
	h := p2.H
	fc := h.Class("ItemFacade")
	if fc == nil {
		t.Fatal("no ItemFacade class")
	}
	n := res.VM.Heap.ClassAllocCount(fc)
	bound := int64(p2.Bounds["Item"] + 1) // param pool + receiver
	if n == 0 || n > bound {
		t.Fatalf("ItemFacade heap objects = %d, want 1..%d", n, bound)
	}
	// And the original Item class must never be heap-allocated by P'.
	if oc := h.Class("Item"); res.VM.Heap.ClassAllocCount(oc) != 0 {
		t.Fatalf("P' allocated %d heap Items", res.VM.Heap.ClassAllocCount(oc))
	}
	if res.VM.RT.Stats().Records < 5000 {
		t.Fatalf("expected >=5000 page records, got %d", res.VM.RT.Stats().Records)
	}
}

func TestTransformRejectsViolations(t *testing.T) {
	src := `
class Control { int x; }
class Data {
    Control c;
}
class Main {
    static void main() { Sys.println(1); }
}
`
	prog, err := Compile(map[string]string{"test.fj": src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_, err = Transform(prog, TransformOptions{DataClasses: []string{"Data"}, NoAutoClose: true})
	if err == nil || !strings.Contains(err.Error(), "reference-closed-world") {
		t.Fatalf("expected reference-closed-world violation, got %v", err)
	}
}
