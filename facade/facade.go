// Package facade is the public API of the FACADE reproduction: compile FJ
// data-path code to IR, apply the FACADE transform, and run either version
// on the managed VM.
//
// Typical use:
//
//	prog, err := facade.Compile(map[string]string{"app.fj": src})
//	p2, err := facade.Transform(prog, facade.TransformOptions{
//	    DataClasses: []string{"Vertex", "Edge"},
//	})
//	out, res, err := facade.RunMain(p2, facade.RunConfig{HeapSize: 64 << 20})
//
// Framework integrations (GraphChi, Hyracks, GPS in internal/...) create a
// VM directly with NewVM and drive the data path through vm.Thread's
// boundary helpers.
package facade

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/stdlib"
	"repro/internal/vm"
)

// Compile parses the given FJ sources together with the standard library,
// type-checks them, and lowers them to IR (program P).
func Compile(sources map[string]string) (*ir.Program, error) {
	files, err := stdlib.ParseWith(sources)
	if err != nil {
		return nil, err
	}
	h, err := lang.BuildHierarchy(files...)
	if err != nil {
		return nil, err
	}
	if err := lang.Check(h); err != nil {
		return nil, err
	}
	return lower.Program(h)
}

// TransformOptions configures the FACADE transform.
type TransformOptions = core.Options

// Transform applies the FACADE transform, producing program P'.
func Transform(p *ir.Program, opts TransformOptions) (*ir.Program, error) {
	return core.Transform(p, opts)
}

// RunConfig configures a program run.
type RunConfig struct {
	// HeapSize is the managed heap budget in bytes (default 64 MiB).
	HeapSize int
	// Entry is the entry function key (default "Main.main").
	Entry string
	// RandSeed seeds Sys.rand (default 1).
	RandSeed int64
}

// Result carries the outcome of RunMain.
type Result struct {
	Value  vm.Value
	VM     *vm.VM
	Thread *vm.Thread
}

// RunMain creates a VM, runs the entry function on a fresh thread, and
// returns the captured Sys.print output. The VM and thread are returned
// for stats inspection; call Result.Close when done.
func RunMain(p *ir.Program, cfg RunConfig) (string, *Result, error) {
	if cfg.HeapSize == 0 {
		cfg.HeapSize = 64 << 20
	}
	if cfg.Entry == "" {
		cfg.Entry = "Main.main"
	}
	if cfg.RandSeed == 0 {
		cfg.RandSeed = 1
	}
	var out bytes.Buffer
	m, err := vm.New(p, vm.Config{HeapSize: cfg.HeapSize, Out: &out, RandSeed: cfg.RandSeed})
	if err != nil {
		return "", nil, err
	}
	t, err := m.NewThread(nil)
	if err != nil {
		return "", nil, err
	}
	entry := cfg.Entry
	if p.Transformed {
		// If the entry class was transformed, run the facade twin.
		if dot := indexByte(entry, '.'); dot > 0 {
			cls, meth := entry[:dot], entry[dot+1:]
			if p.DataClasses[cls] {
				entry = cls + "Facade." + meth
			}
		}
	}
	v, err := t.Call(entry)
	res := &Result{Value: v, VM: m, Thread: t}
	if err != nil {
		return out.String(), res, fmt.Errorf("running %s: %w", entry, err)
	}
	return out.String(), res, nil
}

// Close releases the run's thread.
func (r *Result) Close() {
	if r.Thread != nil {
		r.Thread.Close()
	}
}

// NewVM builds a VM for a compiled or transformed program.
func NewVM(p *ir.Program, cfg vm.Config) (*vm.VM, error) { return vm.New(p, cfg) }

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}
