// Package facade is the public API of the FACADE reproduction: compile FJ
// data-path code to IR, apply the FACADE transform, and run either version
// on the managed VM.
//
// Typical use:
//
//	prog, err := facade.Compile(map[string]string{"app.fj": src})
//	p2, err := facade.Transform(prog, facade.TransformOptions{
//	    DataClasses: []string{"Vertex", "Edge"},
//	})
//	res, err := facade.Run(p2, facade.WithHeapSize(64<<20))
//	fmt.Print(res.Output())
//	stats := res.Stats() // GC pauses, page counters, per-class allocs
//
// Result.Stats returns RunStats, a self-contained mirror of everything the
// run measured, so reporting code needs no internal packages.
//
// Framework integrations (GraphChi, Hyracks, GPS in internal/...) create a
// VM directly with NewVM and drive the data path through vm.Thread's
// boundary helpers.
package facade

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/obs"
	"repro/internal/stdlib"
	"repro/internal/vm"
)

// Compile parses the given FJ sources together with the standard library,
// type-checks them, and lowers them to IR (program P).
func Compile(sources map[string]string) (*ir.Program, error) {
	files, err := stdlib.ParseWith(sources)
	if err != nil {
		return nil, err
	}
	h, err := lang.BuildHierarchy(files...)
	if err != nil {
		return nil, err
	}
	if err := lang.Check(h); err != nil {
		return nil, err
	}
	return lower.Program(h)
}

// TransformOptions configures the FACADE transform.
type TransformOptions = core.Options

// Transform applies the FACADE transform, producing program P'.
func Transform(p *ir.Program, opts TransformOptions) (*ir.Program, error) {
	return core.Transform(p, opts)
}

// Result carries the outcome of a run. The VM and thread remain exported
// for framework code; reporting code should use Output and Stats instead.
type Result struct {
	Value  vm.Value
	VM     *vm.VM
	Thread *vm.Thread

	out *bytes.Buffer
}

// Run creates a VM for p, runs the entry function on a fresh thread, and
// returns the Result. Options configure the heap budget, entry point,
// random seed, output tee, and event observer:
//
//	res, err := facade.Run(p, facade.WithHeapSize(32<<20), facade.WithEntry("App.start"))
//
// The Sys.print output is available from Result.Output, and measurements
// from Result.Stats. Call Result.Close when done.
func Run(p *ir.Program, opts ...Option) (*Result, error) {
	o := defaultRunOptions()
	for _, opt := range opts {
		opt(&o)
	}
	out := &bytes.Buffer{}
	var w io.Writer = out
	if o.out != nil {
		w = io.MultiWriter(out, o.out)
	}
	if o.faultsErr != nil {
		return nil, o.faultsErr
	}
	reg := obs.NewRegistry()
	if o.observer != nil {
		fn := o.observer
		reg.SetEventSink(func(e obs.Event) { fn(publicEvent(e)) })
	}
	if o.verify {
		if err := analysis.VerifyProgram(p); err != nil {
			return nil, fmt.Errorf("facade verify: %w", err)
		}
		reg.Counter(obs.CtrVerifyFuncs).Add(int64(len(p.FuncList)))
		if findings := analysis.LintProgram(p); len(findings) > 0 {
			reg.Counter(obs.CtrLintFindings).Add(int64(len(findings)))
			return nil, fmt.Errorf("facade lint: %d finding(s), first: %s", len(findings), findings[0])
		}
	}
	if p.DCERemoved > 0 {
		reg.Counter(obs.CtrDCERemoved).Add(int64(p.DCERemoved))
	}
	m, err := vm.New(p, vm.Config{
		HeapSize: o.heapSize, Out: w, RandSeed: o.randSeed, Obs: reg,
		GCWorkers: o.gcWorkers,
		Faults:    faults.New(o.faults),
	})
	if err != nil {
		return nil, err
	}
	t, err := m.NewThread(nil)
	if err != nil {
		return nil, err
	}
	res := &Result{VM: m, Thread: t, out: out}
	entry := o.entry
	if p.Transformed {
		// If the entry class was transformed, run the facade twin.
		if dot := strings.IndexByte(entry, '.'); dot > 0 {
			cls, meth := entry[:dot], entry[dot+1:]
			if p.DataClasses[cls] {
				entry = cls + "Facade." + meth
			}
		}
	}
	v, err := t.Call(entry)
	res.Value = v
	if err != nil {
		return res, fmt.Errorf("running %s: %w", entry, err)
	}
	return res, nil
}

// Output returns the Sys.print output captured so far.
func (r *Result) Output() string {
	if r.out == nil {
		return ""
	}
	return r.out.String()
}

// Close releases the run's thread.
func (r *Result) Close() {
	if r.Thread != nil {
		r.Thread.Close()
	}
}

// RunConfig configures a program run.
//
// Deprecated: use Run with options (WithHeapSize, WithEntry, WithRandSeed).
type RunConfig struct {
	// HeapSize is the managed heap budget in bytes (default 64 MiB).
	HeapSize int
	// Entry is the entry function key (default "Main.main").
	Entry string
	// RandSeed seeds Sys.rand (default 1; pass WithRandSeed(0) to Run for
	// an explicit zero seed — this struct cannot express it).
	RandSeed int64
}

// RunMain creates a VM, runs the entry function on a fresh thread, and
// returns the captured Sys.print output. The VM and thread are returned
// for stats inspection; call Result.Close when done.
//
// Deprecated: use Run, which returns the output via Result.Output and
// measurements via Result.Stats.
func RunMain(p *ir.Program, cfg RunConfig) (string, *Result, error) {
	opts := []Option{}
	if cfg.HeapSize != 0 {
		opts = append(opts, WithHeapSize(cfg.HeapSize))
	}
	if cfg.Entry != "" {
		opts = append(opts, WithEntry(cfg.Entry))
	}
	if cfg.RandSeed != 0 {
		opts = append(opts, WithRandSeed(cfg.RandSeed))
	}
	res, err := Run(p, opts...)
	if res == nil {
		return "", nil, err
	}
	return res.Output(), res, err
}

// NewVM builds a VM for a compiled or transformed program.
func NewVM(p *ir.Program, cfg vm.Config) (*vm.VM, error) { return vm.New(p, cfg) }
