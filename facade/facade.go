// Package facade is the public API of the FACADE reproduction: compile FJ
// data-path code to IR, apply the FACADE transform, and run either version
// on the managed VM.
//
// Typical use:
//
//	prog, err := facade.Compile(map[string]string{"app.fj": src})
//	p2, err := facade.Transform(prog, facade.TransformOptions{
//	    DataClasses: []string{"Vertex", "Edge"},
//	})
//	res, err := facade.Run(p2, facade.WithHeapSize(64<<20))
//	fmt.Print(res.Output())
//	stats := res.Stats() // GC pauses, page counters, per-class allocs
//
// Run is RunContext with context.Background(); RunContext supports real
// cancellation — a canceled context unwinds the interpreter at the next
// safepoint and surfaces as a *CanceledError.
//
// Result.Stats returns RunStats, a self-contained mirror of everything the
// run measured, so reporting code needs no internal packages.
//
// Framework integrations (GraphChi, Hyracks, GPS in internal/...) create a
// VM directly with NewVM and drive the data path through vm.Thread's
// boundary helpers. Long-lived callers (the repro serve daemon,
// internal/server) reuse a VM across runs with WithReusedVM, which keeps
// the heap arena, dispatch tables, and recycled page pool warm.
package facade

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/obs"
	"repro/internal/offheap"
	"repro/internal/stdlib"
	"repro/internal/vm"
)

// Compile parses the given FJ sources together with the standard library,
// type-checks them, and lowers them to IR (program P).
func Compile(sources map[string]string) (*ir.Program, error) {
	files, err := stdlib.ParseWith(sources)
	if err != nil {
		return nil, err
	}
	h, err := lang.BuildHierarchy(files...)
	if err != nil {
		return nil, err
	}
	if err := lang.Check(h); err != nil {
		return nil, err
	}
	return lower.Program(h)
}

// TransformOptions configures the FACADE transform.
type TransformOptions = core.Options

// Transform applies the FACADE transform, producing program P'.
func Transform(p *ir.Program, opts TransformOptions) (*ir.Program, error) {
	return core.Transform(p, opts)
}

// Result carries the outcome of a run. The VM and thread remain exported
// for framework code; reporting code should use Output and Stats instead.
type Result struct {
	Value  vm.Value
	VM     *vm.VM
	Thread *vm.Thread

	out *bytes.Buffer
}

// CanceledError reports that a run was canceled through its context. The
// interpreter polls cancellation at safepoints (calls and loop back-edges),
// so cancellation latency is bounded by straight-line code between them.
// Unwrap exposes the context's error, so
// errors.Is(err, context.Canceled) and errors.Is(err, context.DeadlineExceeded)
// both work as expected.
type CanceledError struct {
	// Cause is the context's error: context.Canceled,
	// context.DeadlineExceeded, or a custom cancel cause.
	Cause error
}

func (e *CanceledError) Error() string { return "facade: run canceled: " + e.Cause.Error() }

// Unwrap returns the context error that canceled the run.
func (e *CanceledError) Unwrap() error { return e.Cause }

// Run creates a VM for p, runs the entry function on a fresh thread, and
// returns the Result. Options configure the heap budget, entry point,
// random seed, output tee, and event observer:
//
//	res, err := facade.Run(p, facade.WithHeapSize(32<<20), facade.WithEntry("App.start"))
//
// The Sys.print output is available from Result.Output, and measurements
// from Result.Stats. Call Result.Close when done. Run is exactly
// RunContext(context.Background(), p, opts...).
func Run(p *ir.Program, opts ...Option) (*Result, error) {
	return RunContext(context.Background(), p, opts...)
}

// RunContext is Run with cancellation: when ctx is canceled (or its
// deadline passes), the interpreter unwinds at the next safepoint and
// RunContext returns a *CanceledError wrapping ctx's error. With
// WithReusedVM the run executes on a warm VM reset for reuse instead of
// building a fresh one — the path the repro serve daemon takes for every
// job after the first.
func RunContext(ctx context.Context, p *ir.Program, opts ...Option) (*Result, error) {
	o := defaultRunOptions()
	for _, opt := range opts {
		opt(&o)
	}
	out := &bytes.Buffer{}
	var w io.Writer = out
	if o.out != nil {
		w = io.MultiWriter(out, o.out)
	}
	if o.faultsErr != nil {
		return nil, o.faultsErr
	}
	reg := obs.NewRegistry()
	if o.observer != nil {
		fn := o.observer
		reg.SetEventSink(func(e obs.Event) { fn(publicEvent(e)) })
	}
	if o.verify {
		if err := analysis.VerifyProgram(p); err != nil {
			return nil, fmt.Errorf("facade verify: %w", err)
		}
		reg.Counter(obs.CtrVerifyFuncs).Add(int64(len(p.FuncList)))
		if findings := analysis.LintProgram(p); len(findings) > 0 {
			reg.Counter(obs.CtrLintFindings).Add(int64(len(findings)))
			return nil, fmt.Errorf("facade lint: %d finding(s), first: %s", len(findings), findings[0])
		}
	}
	if p.DCERemoved > 0 {
		reg.Counter(obs.CtrDCERemoved).Add(int64(p.DCERemoved))
	}
	faultCfg := o.faults
	if faultCfg != nil && o.faultAttempt >= 2 {
		derived := faultCfg.ForNode(o.faultAttempt)
		faultCfg = &derived
	}
	inj := faults.New(faultCfg)
	var lifetimes []ir.Lifetime
	var lifeMode heap.LifetimeMode
	if o.lifetimes != LifetimesOff && p.NumSites > 0 {
		// Memoized on the program: repeated runs (benchmarks, the daemon's
		// warm pool) pay for the analysis once.
		lifetimes = analysis.Lifetimes(p)
		lifeMode = heap.LifetimeObserve
		if o.lifetimes == LifetimesEnforce {
			lifeMode = heap.LifetimeEnforce
		}
	}
	var tiering *offheap.TierConfig
	if o.tierHigh > 0 && p.Transformed {
		low := o.tierLow
		if low <= 0 || low > o.tierHigh {
			// Default hysteresis: evict down to half the high watermark so
			// one crossing doesn't immediately re-trigger the evictor.
			if low = o.tierHigh / 2; low < 1 {
				low = 1
			}
		}
		tiering = &offheap.TierConfig{Dir: o.tierDir, HighWater: o.tierHigh, LowWater: low}
	}
	var m *vm.VM
	if o.reuseVM != nil {
		m = o.reuseVM
		if m.Prog != p {
			return nil, fmt.Errorf("facade: WithReusedVM: VM was built for a different program")
		}
		if m.Heap.Size() != o.heapSize {
			return nil, fmt.Errorf("facade: WithReusedVM: VM heap is %d bytes, run wants %d (pool by heap size)",
				m.Heap.Size(), o.heapSize)
		}
		if err := m.ResetForReuse(vm.ResetConfig{
			Out: w, RandSeed: o.randSeed, Obs: reg, Faults: inj,
			Lifetimes: lifetimes, LifetimeMode: lifeMode,
			Tiering: tiering,
		}); err != nil {
			return nil, err
		}
	} else {
		var err error
		m, err = vm.New(p, vm.Config{
			HeapSize: o.heapSize, Out: w, RandSeed: o.randSeed, Obs: reg,
			GCWorkers:    o.gcWorkers,
			Faults:       inj,
			Lifetimes:    lifetimes,
			LifetimeMode: lifeMode,
			Tiering:      tiering,
		})
		if err != nil {
			return nil, err
		}
	}
	if m.RT != nil {
		// Set unconditionally (including 0 = unlimited): a warm VM must
		// never run under a quota left over from the previous job.
		m.RT.SetPageQuota(o.pageQuota)
	}
	if ctx.Err() != nil {
		// context.Cause preserves a WithCancelCause/WithDeadlineCause
		// cause (e.g. a daemon's typed deadline error), falling back to
		// Canceled/DeadlineExceeded.
		return nil, &CanceledError{Cause: context.Cause(ctx)}
	}
	if ctx.Done() != nil {
		cancelDone := make(chan struct{})
		stop := context.AfterFunc(ctx, func() {
			defer close(cancelDone)
			var canceled error = &CanceledError{Cause: context.Cause(ctx)}
			m.Cancel(canceled)
		})
		// If the context fires as the run completes, stop() returns false
		// while the callback is still in flight; wait it out so a late
		// m.Cancel can never land on a VM that was already reset and
		// handed to another job.
		defer func() {
			if !stop() {
				<-cancelDone
			}
		}()
	}
	t, err := m.NewThread(nil)
	if err != nil {
		return nil, err
	}
	res := &Result{VM: m, Thread: t, out: out}
	entry := o.entry
	if p.Transformed {
		// If the entry class was transformed, run the facade twin.
		if dot := strings.IndexByte(entry, '.'); dot > 0 {
			cls, meth := entry[:dot], entry[dot+1:]
			if p.DataClasses[cls] {
				entry = cls + "Facade." + meth
			}
		}
	}
	v, err := t.Call(entry)
	res.Value = v
	if err != nil {
		var ce *CanceledError
		if errors.As(err, &ce) {
			return res, ce
		}
		return res, fmt.Errorf("running %s: %w", entry, err)
	}
	return res, nil
}

// Output returns the Sys.print output captured so far.
func (r *Result) Output() string {
	if r.out == nil {
		return ""
	}
	return r.out.String()
}

// Close releases the run's thread.
func (r *Result) Close() {
	if r.Thread != nil {
		r.Thread.Close()
	}
}

// NewVM builds a VM for a compiled or transformed program.
func NewVM(p *ir.Program, cfg vm.Config) (*vm.VM, error) { return vm.New(p, cfg) }
