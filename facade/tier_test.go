package facade

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// Tier-equivalence battery: the disk tier is mechanism, not semantics.
// Every program here runs P' DRAM-only and P' under a watermark tight
// enough that pages spill and promote continuously, and the outputs must
// be bit-identical. Unlike the differential grid (which also carries a
// tiering axis), this battery additionally asserts the tier actually
// engaged — a vacuously-passing equivalence test would prove nothing.

// tierSrc builds a deliberately page-hungry program: records kept live
// across iterations so the resident set exceeds any small watermark, plus
// iteration-scoped churn so bulk release sees spilled pages.
const tierSrc = `
class Big {
    long a; long b; double c;
    int[] pad;
    Big(long a) { this.a = a; this.b = a * 3L; this.c = a + 0.5; this.pad = new int[700]; }
}
class Main {
    static void main() {
        Big[] keep = new Big[40];
        for (int i = 0; i < 40; i = i + 1) {
            keep[i] = new Big(i * 7919L);
            keep[i].pad[13] = i;
        }
        long acc = 0L;
        for (int it = 0; it < 6; it = it + 1) {
            Sys.iterStart();
            for (int i = 0; i < 200; i = i + 1) {
                Big t = new Big(i + it * 1000L);
                acc = acc + t.b + t.pad.length;
            }
            Sys.iterEnd();
            for (int i = 0; i < 40; i = i + 1) {
                acc = acc + keep[i].a + keep[i].b + keep[i].pad[13] + (long) keep[i].c;
            }
        }
        Sys.println(acc);
    }
}
`

func TestTierEquivalence(t *testing.T) {
	prog, err := Compile(map[string]string{"tier.fj": tierSrc})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Transform(prog, TransformOptions{DataClasses: []string{"Big", "Main"}})
	if err != nil {
		t.Fatal(err)
	}

	ref, err := Run(p2, WithHeapSize(16<<20))
	if err != nil {
		t.Fatalf("DRAM-only: %v", err)
	}
	refOut := ref.Output()
	refStats := ref.Stats()
	ref.Close()
	if refStats.Offheap.PagesSpilled != 0 {
		t.Fatalf("untiered run reports %d spills", refStats.Offheap.PagesSpilled)
	}
	// The omitempty contract: an untiered run's stats JSON carries no
	// tiering keys, so pre-tier golden outputs stay byte-identical.
	if b, err := json.Marshal(refStats.Offheap); err != nil {
		t.Fatal(err)
	} else if strings.Contains(string(b), "pages_spilled") {
		t.Fatalf("untiered OffheapStats JSON leaks tier keys: %s", b)
	}

	for _, high := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("high=%d", high), func(t *testing.T) {
			dir := t.TempDir()
			res, err := Run(p2, WithHeapSize(16<<20), WithTiering(dir, high, high/2))
			if err != nil {
				t.Fatalf("tiered: %v", err)
			}
			defer res.Close()
			if out := res.Output(); out != refOut {
				t.Fatalf("tiered output diverges:\nDRAM: %q\ntier: %q", refOut, out)
			}
			st := res.Stats()
			if st.Offheap.PagesSpilled == 0 {
				t.Fatalf("watermark %d never spilled (created %d pages, hw %d) — equivalence is vacuous",
					high, st.Offheap.PagesCreated, st.Offheap.PagesLiveHW)
			}
			if st.Offheap.PagesPromoted == 0 {
				t.Fatal("pages spilled but none promoted; live records were never re-read from disk")
			}
			if st.Offheap.SpillBytes == 0 || st.Offheap.PromoteBytes == 0 {
				t.Fatalf("byte counters not populated: spill=%d promote=%d",
					st.Offheap.SpillBytes, st.Offheap.PromoteBytes)
			}
			if got := st.Counters[obs.CtrPagesSpilled]; got != st.Offheap.PagesSpilled {
				t.Fatalf("counter %s = %d, stats say %d", obs.CtrPagesSpilled, got, st.Offheap.PagesSpilled)
			}
			// The run's thread is still open at Stats time, so its pool
			// pages remain live — but every live page is accounted for in
			// exactly one tier.
			if st.Offheap.PagesResident+st.Offheap.PagesDisk != st.Offheap.PagesLive {
				t.Fatalf("tier accounting: resident=%d disk=%d live=%d",
					st.Offheap.PagesResident, st.Offheap.PagesDisk, st.Offheap.PagesLive)
			}
		})
	}
}

// TestTierEquivalenceExamples runs every shipped example tiered vs not —
// the examples are the programs users actually see, so they anchor the
// battery.
func TestTierEquivalenceExamples(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "examples", "*", "*.fj"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example programs found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			r, err := Vet(map[string]string{path: string(src)})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Run(r.P2, WithHeapSize(64<<20))
			if err != nil {
				t.Fatal(err)
			}
			refOut := ref.Output()
			ref.Close()
			res, err := Run(r.P2, WithHeapSize(64<<20), WithTiering(t.TempDir(), 2, 1))
			if err != nil {
				t.Fatalf("tiered: %v", err)
			}
			defer res.Close()
			if out := res.Output(); out != refOut {
				t.Fatalf("tiered output diverges:\nDRAM: %q\ntier: %q", refOut, out)
			}
		})
	}
}

// TestTierReusedVMTearsDownSpill guards warm-VM isolation for the disk
// tier the way TestWithReusedVMClearsPageQuota does for quotas: a job's
// spill file must not outlive the job, and a later untiered job on the
// same VM must not inherit a tier.
func TestTierReusedVMTearsDownSpill(t *testing.T) {
	prog, err := Compile(map[string]string{"tier.fj": tierSrc})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Transform(prog, TransformOptions{DataClasses: []string{"Big", "Main"}})
	if err != nil {
		t.Fatal(err)
	}
	spillFiles := func(dir string) int {
		m, err := filepath.Glob(filepath.Join(dir, "spill-*.pages"))
		if err != nil {
			t.Fatal(err)
		}
		return len(m)
	}

	dir1 := t.TempDir()
	r1, err := Run(p2, WithHeapSize(16<<20), WithTiering(dir1, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	out := r1.Output()
	if r1.Stats().Offheap.PagesSpilled == 0 {
		t.Fatal("first run never spilled; teardown check is vacuous")
	}
	if n := spillFiles(dir1); n != 1 {
		t.Fatalf("expected 1 spill file during VM lifetime, found %d", n)
	}
	r1.Close()

	// Reuse tiered into a different directory: the reset must drop the
	// old spill file before the new job starts.
	dir2 := t.TempDir()
	r2, err := Run(p2, WithHeapSize(16<<20), WithTiering(dir2, 4, 2), WithReusedVM(r1.VM))
	if err != nil {
		t.Fatalf("tiered reuse: %v", err)
	}
	if got := r2.Output(); got != out {
		t.Fatalf("warm tiered replay diverges: %q vs %q", got, out)
	}
	if n := spillFiles(dir1); n != 0 {
		t.Fatalf("previous job's spill file leaked across reuse: %d left in %s", n, dir1)
	}
	r2.Close()

	// Reuse untiered: no tier may carry over, and dir2's file is gone.
	r3, err := Run(p2, WithHeapSize(16<<20), WithReusedVM(r2.VM))
	if err != nil {
		t.Fatalf("untiered reuse: %v", err)
	}
	defer r3.Close()
	if got := r3.Output(); got != out {
		t.Fatalf("untiered warm replay diverges: %q vs %q", got, out)
	}
	st := r3.Stats()
	if st.Offheap.PagesSpilled != 0 {
		t.Fatalf("untiered job on a warm VM spilled %d pages; tier leaked across reuse", st.Offheap.PagesSpilled)
	}
	if n := spillFiles(dir2); n != 0 {
		t.Fatalf("spill file leaked into untiered reuse: %d left in %s", n, dir2)
	}
}
