package facade

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ir"
)

// Differential P/P' battery: every program in the table runs as P and as
// the FACADE-transformed P' across a grid of runtime configurations
// (heap budget x GC mark workers). The §3.7 correctness oracle demands
// more than "P' matched P once":
//
//   - output is bit-identical between P and P' in every grid cell,
//   - output is identical ACROSS cells (heap budget and GC parallelism
//     are not allowed to be observable),
//   - traps (NPE, bounds, cast) surface identically in both programs.
//
// The engines' thread-count axis is covered by the engine differential
// tests (graphchi engine with 1 vs 4 workers, gps replay tests); FJ
// itself is single-threaded per run.

type diffProgram struct {
	name        string
	src         string
	dataClasses []string
	trap        string // non-empty: both P and P' must fail, message containing this
}

var diffGrid = struct {
	heaps     []int
	workers   []int
	lifetimes []LifetimeMode
	tiers     []string
}{
	heaps:   []int{3 << 20, 32 << 20},
	workers: []int{1, 4},
	// The lifetime axis pins the §3.7 oracle for the placement machinery
	// too: pretenuring and epoch regions change only where objects live
	// and how much the collector copies, never what the program prints.
	lifetimes: []LifetimeMode{LifetimesOff, LifetimesObserve, LifetimesEnforce},
	// The tiering axis does the same for the disk tier: "tight" runs P'
	// with a watermark small enough that pages spill and promote
	// constantly, and the output must not move. P is untransformed (no
	// pages), so the axis applies to P' only.
	tiers: []string{"off", "tight"},
}

// tierOpts returns the extra run options for one tiering mode. "tight"
// keeps at most 4 pages resident (evicting down to 2) so any page-count
// workload actually exercises spill and promote.
func tierOpts(t *testing.T, mode string) []Option {
	if mode == "off" {
		return nil
	}
	return []Option{WithTiering(t.TempDir(), 4, 2)}
}

var diffPrograms = []diffProgram{
	{
		name: "list-churn-iterations",
		// Linked structures churned across explicit iterations: exercises
		// the TLAB fast path and write barrier in P, and page recycling
		// through the per-scope cache in P'.
		src: `
class Node { int v; Node next; Node(int v) { this.v = v; } }
class Main {
    static void main() {
        long total = 0L;
        for (int it = 0; it < 8; it = it + 1) {
            Sys.iterStart();
            Node head = null;
            for (int i = 0; i < 3000; i = i + 1) {
                Node n = new Node(i * (it + 1));
                n.next = head;
                head = n;
            }
            Node c = head;
            while (c != null) { total = total + c.v; c = c.next; }
            Sys.iterEnd();
        }
        Sys.println(total);
    }
}
`,
		dataClasses: []string{"Node", "Main"},
	},
	{
		name: "double-matrix",
		// Double arithmetic through arrays: the interpreter's inline
		// double fast path and conversions must agree bit-for-bit.
		src: `
class Main {
    static void main() {
        double[] m = new double[64];
        for (int i = 0; i < 64; i = i + 1) { m[i] = Sys.sqrt(i) * 0.5 + 1.0 / (i + 1); }
        double acc = 0.0;
        for (int r = 0; r < 100; r = r + 1) {
            for (int i = 0; i < 64; i = i + 1) { acc = acc + m[i] * m[63 - i]; }
        }
        Sys.println(acc);
        Sys.println((int) acc);
        Sys.println((long) (acc * 1000.0));
    }
}
class D { int x; }
`,
		dataClasses: []string{"D", "Main"},
	},
	{
		name: "collections-mixed",
		src: `
class K { int k; K(int k) { this.k = k; }
    int hashCode() { return this.k; }
    boolean equals(Object o) { if (!(o instanceof K)) { return false; } return ((K) o).k == this.k; } }
class Main {
    static void main() {
        HashMap m = new HashMap(4);
        ArrayList order = new ArrayList(4);
        for (int i = 0; i < 300; i = i + 1) {
            K key = new K(i % 97);
            if (m.get(key) == null) { order.add(key); }
            m.put(key, key);
        }
        Sys.println(m.size());
        Sys.println(order.size());
        long sig = 0L;
        for (int i = 0; i < order.size(); i = i + 1) { sig = sig * 31L + ((K) order.get(i)).k; }
        Sys.println(sig);
    }
}
`,
		dataClasses: []string{"K", "HashMap", "MapEntry", "ArrayList", "Main"},
	},
	{
		name: "trap-npe",
		src: `
class Cell { int v; Cell next; }
class Main {
    static void main() {
        Cell c = new Cell();
        Sys.println(c.v);
        Cell gone = c.next;
        Sys.println(gone.v);
    }
}
`,
		dataClasses: []string{"Cell", "Main"},
		trap:        "NullPointerException",
	},
	{
		name: "trap-bounds",
		src: `
class Main {
    static void main() {
        int[] xs = new int[8];
        int i = 0;
        while (true) { xs[i] = i; i = i + 1; }
    }
}
class D { int x; }
`,
		dataClasses: []string{"D", "Main"},
		trap:        "IndexOutOfBounds",
	},
	{
		name: "trap-cast",
		src: `
class A { int x; }
class B { int y; }
class Main {
    static void main() {
        Object o = new A();
        Sys.println(1);
        B b = (B) o;
        Sys.println(b.y);
    }
}
`,
		dataClasses: []string{"A", "B", "Main"},
		trap:        "ClassCastException",
	},
}

// runCell executes one program in one grid cell, returning captured
// output and the run error (nil for clean completion).
func runCell(p *ir.Program, heapSize, gcWorkers int, lt LifetimeMode, extra ...Option) (string, error) {
	opts := append([]Option{WithHeapSize(heapSize), WithGCWorkers(gcWorkers), WithLifetimes(lt)}, extra...)
	res, err := Run(p, opts...)
	out := ""
	if res != nil {
		out = res.Output()
		res.Close()
	}
	return out, err
}

func TestDifferentialBattery(t *testing.T) {
	for _, dp := range diffPrograms {
		dp := dp
		t.Run(dp.name, func(t *testing.T) {
			prog, err := Compile(map[string]string{"diff.fj": dp.src})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			p2, err := Transform(prog, TransformOptions{DataClasses: dp.dataClasses})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			ref := ""
			first := true
			for _, heapSize := range diffGrid.heaps {
				for _, gcw := range diffGrid.workers {
					for _, lt := range diffGrid.lifetimes {
						outP, errP := runCell(prog, heapSize, gcw, lt)
						for _, tier := range diffGrid.tiers {
							cell := fmt.Sprintf("heap=%dMiB,gcworkers=%d,lifetimes=%s,tier=%s", heapSize>>20, gcw, lt, tier)
							outP2, errP2 := runCell(p2, heapSize, gcw, lt, tierOpts(t, tier)...)
							if dp.trap == "" {
								if errP != nil {
									t.Fatalf("[%s] P failed: %v", cell, errP)
								}
								if errP2 != nil {
									t.Fatalf("[%s] P' failed: %v", cell, errP2)
								}
							} else {
								if errP == nil || !strings.Contains(errP.Error(), dp.trap) {
									t.Fatalf("[%s] P trap = %v, want %q", cell, errP, dp.trap)
								}
								if errP2 == nil || !strings.Contains(errP2.Error(), dp.trap) {
									t.Fatalf("[%s] P' trap = %v, want %q", cell, errP2, dp.trap)
								}
								// Same trap class is required; the message detail may
								// differ (P' names facade twins and page records).
							}
							if outP != outP2 {
								t.Fatalf("[%s] output diverges:\nP:  %q\nP': %q", cell, outP, outP2)
							}
							if first {
								ref, first = outP, false
							} else if outP != ref {
								t.Fatalf("[%s] output depends on the grid cell:\nthis: %q\nref:  %q", cell, outP, ref)
							}
						}
					}
				}
			}
		})
	}
}

// TestDifferentialExamples runs every shipped examples/*/*.fj through the
// same grid. Vet picks the data classes the examples declare.
func TestDifferentialExamples(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "examples", "*", "*.fj"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 4 {
		t.Fatalf("expected at least 4 example programs, found %v", paths)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			r, err := Vet(map[string]string{path: string(src)})
			if err != nil {
				t.Fatalf("vet: %v", err)
			}
			if !r.Clean() {
				t.Fatalf("vet not clean:\n%s", r.Report())
			}
			ref := ""
			first := true
			for _, heapSize := range []int{32 << 20, 64 << 20} {
				for _, gcw := range diffGrid.workers {
					for _, lt := range diffGrid.lifetimes {
						outP, errP := runCell(r.P, heapSize, gcw, lt)
						for _, tier := range diffGrid.tiers {
							cell := fmt.Sprintf("heap=%dMiB,gcworkers=%d,lifetimes=%s,tier=%s", heapSize>>20, gcw, lt, tier)
							outP2, errP2 := runCell(r.P2, heapSize, gcw, lt, tierOpts(t, tier)...)
							if errP != nil || errP2 != nil {
								t.Fatalf("[%s] P err=%v, P' err=%v", cell, errP, errP2)
							}
							if outP != outP2 {
								t.Fatalf("[%s] output diverges:\nP:  %q\nP': %q", cell, outP, outP2)
							}
							if first {
								ref, first = outP, false
							} else if outP != ref {
								t.Fatalf("[%s] output depends on the grid cell", cell)
							}
						}
					}
				}
			}
		})
	}
}

// TestObjectBoundScaleInvariance pins §3.3's claim directly: the number
// of heap objects of facade classes in P' is a function of the program
// (pool bounds x threads), not of the data size. Running 10x more data
// through the same program must allocate exactly the same number of
// facade objects.
func TestObjectBoundScaleInvariance(t *testing.T) {
	const tmpl = `
class Item { int v; Item next; Item(int v) { this.v = v; } }
class Main {
    static void main() {
        long sum = 0L;
        Item head = null;
        for (int i = 0; i < %d; i = i + 1) {
            Item x = new Item(i);
            x.next = head;
            head = x;
            sum = sum + x.v;
        }
        Sys.println(sum);
    }
}
`
	facadeAllocs := func(n int) map[string]int64 {
		src := fmt.Sprintf(tmpl, n)
		prog, err := Compile(map[string]string{"scale.fj": src})
		if err != nil {
			t.Fatal(err)
		}
		p2, err := Transform(prog, TransformOptions{DataClasses: []string{"Item", "Main"}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p2, WithHeapSize(32<<20))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Close()
		out := map[string]int64{}
		for cls, c := range res.Stats().ClassAllocs {
			if strings.HasSuffix(cls, "Facade") {
				out[cls] = c
			}
		}
		return out
	}
	small := facadeAllocs(500)
	large := facadeAllocs(5000)
	if len(small) == 0 {
		t.Fatal("no facade classes allocated; the bound check is vacuous")
	}
	for cls, c := range small {
		if large[cls] != c {
			t.Fatalf("facade allocs for %s scale with data: %d (n=500) vs %d (n=5000)", cls, c, large[cls])
		}
	}
}
