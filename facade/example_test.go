package facade_test

import (
	"fmt"

	"repro/facade"
)

// ExampleCompile compiles an FJ program and runs it on the managed heap
// (program P).
func ExampleCompile() {
	src := `
class Point {
    int x;
    int y;
    Point(int x, int y) { this.x = x; this.y = y; }
    int manhattan() { return this.x + this.y; }
}
class Main {
    static void main() {
        Point p = new Point(3, 4);
        Sys.println(p.manhattan());
    }
}
`
	prog, err := facade.Compile(map[string]string{"point.fj": src})
	if err != nil {
		panic(err)
	}
	res, err := facade.Run(prog)
	if err != nil {
		panic(err)
	}
	defer res.Close()
	fmt.Print(res.Output())
	// Output: 7
}

// ExampleTransform applies the FACADE transform and shows the object
// bound: thousands of records, a handful of facade objects.
func ExampleTransform() {
	src := `
class Point {
    int x;
    int y;
    Point(int x, int y) { this.x = x; this.y = y; }
    int manhattan() { return this.x + this.y; }
}
class Main {
    static void main() {
        long total = 0L;
        for (int i = 0; i < 5000; i = i + 1) {
            Point p = new Point(i, i);
            total = total + p.manhattan();
        }
        Sys.println(total);
    }
}
`
	prog, err := facade.Compile(map[string]string{"point.fj": src})
	if err != nil {
		panic(err)
	}
	p2, err := facade.Transform(prog, facade.TransformOptions{
		DataClasses: []string{"Point", "Main"},
	})
	if err != nil {
		panic(err)
	}
	res, err := facade.Run(p2)
	if err != nil {
		panic(err)
	}
	defer res.Close()
	fmt.Print(res.Output())
	fmt.Println("records:", res.VM.RT.Stats().Records >= 5000)
	facades := res.VM.Heap.ClassAllocCount(p2.H.Class("PointFacade"))
	fmt.Println("facades bounded:", facades <= int64(p2.Bounds["Point"]+1))
	// Output:
	// 24995000
	// records: true
	// facades bounded: true
}
