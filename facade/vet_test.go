package facade

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

const vetSrc = `
// facadec: data=Item,Main
class Item {
    int v;
    Item(int v) { this.v = v; }
}
class Main {
    static void main() {
        Item a = new Item(41);
        Sys.println(a.v + 1);
    }
}
`

func TestWithVerifyPublishesAnalysisStats(t *testing.T) {
	prog, err := Compile(map[string]string{"v.fj": vetSrc})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Transform(prog, TransformOptions{DataClasses: []string{"Item", "Main"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p2, WithHeapSize(8<<20), WithVerify())
	if err != nil {
		t.Fatalf("run with verify: %v", err)
	}
	defer res.Close()
	if res.Output() != "42\n" {
		t.Fatalf("output %q", res.Output())
	}
	st := res.Stats()
	if st.Analysis.VerifiedFuncs == 0 {
		t.Fatal("Analysis.VerifiedFuncs not published")
	}
	if st.Analysis.LintFindings != 0 {
		t.Fatalf("unexpected lint findings: %d", st.Analysis.LintFindings)
	}
	if st.Analysis.DCERemoved == 0 {
		t.Fatal("Analysis.DCERemoved not published (DCE is on by default)")
	}
	if st.Analysis.DCERemoved != int64(p2.DCERemoved) {
		t.Fatalf("DCERemoved stat %d != program's %d", st.Analysis.DCERemoved, p2.DCERemoved)
	}
}

func TestWithVerifyFailsOnSeededViolation(t *testing.T) {
	prog, err := Compile(map[string]string{"v.fj": vetSrc})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Transform(prog, TransformOptions{DataClasses: []string{"Item", "Main"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := analysis.SeedViolation(p2, "use-before-def"); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p2, WithHeapSize(8<<20), WithVerify()); err == nil {
		t.Fatal("run with verify accepted a seeded use-before-def")
	} else if !strings.Contains(err.Error(), "facade lint") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDataClassesDirective(t *testing.T) {
	if got := DataClassesDirective(vetSrc); len(got) != 2 || got[0] != "Item" || got[1] != "Main" {
		t.Fatalf("directive parse: %v", got)
	}
	if got := DataClassesDirective("class A {}"); got != nil {
		t.Fatalf("no-directive parse: %v", got)
	}
	if got := DataClassesDirective("//facadec: data= X , Y \n"); len(got) != 2 || got[0] != "X" || got[1] != "Y" {
		t.Fatalf("spacing parse: %v", got)
	}
}
