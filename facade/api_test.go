package facade

import (
	"strings"
	"testing"
)

func TestCompileErrorsSurface(t *testing.T) {
	cases := map[string]string{
		"parse":   "class {",
		"check":   "class Main { static void main() { int x = true; } }",
		"hier":    "class A extends A { }",
		"unknown": "class Main { static void main() { Unknown u = null; } }",
	}
	for name, src := range cases {
		if _, err := Compile(map[string]string{"x.fj": src}); err == nil {
			t.Fatalf("%s: compile accepted invalid source", name)
		}
	}
}

func TestRunMainMissingEntry(t *testing.T) {
	prog, err := Compile(map[string]string{"x.fj": "class Foo { int x; }"})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = RunMain(prog, RunConfig{})
	if err == nil || !strings.Contains(err.Error(), "Main.main") {
		t.Fatalf("missing entry not reported: %v", err)
	}
}

func TestRunMainCustomEntry(t *testing.T) {
	prog, err := Compile(map[string]string{"x.fj": `
class App {
    static void start() { Sys.println(7); }
}
`})
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := RunMain(prog, RunConfig{Entry: "App.start"})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if out != "7\n" {
		t.Fatalf("got %q", out)
	}
}

func TestTransformRequiresDataClasses(t *testing.T) {
	prog, err := Compile(map[string]string{"x.fj": "class Main { static void main() { } }"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Transform(prog, TransformOptions{}); err == nil {
		t.Fatal("transform without data classes must fail")
	}
	if _, err := Transform(prog, TransformOptions{DataClasses: []string{"Nope"}}); err == nil {
		t.Fatal("unknown data class must fail")
	}
}

func TestEntryRemapToFacade(t *testing.T) {
	src := `
class Main {
    static void main() { Sys.println(new D().get()); }
}
class D {
    int get() { return 11; }
}
`
	prog, err := Compile(map[string]string{"x.fj": src})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Transform(prog, TransformOptions{DataClasses: []string{"D", "Main"}})
	if err != nil {
		t.Fatal(err)
	}
	// RunMain must route "Main.main" to "MainFacade.main" automatically.
	out, res, err := RunMain(p2, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if out != "11\n" {
		t.Fatalf("got %q", out)
	}
}

func TestGCStressUnderTinyHeapBothPrograms(t *testing.T) {
	// Run a heavy allocation workload under a minimal heap: P must
	// survive via many collections, P' via page recycling.
	src := `
class Rec {
    long a;
    long b;
    Rec(long a) { this.a = a; this.b = a * 2L; }
}
class Main {
    static void main() {
        long acc = 0L;
        for (int it = 0; it < 40; it = it + 1) {
            Sys.iterStart();
            for (int i = 0; i < 3000; i = i + 1) {
                Rec r = new Rec(i);
                acc = acc + r.b;
            }
            Sys.iterEnd();
        }
        Sys.println(acc);
    }
}
`
	out := runBoth(t, src, []string{"Rec", "Main"})
	if out != "359880000\n" {
		t.Fatalf("got %q", out)
	}
	// And explicitly with a 2 MiB heap for P.
	prog, _ := Compile(map[string]string{"x.fj": src})
	outSmall, res, err := RunMain(prog, RunConfig{HeapSize: 2 << 20})
	if err != nil {
		t.Fatalf("P under tiny heap: %v", err)
	}
	defer res.Close()
	if outSmall != out {
		t.Fatal("tiny-heap run diverges")
	}
	if res.VM.Heap.Stats().MinorGCs+res.VM.Heap.Stats().FullGCs < 5 {
		t.Fatal("expected sustained collection activity")
	}
}
