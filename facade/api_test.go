package facade

import (
	"strings"
	"testing"
)

func TestCompileErrorsSurface(t *testing.T) {
	cases := map[string]string{
		"parse":   "class {",
		"check":   "class Main { static void main() { int x = true; } }",
		"hier":    "class A extends A { }",
		"unknown": "class Main { static void main() { Unknown u = null; } }",
	}
	for name, src := range cases {
		if _, err := Compile(map[string]string{"x.fj": src}); err == nil {
			t.Fatalf("%s: compile accepted invalid source", name)
		}
	}
}

func TestRunMissingEntry(t *testing.T) {
	prog, err := Compile(map[string]string{"x.fj": "class Foo { int x; }"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(prog)
	if err == nil || !strings.Contains(err.Error(), "Main.main") {
		t.Fatalf("missing entry not reported: %v", err)
	}
}

func TestRunCustomEntry(t *testing.T) {
	prog, err := Compile(map[string]string{"x.fj": `
class App {
    static void start() { Sys.println(7); }
}
`})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, WithEntry("App.start"))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if out := res.Output(); out != "7\n" {
		t.Fatalf("got %q", out)
	}
}

func TestTransformRequiresDataClasses(t *testing.T) {
	prog, err := Compile(map[string]string{"x.fj": "class Main { static void main() { } }"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Transform(prog, TransformOptions{}); err == nil {
		t.Fatal("transform without data classes must fail")
	}
	if _, err := Transform(prog, TransformOptions{DataClasses: []string{"Nope"}}); err == nil {
		t.Fatal("unknown data class must fail")
	}
}

func TestEntryRemapToFacade(t *testing.T) {
	src := `
class Main {
    static void main() { Sys.println(new D().get()); }
}
class D {
    int get() { return 11; }
}
`
	prog, err := Compile(map[string]string{"x.fj": src})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Transform(prog, TransformOptions{DataClasses: []string{"D", "Main"}})
	if err != nil {
		t.Fatal(err)
	}
	// Run must route "Main.main" to "MainFacade.main" automatically.
	res, err := Run(p2)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if out := res.Output(); out != "11\n" {
		t.Fatalf("got %q", out)
	}
}

// allocHeavySrc allocates enough under a small heap to force collections,
// so stats tests see nonzero GC activity.
const allocHeavySrc = `
class Rec {
    long a;
    long b;
    Rec(long a) { this.a = a; this.b = a * 2L; }
}
class Main {
    static void main() {
        long acc = 0L;
        for (int it = 0; it < 20; it = it + 1) {
            Sys.iterStart();
            for (int i = 0; i < 3000; i = i + 1) {
                Rec r = new Rec(i);
                acc = acc + r.b;
            }
            Sys.iterEnd();
        }
        Sys.println(acc);
    }
}
`

func TestRunStatsMirrorsInternal(t *testing.T) {
	prog, err := Compile(map[string]string{"x.fj": allocHeavySrc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, WithHeapSize(2<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	st := res.Stats()
	hs := res.VM.Heap.Stats()
	if st.Heap.AllocBytes != hs.AllocBytes ||
		st.Heap.AllocObjects != hs.AllocObjects ||
		st.Heap.MinorGCs != hs.MinorGCs ||
		st.Heap.FullGCs != hs.FullGCs ||
		st.Heap.GCTime != hs.GCTime ||
		st.Heap.PeakUsed != hs.PeakUsed ||
		st.Heap.HeapSize != hs.HeapSize {
		t.Fatalf("RunStats.Heap diverges from heap.Stats: %+v vs %+v", st.Heap, hs)
	}
	if st.Heap.MinorGCs+st.Heap.FullGCs == 0 {
		t.Fatal("workload expected to trigger collections")
	}
	if st.ClassAllocs["Rec"] == 0 {
		t.Fatalf("per-class allocation counts missing: %v", st.ClassAllocs)
	}
	// Every collection records one pause observation.
	p := st.GCPauses()
	if p.Count != st.Heap.MinorGCs+st.Heap.FullGCs {
		t.Fatalf("pause count %d != collections %d", p.Count, st.Heap.MinorGCs+st.Heap.FullGCs)
	}
	if p.Quantile(0.95) < p.Quantile(0.5) || p.Quantile(1) > p.Max {
		t.Fatalf("quantiles inconsistent: p50=%d p95=%d max=%d", p.Quantile(0.5), p.Quantile(0.95), p.Max)
	}
	if st.VM.Instructions == 0 {
		t.Fatal("instruction counter not flushed")
	}
	if st.Counters["vm.instructions"] != st.VM.Instructions {
		t.Fatal("VMStats must mirror the named counter")
	}
}

func TestRunTransformedStats(t *testing.T) {
	prog, err := Compile(map[string]string{"x.fj": allocHeavySrc})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Transform(prog, TransformOptions{DataClasses: []string{"Rec", "Main"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p2, WithHeapSize(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	st := res.Stats()
	if st.Offheap.PagesCreated == 0 || st.Offheap.Records == 0 {
		t.Fatalf("off-heap stats not populated: %+v", st.Offheap)
	}
	if st.Offheap.PagesLiveHW < st.Offheap.PagesLive {
		t.Fatalf("high-water %d below live %d", st.Offheap.PagesLiveHW, st.Offheap.PagesLive)
	}
	if st.VM.FacadePoolHits == 0 {
		t.Fatal("facade pool hits not counted on transformed run")
	}
}

func TestRunObserverAndOutputTee(t *testing.T) {
	prog, err := Compile(map[string]string{"x.fj": allocHeavySrc})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	var tee strings.Builder
	res, err := Run(prog,
		WithHeapSize(2<<20),
		WithOutput(&tee),
		WithObserver(func(e Event) { events = append(events, e) }))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if tee.String() != res.Output() {
		t.Fatalf("tee %q != output %q", tee.String(), res.Output())
	}
	sawGC := false
	for _, e := range events {
		if e.Kind == "gc" {
			sawGC = true
			break
		}
	}
	if !sawGC {
		t.Fatalf("observer saw no gc events among %d events", len(events))
	}
}

func TestWithRandSeedZeroHonored(t *testing.T) {
	src := `
class Main {
    static void main() {
        for (int i = 0; i < 5; i = i + 1) { Sys.println(Sys.rand(1000000)); }
    }
}
`
	prog, err := Compile(map[string]string{"x.fj": src})
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts ...Option) string {
		t.Helper()
		res, err := Run(prog, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Close()
		return res.Output()
	}
	seed0 := run(WithRandSeed(0))
	seed1 := run(WithRandSeed(1))
	if seed0 == seed1 {
		t.Fatal("WithRandSeed(0) remapped to seed 1")
	}
	// Without WithRandSeed the default seed is 1.
	res, err := Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Output() != seed1 {
		t.Fatal("default seed must stay 1")
	}
}

func TestGCStressUnderTinyHeapBothPrograms(t *testing.T) {
	// Run a heavy allocation workload under a minimal heap: P must
	// survive via many collections, P' via page recycling.
	src := `
class Rec {
    long a;
    long b;
    Rec(long a) { this.a = a; this.b = a * 2L; }
}
class Main {
    static void main() {
        long acc = 0L;
        for (int it = 0; it < 40; it = it + 1) {
            Sys.iterStart();
            for (int i = 0; i < 3000; i = i + 1) {
                Rec r = new Rec(i);
                acc = acc + r.b;
            }
            Sys.iterEnd();
        }
        Sys.println(acc);
    }
}
`
	out := runBoth(t, src, []string{"Rec", "Main"})
	if out != "359880000\n" {
		t.Fatalf("got %q", out)
	}
	// And explicitly with a 2 MiB heap for P.
	prog, _ := Compile(map[string]string{"x.fj": src})
	res, err := Run(prog, WithHeapSize(2<<20))
	if err != nil {
		t.Fatalf("P under tiny heap: %v", err)
	}
	defer res.Close()
	if res.Output() != out {
		t.Fatal("tiny-heap run diverges")
	}
	if res.VM.Heap.Stats().MinorGCs+res.VM.Heap.Stats().FullGCs < 5 {
		t.Fatal("expected sustained collection activity")
	}
}

func TestWithFaultsInjectsAndCounts(t *testing.T) {
	prog, err := Compile(map[string]string{"x.fj": allocHeavySrc})
	if err != nil {
		t.Fatal(err)
	}

	// A malformed spec fails the Run call.
	if _, err := Run(prog, WithFaults("bogus=1")); err == nil {
		t.Fatal("malformed faults spec accepted")
	}

	// An injected allocation failure surfaces as OutOfMemoryError and is
	// counted in RunStats.Faults.
	res, err := Run(prog, WithHeapSize(2<<20), WithFaults("allocat=1,seed=7"))
	if err == nil || !strings.Contains(err.Error(), "OutOfMemoryError") {
		t.Fatalf("injected alloc fault not surfaced as OOM: %v", err)
	}
	if res == nil {
		t.Fatal("Result must be returned alongside the program error")
	}
	defer res.Close()
	if got := res.Stats().Faults.HeapAllocInjected; got != 1 {
		t.Fatalf("HeapAllocInjected = %d, want 1", got)
	}

	// An empty spec disables injection entirely.
	clean, err := Run(prog, WithHeapSize(2<<20), WithFaults(""))
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	if st := clean.Stats().Faults; st != (FaultStats{}) {
		t.Fatalf("fault-free run reports injections: %+v", st)
	}
}

func TestWithFaultsPageInjection(t *testing.T) {
	prog, err := Compile(map[string]string{"x.fj": allocHeavySrc})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Transform(prog, TransformOptions{DataClasses: []string{"Rec", "Main"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p2, WithHeapSize(8<<20), WithFaults("pageat=1,seed=7"))
	if err == nil || !strings.Contains(err.Error(), "page store exhausted") {
		t.Fatalf("injected page fault not surfaced: %v", err)
	}
	if res == nil {
		t.Fatal("Result must be returned alongside the program error")
	}
	defer res.Close()
	if got := res.Stats().Faults.PageAcquireInjected; got != 1 {
		t.Fatalf("PageAcquireInjected = %d, want 1", got)
	}
}
