package facade

import (
	"fmt"
	"io"

	"repro/internal/faults"
	"repro/internal/vm"
)

// Option configures a Run or RunContext call (functional options).
type Option func(*runOptions)

type runOptions struct {
	heapSize     int
	entry        string
	randSeed     int64
	seedSet      bool
	out          io.Writer
	observer     func(Event)
	faults       *faults.Config
	faultsErr    error
	faultAttempt int
	verify       bool
	gcWorkers    int
	reuseVM      *vm.VM
	pageQuota    int64
	lifetimes    LifetimeMode
	tierDir      string
	tierHigh     int
	tierLow      int
}

func defaultRunOptions() runOptions {
	return runOptions{
		heapSize:  64 << 20,
		entry:     "Main.main",
		randSeed:  1,
		lifetimes: LifetimesObserve,
	}
}

// LifetimeMode selects how a run consumes the lifetime-inference pass
// (internal/analysis): off skips it, observe profiles allocation sites and
// demotes mispredicted classifications without changing placement, and
// enforce additionally pretenures long-lived sites into the old generation
// and serves epoch-local sites from bulk-reset per-iteration regions.
type LifetimeMode int

// Lifetime modes for WithLifetimes.
const (
	LifetimesOff LifetimeMode = iota
	LifetimesObserve
	LifetimesEnforce
)

func (m LifetimeMode) String() string {
	switch m {
	case LifetimesObserve:
		return "observe"
	case LifetimesEnforce:
		return "enforce"
	default:
		return "off"
	}
}

// WithLifetimes sets the run's lifetime-inference mode. The default is
// LifetimesObserve: the classification is computed (and cached on the
// program) and the per-site profiler runs, but every allocation stays on
// the default path, so heap behavior is identical to LifetimesOff.
// LifetimesEnforce turns the classification into placement — program
// output remains bit-identical (the differential battery enforces it);
// only GC work changes.
func WithLifetimes(mode LifetimeMode) Option {
	return func(o *runOptions) { o.lifetimes = mode }
}

// WithHeapSize sets the managed heap budget in bytes (-Xmx). Default is
// 64 MiB.
func WithHeapSize(bytes int) Option {
	return func(o *runOptions) { o.heapSize = bytes }
}

// WithEntry sets the entry function key (default "Main.main"). For
// transformed programs the entry is remapped to the facade twin when the
// entry class was transformed.
func WithEntry(key string) Option {
	return func(o *runOptions) { o.entry = key }
}

// WithRandSeed seeds the deterministic Sys.rand source. Unlike the legacy
// RunConfig.RandSeed (whose zero value silently meant 1), the seed given
// here is honored exactly, including 0.
func WithRandSeed(seed int64) Option {
	return func(o *runOptions) {
		o.randSeed = seed
		o.seedSet = true
	}
}

// WithGCWorkers sets the full-collection mark parallelism (number of
// goroutines tracing the heap during a stop-the-world full GC). 0 picks
// the collector's default. Program output must not depend on this — the
// differential test battery runs the corpus across worker counts to
// enforce exactly that.
func WithGCWorkers(n int) Option {
	return func(o *runOptions) { o.gcWorkers = n }
}

// WithOutput duplicates Sys.print output to w as the program runs; the
// full output remains available from Result.Output.
func WithOutput(w io.Writer) Option {
	return func(o *runOptions) { o.out = w }
}

// WithObserver streams runtime events (GC cycles, iteration boundaries,
// page-manager releases) to fn as they happen. fn runs on VM threads and
// must be fast and must not call back into the VM.
func WithObserver(fn func(Event)) Option {
	return func(o *runOptions) { o.observer = fn }
}

// WithVerify runs the IR verifier and the facade-safety linter
// (internal/analysis) over the program before execution. A verifier error
// or any lint finding fails the Run call; the number of functions checked
// and findings raised appear in RunStats.Analysis and under the
// analysis.* counters.
func WithVerify() Option {
	return func(o *runOptions) { o.verify = true }
}

// WithReusedVM runs the program on a warm VM from a previous run instead of
// building a fresh one. The VM must have been built for the same *ir.Program
// and with the same heap size as this run requests; Run resets all job
// state (heap contents, statics, string cache, handles, RNG, counters) so
// output is bit-identical to a cold run, while the expensive parts — heap
// arena, dispatch tables, facade metadata, recycled page pool — stay warm.
// The reset fails (and the Run call errors) if the VM still has live
// threads or live pages, so a poisoned VM is never silently reused.
func WithReusedVM(m *vm.VM) Option {
	return func(o *runOptions) { o.reuseVM = m }
}

// WithPageQuota caps the number of live off-heap pages the run may hold at
// once. Exceeding the quota surfaces as offheap.ErrPageQuota, which wraps
// ErrPageExhausted and therefore rides the same degradation rails as real
// page exhaustion. 0 (the default) means unlimited. The repro serve daemon
// uses this to bound each tenant's off-heap footprint.
func WithPageQuota(pages int64) Option {
	return func(o *runOptions) { o.pageQuota = pages }
}

// WithTiering spills cold off-heap pages to a file-backed store under dir
// (mmap on linux, pread/pwrite elsewhere) once more than highPages pages
// are resident in DRAM, evicting down to lowPages. Spilled pages promote
// back transparently on access, and iteration-end bulk release drops them
// without reading them back. Program output is bit-identical with tiering
// on or off (the tier-equivalence battery enforces it); only residency
// changes. Applies to transformed programs only — untransformed programs
// have no off-heap pages — and composes with WithPageQuota, which then
// caps resident pages rather than live pages: the run spills before it
// fails. Pass highPages <= 0 to disable.
func WithTiering(dir string, highPages, lowPages int) Option {
	return func(o *runOptions) {
		o.tierDir = dir
		o.tierHigh = highPages
		o.tierLow = lowPages
	}
}

// WithFaultAttempt re-derives the fault seed for automatic re-run attempt
// n (n >= 2): a transiently failed job that a daemon retries must not
// deterministically replay the exact same injected failures, while the
// derivation stays a pure function of (spec, n) so a crash-recovery
// replay — which restarts every job at attempt 1 — still reproduces the
// original run bit for bit. Values below 2 are no-ops (attempt 1 runs
// the spec's own seed).
func WithFaultAttempt(n int) Option {
	return func(o *runOptions) { o.faultAttempt = n }
}

// WithFaults enables deterministic fault injection from a spec string like
// "alloc=0.001,page=0.001,seed=7" (see docs/ROBUSTNESS.md for the grammar;
// an empty spec disables injection). Injected heap and page-store failures
// surface exactly like real memory exhaustion — as OutOfMemoryError /
// heap.ErrOutOfMemory — and the counts absorbed appear in
// RunStats.Faults. A malformed spec fails the Run call.
func WithFaults(spec string) Option {
	return func(o *runOptions) {
		cfg, err := faults.Parse(spec)
		if err != nil {
			o.faultsErr = fmt.Errorf("faults spec: %w", err)
			return
		}
		o.faults = &cfg
	}
}
