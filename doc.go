// Package repro is a from-scratch Go reproduction of "FACADE: A Compiler
// and Runtime for (Almost) Object-Bounded Big Data Applications" (Nguyen,
// Wang, Bu, Fang, Hu, Xu — ASPLOS 2015).
//
// The repository contains the paper's contribution — the FACADE compiler
// transform (internal/core) and its off-heap page runtime
// (internal/offheap) — together with every substrate the evaluation
// depends on: a small managed object language and VM with a generational
// garbage collector (internal/lang, internal/ir, internal/lower,
// internal/vm, internal/heap), and reimplementations of the three
// evaluated frameworks, GraphChi (internal/graphchi), Hyracks
// (internal/hyracks) on a simulated shared-nothing cluster
// (internal/cluster, internal/dfs), and GPS (internal/gps).
//
// The public API lives in the facade package: Compile, Transform, and Run
// with functional options (WithHeapSize, WithEntry, WithRandSeed,
// WithObserver); Result.Stats returns a self-contained RunStats mirror of
// everything a run measured. The measurements come from a per-VM stats
// registry (internal/obs) — counters, gauges, GC-pause histograms, and a
// bounded event stream — documented in docs/OBSERVABILITY.md.
//
// cmd/repro regenerates every table and figure of the paper's §4 (add
// -json for machine-readable run reports); cmd/facadec is the standalone
// compiler driver. bench_test.go in this directory hosts one benchmark per
// reproduced table/figure plus ablations. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
package repro
