// Command repro regenerates every table and figure of the FACADE paper's
// evaluation (§4) on the reproduction stack: the FJ VM with its
// generational collector for program P, and the FACADE transform plus
// off-heap page runtime for program P'. Sizes are scaled to the
// interpreter (see DESIGN.md) and adjustable by flags.
//
// Usage:
//
//	repro table2   [flags]   GraphChi PR/CC across heap budgets
//	repro fig4a    [flags]   GraphChi throughput vs graph size
//	repro table3   [flags]   Hyracks ES/WC across dataset sizes (with OME)
//	repro fig4bc   [flags]   Hyracks peak memory for ES and WC
//	repro gps      [flags]   GPS PR / k-means / random walk (§4.3)
//	repro objcount [flags]   §4.1 object-bound census
//	repro speed    [flags]   transform compilation speed (§4.1-4.3)
//	repro bench    [flags]   measurement harness + regression gate (docs/PERFORMANCE.md)
//	repro all                everything at default (small) scale
//
// Daemon mode (docs/SERVER.md):
//
//	repro serve    [flags]   run the multi-tenant job daemon in the foreground
//	repro submit   [flags]   submit FJ sources to the daemon (auto-starts it)
//	repro wait     [flags]   wait for submitted jobs and print their output
//	repro status   [flags]   print daemon status (jobs, budgets, warm pool)
//	repro load     [flags]   deterministic load harness + sustained-throughput gate
//	repro shutdown [flags]   stop the daemon (-drain for a graceful stop)
package main

import (
	"fmt"
	"os"
)

var commands = map[string]func([]string) error{
	"table2":   table2Cmd,
	"fig4a":    fig4aCmd,
	"table3":   table3Cmd,
	"fig4bc":   fig4bcCmd,
	"gps":      gpsCmd,
	"objcount": objcountCmd,
	"speed":    speedCmd,
	"bench":    benchCmd,
	"serve":    serveCmd,
	"submit":   submitCmd,
	"wait":     waitCmd,
	"status":   statusCmd,
	"load":     loadCmd,
	"shutdown": shutdownCmd,
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	if name == "all" {
		for _, n := range []string{"speed", "objcount", "table2", "fig4a", "table3", "fig4bc", "gps"} {
			fmt.Printf("\n== %s ==\n", n)
			if err := commands[n](nil); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
				os.Exit(1)
			}
		}
		return
	}
	cmd, ok := commands[name]
	if !ok {
		usage()
		os.Exit(2)
	}
	if err := cmd(os.Args[2:]); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: repro {table2|fig4a|table3|fig4bc|gps|objcount|speed|bench|serve|submit|wait|status|load|shutdown|all} [flags]")
}
