package main

import (
	"repro/internal/gps"
	"repro/internal/hyracks"
)

func extraSpeedTargets() []speedTarget {
	return []speedTarget{
		{"Hyracks", map[string]string{"hyracks.fj": hyracks.Source}, hyracks.DataClasses},
		{"GPS", map[string]string{"gps.fj": gps.Source}, gps.DataClasses},
	}
}
