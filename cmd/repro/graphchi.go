package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/graphchi"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/offheap"
)

// table2Cmd reproduces Table 2: GraphChi PR and CC under three heap
// budgets, original (P) vs FACADE (P'), reporting ET/UT/LT/GT/PM.
func table2Cmd(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	v := fs.Int("v", 20000, "vertices of the synthetic twitter-like graph")
	e := fs.Int("e", 300000, "edges")
	iters := fs.Int("iters", 2, "graph iterations")
	workers := fs.Int("workers", 4, "update workers")
	baseHeap := fs.Int64("heap", 32<<20, "largest heap budget in bytes (scaled 8:6:4)")
	seed := fs.Uint64("seed", 42, "graph seed")
	faultSpec := fs.String("faults", "", `deterministic fault-injection spec (e.g. "crash=1,allocat=8,seed=7")`)
	tierDir := fs.String("tier-dir", "", "spill directory for P' runs' off-heap disk tier (requires -tier-high)")
	tierHigh := fs.Int("tier-high", 0, "DRAM high watermark in pages for P' runs (0 = no tier)")
	tierLow := fs.Int("tier-low", 0, "eviction target in pages (default half of -tier-high)")
	rpt := reportFlag(fs)
	fs.Parse(args)

	fcfg, err := parseFaultFlag(*faultSpec)
	if err != nil {
		return err
	}
	p, p2, err := graphchi.BuildPrograms()
	if err != nil {
		return err
	}
	var tiering *offheap.TierConfig
	if *tierHigh > 0 {
		low := *tierLow
		if low <= 0 || low > *tierHigh {
			if low = *tierHigh / 2; low < 1 {
				low = 1
			}
		}
		tiering = &offheap.TierConfig{Dir: *tierDir, HighWater: *tierHigh, LowWater: low}
	}
	heaps := []int64{*baseHeap, *baseHeap * 6 / 8, *baseHeap * 4 / 8}
	labels := []string{"8g", "6g", "4g"} // paper-relative labels
	tbl := metrics.NewTable(
		fmt.Sprintf("Table 2: GraphChi on synthetic twitter-like graph (%dV/%dE, scaled heaps)", *v, *e),
		"App", "ET(s)", "UT(s)", "LT(s)", "GT(s)", "PM(MB)", "dataObjs", "subIters")
	var rec graphchi.Recovery
	var tierSpilled, tierPromoted int64

	for _, app := range []graphchi.App{graphchi.PageRank, graphchi.ConnectedComponents} {
		g := datagen.PowerLawGraph(*v, *e, *seed)
		sg := graphchi.Shard(g, 20, app == graphchi.ConnectedComponents)
		for hi, heap := range heaps {
			cfg := graphchi.Config{
				App: app, Workers: *workers, Iterations: *iters,
				MemoryBudget: heap / 2, Faults: fcfg, Tiering: tiering,
			}
			m1, _, err := graphchi.RunProgram(p, int(heap), sg, cfg)
			if err != nil {
				return fmt.Errorf("%s P: %w", app, err)
			}
			m2, _, err := graphchi.RunProgram(p2, int(heap), sg, cfg)
			if err != nil {
				return fmt.Errorf("%s P': %w", app, err)
			}
			tbl.Row(fmt.Sprintf("%s-%s", app, labels[hi]), m1.ET, m1.UT, m1.LT, m1.GT, metrics.MB(m1.PM), m1.DataObjects, m1.SubIters)
			tbl.Row(fmt.Sprintf("%s'-%s", app, labels[hi]), m2.ET, m2.UT, m2.LT, m2.GT, metrics.MB(m2.PM), m2.DataObjects, m2.SubIters)
			rpt.add(graphchiReport(fmt.Sprintf("table2/%s-%s", app, labels[hi]), "P", cfg, heap, m1))
			rpt.add(graphchiReport(fmt.Sprintf("table2/%s'-%s", app, labels[hi]), "P'", cfg, heap, m2))
			tierSpilled += m2.PagesSpilled
			tierPromoted += m2.PagesPromoted
			for _, m := range []*graphchi.Metrics{m1, m2} {
				rec.IntervalRetries += m.Recovery.IntervalRetries
				rec.WorkerCrashes += m.Recovery.WorkerCrashes
				rec.WorkerRestarts += m.Recovery.WorkerRestarts
				rec.OOMRecoveries += m.Recovery.OOMRecoveries
				rec.BudgetHalvings += m.Recovery.BudgetHalvings
			}
		}
	}
	tbl.Render(os.Stdout)
	if fcfg != nil {
		fmt.Printf("fault injection: %d interval replays, %d worker crashes, %d worker restarts, %d OOM recoveries, %d budget halvings\n",
			rec.IntervalRetries, rec.WorkerCrashes, rec.WorkerRestarts, rec.OOMRecoveries, rec.BudgetHalvings)
	}
	if tiering != nil {
		fmt.Printf("disk tier (watermark %d/%d pages): %d pages spilled, %d promoted across P' runs\n",
			tiering.HighWater, tiering.LowWater, tierSpilled, tierPromoted)
	}
	return rpt.flush()
}

// fig4aCmd reproduces Figure 4(a): computational throughput (edges/s) as
// graph size grows, for PR, CC, PR', CC'.
func fig4aCmd(args []string) error {
	fs := flag.NewFlagSet("fig4a", flag.ExitOnError)
	baseV := fs.Int("v", 4000, "vertices of the smallest graph")
	baseE := fs.Int("e", 60000, "edges of the smallest graph")
	steps := fs.Int("steps", 4, "number of graph sizes")
	iters := fs.Int("iters", 3, "graph iterations")
	workers := fs.Int("workers", 4, "update workers")
	heap := fs.Int64("heap", 16<<20, "heap budget")
	reps := fs.Int("reps", 3, "repetitions (throughput averaged)")
	fs.Parse(args)

	p, p2, err := graphchi.BuildPrograms()
	if err != nil {
		return err
	}
	tbl := metrics.NewTable("Figure 4(a): GraphChi throughput (edges/sec) vs graph size",
		"edges", "PR", "PR'", "CC", "CC'")
	for s := 1; s <= *steps; s++ {
		v := *baseV * s
		e := *baseE * s
		row := []any{e}
		for _, app := range []graphchi.App{graphchi.PageRank, graphchi.ConnectedComponents} {
			g := datagen.PowerLawGraph(v, e, 42)
			sg := graphchi.Shard(g, 20, app == graphchi.ConnectedComponents)
			cfg := graphchi.Config{App: app, Workers: *workers, Iterations: *iters, MemoryBudget: *heap / 2}
			// Average throughput across reps (single runs are noisy at
			// sub-second scale; the paper fits least-squares trend lines
			// over many runs).
			avg := func(prog *irProg) (float64, error) {
				total := 0.0
				for r := 0; r < *reps; r++ {
					m, _, err := graphchi.RunProgram(prog, int(*heap), sg, cfg)
					if err != nil {
						return 0, err
					}
					total += m.Throughput()
				}
				return total / float64(*reps), nil
			}
			t1, err := avg(p)
			if err != nil {
				return err
			}
			t2, err := avg(p2)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.0f", t1), fmt.Sprintf("%.0f", t2))
		}
		tbl.Row(row...)
	}
	tbl.Render(os.Stdout)
	return nil
}

// irProg aliases the IR program type for the avg closure signature.
type irProg = ir.Program
