package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graphchi"
	"repro/internal/obs"
)

// reporter accumulates machine-readable run reports for a subcommand and
// writes them as one JSON document when the command finishes. Commands
// register it with the -json flag; an empty path disables it.
type reporter struct {
	path    string
	reports []obs.RunReport
}

// reportFlag registers -json on fs and returns the collector.
func reportFlag(fs *flag.FlagSet) *reporter {
	r := &reporter{}
	fs.StringVar(&r.path, "json", "", "write a machine-readable run report (JSON) to this file")
	return r
}

func (r *reporter) enabled() bool { return r.path != "" }

func (r *reporter) add(rep obs.RunReport) {
	if r.enabled() {
		r.reports = append(r.reports, rep)
	}
}

// flush writes the accumulated reports; a no-op when -json was not given.
func (r *reporter) flush() error {
	if !r.enabled() {
		return nil
	}
	f, err := os.Create(r.path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.EncodeReports(f, r.reports); err != nil {
		return fmt.Errorf("writing %s: %w", r.path, err)
	}
	fmt.Printf("wrote %d run report(s) to %s\n", len(r.reports), r.path)
	return nil
}

// graphchiReport converts one GraphChi run's metrics into a RunReport.
func graphchiReport(name, program string, cfg graphchi.Config, heapBytes int64, m *graphchi.Metrics) obs.RunReport {
	rep := obs.NewRunReport(name, program)
	rep.Config = map[string]any{
		"app":           cfg.App.String(),
		"workers":       cfg.Workers,
		"iterations":    cfg.Iterations,
		"heap_bytes":    heapBytes,
		"memory_budget": cfg.MemoryBudget,
	}
	rep.WallNanos = m.ET.Nanoseconds()
	rep.Metrics = map[string]float64{
		"et_s":           m.ET.Seconds(),
		"ut_s":           m.UT.Seconds(),
		"lt_s":           m.LT.Seconds(),
		"gt_s":           m.GT.Seconds(),
		"pm_bytes":       float64(m.PM),
		"heap_peak":      float64(m.HeapPeak),
		"native_peak":    float64(m.NativePeak),
		"minor_gcs":      float64(m.MinorGCs),
		"full_gcs":       float64(m.FullGCs),
		"sub_iters":      float64(m.SubIters),
		"data_objects":   float64(m.DataObjects),
		"pages":          float64(m.Pages),
		"pages_live_hw":  float64(m.PagesLiveHW),
		"records":        float64(m.Records),
		"edges":          float64(m.Edges),
		"throughput_eps": m.Throughput(),
	}
	rep.ClassAllocs = m.ClassAllocs
	rep.Obs = m.Obs
	return rep
}
