package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/gps"
	"repro/internal/graphchi"
	"repro/internal/hyracks"
	"repro/internal/obs"
)

// reporter accumulates machine-readable run reports for a subcommand and
// writes them as one JSON document when the command finishes. Commands
// register it with the -json flag; an empty path disables it.
type reporter struct {
	path    string
	reports []obs.RunReport
}

// reportFlag registers -json on fs and returns the collector.
func reportFlag(fs *flag.FlagSet) *reporter {
	r := &reporter{}
	fs.StringVar(&r.path, "json", "", "write a machine-readable run report (JSON) to this file")
	return r
}

func (r *reporter) enabled() bool { return r.path != "" }

func (r *reporter) add(rep obs.RunReport) {
	if r.enabled() {
		r.reports = append(r.reports, rep)
	}
}

// flush writes the accumulated reports; a no-op when -json was not given.
func (r *reporter) flush() error {
	if !r.enabled() {
		return nil
	}
	f, err := os.Create(r.path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.EncodeReports(f, r.reports); err != nil {
		return fmt.Errorf("writing %s: %w", r.path, err)
	}
	fmt.Printf("wrote %d run report(s) to %s\n", len(r.reports), r.path)
	return nil
}

// gpsReport converts one GPS run into a RunReport, including the run's
// fault-recovery and network counters.
func gpsReport(name, program string, cfg gps.Config, edges int, r *gps.Result) obs.RunReport {
	rep := obs.NewRunReport(name, program)
	rep.Config = map[string]any{
		"app":        cfg.App.String(),
		"nodes":      cfg.Nodes,
		"heap_bytes": cfg.HeapPerNode,
		"supersteps": cfg.Supersteps,
		"edges":      edges,
	}
	if cfg.Faults != nil {
		rep.Config["faults"] = cfg.Faults
	}
	rep.WallNanos = r.ET.Nanoseconds()
	rep.Metrics = map[string]float64{
		"et_s":                r.ET.Seconds(),
		"gt_s":                r.GT.Seconds(),
		"pm_bytes":            float64(r.PM),
		"heap_peak":           float64(r.HeapPeak),
		"native_peak":         float64(r.NativePeak),
		"minor_gcs":           float64(r.MinorGCs),
		"full_gcs":            float64(r.FullGCs),
		"checkpoints":         float64(r.Recovery.Checkpoints),
		"checkpoint_bytes":    float64(r.Recovery.CheckpointBytes),
		"checkpoints_dropped": float64(r.Recovery.CheckpointsDropped),
		"restores":            float64(r.Recovery.Restores),
		"node_restarts":       float64(r.Recovery.NodeRestarts),
		"crashes":             float64(r.Recovery.Crashes),
		"oom_recoveries":      float64(r.Recovery.OOMRecoveries),
	}
	addNetMetrics(rep.Metrics, r.Net)
	if len(r.NodeObs) > 0 {
		rep.Obs = r.NodeObs[0]
	}
	return rep
}

// hyracksReport converts one Hyracks job run into a RunReport, including
// the run's fault-recovery and network counters.
func hyracksReport(name, program string, sizeGB int, r *hyracks.Result) obs.RunReport {
	rep := obs.NewRunReport(name, program)
	rep.Config = map[string]any{
		"job":     r.Job,
		"size_gb": sizeGB,
	}
	rep.WallNanos = r.ET.Nanoseconds()
	ome := 0.0
	if r.OME {
		ome = 1
	}
	rep.Metrics = map[string]float64{
		"et_s":           r.ET.Seconds(),
		"gt_s":           r.GT.Seconds(),
		"ome":            ome,
		"pm_bytes":       float64(r.PM),
		"heap_peak":      float64(r.HeapPeak),
		"native_peak":    float64(r.NativePeak),
		"minor_gcs":      float64(r.MinorGCs),
		"full_gcs":       float64(r.FullGCs),
		"shuffled_mb":    r.ShuffledMB,
		"output_bytes":   float64(r.OutputBytes),
		"crashes":        float64(r.Recovery.Crashes),
		"node_restarts":  float64(r.Recovery.NodeRestarts),
		"task_retries":   float64(r.Recovery.TaskRetries),
		"tasks_degraded": float64(r.Recovery.TasksDegraded),
		"oom_recoveries": float64(r.Recovery.OOMRecoveries),
	}
	addNetMetrics(rep.Metrics, r.Net)
	if len(r.NodeObs) > 0 {
		rep.Obs = r.NodeObs[0]
	}
	return rep
}

// addNetMetrics folds the cluster network counters into a metrics map.
func addNetMetrics(m map[string]float64, n cluster.NetStats) {
	m["net_frames_sent"] = float64(n.FramesSent)
	m["net_frames_delivered"] = float64(n.FramesDelivered)
	m["net_drops"] = float64(n.Drops)
	m["net_retries"] = float64(n.Retries)
	m["net_dups"] = float64(n.Dups)
	m["net_deduped"] = float64(n.Deduped)
	m["net_reorders"] = float64(n.Reorders)
	m["net_delays"] = float64(n.Delays)
	m["net_black_holed"] = float64(n.BlackHoled)
}

// graphchiReport converts one GraphChi run's metrics into a RunReport.
func graphchiReport(name, program string, cfg graphchi.Config, heapBytes int64, m *graphchi.Metrics) obs.RunReport {
	rep := obs.NewRunReport(name, program)
	rep.Config = map[string]any{
		"app":           cfg.App.String(),
		"workers":       cfg.Workers,
		"iterations":    cfg.Iterations,
		"heap_bytes":    heapBytes,
		"memory_budget": cfg.MemoryBudget,
	}
	if cfg.Faults != nil {
		rep.Config["faults"] = cfg.Faults
	}
	rep.WallNanos = m.ET.Nanoseconds()
	rep.Metrics = map[string]float64{
		"et_s":             m.ET.Seconds(),
		"ut_s":             m.UT.Seconds(),
		"lt_s":             m.LT.Seconds(),
		"gt_s":             m.GT.Seconds(),
		"pm_bytes":         float64(m.PM),
		"heap_peak":        float64(m.HeapPeak),
		"native_peak":      float64(m.NativePeak),
		"minor_gcs":        float64(m.MinorGCs),
		"full_gcs":         float64(m.FullGCs),
		"sub_iters":        float64(m.SubIters),
		"data_objects":     float64(m.DataObjects),
		"pages":            float64(m.Pages),
		"pages_live_hw":    float64(m.PagesLiveHW),
		"records":          float64(m.Records),
		"edges":            float64(m.Edges),
		"throughput_eps":   m.Throughput(),
		"interval_retries": float64(m.Recovery.IntervalRetries),
		"worker_crashes":   float64(m.Recovery.WorkerCrashes),
		"worker_restarts":  float64(m.Recovery.WorkerRestarts),
		"oom_recoveries":   float64(m.Recovery.OOMRecoveries),
		"budget_halvings":  float64(m.Recovery.BudgetHalvings),
	}
	rep.ClassAllocs = m.ClassAllocs
	rep.Obs = m.Obs
	return rep
}
