package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/load"
	"repro/internal/server"
)

// loadCmd drives a live daemon with the deterministic workload generator
// (internal/load) and reports sustained throughput, latency percentiles,
// backpressure, and memory health. The -seed contract: two runs with the
// same seed produce bit-identical per-job results (-results files diff
// clean), so the harness doubles as a correctness check under load. With
// -bench the run is also rendered as facade.bench/v1 sustained cases and,
// with -baseline, gated against a committed baseline exactly like `repro
// bench`. CI runs (see .github/workflows/ci.yml load-smoke):
//
//	repro load -seed 7 -jobs 40 -clients 8 -results r1.txt
//	repro load -seed 7 -jobs 40 -clients 8 -results r2.txt   # diff r1 r2
//	repro load -seed 7 ... -bench LOAD_pr.json -baseline BENCH_main.json -report-only
func loadCmd(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	portFile := fs.String("portfile", server.DefaultPortFile(), "daemon discovery file")
	seed := fs.Int64("seed", 1, "workload seed (same seed = bit-identical job outputs)")
	jobs := fs.Int("jobs", 100, "total jobs to push through the daemon")
	clients := fs.Int("clients", 16, "concurrent clients (closed loop) or in-flight cap (open loop)")
	rate := fs.Float64("rate", 0, "open-loop arrival rate in jobs/s (0 = closed loop)")
	tenants := fs.Int("tenants", 1, "spread jobs across this many tenants")
	mixStr := fs.String("mix", "", "scenario mix, e.g. pagerank=2,wordcount=1 (default: all equally)")
	faultEvery := fs.Int("fault-every", 0, "give every Nth job an injected-fault schedule (0 = off)")
	quotaEvery := fs.Int("quota-every", 0, "give every Nth job a 1-page quota, forcing an OME (0 = off)")
	retries := fs.Int("retries", 16, "client-side resubmits per job on 429/503")
	jsonPath := fs.String("json", "", "write the full facade.load/v1 report here")
	resultsPath := fs.String("results", "", "write the deterministic per-job results file here")
	benchPath := fs.String("bench", "", "write a facade.bench/v1 file with the sustained cases here")
	profile := fs.String("profile", "smoke", "sustained-case profile name (namespaces the bench cases)")
	baseline := fs.String("baseline", "", "baseline facade.bench/v1 file to gate the sustained cases against")
	tolStr := fs.String("tolerance", "25%", "regression tolerance for the gate")
	reportOnly := fs.Bool("report-only", false, "report gate regressions without failing")
	list := fs.Bool("list", false, "list scenarios and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, s := range load.Scenarios() {
			fmt.Printf("%-12s heap %d MiB, transform %v\n", s.Name, s.HeapSize>>20, s.Transform)
		}
		return nil
	}

	mix, err := parseMix(*mixStr)
	if err != nil {
		return err
	}
	tol, err := parseTolerance(*tolStr)
	if err != nil {
		return err
	}

	// Load drives a daemon someone else owns: discover only, never
	// auto-start — measuring a daemon this process just booted (cold
	// pools, replay in progress) would not be a sustained measurement.
	c, err := server.Discover(*portFile)
	if err != nil {
		return fmt.Errorf("no daemon (start one with `repro serve`): %w", err)
	}

	rep, err := load.Run(c, load.Config{
		Seed:       *seed,
		Jobs:       *jobs,
		Clients:    *clients,
		Rate:       *rate,
		Tenants:    *tenants,
		Mix:        mix,
		FaultEvery: *faultEvery,
		QuotaEvery: *quotaEvery,
		MaxRetries: *retries,
		Progress:   os.Stdout,
	})
	if err != nil {
		return err
	}
	printReport(rep)

	if *jsonPath != "" {
		if err := writeTo(*jsonPath, rep.Encode); err != nil {
			return err
		}
	}
	if *resultsPath != "" {
		if err := writeTo(*resultsPath, rep.WriteResults); err != nil {
			return err
		}
	}

	if *benchPath == "" && *baseline == "" {
		return nil
	}
	f := &bench.File{Schema: bench.Schema, Rev: "load-" + *profile, Cases: rep.BenchCases(*profile)}
	// Measure the calibration spin case in-process so the gate can
	// normalize away machine speed, same as `repro bench`.
	if cal, err := bench.Run(bench.Options{
		Reps: 3, Filter: regexp.MustCompile("^" + regexp.QuoteMeta(bench.CalibrationCase) + "$"),
	}); err == nil {
		f.Cases = append(f.Cases, cal.Cases...)
	}
	if *benchPath != "" {
		if err := f.WriteFile(*benchPath); err != nil {
			return err
		}
		fmt.Printf("wrote %d sustained case(s) to %s\n", len(f.Cases), *benchPath)
	}
	if *baseline == "" {
		return nil
	}
	base, err := bench.ReadFile(*baseline)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	deltas, regressed := bench.Compare(base, f, tol)
	fmt.Printf("\nvs %s (rev %s, tolerance %.0f%%):\n", *baseline, base.Rev, tol*100)
	for _, d := range deltas {
		mark := "  "
		if d.Regressed {
			mark = "!!"
		}
		fmt.Printf("%s %-28s %8.3fx (normalized %.3fx)\n", mark, d.Name, d.Ratio, d.NormRatio)
	}
	if regressed > 0 {
		if *reportOnly {
			fmt.Printf("%d case(s) regressed beyond %.0f%% (report-only, not failing)\n", regressed, tol*100)
			return nil
		}
		return fmt.Errorf("%d sustained case(s) regressed beyond %.0f%%", regressed, tol*100)
	}
	fmt.Println("no sustained regressions")
	return nil
}

func parseMix(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	mix := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		name, wstr, found := strings.Cut(strings.TrimSpace(part), "=")
		w := 1
		if found {
			var err error
			if w, err = strconv.Atoi(wstr); err != nil {
				return nil, fmt.Errorf("bad -mix entry %q", part)
			}
		}
		mix[name] = w
	}
	return mix, nil
}

func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printReport(r *load.Report) {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Printf("\nload: %d jobs, %d clients, %s loop, seed %d\n", r.Jobs, r.Clients, r.Mode, r.Seed)
	fmt.Printf("  throughput   %8.1f jobs/s  (wall %.2fs)\n", r.JobsPerSec, float64(r.WallNS)/1e9)
	fmt.Printf("  latency      p50 %.1fms  p95 %.1fms  p99 %.1fms  max %.1fms\n",
		ms(r.LatencyP50NS), ms(r.LatencyP95NS), ms(r.LatencyP99NS), ms(r.LatencyMaxNS))
	fmt.Printf("  backpressure %d rejections, %d client retries\n", r.Rejections, r.ClientRetries)
	fmt.Printf("  memory       gc pause share %.2f%%, ome rate %.2f%%\n", r.GCPauseShare*100, r.OMERate*100)
	fmt.Printf("  warm pool    %.0f%% warm hits; queue depth max %d\n", r.WarmHitRate*100, r.QueueMaxDepth)
	states := make([]string, 0, len(r.States))
	for s, n := range r.States {
		states = append(states, fmt.Sprintf("%s=%d", s, n))
	}
	sort.Strings(states)
	fmt.Printf("  states       %s\n", strings.Join(states, " "))
	fmt.Printf("  results      %s\n", r.ResultsDigest)
}
