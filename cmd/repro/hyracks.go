package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/faults"
	"repro/internal/hyracks"
	"repro/internal/ir"
	"repro/internal/metrics"
)

// hyracksScale holds the shared flags of the Hyracks experiments.
type hyracksScale struct {
	nodes   int
	heap    int64
	unit    int64
	sizes   []int
	uniq    int
	keyLen  int
	recLen  int
	runRecs int
}

func hyracksFlags(fs *flag.FlagSet) *hyracksScale {
	s := &hyracksScale{sizes: []int{3, 5, 10, 14, 19}}
	fs.IntVar(&s.nodes, "nodes", 2, "cluster nodes (paper: 10 machines / 80 workers)")
	fs.Int64Var(&s.heap, "heap", 4<<20, "per-node heap budget in bytes (paper: 8GB)")
	fs.Int64Var(&s.unit, "unit", 96<<10, "bytes per paper-GB of dataset")
	fs.IntVar(&s.uniq, "uniq", 200, "unique tokens per 1000 words (web-data identifiers)")
	fs.IntVar(&s.keyLen, "keylen", 8, "ES key length")
	fs.IntVar(&s.recLen, "reclen", 32, "ES record length")
	fs.IntVar(&s.runRecs, "run", 4096, "ES records per sorted run")
	return s
}

type hyracksPoint struct {
	size int
	res  *hyracks.Result
}

// runHyracks runs one app over all dataset sizes for one program. fcfg,
// when non-nil, enables deterministic fault injection on every run.
func runHyracks(prog *ir.Program, app string, s *hyracksScale, fairCap int64, fcfg *faults.Config) ([]hyracksPoint, error) {
	var out []hyracksPoint
	for _, size := range s.sizes {
		total := int(int64(size) * s.unit)
		var parts [][]byte
		var job hyracks.Job
		if app == "WC" {
			corpus := datagen.CorpusSkewed(total, s.uniq, uint64(size))
			parts = datagen.Partition(corpus, s.nodes)
			job = hyracks.WordCountJob{}
		} else {
			nRecs := total / s.recLen
			recs := datagen.SortRecords(nRecs, s.keyLen, s.recLen-s.keyLen, uint64(size))
			var data []byte
			for _, r := range recs {
				data = append(data, r...)
			}
			per := (nRecs / s.nodes) * s.recLen
			parts = make([][]byte, s.nodes)
			for i := 0; i < s.nodes; i++ {
				lo := i * per
				hi := lo + per
				if i == s.nodes-1 {
					hi = len(data)
				}
				parts[i] = data[lo:hi]
			}
			job = hyracks.ExternalSortJob{KeyLen: s.keyLen, RecLen: s.recLen, RunRecords: s.runRecs}
		}
		res, err := hyracks.RunJob(prog, job, parts,
			cluster.Config{NumNodes: s.nodes, HeapPerNode: int(s.heap), Faults: fcfg}, fairCap, dfs.New())
		if err != nil {
			return nil, fmt.Errorf("%s size %d: %w", app, size, err)
		}
		out = append(out, hyracksPoint{size, res})
	}
	return out, nil
}

func fmtET(r *hyracks.Result) string {
	if r.OME {
		return fmt.Sprintf("OME(%.1f)", r.OMEAt.Seconds())
	}
	return fmt.Sprintf("%.1f", r.ET.Seconds())
}

// table3Cmd reproduces Table 3: ES and WC total times across dataset
// sizes, with OME(n) marking out-of-memory failures.
func table3Cmd(args []string) error {
	fs := flag.NewFlagSet("table3", flag.ExitOnError)
	s := hyracksFlags(fs)
	faultSpec := fs.String("faults", "", `deterministic fault-injection spec (e.g. "drop=0.05,crash=1,seed=7")`)
	rpt := reportFlag(fs)
	fs.Parse(args)
	fcfg, err := parseFaultFlag(*faultSpec)
	if err != nil {
		return err
	}
	p, p2, err := hyracks.BuildPrograms()
	if err != nil {
		return err
	}
	// Fairness cap for P': the per-node heap budget (the paper caps P' at
	// the same 8GB P gets).
	type runSet struct {
		label string
		prog  *ir.Program
		cap   int64
	}
	runs := []runSet{{"", p, 0}, {"'", p2, s.heap * 8}}
	results := map[string][]hyracksPoint{}
	var rec hyracks.Recovery
	for _, app := range []string{"ES", "WC"} {
		for _, rs := range runs {
			pts, err := runHyracks(rs.prog, app, s, rs.cap, fcfg)
			if err != nil {
				return err
			}
			prgName := "P" + rs.label
			for _, pt := range pts {
				rpt.add(hyracksReport(fmt.Sprintf("table3/%s-%dGB", app, pt.size), prgName, pt.size, pt.res))
				rec.Crashes += pt.res.Recovery.Crashes
				rec.NodeRestarts += pt.res.Recovery.NodeRestarts
				rec.TaskRetries += pt.res.Recovery.TaskRetries
				rec.TasksDegraded += pt.res.Recovery.TasksDegraded
				rec.OOMRecoveries += pt.res.Recovery.OOMRecoveries
			}
			results[app+rs.label] = pts
		}
	}
	tbl := metrics.NewTable(
		fmt.Sprintf("Table 3: Hyracks total times (s) on %d nodes, heap %s MB/node, dataset unit %d KB",
			s.nodes, metrics.MB(s.heap), s.unit>>10),
		"Data", "ES", "ES'", "WC", "WC'", "GT-ES", "GT-ES'", "GT-WC", "GT-WC'")
	for i, size := range s.sizes {
		tbl.Row(fmt.Sprintf("%dGB", size),
			fmtET(results["ES"][i].res), fmtET(results["ES'"][i].res),
			fmtET(results["WC"][i].res), fmtET(results["WC'"][i].res),
			results["ES"][i].res.GT, results["ES'"][i].res.GT,
			results["WC"][i].res.GT, results["WC'"][i].res.GT)
	}
	tbl.Render(os.Stdout)
	if fcfg != nil {
		fmt.Printf("fault injection: %d crashes, %d node restarts, %d task retries, %d tasks degraded, %d OOM recoveries\n",
			rec.Crashes, rec.NodeRestarts, rec.TaskRetries, rec.TasksDegraded, rec.OOMRecoveries)
	}
	return rpt.flush()
}

// fig4bcCmd reproduces Figure 4(b) and 4(c): peak per-node memory of ES
// and WC across dataset sizes (bars: P, line: P').
func fig4bcCmd(args []string) error {
	fs := flag.NewFlagSet("fig4bc", flag.ExitOnError)
	s := hyracksFlags(fs)
	fs.Parse(args)
	p, p2, err := hyracks.BuildPrograms()
	if err != nil {
		return err
	}
	for _, app := range []string{"ES", "WC"} {
		pts, err := runHyracks(p, app, s, 0, nil)
		if err != nil {
			return err
		}
		pts2, err := runHyracks(p2, app, s, 0, nil)
		if err != nil {
			return err
		}
		fig := "4(b)"
		if app == "WC" {
			fig = "4(c)"
		}
		tbl := metrics.NewTable(
			fmt.Sprintf("Figure %s: %s peak memory per node (MB)", fig, app),
			"Data", app+" (P)", app+"' (P')", "P heap", "P' heap", "P' native")
		for i, size := range s.sizes {
			r, r2 := pts[i].res, pts2[i].res
			pm := metrics.MB(r.PM)
			if r.OME {
				pm = "OME"
			}
			tbl.Row(fmt.Sprintf("%dGB", size), pm, metrics.MB(r2.PM),
				metrics.MB(r.HeapPeak), metrics.MB(r2.HeapPeak), metrics.MB(r2.NativePeak))
		}
		tbl.Render(os.Stdout)
	}
	return nil
}
