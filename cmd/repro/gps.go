package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/gps"
	"repro/internal/metrics"
)

// gpsCmd reproduces §4.3: GPS PageRank, k-means, and random walk over the
// LiveJournal-like graph family, reporting the P vs P' reductions the
// paper quotes (ET 3-15.4%, GT 10-39.8%, space up to 14.4%).
func gpsCmd(args []string) error {
	fs := flag.NewFlagSet("gps", flag.ExitOnError)
	v := fs.Int("v", 6000, "vertices of the base graph")
	e := fs.Int("e", 90000, "edges of the base graph")
	scales := fs.Int("scales", 3, "number of supergraph scales (LiveJournal + synthetic supergraphs)")
	nodes := fs.Int("nodes", 2, "cluster nodes")
	heap := fs.Int64("heap", 16<<20, "per-node heap")
	steps := fs.Int("steps", 4, "supersteps")
	faultSpec := fs.String("faults", "", `deterministic fault-injection spec (e.g. "drop=0.05,crash=1,seed=7")`)
	ckpt := fs.Int("ckpt", 1, "checkpoint every k supersteps (recovery rewinds to the last checkpoint)")
	rpt := reportFlag(fs)
	fs.Parse(args)

	fcfg, err := parseFaultFlag(*faultSpec)
	if err != nil {
		return err
	}
	p, p2, err := gps.BuildPrograms()
	if err != nil {
		return err
	}
	tbl := metrics.NewTable("§4.3: GPS on LiveJournal-like graphs (P vs P')",
		"app", "graph", "ET(s)", "ET'(s)", "ΔET%", "GT(s)", "GT'(s)", "ΔGT%", "PM(MB)", "PM'(MB)", "ΔPM%")
	var rec gps.Recovery
	for _, app := range []gps.App{gps.PageRank, gps.KMeans, gps.RandomWalk} {
		for s := 1; s <= *scales; s++ {
			g := datagen.PowerLawGraph(*v*s, *e*s, uint64(100+s))
			cfg := gps.Config{App: app, Nodes: *nodes, HeapPerNode: int(*heap), Supersteps: *steps, Seed: 7, Faults: fcfg, CheckpointInterval: *ckpt}
			r1, err := gps.Run(p, g, cfg)
			if err != nil {
				return fmt.Errorf("%s x%d P: %w", app, s, err)
			}
			r2, err := gps.Run(p2, g, cfg)
			if err != nil {
				return fmt.Errorf("%s x%d P': %w", app, s, err)
			}
			name := fmt.Sprintf("gps/%s-x%d", app, s)
			rpt.add(gpsReport(name, "P", cfg, g.NumEdges(), r1))
			rpt.add(gpsReport(name, "P'", cfg, g.NumEdges(), r2))
			for _, r := range []*gps.Result{r1, r2} {
				rec.Checkpoints += r.Recovery.Checkpoints
				rec.CheckpointsDropped += r.Recovery.CheckpointsDropped
				rec.Restores += r.Recovery.Restores
				rec.NodeRestarts += r.Recovery.NodeRestarts
				rec.Crashes += r.Recovery.Crashes
				rec.OOMRecoveries += r.Recovery.OOMRecoveries
			}
			tbl.Row(app.String(), fmt.Sprintf("x%d(%dE)", s, g.NumEdges()),
				r1.ET, r2.ET, pct(r1.ET.Seconds(), r2.ET.Seconds()),
				r1.GT, r2.GT, pct(r1.GT.Seconds(), r2.GT.Seconds()),
				metrics.MB(r1.PM), metrics.MB(r2.PM), pct(float64(r1.PM), float64(r2.PM)))
		}
	}
	tbl.Render(os.Stdout)
	if fcfg != nil {
		fmt.Printf("fault injection: %d checkpoints (%d dropped), %d crashes, %d node restarts, %d restores, %d OOM recoveries\n",
			rec.Checkpoints, rec.CheckpointsDropped, rec.Crashes, rec.NodeRestarts, rec.Restores, rec.OOMRecoveries)
	}
	return rpt.flush()
}

// parseFaultFlag turns a -faults spec into a config (nil when empty).
func parseFaultFlag(spec string) (*faults.Config, error) {
	if spec == "" {
		return nil, nil
	}
	c, err := faults.Parse(spec)
	if err != nil {
		return nil, fmt.Errorf("-faults: %w", err)
	}
	return &c, nil
}

// pct formats the reduction of b relative to a.
func pct(a, b float64) string {
	if a == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*(a-b)/a)
}
