package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/graphchi"
	"repro/internal/metrics"

	"repro/facade"
)

// objcountCmd reproduces the §4.1 object census: data-type heap objects in
// P vs P' (facades + pages) for a GraphChi PR run.
func objcountCmd(args []string) error {
	fs := flag.NewFlagSet("objcount", flag.ExitOnError)
	v := fs.Int("v", 10000, "vertices")
	e := fs.Int("e", 150000, "edges")
	rpt := reportFlag(fs)
	fs.Parse(args)

	p, p2, err := graphchi.BuildPrograms()
	if err != nil {
		return err
	}
	g := datagen.PowerLawGraph(*v, *e, 42)
	sg := graphchi.Shard(g, 20, false)
	cfg := graphchi.Config{App: graphchi.PageRank, Workers: 4, Iterations: 2, MemoryBudget: 8 << 20}
	const heapSize = 48 << 20

	m1, _, err := graphchi.RunProgram(p, heapSize, sg, cfg)
	if err != nil {
		return err
	}
	m2, _, err := graphchi.RunProgram(p2, heapSize, sg, cfg)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable("§4.1 object census (GraphChi PR, data classes ChiVertex/ChiPointer/VertexDegree)",
		"program", "data heap objects", "native pages", "page records")
	tbl.Row("P", m1.DataObjects, 0, 0)
	tbl.Row("P'", m2.DataObjects, m2.Pages, m2.Records)
	tbl.Render(os.Stdout)
	fmt.Printf("  reduction: %.0fx fewer data-type heap objects\n",
		float64(m1.DataObjects)/float64(max64(m2.DataObjects, 1)))
	rpt.add(graphchiReport("objcount/P", "P", cfg, heapSize, m1))
	rpt.add(graphchiReport("objcount/P'", "P'", cfg, heapSize, m2))
	return rpt.flush()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// speedCmd reproduces the compilation-speed numbers: the paper reports
// 752.7 (GraphChi), 990 (Hyracks), and 1102 (GPS) Jimple instructions per
// second for the Soot-based transform; we report IR instructions per
// second for ours.
func speedCmd(args []string) error {
	fs := flag.NewFlagSet("speed", flag.ExitOnError)
	reps := fs.Int("reps", 5, "repetitions to average")
	fs.Parse(args)

	targets := []speedTarget{
		{"GraphChi", map[string]string{"graphchi.fj": graphchi.Source}, graphchi.DataClasses},
	}
	targets = append(targets, extraSpeedTargets()...)

	tbl := metrics.NewTable("Transform compilation speed (paper: 753-1102 instr/s on Soot)",
		"framework", "instructions", "time(ms)", "instr/sec")
	for _, tg := range targets {
		p, err := facade.Compile(tg.sources)
		if err != nil {
			return fmt.Errorf("%s: %w", tg.name, err)
		}
		n := p.InstrsInClasses(tg.classes)
		best := time.Duration(1<<62 - 1)
		for r := 0; r < *reps; r++ {
			t0 := time.Now()
			if _, err := core.Transform(p, core.Options{DataClasses: tg.classes}); err != nil {
				return fmt.Errorf("%s: %w", tg.name, err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		tbl.Row(tg.name, n, fmt.Sprintf("%.2f", float64(best.Microseconds())/1000),
			fmt.Sprintf("%.0f", float64(n)/best.Seconds()))
	}
	tbl.Render(os.Stdout)
	return nil
}

// speedTarget describes one framework data path for speedCmd.
type speedTarget struct {
	name    string
	sources map[string]string
	classes []string
}
