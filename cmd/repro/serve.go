package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

// serveCmd runs the facade.job/v1 daemon in the foreground until it is
// stopped (signal, POST /v1/shutdown, or idle timeout).
func serveCmd(argv []string) error {
	fs := flag.NewFlagSet("repro serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address")
	portFile := fs.String("portfile", server.DefaultPortFile(), "discovery file written after listen")
	budgetMB := fs.Int64("budget", 1024, "aggregate heap budget across queued+running jobs (MiB)")
	tenantMB := fs.Int64("tenant-budget", 0, "default per-tenant heap budget (MiB, 0 = aggregate only)")
	jobs := fs.Int("jobs", 2, "max concurrently executing jobs")
	poolCap := fs.Int("pool", 8, "warm VM pool capacity")
	idle := fs.Duration("idle", 0, "auto-shutdown after this long idle (0 = never)")
	journal := fs.String("journal", "", `job journal path (default "<portfile>.journal", "none" disables)`)
	drain := fs.Duration("drain", 10*time.Second, "SIGTERM drain: how long running jobs may finish")
	faultSpec := fs.String("faults", "", `daemon-level fault spec (e.g. "killat=5" crashes at the 5th journal append)`)
	fs.Parse(argv)

	s, err := server.New(server.Config{
		Addr:          *addr,
		PortFile:      *portFile,
		JournalPath:   *journal,
		HeapBudget:    *budgetMB << 20,
		TenantBudget:  *tenantMB << 20,
		MaxConcurrent: *jobs,
		WarmPoolCap:   *poolCap,
		IdleTimeout:   *idle,
		DrainTimeout:  *drain,
		FaultSpec:     *faultSpec,
	})
	if err != nil {
		return err
	}
	fmt.Printf("repro serve: listening on %s (portfile %s)\n", s.Addr(), *portFile)

	// SIGTERM drains: admission closes, running jobs finish, the queue
	// stays checkpointed in the journal. SIGINT (ctrl-C) and a second
	// signal of either kind stop hard.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		first := <-sig
		go func() {
			<-sig
			ctx, stop := context.WithTimeout(context.Background(), 10*time.Second)
			defer stop()
			s.Shutdown(ctx)
		}()
		ctx, stop := context.WithTimeout(context.Background(), *drain+10*time.Second)
		defer stop()
		if first == syscall.SIGTERM {
			fmt.Println("repro serve: SIGTERM, draining")
			s.Drain(ctx)
		} else {
			s.Shutdown(ctx)
		}
	}()

	s.Wait()
	return nil
}

// submitCmd sends FJ sources to the daemon (auto-starting it when none is
// running) and, unless -nowait is given, waits for the result and prints
// the program output.
func submitCmd(argv []string) error {
	fs := flag.NewFlagSet("repro submit", flag.ExitOnError)
	portFile := fs.String("portfile", server.DefaultPortFile(), "daemon discovery file")
	tenant := fs.String("tenant", "", "tenant name for budget accounting")
	priority := fs.Int("priority", 0, "queue priority (higher runs sooner)")
	transform := fs.Bool("transform", false, "apply the FACADE transform (run P')")
	dataList := fs.String("data", "", "comma-separated data classes for the transform")
	entry := fs.String("entry", "", `entry function (default "Main.main")`)
	heapMB := fs.Int("heap", 64, "managed heap budget (MiB)")
	quota := fs.Int64("quota", 0, "live off-heap page quota (0 = unlimited)")
	tierDir := fs.String("tier-dir", "", "spill directory for the off-heap disk tier (requires -tier-high)")
	tierHigh := fs.Int("tier-high", 0, "DRAM high watermark in pages; cold pages past it spill to disk (0 = no tier)")
	tierLow := fs.Int("tier-low", 0, "eviction target in pages (default half of -tier-high)")
	seed := fs.Int64("seed", 1, "Sys.rand seed")
	faults := fs.String("faults", "", `fault-injection spec (e.g. "alloc=0.001,seed=7")`)
	deadline := fs.Duration("deadline", 0, "per-job deadline (0 = none); exceeding it fails the job")
	attempts := fs.Int("attempts", 0, "max automatic re-runs after transient failures (0/1 = no retry)")
	retries := fs.Int("retries", 0, "client-side resubmits when the daemon rejects admission (429/503)")
	noWait := fs.Bool("nowait", false, "print the job id and exit without waiting")
	noStart := fs.Bool("nostart", false, "require a running daemon instead of auto-starting one")
	oneshot := fs.Bool("oneshot", false, "run in-process without a daemon (reference path)")
	fs.Parse(argv)
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: repro submit [flags] file.fj...")
	}

	sources := make(map[string]string)
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		sources[path] = string(src)
	}
	var data []string
	if *dataList != "" {
		data = strings.Split(*dataList, ",")
	}

	req := server.SubmitRequest{
		Tenant:         *tenant,
		Priority:       *priority,
		Sources:        sources,
		Transform:      *transform,
		DataClasses:    data,
		Entry:          *entry,
		HeapSize:       *heapMB << 20,
		PageQuota:      *quota,
		TierDir:        *tierDir,
		TierHighPages:  *tierHigh,
		TierLowPages:   *tierLow,
		RandSeed:       seed,
		Faults:         *faults,
		DeadlineMillis: deadline.Milliseconds(),
		MaxAttempts:    *attempts,
	}
	if *oneshot {
		out, _, err := server.OneShot(req)
		fmt.Print(out)
		return err
	}
	var c *server.Client
	var err error
	if *noStart {
		c, err = server.Discover(*portFile)
	} else {
		c, err = server.EnsureServer(*portFile, server.StartOptions{})
	}
	if err != nil {
		return err
	}
	resp, err := c.SubmitWithRetry(req, server.SubmitOptions{MaxRetries: *retries})
	if err != nil {
		return err
	}
	if *noWait {
		fmt.Println(resp.JobID)
		return nil
	}
	st, err := c.Wait(resp.JobID)
	if err != nil {
		return err
	}
	fmt.Print(st.Output)
	if st.State != server.StateDone {
		return fmt.Errorf("job %s %s: %s", st.JobID, st.State, st.Error)
	}
	return nil
}

// waitCmd waits for one or more previously submitted jobs (by id) to
// reach a terminal state, printing each job's output. It exits nonzero if
// any job failed — the recovery smoke uses it to collect results that
// were submitted before a daemon crash.
func waitCmd(argv []string) error {
	fs := flag.NewFlagSet("repro wait", flag.ExitOnError)
	portFile := fs.String("portfile", server.DefaultPortFile(), "daemon discovery file")
	fs.Parse(argv)
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: repro wait [flags] job-id...")
	}
	c, err := server.Discover(*portFile)
	if err != nil {
		return err
	}
	var firstErr error
	for _, id := range fs.Args() {
		st, err := c.Wait(id)
		if err != nil {
			return err
		}
		fmt.Print(st.Output)
		if err := st.Err(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// statusCmd prints the daemon's status, or reports that none is running.
func statusCmd(argv []string) error {
	fs := flag.NewFlagSet("repro status", flag.ExitOnError)
	portFile := fs.String("portfile", server.DefaultPortFile(), "daemon discovery file")
	fs.Parse(argv)
	c, err := server.Discover(*portFile)
	if err != nil {
		fmt.Println("no daemon running")
		return nil
	}
	st, err := c.Status()
	if err != nil {
		return err
	}
	return server.EncodeJob(os.Stdout, st)
}

// shutdownCmd stops the daemon if one is running. With -drain it stops
// gracefully: running jobs finish, queued jobs stay checkpointed in the
// journal for the next daemon incarnation.
func shutdownCmd(argv []string) error {
	fs := flag.NewFlagSet("repro shutdown", flag.ExitOnError)
	portFile := fs.String("portfile", server.DefaultPortFile(), "daemon discovery file")
	drain := fs.Bool("drain", false, "drain instead of stopping hard")
	fs.Parse(argv)
	c, err := server.Discover(*portFile)
	if err != nil {
		fmt.Println("no daemon running")
		return nil
	}
	if *drain {
		return c.Drain()
	}
	return c.Shutdown()
}
