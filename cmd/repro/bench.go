package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/bench"
)

// benchCmd runs the measurement harness (internal/bench): warmup +
// repeated runs per case, median/MAD statistics, a stable facade.bench/v1
// JSON artifact, and an optional regression gate against a committed
// baseline. CI runs:
//
//	repro bench -short -json BENCH_pr.json -baseline BENCH_main.json -tolerance 10%
//
// and fails the build when any case's calibration-normalized median
// regresses past the tolerance.
func benchCmd(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	short := fs.Bool("short", false, "run only the smoke-set cases")
	reps := fs.Int("reps", 5, "measured repetitions per case")
	warmup := fs.Int("warmup", 1, "discarded warmup repetitions per case")
	filter := fs.String("filter", "", "regexp selecting case names")
	rev := fs.String("rev", "dev", "revision label stamped into the result file")
	jsonPath := fs.String("json", "", "output path (default BENCH_<rev>.json)")
	baseline := fs.String("baseline", "", "baseline facade.bench/v1 file to gate against")
	tolStr := fs.String("tolerance", "10%", "regression tolerance (e.g. 10% or 0.1)")
	slowdown := fs.Float64("slowdown", 0, "inflate measured times by this factor (gate self-test)")
	list := fs.Bool("list", false, "list cases and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, c := range bench.Cases() {
			tag := ""
			if c.Short {
				tag = "  [short]"
			}
			fmt.Printf("%s%s\n", c.Name, tag)
		}
		return nil
	}
	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			return fmt.Errorf("bad -filter: %w", err)
		}
	}
	tol, err := parseTolerance(*tolStr)
	if err != nil {
		return err
	}

	f, err := bench.Run(bench.Options{
		Reps: *reps, Warmup: *warmup, Short: *short, Filter: re,
		Rev: *rev, Progress: os.Stdout, Slowdown: *slowdown,
	})
	if err != nil {
		return err
	}
	out := *jsonPath
	if out == "" {
		out = "BENCH_" + *rev + ".json"
	}
	if err := f.WriteFile(out); err != nil {
		return err
	}
	fmt.Printf("wrote %d case(s) to %s\n", len(f.Cases), out)

	if *baseline == "" {
		return nil
	}
	base, err := bench.ReadFile(*baseline)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	deltas, regressed := bench.Compare(base, f, tol)
	fmt.Printf("\nvs %s (rev %s, tolerance %.0f%%):\n", *baseline, base.Rev, tol*100)
	for _, d := range deltas {
		mark := "  "
		if d.Regressed {
			mark = "!!"
		}
		fmt.Printf("%s %-28s %8.3fx (normalized %.3fx)\n", mark, d.Name, d.Ratio, d.NormRatio)
	}
	if regressed > 0 {
		return fmt.Errorf("%d case(s) regressed beyond %.0f%%", regressed, tol*100)
	}
	fmt.Println("no regressions")
	return nil
}

// parseTolerance accepts "10%" or a bare fraction like "0.1".
func parseTolerance(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad -tolerance %q", s)
	}
	if pct {
		v /= 100
	}
	return v, nil
}
