// Command facadec is the standalone FACADE compiler driver: it compiles
// FJ source files, applies the FACADE transform for a user-provided data
// class list (§3.1's user obligation), and reports what the paper's
// compiler reports — the detected data-class closure, the per-type facade
// pool bounds, the synthesized conversion functions, and the compilation
// speed in instructions per second.
//
// Usage:
//
//	facadec -data Vertex,Edge [-dump] [-run Main.main] file.fj...
//
// Flags:
//
//	-data C1,C2   seed data classes (required unless -check-only)
//	-strict       disable closure expansion; report assumption violations
//	-dump         print the transformed IR of facade classes
//	-run KEY      execute the given entry point in both P and P' and
//	              compare outputs
//	-heap N       heap size in MiB for -run (default 64)
//	-check-only   parse and type-check only
//
// Subcommands:
//
//	facadec vet [-data C1,C2] [-strict] [-seed KIND] file.fj...
//
// vet compiles each file independently, runs the IR verifier and the
// facade-safety linter over both P and the transformed P', and prints
// file:line diagnostics. Data classes come from -data or from a
// "// facadec: data=C1,C2" directive in the file. Exit status is 1 when
// any file fails to verify or has lint findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/facade"
	"repro/internal/core"
	"repro/internal/ir"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		os.Exit(vetMain(os.Args[2:]))
	}
	dataList := flag.String("data", "", "comma-separated data classes")
	strict := flag.Bool("strict", false, "disable closure expansion (report violations)")
	dump := flag.Bool("dump", false, "dump transformed facade IR")
	run := flag.String("run", "", "entry point to execute in P and P'")
	heapMB := flag.Int("heap", 64, "heap size in MiB for -run")
	checkOnly := flag.Bool("check-only", false, "parse and type-check only")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: facadec -data C1,C2 [flags] file.fj...")
		os.Exit(2)
	}
	sources := map[string]string{}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		sources[path] = string(data)
	}
	prog, err := facade.Compile(sources)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("compiled %d classes, %d functions, %d IR instructions\n",
		len(prog.H.ClassList), len(prog.FuncList), prog.NumInstrs())
	if *checkOnly {
		return
	}
	if *dataList == "" {
		fatal(fmt.Errorf("-data is required (the user-provided data class list, §3.1)"))
	}
	classes := strings.Split(*dataList, ",")
	start := time.Now()
	p2, err := facade.Transform(prog, core.Options{DataClasses: classes, NoAutoClose: *strict})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	n := prog.InstrsInClasses(sortedKeys(p2.DataClasses))
	fmt.Printf("transformed %d data-path instructions in %v (%.0f instr/sec)\n",
		n, elapsed, float64(n)/elapsed.Seconds())

	var names []string
	for c := range p2.DataClasses {
		names = append(names, c)
	}
	sort.Strings(names)
	fmt.Printf("data-class closure (%d): %s\n", len(names), strings.Join(names, ", "))
	fmt.Println("facade pool bounds (§3.3):")
	var bnames []string
	for c := range p2.Bounds {
		bnames = append(bnames, c)
	}
	sort.Strings(bnames)
	for _, c := range bnames {
		fmt.Printf("  %-20s %d\n", core.FacadeName(c), p2.Bounds[c])
	}
	conv := 0
	for _, f := range p2.FuncList {
		if f.Class != nil && f.Class.Name == "FacadeBridge" {
			conv++
		}
	}
	fmt.Printf("synthesized conversion functions: %d\n", conv)

	if *dump {
		for _, f := range p2.FuncList {
			if f.Class != nil && strings.HasSuffix(f.Class.Name, "Facade") {
				fmt.Println()
				fmt.Print(f.String())
			}
		}
	}

	if *run != "" {
		resP, err := facade.Run(prog, facade.WithEntry(*run), facade.WithHeapSize(*heapMB<<20))
		if err != nil {
			fatal(fmt.Errorf("running P: %w", err))
		}
		outP := resP.Output()
		resP.Close()
		resP2, err := facade.Run(p2, facade.WithEntry(*run), facade.WithHeapSize(*heapMB<<20))
		if err != nil {
			fatal(fmt.Errorf("running P': %w", err))
		}
		outP2 := resP2.Output()
		resP2.Close()
		fmt.Printf("\n--- P output ---\n%s", outP)
		fmt.Printf("--- P' output ---\n%s", outP2)
		if outP == outP2 {
			fmt.Println("outputs IDENTICAL")
		} else {
			fmt.Println("outputs DIFFER")
			os.Exit(1)
		}
	}
}

// vetMain implements `facadec vet`. Each file is compiled and vetted
// independently so one file's diagnostics (or parse errors) do not mask
// another's.
func vetMain(argv []string) int {
	fs := flag.NewFlagSet("facadec vet", flag.ExitOnError)
	dataList := fs.String("data", "", "comma-separated data classes (overrides in-file directives)")
	strict := fs.Bool("strict", false, "disable closure expansion")
	seed := fs.String("seed", "", "inject a violation into P' (use-before-def, pool-clobber)")
	lifetimes := fs.Bool("lifetimes", false, "report per-allocation-site lifetime classifications")
	jsonOut := fs.Bool("json", false, "emit one facade.vet/v1 JSON report per file")
	fs.Parse(argv)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: facadec vet [-data C1,C2] [-strict] [-seed KIND] [-lifetimes] [-json] file.fj...")
		return 2
	}
	var data []string
	if *dataList != "" {
		data = strings.Split(*dataList, ",")
	}
	status := 0
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "facadec vet: %v\n", err)
			status = 1
			continue
		}
		vopts := []facade.VetOption{facade.VetWithDataClasses(data...)}
		if *strict {
			vopts = append(vopts, facade.VetStrict())
		}
		if *seed != "" {
			vopts = append(vopts, facade.VetWithSeedViolation(*seed))
		}
		if *lifetimes {
			vopts = append(vopts, facade.VetLifetimes())
		}
		r, err := facade.Vet(map[string]string{path: string(src)}, vopts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "facadec vet: %s: %v\n", path, err)
			status = 1
			continue
		}
		if *jsonOut {
			r.File = path
			if err := r.JSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "facadec vet: %s: %v\n", path, err)
				status = 1
			}
		} else {
			fmt.Printf("== %s ==\n%s", path, r.Report())
		}
		if !r.Clean() {
			status = 1
		}
	}
	return status
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "facadec: %v\n", err)
	os.Exit(1)
}

var _ = ir.NoReg // keep ir linked for the dump format
