// Package hyracks reimplements the Hyracks data-parallel platform of §4.2
// on the simulated shared-nothing cluster: MapReduce-style jobs whose
// operators run on every node, hash/range shuffling between a map and a
// reduce phase, and HDFS-style result files. The engine core (operator
// scheduling, partitioning, the network) is the control path in Go; the
// user-level data manipulation functions — tokenization, word-count
// aggregation over a hash map, record parsing, quicksort and merging for
// external sort — are FJ data-path code, the part FACADE transforms.
//
// Like the real Hyracks in the paper's setup, a worker loads its data
// partition up front before the operators start; that is what makes
// program P fail with OutOfMemoryError once the partition plus its object
// bloat exceeds the per-node heap (Table 3's OME rows).
package hyracks

import (
	"fmt"

	"repro/facade"
	"repro/internal/core"
	"repro/internal/ir"
)

// Source is the FJ data path for both evaluated applications.
const Source = `
// Hyracks user-level data path: word count and external sort.

class WordCounter {
    int count;
}

// WordCount aggregates word frequencies in a HashMap keyed by String, the
// object-heavy aggregation the paper's WC user functions perform.
class WordCount {
    HashMap map;

    WordCount() { this.map = new HashMap(64); }

    void addWord(String w) {
        WordCounter c = (WordCounter) this.map.get(w);
        if (c == null) {
            c = new WordCounter();
            this.map.put(w, c);
        }
        c.count = c.count + 1;
    }

    void addCount(String w, int n) {
        WordCounter c = (WordCounter) this.map.get(w);
        if (c == null) {
            c = new WordCounter();
            this.map.put(w, c);
        }
        c.count = c.count + n;
    }

    int size() { return this.map.size(); }
}

class WCDriver {
    static boolean isSpace(byte b) {
        return b == 32 || b == 10 || b == 13 || b == 9;
    }

    // tokenize splits the partition buffer into words, allocating a
    // byte[] + String per occurrence — the churn FACADE is built to
    // absorb.
    static WordCount tokenize(byte[] buf) {
        WordCount wc = new WordCount();
        int i = 0;
        int n = buf.length;
        while (i < n) {
            while (i < n && WCDriver.isSpace(buf[i])) { i = i + 1; }
            int start = i;
            while (i < n && !WCDriver.isSpace(buf[i])) { i = i + 1; }
            if (i > start) {
                byte[] w = new byte[i - start];
                Sys.arraycopy(buf, start, w, 0, i - start);
                wc.addWord(new String(w));
            }
        }
        return wc;
    }

    static int totalKeyBytes(WordCount wc) {
        ArrayList es = wc.map.entries();
        int total = 0;
        for (int i = 0; i < es.size(); i = i + 1) {
            MapEntry e = (MapEntry) es.get(i);
            String w = (String) e.key;
            total = total + w.length();
        }
        return total;
    }

    // serialize flattens (word, count) pairs into the engine's transfer
    // arrays and computes each word's reducer partition.
    static void serialize(WordCount wc, byte[] bytes, int[] lens, int[] counts, int[] parts, int reducers) {
        ArrayList es = wc.map.entries();
        int off = 0;
        for (int i = 0; i < es.size(); i = i + 1) {
            MapEntry e = (MapEntry) es.get(i);
            String w = (String) e.key;
            WordCounter c = (WordCounter) e.val;
            byte[] v = w.value;
            Sys.arraycopy(v, 0, bytes, off, v.length);
            off = off + v.length;
            lens[i] = v.length;
            counts[i] = c.count;
            int h = w.hashCode() % reducers;
            if (h < 0) { h = h + reducers; }
            parts[i] = h;
        }
    }

    static void merge(WordCount wc, byte[] bytes, int[] lens, int[] counts) {
        int off = 0;
        for (int i = 0; i < lens.length; i = i + 1) {
            int l = lens[i];
            byte[] w = new byte[l];
            Sys.arraycopy(bytes, off, w, 0, l);
            off = off + l;
            wc.addCount(new String(w), counts[i]);
        }
    }
}

// SRecord is one external-sort record: key plus payload.
class SRecord {
    byte[] key;
    byte[] payload;

    SRecord(byte[] k, byte[] p) {
        this.key = k;
        this.payload = p;
    }

    int compareTo(SRecord o) {
        byte[] a = this.key;
        byte[] b = o.key;
        int n = a.length;
        if (b.length < n) { n = b.length; }
        for (int i = 0; i < n; i = i + 1) {
            if (a[i] != b[i]) { return a[i] - b[i]; }
        }
        return a.length - b.length;
    }
}

// RecordBatch is a sortable in-memory run of records.
class RecordBatch {
    SRecord[] recs;
    int n;

    RecordBatch(int cap) {
        this.recs = new SRecord[cap];
        this.n = 0;
    }

    void add(SRecord r) {
        this.recs[this.n] = r;
        this.n = this.n + 1;
    }

    void sort() {
        this.quickSort(0, this.n - 1);
    }

    void quickSort(int lo, int hi) {
        while (lo < hi) {
            int p = this.partition(lo, hi);
            if (p - lo < hi - p) {
                this.quickSort(lo, p - 1);
                lo = p + 1;
            } else {
                this.quickSort(p + 1, hi);
                hi = p - 1;
            }
        }
    }

    int partition(int lo, int hi) {
        SRecord pivot = this.recs[hi];
        int i = lo - 1;
        for (int j = lo; j < hi; j = j + 1) {
            if (this.recs[j].compareTo(pivot) <= 0) {
                i = i + 1;
                SRecord t = this.recs[i];
                this.recs[i] = this.recs[j];
                this.recs[j] = t;
            }
        }
        SRecord t = this.recs[i + 1];
        this.recs[i + 1] = this.recs[hi];
        this.recs[hi] = t;
        return i + 1;
    }

    boolean isSorted() {
        for (int i = 1; i < this.n; i = i + 1) {
            if (this.recs[i - 1].compareTo(this.recs[i]) > 0) { return false; }
        }
        return true;
    }
}

class ESDriver {
    // parse slices a fixed-width record buffer into SRecord objects.
    static RecordBatch parse(byte[] buf, int keyLen, int recLen) {
        int count = buf.length / recLen;
        RecordBatch b = new RecordBatch(count);
        for (int i = 0; i < count; i = i + 1) {
            int base = i * recLen;
            byte[] k = new byte[keyLen];
            Sys.arraycopy(buf, base, k, 0, keyLen);
            byte[] p = new byte[recLen - keyLen];
            Sys.arraycopy(buf, base + keyLen, p, 0, recLen - keyLen);
            b.add(new SRecord(k, p));
        }
        return b;
    }

    static void sortBatch(RecordBatch b) { b.sort(); }

    // serializeRange writes records [from,to) back to fixed-width bytes.
    static void serializeRange(RecordBatch b, int from, int to, byte[] out, int keyLen, int recLen) {
        for (int i = from; i < to; i = i + 1) {
            SRecord r = b.recs[i];
            int base = (i - from) * recLen;
            Sys.arraycopy(r.key, 0, out, base, keyLen);
            Sys.arraycopy(r.payload, 0, out, base + keyLen, recLen - keyLen);
        }
    }

    // rangeSplit returns the first index of a sorted batch whose record's
    // first key byte reaches bound (range partitioning for the shuffle).
    static int rangeSplit(RecordBatch b, int bound) {
        for (int i = 0; i < b.n; i = i + 1) {
            if (b.recs[i].key[0] >= bound) { return i; }
        }
        return b.n;
    }

    // mergeSorted merges two sorted batches into a new sorted batch.
    static RecordBatch mergeSorted(RecordBatch a, RecordBatch b) {
        RecordBatch out = new RecordBatch(a.n + b.n);
        int i = 0;
        int j = 0;
        while (i < a.n && j < b.n) {
            if (a.recs[i].compareTo(b.recs[j]) <= 0) {
                out.add(a.recs[i]);
                i = i + 1;
            } else {
                out.add(b.recs[j]);
                j = j + 1;
            }
        }
        while (i < a.n) { out.add(a.recs[i]); i = i + 1; }
        while (j < b.n) { out.add(b.recs[j]); j = j + 1; }
        return out;
    }
}
`

// DataClasses is the data path handed to FACADE (the paper found 8 data
// and boundary classes for Hyracks; the stdlib collections join through
// closure).
var DataClasses = []string{
	"WordCount", "WordCounter", "WCDriver",
	"SRecord", "RecordBatch", "ESDriver",
	"HashMap", "MapEntry", "ArrayList",
}

// BuildPrograms compiles the data path and returns (P, P').
func BuildPrograms() (*ir.Program, *ir.Program, error) {
	p, err := facade.Compile(map[string]string{"hyracks.fj": Source})
	if err != nil {
		return nil, nil, fmt.Errorf("hyracks: compile: %w", err)
	}
	p2, err := core.Transform(p, core.Options{DataClasses: DataClasses})
	if err != nil {
		return nil, nil, fmt.Errorf("hyracks: transform: %w", err)
	}
	return p, p2, nil
}
