package hyracks

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/offheap"
)

// Job is a MapReduce-style Hyracks job: every node maps its local
// partition into per-reducer frames, frames are shuffled over the
// network, and every node reduces the frames addressed to it into an
// output file.
type Job interface {
	Name() string
	// Map consumes the node's partition and returns one frame per
	// reducer (len == reducers; empty frames allowed).
	Map(n *cluster.Node, part []byte, reducers int) ([][]byte, error)
	// Reduce consumes the frames shuffled to this node and returns the
	// node's output file contents.
	Reduce(n *cluster.Node, frames [][]byte) ([]byte, error)
}

// Recovery counts the fault-tolerance work a job performed.
type Recovery struct {
	Crashes       int64 // planned whole-node crashes survived
	NodeRestarts  int64 // node VMs rebuilt from scratch
	TaskRetries   int64 // map/reduce tasks re-executed (same logical task)
	TasksDegraded int64 // tasks drained to a healthy helper node
	OOMRecoveries int64 // out-of-memory failures recovered
}

// Result reports one job run (a row of Table 3 plus the memory points of
// Figure 4b/4c).
type Result struct {
	Job   string
	ET    time.Duration
	GT    time.Duration
	OME   bool          // ran out of memory (or, for P', exceeded the fair cap)
	OMEAt time.Duration // when the failure surfaced
	// PM is the peak per-node memory (heap + native), the bars/lines of
	// Figure 4(b)/(c).
	PM          int64
	HeapPeak    int64
	NativePeak  int64
	MinorGCs    int64
	FullGCs     int64
	ShuffledMB  float64
	OutputBytes int64

	// Recovery and Net report the run's fault-tolerance activity; both
	// are zero for a fault-free run.
	Recovery Recovery
	Net      cluster.NetStats

	// NodeObs holds each node's observability snapshot (indexed by node
	// ID); the map/reduce phases appear as EvPhase events in each.
	NodeObs []obs.Snapshot
}

// Hyracks recovery occasions for the crash plan: 0 = map, 1 = reduce.
// CrashPlan never picks occasion 0, so planned crashes land in the reduce
// phase — after useful work exists to lose.
const crashOccasions = 2

// RunJob executes the job over the dataset partitions on a fresh cluster
// for prog. fairCap, when > 0, fails a run whose per-node total memory
// (heap + native) exceeded it — the paper's fairness rule for P', whose
// native memory is otherwise unbounded ("an execution of P' that consumes
// more than 8GB memory is considered an out-of-memory failure").
//
// Task failures are tolerated per the degradation ladder: a task that dies
// of memory exhaustion is retried once on its own node (the failed
// attempt's iteration pages are already recycled, and the heap garbage is
// collectible), then drained to a healthy helper node, and only counts as
// an OME result when no node can run it. A planned node crash in the
// reduce phase is recovered by rebuilding the node and re-running its
// task from the engine-held shuffle frames. Map tasks send no frames until
// they succeed, so a retried task never double-delivers.
func RunJob(prog *ir.Program, job Job, parts [][]byte, ccfg cluster.Config, fairCap int64, fs *dfs.FS) (*Result, error) {
	cl, err := cluster.New(prog, ccfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	res := &Result{Job: job.Name()}
	start := time.Now()
	reducers := len(cl.Nodes)
	var rec Recovery

	mapTask := func(n *cluster.Node, logical int) error {
		part := []byte{}
		if logical < len(parts) {
			part = parts[logical]
		}
		phaseStart := time.Now()
		frames, err := job.Map(n, part, reducers)
		if err != nil {
			return fmt.Errorf("map: %w", err)
		}
		if len(frames) != reducers {
			return fmt.Errorf("map returned %d frames for %d reducers", len(frames), reducers)
		}
		var shuffled int64
		for r, f := range frames {
			shuffled += int64(len(f))
			// Frames carry the logical mapper's ID even when a helper node
			// runs the task, so the shuffle sees one frame per mapper.
			cl.Net.Send(cluster.Frame{From: logical, To: r, Tag: "shuffle", Data: f})
		}
		n.VM.Obs().Emit(obs.EvPhase, "map", int64(logical), time.Since(phaseStart).Nanoseconds(), shuffled)
		return nil
	}

	// Map phase: every node maps its partition. Failures are collected
	// per-node (not short-circuited) so the recovery ladder below can run.
	mapErrs := make([]error, len(cl.Nodes))
	_ = cl.ParallelEach(func(n *cluster.Node) error {
		mapErrs[n.ID] = mapTask(n, n.ID)
		return nil
	})
	for id, merr := range mapErrs {
		if merr == nil {
			continue
		}
		final, err := recoverTask(cl, &rec, "map", id, merr, mapErrs,
			func(n *cluster.Node) error { return mapTask(n, id) })
		if err != nil {
			return nil, err
		}
		if final != nil {
			return failOrErr(res, &rec, final, start, cl)
		}
	}

	// Shuffle: the engine drains every reducer's frames before the reduce
	// phase starts, filed by mapper ID. Canonical ordering makes merge
	// ties deterministic, and holding the frames engine-side means a
	// crashed reducer's task can replay without re-running its mappers.
	shuffle := make([][][]byte, reducers)
	for r := range cl.Nodes {
		byFrom := make([][]byte, len(cl.Nodes))
		for i := 0; i < len(cl.Nodes); i++ {
			f, err := cl.Net.Recv(r)
			if err != nil {
				return nil, err
			}
			byFrom[f.From] = f.Data
		}
		shuffle[r] = byFrom
	}

	reduceTask := func(n *cluster.Node, logical int) error {
		phaseStart := time.Now()
		out, err := job.Reduce(n, shuffle[logical])
		if err != nil {
			return fmt.Errorf("reduce: %w", err)
		}
		fs.Write(fmt.Sprintf("/out/%s/part-%d", job.Name(), logical), out)
		n.VM.Obs().Emit(obs.EvPhase, "reduce", int64(logical), time.Since(phaseStart).Nanoseconds(), int64(len(out)))
		return nil
	}

	// Planned crashes land in the reduce phase (occasion 1): the node dies
	// with its task unstarted and is rebuilt from scratch.
	crashed := make(map[int]bool)
	for _, c := range cl.CrashPlan(crashOccasions) {
		crashed[c.Node] = true
	}
	redErrs := make([]error, len(cl.Nodes))
	_ = cl.ParallelEach(func(n *cluster.Node) error {
		if crashed[n.ID] {
			return nil
		}
		redErrs[n.ID] = reduceTask(n, n.ID)
		return nil
	})
	for id := range crashed {
		rec.Crashes++
		cl.Net.Crash(id)
		if err := cl.RestartNode(id); err != nil {
			return nil, err
		}
		rec.NodeRestarts++
		reg := cl.Nodes[id].VM.Obs()
		reg.Counter(obs.CtrNodeRestarts).Inc()
		reg.Counter(obs.CtrTaskRetries).Inc()
		reg.Emit(obs.EvRecovery, "crash", int64(id), 1, 0)
		rec.TaskRetries++
		redErrs[id] = reduceTask(cl.Nodes[id], id)
	}
	for id, rerr := range redErrs {
		if rerr == nil {
			continue
		}
		final, err := recoverTask(cl, &rec, "reduce", id, rerr, redErrs,
			func(n *cluster.Node) error { return reduceTask(n, id) })
		if err != nil {
			return nil, err
		}
		if final != nil {
			return failOrErr(res, &rec, final, start, cl)
		}
	}

	res.ET = time.Since(start)
	st := cl.Stats()
	res.GT = st.GCTime
	res.HeapPeak = st.MaxHeapPeak
	res.NativePeak = st.MaxNative
	res.PM = st.MaxTotal
	res.MinorGCs = st.MinorGCs
	res.FullGCs = st.FullGCs
	res.ShuffledMB = float64(cl.Net.BytesSent()) / (1 << 20)
	for _, p := range fs.List(fmt.Sprintf("/out/%s/", job.Name())) {
		res.OutputBytes += int64(fs.Size(p))
	}
	if fairCap > 0 && res.PM > fairCap {
		res.OME = true
		res.OMEAt = res.ET
	}
	res.Recovery = rec
	res.Net = cl.Net.Stats()
	res.NodeObs = cl.ObsSnapshots()
	return res, nil
}

// recoverTask runs the degradation ladder for a failed task: retry once on
// the task's own node, then drain to a healthy helper, then give up. It
// returns (finalErr, nil) when the ladder is exhausted and the failure
// should be classified (OME or real), (nil, nil) when the task eventually
// succeeded, and (nil, err) for infrastructure errors.
func recoverTask(cl *cluster.Cluster, rec *Recovery, phase string, id int, taskErr error, peerErrs []error, run func(*cluster.Node) error) (error, error) {
	if !isOOM(taskErr) {
		return taskErr, nil
	}
	rec.OOMRecoveries++
	// Rung 1: retry on the same node. For transformed programs the failed
	// attempt's iteration already released its pages (the forced
	// page-recycle boundary); for P the dead attempt's objects are
	// collectible garbage.
	n := cl.Nodes[id]
	reg := n.VM.Obs()
	reg.Counter(obs.CtrTaskRetries).Inc()
	reg.Emit(obs.EvRecovery, "oom", int64(id), 0, 0)
	rec.TaskRetries++
	retryErr := run(n)
	if retryErr == nil {
		return nil, nil
	}
	if !isOOM(retryErr) {
		return retryErr, nil
	}
	// Rung 2: drain the task to a healthy node (one whose own task did not
	// fail). When every node is out of memory the run is a genuine OME —
	// exactly the Table 3 data point.
	for h := range cl.Nodes {
		if h == id || (h < len(peerErrs) && peerErrs[h] != nil) {
			continue
		}
		helper := cl.Nodes[h]
		hreg := helper.VM.Obs()
		hreg.Counter(obs.CtrTasksDegraded).Inc()
		hreg.Emit(obs.EvDegraded, phase, int64(id), int64(h), 0)
		rec.TasksDegraded++
		helpErr := run(helper)
		if helpErr == nil {
			return nil, nil
		}
		return helpErr, nil
	}
	return retryErr, nil
}

// failOrErr classifies a phase error: OutOfMemoryError becomes an OME
// result (a Table 3 data point); anything else is a real error.
func failOrErr(res *Result, rec *Recovery, err error, start time.Time, cl *cluster.Cluster) (*Result, error) {
	if isOOM(err) {
		res.OME = true
		res.OMEAt = time.Since(start)
		res.ET = res.OMEAt
		st := cl.Stats()
		res.GT = st.GCTime
		res.HeapPeak = st.MaxHeapPeak
		res.NativePeak = st.MaxNative
		res.PM = st.MaxTotal
		res.MinorGCs = st.MinorGCs
		res.FullGCs = st.FullGCs
		res.Recovery = *rec
		res.Net = cl.Net.Stats()
		res.NodeObs = cl.ObsSnapshots()
		return res, nil
	}
	return nil, err
}

// isOOM classifies memory exhaustion across both memory systems: the
// managed heap's sentinel, the page store's typed exhaustion error, and
// the FJ-level OutOfMemoryError string.
func isOOM(err error) bool {
	return errors.Is(err, heap.ErrOutOfMemory) ||
		errors.Is(err, offheap.ErrPageExhausted) ||
		(err != nil && strings.Contains(err.Error(), "OutOfMemoryError"))
}
