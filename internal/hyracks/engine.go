package hyracks

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/obs"
)

// Job is a MapReduce-style Hyracks job: every node maps its local
// partition into per-reducer frames, frames are shuffled over the
// network, and every node reduces the frames addressed to it into an
// output file.
type Job interface {
	Name() string
	// Map consumes the node's partition and returns one frame per
	// reducer (len == reducers; empty frames allowed).
	Map(n *cluster.Node, part []byte, reducers int) ([][]byte, error)
	// Reduce consumes the frames shuffled to this node and returns the
	// node's output file contents.
	Reduce(n *cluster.Node, frames [][]byte) ([]byte, error)
}

// Result reports one job run (a row of Table 3 plus the memory points of
// Figure 4b/4c).
type Result struct {
	Job   string
	ET    time.Duration
	GT    time.Duration
	OME   bool          // ran out of memory (or, for P', exceeded the fair cap)
	OMEAt time.Duration // when the failure surfaced
	// PM is the peak per-node memory (heap + native), the bars/lines of
	// Figure 4(b)/(c).
	PM          int64
	HeapPeak    int64
	NativePeak  int64
	MinorGCs    int64
	FullGCs     int64
	ShuffledMB  float64
	OutputBytes int64

	// NodeObs holds each node's observability snapshot (indexed by node
	// ID); the map/reduce phases appear as EvPhase events in each.
	NodeObs []obs.Snapshot
}

// RunJob executes the job over the dataset partitions on a fresh cluster
// for prog. fairCap, when > 0, fails a run whose per-node total memory
// (heap + native) exceeded it — the paper's fairness rule for P', whose
// native memory is otherwise unbounded ("an execution of P' that consumes
// more than 8GB memory is considered an out-of-memory failure").
func RunJob(prog *ir.Program, job Job, parts [][]byte, ccfg cluster.Config, fairCap int64, fs *dfs.FS) (*Result, error) {
	cl, err := cluster.New(prog, ccfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	res := &Result{Job: job.Name()}
	start := time.Now()
	reducers := len(cl.Nodes)

	// Map phase: every node maps its partition and sends one frame to
	// each reducer.
	mapErr := cl.ParallelEach(func(n *cluster.Node) error {
		part := []byte{}
		if n.ID < len(parts) {
			part = parts[n.ID]
		}
		phaseStart := time.Now()
		frames, err := job.Map(n, part, reducers)
		if err != nil {
			return fmt.Errorf("node %d map: %w", n.ID, err)
		}
		if len(frames) != reducers {
			return fmt.Errorf("node %d map returned %d frames for %d reducers", n.ID, len(frames), reducers)
		}
		var shuffled int64
		for r, f := range frames {
			shuffled += int64(len(f))
			cl.Net.Send(cluster.Frame{From: n.ID, To: r, Tag: "shuffle", Data: f})
		}
		n.VM.Obs().Emit(obs.EvPhase, "map", int64(n.ID), time.Since(phaseStart).Nanoseconds(), shuffled)
		return nil
	})
	if mapErr != nil {
		return failOrErr(res, mapErr, start, cl)
	}

	// Reduce phase: every node drains one frame per mapper and reduces.
	redErr := cl.ParallelEach(func(n *cluster.Node) error {
		frames := make([][]byte, 0, len(cl.Nodes))
		for i := 0; i < len(cl.Nodes); i++ {
			f := cl.Net.Recv(n.ID)
			frames = append(frames, f.Data)
		}
		phaseStart := time.Now()
		out, err := job.Reduce(n, frames)
		if err != nil {
			return fmt.Errorf("node %d reduce: %w", n.ID, err)
		}
		fs.Write(fmt.Sprintf("/out/%s/part-%d", job.Name(), n.ID), out)
		n.VM.Obs().Emit(obs.EvPhase, "reduce", int64(n.ID), time.Since(phaseStart).Nanoseconds(), int64(len(out)))
		return nil
	})
	if redErr != nil {
		return failOrErr(res, redErr, start, cl)
	}

	res.ET = time.Since(start)
	st := cl.Stats()
	res.GT = st.GCTime
	res.HeapPeak = st.MaxHeapPeak
	res.NativePeak = st.MaxNative
	res.PM = st.MaxTotal
	res.MinorGCs = st.MinorGCs
	res.FullGCs = st.FullGCs
	res.ShuffledMB = float64(cl.Net.BytesSent()) / (1 << 20)
	for _, p := range fs.List(fmt.Sprintf("/out/%s/", job.Name())) {
		res.OutputBytes += int64(fs.Size(p))
	}
	if fairCap > 0 && res.PM > fairCap {
		res.OME = true
		res.OMEAt = res.ET
	}
	res.NodeObs = cl.ObsSnapshots()
	return res, nil
}

// failOrErr classifies a phase error: OutOfMemoryError becomes an OME
// result (a Table 3 data point); anything else is a real error.
func failOrErr(res *Result, err error, start time.Time, cl *cluster.Cluster) (*Result, error) {
	if isOOM(err) {
		res.OME = true
		res.OMEAt = time.Since(start)
		res.ET = res.OMEAt
		st := cl.Stats()
		res.GT = st.GCTime
		res.HeapPeak = st.MaxHeapPeak
		res.NativePeak = st.MaxNative
		res.PM = st.MaxTotal
		res.MinorGCs = st.MinorGCs
		res.FullGCs = st.FullGCs
		res.NodeObs = cl.ObsSnapshots()
		return res, nil
	}
	return nil, err
}

func isOOM(err error) bool {
	return errors.Is(err, heap.ErrOutOfMemory) ||
		(err != nil && strings.Contains(err.Error(), "OutOfMemoryError"))
}
