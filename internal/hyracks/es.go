package hyracks

import (
	"bytes"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/vm"
)

// ExternalSortJob is the paper's ES application. The map side streams the
// local partition in bounded runs: each run is parsed into SRecord objects
// and quicksorted in the data path (the object-heavy user function), then
// range-partitioned by leading key byte and emitted as sorted byte runs.
// The reduce side is the Hyracks byte-buffer core — a Go k-way merge over
// sorted runs — reflecting the paper's observation that Hyracks itself
// was "optimized manually to allow only byte buffers to store data" while
// the user functions still build objects.
type ExternalSortJob struct {
	KeyLen     int // key bytes per record
	RecLen     int // total bytes per record
	RunRecords int // records sorted per in-memory run
}

// Name implements Job.
func (ExternalSortJob) Name() string { return "ES" }

// Frame format: concatenation of runs, each prefixed by a u32 byte length
// (runs are individually sorted).

// Map implements Job.
func (j ExternalSortJob) Map(n *cluster.Node, part []byte, reducers int) ([][]byte, error) {
	t := n.Main
	recLen := j.RecLen
	runBytes := j.RunRecords * recLen
	nRecs := len(part) / recLen
	part = part[:nRecs*recLen]

	frames := make([][]byte, reducers)
	for r := range frames {
		frames[r] = make([]byte, 0, 64)
	}
	for start := 0; start < len(part); start += runBytes {
		end := start + runBytes
		if end > len(part) {
			end = len(part)
		}
		if err := j.mapRun(t, part[start:end], reducers, frames); err != nil {
			return nil, err
		}
	}
	// Length-prefix framing was appended per run inside mapRun.
	return frames, nil
}

// mapRun parses, sorts, and range-partitions one run inside an iteration
// scope so P' reclaims the run's records wholesale.
func (j ExternalSortJob) mapRun(t *vm.Thread, run []byte, reducers int, frames [][]byte) error {
	t.IterationStart()
	defer t.IterationEnd()
	keyLen, recLen := j.KeyLen, j.RecLen

	buf, err := t.NewByteArr(run)
	if err != nil {
		return err
	}
	defer t.FreeObj(buf)
	batch, err := t.InvokeStaticObj("ESDriver", "parse", vm.O(buf), vm.I(int64(keyLen)), vm.I(int64(recLen)))
	if err != nil {
		return err
	}
	defer t.FreeObj(batch)
	if _, err := t.InvokeStatic("ESDriver", "sortBatch", vm.O(batch)); err != nil {
		return err
	}
	// Range partition: reducer r covers first key bytes
	// ['a'+r*26/R, 'a'+(r+1)*26/R).
	splits := make([]int, reducers+1)
	nRecs := len(run) / recLen
	splits[reducers] = nRecs
	for r := 1; r < reducers; r++ {
		bound := int64('a' + r*26/reducers)
		sv, err := t.InvokeStatic("ESDriver", "rangeSplit", vm.O(batch), vm.I(bound))
		if err != nil {
			return err
		}
		splits[r] = int(int32(sv))
	}
	for r := 0; r < reducers; r++ {
		from, to := splits[r], splits[r+1]
		cnt := to - from
		var chunk []byte
		if cnt > 0 {
			out, err := t.NewArr("byte", cnt*recLen)
			if err != nil {
				return err
			}
			if _, err := t.InvokeStatic("ESDriver", "serializeRange",
				vm.O(batch), vm.I(int64(from)), vm.I(int64(to)), vm.O(out), vm.I(int64(keyLen)), vm.I(int64(recLen))); err != nil {
				t.FreeObj(out)
				return err
			}
			chunk, err = t.ReadByteArr(out)
			t.FreeObj(out)
			if err != nil {
				return err
			}
		}
		var hdr [4]byte
		putU32le(hdr[:], uint32(len(chunk)))
		frames[r] = append(frames[r], hdr[:]...)
		frames[r] = append(frames[r], chunk...)
	}
	return nil
}

// Reduce implements Job: a byte-level k-way merge of sorted runs (the
// Hyracks frame-based core, control path).
func (j ExternalSortJob) Reduce(n *cluster.Node, frames [][]byte) ([]byte, error) {
	keyLen, recLen := j.KeyLen, j.RecLen
	var runs [][]byte
	for _, f := range frames {
		for off := 0; off+4 <= len(f); {
			l := int(getU32le(f[off:]))
			off += 4
			if l > 0 {
				runs = append(runs, f[off:off+l])
			}
			off += l
		}
	}
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]byte, 0, total)
	cursors := make([]int, len(runs))
	for {
		best := -1
		for i, r := range runs {
			if cursors[i] >= len(r) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			a := r[cursors[i] : cursors[i]+keyLen]
			b := runs[best][cursors[best] : cursors[best]+keyLen]
			if bytes.Compare(a, b) < 0 {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, runs[best][cursors[best]:cursors[best]+recLen]...)
		cursors[best] += recLen
	}
	if len(out) != total {
		return nil, fmt.Errorf("hyracks: merge lost records (%d != %d)", len(out), total)
	}
	return out, nil
}

func putU32le(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32le(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
