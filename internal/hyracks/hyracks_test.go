package hyracks

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/faults"
	"repro/internal/ir"
)

var progP, progP2 *ir.Program

func programs(t *testing.T) (*ir.Program, *ir.Program) {
	t.Helper()
	if progP == nil {
		p, p2, err := BuildPrograms()
		if err != nil {
			t.Fatal(err)
		}
		progP, progP2 = p, p2
	}
	return progP, progP2
}

// goWordCount is the reference implementation.
func goWordCount(data []byte) map[string]int {
	out := make(map[string]int)
	for _, w := range strings.Fields(string(data)) {
		out[w]++
	}
	return out
}

func parseWCOutput(t *testing.T, fs *dfs.FS) map[string]int {
	t.Helper()
	out := make(map[string]int)
	for _, p := range fs.List("/out/WC/") {
		data, err := fs.Read(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			var w string
			var c int
			if _, err := fmtSscanf(line, &w, &c); err != nil {
				t.Fatalf("bad output line %q: %v", line, err)
			}
			if _, dup := out[w]; dup {
				t.Fatalf("word %q appears in two reducer outputs", w)
			}
			out[w] = c
		}
	}
	return out
}

func fmtSscanf(line string, w *string, c *int) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	*w = line[:i]
	n := 0
	for _, ch := range line[i+1:] {
		n = n*10 + int(ch-'0')
	}
	*c = n
	return 2, nil
}

func TestWordCountCorrectBothPrograms(t *testing.T) {
	p, p2 := programs(t)
	corpus := datagen.CorpusSkewed(20000, 50, 9)
	parts := datagen.Partition(corpus, 3)
	want := goWordCount(corpus)

	for name, prog := range map[string]*ir.Program{"P": p, "P'": p2} {
		fs := dfs.New()
		res, err := RunJob(prog, WordCountJob{}, parts,
			cluster.Config{NumNodes: 3, HeapPerNode: 16 << 20}, 0, fs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.OME {
			t.Fatalf("%s: unexpected OME", name)
		}
		got := parseWCOutput(t, fs)
		if len(got) != len(want) {
			t.Fatalf("%s: %d distinct words, want %d", name, len(got), len(want))
		}
		for w, c := range want {
			if got[w] != c {
				t.Fatalf("%s: count[%q] = %d want %d", name, w, got[w], c)
			}
		}
	}
}

func TestExternalSortCorrectBothPrograms(t *testing.T) {
	p, p2 := programs(t)
	const keyLen, recLen = 8, 32
	recs := datagen.SortRecords(600, keyLen, recLen-keyLen, 3)
	var data []byte
	for _, r := range recs {
		data = append(data, r...)
	}
	// Partition on record boundaries.
	parts := make([][]byte, 3)
	per := (600 / 3) * recLen
	for i := range parts {
		parts[i] = data[i*per : (i+1)*per]
	}
	job := ExternalSortJob{KeyLen: keyLen, RecLen: recLen, RunRecords: 64}

	for name, prog := range map[string]*ir.Program{"P": p, "P'": p2} {
		fs := dfs.New()
		res, err := RunJob(prog, job, parts,
			cluster.Config{NumNodes: 3, HeapPerNode: 16 << 20}, 0, fs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.OME {
			t.Fatalf("%s: unexpected OME", name)
		}
		// Concatenated reducer outputs (in range order) must be the
		// globally sorted dataset.
		var got []byte
		for _, pth := range fs.List("/out/ES/") {
			d, _ := fs.Read(pth)
			got = append(got, d...)
		}
		if len(got) != len(data) {
			t.Fatalf("%s: output %d bytes, want %d", name, len(got), len(data))
		}
		wantSorted := make([][]byte, len(recs))
		for i, r := range recs {
			wantSorted[i] = r
		}
		sort.Slice(wantSorted, func(i, j int) bool {
			return bytes.Compare(wantSorted[i][:keyLen], wantSorted[j][:keyLen]) < 0
		})
		for i := range wantSorted {
			gotRec := got[i*recLen : (i+1)*recLen]
			if !bytes.Equal(gotRec[:keyLen], wantSorted[i][:keyLen]) {
				t.Fatalf("%s: record %d key %q want %q", name, i, gotRec[:keyLen], wantSorted[i][:keyLen])
			}
		}
	}
}

func TestWordCountOMEShape(t *testing.T) {
	// Table 3's qualitative shape in miniature: with a unique-token-heavy
	// corpus and a small per-node heap, P fails with OutOfMemoryError
	// while P' (same total-memory cap) completes.
	p, p2 := programs(t)
	corpus := datagen.CorpusSkewed(600000, 400, 4)
	parts := datagen.Partition(corpus, 2)
	heapCap := int64(2 << 20)
	ccfg := cluster.Config{NumNodes: 2, HeapPerNode: int(heapCap)}

	fs := dfs.New()
	resP, err := RunJob(p, WordCountJob{}, parts, ccfg, 0, fs)
	if err != nil {
		t.Fatalf("P: %v", err)
	}
	if !resP.OME {
		t.Fatalf("P did not OOM (PM=%d): object bloat should exceed the %d heap", resP.PM, heapCap)
	}
	fs2 := dfs.New()
	resP2, err := RunJob(p2, WordCountJob{}, parts, ccfg, heapCap*8, fs2)
	if err != nil {
		t.Fatalf("P': %v", err)
	}
	if resP2.OME {
		t.Fatalf("P' hit the fairness cap too (PM=%d)", resP2.PM)
	}
}

// outputFiles snapshots a job's output directory as path -> contents.
func outputFiles(t *testing.T, fs *dfs.FS, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, p := range fs.List(dir) {
		d, err := fs.Read(p)
		if err != nil {
			t.Fatal(err)
		}
		out[p] = d
	}
	return out
}

// TestFaultMatrixJobsMatchBaseline runs word count and external sort under
// network faults and a planned node crash, asserting the produced files are
// byte-identical to a fault-free run of the same job: at-least-once sends
// plus receiver dedup plus engine-held shuffle replay make the faults
// invisible to the output.
func TestFaultMatrixJobsMatchBaseline(t *testing.T) {
	p, p2 := programs(t)

	corpus := datagen.CorpusSkewed(20000, 50, 9)
	wcParts := datagen.Partition(corpus, 3)

	const keyLen, recLen = 8, 32
	recs := datagen.SortRecords(600, keyLen, recLen-keyLen, 3)
	var sortData []byte
	for _, r := range recs {
		sortData = append(sortData, r...)
	}
	sortParts := make([][]byte, 3)
	per := (600 / 3) * recLen
	for i := range sortParts {
		sortParts[i] = sortData[i*per : (i+1)*per]
	}

	jobs := []struct {
		name  string
		job   Job
		parts [][]byte
	}{
		{"WC", WordCountJob{}, wcParts},
		{"ES", ExternalSortJob{KeyLen: keyLen, RecLen: recLen, RunRecords: 64}, sortParts},
	}
	specs := []struct {
		name string
		spec string
	}{
		// A job shuffles only reducers*nodes frames, so the per-frame
		// probabilities run high to guarantee each fault class fires.
		{"net", "drop=0.3,dup=0.5,reorder=0.3,seed=8"},
		{"crash", "crash=1,seed=9"},
		{"all", "drop=0.2,dup=0.5,delay=1ms,delayp=0.3,crash=1,seed=17"},
	}

	for name, prog := range map[string]*ir.Program{"P": p, "P'": p2} {
		for _, j := range jobs {
			cleanFS := dfs.New()
			cleanRes, err := RunJob(prog, j.job, j.parts,
				cluster.Config{NumNodes: 3, HeapPerNode: 16 << 20}, 0, cleanFS)
			if err != nil {
				t.Fatalf("%s/%s fault-free: %v", name, j.name, err)
			}
			if cleanRes.OME || cleanRes.Recovery != (Recovery{}) {
				t.Fatalf("%s/%s fault-free run not clean: OME=%v rec=%+v",
					name, j.name, cleanRes.OME, cleanRes.Recovery)
			}
			want := outputFiles(t, cleanFS, "/out/"+j.name+"/")

			for _, tc := range specs {
				t.Run(name+"/"+j.name+"/"+tc.name, func(t *testing.T) {
					fc, err := faults.Parse(tc.spec)
					if err != nil {
						t.Fatal(err)
					}
					fs := dfs.New()
					res, err := RunJob(prog, j.job, j.parts, cluster.Config{
						NumNodes: 3, HeapPerNode: 16 << 20,
						Faults: &fc, RecvTimeout: 5 * time.Second,
					}, 0, fs)
					if err != nil {
						t.Fatalf("faulty run: %v", err)
					}
					if res.OME {
						t.Fatal("faulty run reported OME")
					}
					got := outputFiles(t, fs, "/out/"+j.name+"/")
					if len(got) != len(want) {
						t.Fatalf("%d output files, want %d", len(got), len(want))
					}
					for pth, d := range want {
						if !bytes.Equal(got[pth], d) {
							t.Fatalf("output %s differs from fault-free run", pth)
						}
					}
					if fc.Drop > 0 && res.Net.Retries == 0 {
						t.Fatal("drop injection produced no retries")
					}
					if fc.Dup > 0 && res.Net.Deduped == 0 {
						t.Fatal("dup injection produced no dedups")
					}
					if fc.Crashes > 0 &&
						(res.Recovery.Crashes < 1 || res.Recovery.NodeRestarts < 1) {
						t.Fatalf("crash not reflected in recovery stats: %+v", res.Recovery)
					}
				})
			}
		}
	}
}

// TestMapOOMRetriesOnSameNode injects one allocation failure per node early
// in the map phase; every task must recover via the first ladder rung (retry
// on its own node) and the job output must be unaffected.
func TestMapOOMRetriesOnSameNode(t *testing.T) {
	p, _ := programs(t)
	corpus := datagen.CorpusSkewed(20000, 50, 9)
	parts := datagen.Partition(corpus, 3)
	fc := faults.Config{Seed: 3, AllocAt: 2}
	fs := dfs.New()
	res, err := RunJob(p, WordCountJob{}, parts,
		cluster.Config{NumNodes: 3, HeapPerNode: 16 << 20, Faults: &fc}, 0, fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.OME {
		t.Fatal("retryable alloc fault escalated to OME")
	}
	if res.Recovery.OOMRecoveries < 1 || res.Recovery.TaskRetries < 1 {
		t.Fatalf("expected same-node retries in recovery stats: %+v", res.Recovery)
	}
	if res.Recovery.TasksDegraded != 0 {
		t.Fatalf("one-shot fault should not reach the helper rung: %+v", res.Recovery)
	}
	want := goWordCount(corpus)
	got := parseWCOutput(t, fs)
	for w, c := range want {
		if got[w] != c {
			t.Fatalf("count[%q] = %d want %d", w, got[w], c)
		}
	}
}

// TestTaskDrainsToHelperNode uses a probabilistic per-node alloc fault whose
// fixed seed makes one node fail its task twice (initial + retry) while a
// peer stays healthy: the task must drain to the helper and the output must
// still be exact.
func TestTaskDrainsToHelperNode(t *testing.T) {
	p, _ := programs(t)
	corpus := datagen.CorpusSkewed(20000, 50, 9)
	parts := datagen.Partition(corpus, 3)
	fc := faults.Config{Seed: 5, AllocProb: 0.1}
	fs := dfs.New()
	res, err := RunJob(p, WordCountJob{}, parts,
		cluster.Config{NumNodes: 3, HeapPerNode: 16 << 20, Faults: &fc}, 0, fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.OME {
		t.Fatal("degradable fault escalated to OME")
	}
	if res.Recovery.TasksDegraded < 1 {
		t.Fatalf("expected a task drained to a helper node: %+v", res.Recovery)
	}
	want := goWordCount(corpus)
	got := parseWCOutput(t, fs)
	if len(got) != len(want) {
		t.Fatalf("%d distinct words, want %d", len(got), len(want))
	}
	for w, c := range want {
		if got[w] != c {
			t.Fatalf("count[%q] = %d want %d", w, got[w], c)
		}
	}
}
