package hyracks

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/ir"
)

var progP, progP2 *ir.Program

func programs(t *testing.T) (*ir.Program, *ir.Program) {
	t.Helper()
	if progP == nil {
		p, p2, err := BuildPrograms()
		if err != nil {
			t.Fatal(err)
		}
		progP, progP2 = p, p2
	}
	return progP, progP2
}

// goWordCount is the reference implementation.
func goWordCount(data []byte) map[string]int {
	out := make(map[string]int)
	for _, w := range strings.Fields(string(data)) {
		out[w]++
	}
	return out
}

func parseWCOutput(t *testing.T, fs *dfs.FS) map[string]int {
	t.Helper()
	out := make(map[string]int)
	for _, p := range fs.List("/out/WC/") {
		data, err := fs.Read(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			var w string
			var c int
			if _, err := fmtSscanf(line, &w, &c); err != nil {
				t.Fatalf("bad output line %q: %v", line, err)
			}
			if _, dup := out[w]; dup {
				t.Fatalf("word %q appears in two reducer outputs", w)
			}
			out[w] = c
		}
	}
	return out
}

func fmtSscanf(line string, w *string, c *int) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	*w = line[:i]
	n := 0
	for _, ch := range line[i+1:] {
		n = n*10 + int(ch-'0')
	}
	*c = n
	return 2, nil
}

func TestWordCountCorrectBothPrograms(t *testing.T) {
	p, p2 := programs(t)
	corpus := datagen.CorpusSkewed(20000, 50, 9)
	parts := datagen.Partition(corpus, 3)
	want := goWordCount(corpus)

	for name, prog := range map[string]*ir.Program{"P": p, "P'": p2} {
		fs := dfs.New()
		res, err := RunJob(prog, WordCountJob{}, parts,
			cluster.Config{NumNodes: 3, HeapPerNode: 16 << 20}, 0, fs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.OME {
			t.Fatalf("%s: unexpected OME", name)
		}
		got := parseWCOutput(t, fs)
		if len(got) != len(want) {
			t.Fatalf("%s: %d distinct words, want %d", name, len(got), len(want))
		}
		for w, c := range want {
			if got[w] != c {
				t.Fatalf("%s: count[%q] = %d want %d", name, w, got[w], c)
			}
		}
	}
}

func TestExternalSortCorrectBothPrograms(t *testing.T) {
	p, p2 := programs(t)
	const keyLen, recLen = 8, 32
	recs := datagen.SortRecords(600, keyLen, recLen-keyLen, 3)
	var data []byte
	for _, r := range recs {
		data = append(data, r...)
	}
	// Partition on record boundaries.
	parts := make([][]byte, 3)
	per := (600 / 3) * recLen
	for i := range parts {
		parts[i] = data[i*per : (i+1)*per]
	}
	job := ExternalSortJob{KeyLen: keyLen, RecLen: recLen, RunRecords: 64}

	for name, prog := range map[string]*ir.Program{"P": p, "P'": p2} {
		fs := dfs.New()
		res, err := RunJob(prog, job, parts,
			cluster.Config{NumNodes: 3, HeapPerNode: 16 << 20}, 0, fs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.OME {
			t.Fatalf("%s: unexpected OME", name)
		}
		// Concatenated reducer outputs (in range order) must be the
		// globally sorted dataset.
		var got []byte
		for _, pth := range fs.List("/out/ES/") {
			d, _ := fs.Read(pth)
			got = append(got, d...)
		}
		if len(got) != len(data) {
			t.Fatalf("%s: output %d bytes, want %d", name, len(got), len(data))
		}
		wantSorted := make([][]byte, len(recs))
		for i, r := range recs {
			wantSorted[i] = r
		}
		sort.Slice(wantSorted, func(i, j int) bool {
			return bytes.Compare(wantSorted[i][:keyLen], wantSorted[j][:keyLen]) < 0
		})
		for i := range wantSorted {
			gotRec := got[i*recLen : (i+1)*recLen]
			if !bytes.Equal(gotRec[:keyLen], wantSorted[i][:keyLen]) {
				t.Fatalf("%s: record %d key %q want %q", name, i, gotRec[:keyLen], wantSorted[i][:keyLen])
			}
		}
	}
}

func TestWordCountOMEShape(t *testing.T) {
	// Table 3's qualitative shape in miniature: with a unique-token-heavy
	// corpus and a small per-node heap, P fails with OutOfMemoryError
	// while P' (same total-memory cap) completes.
	p, p2 := programs(t)
	corpus := datagen.CorpusSkewed(600000, 400, 4)
	parts := datagen.Partition(corpus, 2)
	heapCap := int64(2 << 20)
	ccfg := cluster.Config{NumNodes: 2, HeapPerNode: int(heapCap)}

	fs := dfs.New()
	resP, err := RunJob(p, WordCountJob{}, parts, ccfg, 0, fs)
	if err != nil {
		t.Fatalf("P: %v", err)
	}
	if !resP.OME {
		t.Fatalf("P did not OOM (PM=%d): object bloat should exceed the %d heap", resP.PM, heapCap)
	}
	fs2 := dfs.New()
	resP2, err := RunJob(p2, WordCountJob{}, parts, ccfg, heapCap*8, fs2)
	if err != nil {
		t.Fatalf("P': %v", err)
	}
	if resP2.OME {
		t.Fatalf("P' hit the fairness cap too (PM=%d)", resP2.PM)
	}
}
