package hyracks

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/vm"
)

// WordCountJob is the paper's WC application: tokenize the local text
// partition into word objects, aggregate counts in a hash map, shuffle by
// word hash, and merge per-word totals in the reduce phase. The map-side
// partition buffer is loaded into the data path up front, as Hyracks
// "loads all data upfront before update starts".
type WordCountJob struct{}

// Name implements Job.
func (WordCountJob) Name() string { return "WC" }

// Frame format: u32 n, then n entries of (u16 keyLen, u32 count), then the
// concatenated key bytes.

// Map implements Job.
func (WordCountJob) Map(n *cluster.Node, part []byte, reducers int) ([][]byte, error) {
	t := n.Main
	t.IterationStart()
	defer t.IterationEnd()

	buf, err := t.NewByteArr(part) // upfront load into the data path
	if err != nil {
		return nil, err
	}
	defer t.FreeObj(buf)
	wc, err := t.InvokeStaticObj("WCDriver", "tokenize", vm.O(buf))
	if err != nil {
		return nil, err
	}
	defer t.FreeObj(wc)
	words, lens, counts, parts, err := drainWordCount(t, wc, reducers)
	if err != nil {
		return nil, err
	}
	// Build per-reducer frames (control path: this is the serialization
	// boundary between operators).
	type acc struct {
		n     int
		meta  []byte
		bytes []byte
	}
	accs := make([]acc, reducers)
	off := 0
	for i := range lens {
		l := int(lens[i])
		a := &accs[parts[i]]
		a.n++
		var m [6]byte
		binary.LittleEndian.PutUint16(m[0:], uint16(l))
		binary.LittleEndian.PutUint32(m[2:], uint32(counts[i]))
		a.meta = append(a.meta, m[:]...)
		a.bytes = append(a.bytes, words[off:off+l]...)
		off += l
	}
	frames := make([][]byte, reducers)
	for r := range frames {
		f := make([]byte, 4, 4+len(accs[r].meta)+len(accs[r].bytes))
		binary.LittleEndian.PutUint32(f, uint32(accs[r].n))
		f = append(f, accs[r].meta...)
		f = append(f, accs[r].bytes...)
		frames[r] = f
	}
	return frames, nil
}

// drainWordCount extracts the (word, count, partition) triples from a
// WordCount object through the serialize entry point.
func drainWordCount(t *vm.Thread, wc vm.Obj, reducers int) (words []byte, lens, counts, parts []int32, err error) {
	nv, err := t.Invoke(wc, "size")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	n := int(int32(nv))
	tv, err := t.InvokeStatic("WCDriver", "totalKeyBytes", vm.O(wc))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	total := int(int32(tv))
	oBytes, err := t.NewArr("byte", total)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	defer t.FreeObj(oBytes)
	oLens, err := t.NewArr("int", n)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	defer t.FreeObj(oLens)
	oCounts, err := t.NewArr("int", n)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	defer t.FreeObj(oCounts)
	oParts, err := t.NewArr("int", n)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	defer t.FreeObj(oParts)
	if _, err := t.InvokeStatic("WCDriver", "serialize",
		vm.O(wc), vm.O(oBytes), vm.O(oLens), vm.O(oCounts), vm.O(oParts), vm.I(int64(reducers))); err != nil {
		return nil, nil, nil, nil, err
	}
	bb, err := t.ReadByteArr(oBytes)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	lens, err = t.ReadIntArr(oLens)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	counts, err = t.ReadIntArr(oCounts)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	parts, err = t.ReadIntArr(oParts)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return bb, lens, counts, parts, nil
}

// Reduce implements Job.
func (WordCountJob) Reduce(n *cluster.Node, frames [][]byte) ([]byte, error) {
	t := n.Main
	t.IterationStart()
	defer t.IterationEnd()
	wc, err := t.NewObj("WordCount")
	if err != nil {
		return nil, err
	}
	defer t.FreeObj(wc)
	for _, f := range frames {
		cnt := int(binary.LittleEndian.Uint32(f))
		if cnt == 0 {
			continue
		}
		meta := f[4 : 4+6*cnt]
		bytesPart := f[4+6*cnt:]
		lens := make([]int32, cnt)
		counts := make([]int32, cnt)
		for i := 0; i < cnt; i++ {
			lens[i] = int32(binary.LittleEndian.Uint16(meta[6*i:]))
			counts[i] = int32(binary.LittleEndian.Uint32(meta[6*i+2:]))
		}
		oBytes, err := t.NewByteArr(bytesPart)
		if err != nil {
			return nil, err
		}
		oLens, err := t.NewIntArr(lens)
		if err != nil {
			t.FreeObj(oBytes)
			return nil, err
		}
		oCounts, err := t.NewIntArr(counts)
		if err != nil {
			t.FreeObj(oBytes)
			t.FreeObj(oLens)
			return nil, err
		}
		_, err = t.InvokeStatic("WCDriver", "merge", vm.O(wc), vm.O(oBytes), vm.O(oLens), vm.O(oCounts))
		t.FreeObj(oBytes)
		t.FreeObj(oLens)
		t.FreeObj(oCounts)
		if err != nil {
			return nil, err
		}
	}
	// Final output: "word count\n" lines, sorted for determinism.
	words, lens, counts, _, err := drainWordCount(t, wc, 1)
	if err != nil {
		return nil, err
	}
	type pair struct {
		w string
		c int32
	}
	pairs := make([]pair, len(lens))
	off := 0
	for i, l := range lens {
		pairs[i] = pair{string(words[off : off+int(l)]), counts[i]}
		off += int(l)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].w < pairs[j].w })
	var out []byte
	for _, p := range pairs {
		out = append(out, fmt.Sprintf("%s %d\n", p.w, p.c)...)
	}
	return out, nil
}
