// Package stdlib ships the FJ standard library: Object, String, and the
// collection classes the benchmark data paths use. The paper transforms
// "all data classes in the JDK including various collection classes and
// array-based utility classes"; these are our equivalents, written in FJ
// so the FACADE transform applies to them like any user code.
package stdlib

import (
	"fmt"

	"repro/internal/lang"
)

// Source is the FJ source of the standard library.
const Source = `
// FJ standard library.

class Object {
    int hashCode() { return 0; }
    boolean equals(Object o) { return this == o; }
}

class String {
    byte[] value;

    String(byte[] v) { this.value = v; }

    int length() { return this.value.length; }

    byte charAt(int i) { return this.value[i]; }

    int hashCode() {
        int h = 0;
        byte[] v = this.value;
        for (int i = 0; i < v.length; i = i + 1) {
            h = h * 31 + v[i];
        }
        return h;
    }

    boolean equals(Object o) {
        if (!(o instanceof String)) { return false; }
        String s = (String) o;
        byte[] a = this.value;
        byte[] b = s.value;
        if (a.length != b.length) { return false; }
        for (int i = 0; i < a.length; i = i + 1) {
            if (a[i] != b[i]) { return false; }
        }
        return true;
    }

    int compareTo(String s) {
        byte[] a = this.value;
        byte[] b = s.value;
        int n = a.length;
        if (b.length < n) { n = b.length; }
        for (int i = 0; i < n; i = i + 1) {
            if (a[i] != b[i]) { return a[i] - b[i]; }
        }
        return a.length - b.length;
    }
}

// ArrayList is a growable array of Objects.
class ArrayList {
    Object[] elems;
    int count;

    ArrayList(int cap) {
        if (cap < 4) { cap = 4; }
        this.elems = new Object[cap];
        this.count = 0;
    }

    int size() { return this.count; }

    void add(Object o) {
        if (this.count == this.elems.length) { this.grow(); }
        this.elems[this.count] = o;
        this.count = this.count + 1;
    }

    void grow() {
        Object[] bigger = new Object[this.elems.length * 2];
        Sys.arraycopy(this.elems, 0, bigger, 0, this.count);
        Sys.release(this.elems);
        this.elems = bigger;
    }

    Object get(int i) { return this.elems[i]; }

    void set(int i, Object o) { this.elems[i] = o; }

    void clear() {
        for (int i = 0; i < this.count; i = i + 1) { this.elems[i] = null; }
        this.count = 0;
    }
}

// MapEntry is one bucket node of HashMap.
class MapEntry {
    int hash;
    Object key;
    Object val;
    MapEntry next;
}

// HashMap is a chained hash table over Object keys using virtual
// hashCode/equals.
class HashMap {
    MapEntry[] table;
    int count;

    HashMap(int cap) {
        int n = 8;
        while (n < cap) { n = n * 2; }
        this.table = new MapEntry[n];
        this.count = 0;
    }

    int size() { return this.count; }

    int indexFor(int h) {
        int i = h % this.table.length;
        if (i < 0) { i = i + this.table.length; }
        return i;
    }

    Object get(Object key) {
        int h = key.hashCode();
        MapEntry e = this.table[this.indexFor(h)];
        while (e != null) {
            if (e.hash == h && e.key.equals(key)) { return e.val; }
            e = e.next;
        }
        return null;
    }

    boolean containsKey(Object key) {
        int h = key.hashCode();
        MapEntry e = this.table[this.indexFor(h)];
        while (e != null) {
            if (e.hash == h && e.key.equals(key)) { return true; }
            e = e.next;
        }
        return false;
    }

    void put(Object key, Object val) {
        int h = key.hashCode();
        int i = this.indexFor(h);
        MapEntry e = this.table[i];
        while (e != null) {
            if (e.hash == h && e.key.equals(key)) {
                e.val = val;
                return;
            }
            e = e.next;
        }
        MapEntry fresh = new MapEntry();
        fresh.hash = h;
        fresh.key = key;
        fresh.val = val;
        fresh.next = this.table[i];
        this.table[i] = fresh;
        this.count = this.count + 1;
        if (this.count > this.table.length * 3 / 4) { this.resize(); }
    }

    void resize() {
        MapEntry[] old = this.table;
        this.table = new MapEntry[old.length * 2];
        this.count = 0;
        for (int i = 0; i < old.length; i = i + 1) {
            MapEntry e = old[i];
            while (e != null) {
                this.reinsert(e.key, e.val, e.hash);
                e = e.next;
            }
        }
        Sys.release(old);
    }

    void reinsert(Object key, Object val, int h) {
        int i = this.indexFor(h);
        MapEntry fresh = new MapEntry();
        fresh.hash = h;
        fresh.key = key;
        fresh.val = val;
        fresh.next = this.table[i];
        this.table[i] = fresh;
        this.count = this.count + 1;
    }

    // entries returns all entries as an ArrayList of MapEntry, for
    // deterministic iteration by callers that sort.
    ArrayList entries() {
        ArrayList out = new ArrayList(this.count);
        for (int i = 0; i < this.table.length; i = i + 1) {
            MapEntry e = this.table[i];
            while (e != null) {
                out.add(e);
                e = e.next;
            }
        }
        return out;
    }
}
`

// Parse returns the parsed stdlib file. It panics on error: the source is
// a compile-time constant validated by tests.
func Parse() *lang.File {
	f, err := lang.Parse("stdlib.fj", Source)
	if err != nil {
		panic(fmt.Sprintf("stdlib does not parse: %v", err))
	}
	return f
}

// ParseWith parses user source files and returns them together with the
// stdlib, ready for lang.BuildHierarchy.
func ParseWith(sources map[string]string) ([]*lang.File, error) {
	files := []*lang.File{Parse()}
	// Deterministic order.
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, n := range names {
		f, err := lang.Parse(n, sources[n])
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
