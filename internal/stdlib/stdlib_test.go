package stdlib

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/lower"
)

func TestStdlibCompiles(t *testing.T) {
	files, err := ParseWith(nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := lang.BuildHierarchy(files...)
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(h); err != nil {
		t.Fatal(err)
	}
	p, err := lower.Program(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, cls := range []string{"Object", "String", "ArrayList", "HashMap", "MapEntry"} {
		if h.Class(cls) == nil {
			t.Fatalf("stdlib missing %s", cls)
		}
	}
	// The String layout the VM relies on.
	sf := h.Class("String").FindField("value")
	if sf == nil || sf.Type.Kind != lang.TArray || sf.Type.Elem != lang.ByteType {
		t.Fatal("String.value must be byte[]")
	}
}

func TestParseWithUserErrorsPropagate(t *testing.T) {
	if _, err := ParseWith(map[string]string{"bad.fj": "class {"}); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestParseWithDeterministicOrder(t *testing.T) {
	a, err := ParseWith(map[string]string{"b.fj": "class B { }", "a.fj": "class A { }"})
	if err != nil {
		t.Fatal(err)
	}
	if a[1].Name != "a.fj" || a[2].Name != "b.fj" {
		t.Fatalf("order: %s %s", a[1].Name, a[2].Name)
	}
}
