package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/stdlib"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	files, err := stdlib.ParseWith(map[string]string{"t.fj": src})
	if err != nil {
		t.Fatal(err)
	}
	h, err := lang.BuildHierarchy(files...)
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(h); err != nil {
		t.Fatal(err)
	}
	p, err := lower.Program(h)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const schema = `
interface Keyed { int key(); }
class Tuple implements Keyed {
    int id;
    Tuple next;
    int[] data;
    static int created;
    Tuple(int id) { this.id = id; }
    int key() { return this.id; }
    int pair(Tuple a, Tuple b) { return a.id + b.id; }
    Tuple dup() { return new Tuple(this.id); }
}
class Wide extends Tuple {
    double w;
    Wide(int id) { this.id = id; }
}
class Ctl {
    int x;
}
class Main {
    static void main() { Sys.println(0); }
}
`

func mustTransform(t *testing.T, p *ir.Program, opts Options) *ir.Program {
	t.Helper()
	p2, err := Transform(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p2
}

func TestClosureExpandsSubclassesAndFieldTypes(t *testing.T) {
	p := compile(t, schema)
	p2 := mustTransform(t, p, Options{DataClasses: []string{"Tuple"}})
	for _, want := range []string{"Tuple", "Wide", "String"} {
		if !p2.DataClasses[want] {
			t.Fatalf("closure missing %s (have %v)", want, p2.DataClasses)
		}
	}
	if p2.DataClasses["Ctl"] || p2.DataClasses["Main"] {
		t.Fatal("closure pulled in unrelated control classes")
	}
}

func TestFacadeHierarchyMirrorsOriginal(t *testing.T) {
	p := compile(t, schema)
	p2 := mustTransform(t, p, Options{DataClasses: []string{"Tuple"}})
	h := p2.H
	fb := h.Class("Facade")
	tf := h.Class("TupleFacade")
	wf := h.Class("WideFacade")
	if fb == nil || tf == nil || wf == nil {
		t.Fatal("facade classes missing")
	}
	if tf.Super != fb {
		t.Fatal("TupleFacade must extend Facade")
	}
	if wf.Super != tf {
		t.Fatal("WideFacade must extend TupleFacade (type-closed hierarchy mirror)")
	}
	// Facades carry no instance fields beyond pageRef.
	if len(tf.Fields) != 0 || len(wf.Fields) != 0 {
		t.Fatal("facade classes must not declare instance fields")
	}
	if len(fb.Fields) != 1 || fb.Fields[0].Name != "pageRef" || !fb.Fields[0].Type.Equals(lang.LongType) {
		t.Fatal("Facade base must have exactly the long pageRef field")
	}
	// IFacade twin exists and is implemented.
	ifc := h.Iface("KeyedFacade")
	if ifc == nil {
		t.Fatal("KeyedFacade missing")
	}
	if !tf.Implements(ifc) {
		t.Fatal("TupleFacade must implement KeyedFacade")
	}
	// Original classes are preserved for the control path.
	if h.Class("Tuple") == nil || h.Class("Ctl") == nil {
		t.Fatal("original classes must remain in P'")
	}
}

func TestSignatureMapping(t *testing.T) {
	p := compile(t, schema)
	p2 := mustTransform(t, p, Options{DataClasses: []string{"Tuple"}})
	tf := p2.H.Class("TupleFacade")
	m := tf.Methods["pair"]
	if m == nil {
		t.Fatal("pair missing on facade")
	}
	for i, pt := range m.Params {
		if !pt.Equals(lang.ClassType("TupleFacade")) {
			t.Fatalf("param %d of pair: %s, want TupleFacade", i, pt)
		}
	}
	if !m.Ret.Equals(lang.IntType) {
		t.Fatalf("pair return %s", m.Ret)
	}
	// Static fields move to the facade class; data statics become longs.
	if tf.FindStatic("created") == nil {
		t.Fatal("static field not moved to facade class")
	}
}

func TestBoundsComputation(t *testing.T) {
	src := `
class A {
    int x;
    A(int x) { this.x = x; }
    int two(A p, A q) { return p.x + q.x; }
    int one(A p) { return p.x; }
}
class B {
    int y;
    B(B other, B other2, B other3) { this.y = 1; }
}
class Main { static void main() { } }
`
	p := compile(t, src)
	p2 := mustTransform(t, p, Options{DataClasses: []string{"A", "B"}})
	// A: max params of type A in a method = 2.
	if p2.Bounds["A"] != 2 {
		t.Fatalf("bound[A] = %d want 2", p2.Bounds["A"])
	}
	// B's constructor takes 3 B params plus the receiver slot => 4.
	if p2.Bounds["B"] != 4 {
		t.Fatalf("bound[B] = %d want 4 (3 ctor params + receiver)", p2.Bounds["B"])
	}
	// Every data type has at least the allocation/return slot.
	if p2.Bounds["String"] < 1 || p2.Bounds["Object"] < 1 {
		t.Fatal("minimum bound violated")
	}
}

func TestStrictModeReportsViolations(t *testing.T) {
	srcRef := `
class Ctl { int x; }
class D { Ctl c; }
class Main { static void main() { } }
`
	p := compile(t, srcRef)
	if _, err := Transform(p, Options{DataClasses: []string{"D"}, NoAutoClose: true}); err == nil ||
		!strings.Contains(err.Error(), "reference-closed-world") {
		t.Fatalf("reference violation not reported: %v", err)
	}
	srcSub := `
class D { int x; }
class E extends D { int y; }
class Main { static void main() { } }
`
	p = compile(t, srcSub)
	if _, err := Transform(p, Options{DataClasses: []string{"D"}, NoAutoClose: true}); err == nil ||
		!strings.Contains(err.Error(), "type-closed-world") {
		t.Fatalf("subclass violation not reported: %v", err)
	}
}

func TestTableOneOpMapping(t *testing.T) {
	p := compile(t, schema)
	p2 := mustTransform(t, p, Options{DataClasses: []string{"Tuple"}})
	// Inspect TupleFacade.<init>: the field store must be a PStore.
	f := p2.Funcs[ir.CtorKey("TupleFacade")]
	if f == nil {
		t.Fatal("facade ctor missing")
	}
	var sawPStore, sawPrologue bool
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpPStore && in.Field.Name == "id" {
				sawPStore = true
			}
			if in.Op == ir.OpLoad && in.Field.Name == "pageRef" {
				sawPrologue = true
			}
			if in.Op == ir.OpStore && in.Field.Name == "id" {
				t.Fatal("facade ctor still writes a heap field (Table 1 case 3.1 not applied)")
			}
		}
	}
	if !sawPStore || !sawPrologue {
		t.Fatalf("facade ctor lacks PStore (%v) or pageRef prologue (%v)", sawPStore, sawPrologue)
	}
	// pair's call sites: a virtual call on a data receiver must go
	// through OpResolve + OpPoolGet.
	callerSrc := schema + `
class Driver {
    static int drive(Tuple t) { return t.pair(t, t); }
}
`
	_ = callerSrc
	// The original data method 'pair' accesses a.id/b.id via PLoad.
	pf := p2.Funcs[ir.FuncKey("TupleFacade", "pair")]
	var sawPLoad bool
	for _, b := range pf.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpPLoad {
				sawPLoad = true
			}
		}
	}
	if !sawPLoad {
		t.Fatal("pair does not read records via PLoad")
	}
}

func TestCallSiteProtocol(t *testing.T) {
	src := `
class T {
    int v;
    T(int v) { this.v = v; }
    int absorb(T other) { return this.v + other.v; }
    T clone2() { return new T(this.v); }
    int chain() {
        T o = this.clone2();
        return this.absorb(o);
    }
}
class Main { static void main() { } }
`
	p := compile(t, src)
	p2 := mustTransform(t, p, Options{DataClasses: []string{"T"}})
	f := p2.Funcs[ir.FuncKey("TFacade", "chain")]
	var resolves, poolGets, unwraps int
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpResolve:
				resolves++
			case ir.OpPoolGet:
				poolGets++
			case ir.OpLoad:
				if in.Field.Name == "pageRef" {
					unwraps++
				}
			}
		}
	}
	// Two virtual calls => two resolves; one data arg => >=1 pool get;
	// one data return => >=1 unwrap (plus the receiver prologue load).
	if resolves != 2 {
		t.Fatalf("resolves = %d want 2", resolves)
	}
	if poolGets < 1 {
		t.Fatal("no parameter pool access emitted")
	}
	if unwraps < 2 { // prologue + return unwrap
		t.Fatalf("unwraps = %d", unwraps)
	}
	// Return protocol: the facade method returning T must bind pool slot
	// 0 before returning (case 5.1).
	cf := p2.Funcs[ir.FuncKey("TFacade", "clone2")]
	last := cf.Blocks[len(cf.Blocks)-1].Instrs
	sawBindBeforeRet := false
	for i := 0; i < len(last)-1; i++ {
		if last[i].Op == ir.OpStore && last[i].Field.Name == "pageRef" &&
			last[len(last)-1].Op == ir.OpRet {
			sawBindBeforeRet = true
		}
	}
	if !sawBindBeforeRet {
		t.Fatal("data return does not travel through a bound facade")
	}
}

// TestFacadeBindingAdjacency verifies the §2.3/§3.7 safety property on the
// generated code: every facade bind (store to pageRef) is consumed before
// the same pool slot can be rebound — concretely, between a PoolGet of a
// given (class, index) and the next PoolGet of the same slot there is
// always an instruction consuming the facade (a call, return, or pageRef
// load).
func TestFacadeBindingAdjacency(t *testing.T) {
	p := compile(t, schema)
	p2 := mustTransform(t, p, Options{DataClasses: []string{"Tuple"}})
	for _, f := range p2.FuncList {
		if f.Class == nil || !strings.HasSuffix(f.Class.Name, "Facade") {
			continue
		}
		for _, b := range f.Blocks {
			var pendingBind ir.Reg = ir.NoReg
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.OpStore && in.Field.Name == "pageRef" {
					pendingBind = in.A
					continue
				}
				if pendingBind == ir.NoReg {
					continue
				}
				switch in.Op {
				case ir.OpCall, ir.OpCallStatic:
					pendingBind = ir.NoReg // consumed as receiver/arg
				case ir.OpRet:
					pendingBind = ir.NoReg // consumed by return
				case ir.OpPoolGet, ir.OpResolve:
					// Another facade fetched before the bound one was
					// consumed is fine (multiple args); a *rebind* of the
					// same register would not be. Detect rebinding:
					if in.Dst == pendingBind {
						t.Fatalf("%s: facade register r%d refetched before use", f.Name, pendingBind)
					}
				}
			}
		}
	}
}

func TestConversionFunctionsSynthesized(t *testing.T) {
	// A control class holding a data-typed field forces interaction
	// points inside the data path (case 4.3/3.3).
	src := `
class D {
    int v;
    D(int v) { this.v = v; }
}
class Holder {
    static int stash;
}
class E {
    int v;
    D grab(Box b) { return b.d; }
    void put(Box b, D d) { b.d = d; }
}
class Box { D d; }
class Main { static void main() { } }
`
	p := compile(t, src)
	// Box has a D field, so closure pulls Box in; to create an IP we
	// must keep Box OUT of the data set.
	p2, err := Transform(p, Options{DataClasses: []string{"D", "E"}, NoAutoClose: true})
	if err == nil {
		// E.grab reads a data value from a control object: that is legal
		// (case 4.3) and must synthesize converters.
		found := false
		for _, f := range p2.FuncList {
			if strings.HasPrefix(f.Name, "FacadeBridge.") {
				found = true
			}
		}
		if !found {
			t.Fatal("no conversion functions synthesized for interaction points")
		}
		return
	}
	// Strict mode may reject instead, which is also paper behavior when
	// the boundary is not annotated; accept either but require one.
	if !strings.Contains(err.Error(), "closed-world") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestTransformIdempotentOnControlPath(t *testing.T) {
	p := compile(t, schema)
	// DisableDCE: dead-code elimination legitimately shrinks control
	// functions too; this test checks the transform proper copies them
	// verbatim.
	p2 := mustTransform(t, p, Options{DataClasses: []string{"Tuple"}, DisableDCE: true})
	// Control functions are copied verbatim: same instruction counts.
	for _, f := range p.FuncList {
		if f.Class != nil && (p2.DataClasses[f.Class.Name]) {
			continue
		}
		nf := p2.Funcs[f.Name]
		if nf == nil {
			t.Fatalf("control function %s missing from P'", f.Name)
		}
		if nf.NumInstrs() != f.NumInstrs() {
			t.Fatalf("control function %s changed size: %d -> %d", f.Name, f.NumInstrs(), nf.NumInstrs())
		}
		if nf == f {
			t.Fatalf("control function %s shared between P and P' (must be deep-copied)", f.Name)
		}
	}
}

func TestRecordSizesOnAllocationSites(t *testing.T) {
	p := compile(t, schema)
	p2 := mustTransform(t, p, Options{DataClasses: []string{"Tuple"}})
	tuple := p.H.Class("Tuple")
	// Find an OpPNew of TupleFacade anywhere; its Imm must equal Tuple's
	// body size (the compile-time D_Record_size of transformation 3).
	found := false
	for _, f := range p2.FuncList {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.OpPNew && in.Cls.Name == "TupleFacade" {
					found = true
					if in.Imm != int64(tuple.BodySize) {
						t.Fatalf("PNew size %d, want %d", in.Imm, tuple.BodySize)
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("no PNew of TupleFacade found")
	}
}

func TestFacadeNameMapping(t *testing.T) {
	if FacadeName("Object") != "Facade" || FacadeName("Tuple") != "TupleFacade" {
		t.Fatal("FacadeName mapping wrong")
	}
}
