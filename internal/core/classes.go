package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/lang"
)

// mapType rewrites a data-path type for P' (§3.2): data classes become
// their facade classes, data interfaces their IFacade twins, Object the
// Facade base, and every array type a raw 64-bit page reference.
func (tr *transformer) mapType(t *lang.Type) *lang.Type {
	switch t.Kind {
	case lang.TArray:
		return lang.LongType
	case lang.TClass:
		if t.Name == "Object" {
			return lang.ClassType("Facade")
		}
		if tr.data[t.Name] {
			return lang.ClassType(FacadeName(t.Name))
		}
	case lang.TIface:
		if tr.dataIf[t.Name] {
			return lang.IfaceType(t.Name + "Facade")
		}
	}
	return t
}

// refType rewrites the type of a register that holds a data value inside a
// transformed body: a 64-bit page reference.
func refType(t *lang.Type) *lang.Type { return lang.LongType }

// buildHierarchy assembles P”s class world: all original classes (shared,
// for the control path), the Facade base class, one facade class per data
// class, IFacade twins for interfaces implemented by data classes, and the
// FacadeBridge owner of conversion functions.
func (tr *transformer) buildHierarchy() error {
	old := tr.p.H
	nh := &lang.Hierarchy{
		Classes:    make(map[string]*lang.Class, len(old.Classes)*2),
		Ifaces:     make(map[string]*lang.Iface, len(old.Ifaces)*2),
		Object:     old.Object,
		String:     old.String,
		NumStatics: old.NumStatics,
	}
	for name, c := range old.Classes {
		nh.Classes[name] = c
	}
	nh.ClassList = append(nh.ClassList, old.ClassList...)
	for name, i := range old.Ifaces {
		nh.Ifaces[name] = i
	}
	nh.IfaceList = append(nh.IfaceList, old.IfaceList...)
	tr.newH = nh
	tr.facades = make(map[string]*lang.Class)
	tr.ifaces = make(map[string]*lang.Iface)
	tr.newStatics = make(map[*lang.Field]*lang.Field)

	addClass := func(c *lang.Class) error {
		if _, dup := nh.Classes[c.Name]; dup {
			return fmt.Errorf("facade: generated class %s collides with an existing class", c.Name)
		}
		c.ID = len(nh.ClassList)
		if c.ID >= 1<<14 {
			return fmt.Errorf("facade: too many classes for 2-byte record type IDs")
		}
		nh.Classes[c.Name] = c
		nh.ClassList = append(nh.ClassList, c)
		return nil
	}

	// The Facade base class: one long field pageRef, plus Object's methods
	// transformed for record semantics.
	fb := &lang.Class{
		Name:    "Facade",
		Super:   old.Object,
		Methods: make(map[string]*lang.Method),
	}
	pageRef := &lang.Field{Name: "pageRef", Type: lang.LongType, Owner: fb, Offset: 0}
	fb.Fields = []*lang.Field{pageRef}
	fb.AllFields = []*lang.Field{pageRef}
	fb.BodySize = 8
	fb.Methods["hashCode"] = &lang.Method{Name: "hashCode", Owner: fb, Ret: lang.IntType}
	fb.Methods["equals"] = &lang.Method{
		Name: "equals", Owner: fb,
		Params:     []*lang.Type{lang.ClassType("Facade")},
		ParamNames: []string{"o"},
		Ret:        lang.BoolType,
	}
	if err := addClass(fb); err != nil {
		return err
	}
	tr.facadeBase = fb
	tr.facades["Object"] = fb

	// IFacade twins for interfaces implemented by data classes.
	for _, iname := range sortedKeys(tr.dataIf) {
		oldIf := old.Iface(iname)
		if oldIf == nil {
			continue
		}
		ni := &lang.Iface{Name: iname + "Facade", Methods: make(map[string]*lang.Method)}
		for mn, m := range oldIf.Methods {
			ni.Methods[mn] = tr.mapMethod(m, nil, ni)
		}
		if _, dup := nh.Ifaces[ni.Name]; dup {
			return fmt.Errorf("facade: generated interface %s collides", ni.Name)
		}
		nh.Ifaces[ni.Name] = ni
		nh.IfaceList = append(nh.IfaceList, ni)
		tr.ifaces[iname] = ni
	}

	// Facade classes, supers before subs (original ClassList is
	// topologically ordered).
	for _, c := range old.ClassList {
		if !tr.data[c.Name] {
			continue
		}
		fc := &lang.Class{
			Name:    FacadeName(c.Name),
			Methods: make(map[string]*lang.Method),
		}
		if c.Super != nil && tr.data[c.Super.Name] {
			fc.Super = tr.facades[c.Super.Name]
		} else {
			fc.Super = fb
		}
		fc.AllFields = fc.Super.AllFields
		fc.BodySize = fc.Super.BodySize
		for _, oi := range c.Ifaces {
			if ni := tr.ifaces[oi.Name]; ni != nil {
				fc.Ifaces = append(fc.Ifaces, ni)
			}
		}
		// Static fields move to the facade class; data-typed statics
		// become page references (longs).
		for _, sf := range c.Statics {
			nf := &lang.Field{
				Name:   sf.Name,
				Type:   tr.staticType(sf.Type),
				Owner:  fc,
				Static: true,
			}
			nf.StaticIndex = nh.NumStatics
			nh.NumStatics++
			fc.Statics = append(fc.Statics, nf)
			tr.newStatics[sf] = nf
		}
		for mn, m := range c.Methods {
			fc.Methods[mn] = tr.mapMethod(m, fc, nil)
		}
		if c.Ctor != nil {
			fc.Ctor = tr.mapMethod(c.Ctor, fc, nil)
		}
		if err := addClass(fc); err != nil {
			return err
		}
		tr.facades[c.Name] = fc
	}

	// FacadeBridge: owner class for synthesized conversion functions.
	br := &lang.Class{
		Name:    "FacadeBridge",
		Super:   old.Object,
		Methods: make(map[string]*lang.Method),
	}
	if err := addClass(br); err != nil {
		return err
	}
	tr.bridge = br
	return nil
}

// staticType maps a static field's type: data references become raw page
// references.
func (tr *transformer) staticType(t *lang.Type) *lang.Type {
	if tr.isDataType(t) {
		return lang.LongType
	}
	return t
}

// mapMethod builds the facade-signature twin of a data-path method:
// data-class parameters become facade parameters, data arrays become raw
// longs (§2.2, transformation 2).
func (tr *transformer) mapMethod(m *lang.Method, owner *lang.Class, ownerIf *lang.Iface) *lang.Method {
	nm := &lang.Method{
		Name:       m.Name,
		Owner:      owner,
		OwnerIface: ownerIf,
		Static:     m.Static,
		IsCtor:     m.IsCtor,
		ParamNames: m.ParamNames,
		Ret:        tr.mapType(m.Ret),
	}
	for _, pt := range m.Params {
		nm.Params = append(nm.Params, tr.mapType(pt))
	}
	return nm
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Program assembly

// buildProgram creates P': deep copies of all original functions (the
// control path keeps running on heap objects), transformed facade twins
// for every data-class method, the synthesized Facade base methods, and
// conversion functions.
func (tr *transformer) buildProgram() error {
	out := &ir.Program{
		H:           tr.newH,
		Funcs:       make(map[string]*ir.Func),
		StringPool:  append([]string(nil), tr.p.StringPool...),
		Transformed: true,
		Bounds:      tr.bounds,
		DataClasses: tr.data,
		NumSites:    tr.p.NumSites,
	}
	tr.out = out
	tr.convFrom = make(map[string]*ir.Func)
	tr.convTo = make(map[string]*ir.Func)
	tr.convFromArr = make(map[string]*ir.Func)
	tr.convToArr = make(map[string]*ir.Func)

	// Control path: verbatim copies.
	for _, f := range tr.p.FuncList {
		out.AddFunc(copyFunc(f))
	}
	// Facade base methods.
	out.AddFunc(tr.synthFacadeHashCode())
	out.AddFunc(tr.synthFacadeEquals())

	// Data path: transformed twins.
	for _, c := range tr.p.H.ClassList {
		if !tr.data[c.Name] {
			continue
		}
		fc := tr.facades[c.Name]
		if c.Ctor != nil {
			nf, err := tr.transformBody(tr.p.Funcs[ir.CtorKey(c.Name)], fc, fc.Ctor, ir.CtorKey(fc.Name))
			if err != nil {
				return err
			}
			out.AddFunc(nf)
		}
		for _, mn := range sortedMethodNames(c) {
			nf, err := tr.transformBody(tr.p.Funcs[ir.FuncKey(c.Name, mn)], fc, fc.Methods[mn], ir.FuncKey(fc.Name, mn))
			if err != nil {
				return err
			}
			out.AddFunc(nf)
		}
	}
	// Flush conversion-function synthesis (may enqueue more).
	for len(tr.convQueue) > 0 {
		q := tr.convQueue
		tr.convQueue = nil
		for _, gen := range q {
			if err := gen(); err != nil {
				return err
			}
		}
	}
	return nil
}

// copyFunc deep-copies a function so the two programs never share mutable
// instruction state (the VM caches link data in instructions).
func copyFunc(f *ir.Func) *ir.Func {
	nf := &ir.Func{
		Name:      f.Name,
		Class:     f.Class,
		Method:    f.Method,
		NumRegs:   f.NumRegs,
		RegTypes:  append([]*lang.Type(nil), f.RegTypes...),
		Params:    append([]ir.Reg(nil), f.Params...),
		Synthetic: f.Synthetic,
	}
	for _, b := range f.Blocks {
		nb := &ir.Block{ID: b.ID, Instrs: make([]ir.Instr, len(b.Instrs))}
		copy(nb.Instrs, b.Instrs)
		for i := range nb.Instrs {
			if nb.Instrs[i].Args != nil {
				nb.Instrs[i].Args = append([]ir.Reg(nil), nb.Instrs[i].Args...)
			}
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	return nf
}

// synthFacadeHashCode emits Facade.hashCode, the record twin of
// Object.hashCode.
func (tr *transformer) synthFacadeHashCode() *ir.Func {
	fb := tr.facadeBase
	f := &ir.Func{
		Name:      ir.FuncKey("Facade", "hashCode"),
		Class:     fb,
		Method:    fb.Methods["hashCode"],
		Synthetic: true,
	}
	b := newFuncBuilder(f)
	this := b.addReg(lang.ClassType("Facade"))
	f.Params = []ir.Reg{this}
	zero := b.addReg(lang.IntType)
	b.emit(ir.Instr{Op: ir.OpConst, Dst: zero, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, NumKind: ir.KInt, Type: lang.IntType})
	b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: zero, B: ir.NoReg, C: ir.NoReg})
	b.finish()
	return f
}

// synthFacadeEquals emits Facade.equals: page-reference identity, the
// record twin of Object.equals.
func (tr *transformer) synthFacadeEquals() *ir.Func {
	fb := tr.facadeBase
	f := &ir.Func{
		Name:      ir.FuncKey("Facade", "equals"),
		Class:     fb,
		Method:    fb.Methods["equals"],
		Synthetic: true,
	}
	b := newFuncBuilder(f)
	this := b.addReg(lang.ClassType("Facade"))
	other := b.addReg(lang.ClassType("Facade"))
	f.Params = []ir.Reg{this, other}
	pr := tr.facadeBase.Fields[0]
	tRef := b.addReg(lang.LongType)
	oRef := b.addReg(lang.LongType)
	b.emit(ir.Instr{Op: ir.OpLoad, Dst: tRef, A: this, B: ir.NoReg, C: ir.NoReg, Field: pr})
	b.emit(ir.Instr{Op: ir.OpLoad, Dst: oRef, A: other, B: ir.NoReg, C: ir.NoReg, Field: pr})
	eq := b.addReg(lang.BoolType)
	b.emit(ir.Instr{Op: ir.OpBin, Sub: ir.BinEq, NumKind: ir.KLong, Dst: eq, A: tRef, B: oRef, C: ir.NoReg})
	b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: eq, B: ir.NoReg, C: ir.NoReg})
	b.finish()
	return f
}

// funcBuilder is a minimal straight-line IR builder for synthesized
// functions.
type funcBuilder struct {
	f   *ir.Func
	cur *ir.Block
}

func newFuncBuilder(f *ir.Func) *funcBuilder {
	b := &funcBuilder{f: f}
	b.cur = &ir.Block{ID: 0}
	f.Blocks = []*ir.Block{b.cur}
	return b
}

func (b *funcBuilder) addReg(t *lang.Type) ir.Reg {
	r := ir.Reg(b.f.NumRegs)
	b.f.NumRegs++
	b.f.RegTypes = append(b.f.RegTypes, t)
	return r
}

func (b *funcBuilder) emit(in ir.Instr) { b.cur.Instrs = append(b.cur.Instrs, in) }

// newBlock appends a block and makes it current.
func (b *funcBuilder) newBlock() int {
	nb := &ir.Block{ID: len(b.f.Blocks)}
	b.f.Blocks = append(b.f.Blocks, nb)
	b.cur = nb
	return nb.ID
}

// useBlock switches the current block.
func (b *funcBuilder) useBlock(id int) { b.cur = b.f.Blocks[id] }

func (b *funcBuilder) finish() {}
