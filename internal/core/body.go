package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/lang"
)

// transformBody rewrites one data-path method into its facade twin,
// implementing the instruction transformation of Table 1. The CFG shape is
// preserved: each input instruction expands to one or more instructions in
// the same basic block, so jump targets stay valid.
func (tr *transformer) transformBody(of *ir.Func, fc *lang.Class, nm *lang.Method, key string) (*ir.Func, error) {
	if of == nil {
		return nil, fmt.Errorf("facade: missing original body for %s", key)
	}
	nf := &ir.Func{
		Name:     key,
		Class:    fc,
		Method:   nm,
		NumRegs:  of.NumRegs,
		RegTypes: make([]*lang.Type, of.NumRegs),
	}
	c := &bodyCtx{tr: tr, of: of, nf: nf, ot: of.RegTypes}
	// Register retyping: every data-typed register becomes a page
	// reference.
	for i, t := range of.RegTypes {
		if tr.isDataType(t) {
			nf.RegTypes[i] = refType(t)
		} else {
			nf.RegTypes[i] = t
		}
	}

	// Parameters and prologue (Table 1, case 1): data-class parameters
	// arrive as facades; the prologue copies their pageRef into the
	// original (now long) register. Data arrays arrive as raw longs in
	// the original register; everything else is unchanged.
	var prologue []ir.Instr
	isStatic := of.Method == nil || of.Method.Static
	for i, p := range of.Params {
		var origType *lang.Type
		if !isStatic && i == 0 {
			origType = lang.ClassType(of.Class.Name)
		} else {
			pi := i
			if !isStatic {
				pi--
			}
			origType = of.Method.Params[pi]
		}
		if tr.isDataScalar(origType) {
			ft := tr.mapType(origType)
			if !isStatic && i == 0 {
				ft = lang.ClassType(fc.Name)
			}
			fp := c.newReg(ft)
			nf.Params = append(nf.Params, fp)
			prologue = append(prologue, ir.Instr{
				Op: ir.OpLoad, Dst: p, A: fp, B: ir.NoReg, C: ir.NoReg,
				Field: tr.pageRefField(),
			})
			continue
		}
		nf.Params = append(nf.Params, p)
	}

	for bi, ob := range of.Blocks {
		nb := &ir.Block{ID: ob.ID}
		nf.Blocks = append(nf.Blocks, nb)
		c.b = nb
		if bi == 0 {
			nb.Instrs = append(nb.Instrs, prologue...)
		}
		for i := range ob.Instrs {
			if err := c.instr(&ob.Instrs[i]); err != nil {
				return nil, fmt.Errorf("%s: %w", key, err)
			}
		}
	}
	return nf, nil
}

func (tr *transformer) pageRefField() *lang.Field { return tr.facadeBase.Fields[0] }

type bodyCtx struct {
	tr *transformer
	of *ir.Func
	nf *ir.Func
	ot []*lang.Type // original register types
	b  *ir.Block
}

func (c *bodyCtx) newReg(t *lang.Type) ir.Reg {
	r := ir.Reg(c.nf.NumRegs)
	c.nf.NumRegs++
	c.nf.RegTypes = append(c.nf.RegTypes, t)
	return r
}

func (c *bodyCtx) emit(in ir.Instr) { c.b.Instrs = append(c.b.Instrs, in) }

// d reports whether register r held a data value in the original body.
func (c *bodyCtx) d(r ir.Reg) bool {
	return r != ir.NoReg && c.tr.isDataType(c.ot[r])
}

func (c *bodyCtx) instr(in *ir.Instr) error {
	tr := c.tr
	cp := *in
	if cp.Args != nil {
		cp.Args = append([]ir.Reg(nil), cp.Args...)
	}
	switch in.Op {
	case ir.OpNop, ir.OpConst, ir.OpMove, ir.OpBin, ir.OpUn, ir.OpConv,
		ir.OpJump, ir.OpBranch:
		// Unchanged (case 2 and arithmetic/control); data registers have
		// already been retyped to longs, and reference equality on page
		// references is value equality.
		c.emit(cp)
		return nil

	case ir.OpStrLit:
		if tr.data["String"] {
			// String is a data class: the literal is interned as a page
			// record. The KLong mark tells the VM which cache to use.
			cp.NumKind = ir.KLong
		}
		c.emit(cp)
		return nil

	case ir.OpNew:
		if tr.data[in.Cls.Name] {
			// Transformation 3: allocate the record; the constructor call
			// that follows is rewritten by the OpCallStatic case.
			cp.Op = ir.OpPNew
			cp.Cls = tr.facades[in.Cls.Name]
			cp.Imm = int64(in.Cls.BodySize)
		}
		c.emit(cp)
		return nil

	case ir.OpNewArr:
		// All arrays created in the data path are page arrays.
		cp.Op = ir.OpPNewArr
		c.emit(cp)
		return nil

	case ir.OpLoad:
		if c.d(in.A) {
			cp.Op = ir.OpPLoad // case 4.1 (and primitive loads)
			c.emit(cp)
			return nil
		}
		if tr.isDataType(in.Field.Type) {
			// Case 4.3, interaction point: a heap object yields a data
			// value; convert it into a page record.
			tmp := c.newReg(in.Field.Type)
			c.emit(ir.Instr{Op: ir.OpLoad, Dst: tmp, A: in.A, B: ir.NoReg, C: ir.NoReg, Field: in.Field})
			return c.emitConvertFrom(in.Field.Type, tmp, in.Dst)
		}
		c.emit(cp)
		return nil

	case ir.OpStore:
		if c.d(in.A) {
			if !tr.isDataType(in.Field.Type) && in.Field.Type.IsRef() {
				// Case 3.4: a data record would reference a control
				// object.
				return fmt.Errorf("facade: assumption violation: store of non-data reference into data field %s.%s",
					in.Field.Owner.Name, in.Field.Name)
			}
			cp.Op = ir.OpPStore // case 3.1
			c.emit(cp)
			return nil
		}
		if c.d(in.B) {
			// Case 3.3, interaction point: a data value flows into a
			// control object; convert the record back to a heap object.
			tmp, err := c.convertToTmp(c.ot[in.B], in.B)
			if err != nil {
				return err
			}
			c.emit(ir.Instr{Op: ir.OpStore, Dst: ir.NoReg, A: in.A, B: tmp, C: ir.NoReg, Field: in.Field})
			return nil
		}
		c.emit(cp)
		return nil

	case ir.OpLoadStatic, ir.OpStoreStatic:
		if nf := tr.newStatics[in.Field]; nf != nil {
			cp.Field = nf
		} else if tr.isDataType(in.Field.Type) {
			// A control class exposing a data-typed static: interaction
			// point; handled like 4.3/3.3.
			if in.Op == ir.OpLoadStatic {
				tmp := c.newReg(in.Field.Type)
				c.emit(ir.Instr{Op: ir.OpLoadStatic, Dst: tmp, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Field: in.Field})
				return c.emitConvertFrom(in.Field.Type, tmp, in.Dst)
			}
			tmp, err := c.convertToTmp(c.ot[in.A], in.A)
			if err != nil {
				return err
			}
			c.emit(ir.Instr{Op: ir.OpStoreStatic, Dst: ir.NoReg, A: tmp, B: ir.NoReg, C: ir.NoReg, Field: in.Field})
			return nil
		}
		c.emit(cp)
		return nil

	case ir.OpALoad:
		cp.Op = ir.OpPALoad
		c.emit(cp)
		return nil
	case ir.OpAStore:
		cp.Op = ir.OpPAStore
		c.emit(cp)
		return nil
	case ir.OpALen:
		cp.Op = ir.OpPALen
		c.emit(cp)
		return nil

	case ir.OpInstOf:
		if !c.d(in.A) {
			c.emit(cp)
			return nil
		}
		return c.pInstOf(in, &cp, false)

	case ir.OpCast:
		if !c.d(in.A) {
			c.emit(cp)
			return nil
		}
		return c.pInstOf(in, &cp, true)

	case ir.OpMonEnter:
		if c.d(in.A) {
			cp.Op = ir.OpPMonEnter
		}
		c.emit(cp)
		return nil
	case ir.OpMonExit:
		if c.d(in.A) {
			cp.Op = ir.OpPMonExit
		}
		c.emit(cp)
		return nil

	case ir.OpIntr:
		return c.intr(in, &cp)

	case ir.OpRet:
		return c.ret(in)

	case ir.OpCall:
		return c.call(in)

	case ir.OpCallStatic:
		return c.callStatic(in)
	}
	return fmt.Errorf("facade: unhandled op %s", in.Op)
}

// pInstOf handles cases 7.1/7.2 for instanceof (asCast=false) and the
// checked-cast analogue.
func (c *bodyCtx) pInstOf(in *ir.Instr, cp *ir.Instr, asCast bool) error {
	tr := c.tr
	target := in.Type
	switch {
	case target.Kind == lang.TClass && target.Name == "Object":
		if asCast {
			c.emit(ir.Instr{Op: ir.OpMove, Dst: in.Dst, A: in.A, B: ir.NoReg, C: ir.NoReg})
		} else {
			c.emit(ir.Instr{Op: ir.OpConst, Dst: in.Dst, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1, NumKind: ir.KBool, Type: lang.BoolType})
		}
		return nil
	case target.Kind == lang.TClass && tr.data[target.Name]:
		cp.Cls = tr.facades[target.Name]
		cp.Type = nil
	case target.Kind == lang.TIface && tr.dataIf[target.Name]:
		cp.Cls = nil
		cp.Type = lang.IfaceType(target.Name + "Facade")
	case target.Kind == lang.TArray:
		cp.Cls = nil // case 7.2: compare array type IDs
	default:
		if asCast {
			return fmt.Errorf("facade: cast of data value to non-data type %s", target)
		}
		// A record is never an instance of a control type.
		c.emit(ir.Instr{Op: ir.OpConst, Dst: in.Dst, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, NumKind: ir.KBool, Type: lang.BoolType})
		return nil
	}
	if asCast {
		cp.Op = ir.OpPCast
	} else {
		cp.Op = ir.OpPInstOf
	}
	c.emit(*cp)
	return nil
}

func (c *bodyCtx) intr(in *ir.Instr, cp *ir.Instr) error {
	switch in.Sym {
	case "print", "println":
		if len(in.Args) == 1 && c.d(in.Args[0]) {
			cp.Sym = in.Sym + "Rec"
		}
	case "arraycopy":
		// Arrays in the data path are page arrays.
		cp.Sym = "arraycopyRec"
	case "release":
		if len(in.Args) == 1 && c.d(in.Args[0]) {
			cp.Sym = "releaseRec"
		}
	}
	c.emit(*cp)
	return nil
}

// ret implements case 5: data returns travel in pool facade 0. The
// decision is made on the method's declared return type so that `return
// null` also goes through a (null-bound) facade.
func (c *bodyCtx) ret(in *ir.Instr) error {
	tr := c.tr
	var retT *lang.Type
	if c.of.Method != nil {
		retT = c.of.Method.Ret
	}
	if in.A == ir.NoReg || retT == nil || !tr.isDataScalar(retT) {
		cp := *in
		c.emit(cp)
		return nil
	}
	pool, err := tr.poolClassName(retT)
	if err != nil {
		return err
	}
	fcls := tr.facades[pool]
	af := c.newReg(lang.ClassType(fcls.Name))
	c.emit(ir.Instr{Op: ir.OpPoolGet, Dst: af, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Cls: fcls, Imm: 0})
	c.emit(ir.Instr{Op: ir.OpStore, Dst: ir.NoReg, A: af, B: in.A, C: ir.NoReg, Field: tr.pageRefField()})
	c.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: af, B: ir.NoReg, C: ir.NoReg})
	return nil
}

// bindArgs rewrites call arguments against the callee's original
// signature, drawing parameter facades from per-type pools (case 6.1).
func (c *bodyCtx) bindArgs(m *lang.Method, args []ir.Reg) ([]ir.Reg, map[string]int, error) {
	tr := c.tr
	out := make([]ir.Reg, len(args))
	perPool := make(map[string]int)
	for i, r := range args {
		pt := m.Params[i]
		if tr.isDataScalar(pt) {
			pool, err := tr.poolClassName(pt)
			if err != nil {
				return nil, nil, err
			}
			fcls := tr.facades[pool]
			idx := perPool[pool]
			perPool[pool]++
			bf := c.newReg(lang.ClassType(fcls.Name))
			c.emit(ir.Instr{Op: ir.OpPoolGet, Dst: bf, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Cls: fcls, Imm: int64(idx)})
			c.emit(ir.Instr{Op: ir.OpStore, Dst: ir.NoReg, A: bf, B: r, C: ir.NoReg, Field: tr.pageRefField()})
			out[i] = bf
			continue
		}
		if tr.isDataType(pt) || !pt.IsRef() || !c.d(r) {
			out[i] = r
			continue
		}
		// Data value flowing into a control-typed parameter cannot occur
		// inside the data path (the checker typed it), but a data value
		// into an Object parameter of a control method is case 6.3 and is
		// handled by the caller before reaching here.
		out[i] = r
	}
	return out, perPool, nil
}

// call implements case 6 for virtual calls.
func (c *bodyCtx) call(in *ir.Instr) error {
	tr := c.tr
	if !c.d(in.A) {
		return c.controlCall(in, false)
	}
	// 6.1/6.2: data receiver.
	recvT := c.ot[in.A]
	fm, err := tr.facadeMethod(recvT, in.M.Name)
	if err != nil {
		return err
	}
	args, _, err := c.bindArgs(in.M, in.Args)
	if err != nil {
		return err
	}
	var afType *lang.Type
	if recvT.Kind == lang.TClass {
		afType = lang.ClassType(FacadeName(recvT.Name))
	} else {
		afType = tr.mapType(recvT)
	}
	af := c.newReg(afType)
	if tr.opts.Devirtualize && tr.monomorphic(recvT, in.M.Name) {
		c.emit(ir.Instr{Op: ir.OpRecvPool, Dst: af, A: in.A, B: ir.NoReg, C: ir.NoReg,
			Cls: tr.facades[recvT.Name]})
	} else {
		c.emit(ir.Instr{Op: ir.OpResolve, Dst: af, A: in.A, B: ir.NoReg, C: ir.NoReg})
	}
	callDst := in.Dst
	unwrap := false
	if in.Dst != ir.NoReg && tr.isDataScalar(in.M.Ret) {
		callDst = c.newReg(tr.mapType(in.M.Ret))
		unwrap = true
	}
	c.emit(ir.Instr{Op: ir.OpCall, Dst: callDst, A: af, B: ir.NoReg, C: ir.NoReg, M: fm, Args: args})
	if unwrap {
		c.emit(ir.Instr{Op: ir.OpLoad, Dst: in.Dst, A: callDst, B: ir.NoReg, C: ir.NoReg, Field: tr.pageRefField()})
	}
	return nil
}

// monomorphic reports whether class-hierarchy analysis proves that a call
// of method name on a receiver of static type recvT always lands in the
// same implementation: the receiver must be a concrete data class none of
// whose data subclasses override the method.
func (tr *transformer) monomorphic(recvT *lang.Type, name string) bool {
	if recvT.Kind != lang.TClass || !tr.data[recvT.Name] {
		return false
	}
	base := tr.p.H.Class(recvT.Name)
	for _, cls := range tr.p.H.ClassList {
		if cls == base || !tr.data[cls.Name] || !cls.IsSubclassOf(base) {
			continue
		}
		if _, overrides := cls.Methods[name]; overrides {
			return false
		}
	}
	return true
}

// facadeMethod resolves the facade twin of method name on a data receiver
// type.
func (tr *transformer) facadeMethod(recvT *lang.Type, name string) (*lang.Method, error) {
	switch recvT.Kind {
	case lang.TClass:
		fc := tr.facades[recvT.Name]
		if fc == nil {
			return nil, fmt.Errorf("facade: no facade class for %s", recvT.Name)
		}
		if m := fc.Resolve(name); m != nil {
			return m, nil
		}
		return nil, fmt.Errorf("facade: %s has no facade method %s", recvT.Name, name)
	case lang.TIface:
		ni := tr.ifaces[recvT.Name]
		if ni == nil {
			return nil, fmt.Errorf("facade: no facade interface for %s", recvT.Name)
		}
		if m := ni.Methods[name]; m != nil {
			return m, nil
		}
		return nil, fmt.Errorf("facade: interface %sFacade has no method %s", recvT.Name, name)
	}
	return nil, fmt.Errorf("facade: bad receiver type %s", recvT)
}

// controlCall handles calls whose receiver (or owner) stays in the control
// path: data arguments are converted to heap objects (case 6.3), data
// results converted back.
func (c *bodyCtx) controlCall(in *ir.Instr, isStatic bool) error {
	tr := c.tr
	cp := *in
	cp.Args = append([]ir.Reg(nil), in.Args...)
	for i, r := range in.Args {
		if c.d(r) {
			tmp, err := c.convertToTmp(c.ot[r], r)
			if err != nil {
				return err
			}
			cp.Args[i] = tmp
		}
	}
	if in.Dst != ir.NoReg && tr.isDataType(in.M.Ret) {
		tmp := c.newReg(in.M.Ret)
		cp.Dst = tmp
		c.emit(cp)
		return c.emitConvertFrom(in.M.Ret, tmp, in.Dst)
	}
	c.emit(cp)
	return nil
}

// callStatic implements case 6 for static calls and transformation 3 for
// constructor calls on freshly allocated records.
func (c *bodyCtx) callStatic(in *ir.Instr) error {
	tr := c.tr
	m := in.M
	ownerData := m.Owner != nil && tr.data[m.Owner.Name]
	if !ownerData {
		return c.controlCall(in, true)
	}
	fc := tr.facades[m.Owner.Name]
	if m.IsCtor {
		args, perPool, err := c.bindArgs(m, in.Args)
		if err != nil {
			return err
		}
		// Receiver facade: next free slot of the owner's pool (the bound
		// computation reserved it).
		idx := perPool[m.Owner.Name]
		sf := c.newReg(lang.ClassType(fc.Name))
		c.emit(ir.Instr{Op: ir.OpPoolGet, Dst: sf, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Cls: fc, Imm: int64(idx)})
		c.emit(ir.Instr{Op: ir.OpStore, Dst: ir.NoReg, A: sf, B: in.A, C: ir.NoReg, Field: tr.pageRefField()})
		c.emit(ir.Instr{Op: ir.OpCallStatic, Dst: ir.NoReg, A: sf, B: ir.NoReg, C: ir.NoReg, M: fc.Ctor, Args: args})
		return nil
	}
	fm := fc.Methods[m.Name]
	if fm == nil {
		return fmt.Errorf("facade: missing facade static %s.%s", fc.Name, m.Name)
	}
	args, _, err := c.bindArgs(m, in.Args)
	if err != nil {
		return err
	}
	callDst := in.Dst
	unwrap := false
	if in.Dst != ir.NoReg && tr.isDataScalar(m.Ret) {
		callDst = c.newReg(tr.mapType(m.Ret))
		unwrap = true
	}
	c.emit(ir.Instr{Op: ir.OpCallStatic, Dst: callDst, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, M: fm, Args: args})
	if unwrap {
		c.emit(ir.Instr{Op: ir.OpLoad, Dst: in.Dst, A: callDst, B: ir.NoReg, C: ir.NoReg, Field: tr.pageRefField()})
	}
	return nil
}
