package core

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/lang"
)

// Conversion functions (§3.5). At every interaction point the transform
// inserts a call to a synthesized converter:
//
//	FacadeBridge.fromAny(Object) long   heap object graph -> page records
//	FacadeBridge.toAny(long) Object     page records -> heap object graph
//
// plus per-class workers from<C>/to<C> and per-array-type workers. The
// paper implements these with reflection; here they are generated IR that
// copies field-by-field using the shared class layout, recursing through
// reference fields. Cyclic object graphs are not supported at interaction
// points (data tuples crossing the boundary are trees in practice).

// emitConvertFrom emits dst(long) = fromX(src) for a heap value of static
// type t.
func (c *bodyCtx) emitConvertFrom(t *lang.Type, src, dst ir.Reg) error {
	var m *lang.Method
	var err error
	if t.Kind == lang.TArray {
		m, err = c.tr.convFromArrMethod(t)
	} else {
		m, err = c.tr.convFromAnyMethod()
	}
	if err != nil {
		return err
	}
	c.emit(ir.Instr{Op: ir.OpCallStatic, Dst: dst, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, M: m, Args: []ir.Reg{src}})
	return nil
}

// convertToTmp emits tmp(heap) = toX(src) for a record of original static
// type t and returns tmp.
func (c *bodyCtx) convertToTmp(t *lang.Type, src ir.Reg) (ir.Reg, error) {
	var m *lang.Method
	var err error
	var tmpType *lang.Type
	if t.Kind == lang.TArray {
		m, err = c.tr.convToArrMethod(t)
		tmpType = t
	} else {
		m, err = c.tr.convToAnyMethod()
		tmpType = lang.ClassType("Object")
	}
	if err != nil {
		return ir.NoReg, err
	}
	tmp := c.newReg(tmpType)
	c.emit(ir.Instr{Op: ir.OpCallStatic, Dst: tmp, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, M: m, Args: []ir.Reg{src}})
	return tmp, nil
}

func mangle(t *lang.Type) string {
	s := t.String()
	s = strings.ReplaceAll(s, "[]", "$A")
	return s
}

// bridgeMethod creates (once) a static method stub on FacadeBridge and a
// generator that fills in its body later (so mutually recursive
// converters can reference one another).
func (tr *transformer) bridgeMethod(name string, params []*lang.Type, ret *lang.Type, cache map[string]*ir.Func, key string, gen func(f *ir.Func) error) (*lang.Method, error) {
	if f, ok := cache[key]; ok {
		return f.Method, nil
	}
	m := &lang.Method{
		Name:       name,
		Owner:      tr.bridge,
		Static:     true,
		Params:     params,
		ParamNames: []string{"x"},
		Ret:        ret,
	}
	tr.bridge.Methods[name] = m
	f := &ir.Func{Name: ir.FuncKey("FacadeBridge", name), Class: tr.bridge, Method: m, Synthetic: true}
	cache[key] = f
	tr.convQueue = append(tr.convQueue, func() error {
		if err := gen(f); err != nil {
			return err
		}
		tr.out.AddFunc(f)
		return nil
	})
	return m, nil
}

// convFromAnyMethod returns the heap->record dispatcher.
func (tr *transformer) convFromAnyMethod() (*lang.Method, error) {
	return tr.bridgeMethod("fromAny", []*lang.Type{lang.ClassType("Object")}, lang.LongType,
		tr.convFrom, "@any", tr.genFromAny)
}

// convToAnyMethod returns the record->heap dispatcher.
func (tr *transformer) convToAnyMethod() (*lang.Method, error) {
	return tr.bridgeMethod("toAny", []*lang.Type{lang.LongType}, lang.ClassType("Object"),
		tr.convTo, "@any", tr.genToAny)
}

func (tr *transformer) convFromClassMethod(name string) (*lang.Method, error) {
	return tr.bridgeMethod("from"+name, []*lang.Type{lang.ClassType("Object")}, lang.LongType,
		tr.convFrom, name, func(f *ir.Func) error { return tr.genFromClass(f, name) })
}

func (tr *transformer) convToClassMethod(name string) (*lang.Method, error) {
	return tr.bridgeMethod("to"+name, []*lang.Type{lang.LongType}, lang.ClassType("Object"),
		tr.convTo, name, func(f *ir.Func) error { return tr.genToClass(f, name) })
}

func (tr *transformer) convFromArrMethod(t *lang.Type) (*lang.Method, error) {
	return tr.bridgeMethod("fromArr_"+mangle(t.Elem), []*lang.Type{t}, lang.LongType,
		tr.convFromArr, t.String(), func(f *ir.Func) error { return tr.genFromArr(f, t) })
}

func (tr *transformer) convToArrMethod(t *lang.Type) (*lang.Method, error) {
	return tr.bridgeMethod("toArr_"+mangle(t.Elem), []*lang.Type{lang.LongType}, t,
		tr.convToArr, t.String(), func(f *ir.Func) error { return tr.genToArr(f, t) })
}

// dataClassesMostDerivedFirst lists data classes with subclasses before
// their superclasses, so instanceof dispatch chains pick the most specific
// converter.
func (tr *transformer) dataClassesMostDerivedFirst() []*lang.Class {
	var out []*lang.Class
	list := tr.p.H.ClassList
	for i := len(list) - 1; i >= 0; i-- {
		if tr.data[list[i].Name] {
			out = append(out, list[i])
		}
	}
	return out
}

// genFromAny builds: if (x == null) return 0; if (x instanceof C1) return
// fromC1(x); ... ; trap.
func (tr *transformer) genFromAny(f *ir.Func) error {
	b := newFuncBuilder(f)
	x := b.addReg(lang.ClassType("Object"))
	f.Params = []ir.Reg{x}
	nullRet := b.addReg(lang.LongType)
	isNull := b.addReg(lang.BoolType)
	zero := b.addReg(lang.NullType)
	b.emit(ir.Instr{Op: ir.OpConst, Dst: zero, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, NumKind: ir.KRef, Type: lang.NullType})
	b.emit(ir.Instr{Op: ir.OpBin, Sub: ir.BinEq, NumKind: ir.KRef, Dst: isNull, A: x, B: zero, C: ir.NoReg})
	// Blocks are appended as we go; block 0 branches to 1 (null) or 2.
	b.emit(ir.Instr{Op: ir.OpBranch, Dst: ir.NoReg, A: isNull, B: ir.NoReg, C: ir.NoReg, Blk: 1, Blk2: 2})
	b.newBlock() // 1: return 0
	b.emit(ir.Instr{Op: ir.OpConst, Dst: nullRet, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, NumKind: ir.KLong, Type: lang.LongType})
	b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: nullRet, B: ir.NoReg, C: ir.NoReg})

	classes := tr.dataClassesMostDerivedFirst()
	cur := b.newBlock() // 2
	for _, cls := range classes {
		m, err := tr.convFromClassMethod(cls.Name)
		if err != nil {
			return err
		}
		b.useBlock(cur)
		is := b.addReg(lang.BoolType)
		b.emit(ir.Instr{Op: ir.OpInstOf, Dst: is, A: x, B: ir.NoReg, C: ir.NoReg, Type: lang.ClassType(cls.Name)})
		hit := len(f.Blocks)
		next := hit + 1
		b.emit(ir.Instr{Op: ir.OpBranch, Dst: ir.NoReg, A: is, B: ir.NoReg, C: ir.NoReg, Blk: hit, Blk2: next})
		b.newBlock() // hit
		ret := b.addReg(lang.LongType)
		b.emit(ir.Instr{Op: ir.OpCallStatic, Dst: ret, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, M: m, Args: []ir.Reg{x}})
		b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: ret, B: ir.NoReg, C: ir.NoReg})
		cur = b.newBlock() // next
	}
	b.useBlock(cur)
	b.emit(ir.Instr{Op: ir.OpIntr, Sym: "trapNoReturn", Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg})
	b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg})
	return nil
}

// genToAny builds the record->heap dispatcher over record type IDs.
func (tr *transformer) genToAny(f *ir.Func) error {
	b := newFuncBuilder(f)
	x := b.addReg(lang.LongType)
	f.Params = []ir.Reg{x}
	isNull := b.addReg(lang.BoolType)
	zero := b.addReg(lang.LongType)
	b.emit(ir.Instr{Op: ir.OpConst, Dst: zero, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, NumKind: ir.KLong, Type: lang.LongType})
	b.emit(ir.Instr{Op: ir.OpBin, Sub: ir.BinEq, NumKind: ir.KLong, Dst: isNull, A: x, B: zero, C: ir.NoReg})
	b.emit(ir.Instr{Op: ir.OpBranch, Dst: ir.NoReg, A: isNull, B: ir.NoReg, C: ir.NoReg, Blk: 1, Blk2: 2})
	b.newBlock() // 1: return null
	nul := b.addReg(lang.NullType)
	b.emit(ir.Instr{Op: ir.OpConst, Dst: nul, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, NumKind: ir.KRef, Type: lang.NullType})
	b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: nul, B: ir.NoReg, C: ir.NoReg})

	classes := tr.dataClassesMostDerivedFirst()
	cur := b.newBlock() // 2
	for _, cls := range classes {
		m, err := tr.convToClassMethod(cls.Name)
		if err != nil {
			return err
		}
		b.useBlock(cur)
		is := b.addReg(lang.BoolType)
		b.emit(ir.Instr{Op: ir.OpPInstOf, Dst: is, A: x, B: ir.NoReg, C: ir.NoReg, Cls: tr.facades[cls.Name]})
		hit := len(f.Blocks)
		next := hit + 1
		b.emit(ir.Instr{Op: ir.OpBranch, Dst: ir.NoReg, A: is, B: ir.NoReg, C: ir.NoReg, Blk: hit, Blk2: next})
		b.newBlock()
		ret := b.addReg(lang.ClassType("Object"))
		b.emit(ir.Instr{Op: ir.OpCallStatic, Dst: ret, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, M: m, Args: []ir.Reg{x}})
		b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: ret, B: ir.NoReg, C: ir.NoReg})
		cur = b.newBlock()
	}
	b.useBlock(cur)
	b.emit(ir.Instr{Op: ir.OpIntr, Sym: "trapNoReturn", Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg})
	b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg})
	return nil
}

// genFromClass copies each field of a heap object of class name into a
// fresh page record ("reads each field in an object of A and writes the
// value into a page").
func (tr *transformer) genFromClass(f *ir.Func, name string) error {
	cls := tr.p.H.Class(name)
	fc := tr.facades[name]
	b := newFuncBuilder(f)
	x := b.addReg(lang.ClassType("Object"))
	f.Params = []ir.Reg{x}
	rec := b.addReg(lang.LongType)
	b.emit(ir.Instr{Op: ir.OpPNew, Dst: rec, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Cls: fc, Imm: int64(cls.BodySize)})
	for _, fl := range cls.AllFields {
		switch {
		case !fl.Type.IsRef():
			tmp := b.addReg(fl.Type)
			b.emit(ir.Instr{Op: ir.OpLoad, Dst: tmp, A: x, B: ir.NoReg, C: ir.NoReg, Field: fl})
			b.emit(ir.Instr{Op: ir.OpPStore, Dst: ir.NoReg, A: rec, B: tmp, C: ir.NoReg, Field: fl})
		case fl.Type.Kind == lang.TArray:
			m, err := tr.convFromArrMethod(fl.Type)
			if err != nil {
				return err
			}
			tmp := b.addReg(fl.Type)
			b.emit(ir.Instr{Op: ir.OpLoad, Dst: tmp, A: x, B: ir.NoReg, C: ir.NoReg, Field: fl})
			ref := b.addReg(lang.LongType)
			b.emit(ir.Instr{Op: ir.OpCallStatic, Dst: ref, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, M: m, Args: []ir.Reg{tmp}})
			b.emit(ir.Instr{Op: ir.OpPStore, Dst: ir.NoReg, A: rec, B: ref, C: ir.NoReg, Field: fl})
		default:
			m, err := tr.convFromAnyMethod()
			if err != nil {
				return err
			}
			tmp := b.addReg(fl.Type)
			b.emit(ir.Instr{Op: ir.OpLoad, Dst: tmp, A: x, B: ir.NoReg, C: ir.NoReg, Field: fl})
			ref := b.addReg(lang.LongType)
			b.emit(ir.Instr{Op: ir.OpCallStatic, Dst: ref, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, M: m, Args: []ir.Reg{tmp}})
			b.emit(ir.Instr{Op: ir.OpPStore, Dst: ir.NoReg, A: rec, B: ref, C: ir.NoReg, Field: fl})
		}
	}
	b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: rec, B: ir.NoReg, C: ir.NoReg})
	return nil
}

// genToClass copies each record field back into a fresh heap object.
func (tr *transformer) genToClass(f *ir.Func, name string) error {
	cls := tr.p.H.Class(name)
	b := newFuncBuilder(f)
	x := b.addReg(lang.LongType)
	f.Params = []ir.Reg{x}
	obj := b.addReg(lang.ClassType(name))
	b.emit(ir.Instr{Op: ir.OpNew, Dst: obj, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Cls: cls})
	for _, fl := range cls.AllFields {
		switch {
		case !fl.Type.IsRef():
			tmp := b.addReg(fl.Type)
			b.emit(ir.Instr{Op: ir.OpPLoad, Dst: tmp, A: x, B: ir.NoReg, C: ir.NoReg, Field: fl})
			b.emit(ir.Instr{Op: ir.OpStore, Dst: ir.NoReg, A: obj, B: tmp, C: ir.NoReg, Field: fl})
		case fl.Type.Kind == lang.TArray:
			m, err := tr.convToArrMethod(fl.Type)
			if err != nil {
				return err
			}
			ref := b.addReg(lang.LongType)
			b.emit(ir.Instr{Op: ir.OpPLoad, Dst: ref, A: x, B: ir.NoReg, C: ir.NoReg, Field: fl})
			tmp := b.addReg(fl.Type)
			b.emit(ir.Instr{Op: ir.OpCallStatic, Dst: tmp, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, M: m, Args: []ir.Reg{ref}})
			b.emit(ir.Instr{Op: ir.OpStore, Dst: ir.NoReg, A: obj, B: tmp, C: ir.NoReg, Field: fl})
		default:
			m, err := tr.convToAnyMethod()
			if err != nil {
				return err
			}
			ref := b.addReg(lang.LongType)
			b.emit(ir.Instr{Op: ir.OpPLoad, Dst: ref, A: x, B: ir.NoReg, C: ir.NoReg, Field: fl})
			tmp := b.addReg(lang.ClassType("Object"))
			b.emit(ir.Instr{Op: ir.OpCallStatic, Dst: tmp, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, M: m, Args: []ir.Reg{ref}})
			b.emit(ir.Instr{Op: ir.OpStore, Dst: ir.NoReg, A: obj, B: tmp, C: ir.NoReg, Field: fl})
		}
	}
	b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: obj, B: ir.NoReg, C: ir.NoReg})
	return nil
}

// genFromArr converts a heap array to a page array element by element.
func (tr *transformer) genFromArr(f *ir.Func, t *lang.Type) error {
	elem := t.Elem
	b := newFuncBuilder(f)
	x := b.addReg(t)
	f.Params = []ir.Reg{x}
	// if (x == null) return 0;
	isNull := b.addReg(lang.BoolType)
	zero := b.addReg(lang.NullType)
	b.emit(ir.Instr{Op: ir.OpConst, Dst: zero, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, NumKind: ir.KRef, Type: lang.NullType})
	b.emit(ir.Instr{Op: ir.OpBin, Sub: ir.BinEq, NumKind: ir.KRef, Dst: isNull, A: x, B: zero, C: ir.NoReg})
	b.emit(ir.Instr{Op: ir.OpBranch, Dst: ir.NoReg, A: isNull, B: ir.NoReg, C: ir.NoReg, Blk: 1, Blk2: 2})
	b.newBlock() // 1
	z := b.addReg(lang.LongType)
	b.emit(ir.Instr{Op: ir.OpConst, Dst: z, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, NumKind: ir.KLong, Type: lang.LongType})
	b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: z, B: ir.NoReg, C: ir.NoReg})
	b.newBlock() // 2: allocate and loop
	n := b.addReg(lang.IntType)
	b.emit(ir.Instr{Op: ir.OpALen, Dst: n, A: x, B: ir.NoReg, C: ir.NoReg, Type: elem})
	rec := b.addReg(lang.LongType)
	b.emit(ir.Instr{Op: ir.OpPNewArr, Dst: rec, A: n, B: ir.NoReg, C: ir.NoReg, Type: elem})
	i := b.addReg(lang.IntType)
	b.emit(ir.Instr{Op: ir.OpConst, Dst: i, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, NumKind: ir.KInt, Type: lang.IntType})
	b.emit(ir.Instr{Op: ir.OpJump, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Blk: 3})
	b.newBlock() // 3: head
	cond := b.addReg(lang.BoolType)
	b.emit(ir.Instr{Op: ir.OpBin, Sub: ir.BinLt, NumKind: ir.KInt, Dst: cond, A: i, B: n, C: ir.NoReg})
	b.emit(ir.Instr{Op: ir.OpBranch, Dst: ir.NoReg, A: cond, B: ir.NoReg, C: ir.NoReg, Blk: 4, Blk2: 5})
	b.newBlock() // 4: body
	ev := b.addReg(elem)
	b.emit(ir.Instr{Op: ir.OpALoad, Dst: ev, A: x, B: i, C: ir.NoReg, Type: elem})
	store := ev
	if elem.IsRef() {
		var m *lang.Method
		var err error
		if elem.Kind == lang.TArray {
			m, err = tr.convFromArrMethod(elem)
		} else {
			m, err = tr.convFromAnyMethod()
		}
		if err != nil {
			return err
		}
		cv := b.addReg(lang.LongType)
		b.emit(ir.Instr{Op: ir.OpCallStatic, Dst: cv, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, M: m, Args: []ir.Reg{ev}})
		store = cv
	}
	b.emit(ir.Instr{Op: ir.OpPAStore, Dst: ir.NoReg, A: rec, B: i, C: store, Type: elem})
	one := b.addReg(lang.IntType)
	b.emit(ir.Instr{Op: ir.OpConst, Dst: one, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1, NumKind: ir.KInt, Type: lang.IntType})
	b.emit(ir.Instr{Op: ir.OpBin, Sub: ir.BinAdd, NumKind: ir.KInt, Dst: i, A: i, B: one, C: ir.NoReg})
	b.emit(ir.Instr{Op: ir.OpJump, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Blk: 3})
	b.newBlock() // 5: done
	b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: rec, B: ir.NoReg, C: ir.NoReg})
	return nil
}

// genToArr converts a page array back to a heap array.
func (tr *transformer) genToArr(f *ir.Func, t *lang.Type) error {
	elem := t.Elem
	b := newFuncBuilder(f)
	x := b.addReg(lang.LongType)
	f.Params = []ir.Reg{x}
	isNull := b.addReg(lang.BoolType)
	zero := b.addReg(lang.LongType)
	b.emit(ir.Instr{Op: ir.OpConst, Dst: zero, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, NumKind: ir.KLong, Type: lang.LongType})
	b.emit(ir.Instr{Op: ir.OpBin, Sub: ir.BinEq, NumKind: ir.KLong, Dst: isNull, A: x, B: zero, C: ir.NoReg})
	b.emit(ir.Instr{Op: ir.OpBranch, Dst: ir.NoReg, A: isNull, B: ir.NoReg, C: ir.NoReg, Blk: 1, Blk2: 2})
	b.newBlock() // 1
	nul := b.addReg(lang.NullType)
	b.emit(ir.Instr{Op: ir.OpConst, Dst: nul, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, NumKind: ir.KRef, Type: lang.NullType})
	b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: nul, B: ir.NoReg, C: ir.NoReg})
	b.newBlock() // 2
	n := b.addReg(lang.IntType)
	b.emit(ir.Instr{Op: ir.OpPALen, Dst: n, A: x, B: ir.NoReg, C: ir.NoReg, Type: elem})
	arr := b.addReg(t)
	b.emit(ir.Instr{Op: ir.OpNewArr, Dst: arr, A: n, B: ir.NoReg, C: ir.NoReg, Type: elem})
	i := b.addReg(lang.IntType)
	b.emit(ir.Instr{Op: ir.OpConst, Dst: i, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, NumKind: ir.KInt, Type: lang.IntType})
	b.emit(ir.Instr{Op: ir.OpJump, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Blk: 3})
	b.newBlock() // 3
	cond := b.addReg(lang.BoolType)
	b.emit(ir.Instr{Op: ir.OpBin, Sub: ir.BinLt, NumKind: ir.KInt, Dst: cond, A: i, B: n, C: ir.NoReg})
	b.emit(ir.Instr{Op: ir.OpBranch, Dst: ir.NoReg, A: cond, B: ir.NoReg, C: ir.NoReg, Blk: 4, Blk2: 5})
	b.newBlock() // 4
	ev := b.addReg(lang.LongType)
	b.emit(ir.Instr{Op: ir.OpPALoad, Dst: ev, A: x, B: i, C: ir.NoReg, Type: elem})
	store := ev
	if elem.IsRef() {
		var m *lang.Method
		var err error
		var tmpType *lang.Type
		if elem.Kind == lang.TArray {
			m, err = tr.convToArrMethod(elem)
			tmpType = elem
		} else {
			m, err = tr.convToAnyMethod()
			tmpType = lang.ClassType("Object")
		}
		if err != nil {
			return err
		}
		cv := b.addReg(tmpType)
		b.emit(ir.Instr{Op: ir.OpCallStatic, Dst: cv, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, M: m, Args: []ir.Reg{ev}})
		store = cv
	} else {
		// Primitive element values transfer bit-for-bit, but the PALoad
		// destination register above was typed long; retype it to the
		// element type for correctness of later truncation. Values are
		// already normalized by loadRecElem, so a move suffices.
		ev2 := b.addReg(elem)
		b.emit(ir.Instr{Op: ir.OpMove, Dst: ev2, A: ev, B: ir.NoReg, C: ir.NoReg})
		store = ev2
	}
	b.emit(ir.Instr{Op: ir.OpAStore, Dst: ir.NoReg, A: arr, B: i, C: store, Type: elem})
	one := b.addReg(lang.IntType)
	b.emit(ir.Instr{Op: ir.OpConst, Dst: one, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1, NumKind: ir.KInt, Type: lang.IntType})
	b.emit(ir.Instr{Op: ir.OpBin, Sub: ir.BinAdd, NumKind: ir.KInt, Dst: i, A: i, B: one, C: ir.NoReg})
	b.emit(ir.Instr{Op: ir.OpJump, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Blk: 3})
	b.newBlock() // 5
	b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: arr, B: ir.NoReg, C: ir.NoReg})
	return nil
}

// Referenced from core.go error text.
var _ = fmt.Sprintf
