// Package core implements the FACADE compiler transform (§3 of the
// paper): given program P and a user-provided list of data classes, it
// produces program P' in which
//
//   - every data class D gains a facade class DFacade with no instance
//     fields, whose methods are D's methods rewritten to operate on
//     off-heap page records through 64-bit page references;
//   - heap objects of facade types are the only per-data-item objects P'
//     ever creates, and their number is statically bounded per thread by
//     the pool bounds computed in §3.3;
//   - data crossing the control/data boundary is converted by synthesized
//     conversion functions (§3.5);
//   - synchronized blocks on data records go through the shared lock pool
//     (§3.4).
//
// The transform is local (method-at-a-time) and linear in program size,
// which is what lets the paper's compiler process framework-scale
// codebases in seconds; the same property holds here and is measured by
// the compilation-speed benchmarks.
package core

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/lang"
)

// Options configures the transform.
type Options struct {
	// DataClasses is the user-provided list of data classes (§3.1). The
	// transform expands it to a closure over field types, superclasses,
	// and subclasses unless NoAutoClose is set, mirroring how FACADE
	// "detected" additional data and boundary classes in §4.
	DataClasses []string
	// NoAutoClose disables closure expansion: assumption violations then
	// surface as compilation errors, as the paper specifies.
	NoAutoClose bool
	// ExcludeString keeps String out of the data path even when present.
	ExcludeString bool
	// Devirtualize enables §3.6's "static resolution of virtual calls":
	// when class-hierarchy analysis proves a data-receiver call site
	// monomorphic, the receiver facade is drawn from the static type's
	// receiver pool without consulting the record's type tag.
	Devirtualize bool
	// DisableDCE skips the liveness-driven dead-code elimination pass that
	// otherwise prunes unreferenced instructions from the transformed
	// program (internal/analysis).
	DisableDCE bool
	// TightenBounds shrinks the §3.3 pool bounds from max-over-signatures
	// to the highest pool index surviving DCE. Opt-in: programs entered
	// through the Go boundary (vm.BindParamFacade) size pools by
	// signature, so only pure-FJ entry points should tighten.
	TightenBounds bool
}

// Transform rewrites program p into its FACADE form.
func Transform(p *ir.Program, opts Options) (*ir.Program, error) {
	tr := &transformer{
		p:      p,
		opts:   opts,
		data:   make(map[string]bool),
		dataIf: make(map[string]bool),
	}
	if err := tr.computeDataSet(); err != nil {
		return nil, err
	}
	if err := tr.checkAssumptions(); err != nil {
		return nil, err
	}
	tr.computeBounds()
	if err := tr.buildHierarchy(); err != nil {
		return nil, err
	}
	if err := tr.buildProgram(); err != nil {
		return nil, err
	}
	if !opts.DisableDCE {
		analysis.Eliminate(tr.out)
	}
	if opts.TightenBounds {
		analysis.TightenBounds(tr.out)
	}
	if err := tr.out.Verify(); err != nil {
		return nil, fmt.Errorf("facade transform produced invalid IR: %w", err)
	}
	return tr.out, nil
}

type transformer struct {
	p    *ir.Program
	opts Options

	// data is the closed set of data class names; dataIf the interfaces
	// implemented by data classes (treated as data types in the data
	// path).
	data   map[string]bool
	dataIf map[string]bool

	bounds map[string]int // pool class name ("Object" for the base pool) -> bound

	newH       *lang.Hierarchy
	facadeBase *lang.Class
	bridge     *lang.Class            // FacadeBridge, owner of conversion functions
	facades    map[string]*lang.Class // original class name -> facade class
	ifaces     map[string]*lang.Iface // original iface name -> IFacade
	newStatics map[*lang.Field]*lang.Field

	out *ir.Program

	// Conversion function bookkeeping (synthesized on demand).
	convFrom    map[string]*ir.Func // class name -> convertFrom<C>
	convTo      map[string]*ir.Func
	convFromArr map[string]*ir.Func // array type string -> converter
	convToArr   map[string]*ir.Func
	convQueue   []func() error
}

// isDataType reports whether a type is a data type inside the data path:
// data classes, interfaces implemented by data classes, Object and String
// (the paper's implicit exceptions), and every array type (arrays
// manipulated by data-path code live in pages).
func (tr *transformer) isDataType(t *lang.Type) bool {
	if t == nil {
		return false
	}
	switch t.Kind {
	case lang.TArray:
		return true
	case lang.TClass:
		return tr.data[t.Name] || t.Name == "Object"
	case lang.TIface:
		return tr.dataIf[t.Name]
	}
	return false
}

// isDataScalar reports data types that travel in facades (everything
// isDataType except arrays, which travel as raw page references).
func (tr *transformer) isDataScalar(t *lang.Type) bool {
	return tr.isDataType(t) && t.Kind != lang.TArray
}

// computeDataSet expands the user list to the closure required by the
// reference- and type-closed-world assumptions: superclasses and
// subclasses of data classes, and classes referenced by data-class fields.
func (tr *transformer) computeDataSet() error {
	h := tr.p.H
	var work []string
	add := func(name string) {
		if name == "Object" || tr.data[name] {
			return
		}
		if h.Class(name) == nil {
			return
		}
		tr.data[name] = true
		work = append(work, name)
	}
	for _, n := range tr.opts.DataClasses {
		if h.Class(n) == nil {
			return fmt.Errorf("facade: unknown data class %s", n)
		}
		add(n)
	}
	if len(tr.data) == 0 {
		return fmt.Errorf("facade: no data classes specified")
	}
	if !tr.opts.ExcludeString && h.Class("String") != nil {
		// String is a data class whenever the data path can touch it.
		add("String")
	}
	if tr.opts.NoAutoClose {
		work = nil
	}
	for len(work) > 0 {
		name := work[len(work)-1]
		work = work[:len(work)-1]
		c := h.Class(name)
		// Type-closed world: supers and subs are data (§3.1).
		if c.Super != nil && c.Super.Name != "Object" {
			add(c.Super.Name)
		}
		for _, s := range c.Subs {
			add(s.Name)
		}
		// Reference-closed world: field class types are data.
		for _, f := range c.AllFields {
			addTypeClosure(f.Type, add, tr)
		}
	}
	// Interfaces implemented by data classes.
	for name := range tr.data {
		for x := h.Class(name); x != nil; x = x.Super {
			for _, i := range x.Ifaces {
				tr.dataIf[i.Name] = true
			}
		}
	}
	return nil
}

func addTypeClosure(t *lang.Type, add func(string), tr *transformer) {
	switch t.Kind {
	case lang.TClass:
		add(t.Name)
	case lang.TArray:
		addTypeClosure(t.Elem, add, tr)
	case lang.TIface:
		// Every implementor of an interface reachable from data fields
		// must be data.
		for _, c := range tr.p.H.ClassList {
			if impl := tr.p.H.Iface(t.Name); impl != nil && c.Implements(impl) {
				add(c.Name)
			}
		}
	}
}

// checkAssumptions enforces the two closed-world assumptions of §3.1 and
// reports compilation errors on violations, exactly as FACADE does.
func (tr *transformer) checkAssumptions() error {
	h := tr.p.H
	for _, name := range tr.sortedDataNames() {
		c := h.Class(name)
		// Reference-closed world: reference fields of data classes have
		// data types.
		for _, f := range c.Fields {
			if err := tr.checkFieldType(c, f); err != nil {
				return err
			}
		}
		// Type-closed world: supers (except Object) and subs are data.
		if c.Super != nil && c.Super.Name != "Object" && !tr.data[c.Super.Name] {
			return fmt.Errorf("facade: type-closed-world violation: data class %s extends non-data class %s (refactor the program or add %s to the data path)",
				c.Name, c.Super.Name, c.Super.Name)
		}
		for _, s := range c.Subs {
			if !tr.data[s.Name] {
				return fmt.Errorf("facade: type-closed-world violation: non-data class %s extends data class %s", s.Name, c.Name)
			}
		}
	}
	return nil
}

func (tr *transformer) checkFieldType(c *lang.Class, f *lang.Field) error {
	t := f.Type
	for t.Kind == lang.TArray {
		t = t.Elem
	}
	switch t.Kind {
	case lang.TClass:
		if t.Name != "Object" && !tr.data[t.Name] {
			return fmt.Errorf("facade: reference-closed-world violation: field %s.%s has non-data class type %s",
				c.Name, f.Name, t.Name)
		}
	case lang.TIface:
		if !tr.dataIf[t.Name] {
			// An interface type only reachable through data fields: its
			// implementors were pulled into the closure, so mark it.
			tr.dataIf[t.Name] = true
		}
	}
	return nil
}

func (tr *transformer) sortedDataNames() []string {
	names := make([]string, 0, len(tr.data))
	for n := range tr.data {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// poolClassName maps a declared parameter type to the pool it draws
// facades from (§3.3): a concrete data class uses its own pool; an
// interface or abstract type is attributed to an arbitrary concrete
// subtype; Object uses the base Facade pool, reported as "Object".
func (tr *transformer) poolClassName(t *lang.Type) (string, error) {
	switch t.Kind {
	case lang.TClass:
		if t.Name == "Object" {
			return "Object", nil
		}
		if tr.data[t.Name] {
			return t.Name, nil
		}
	case lang.TIface:
		for _, c := range tr.p.H.ClassList {
			if tr.data[c.Name] && c.Implements(tr.p.H.Iface(t.Name)) {
				return c.Name, nil
			}
		}
		return "", fmt.Errorf("facade: interface %s has no concrete data implementor", t.Name)
	}
	return "", fmt.Errorf("facade: %s is not a pooled data type", t)
}

// computeBounds implements §3.3: for each data type, the parameter-pool
// bound is the maximum number of parameters of that (static, pool-mapped)
// type any data-path method takes; constructors count one extra slot for
// the receiver binding at allocation sites. Every pool has at least one
// facade (allocation and return sites use index 0).
func (tr *transformer) computeBounds() {
	tr.bounds = make(map[string]int)
	for _, name := range tr.sortedDataNames() {
		tr.bounds[name] = 1
	}
	tr.bounds["Object"] = 1
	note := func(m *lang.Method, extraOwner string) {
		counts := make(map[string]int)
		if extraOwner != "" {
			counts[extraOwner] = 1
		}
		for _, pt := range m.Params {
			if tr.isDataScalar(pt) {
				if pool, err := tr.poolClassName(pt); err == nil {
					counts[pool]++
				}
			}
		}
		for pool, n := range counts {
			if n > tr.bounds[pool] {
				tr.bounds[pool] = n
			}
		}
	}
	for _, name := range tr.sortedDataNames() {
		c := tr.p.H.Class(name)
		if c.Ctor != nil {
			note(c.Ctor, name)
		}
		for _, mn := range sortedMethodNames(c) {
			note(c.Methods[mn], "")
		}
	}
}

func sortedMethodNames(c *lang.Class) []string {
	names := make([]string, 0, len(c.Methods))
	for n := range c.Methods {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FacadeName returns the facade class name for an original data class.
func FacadeName(orig string) string {
	if orig == "Object" {
		return "Facade"
	}
	return orig + "Facade"
}
