package core

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
)

const devirtSrc = `
class Base {
    int v;
    int poly() { return 1; }
    int mono() { return this.v; }
}
class Sub extends Base {
    int poly() { return 2; }
}
class Driver {
    int drive(Base b) {
        return b.poly() + b.mono();
    }
}
class Main { static void main() { } }
`

func TestDevirtualization(t *testing.T) {
	p := compile(t, devirtSrc)
	p2 := mustTransform(t, p, Options{DataClasses: []string{"Base", "Driver"}, Devirtualize: true})
	f := p2.Funcs[ir.FuncKey("DriverFacade", "drive")]
	var resolves, recvPools int
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			switch b.Instrs[i].Op {
			case ir.OpResolve:
				resolves++
			case ir.OpRecvPool:
				recvPools++
				if b.Instrs[i].Cls.Name != "BaseFacade" {
					t.Fatalf("devirt pool class %s", b.Instrs[i].Cls.Name)
				}
			}
		}
	}
	// poly is overridden by Sub -> must keep the dynamic resolve; mono is
	// monomorphic -> devirtualized.
	if resolves != 1 || recvPools != 1 {
		t.Fatalf("resolves=%d recvPools=%d (want 1/1)", resolves, recvPools)
	}
	// Without the option nothing is devirtualized.
	p2off := mustTransform(t, compile(t, devirtSrc), Options{DataClasses: []string{"Base", "Driver"}})
	foff := p2off.Funcs[ir.FuncKey("DriverFacade", "drive")]
	for _, b := range foff.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpRecvPool {
				t.Fatal("devirtualization ran without being enabled")
			}
		}
	}
}

func TestMonomorphicAnalysis(t *testing.T) {
	p := compile(t, devirtSrc)
	tr := &transformer{p: p, opts: Options{DataClasses: []string{"Base"}}, data: map[string]bool{}, dataIf: map[string]bool{}}
	if err := tr.computeDataSet(); err != nil {
		t.Fatal(err)
	}
	if tr.monomorphic(lang.ClassType("Base"), "poly") {
		t.Fatal("poly is overridden; not monomorphic")
	}
	if !tr.monomorphic(lang.ClassType("Base"), "mono") {
		t.Fatal("mono has no data-subclass override; monomorphic")
	}
	if tr.monomorphic(lang.ClassType("Object"), "hashCode") {
		t.Fatal("Object receivers must never devirtualize")
	}
}
