package vm

import (
	"fmt"
	"sync"

	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/offheap"
)

// frame is one interpreter activation record. Frames are stored by value
// in the thread's frame stack so that pushing one is a slice append into
// already-reserved capacity rather than a heap allocation per interpreted
// call.
type frame struct {
	fn   *ir.Func
	regs []Value
}

// poolEntry is the per-thread facade pool for one facade class: a bounded
// parameter pool and a single receiver facade (§3.3), all ordinary heap
// objects.
type poolEntry struct {
	params []Value
	recv   Value
}

// Thread is a VM execution thread. Framework code obtains one per worker
// goroutine; the thread starts "external" (not blocking collections) and
// enters the mutator state for the duration of each Call.
type Thread struct {
	vm *VM
	tc *heap.ThreadCtx
	id int

	frames []frame

	// stack backs frame register windows (LIFO); frames that overflow it
	// fall back to fresh slices.
	stack []Value
	sp    int

	// Transformed programs: per-thread page-manager scope and facade
	// pools indexed by facade class ID.
	iter  *offheap.IterScope
	pools []*poolEntry

	// FacadeCount is the number of facade objects this thread allocated
	// at pool initialization (the paper's per-thread facade census).
	FacadeCount int

	// Execution counters accumulated without atomics on the hot path and
	// flushed to the VM's shared registry when the outermost frame pops.
	instrs   int64
	poolHits int64
}

var iterIDMu sync.Mutex

// NewThread registers a new VM thread. parent (may be nil) supplies the
// page-manager parent for transformed programs: a thread's default manager
// is a child of the manager current in the creating thread (§3.6).
func (vm *VM) NewThread(parent *Thread) (*Thread, error) {
	t := &Thread{vm: vm, tc: vm.Heap.RegisterThread()}
	vm.threadsMu.Lock()
	t.id = vm.nextTID
	vm.nextTID++
	vm.threads[t] = struct{}{}
	vm.threadsMu.Unlock()
	if vm.Prog.Transformed {
		var pm *offheap.PageManager
		if parent != nil {
			pm = parent.iter.Current()
		} else {
			pm = vm.rootScope
		}
		iterIDMu.Lock()
		t.iter = vm.RT.NewIterScope(pm, &vm.iterCounter, t.id)
		iterIDMu.Unlock()
		if err := t.initPools(); err != nil {
			t.Close()
			return nil, err
		}
	}
	return t, nil
}

// initPools populates the thread's facade pools: for each data type, a
// parameter pool of the statically computed bound plus one receiver
// facade — the Pools.init of §3.3, invoked upon thread creation.
func (t *Thread) initPools() error {
	vm := t.vm
	t.pools = make([]*poolEntry, len(vm.Prog.H.ClassList))
	t.tc.EndExternal()
	defer t.tc.BeginExternal()
	for fcID, bound := range vm.bounds {
		fc := vm.Prog.H.ClassList[fcID]
		pe := &poolEntry{params: make([]Value, bound)}
		for i := 0; i < bound; i++ {
			a, err := vm.Heap.AllocObject(t.tc, fc, 0)
			if err != nil {
				return err
			}
			pe.params[i] = Value(a)
		}
		a, err := vm.Heap.AllocObject(t.tc, fc, 0)
		if err != nil {
			return err
		}
		pe.recv = Value(a)
		t.FacadeCount += bound + 1
		t.pools[fcID] = pe
	}
	return nil
}

// Close unregisters the thread and releases its default page manager.
func (t *Thread) Close() {
	if t.iter != nil {
		t.iter.Close()
	}
	t.vm.threadsMu.Lock()
	delete(t.vm.threads, t)
	t.vm.threadsMu.Unlock()
	t.vm.Heap.UnregisterThread(t.tc)
}

// visitRoots scans the thread's frame registers and facade pools. Runs
// with the world stopped.
func (t *Thread) visitRoots(visit func(heap.Addr) heap.Addr) {
	for fi := range t.frames {
		fr := &t.frames[fi]
		for i, rt := range fr.fn.RegTypes {
			if rt.IsRef() {
				fr.regs[i] = Value(visit(heap.Addr(fr.regs[i])))
			}
		}
	}
	for _, pe := range t.pools {
		if pe == nil {
			continue
		}
		for i := range pe.params {
			pe.params[i] = Value(visit(heap.Addr(pe.params[i])))
		}
		pe.recv = Value(visit(heap.Addr(pe.recv)))
	}
}

// IterationStart marks the beginning of a (sub-)iteration of the data
// path. For untransformed programs this is a no-op; for transformed
// programs it opens a child page manager (§3.6).
func (t *Thread) IterationStart() {
	t.vm.Heap.EpochBegin(t.tc)
	if t.iter != nil {
		iterIDMu.Lock()
		t.iter.IterationStart()
		iterIDMu.Unlock()
	}
}

// IterationEnd ends the innermost iteration, bulk-releasing its pages
// (transformed programs) and resetting the epoch's heap region (enforced
// lifetimes; see heap.EpochEnd).
func (t *Thread) IterationEnd() {
	t.vm.Heap.EpochEnd(t.tc)
	if t.iter != nil {
		t.iter.IterationEnd()
	}
}

// stackSize is the per-thread register window arena (values).
const stackSize = 16 << 10

// allocRegs carves a zeroed register window from the thread stack,
// falling back to a fresh slice on overflow. The second result reports
// whether the window came from the stack.
func (t *Thread) allocRegs(n int) ([]Value, bool) {
	if t.stack == nil {
		t.stack = make([]Value, stackSize)
	}
	if t.sp+n > len(t.stack) {
		return make([]Value, n), false
	}
	s := t.stack[t.sp : t.sp+n : t.sp+n]
	for i := range s {
		s[i] = 0
	}
	t.sp += n
	return s, true
}

func (t *Thread) freeRegs(n int, onStack bool) {
	if onStack {
		t.sp -= n
	}
}

// enterBoundary crosses from framework (Go) code into interpreted code:
// it counts the boundary crossing and re-enters the mutator state. Every
// framework entry point that runs IR or touches records calls this
// instead of EndExternal directly.
func (t *Thread) enterBoundary() {
	t.vm.cBoundary.Inc()
	t.tc.EndExternal()
}

// flushObsCounters publishes the thread-local execution counters to the
// shared registry. Called when the outermost interpreter frame returns,
// so hot loops never touch an atomic.
func (t *Thread) flushObsCounters() {
	if t.instrs != 0 {
		t.vm.cInstr.Add(t.instrs)
		t.instrs = 0
	}
	if t.poolHits != 0 {
		t.vm.cPoolHits.Add(t.poolHits)
		t.poolHits = 0
	}
}

// recoverTierFault converts an *offheap.TierFault panic — a disk-tier
// promotion failure surfacing through the infallible record accessors —
// into its wrapped error (which wraps offheap.ErrPageExhausted, so the
// engines' OOM degradation ladders pick it up like any allocation
// failure). The thread's frame and register stacks rewind to the call
// boundary and the local counters flush, leaving the thread reusable for
// the retry. Any other panic propagates untouched.
func (t *Thread) recoverTierFault(frames, sp int, err *error) {
	r := recover()
	if r == nil {
		return
	}
	tf, ok := r.(*offheap.TierFault)
	if !ok {
		panic(r)
	}
	t.frames = t.frames[:frames]
	t.sp = sp
	t.flushObsCounters()
	*err = tf.Err
}

// Call executes the function with the given key. The caller supplies raw
// argument values matching the function's parameter registers (for
// instance methods, the receiver first). The thread enters the mutator
// state for the duration of the call.
func (t *Thread) Call(key string, args ...Value) (v Value, err error) {
	fn := t.vm.byKey[key]
	if fn == nil {
		return 0, fmt.Errorf("vm: no function %s", key)
	}
	t.enterBoundary()
	defer t.tc.BeginExternal()
	defer t.recoverTierFault(len(t.frames), t.sp, &err)
	return t.exec(fn, args)
}

// CallFunc is Call with a pre-resolved function.
func (t *Thread) CallFunc(fn *ir.Func, args ...Value) (v Value, err error) {
	t.enterBoundary()
	defer t.tc.BeginExternal()
	defer t.recoverTierFault(len(t.frames), t.sp, &err)
	return t.exec(fn, args)
}

// ---------------------------------------------------------------------------
// Monitors for heap objects (program P's intrinsic locks). The object's
// lock word holds a monitor ID; monitors are reentrant.

type monitor struct {
	mu    sync.Mutex
	cond  *sync.Cond
	owner *Thread
	depth int
}

func (t *Thread) monitorFor(obj heap.Addr) *monitor {
	vm := t.vm
	vm.monMu.Lock()
	id := vm.Heap.GetLock(obj)
	if id == 0 {
		vm.nextMonID++
		id = vm.nextMonID
		m := &monitor{}
		m.cond = sync.NewCond(&m.mu)
		vm.monitors[id] = m
		vm.Heap.SetLock(obj, id)
	}
	m := vm.monitors[id]
	vm.monMu.Unlock()
	return m
}

func (t *Thread) monEnter(obj heap.Addr) error {
	if obj == 0 {
		return fmt.Errorf("NullPointerException: synchronized on null")
	}
	m := t.monitorFor(obj)
	m.mu.Lock()
	for m.owner != nil && m.owner != t {
		t.tc.BeginExternal()
		m.cond.Wait()
		m.mu.Unlock()
		t.tc.EndExternal()
		m.mu.Lock()
	}
	m.owner = t
	m.depth++
	m.mu.Unlock()
	return nil
}

func (t *Thread) monExit(obj heap.Addr) error {
	if obj == 0 {
		return fmt.Errorf("NullPointerException: monitor exit on null")
	}
	vm := t.vm
	vm.monMu.Lock()
	id := vm.Heap.GetLock(obj)
	m := vm.monitors[id]
	vm.monMu.Unlock()
	if m == nil {
		return fmt.Errorf("IllegalMonitorStateException: exit without enter")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.owner != t {
		return fmt.Errorf("IllegalMonitorStateException: exit by non-owner")
	}
	m.depth--
	if m.depth == 0 {
		m.owner = nil
		m.cond.Broadcast()
	}
	return nil
}

// parker adapts the thread to offheap.Parker for lock-pool waits.
type parker struct{ t *Thread }

func (p parker) BeginExternal() { p.t.tc.BeginExternal() }
func (p parker) EndExternal()   { p.t.tc.EndExternal() }

// facadeOf returns the facade class registered for an original data class
// name.
func (vm *VM) facadeOf(name string) *lang.Class { return vm.facadeByName[name] }
