package vm

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/offheap"
)

// Intrinsic indices, resolved once at link time and cached on the
// instruction so the interpreter dispatches on an int.
const (
	inPrint = iota
	inPrintln
	inPrintRec
	inPrintlnRec
	inSqrt
	inAbs
	inExp
	inLog
	inRand
	inArraycopy
	inArraycopyRec
	inRelease
	inReleaseRec
	inIterStart
	inIterEnd
	inTrapNoReturn
)

var intrinsicIndex = map[string]int{
	"print": inPrint, "println": inPrintln,
	"printRec": inPrintRec, "printlnRec": inPrintlnRec,
	"sqrt": inSqrt, "abs": inAbs, "exp": inExp, "log": inLog,
	"rand": inRand, "arraycopy": inArraycopy, "arraycopyRec": inArraycopyRec,
	"release": inRelease, "releaseRec": inReleaseRec,
	"iterStart": inIterStart, "iterEnd": inIterEnd,
	"trapNoReturn": inTrapNoReturn,
}

// intrinsic dispatches the Sys.* builtins plus the page-half variants the
// FACADE transform substitutes ("arraycopyRec", "printRec"/"printlnRec",
// and OpStrLit's transformed twin handled in stringLiteral).
func (t *Thread) intrinsic(in *ir.Instr, regs []Value) (Value, error) {
	vm := t.vm
	idx, ok := in.Cache.(int)
	if !ok {
		return 0, fmt.Errorf("vm: unlinked intrinsic %s", in.Sym)
	}
	switch idx {
	case inPrint, inPrintln:
		s, err := t.formatValue(in.Type, regs[in.Args[0]], false)
		if err != nil {
			return 0, err
		}
		t.writeOut(s, idx == inPrintln)
		return 0, nil
	case inPrintRec, inPrintlnRec:
		s, err := t.formatValue(in.Type, regs[in.Args[0]], true)
		if err != nil {
			return 0, err
		}
		t.writeOut(s, idx == inPrintlnRec)
		return 0, nil
	case inSqrt:
		return math.Float64bits(math.Sqrt(math.Float64frombits(regs[in.Args[0]]))), nil
	case inAbs:
		return math.Float64bits(math.Abs(math.Float64frombits(regs[in.Args[0]]))), nil
	case inExp:
		return math.Float64bits(math.Exp(math.Float64frombits(regs[in.Args[0]]))), nil
	case inLog:
		return math.Float64bits(math.Log(math.Float64frombits(regs[in.Args[0]]))), nil
	case inRand:
		bound := int32(regs[in.Args[0]])
		if bound <= 0 {
			return 0, fmt.Errorf("IllegalArgumentException: Sys.rand bound %d", bound)
		}
		return Value(uint32(int32(vm.rand() % uint64(bound)))), nil
	case inArraycopy:
		return 0, t.arraycopyHeap(in, regs)
	case inArraycopyRec:
		return 0, t.arraycopyRec(in, regs)
	case inRelease:
		// Heap objects are the collector's business; nothing to do in P.
		return 0, nil
	case inReleaseRec:
		// §3.6 optimization 3: free the oversize page behind a dead large
		// record before the iteration ends.
		vm.RT.ReleaseOversize(offheap.PageRef(regs[in.Args[0]]))
		return 0, nil
	case inIterStart:
		t.IterationStart()
		return 0, nil
	case inIterEnd:
		t.IterationEnd()
		return 0, nil
	case inTrapNoReturn:
		return 0, fmt.Errorf("vm: missing return in value-returning method")
	}
	return 0, fmt.Errorf("vm: unknown intrinsic %s", in.Sym)
}

func (t *Thread) writeOut(s string, nl bool) {
	vm := t.vm
	vm.outMu.Lock()
	defer vm.outMu.Unlock()
	if nl {
		fmt.Fprintln(vm.out, s)
		return
	}
	fmt.Fprint(vm.out, s)
}

// formatValue renders a value of static type typ the way Sys.print does.
// rec selects page-record semantics for references.
func (t *Thread) formatValue(typ *lang.Type, v Value, rec bool) (string, error) {
	if typ == nil {
		return strconv.FormatInt(int64(v), 10), nil
	}
	switch typ.Kind {
	case lang.TBool:
		if v != 0 {
			return "true", nil
		}
		return "false", nil
	case lang.TByte:
		return strconv.FormatInt(int64(int8(v)), 10), nil
	case lang.TInt:
		return strconv.FormatInt(int64(int32(v)), 10), nil
	case lang.TLong:
		// In P' a "long" may be a retyped data reference; the transform
		// emits printRec for those, so a plain long prints numerically.
		return strconv.FormatInt(int64(v), 10), nil
	case lang.TDouble:
		return formatDouble(math.Float64frombits(v)), nil
	case lang.TNull:
		return "null", nil
	}
	// Reference types.
	if v == 0 {
		return "null", nil
	}
	if rec {
		ref := offheap.PageRef(v)
		rt := t.vm.RT
		if rt.IsArrayRecord(ref) {
			return rt.ArrayElemType(rt.ArrayTypeOf(ref)).String() + "[]", nil
		}
		cls := t.vm.Prog.H.ClassList[rt.ClassID(ref)]
		if orig, ok := facadeOrig(cls.Name); ok && orig == "String" || cls.Name == "StringFacade" {
			return t.recStringContents(ref)
		}
		name := cls.Name
		if orig, ok := facadeOrig(name); ok {
			name = orig
		}
		return name, nil
	}
	a := heap.Addr(v)
	hp := t.vm.Heap
	if hp.IsArray(a) {
		return hp.ArrayElemOf(a).String() + "[]", nil
	}
	cls := hp.ClassOf(a)
	if cls == t.vm.strClass && cls != nil {
		return t.heapStringContents(a)
	}
	return cls.Name, nil
}

func facadeOrig(name string) (string, bool) {
	const suf = "Facade"
	if len(name) > len(suf) && name[len(name)-len(suf):] == suf {
		return name[:len(name)-len(suf)], true
	}
	return "", false
}

// formatDouble prints doubles deterministically; both P and P' use this,
// so output equivalence is preserved.
func formatDouble(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	return s
}

// heapStringContents reads a managed String object's bytes.
func (t *Thread) heapStringContents(a heap.Addr) (string, error) {
	hp := t.vm.Heap
	arr := hp.GetRef(a, t.vm.strField.Offset)
	if arr == 0 {
		return "", nil
	}
	n := hp.ArrayLen(arr)
	return string(hp.ReadBody(arr, 0, n)), nil
}

// recStringContents reads a String page record's bytes.
func (t *Thread) recStringContents(ref offheap.PageRef) (string, error) {
	rt := t.vm.RT
	arr := rt.GetRef(ref, t.vm.strField.Offset)
	if arr == 0 {
		return "", nil
	}
	n := rt.ArrayLen(arr)
	return string(rt.ReadBody(arr, 0, n)), nil
}

func (t *Thread) arraycopyHeap(in *ir.Instr, regs []Value) error {
	hp := t.vm.Heap
	src := heap.Addr(regs[in.Args[0]])
	srcPos := int(int32(regs[in.Args[1]]))
	dst := heap.Addr(regs[in.Args[2]])
	dstPos := int(int32(regs[in.Args[3]]))
	n := int(int32(regs[in.Args[4]]))
	if src == 0 || dst == 0 {
		return errNPE("arraycopy")
	}
	if n < 0 || srcPos < 0 || dstPos < 0 ||
		srcPos+n > hp.ArrayLen(src) || dstPos+n > hp.ArrayLen(dst) {
		return errBounds(srcPos+n, hp.ArrayLen(src))
	}
	elem := hp.ArrayElemOf(src)
	es := elem.FieldSize()
	if elem.IsRef() {
		// Element-wise with the write barrier. Handle overlap like
		// System.arraycopy (memmove semantics).
		if src == dst && dstPos > srcPos {
			for i := n - 1; i >= 0; i-- {
				hp.SetRefTC(t.tc, dst, (dstPos+i)*es, hp.GetRef(src, (srcPos+i)*es))
			}
		} else {
			for i := 0; i < n; i++ {
				hp.SetRefTC(t.tc, dst, (dstPos+i)*es, hp.GetRef(src, (srcPos+i)*es))
			}
		}
		return nil
	}
	hp.CopyBody(src, srcPos*es, dst, dstPos*es, n*es)
	return nil
}

func (t *Thread) arraycopyRec(in *ir.Instr, regs []Value) error {
	rt := t.vm.RT
	src := offheap.PageRef(regs[in.Args[0]])
	srcPos := int(int32(regs[in.Args[1]]))
	dst := offheap.PageRef(regs[in.Args[2]])
	dstPos := int(int32(regs[in.Args[3]]))
	n := int(int32(regs[in.Args[4]]))
	if src == 0 || dst == 0 {
		return errNPE("arraycopy")
	}
	if n < 0 || srcPos < 0 || dstPos < 0 ||
		srcPos+n > rt.ArrayLen(src) || dstPos+n > rt.ArrayLen(dst) {
		return errBounds(srcPos+n, rt.ArrayLen(src))
	}
	es := rt.ArrayElemType(rt.ArrayTypeOf(src)).FieldSize()
	rt.ArrayCopy(src, srcPos, dst, dstPos, n, es)
	return nil
}

// ---------------------------------------------------------------------------
// String literals

// stringLiteral returns the interned representation of string pool entry
// idx: a managed String object for P, a String page record (allocated from
// the VM's root scope, alive for the program) for P'.
func (t *Thread) stringLiteral(idx int) (Value, error) {
	vm := t.vm
	t.tc.BeginExternal()
	vm.strMu.Lock()
	t.tc.EndExternal()
	defer vm.strMu.Unlock()
	if vm.strDone[idx] {
		return vm.strCache[idx], nil
	}
	s := vm.Prog.StringPool[idx]
	var v Value
	var err error
	if vm.Prog.Transformed {
		v, err = vm.makeRecString(s)
	} else {
		v, err = t.makeHeapString(s)
	}
	if err != nil {
		return 0, err
	}
	vm.strCache[idx] = v
	vm.strDone[idx] = true
	return v, nil
}

// makeHeapString builds a managed String object (byte[] + String).
func (t *Thread) makeHeapString(s string) (Value, error) {
	hp := t.vm.Heap
	arr, err := hp.AllocArray(t.tc, lang.ByteType, len(s), 0)
	if err != nil {
		return 0, err
	}
	hp.WriteBody(arr, 0, []byte(s))
	h := t.vm.NewHandle(Value(arr), true)
	obj, err := hp.AllocObject(t.tc, t.vm.strClass, 0)
	if err != nil {
		t.vm.Drop(h)
		return 0, err
	}
	arr = heap.Addr(t.vm.Get(h))
	t.vm.Drop(h)
	hp.SetRef(obj, t.vm.strField.Offset, arr)
	return Value(obj), nil
}

// makeRecString builds a String page record in the VM root scope.
func (vm *VM) makeRecString(s string) (Value, error) {
	rt := vm.RT
	sf := vm.facadeOf("String")
	if sf == nil {
		return 0, fmt.Errorf("vm: transformed program has no String facade")
	}
	arr, err := vm.rootScope.AllocArray(rt.ArrayTypeIndex(lang.ByteType), 1, len(s))
	if err != nil {
		return 0, err
	}
	rt.WriteBody(arr, 0, []byte(s))
	rec, err := vm.rootScope.AllocRecord(uint16(sf.ID), vm.stringBodySize())
	if err != nil {
		return 0, err
	}
	rt.SetRef(rec, vm.strField.Offset, arr)
	return Value(rec), nil
}

// stringBodySize returns the record body size of String (taken from the
// original class layout carried on the value field's owner).
func (vm *VM) stringBodySize() int {
	return vm.strField.Owner.BodySize
}
