package vm

import (
	"fmt"
	"math"

	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/offheap"
)

// Boundary API: the control path (framework Go code) manipulates data-path
// values through these helpers. They are the runtime's interaction points
// (§3.5): for untransformed programs they operate on managed heap objects;
// for transformed programs they operate on page records, wrapping facades
// around call arguments exactly as the generated code does.
//
// Framework code never holds raw heap addresses: references live in the VM
// handle table (Obj), which the collector traces and updates. Helpers
// resolve handles after entering the mutator state, so the values they use
// cannot be stale.

// Obj is a framework-held reference to a data object or record.
type Obj = Handle

// NilObj is the null Obj.
const NilObj Obj = -1

// Arg is one boundary-call argument.
type Arg struct {
	kind byte // 'i' prim, 'd' double, 'o' object, 's' string
	i    int64
	f    float64
	o    Obj
	s    string
}

// I passes an int/long/bool/byte argument.
func I(v int64) Arg { return Arg{kind: 'i', i: v} }

// F passes a double argument.
func F(v float64) Arg { return Arg{kind: 'd', f: v} }

// O passes a data object argument.
func O(o Obj) Arg { return Arg{kind: 'o', o: o} }

// S passes a Go string, converted to a String object/record at the
// boundary (an entry-point conversion).
func S(s string) Arg { return Arg{kind: 's', s: s} }

func (t *Thread) argValue(a Arg) (Value, error) {
	switch a.kind {
	case 'i':
		return Value(a.i), nil
	case 'd':
		return f64bits(a.f), nil
	case 'o':
		if a.o == NilObj {
			return 0, nil
		}
		return t.vm.Get(a.o), nil
	case 's':
		return t.makeString(a.s)
	}
	return 0, fmt.Errorf("vm: bad argument kind")
}

// wrapObj registers a reference result as a handle. For transformed
// programs the value is a page reference and is not traced.
func (t *Thread) wrapObj(v Value) Obj {
	if v == 0 {
		return NilObj
	}
	return t.vm.NewHandle(v, !t.vm.Prog.Transformed)
}

// FreeObj releases a framework-held reference.
func (t *Thread) FreeObj(o Obj) {
	if o != NilObj {
		t.vm.Drop(o)
	}
}

// IsTransformed reports whether this VM runs a FACADE-transformed program.
func (t *Thread) IsTransformed() bool { return t.vm.Prog.Transformed }

// makeString builds a String value in mutator state (the thread must be
// running). Used for S() arguments and literals crossing the boundary.
func (t *Thread) makeString(s string) (Value, error) {
	if t.vm.Prog.Transformed {
		// Record strings crossing the boundary are allocated in the
		// thread's current iteration scope.
		rt := t.vm.RT
		sf := t.vm.facadeOf("String")
		if sf == nil {
			return 0, fmt.Errorf("vm: no String facade")
		}
		pm := t.iter.Current()
		arr, err := pm.AllocArray(rt.ArrayTypeIndex(lang.ByteType), 1, len(s))
		if err != nil {
			return 0, err
		}
		rt.WriteBody(arr, 0, []byte(s))
		rec, err := pm.AllocRecord(uint16(sf.ID), t.vm.stringBodySize())
		if err != nil {
			return 0, err
		}
		rt.SetRef(rec, t.vm.strField.Offset, arr)
		return Value(rec), nil
	}
	return t.makeHeapString(s)
}

// recoverTier converts an *offheap.TierFault panic — a disk-tier
// promotion failure escaping an infallible record accessor — into its
// wrapped error, for boundary helpers that do not push interpreter frames
// (those go through recoverTierFault, which also rewinds the thread
// stacks). Any other panic propagates.
func recoverTier(err *error) {
	r := recover()
	if r == nil {
		return
	}
	tf, ok := r.(*offheap.TierFault)
	if !ok {
		panic(r)
	}
	*err = tf.Err
}

// NewString converts a Go string at the boundary and returns a handle.
func (t *Thread) NewString(s string) (o Obj, err error) {
	t.enterBoundary()
	defer t.tc.BeginExternal()
	defer recoverTier(&err)
	v, err := t.makeString(s)
	if err != nil {
		return NilObj, err
	}
	return t.wrapObj(v), nil
}

// GoString reads a String object/record back into a Go string (an
// exit-point conversion).
func (t *Thread) GoString(o Obj) (s string, err error) {
	t.enterBoundary()
	defer t.tc.BeginExternal()
	defer recoverTier(&err)
	if o == NilObj {
		return "", nil
	}
	v := t.vm.Get(o)
	if t.vm.Prog.Transformed {
		return t.recStringContents(offheap.PageRef(v))
	}
	return t.heapStringContents(heap.Addr(v))
}

// ---------------------------------------------------------------------------
// Allocation

// NewObj allocates a data object of class and runs its constructor with
// the given arguments.
func (t *Thread) NewObj(class string, args ...Arg) (o Obj, err error) {
	t.enterBoundary()
	defer t.tc.BeginExternal()
	defer t.recoverTierFault(len(t.frames), t.sp, &err)
	v, err := t.newValue(class, args)
	if err != nil {
		return NilObj, err
	}
	return t.wrapObj(v), nil
}

func (t *Thread) newValue(class string, args []Arg) (Value, error) {
	h := t.vm.Prog.H
	if t.vm.Prog.Transformed {
		fc := t.vm.facadeOf(class)
		if fc == nil {
			return 0, fmt.Errorf("vm: %s is not a data class of the transformed program", class)
		}
		oc := h.Class(class)
		ref, err := t.iter.Current().AllocRecord(uint16(fc.ID), oc.BodySize)
		if err != nil {
			return 0, err
		}
		ctor := t.vm.byKey[ir.CtorKey(fc.Name)]
		if ctor != nil {
			if _, err := t.facadeCall(ctor, offheap.PageRef(ref), args); err != nil {
				return 0, err
			}
		} else if len(args) > 0 {
			return 0, fmt.Errorf("vm: %s has no constructor", class)
		}
		return Value(ref), nil
	}
	oc := h.Class(class)
	if oc == nil {
		return 0, fmt.Errorf("vm: unknown class %s", class)
	}
	a, err := t.vm.Heap.AllocObject(t.tc, oc, 0)
	if err != nil {
		return 0, err
	}
	ctor := t.vm.byKey[ir.CtorKey(class)]
	if ctor == nil {
		if len(args) > 0 {
			return 0, fmt.Errorf("vm: %s has no constructor", class)
		}
		return Value(a), nil
	}
	// Pin the object across argument materialization and the constructor
	// run: both may collect and move it.
	hh := t.vm.NewHandle(Value(a), true)
	defer t.vm.Drop(hh)
	argVals, cleanup, err := t.resolveArgs(args)
	if err != nil {
		return 0, err
	}
	defer cleanup()
	vals := make([]Value, 0, len(argVals)+1)
	vals = append(vals, t.vm.Get(hh))
	vals = append(vals, argVals...)
	if _, err := t.exec(ctor, vals); err != nil {
		return 0, err
	}
	return t.vm.Get(hh), nil
}

// facadeCall invokes a facade-class function with the receiver bound to a
// page record, mirroring the generated call protocol (resolve + pool
// binding).
func (t *Thread) facadeCall(fn *ir.Func, recv offheap.PageRef, args []Arg) (Value, error) {
	vals := make([]Value, 0, len(args)+1)
	// Bind the receiver facade from the receiver pool of the record's
	// runtime type.
	tw := t.vm.RT.TypeID(recv)
	pe := t.pools[int(tw)]
	if pe == nil {
		return 0, fmt.Errorf("vm: no receiver pool for record type %d", tw)
	}
	t.vm.Heap.SetLong(heap.Addr(pe.recv), t.vm.pageRefField.Offset, int64(recv))
	vals = append(vals, pe.recv)

	m := fn.Method
	perClass := make(map[int]int)
	for i, ag := range args {
		v, err := t.argValue(ag)
		if err != nil {
			return 0, err
		}
		// Data-typed parameters travel in parameter-pool facades.
		if i < len(m.Params) && t.isFacadeType(m.Params[i]) {
			fa, err := t.bindParamFacade(m.Params[i], offheap.PageRef(v), perClass)
			if err != nil {
				return 0, err
			}
			vals = append(vals, fa)
			continue
		}
		vals = append(vals, v)
	}
	ret, err := t.exec(fn, vals)
	if err != nil {
		return 0, err
	}
	// Data-typed returns come back as a bound facade; unwrap to the page
	// reference.
	if t.isFacadeType(m.Ret) && ret != 0 {
		ret = Value(t.vm.Heap.GetLong(heap.Addr(ret), t.vm.pageRefField.Offset))
	}
	return ret, nil
}

// bindParamFacade draws a parameter facade the way generated call sites do
// (§3.3): from the pool of the parameter's declared type when that type
// has one, otherwise from the pool of the argument's runtime type. A null
// page reference travels in a null-bound facade, not as a null facade.
func (t *Thread) bindParamFacade(declared *lang.Type, ref offheap.PageRef, perClass map[int]int) (Value, error) {
	poolID := -1
	if declared.Kind == lang.TClass {
		if c := t.vm.Prog.H.Class(declared.Name); c != nil && c.ID < len(t.pools) && t.pools[c.ID] != nil {
			poolID = c.ID
		}
	}
	if poolID < 0 {
		if ref == 0 {
			// Null argument with an interface-typed parameter: any pool
			// works; use the Facade base pool.
			if fb := t.vm.Prog.H.Class("Facade"); fb != nil && t.pools[fb.ID] != nil {
				poolID = fb.ID
			} else {
				return 0, fmt.Errorf("vm: no pool for null %s argument", declared)
			}
		} else {
			poolID = int(t.vm.RT.TypeID(ref))
		}
	}
	ppe := t.pools[poolID]
	if ppe == nil {
		return 0, fmt.Errorf("vm: no parameter pool for type id %d", poolID)
	}
	idx := perClass[poolID]
	perClass[poolID]++
	if idx >= len(ppe.params) {
		return 0, fmt.Errorf("vm: parameter pool overflow for type id %d (bound %d)", poolID, len(ppe.params))
	}
	fa := ppe.params[idx]
	t.vm.Heap.SetLong(heap.Addr(fa), t.vm.pageRefField.Offset, int64(ref))
	return fa, nil
}

// isFacadeType reports whether a transformed-signature type denotes a
// facade (data) parameter.
func (t *Thread) isFacadeType(ty *lang.Type) bool {
	if ty == nil || ty.Kind != lang.TClass && ty.Kind != lang.TIface {
		return false
	}
	if ty.Kind == lang.TIface {
		// Transformed interfaces are the IFacade twins.
		_, ok := facadeOrig(ty.Name)
		return ok
	}
	c := t.vm.Prog.H.Class(ty.Name)
	if c == nil {
		return false
	}
	fb := t.vm.Prog.H.Class("Facade")
	return fb != nil && c.IsSubclassOf(fb)
}

// NewArr allocates a data array with the given element type ("int",
// "byte", "double", "long", "boolean", or a class name, with optional []
// suffixes).
func (t *Thread) NewArr(elem string, n int) (o Obj, err error) {
	ty, err := t.parseTypeName(elem)
	if err != nil {
		return NilObj, err
	}
	t.enterBoundary()
	defer t.tc.BeginExternal()
	defer recoverTier(&err)
	if t.vm.Prog.Transformed {
		ref, err := t.iter.Current().AllocArray(t.vm.RT.ArrayTypeIndex(ty), ty.FieldSize(), n)
		if err != nil {
			return NilObj, err
		}
		return t.wrapObj(Value(ref)), nil
	}
	a, err := t.vm.Heap.AllocArray(t.tc, ty, n, 0)
	if err != nil {
		return NilObj, err
	}
	return t.wrapObj(Value(a)), nil
}

func (t *Thread) parseTypeName(name string) (*lang.Type, error) {
	dims := 0
	for len(name) > 2 && name[len(name)-2:] == "[]" {
		dims++
		name = name[:len(name)-2]
	}
	var ty *lang.Type
	switch name {
	case "boolean":
		ty = lang.BoolType
	case "byte":
		ty = lang.ByteType
	case "int":
		ty = lang.IntType
	case "long":
		ty = lang.LongType
	case "double":
		ty = lang.DoubleType
	default:
		if c := t.vm.Prog.H.Class(name); c != nil {
			ty = lang.ClassType(name)
		} else if i := t.vm.Prog.H.Iface(name); i != nil {
			ty = lang.IfaceType(name)
		} else {
			return nil, fmt.Errorf("vm: unknown type %s", name)
		}
	}
	for i := 0; i < dims; i++ {
		ty = lang.ArrayOf(ty)
	}
	return ty, nil
}

// ---------------------------------------------------------------------------
// Calls

// Invoke calls a method on a data object (virtual dispatch on its runtime
// type) and returns the raw primitive result.
func (t *Thread) Invoke(o Obj, method string, args ...Arg) (Value, error) {
	v, _, err := t.invokeBoundary(o, method, args, false)
	return v, err
}

// InvokeObj is Invoke for methods returning a data reference.
func (t *Thread) InvokeObj(o Obj, method string, args ...Arg) (Obj, error) {
	_, ro, err := t.invokeBoundary(o, method, args, true)
	return ro, err
}

func (t *Thread) invokeBoundary(o Obj, method string, args []Arg, retObj bool) (v0 Value, o0 Obj, err error) {
	t.enterBoundary()
	defer t.tc.BeginExternal()
	defer t.recoverTierFault(len(t.frames), t.sp, &err)
	if o == NilObj {
		return 0, NilObj, errNPE("boundary call " + method)
	}
	recv := t.vm.Get(o)
	if t.vm.Prog.Transformed {
		ref := offheap.PageRef(recv)
		fc := t.vm.Prog.H.ClassList[t.vm.RT.ClassID(ref)]
		fn := t.vm.byKey[ir.FuncKey(fc.Name, method)]
		if fn == nil {
			if m := fc.Resolve(method); m != nil {
				fn = t.vm.byKey[ir.FuncKey(m.Owner.Name, method)]
			}
		}
		if fn == nil {
			return 0, NilObj, fmt.Errorf("vm: %s has no method %s", fc.Name, method)
		}
		v, err := t.facadeCall(fn, ref, args)
		if err != nil {
			return 0, NilObj, err
		}
		if retObj {
			return 0, t.wrapObj(v), nil
		}
		return v, NilObj, nil
	}
	cls := t.vm.Heap.ClassOf(heap.Addr(recv))
	if cls == nil {
		return 0, NilObj, fmt.Errorf("vm: boundary call on array")
	}
	m := cls.Resolve(method)
	if m == nil {
		return 0, NilObj, fmt.Errorf("vm: %s has no method %s", cls.Name, method)
	}
	fn := t.vm.byKey[ir.FuncKey(m.Owner.Name, method)]
	hh := t.vm.NewHandle(recv, true)
	defer t.vm.Drop(hh)
	argVals, cleanup, err := t.resolveArgs(args)
	if err != nil {
		return 0, NilObj, err
	}
	defer cleanup()
	vals := make([]Value, 0, len(argVals)+1)
	vals = append(vals, t.vm.Get(hh))
	vals = append(vals, argVals...)
	v, err := t.exec(fn, vals)
	if err != nil {
		return 0, NilObj, err
	}
	if retObj {
		return 0, t.wrapObj(v), nil
	}
	return v, NilObj, nil
}

// InvokeStatic calls a static data-path method.
func (t *Thread) InvokeStatic(class, method string, args ...Arg) (Value, error) {
	v, _, err := t.invokeStatic(class, method, args, false)
	return v, err
}

// InvokeStaticObj is InvokeStatic for methods returning a data reference.
func (t *Thread) InvokeStaticObj(class, method string, args ...Arg) (Obj, error) {
	_, ro, err := t.invokeStatic(class, method, args, true)
	return ro, err
}

func (t *Thread) invokeStatic(class, method string, args []Arg, retObj bool) (v0 Value, o0 Obj, err error) {
	t.enterBoundary()
	defer t.tc.BeginExternal()
	defer t.recoverTierFault(len(t.frames), t.sp, &err)
	key := ir.FuncKey(class, method)
	if t.vm.Prog.Transformed {
		if fc := t.vm.facadeOf(class); fc != nil {
			if f := t.vm.byKey[ir.FuncKey(fc.Name, method)]; f != nil {
				key = ir.FuncKey(fc.Name, method)
			}
		}
	}
	fn := t.vm.byKey[key]
	if fn == nil {
		return 0, NilObj, fmt.Errorf("vm: no function %s", key)
	}
	var vals []Value
	var v Value
	if t.vm.Prog.Transformed {
		v, err = t.staticFacadeCall(fn, args)
	} else {
		var cleanup func()
		vals, cleanup, err = t.resolveArgs(args)
		if err != nil {
			return 0, NilObj, err
		}
		defer cleanup()
		v, err = t.exec(fn, vals)
	}
	if err != nil {
		return 0, NilObj, err
	}
	if retObj {
		return 0, t.wrapObj(v), nil
	}
	return v, NilObj, nil
}

// staticFacadeCall is facadeCall without a receiver.
func (t *Thread) staticFacadeCall(fn *ir.Func, args []Arg) (Value, error) {
	m := fn.Method
	vals := make([]Value, 0, len(args))
	perClass := make(map[int]int)
	for i, ag := range args {
		v, err := t.argValue(ag)
		if err != nil {
			return 0, err
		}
		if i < len(m.Params) && t.isFacadeType(m.Params[i]) {
			fa, err := t.bindParamFacade(m.Params[i], offheap.PageRef(v), perClass)
			if err != nil {
				return 0, err
			}
			vals = append(vals, fa)
			continue
		}
		vals = append(vals, v)
	}
	ret, err := t.exec(fn, vals)
	if err != nil {
		return 0, err
	}
	if t.isFacadeType(m.Ret) && ret != 0 {
		ret = Value(t.vm.Heap.GetLong(heap.Addr(ret), t.vm.pageRefField.Offset))
	}
	return ret, nil
}

// ---------------------------------------------------------------------------
// Field and array element access

func (t *Thread) fieldOf(o Obj, class, field string) (*lang.Field, Value, error) {
	if o == NilObj {
		return nil, 0, errNPE("boundary field access " + field)
	}
	c := t.vm.Prog.H.Class(class)
	if c == nil {
		return nil, 0, fmt.Errorf("vm: unknown class %s", class)
	}
	f := c.FindField(field)
	if f == nil {
		return nil, 0, fmt.Errorf("vm: %s has no field %s", class, field)
	}
	return f, t.vm.Get(o), nil
}

// GetField reads a primitive field as a raw value.
func (t *Thread) GetField(o Obj, class, field string) (val Value, err error) {
	t.enterBoundary()
	defer t.tc.BeginExternal()
	defer recoverTier(&err)
	f, v, err := t.fieldOf(o, class, field)
	if err != nil {
		return 0, err
	}
	if t.vm.Prog.Transformed {
		return loadRecField(t.vm.RT, offheap.PageRef(v), f), nil
	}
	return loadField(t.vm.Heap, heap.Addr(v), f), nil
}

// SetField writes a primitive field.
func (t *Thread) SetField(o Obj, class, field string, val Value) (err error) {
	t.enterBoundary()
	defer t.tc.BeginExternal()
	defer recoverTier(&err)
	f, v, err := t.fieldOf(o, class, field)
	if err != nil {
		return err
	}
	if t.vm.Prog.Transformed {
		storeRecField(t.vm.RT, offheap.PageRef(v), f, val)
		return nil
	}
	storeField(t.vm.Heap, t.tc, heap.Addr(v), f, val)
	return nil
}

// GetObjField reads a reference field into a new handle.
func (t *Thread) GetObjField(o Obj, class, field string) (Obj, error) {
	v, err := t.GetField(o, class, field)
	if err != nil {
		return NilObj, err
	}
	t.enterBoundary()
	defer t.tc.BeginExternal()
	return t.wrapObj(v), nil
}

// SetObjField writes a reference field.
func (t *Thread) SetObjField(o Obj, class, field string, val Obj) error {
	var v Value
	if val != NilObj {
		v = t.vm.Get(val)
	}
	return t.SetField(o, class, field, v)
}

// ArrLen returns the length of a data array.
func (t *Thread) ArrLen(o Obj) (n int, err error) {
	t.enterBoundary()
	defer t.tc.BeginExternal()
	defer recoverTier(&err)
	if o == NilObj {
		return 0, errNPE("array length")
	}
	v := t.vm.Get(o)
	if t.vm.Prog.Transformed {
		return t.vm.RT.ArrayLen(offheap.PageRef(v)), nil
	}
	return t.vm.Heap.ArrayLen(heap.Addr(v)), nil
}

// ArrGet reads element i of a data array as a raw value.
func (t *Thread) ArrGet(o Obj, i int) (val Value, err error) {
	t.enterBoundary()
	defer t.tc.BeginExternal()
	defer recoverTier(&err)
	v := t.vm.Get(o)
	if t.vm.Prog.Transformed {
		rt := t.vm.RT
		elem := rt.ArrayElemType(rt.ArrayTypeOf(offheap.PageRef(v)))
		if i < 0 || i >= rt.ArrayLen(offheap.PageRef(v)) {
			return 0, errBounds(i, rt.ArrayLen(offheap.PageRef(v)))
		}
		return loadRecElem(rt, offheap.PageRef(v), elem, i), nil
	}
	hp := t.vm.Heap
	a := heap.Addr(v)
	if i < 0 || i >= hp.ArrayLen(a) {
		return 0, errBounds(i, hp.ArrayLen(a))
	}
	return loadElem(hp, a, hp.ArrayElemOf(a), i), nil
}

// ArrSet writes element i of a data array.
func (t *Thread) ArrSet(o Obj, i int, val Value) (err error) {
	t.enterBoundary()
	defer t.tc.BeginExternal()
	defer recoverTier(&err)
	v := t.vm.Get(o)
	if t.vm.Prog.Transformed {
		rt := t.vm.RT
		ref := offheap.PageRef(v)
		if i < 0 || i >= rt.ArrayLen(ref) {
			return errBounds(i, rt.ArrayLen(ref))
		}
		storeRecElem(rt, ref, rt.ArrayElemType(rt.ArrayTypeOf(ref)), i, val)
		return nil
	}
	hp := t.vm.Heap
	a := heap.Addr(v)
	if i < 0 || i >= hp.ArrayLen(a) {
		return errBounds(i, hp.ArrayLen(a))
	}
	storeElem(hp, t.tc, a, hp.ArrayElemOf(a), i, val)
	return nil
}

// ArrGetObj reads a reference element into a handle.
func (t *Thread) ArrGetObj(o Obj, i int) (Obj, error) {
	v, err := t.ArrGet(o, i)
	if err != nil {
		return NilObj, err
	}
	t.enterBoundary()
	defer t.tc.BeginExternal()
	return t.wrapObj(v), nil
}

// ArrSetObj writes a reference element.
func (t *Thread) ArrSetObj(o Obj, i int, val Obj) error {
	var v Value
	if val != NilObj {
		v = t.vm.Get(val)
	}
	return t.ArrSet(o, i, v)
}

func f64bits(f float64) Value { return math.Float64bits(f) }

// ---------------------------------------------------------------------------
// Bulk array transfer. Load paths move whole shards/partitions across the
// boundary; element-at-a-time handle calls would dominate, so these
// helpers copy the raw element bytes in one call (both representations use
// little-endian layouts with identical element sizes).

// arrBody returns raw write access parameters for a data array.
func (t *Thread) arrCopyIn(o Obj, data []byte) (err error) {
	t.enterBoundary()
	defer t.tc.BeginExternal()
	defer recoverTier(&err)
	v := t.vm.Get(o)
	if t.vm.Prog.Transformed {
		t.vm.RT.WriteBody(offheap.PageRef(v), 0, data)
		return nil
	}
	t.vm.Heap.WriteBody(heap.Addr(v), 0, data)
	return nil
}

func (t *Thread) arrCopyOut(o Obj, n int) (b []byte, err error) {
	t.enterBoundary()
	defer t.tc.BeginExternal()
	defer recoverTier(&err)
	v := t.vm.Get(o)
	if t.vm.Prog.Transformed {
		return t.vm.RT.ReadBody(offheap.PageRef(v), 0, n), nil
	}
	return t.vm.Heap.ReadBody(heap.Addr(v), 0, n), nil
}

// NewIntArr builds an int[] data array initialized from vals.
func (t *Thread) NewIntArr(vals []int32) (Obj, error) {
	o, err := t.NewArr("int", len(vals))
	if err != nil {
		return NilObj, err
	}
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		putLE32(buf[4*i:], uint32(v))
	}
	return o, t.arrCopyIn(o, buf)
}

// NewDoubleArr builds a double[] data array initialized from vals.
func (t *Thread) NewDoubleArr(vals []float64) (Obj, error) {
	o, err := t.NewArr("double", len(vals))
	if err != nil {
		return NilObj, err
	}
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		putLE64(buf[8*i:], math.Float64bits(v))
	}
	return o, t.arrCopyIn(o, buf)
}

// NewByteArr builds a byte[] data array initialized from vals.
func (t *Thread) NewByteArr(vals []byte) (Obj, error) {
	o, err := t.NewArr("byte", len(vals))
	if err != nil {
		return NilObj, err
	}
	return o, t.arrCopyIn(o, vals)
}

// ReadByteArr copies a byte[] data array out to Go.
func (t *Thread) ReadByteArr(o Obj) ([]byte, error) {
	n, err := t.ArrLen(o)
	if err != nil {
		return nil, err
	}
	return t.arrCopyOut(o, n)
}

// ReadIntArr copies an int[] data array out to Go.
func (t *Thread) ReadIntArr(o Obj) ([]int32, error) {
	n, err := t.ArrLen(o)
	if err != nil {
		return nil, err
	}
	buf, err := t.arrCopyOut(o, 4*n)
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(getLE32(buf[4*i:]))
	}
	return out, nil
}

// ReadDoubleArr copies a double[] data array out to Go.
func (t *Thread) ReadDoubleArr(o Obj) ([]float64, error) {
	n, err := t.ArrLen(o)
	if err != nil {
		return nil, err
	}
	buf, err := t.arrCopyOut(o, 8*n)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(getLE64(buf[8*i:]))
	}
	return out, nil
}

func putLE32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getLE32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLE64(b []byte, v uint64) {
	putLE32(b, uint32(v))
	putLE32(b[4:], uint32(v>>32))
}

func getLE64(b []byte) uint64 {
	return uint64(getLE32(b)) | uint64(getLE32(b[4:]))<<32
}

// resolveArgs materializes boundary arguments for the untransformed
// (managed heap) paths in two passes: strings are converted first (they
// allocate, and an allocation may move previously resolved references),
// then every reference is read out of its handle with no allocation in
// between. The returned cleanup drops temporary string handles.
func (t *Thread) resolveArgs(args []Arg) ([]Value, func(), error) {
	var temps []Handle
	cleanup := func() {
		for _, h := range temps {
			t.vm.Drop(h)
		}
	}
	resolved := make([]Arg, len(args))
	copy(resolved, args)
	for i, a := range resolved {
		if a.kind == 's' {
			v, err := t.makeString(a.s)
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			h := t.wrapObj(v)
			temps = append(temps, h)
			resolved[i] = O(h)
		}
	}
	vals := make([]Value, len(resolved))
	for i, a := range resolved {
		v, err := t.argValue(a)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		vals[i] = v
	}
	return vals, cleanup, nil
}
