// Package vm interprets IR programs (internal/ir) against the managed heap
// (internal/heap) and, for FACADE-transformed programs, the off-heap page
// store (internal/offheap). It plays the role of the JVM in the paper's
// evaluation:
//
//   - program P allocates every data item as a heap object; the VM's
//     frames, statics, facade pools, and handles are GC roots, and the
//     collector's cost grows with the number of live data objects;
//   - program P' allocates data records in pages via the page half of the
//     instruction set; the heap holds only control objects and the
//     per-thread facade pools, so collections trace almost nothing.
//
// The same interpreter executes both programs, which is what makes the
// measured differences attributable to the memory system rather than to
// differing execution engines.
package vm

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/offheap"
)

// Value is the VM's raw 64-bit slot: int/long/bool/byte as sign-extended
// two's complement, double as IEEE bits, heap references as zero-extended
// addresses, page references as int64 bits.
type Value = uint64

// Config configures a VM instance.
type Config struct {
	// HeapSize is the managed heap budget (-Xmx).
	HeapSize int
	// Out receives Sys.print output; defaults to io.Discard.
	Out io.Writer
	// RandSeed seeds the deterministic Sys.rand source.
	RandSeed int64
	// GCWorkers is the heap full-collection mark parallelism
	// (heap.Config.GCWorkers); 0 picks the heap's default.
	GCWorkers int
	// NativeRT supplies the page store for transformed programs; a fresh
	// one is created when nil and the program is transformed.
	NativeRT *offheap.Runtime
	// Tiering, when non-nil, attaches a disk tier to the page store
	// (offheap.EnableTiering): cold pages spill to a file under the
	// configured watermarks and promote back on access. Ignored for
	// untransformed programs (they have no page store).
	Tiering *offheap.TierConfig
	// Obs receives the run's observability instruments (heap pause
	// histograms, page-store counters, VM execution counters, events). A
	// fresh registry is created when nil.
	Obs *obs.Registry
	// Faults, when non-nil, injects deterministic allocation failures into
	// the heap and the page store (internal/faults).
	Faults *faults.Injector
	// Lifetimes is the static per-allocation-site lifetime classification
	// (indexed by site ID; from analysis.Lifetimes). Nil disables
	// lifetime-guided allocation.
	Lifetimes []ir.Lifetime
	// LifetimeMode selects how the heap consumes Lifetimes (off, observe,
	// enforce).
	LifetimeMode heap.LifetimeMode
}

// lifetimeHeapConfig converts the IR-level classification to the heap's
// dependency-free form.
func lifetimeHeapConfig(mode heap.LifetimeMode, lifetimes []ir.Lifetime) heap.LifetimeConfig {
	if mode == heap.LifetimeOff || len(lifetimes) == 0 {
		return heap.LifetimeConfig{}
	}
	sites := make([]heap.Life, len(lifetimes))
	for i, l := range lifetimes {
		switch l {
		case ir.LifetimeEpochLocal:
			sites[i] = heap.LifeEpoch
		case ir.LifetimeLongLived:
			sites[i] = heap.LifeLong
		}
	}
	return heap.LifetimeConfig{Mode: mode, Sites: sites}
}

// VM executes one linked program.
type VM struct {
	Prog *ir.Program
	Heap *heap.Heap
	RT   *offheap.Runtime // nil for untransformed programs

	out io.Writer
	inj *faults.Injector // the injector the VM was built with (may be nil)

	// Dispatch tables: selectors index per-class vtables.
	selectors map[string]int
	vtables   [][]*ir.Func
	byKey     map[string]*ir.Func

	// Static fields.
	statics     []Value
	staticTypes []*lang.Type

	// String literal cache, indexed by string pool index; entries are heap
	// addresses (P) or page references (P').
	strMu    sync.Mutex
	strCache []Value
	strDone  []bool
	strField *lang.Field // String.value
	strClass *lang.Class

	// Facade machinery (transformed programs only).
	facadeByName map[string]*lang.Class // facade class per original data class
	pageRefField *lang.Field            // Facade.pageRef
	bounds       map[int]int            // facade class ID -> pool bound
	iterCounter  int
	rootScope    *offheap.PageManager // allocation scope for literals/globals

	// Monitor table for heap objects (program P's intrinsic locks).
	monMu     sync.Mutex
	monitors  map[uint32]*monitor
	nextMonID uint32

	// Handles: Go-side roots for framework code.
	handles handleTable

	// Threads registry for root scanning.
	threadsMu sync.Mutex
	threads   map[*Thread]struct{}
	nextTID   int

	rngMu sync.Mutex
	rngSt uint64
	outMu sync.Mutex

	// Observability: one registry shared by the heap, the page store, and
	// the interpreter's own execution counters. Threads accumulate
	// locally and flush into these on returning to the boundary.
	obs       *obs.Registry
	cInstr    *obs.Counter // IR instructions executed
	cBoundary *obs.Counter // control-path -> data-path boundary crossings
	cPoolHits *obs.Counter // facade pool accesses (resolve/pool-get/recv-pool)

	// cancel, when non-nil, aborts interpretation: every thread polls it
	// at the same sites the GC safepoint is polled (calls and backward
	// control-flow edges), so an idle VM pays a nil pointer load per poll.
	cancel atomic.Pointer[error]
}

// New creates a VM for prog and links dispatch tables.
func New(prog *ir.Program, cfg Config) (*VM, error) {
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	vm := &VM{
		Prog:      prog,
		out:       cfg.Out,
		inj:       cfg.Faults,
		byKey:     make(map[string]*ir.Func),
		monitors:  make(map[uint32]*monitor),
		threads:   make(map[*Thread]struct{}),
		rngSt:     uint64(cfg.RandSeed)*2862933555777941757 + 3037000493,
		selectors: make(map[string]int),
		obs:       reg,
		cInstr:    reg.Counter(obs.CtrInstructions),
		cBoundary: reg.Counter(obs.CtrBoundaryCalls),
		cPoolHits: reg.Counter(obs.CtrFacadePoolHits),
	}
	vm.Heap = heap.New(heap.Config{
		HeapSize:  cfg.HeapSize,
		GCWorkers: cfg.GCWorkers,
		Obs:       reg,
		Faults:    cfg.Faults,
		Lifetimes: lifetimeHeapConfig(cfg.LifetimeMode, cfg.Lifetimes),
	}, prog.H)
	if prog.Transformed {
		vm.RT = cfg.NativeRT
		if vm.RT == nil {
			vm.RT = offheap.NewRuntimeWith(reg)
		}
		if cfg.Faults != nil {
			vm.RT.SetFaultInjector(cfg.Faults)
		}
		if cfg.Tiering != nil {
			if err := vm.RT.EnableTiering(*cfg.Tiering); err != nil {
				return nil, err
			}
		}
		vm.rootScope = vm.RT.NewManager(nil, -2, -1)
	}
	if err := vm.link(); err != nil {
		return nil, err
	}
	vm.Heap.AddRoots(heap.RootFunc(vm.visitRoots))
	return vm, nil
}

// link builds vtables, the statics area, and caches per-instruction
// dispatch information.
func (vm *VM) link() error {
	h := vm.Prog.H
	// Selector assignment: one slot per distinct instance method name.
	names := make([]string, 0)
	seen := make(map[string]bool)
	for _, c := range h.ClassList {
		for n, m := range c.Methods {
			if !m.Static && !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	for i, n := range names {
		vm.selectors[n] = i
	}
	vm.vtables = make([][]*ir.Func, len(h.ClassList))
	for _, f := range vm.Prog.FuncList {
		vm.byKey[f.Name] = f
	}
	for _, c := range h.ClassList {
		vt := make([]*ir.Func, len(names))
		if c.Super != nil {
			copy(vt, vm.vtables[c.Super.ID])
		}
		for n, m := range c.Methods {
			if m.Static {
				continue
			}
			f := vm.byKey[ir.FuncKey(c.Name, n)]
			if f == nil {
				return fmt.Errorf("vm: missing body for %s.%s", c.Name, n)
			}
			vt[vm.selectors[n]] = f
		}
		vm.vtables[c.ID] = vt
	}

	// Statics.
	vm.statics = make([]Value, h.NumStatics)
	vm.staticTypes = make([]*lang.Type, h.NumStatics)
	for _, c := range h.ClassList {
		for _, f := range c.Statics {
			vm.staticTypes[f.StaticIndex] = f.Type
		}
	}

	// Strings.
	vm.strCache = make([]Value, len(vm.Prog.StringPool))
	vm.strDone = make([]bool, len(vm.Prog.StringPool))
	if sc := h.Class("String"); sc != nil {
		vm.strClass = sc
		vm.strField = sc.FindField("value")
		if vm.strField == nil {
			return fmt.Errorf("vm: String class has no value field")
		}
	}

	// Facade metadata. Record sizes are compile-time constants carried on
	// the allocation instructions (the paper's D_Record_size), so the VM
	// needs only the facade classes and pool bounds here.
	if vm.Prog.Transformed {
		vm.facadeByName = make(map[string]*lang.Class)
		vm.bounds = make(map[int]int)
		fb := h.Class("Facade")
		if fb == nil {
			return fmt.Errorf("vm: transformed program lacks Facade class")
		}
		vm.pageRefField = fb.FindField("pageRef")
		if vm.pageRefField == nil {
			return fmt.Errorf("vm: Facade class lacks pageRef field")
		}
		for orig, bound := range vm.Prog.Bounds {
			fc := h.Class(orig + "Facade")
			if orig == "Object" {
				fc = fb
			}
			if fc == nil {
				return fmt.Errorf("vm: missing facade class for %s", orig)
			}
			vm.facadeByName[orig] = fc
			vm.bounds[fc.ID] = bound
		}
	}

	// Per-instruction caches: selector IDs for OpCall, direct functions
	// for OpCallStatic. These write into the instruction stream shared by
	// every VM built over this program, so they run exactly once per
	// program: selector IDs (sorted method names), callee pointers (the
	// program's own *ir.Func values), and intrinsic indices are all pure
	// functions of the program, and LinkInstrs' Once gives later VMs the
	// happens-before edge on the cached values.
	return vm.Prog.LinkInstrs(func() error {
		for _, f := range vm.Prog.FuncList {
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					switch in.Op {
					case ir.OpCall:
						sel, ok := vm.selectors[in.M.Name]
						if !ok {
							return fmt.Errorf("vm: %s: no selector for %s", f.Name, in.M.Name)
						}
						in.Imm = int64(sel)
					case ir.OpCallStatic:
						key := calleeKey(in.M)
						callee := vm.byKey[key]
						if callee == nil {
							return fmt.Errorf("vm: %s: missing callee %s", f.Name, key)
						}
						in.Cache = callee
					case ir.OpIntr:
						idx, ok := intrinsicIndex[in.Sym]
						if !ok {
							return fmt.Errorf("vm: %s: unknown intrinsic %s", f.Name, in.Sym)
						}
						// Imm is unused by OpIntr, so it carries the index for
						// the dispatch loop's inline fast path; Cache keeps the
						// boxed copy as the "linked" marker for the slow path.
						in.Imm = int64(idx)
						in.Cache = idx
					}
				}
			}
		}
		return nil
	})
}

func calleeKey(m *lang.Method) string {
	if m.IsCtor {
		return ir.CtorKey(m.Owner.Name)
	}
	return ir.FuncKey(m.Owner.Name, m.Name)
}

// Func returns the function with the given key, or nil.
func (vm *VM) Func(key string) *ir.Func { return vm.byKey[key] }

// Out returns the VM's output writer.
func (vm *VM) Out() io.Writer { return vm.out }

// Obs returns the VM's observability registry, shared with the heap and
// (for transformed programs) the page store.
func (vm *VM) Obs() *obs.Registry { return vm.obs }

// visitRoots walks every root slot: statics, string cache, handles, and
// each thread's facade pools and frame registers. Runs with the world
// stopped.
func (vm *VM) visitRoots(visit func(heap.Addr) heap.Addr) {
	for i, t := range vm.staticTypes {
		if t != nil && t.IsRef() {
			vm.statics[i] = Value(visit(heap.Addr(vm.statics[i])))
		}
	}
	if !vm.Prog.Transformed {
		for i, done := range vm.strDone {
			if done {
				vm.strCache[i] = Value(visit(heap.Addr(vm.strCache[i])))
			}
		}
	}
	vm.handles.visit(visit)
	vm.threadsMu.Lock()
	threads := make([]*Thread, 0, len(vm.threads))
	for t := range vm.threads {
		threads = append(threads, t)
	}
	vm.threadsMu.Unlock()
	for _, t := range threads {
		t.visitRoots(visit)
	}
}

// Injector returns the fault injector the VM was constructed with (nil
// when injection is disabled), so engines driving the VM can plan
// injected failures — e.g. worker crashes — from the same seed.
func (vm *VM) Injector() *faults.Injector { return vm.inj }

// Cancel aborts interpretation on every thread of this VM: the next
// safepoint poll (calls and loop back-edges) unwinds to the Call boundary
// returning err. Cancellation is cooperative — a thread parked in Go code
// (monitor wait, framework I/O) notices when it next executes IR. A nil
// err clears a pending cancellation.
func (vm *VM) Cancel(err error) {
	if err == nil {
		vm.cancel.Store(nil)
		return
	}
	vm.cancel.Store(&err)
}

// Canceled returns the pending cancellation error, or nil.
func (vm *VM) Canceled() error {
	if p := vm.cancel.Load(); p != nil {
		return *p
	}
	return nil
}

// ResetConfig re-arms a VM for its next job (ResetForReuse).
type ResetConfig struct {
	// Out receives Sys.print output; defaults to io.Discard.
	Out io.Writer
	// RandSeed re-seeds the deterministic Sys.rand source.
	RandSeed int64
	// Obs receives the next job's instruments; a fresh private registry
	// is created when nil.
	Obs *obs.Registry
	// Faults installs the next job's fault injector (nil disables).
	Faults *faults.Injector
	// Lifetimes and LifetimeMode install the next job's lifetime
	// classification (see Config); nil/off disables it for the job.
	Lifetimes    []ir.Lifetime
	LifetimeMode heap.LifetimeMode
	// Tiering attaches a disk tier to the page store for the next job
	// (see Config.Tiering); nil leaves the store DRAM-only. The previous
	// job's tier was torn down by the store reset either way.
	Tiering *offheap.TierConfig
}

// ResetForReuse returns the VM to its post-New state so a daemon can run
// another job on it without rebuilding the expensive parts: the heap arena,
// the linked dispatch tables, the facade metadata and §3.3 pool bounds, and
// the page store's recycled-page pool all stay warm, while every piece of
// job state — statics, string literals, handles, monitors, the random
// stream, thread and iteration ID counters, heap contents, live pages —
// rewinds to its initial value. The reset is observable-state complete: a
// run on a reused VM is bit-identical to the same run on a fresh VM.
//
// All threads must have been closed first; a job that leaked a thread or a
// page fails the reset, in which case the caller must discard the VM and
// rebuild (this is how the daemon keeps a crashed tenant job from
// poisoning the warm pool).
func (vm *VM) ResetForReuse(cfg ResetConfig) error {
	vm.threadsMu.Lock()
	live := len(vm.threads)
	vm.threadsMu.Unlock()
	if live != 0 {
		return fmt.Errorf("vm: reset with %d live thread(s)", live)
	}
	if vm.rootScope != nil {
		vm.rootScope.ReleaseAll()
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if err := vm.Heap.Reset(reg, cfg.Faults); err != nil {
		return err
	}
	vm.Heap.SetLifetimes(lifetimeHeapConfig(cfg.LifetimeMode, cfg.Lifetimes))
	if vm.RT != nil {
		if err := vm.RT.Reset(reg, cfg.Faults); err != nil {
			return err
		}
		if cfg.Tiering != nil {
			if err := vm.RT.EnableTiering(*cfg.Tiering); err != nil {
				return err
			}
		}
		vm.rootScope = vm.RT.NewManager(nil, -2, -1)
	}
	vm.obs = reg
	vm.cInstr = reg.Counter(obs.CtrInstructions)
	vm.cBoundary = reg.Counter(obs.CtrBoundaryCalls)
	vm.cPoolHits = reg.Counter(obs.CtrFacadePoolHits)
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	vm.outMu.Lock()
	vm.out = out
	vm.outMu.Unlock()
	vm.inj = cfg.Faults
	for i := range vm.statics {
		vm.statics[i] = 0
	}
	vm.strMu.Lock()
	for i := range vm.strCache {
		vm.strCache[i] = 0
		vm.strDone[i] = false
	}
	vm.strMu.Unlock()
	vm.monMu.Lock()
	vm.monitors = make(map[uint32]*monitor)
	vm.nextMonID = 0
	vm.monMu.Unlock()
	vm.handles.reset()
	vm.rngMu.Lock()
	vm.rngSt = uint64(cfg.RandSeed)*2862933555777941757 + 3037000493
	vm.rngMu.Unlock()
	vm.threadsMu.Lock()
	vm.nextTID = 0
	vm.threadsMu.Unlock()
	vm.iterCounter = 0
	vm.cancel.Store(nil)
	return nil
}

// RandState returns the current Sys.rand cursor. Together with
// SetRandState it lets engines checkpoint the VM's deterministic random
// stream, so a crash-replayed computation that draws random numbers
// (GPS RandomWalk) is bit-identical to the fault-free run, not merely
// statistically equivalent.
func (vm *VM) RandState() uint64 {
	vm.rngMu.Lock()
	defer vm.rngMu.Unlock()
	return vm.rngSt
}

// SetRandState restores a Sys.rand cursor captured by RandState.
func (vm *VM) SetRandState(s uint64) {
	vm.rngMu.Lock()
	vm.rngSt = s
	vm.rngMu.Unlock()
}

// rand returns the next deterministic pseudo-random value (splitmix64).
func (vm *VM) rand() uint64 {
	vm.rngMu.Lock()
	vm.rngSt += 0x9e3779b97f4a7c15
	z := vm.rngSt
	vm.rngMu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// handleTable stores Go-side references into the heap so framework code
// can hold objects across collections (the moral equivalent of JNI global
// references).
type handleTable struct {
	mu    sync.Mutex
	vals  []Value
	isRef []bool
	free  []int
}

// Handle names a slot in the VM handle table.
type Handle int

// NewHandle registers v; isRef marks managed heap references (traced and
// updated by the collector). Page references pass isRef=false.
func (vm *VM) NewHandle(v Value, isRef bool) Handle {
	ht := &vm.handles
	ht.mu.Lock()
	defer ht.mu.Unlock()
	if n := len(ht.free); n > 0 {
		i := ht.free[n-1]
		ht.free = ht.free[:n-1]
		ht.vals[i] = v
		ht.isRef[i] = isRef
		return Handle(i)
	}
	ht.vals = append(ht.vals, v)
	ht.isRef = append(ht.isRef, isRef)
	return Handle(len(ht.vals) - 1)
}

// Get returns the current value of h.
func (vm *VM) Get(h Handle) Value {
	ht := &vm.handles
	ht.mu.Lock()
	defer ht.mu.Unlock()
	return ht.vals[h]
}

// Set updates the value of h.
func (vm *VM) Set(h Handle, v Value, isRef bool) {
	ht := &vm.handles
	ht.mu.Lock()
	defer ht.mu.Unlock()
	ht.vals[h] = v
	ht.isRef[h] = isRef
}

// Drop releases h.
func (vm *VM) Drop(h Handle) {
	ht := &vm.handles
	ht.mu.Lock()
	defer ht.mu.Unlock()
	ht.vals[h] = 0
	ht.isRef[h] = false
	ht.free = append(ht.free, int(h))
}

// reset empties the table (VM reuse between jobs).
func (ht *handleTable) reset() {
	ht.mu.Lock()
	ht.vals = nil
	ht.isRef = nil
	ht.free = nil
	ht.mu.Unlock()
}

func (ht *handleTable) visit(visit func(heap.Addr) heap.Addr) {
	ht.mu.Lock()
	defer ht.mu.Unlock()
	for i, r := range ht.isRef {
		if r {
			ht.vals[i] = Value(visit(heap.Addr(ht.vals[i])))
		}
	}
}
