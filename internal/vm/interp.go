package vm

import (
	"fmt"
	"math"

	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/offheap"
)

// Runtime error constructors, mirroring the JVM exceptions FJ programs can
// trigger. FJ has no catch; these unwind to the Call boundary as Go
// errors.
func errNPE(what string) error { return fmt.Errorf("NullPointerException: %s", what) }

func errBounds(i, n int) error {
	return fmt.Errorf("ArrayIndexOutOfBoundsException: index %d, length %d", i, n)
}

// exec interprets fn with the given arguments and returns its raw result.
// It is the boundary entry path (Thread.Call); interpreted call
// instructions take the leaner callFn path, which copies arguments
// caller-register -> callee-register without building an argument slice.
func (t *Thread) exec(fn *ir.Func, args []Value) (Value, error) {
	if len(args) != len(fn.Params) {
		return 0, fmt.Errorf("vm: %s expects %d args, got %d", fn.Name, len(fn.Params), len(args))
	}
	regs, onStack := t.allocRegs(fn.NumRegs)
	for i, p := range fn.Params {
		regs[p] = args[i]
	}
	t.frames = append(t.frames, frame{fn: fn, regs: regs})
	v, err := t.run(fn, regs)
	t.frames = t.frames[:len(t.frames)-1]
	if len(t.frames) == 0 {
		t.flushObsCounters()
	}
	t.freeRegs(fn.NumRegs, onStack)
	if err != nil {
		return 0, err
	}
	return v, nil
}

// callFn dispatches an interpreted call instruction: the callee's register
// window comes from the thread stack, arguments are copied directly from
// the caller's registers, and the frame is pushed by value into reserved
// capacity — the hot call path allocates nothing.
func (t *Thread) callFn(callee *ir.Func, regs []Value, in *ir.Instr, recv Value, hasRecv bool) (Value, error) {
	params := callee.Params
	pi := 0
	if hasRecv {
		pi = 1
	}
	if len(in.Args)+pi != len(params) {
		return 0, fmt.Errorf("vm: %s expects %d args, got %d", callee.Name, len(params), len(in.Args)+pi)
	}
	cregs, onStack := t.allocRegs(callee.NumRegs)
	if hasRecv {
		cregs[params[0]] = recv
	}
	for _, r := range in.Args {
		cregs[params[pi]] = regs[r]
		pi++
	}
	t.frames = append(t.frames, frame{fn: callee, regs: cregs})
	v, err := t.run(callee, cregs)
	t.frames = t.frames[:len(t.frames)-1]
	t.freeRegs(callee.NumRegs, onStack)
	return v, err
}

// opHandler executes one instruction outside the dispatch loop's inline
// fast path. The table below is precomputed at package init, so cold ops
// dispatch through one indirect call while the hot ops stay inline in run.
type opHandler func(t *Thread, regs []Value, in *ir.Instr) error

var opHandlers [ir.NumOps]opHandler

func init() {
	opHandlers[ir.OpNop] = func(t *Thread, regs []Value, in *ir.Instr) error { return nil }
	opHandlers[ir.OpStrLit] = hStrLit
	opHandlers[ir.OpNewArr] = hNewArr
	opHandlers[ir.OpLoadStatic] = hLoadStatic
	opHandlers[ir.OpStoreStatic] = hStoreStatic
	opHandlers[ir.OpInstOf] = hInstOf
	opHandlers[ir.OpCast] = hCast
	opHandlers[ir.OpMonEnter] = hMonEnter
	opHandlers[ir.OpMonExit] = hMonExit
	opHandlers[ir.OpPNewArr] = hPNewArr
	opHandlers[ir.OpPInstOf] = hPInstOf
	opHandlers[ir.OpPCast] = hPCast
	opHandlers[ir.OpPMonEnter] = hPMonEnter
	opHandlers[ir.OpPMonExit] = hPMonExit
}

func hStrLit(t *Thread, regs []Value, in *ir.Instr) error {
	a, err := t.stringLiteral(int(in.Imm))
	if err != nil {
		return err
	}
	regs[in.Dst] = a
	return nil
}

func hNewArr(t *Thread, regs []Value, in *ir.Instr) error {
	n := int(int32(regs[in.A]))
	if n < 0 {
		return fmt.Errorf("NegativeArraySizeException: %d", n)
	}
	a, err := t.vm.Heap.AllocArray(t.tc, in.Type, n, in.Site)
	if err != nil {
		return err
	}
	regs[in.Dst] = Value(a)
	return nil
}

func hLoadStatic(t *Thread, regs []Value, in *ir.Instr) error {
	regs[in.Dst] = t.vm.statics[in.Field.StaticIndex]
	return nil
}

func hStoreStatic(t *Thread, regs []Value, in *ir.Instr) error {
	t.vm.statics[in.Field.StaticIndex] = regs[in.A]
	return nil
}

func hInstOf(t *Thread, regs []Value, in *ir.Instr) error {
	regs[in.Dst] = boolVal(t.instanceOf(heap.Addr(regs[in.A]), in.Type))
	return nil
}

func hCast(t *Thread, regs []Value, in *ir.Instr) error {
	a := heap.Addr(regs[in.A])
	if a != 0 && !t.instanceOf(a, in.Type) {
		return fmt.Errorf("ClassCastException: cannot cast to %s", in.Type)
	}
	regs[in.Dst] = regs[in.A]
	return nil
}

func hMonEnter(t *Thread, regs []Value, in *ir.Instr) error {
	return t.monEnter(heap.Addr(regs[in.A]))
}

func hMonExit(t *Thread, regs []Value, in *ir.Instr) error {
	return t.monExit(heap.Addr(regs[in.A]))
}

func hPNewArr(t *Thread, regs []Value, in *ir.Instr) error {
	vm := t.vm
	n := int(int32(regs[in.A]))
	ref, err := t.iter.Current().AllocArray(vm.RT.ArrayTypeIndex(in.Type), in.Type.FieldSize(), n)
	if err != nil {
		return err
	}
	regs[in.Dst] = Value(ref)
	return nil
}

func hPInstOf(t *Thread, regs []Value, in *ir.Instr) error {
	regs[in.Dst] = boolVal(t.recInstanceOf(offheap.PageRef(regs[in.A]), in))
	return nil
}

func hPCast(t *Thread, regs []Value, in *ir.Instr) error {
	ref := offheap.PageRef(regs[in.A])
	if ref != 0 && !t.recInstanceOf(ref, in) {
		return fmt.Errorf("ClassCastException: record is not a %s", in.Cls.Name)
	}
	regs[in.Dst] = regs[in.A]
	return nil
}

func hPMonEnter(t *Thread, regs []Value, in *ir.Instr) error {
	vm := t.vm
	return vm.RT.Locks.Enter(vm.RT, offheap.PageRef(regs[in.A]), t, parker{t})
}

func hPMonExit(t *Thread, regs []Value, in *ir.Instr) error {
	vm := t.vm
	return vm.RT.Locks.Exit(vm.RT, offheap.PageRef(regs[in.A]), t)
}

// run interprets fn until it returns. Dispatch is two-level: the hottest
// ops are inline cases of the dense switch (compiled to a jump table),
// with integer and double arithmetic fully unboxed in the loop; everything
// else goes through the precomputed opHandlers table. Safepoints are
// polled on calls and backward control-flow edges only — every loop must
// take a backward edge, so GC latency is unchanged while forward branches
// skip the atomic load.
func (t *Thread) run(fn *ir.Func, regs []Value) (Value, error) {
	vm := t.vm
	hp := vm.Heap
	bi := 0
blocks:
	for {
		instrs := fn.Blocks[bi].Instrs
		t.instrs += int64(len(instrs))
		for ii := range instrs {
			in := &instrs[ii]
			switch in.Op {
			case ir.OpConst:
				if in.NumKind == ir.KDouble {
					regs[in.Dst] = math.Float64bits(in.F)
				} else {
					regs[in.Dst] = Value(in.Imm)
				}
			case ir.OpMove:
				regs[in.Dst] = regs[in.A]
			case ir.OpBin:
				a, b := regs[in.A], regs[in.B]
				switch in.NumKind {
				case ir.KInt, ir.KByte, ir.KBool:
					x, y := int32(a), int32(b)
					var v Value
					switch in.Sub {
					case ir.BinAdd:
						v = Value(uint32(x + y))
					case ir.BinSub:
						v = Value(uint32(x - y))
					case ir.BinMul:
						v = Value(uint32(x * y))
					case ir.BinLt:
						v = boolVal(x < y)
					case ir.BinLe:
						v = boolVal(x <= y)
					case ir.BinGt:
						v = boolVal(x > y)
					case ir.BinGe:
						v = boolVal(x >= y)
					case ir.BinEq:
						v = boolVal(x == y)
					case ir.BinNe:
						v = boolVal(x != y)
					default:
						// Div/rem (zero checks) and bit ops share evalBin.
						var err error
						v, err = evalBin(in, a, b)
						if err != nil {
							return 0, err
						}
					}
					regs[in.Dst] = v
				case ir.KDouble:
					x, y := math.Float64frombits(a), math.Float64frombits(b)
					var v Value
					switch in.Sub {
					case ir.BinAdd:
						v = math.Float64bits(x + y)
					case ir.BinSub:
						v = math.Float64bits(x - y)
					case ir.BinMul:
						v = math.Float64bits(x * y)
					case ir.BinDiv:
						v = math.Float64bits(x / y)
					case ir.BinLt:
						v = boolVal(x < y)
					case ir.BinLe:
						v = boolVal(x <= y)
					case ir.BinGt:
						v = boolVal(x > y)
					case ir.BinGe:
						v = boolVal(x >= y)
					case ir.BinEq:
						v = boolVal(x == y)
					case ir.BinNe:
						v = boolVal(x != y)
					default:
						var err error
						v, err = evalBin(in, a, b)
						if err != nil {
							return 0, err
						}
					}
					regs[in.Dst] = v
				default:
					v, err := evalBin(in, a, b)
					if err != nil {
						return 0, err
					}
					regs[in.Dst] = v
				}
			case ir.OpUn:
				regs[in.Dst] = evalUn(in, regs[in.A])
			case ir.OpConv:
				regs[in.Dst] = evalConv(in.NumKind, in.NumKind2, regs[in.A])

			case ir.OpNew:
				a, err := hp.AllocObject(t.tc, in.Cls, in.Site)
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = Value(a)
			case ir.OpLoad:
				obj := heap.Addr(regs[in.A])
				if obj == 0 {
					return 0, errNPE("field read " + in.Field.Name)
				}
				regs[in.Dst] = loadField(hp, obj, in.Field)
			case ir.OpStore:
				obj := heap.Addr(regs[in.A])
				if obj == 0 {
					return 0, errNPE("field write " + in.Field.Name)
				}
				storeField(hp, t.tc, obj, in.Field, regs[in.B])
			case ir.OpALoad:
				arr := heap.Addr(regs[in.A])
				if arr == 0 {
					return 0, errNPE("array read")
				}
				i := int(int32(regs[in.B]))
				n := hp.ArrayLen(arr)
				if i < 0 || i >= n {
					return 0, errBounds(i, n)
				}
				regs[in.Dst] = loadElem(hp, arr, in.Type, i)
			case ir.OpAStore:
				arr := heap.Addr(regs[in.A])
				if arr == 0 {
					return 0, errNPE("array write")
				}
				i := int(int32(regs[in.B]))
				n := hp.ArrayLen(arr)
				if i < 0 || i >= n {
					return 0, errBounds(i, n)
				}
				storeElem(hp, t.tc, arr, in.Type, i, regs[in.C])
			case ir.OpALen:
				arr := heap.Addr(regs[in.A])
				if arr == 0 {
					return 0, errNPE("array length")
				}
				regs[in.Dst] = Value(uint32(hp.ArrayLen(arr)))

			case ir.OpCall:
				t.tc.Safepoint()
				if p := vm.cancel.Load(); p != nil {
					return 0, *p
				}
				recv := heap.Addr(regs[in.A])
				if recv == 0 {
					return 0, errNPE("virtual call " + in.M.Name)
				}
				cls := hp.ClassOf(recv)
				if cls == nil {
					return 0, fmt.Errorf("vm: virtual call on array receiver")
				}
				callee := vm.vtables[cls.ID][int(in.Imm)]
				if callee == nil {
					return 0, fmt.Errorf("vm: %s has no implementation of %s", cls.Name, in.M.Name)
				}
				v, err := t.callFn(callee, regs, in, Value(recv), true)
				if err != nil {
					return 0, err
				}
				if in.Dst != ir.NoReg {
					regs[in.Dst] = v
				}
			case ir.OpCallStatic:
				t.tc.Safepoint()
				if p := vm.cancel.Load(); p != nil {
					return 0, *p
				}
				callee := in.Cache.(*ir.Func)
				hasRecv := in.A != ir.NoReg
				var recv Value
				if hasRecv {
					recv = regs[in.A]
				}
				v, err := t.callFn(callee, regs, in, recv, hasRecv)
				if err != nil {
					return 0, err
				}
				if in.Dst != ir.NoReg {
					regs[in.Dst] = v
				}
			case ir.OpRet:
				if in.A == ir.NoReg {
					return 0, nil
				}
				return regs[in.A], nil
			case ir.OpJump:
				if in.Blk <= bi {
					t.tc.Safepoint()
					if p := vm.cancel.Load(); p != nil {
						return 0, *p
					}
				}
				bi = in.Blk
				continue blocks
			case ir.OpBranch:
				nxt := in.Blk2
				if regs[in.A] != 0 {
					nxt = in.Blk
				}
				if nxt <= bi {
					t.tc.Safepoint()
					if p := vm.cancel.Load(); p != nil {
						return 0, *p
					}
				}
				bi = nxt
				continue blocks
			case ir.OpIntr:
				// Pure-math intrinsics run inline; everything else (I/O,
				// iteration control, arraycopy) pays the intrinsic call.
				if in.Dst != ir.NoReg {
					switch int(in.Imm) {
					case inSqrt:
						regs[in.Dst] = math.Float64bits(math.Sqrt(math.Float64frombits(regs[in.Args[0]])))
						continue
					case inAbs:
						regs[in.Dst] = math.Float64bits(math.Abs(math.Float64frombits(regs[in.Args[0]])))
						continue
					}
				}
				v, err := t.intrinsic(in, regs)
				if err != nil {
					return 0, err
				}
				if in.Dst != ir.NoReg {
					regs[in.Dst] = v
				}

			// --- Page half (program P') ---
			case ir.OpPNew:
				ref, err := t.iter.Current().AllocRecord(uint16(in.Cls.ID), int(in.Imm))
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = Value(ref)
			case ir.OpPLoad:
				ref := offheap.PageRef(regs[in.A])
				if ref == 0 {
					return 0, errNPE("record read " + in.Field.Name)
				}
				regs[in.Dst] = loadRecField(vm.RT, ref, in.Field)
			case ir.OpPStore:
				ref := offheap.PageRef(regs[in.A])
				if ref == 0 {
					return 0, errNPE("record write " + in.Field.Name)
				}
				storeRecField(vm.RT, ref, in.Field, regs[in.B])
			case ir.OpPALoad:
				ref := offheap.PageRef(regs[in.A])
				if ref == 0 {
					return 0, errNPE("array record read")
				}
				i := int(int32(regs[in.B]))
				n := vm.RT.ArrayLen(ref)
				if i < 0 || i >= n {
					return 0, errBounds(i, n)
				}
				regs[in.Dst] = loadRecElem(vm.RT, ref, in.Type, i)
			case ir.OpPAStore:
				ref := offheap.PageRef(regs[in.A])
				if ref == 0 {
					return 0, errNPE("array record write")
				}
				i := int(int32(regs[in.B]))
				n := vm.RT.ArrayLen(ref)
				if i < 0 || i >= n {
					return 0, errBounds(i, n)
				}
				storeRecElem(vm.RT, ref, in.Type, i, regs[in.C])
			case ir.OpPALen:
				ref := offheap.PageRef(regs[in.A])
				if ref == 0 {
					return 0, errNPE("array record length")
				}
				regs[in.Dst] = Value(uint32(vm.RT.ArrayLen(ref)))
			case ir.OpResolve:
				// Retrieve the receiver-pool facade for the record's
				// runtime type and bind it (§3.2, "Resolving types").
				ref := offheap.PageRef(regs[in.A])
				if ref == 0 {
					return 0, errNPE("resolve on null record")
				}
				tw := vm.RT.TypeID(ref)
				pe := t.pools[int(tw)]
				if pe == nil {
					return 0, fmt.Errorf("vm: no receiver pool for type id %d", tw)
				}
				hp.SetLong(heap.Addr(pe.recv), vm.pageRefField.Offset, int64(ref))
				t.poolHits++
				regs[in.Dst] = pe.recv
			case ir.OpPoolGet:
				pe := t.pools[in.Cls.ID]
				if pe == nil {
					return 0, fmt.Errorf("vm: no parameter pool for %s", in.Cls.Name)
				}
				t.poolHits++
				regs[in.Dst] = pe.params[int(in.Imm)]
			case ir.OpRecvPool:
				// Devirtualized resolve (§3.6 optimization): the callee is
				// statically known, so the receiver facade comes from the
				// static type's pool without reading the record type tag.
				ref := offheap.PageRef(regs[in.A])
				if ref == 0 {
					return 0, errNPE("devirtualized call on null record")
				}
				pe := t.pools[in.Cls.ID]
				if pe == nil {
					return 0, fmt.Errorf("vm: no receiver pool for %s", in.Cls.Name)
				}
				hp.SetLong(heap.Addr(pe.recv), vm.pageRefField.Offset, int64(ref))
				t.poolHits++
				regs[in.Dst] = pe.recv

			default:
				if h := opHandlers[in.Op]; h != nil {
					if err := h(t, regs, in); err != nil {
						return 0, err
					}
					continue
				}
				return 0, fmt.Errorf("vm: %s: unimplemented op %s", fn.Name, in.Op)
			}
		}
		return 0, fmt.Errorf("vm: %s: fell off block b%d", fn.Name, bi)
	}
}

// instanceOf implements the heap-object subtype test.
func (t *Thread) instanceOf(a heap.Addr, target *lang.Type) bool {
	if a == 0 {
		return false
	}
	hp := t.vm.Heap
	h := t.vm.Prog.H
	if hp.IsArray(a) {
		if target.Kind == lang.TArray {
			return hp.ArrayElemOf(a).Equals(target.Elem)
		}
		return target.Kind == lang.TClass && target.Name == "Object"
	}
	cls := hp.ClassOf(a)
	switch target.Kind {
	case lang.TClass:
		tc := h.Class(target.Name)
		return tc != nil && cls.IsSubclassOf(tc)
	case lang.TIface:
		ti := h.Iface(target.Name)
		return ti != nil && cls.Implements(ti)
	}
	return false
}

// recInstanceOf implements the page-record type test: scalar targets check
// the record's facade class against the instruction's facade class (case
// 7.1); array targets compare array type IDs (case 7.2).
func (t *Thread) recInstanceOf(ref offheap.PageRef, in *ir.Instr) bool {
	if ref == 0 {
		return false
	}
	rt := t.vm.RT
	if rt.IsArrayRecord(ref) {
		if in.Type == nil || in.Type.Kind != lang.TArray {
			return in.Cls != nil && in.Cls.Name == "Facade"
		}
		return rt.ArrayTypeOf(ref) == rt.ArrayTypeIndex(in.Type.Elem)
	}
	if in.Cls == nil {
		return false
	}
	cls := t.vm.Prog.H.ClassList[rt.ClassID(ref)]
	return cls.IsSubclassOf(in.Cls)
}

func boolVal(b bool) Value {
	if b {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Field and element access helpers shared by both halves.

func loadField(hp *heap.Heap, obj heap.Addr, f *lang.Field) Value {
	switch f.Type.Kind {
	case lang.TBool, lang.TByte:
		return Value(int64(hp.GetByte(obj, f.Offset)))
	case lang.TInt:
		return Value(int64(hp.GetInt(obj, f.Offset)))
	case lang.TLong:
		return Value(hp.GetLong(obj, f.Offset))
	case lang.TDouble:
		return math.Float64bits(hp.GetDouble(obj, f.Offset))
	default:
		return Value(hp.GetRef(obj, f.Offset))
	}
}

func storeField(hp *heap.Heap, tc *heap.ThreadCtx, obj heap.Addr, f *lang.Field, v Value) {
	switch f.Type.Kind {
	case lang.TBool, lang.TByte:
		hp.SetByte(obj, f.Offset, int8(v))
	case lang.TInt:
		hp.SetInt(obj, f.Offset, int32(v))
	case lang.TLong:
		hp.SetLong(obj, f.Offset, int64(v))
	case lang.TDouble:
		hp.SetDouble(obj, f.Offset, math.Float64frombits(v))
	default:
		hp.SetRefTC(tc, obj, f.Offset, heap.Addr(v))
	}
}

func loadElem(hp *heap.Heap, arr heap.Addr, elem *lang.Type, i int) Value {
	off := i * elem.FieldSize()
	switch elem.Kind {
	case lang.TBool, lang.TByte:
		return Value(int64(hp.GetByte(arr, off)))
	case lang.TInt:
		return Value(int64(hp.GetInt(arr, off)))
	case lang.TLong:
		return Value(hp.GetLong(arr, off))
	case lang.TDouble:
		return math.Float64bits(hp.GetDouble(arr, off))
	default:
		return Value(hp.GetRef(arr, off))
	}
}

func storeElem(hp *heap.Heap, tc *heap.ThreadCtx, arr heap.Addr, elem *lang.Type, i int, v Value) {
	off := i * elem.FieldSize()
	switch elem.Kind {
	case lang.TBool, lang.TByte:
		hp.SetByte(arr, off, int8(v))
	case lang.TInt:
		hp.SetInt(arr, off, int32(v))
	case lang.TLong:
		hp.SetLong(arr, off, int64(v))
	case lang.TDouble:
		hp.SetDouble(arr, off, math.Float64frombits(v))
	default:
		hp.SetRefTC(tc, arr, off, heap.Addr(v))
	}
}

func loadRecField(rt *offheap.Runtime, ref offheap.PageRef, f *lang.Field) Value {
	switch f.Type.Kind {
	case lang.TBool, lang.TByte:
		return Value(int64(rt.GetByte(ref, f.Offset)))
	case lang.TInt:
		return Value(int64(rt.GetInt(ref, f.Offset)))
	case lang.TLong:
		return Value(rt.GetLong(ref, f.Offset))
	case lang.TDouble:
		return math.Float64bits(rt.GetDouble(ref, f.Offset))
	default:
		return Value(rt.GetRef(ref, f.Offset))
	}
}

func storeRecField(rt *offheap.Runtime, ref offheap.PageRef, f *lang.Field, v Value) {
	switch f.Type.Kind {
	case lang.TBool, lang.TByte:
		rt.SetByte(ref, f.Offset, int8(v))
	case lang.TInt:
		rt.SetInt(ref, f.Offset, int32(v))
	case lang.TLong:
		rt.SetLong(ref, f.Offset, int64(v))
	case lang.TDouble:
		rt.SetDouble(ref, f.Offset, math.Float64frombits(v))
	default:
		rt.SetRef(ref, f.Offset, offheap.PageRef(v))
	}
}

func loadRecElem(rt *offheap.Runtime, ref offheap.PageRef, elem *lang.Type, i int) Value {
	off := i * elem.FieldSize()
	switch elem.Kind {
	case lang.TBool, lang.TByte:
		return Value(int64(rt.GetByte(ref, off)))
	case lang.TInt:
		return Value(int64(rt.GetInt(ref, off)))
	case lang.TLong:
		return Value(rt.GetLong(ref, off))
	case lang.TDouble:
		return math.Float64bits(rt.GetDouble(ref, off))
	default:
		return Value(rt.GetRef(ref, off))
	}
}

func storeRecElem(rt *offheap.Runtime, ref offheap.PageRef, elem *lang.Type, i int, v Value) {
	off := i * elem.FieldSize()
	switch elem.Kind {
	case lang.TBool, lang.TByte:
		rt.SetByte(ref, off, int8(v))
	case lang.TInt:
		rt.SetInt(ref, off, int32(v))
	case lang.TLong:
		rt.SetLong(ref, off, int64(v))
	case lang.TDouble:
		rt.SetDouble(ref, off, math.Float64frombits(v))
	default:
		rt.SetRef(ref, off, offheap.PageRef(v))
	}
}

// ---------------------------------------------------------------------------
// Arithmetic

func evalBin(in *ir.Instr, a, b Value) (Value, error) {
	switch in.NumKind {
	case ir.KInt, ir.KByte, ir.KBool:
		x, y := int32(a), int32(b)
		switch in.Sub {
		case ir.BinAdd:
			return Value(uint32(x + y)), nil
		case ir.BinSub:
			return Value(uint32(x - y)), nil
		case ir.BinMul:
			return Value(uint32(x * y)), nil
		case ir.BinDiv:
			if y == 0 {
				return 0, fmt.Errorf("ArithmeticException: / by zero")
			}
			return Value(uint32(x / y)), nil
		case ir.BinRem:
			if y == 0 {
				return 0, fmt.Errorf("ArithmeticException: %% by zero")
			}
			return Value(uint32(x % y)), nil
		case ir.BinAnd:
			return Value(uint32(x & y)), nil
		case ir.BinOr:
			return Value(uint32(x | y)), nil
		case ir.BinXor:
			return Value(uint32(x ^ y)), nil
		case ir.BinShl:
			return Value(uint32(x << (uint32(y) & 31))), nil
		case ir.BinShr:
			return Value(uint32(x >> (uint32(y) & 31))), nil
		case ir.BinLt:
			return boolVal(x < y), nil
		case ir.BinLe:
			return boolVal(x <= y), nil
		case ir.BinGt:
			return boolVal(x > y), nil
		case ir.BinGe:
			return boolVal(x >= y), nil
		case ir.BinEq:
			return boolVal(x == y), nil
		case ir.BinNe:
			return boolVal(x != y), nil
		}
	case ir.KLong:
		x, y := int64(a), int64(b)
		switch in.Sub {
		case ir.BinAdd:
			return Value(x + y), nil
		case ir.BinSub:
			return Value(x - y), nil
		case ir.BinMul:
			return Value(x * y), nil
		case ir.BinDiv:
			if y == 0 {
				return 0, fmt.Errorf("ArithmeticException: / by zero")
			}
			return Value(x / y), nil
		case ir.BinRem:
			if y == 0 {
				return 0, fmt.Errorf("ArithmeticException: %% by zero")
			}
			return Value(x % y), nil
		case ir.BinAnd:
			return Value(x & y), nil
		case ir.BinOr:
			return Value(x | y), nil
		case ir.BinXor:
			return Value(x ^ y), nil
		case ir.BinShl:
			return Value(x << (uint64(y) & 63)), nil
		case ir.BinShr:
			return Value(x >> (uint64(y) & 63)), nil
		case ir.BinLt:
			return boolVal(x < y), nil
		case ir.BinLe:
			return boolVal(x <= y), nil
		case ir.BinGt:
			return boolVal(x > y), nil
		case ir.BinGe:
			return boolVal(x >= y), nil
		case ir.BinEq:
			return boolVal(x == y), nil
		case ir.BinNe:
			return boolVal(x != y), nil
		}
	case ir.KDouble:
		x, y := math.Float64frombits(a), math.Float64frombits(b)
		switch in.Sub {
		case ir.BinAdd:
			return math.Float64bits(x + y), nil
		case ir.BinSub:
			return math.Float64bits(x - y), nil
		case ir.BinMul:
			return math.Float64bits(x * y), nil
		case ir.BinDiv:
			return math.Float64bits(x / y), nil
		case ir.BinLt:
			return boolVal(x < y), nil
		case ir.BinLe:
			return boolVal(x <= y), nil
		case ir.BinGt:
			return boolVal(x > y), nil
		case ir.BinGe:
			return boolVal(x >= y), nil
		case ir.BinEq:
			return boolVal(x == y), nil
		case ir.BinNe:
			return boolVal(x != y), nil
		}
	case ir.KRef:
		switch in.Sub {
		case ir.BinEq:
			return boolVal(a == b), nil
		case ir.BinNe:
			return boolVal(a != b), nil
		}
	}
	return 0, fmt.Errorf("vm: bad binary op %s on %s", in.Sub, in.NumKind)
}

func evalUn(in *ir.Instr, a Value) Value {
	switch in.Sub {
	case ir.UnNeg:
		switch in.NumKind {
		case ir.KInt, ir.KByte:
			return Value(uint32(-int32(a)))
		case ir.KLong:
			return Value(-int64(a))
		case ir.KDouble:
			return math.Float64bits(-math.Float64frombits(a))
		}
	case ir.UnNot:
		return boolVal(a == 0)
	}
	return 0
}

func evalConv(from, to ir.NumKind, a Value) Value {
	// Normalize the source to int64 or float64.
	var i int64
	var f float64
	isF := false
	switch from {
	case ir.KByte:
		i = int64(int8(a))
	case ir.KInt:
		i = int64(int32(a))
	case ir.KLong:
		i = int64(a)
	case ir.KDouble:
		f = math.Float64frombits(a)
		isF = true
	}
	switch to {
	case ir.KByte:
		if isF {
			return Value(uint64(int8(clampToInt32(f))))
		}
		return Value(uint64(int8(i)))
	case ir.KInt:
		if isF {
			return Value(uint32(clampToInt32(f)))
		}
		return Value(uint32(int32(i)))
	case ir.KLong:
		if isF {
			return Value(clampToInt64(f))
		}
		return Value(i)
	case ir.KDouble:
		if isF {
			return a
		}
		return math.Float64bits(float64(i))
	}
	return a
}

// clampToInt64 converts a double to long with Java semantics: NaN -> 0,
// out-of-range values saturate.
func clampToInt64(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	}
	return int64(f)
}

// clampToInt32 converts a double to int with Java semantics.
func clampToInt32(f float64) int32 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt32:
		return math.MaxInt32
	case f <= math.MinInt32:
		return math.MinInt32
	}
	return int32(f)
}
