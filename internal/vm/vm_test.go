package vm

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/stdlib"
)

// compile builds an untransformed program from FJ source (stdlib
// included).
func compile(t testing.TB, src string) *ir.Program {
	t.Helper()
	files, err := stdlib.ParseWith(map[string]string{"t.fj": src})
	if err != nil {
		t.Fatal(err)
	}
	h, err := lang.BuildHierarchy(files...)
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(h); err != nil {
		t.Fatal(err)
	}
	p, err := lower.Program(h)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func transform(t testing.TB, p *ir.Program, classes ...string) *ir.Program {
	t.Helper()
	p2, err := core.Transform(p, core.Options{DataClasses: classes})
	if err != nil {
		t.Fatal(err)
	}
	return p2
}

// runMain runs Class.main (or its facade twin) and returns printed output.
func runMain(t testing.TB, p *ir.Program, heapSize int) string {
	t.Helper()
	var out bytes.Buffer
	m, err := New(p, Config{HeapSize: heapSize, Out: &out, RandSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.NewThread(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	entry := "Main.main"
	if p.Transformed && p.DataClasses["Main"] {
		entry = "MainFacade.main"
	}
	if _, err := th.Call(entry); err != nil {
		t.Fatalf("run: %v (output %q)", err, out.String())
	}
	return out.String()
}

func TestRuntimeErrors(t *testing.T) {
	cases := map[string]struct {
		body string
		want string
	}{
		"npe-field":    {"Main m = null; int x = m.f;", "NullPointerException"},
		"npe-call":     {"Main m = null; m.go();", "NullPointerException"},
		"bounds":       {"int[] a = new int[3]; int x = a[5];", "ArrayIndexOutOfBounds"},
		"neg-bounds":   {"int[] a = new int[3]; int x = a[0 - 1];", "ArrayIndexOutOfBounds"},
		"div-zero":     {"int z = 0; int x = 5 / z;", "ArithmeticException"},
		"rem-zero":     {"int z = 0; int x = 5 % z;", "ArithmeticException"},
		"bad-cast":     {"Object o = new Main(); String s = (String) o;", "ClassCastException"},
		"neg-arr-size": {"int n = 0 - 2; int[] a = new int[n];", "NegativeArraySize"},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			src := "class Main { int f; void go() { } static void main() { " + c.body + " } }"
			p := compile(t, src)
			m, err := New(p, Config{HeapSize: 8 << 20})
			if err != nil {
				t.Fatal(err)
			}
			th, err := m.NewThread(nil)
			if err != nil {
				t.Fatal(err)
			}
			defer th.Close()
			_, err = th.Call("Main.main")
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want %s, got %v", c.want, err)
			}
		})
	}
}

func TestIntrinsicsPrintFormats(t *testing.T) {
	src := `
class Main {
    static void main() {
        Sys.println(true);
        Sys.println(false);
        Sys.print(1);
        Sys.print(2);
        Sys.println(3);
        Sys.println(2147483647);
        Sys.println(9223372036854775807L);
        Sys.println(0.25);
        Sys.println(1.0 / 3.0);
        Sys.println("text");
        Sys.println(Sys.sqrt(16.0));
        Sys.println(Sys.abs(0.0 - 2.5));
        byte b = (byte) 100;
        Sys.println(b);
        Object o = null;
        Sys.println(o);
        Sys.println(new Main());
        Sys.println(new int[2]);
    }
}
`
	out := runMain(t, compile(t, src), 8<<20)
	want := "true\nfalse\n123\n2147483647\n9223372036854775807\n0.25\n" +
		"0.3333333333333333\ntext\n4\n2.5\n100\nnull\nMain\nint[]\n"
	if out != want {
		t.Fatalf("got %q\nwant %q", out, want)
	}
}

func TestRandDeterministic(t *testing.T) {
	src := `
class Main {
    static void main() {
        for (int i = 0; i < 5; i = i + 1) { Sys.println(Sys.rand(100)); }
    }
}
`
	p := compile(t, src)
	a := runMain(t, p, 8<<20)
	b := runMain(t, p, 8<<20)
	if a != b {
		t.Fatalf("rand not deterministic: %q vs %q", a, b)
	}
	for _, line := range strings.Fields(a) {
		if len(line) > 2 {
			t.Fatalf("rand out of bounds: %s", line)
		}
	}
}

func TestArraycopyOverlap(t *testing.T) {
	src := `
class Main {
    static void main() {
        int[] a = new int[6];
        for (int i = 0; i < 6; i = i + 1) { a[i] = i; }
        Sys.arraycopy(a, 0, a, 2, 4);
        for (int i = 0; i < 6; i = i + 1) { Sys.print(a[i]); }
        Sys.println(0);
    }
}
`
	out := runMain(t, compile(t, src), 8<<20)
	if out != "0101230\n" {
		t.Fatalf("got %q", out)
	}
}

func TestMonitorContention(t *testing.T) {
	// Many Go-side threads hammer a synchronized counter through the
	// boundary API; the monitor must serialize them (program P).
	src := `
class Counter {
    int n;
    void bump() {
        synchronized (this) {
            int v = this.n;
            this.n = v + 1;
        }
    }
}
class Main { static void main() { } }
`
	p := compile(t, src)
	m, err := New(p, Config{HeapSize: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	main, err := m.NewThread(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer main.Close()
	obj, err := main.NewObj("Counter")
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th, err := m.NewThread(main)
			if err != nil {
				t.Error(err)
				return
			}
			defer th.Close()
			for j := 0; j < per; j++ {
				if _, err := th.Invoke(obj, "bump"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, err := main.GetField(obj, "Counter", "n")
	if err != nil {
		t.Fatal(err)
	}
	if int32(v) != workers*per {
		t.Fatalf("counter = %d want %d", int32(v), workers*per)
	}
}

func TestLockPoolContentionTransformed(t *testing.T) {
	// The same contention through the FACADE lock pool (program P').
	src := `
class Counter {
    int n;
    void bump() {
        synchronized (this) {
            int v = this.n;
            this.n = v + 1;
        }
    }
}
class Main { static void main() { } }
`
	p := compile(t, src)
	p2 := transform(t, p, "Counter")
	m, err := New(p2, Config{HeapSize: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	main, err := m.NewThread(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer main.Close()
	obj, err := main.NewObj("Counter")
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th, err := m.NewThread(main)
			if err != nil {
				t.Error(err)
				return
			}
			defer th.Close()
			for j := 0; j < per; j++ {
				if _, err := th.Invoke(obj, "bump"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, err := main.GetField(obj, "Counter", "n")
	if err != nil {
		t.Fatal(err)
	}
	if int32(v) != workers*per {
		t.Fatalf("counter = %d want %d", int32(v), workers*per)
	}
	// All pool locks returned (§3.4).
	if m.RT.Locks.InUse() != 0 {
		t.Fatalf("%d pool locks leaked", m.RT.Locks.InUse())
	}
}

func TestHandlesSurviveGC(t *testing.T) {
	src := `
class Node {
    int v;
    Node(int v) { this.v = v; }
}
class Main {
    static void churn() {
        for (int i = 0; i < 50000; i = i + 1) {
            Node n = new Node(i);
        }
    }
    static void main() { }
}
`
	p := compile(t, src)
	m, err := New(p, Config{HeapSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.NewThread(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	// Hold objects via handles, churn to force collections, verify the
	// held objects moved but stayed intact.
	var objs []Obj
	for i := 0; i < 20; i++ {
		o, err := th.NewObj("Node", I(int64(i*7)))
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o)
	}
	if _, err := th.InvokeStatic("Main", "churn"); err != nil {
		t.Fatal(err)
	}
	if m.Heap.Stats().MinorGCs+m.Heap.Stats().FullGCs == 0 {
		t.Fatal("churn did not trigger a collection")
	}
	for i, o := range objs {
		v, err := th.GetField(o, "Node", "v")
		if err != nil {
			t.Fatal(err)
		}
		if int32(v) != int32(i*7) {
			t.Fatalf("handle %d: value %d want %d", i, int32(v), i*7)
		}
	}
}

func TestBoundaryStringRoundtrip(t *testing.T) {
	src := `
class Main {
    static String echo(String s) { return s; }
    static int len(String s) { return s.length(); }
    static void main() { }
}
`
	for _, tr := range []bool{false, true} {
		p := compile(t, src)
		if tr {
			p = transform(t, p, "Main")
		}
		m, err := New(p, Config{HeapSize: 8 << 20})
		if err != nil {
			t.Fatal(err)
		}
		th, err := m.NewThread(nil)
		if err != nil {
			t.Fatal(err)
		}
		defer th.Close()
		o, err := th.NewString("hello world")
		if err != nil {
			t.Fatal(err)
		}
		got, err := th.GoString(o)
		if err != nil {
			t.Fatal(err)
		}
		if got != "hello world" {
			t.Fatalf("transformed=%v: roundtrip %q", tr, got)
		}
		n, err := th.InvokeStatic("Main", "len", S("four"))
		if err != nil {
			t.Fatal(err)
		}
		if int32(n) != 4 {
			t.Fatalf("transformed=%v: len = %d", tr, int32(n))
		}
		eo, err := th.InvokeStaticObj("Main", "echo", O(o))
		if err != nil {
			t.Fatal(err)
		}
		got, err = th.GoString(eo)
		if err != nil {
			t.Fatal(err)
		}
		if got != "hello world" {
			t.Fatalf("transformed=%v: echo %q", tr, got)
		}
	}
}

func TestBulkArrayHelpers(t *testing.T) {
	src := `class Main { static void main() { } } class D { int x; }`
	for _, tr := range []bool{false, true} {
		p := compile(t, src)
		if tr {
			p = transform(t, p, "D")
		}
		m, err := New(p, Config{HeapSize: 8 << 20})
		if err != nil {
			t.Fatal(err)
		}
		th, err := m.NewThread(nil)
		if err != nil {
			t.Fatal(err)
		}
		defer th.Close()
		ints := []int32{1, -2, 3, -4, 1 << 30}
		oi, err := th.NewIntArr(ints)
		if err != nil {
			t.Fatal(err)
		}
		back, err := th.ReadIntArr(oi)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ints {
			if back[i] != ints[i] {
				t.Fatalf("transformed=%v int[%d]=%d want %d", tr, i, back[i], ints[i])
			}
		}
		ds := []float64{0.5, -1.25, 3e10}
		od, err := th.NewDoubleArr(ds)
		if err != nil {
			t.Fatal(err)
		}
		dback, err := th.ReadDoubleArr(od)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ds {
			if dback[i] != ds[i] {
				t.Fatalf("transformed=%v double[%d]", tr, i)
			}
		}
		// Element access agrees with bulk writes.
		v, err := th.ArrGet(oi, 4)
		if err != nil {
			t.Fatal(err)
		}
		if int32(v) != 1<<30 {
			t.Fatalf("ArrGet = %d", int32(v))
		}
		if n, _ := th.ArrLen(oi); n != 5 {
			t.Fatalf("len %d", n)
		}
	}
}

func TestOOMPropagatesToBoundary(t *testing.T) {
	src := `
class Blob {
    long a; long b; long c; long d;
    Blob next;
}
class Main {
    static Blob build(int n) {
        Blob head = null;
        for (int i = 0; i < n; i = i + 1) {
            Blob b = new Blob();
            b.next = head;
            head = b;
        }
        return head;
    }
    static void main() { }
}
`
	p := compile(t, src)
	m, err := New(p, Config{HeapSize: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.NewThread(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	_, err = th.InvokeStaticObj("Main", "build", I(1<<20))
	if err == nil || !strings.Contains(err.Error(), "OutOfMemoryError") {
		t.Fatalf("want OutOfMemoryError, got %v", err)
	}
}

func TestIterationScopesAtBoundary(t *testing.T) {
	src := `class Main { static void main() { } } class D { int x; }`
	p2 := transform(t, compile(t, src), "D")
	m, err := New(p2, Config{HeapSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.NewThread(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	for i := 0; i < 50; i++ {
		th.IterationStart()
		for j := 0; j < 500; j++ {
			o, err := th.NewObj("D")
			if err != nil {
				t.Fatal(err)
			}
			th.FreeObj(o)
		}
		th.IterationEnd()
	}
	st := m.RT.Stats()
	if st.PagesLive != 0 {
		t.Fatalf("%d pages live after iterations", st.PagesLive)
	}
	if st.PagesCreated > 20 {
		t.Fatalf("%d pages created; recycling broken at boundary", st.PagesCreated)
	}
}

func TestFacadePoolBoundNeverExceeded(t *testing.T) {
	// Stress virtual calls with multiple data-typed params; facade
	// allocation happens only at thread start.
	src := `
class Pt {
    int x;
    Pt(int x) { this.x = x; }
    int add3(Pt a, Pt b, Pt c) { return this.x + a.x + b.x + c.x; }
}
class Main {
    static void main() {
        Pt p = new Pt(1);
        long sum = 0L;
        for (int i = 0; i < 10000; i = i + 1) {
            sum = sum + p.add3(new Pt(2), new Pt(3), new Pt(4));
        }
        Sys.println(sum);
    }
}
`
	p := compile(t, src)
	p2 := transform(t, p, "Pt", "Main")
	if p2.Bounds["Pt"] != 3 {
		t.Fatalf("bound for Pt = %d, want 3", p2.Bounds["Pt"])
	}
	var out bytes.Buffer
	m, err := New(p2, Config{HeapSize: 8 << 20, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.NewThread(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	if _, err := th.Call("MainFacade.main"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "100000\n" {
		t.Fatalf("got %q", out.String())
	}
	fc := p2.H.Class("PtFacade")
	n := m.Heap.ClassAllocCount(fc)
	if n > int64(p2.Bounds["Pt"]+1) {
		t.Fatalf("allocated %d PtFacades, bound+receiver = %d", n, p2.Bounds["Pt"]+1)
	}
}

func TestNullDataArgAtBoundary(t *testing.T) {
	// A null data reference passed across the boundary of a transformed
	// program must arrive as FJ null (a null-bound facade), matching
	// generated call sites.
	src := `
class D {
    int v;
    D(int v) { this.v = v; }
    static int probe(D d) {
        if (d == null) { return -1; }
        return d.v;
    }
    int touch(D other) {
        if (other == null) { return -2; }
        return other.v;
    }
}
class Main { static void main() { } }
`
	p := compile(t, src)
	for name, prog := range map[string]*ir.Program{"P": p, "P'": transform(t, p, "D")} {
		m, err := New(prog, Config{HeapSize: 8 << 20})
		if err != nil {
			t.Fatal(err)
		}
		th, err := m.NewThread(nil)
		if err != nil {
			t.Fatal(err)
		}
		defer th.Close()
		v, err := th.InvokeStatic("D", "probe", O(NilObj))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if int32(v) != -1 {
			t.Fatalf("%s: probe(null) = %d", name, int32(v))
		}
		d, err := th.NewObj("D", I(9))
		if err != nil {
			t.Fatal(err)
		}
		v, err = th.Invoke(d, "touch", O(NilObj))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if int32(v) != -2 {
			t.Fatalf("%s: touch(null) = %d", name, int32(v))
		}
		v, err = th.Invoke(d, "touch", O(d))
		if err != nil {
			t.Fatal(err)
		}
		if int32(v) != 9 {
			t.Fatalf("%s: touch(d) = %d", name, int32(v))
		}
	}
}

func TestVTableDispatchDeep(t *testing.T) {
	src := `
class A { int f() { return 1; } int g() { return 10; } }
class B extends A { int f() { return 2; } }
class C extends B { int g() { return 30; } }
class Main {
    static void main() {
        A[] xs = new A[3];
        xs[0] = new A();
        xs[1] = new B();
        xs[2] = new C();
        for (int i = 0; i < 3; i = i + 1) {
            Sys.println(xs[i].f() * 100 + xs[i].g());
        }
    }
}
`
	out := runMain(t, compile(t, src), 8<<20)
	if out != "110\n210\n230\n" {
		t.Fatalf("got %q", out)
	}
}
