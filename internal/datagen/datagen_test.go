package datagen

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestPowerLawGraphDeterministic(t *testing.T) {
	a := PowerLawGraph(500, 4000, 7)
	b := PowerLawGraph(500, 4000, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for i := range a.Src {
		if a.Src[i] != b.Src[i] || a.Dst[i] != b.Dst[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	c := PowerLawGraph(500, 4000, 8)
	same := true
	for i := range a.Src {
		if a.Dst[i] != c.Dst[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestPowerLawGraphInvariants(t *testing.T) {
	check := func(seed uint64) bool {
		v := 50 + int(seed%200)
		e := v * 8
		g := PowerLawGraph(v, e, seed)
		if g.NumEdges() != e {
			return false
		}
		var inSum, outSum int64
		for i := 0; i < v; i++ {
			inSum += int64(g.InDeg[i])
			outSum += int64(g.OutDeg[i])
		}
		if inSum != int64(e) || outSum != int64(e) {
			return false
		}
		for i := range g.Src {
			if g.Src[i] < 0 || int(g.Src[i]) >= v || g.Dst[i] < 0 || int(g.Dst[i]) >= v {
				return false
			}
			if g.Src[i] == g.Dst[i] {
				return false // no self loops
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawSkew(t *testing.T) {
	g := PowerLawGraph(10000, 200000, 3)
	// Heavy tail: the top-100 vertices by ID should hold a
	// disproportionate share of in-edges.
	var top, total int64
	for v := 0; v < g.NumVertices; v++ {
		total += int64(g.InDeg[v])
		if v < 100 {
			top += int64(g.InDeg[v])
		}
	}
	if float64(top)/float64(total) < 0.15 {
		t.Fatalf("top-1%% of vertices hold only %.1f%% of in-edges; not skewed",
			100*float64(top)/float64(total))
	}
}

func TestCorpusProperties(t *testing.T) {
	c := Corpus(50000, 5)
	if len(c) < 50000 {
		t.Fatalf("corpus too short: %d", len(c))
	}
	words := strings.Fields(string(c))
	if len(words) < 5000 {
		t.Fatalf("too few words: %d", len(words))
	}
	// Zipf-ish: "the" must dominate.
	freq := map[string]int{}
	for _, w := range words {
		freq[w]++
	}
	if freq["the"] < freq["scan"] {
		t.Fatal("no rank skew in corpus")
	}
	// Determinism.
	if !bytes.Equal(c, Corpus(50000, 5)) {
		t.Fatal("corpus not deterministic")
	}
}

func TestCorpusSkewedUniqueGrowth(t *testing.T) {
	small := CorpusSkewed(20000, 300, 9)
	large := CorpusSkewed(80000, 300, 9)
	distinct := func(b []byte) int {
		m := map[string]bool{}
		for _, w := range strings.Fields(string(b)) {
			m[w] = true
		}
		return len(m)
	}
	ds, dl := distinct(small), distinct(large)
	if dl < ds*2 {
		t.Fatalf("distinct words do not grow with data: %d -> %d", ds, dl)
	}
}

func TestPartitionCoversOnWordBoundaries(t *testing.T) {
	data := Corpus(10000, 1)
	parts := Partition(data, 4)
	if len(parts) != 4 {
		t.Fatalf("%d parts", len(parts))
	}
	var total int
	for i, p := range parts {
		total += len(p)
		if i < len(parts)-1 && len(p) > 0 {
			last := p[len(p)-1]
			next := parts[i+1]
			if last != ' ' && last != '\n' && len(next) > 0 && next[0] != ' ' && next[0] != '\n' {
				t.Fatalf("partition %d splits a word", i)
			}
		}
	}
	if total != len(data) {
		t.Fatalf("partitions cover %d of %d bytes", total, len(data))
	}
	// Words preserved across partitioning.
	var rejoined []byte
	for _, p := range parts {
		rejoined = append(rejoined, p...)
	}
	if !bytes.Equal(rejoined, data) {
		t.Fatal("partitions reorder data")
	}
}

func TestSortRecordsShape(t *testing.T) {
	recs := SortRecords(100, 8, 24, 2)
	if len(recs) != 100 {
		t.Fatal("count")
	}
	for _, r := range recs {
		if len(r) != 32 {
			t.Fatal("record length")
		}
		for _, b := range r[:8] {
			if b < 'a' || b > 'z' {
				t.Fatal("key charset")
			}
		}
		for _, b := range r[8:] {
			if b < 'A' || b > 'Z' {
				t.Fatal("payload charset")
			}
		}
	}
	again := SortRecords(100, 8, 24, 2)
	for i := range recs {
		if !bytes.Equal(recs[i], again[i]) {
			t.Fatal("not deterministic")
		}
	}
}
