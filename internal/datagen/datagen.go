// Package datagen produces deterministic synthetic datasets standing in
// for the paper's inputs: power-law directed graphs shaped like
// twitter-2010 / LiveJournal (for GraphChi and GPS) and skewed text
// corpora shaped like the Yahoo AltaVista-derived text files (for
// Hyracks). Sizes are parameters so the same generators serve unit tests,
// benchmarks, and full experiment runs.
package datagen

import "fmt"

// rng is splitmix64: tiny, fast, deterministic across platforms.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// Graph is a directed graph in flat edge-list form, sorted by source.
type Graph struct {
	NumVertices int
	Src, Dst    []int32
	OutDeg      []int32
	InDeg       []int32
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Src) }

// PowerLawGraph generates a directed graph with a heavy-tailed in-degree
// distribution: each edge's destination is drawn by preferential-style
// skew (low vertex IDs act as celebrities, as in the twitter-2010 graph),
// and out-degrees vary around the average. Deterministic in (v, e, seed).
func PowerLawGraph(v, e int, seed uint64) *Graph {
	if v < 2 {
		panic(fmt.Sprintf("datagen: graph needs >=2 vertices, got %d", v))
	}
	r := &rng{s: seed*0x9e3779b97f4a7c15 + 1}
	g := &Graph{
		NumVertices: v,
		Src:         make([]int32, 0, e),
		Dst:         make([]int32, 0, e),
		OutDeg:      make([]int32, v),
		InDeg:       make([]int32, v),
	}
	avg := e / v
	if avg < 1 {
		avg = 1
	}
	for s := 0; s < v && g.NumEdges() < e; s++ {
		// Out-degree: 1..4*avg, skewed low.
		d := 1 + r.intn(avg) + r.intn(avg)*r.intn(4)/2
		for k := 0; k < d && g.NumEdges() < e; k++ {
			// Destination: power-law preference for low IDs.
			f := r.float()
			t := int(f * f * f * float64(v))
			if t >= v {
				t = v - 1
			}
			if t == s {
				t = (t + 1) % v
			}
			g.Src = append(g.Src, int32(s))
			g.Dst = append(g.Dst, int32(t))
			g.OutDeg[s]++
			g.InDeg[t]++
		}
	}
	// Top up to exactly e edges with uniform sources.
	for g.NumEdges() < e {
		s := r.intn(v)
		t := r.intn(v)
		if t == s {
			t = (t + 1) % v
		}
		g.Src = append(g.Src, int32(s))
		g.Dst = append(g.Dst, int32(t))
		g.OutDeg[s]++
		g.InDeg[t]++
	}
	return g
}

// Scale returns a subgraph with roughly the given number of edges, built
// by regenerating at smaller size with the same seed family — used by the
// Figure 4(a) throughput sweep.
func Scale(v, e int, seed uint64) *Graph { return PowerLawGraph(v, e, seed) }

// Words is the vocabulary used by Corpus, with Zipf-like draw weights.
var words = []string{
	"the", "of", "and", "to", "in", "a", "is", "that", "for", "it",
	"data", "graph", "page", "rank", "node", "edge", "query", "index",
	"web", "link", "user", "time", "system", "value", "key", "map",
	"reduce", "sort", "count", "word", "heap", "memory", "object",
	"facade", "iteration", "record", "cluster", "shard", "vertex",
	"stream", "batch", "join", "group", "hash", "scan", "store",
}

// Corpus generates approximately size bytes of whitespace-separated text
// with a Zipf-like word distribution, split into lines of ~60 chars.
// Deterministic in (size, seed).
func Corpus(size int, seed uint64) []byte {
	return CorpusSkewed(size, 0, seed)
}

// CorpusSkewed is Corpus with a controllable share of unique tokens: out
// of every 1000 words, uniquePerMille are fresh identifiers (URLs/IDs in
// web data), which makes the distinct-word set — and hence a word-count
// job's live hash map — grow with the dataset, the property behind the
// paper's WC OutOfMemory failures (Table 3).
func CorpusSkewed(size, uniquePerMille int, seed uint64) []byte {
	r := &rng{s: seed*0x51afd4ce + 7}
	out := make([]byte, 0, size+64)
	lineLen := 0
	uniq := 0
	var buf [24]byte
	for len(out) < size {
		var w []byte
		if uniquePerMille > 0 && r.intn(1000) < uniquePerMille {
			// Fresh token: "u" + counter in base 26.
			n := uniq
			uniq++
			k := len(buf)
			for {
				k--
				buf[k] = byte('a' + n%26)
				n /= 26
				if n == 0 {
					break
				}
			}
			k--
			buf[k] = 'u'
			w = buf[k:]
		} else {
			f := r.float()
			rank := int(f * f * float64(len(words)))
			if rank >= len(words) {
				rank = len(words) - 1
			}
			w = []byte(words[rank])
		}
		out = append(out, w...)
		lineLen += len(w) + 1
		if lineLen > 60 {
			out = append(out, '\n')
			lineLen = 0
		} else {
			out = append(out, ' ')
		}
	}
	out = append(out, '\n')
	return out
}

// Partition splits data into n nearly equal byte chunks on whitespace
// boundaries where possible.
func Partition(data []byte, n int) [][]byte {
	if n <= 1 {
		return [][]byte{data}
	}
	out := make([][]byte, 0, n)
	per := len(data) / n
	start := 0
	for i := 0; i < n; i++ {
		end := start + per
		if i == n-1 || end >= len(data) {
			end = len(data)
		} else {
			for end < len(data) && data[end] != ' ' && data[end] != '\n' {
				end++
			}
		}
		out = append(out, data[start:end])
		start = end
	}
	return out
}

// SortRecords generates n fixed-width records (key + payload) for the
// external-sort workload; keys are uniformly random strings.
func SortRecords(n int, keyLen, payloadLen int, seed uint64) [][]byte {
	r := &rng{s: seed*0xdeadbeef + 13}
	out := make([][]byte, n)
	for i := range out {
		rec := make([]byte, keyLen+payloadLen)
		for j := 0; j < keyLen; j++ {
			rec[j] = byte('a' + r.intn(26))
		}
		for j := keyLen; j < len(rec); j++ {
			rec[j] = byte('A' + r.intn(26))
		}
		out[i] = rec
	}
	return out
}
