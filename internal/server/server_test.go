package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// seededSrc prints a value derived from Sys.rand, so runs with different
// seeds produce different output — any state bleeding between pooled runs
// shows up as a wrong sum.
const seededSrc = `
class Main {
    static void main() {
        long acc = 0L;
        for (int i = 0; i < 500; i = i + 1) {
            acc = acc + Sys.rand(100000);
        }
        Sys.println(acc);
    }
}
`

// churnSrc allocates data-class records across iterations — the workload
// shape that exercises the page store under -transform and the GC under
// plain runs.
const churnSrc = `
// facadec: data=Rec,Main
class Rec {
    long a;
    long b;
    Rec(long a) { this.a = a; this.b = a * 2L; }
}
class Main {
    static void main() {
        long acc = 0L;
        for (int it = 0; it < 10; it = it + 1) {
            Sys.iterStart();
            for (int i = 0; i < 2000; i = i + 1) {
                Rec r = new Rec(i);
                acc = acc + r.b;
            }
            Sys.iterEnd();
        }
        Sys.println(acc);
    }
}
`

// slowSrc runs long enough (hundreds of ms at interpreter speed) for a
// cancel request to land while it is executing.
const slowSrc = `
class Main {
    static void main() {
        long acc = 0L;
        for (long i = 0L; i < 2000000000L; i = i + 1) {
            acc = acc + i;
        }
        Sys.println(acc);
    }
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, stop := context.WithTimeout(context.Background(), 30*time.Second)
		defer stop()
		s.Shutdown(ctx)
	})
	return s, &Client{BaseURL: "http://" + s.Addr()}
}

// oneShot runs the same request through facade.Run directly — the oracle
// daemon outputs must match byte for byte.
func oneShot(t *testing.T, req SubmitRequest) string {
	t.Helper()
	req.Schema = Schema
	out, _, err := OneShot(req)
	if err != nil {
		t.Fatalf("one-shot: %v", err)
	}
	return out
}

func submitWait(t *testing.T, c *Client, req SubmitRequest) JobStatus {
	t.Helper()
	resp, err := c.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := c.Wait(resp.JobID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	return st
}

func TestWarmReuseBitIdenticalToOneShot(t *testing.T) {
	_, c := newTestServer(t, Config{MaxConcurrent: 1})
	seed := int64(5)
	req := SubmitRequest{
		Sources:  map[string]string{"s.fj": seededSrc},
		HeapSize: 8 << 20,
		RandSeed: &seed,
	}
	want := oneShot(t, req)

	first := submitWait(t, c, req)
	if first.State != StateDone {
		t.Fatalf("first job: %s (%s)", first.State, first.Error)
	}
	if first.WarmHit {
		t.Fatal("first job cannot be a warm hit")
	}
	if first.Output != want {
		t.Fatalf("cold run diverges from one-shot: %q vs %q", first.Output, want)
	}

	second := submitWait(t, c, req)
	if second.State != StateDone {
		t.Fatalf("second job: %s (%s)", second.State, second.Error)
	}
	if !second.WarmHit {
		t.Fatal("second identical job must reuse the warm VM")
	}
	if second.Output != want {
		t.Fatalf("warm run diverges from one-shot: %q vs %q", second.Output, want)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.WarmHits < 1 {
		t.Fatalf("server.warm_hits = %d, want >= 1", st.WarmHits)
	}
	if second.Stats == nil || second.Stats.VM.Instructions == 0 {
		t.Fatal("job status carries no run stats")
	}
}

func TestWarmReuseAcrossTransformedRuns(t *testing.T) {
	_, c := newTestServer(t, Config{MaxConcurrent: 1})
	req := SubmitRequest{
		Sources:   map[string]string{"churn.fj": churnSrc},
		Transform: true,
		HeapSize:  8 << 20,
	}
	want := oneShot(t, req)
	first := submitWait(t, c, req)
	second := submitWait(t, c, req)
	for i, st := range []JobStatus{first, second} {
		if st.State != StateDone {
			t.Fatalf("job %d: %s (%s)", i, st.State, st.Error)
		}
		if st.Output != want {
			t.Fatalf("job %d diverges from one-shot: %q vs %q", i, st.Output, want)
		}
	}
	if !second.WarmHit {
		t.Fatal("transformed rerun must hit the warm pool")
	}
	if second.Stats.Offheap.Records == 0 {
		t.Fatal("transformed run recorded no off-heap records")
	}
}

// TestTieredJobOnWarmPool: a job running with the off-heap disk tier must
// produce output bit-identical to an untiered one-shot of the same
// request, report its spill traffic in the job stats, and leave no spill
// file behind once its VM returns to the warm pool (put-time reset tears
// the tier down). The warm rerun re-enables the tier from scratch.
func TestTieredJobOnWarmPool(t *testing.T) {
	// Unlike churnSrc, this workload keeps records live across iterations
	// (the pad arrays give each record real bulk), so the resident page
	// set genuinely exceeds a small watermark and pages must spill.
	const tieredSrc = `
// facadec: data=Big,Main
class Big {
    long a;
    int[] pad;
    Big(long a) { this.a = a; this.pad = new int[900]; }
}
class Main {
    static void main() {
        Big[] keep = new Big[30];
        for (int i = 0; i < 30; i = i + 1) { keep[i] = new Big(i * 17L); }
        long acc = 0L;
        for (int it = 0; it < 5; it = it + 1) {
            Sys.iterStart();
            for (int i = 0; i < 200; i = i + 1) {
                Big b = new Big(i);
                acc = acc + b.a + b.pad.length;
            }
            Sys.iterEnd();
            for (int i = 0; i < 30; i = i + 1) { acc = acc + keep[i].a; }
        }
        Sys.println(acc);
    }
}
`
	_, c := newTestServer(t, Config{MaxConcurrent: 1})
	tierDir := t.TempDir()
	req := SubmitRequest{
		Sources:   map[string]string{"tiered.fj": tieredSrc},
		Transform: true,
		HeapSize:  8 << 20,
	}
	want := oneShot(t, req) // untiered oracle

	req.TierDir = tierDir
	req.TierHighPages = 2
	req.TierLowPages = 1
	first := submitWait(t, c, req)
	second := submitWait(t, c, req)
	for i, st := range []JobStatus{first, second} {
		if st.State != StateDone {
			t.Fatalf("job %d: %s (%s)", i, st.State, st.Error)
		}
		if st.Output != want {
			t.Fatalf("tiered job %d diverges from untiered one-shot: %q vs %q", i, st.Output, want)
		}
		if st.Stats == nil || st.Stats.Offheap.PagesSpilled == 0 {
			t.Fatalf("tiered job %d reports no spill traffic", i)
		}
	}
	if !second.WarmHit {
		t.Fatal("tiered rerun must hit the warm pool")
	}
	// The put-time reset closes the tier; the spill file must be gone
	// shortly after the last job reaches a terminal state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ents, err := os.ReadDir(tierDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spill files leaked after jobs finished: %v", ents)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFaultCrashDoesNotPoisonPool is the chaos case from the issue: a
// tenant job crashing mid-run (injected faults) must leave the daemon
// healthy, and the next job on the same program must succeed with
// bit-identical output.
func TestFaultCrashDoesNotPoisonPool(t *testing.T) {
	for _, transform := range []bool{false, true} {
		t.Run(fmt.Sprintf("transform=%v", transform), func(t *testing.T) {
			_, c := newTestServer(t, Config{MaxConcurrent: 1})
			clean := SubmitRequest{
				Sources:   map[string]string{"churn.fj": churnSrc},
				Transform: transform,
				HeapSize:  8 << 20,
			}
			want := oneShot(t, clean)

			// Prime the pool with a successful run, then crash one.
			if st := submitWait(t, c, clean); st.State != StateDone {
				t.Fatalf("prime: %s (%s)", st.State, st.Error)
			}
			crash := clean
			crash.Faults = "alloc=1,page=1,seed=3"
			st := submitWait(t, c, crash)
			if st.State != StateFailed {
				t.Fatalf("fault job: got %s (output %q), want failed", st.State, st.Output)
			}

			// The crash must not poison the pool: the next clean job
			// succeeds and replays the exact one-shot output.
			after := submitWait(t, c, clean)
			if after.State != StateDone {
				t.Fatalf("post-crash job: %s (%s)", after.State, after.Error)
			}
			if after.Output != want {
				t.Fatalf("post-crash output diverges: %q vs %q", after.Output, want)
			}
			status, err := c.Status()
			if err != nil {
				t.Fatal(err)
			}
			if status.JobsFailed != 1 || status.JobsDone != 2 {
				t.Fatalf("status: done=%d failed=%d, want 2/1", status.JobsDone, status.JobsFailed)
			}
		})
	}
}

func TestAggregateBudgetRejectsWithRetryAfter(t *testing.T) {
	_, c := newTestServer(t, Config{HeapBudget: 32 << 20})
	_, err := c.Submit(SubmitRequest{
		Sources:  map[string]string{"s.fj": seededSrc},
		HeapSize: 64 << 20,
	})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("got %v, want RejectedError", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", rej.RetryAfter)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsRejected != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", st.JobsRejected)
	}
}

func TestTenantBudgetIsolation(t *testing.T) {
	_, c := newTestServer(t, Config{
		MaxConcurrent: 1,
		TenantBudgets: map[string]int64{"small": 64 << 20},
	})
	// A slow job from "small" holds its 48 MiB reservation...
	slow, err := c.Submit(SubmitRequest{
		Tenant:   "small",
		Sources:  map[string]string{"slow.fj": slowSrc},
		HeapSize: 48 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ...so a second 48 MiB job from the same tenant is over budget...
	_, err = c.Submit(SubmitRequest{
		Tenant:   "small",
		Sources:  map[string]string{"s.fj": seededSrc},
		HeapSize: 48 << 20,
	})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("same-tenant overcommit: got %v, want RejectedError", err)
	}
	if !strings.Contains(rej.Message, `tenant "small"`) {
		t.Fatalf("rejection does not name the tenant: %s", rej.Message)
	}
	// ...while another tenant is unaffected.
	other, err := c.Submit(SubmitRequest{
		Tenant:   "other",
		Sources:  map[string]string{"s.fj": seededSrc},
		HeapSize: 48 << 20,
	})
	if err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	if _, err := c.Cancel(slow.JobID); err != nil {
		t.Fatal(err)
	}
	if st, err := c.Wait(other.JobID); err != nil || st.State != StateDone {
		t.Fatalf("other tenant job: %v %s (%s)", err, st.State, st.Error)
	}
}

func TestConcurrentTenantsDeterministic(t *testing.T) {
	_, c := newTestServer(t, Config{MaxConcurrent: 4})
	const n = 8
	seeds := make([]int64, n)
	wants := make([]string, n)
	for i := range seeds {
		seeds[i] = int64(100 + i*17)
		wants[i] = oneShot(t, SubmitRequest{
			Sources:  map[string]string{"s.fj": seededSrc},
			HeapSize: 8 << 20,
			RandSeed: &seeds[i],
		})
	}
	var wg sync.WaitGroup
	outs := make([]JobStatus, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Submit(SubmitRequest{
				Tenant:   fmt.Sprintf("tenant-%d", i%3),
				Priority: i % 2,
				Sources:  map[string]string{"s.fj": seededSrc},
				HeapSize: 8 << 20,
				RandSeed: &seeds[i],
			})
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = c.Wait(resp.JobID)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if outs[i].State != StateDone {
			t.Fatalf("job %d: %s (%s)", i, outs[i].State, outs[i].Error)
		}
		if outs[i].Output != wants[i] {
			t.Fatalf("job %d (seed %d) diverges under concurrency: %q vs %q",
				i, seeds[i], outs[i].Output, wants[i])
		}
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.WarmHits == 0 {
		t.Fatal("concurrent identical programs produced no warm hits")
	}
	if st.HeapReserved != 0 {
		t.Fatalf("heap still reserved after all jobs done: %d", st.HeapReserved)
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, c := newTestServer(t, Config{})
	resp, err := c.Submit(SubmitRequest{
		Sources:  map[string]string{"slow.fj": slowSrc},
		HeapSize: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually executing so the cancel exercises the
	// interpreter's safepoint poll, not the queue path.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Job(resp.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Cancel(resp.JobID); err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(resp.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if !strings.Contains(st.Error, "canceled") {
		t.Fatalf("error %q does not mention cancellation", st.Error)
	}
}

func TestPageQuotaEnforced(t *testing.T) {
	_, c := newTestServer(t, Config{})
	req := SubmitRequest{
		Sources:   map[string]string{"churn.fj": churnSrc},
		Transform: true,
		HeapSize:  8 << 20,
		PageQuota: 1,
	}
	st := submitWait(t, c, req)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed under 1-page quota", st.State)
	}
	if !strings.Contains(st.Error, "quota") {
		t.Fatalf("error %q does not mention the quota", st.Error)
	}
}

func TestIdleAutoShutdownRemovesPortFile(t *testing.T) {
	pf := t.TempDir() + "/port.json"
	s, err := New(Config{PortFile: pf, IdleTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Discover(pf); err != nil {
		t.Fatalf("discovery before idle: %v", err)
	}
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after idle timeout")
	}
	if _, err := os.Stat(pf); !os.IsNotExist(err) {
		t.Fatalf("port file still present after shutdown: %v", err)
	}
}

func TestShutdownEndpointDrains(t *testing.T) {
	s, c := newTestServer(t, Config{})
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not stop after POST /v1/shutdown")
	}
	// Submissions after shutdown fail at the transport or admission layer.
	if _, err := c.Submit(SubmitRequest{Sources: map[string]string{"s.fj": seededSrc}}); err == nil {
		t.Fatal("submit succeeded against a stopped daemon")
	}
}

func TestCompileErrorFailsJob(t *testing.T) {
	_, c := newTestServer(t, Config{})
	st := submitWait(t, c, SubmitRequest{
		Sources: map[string]string{"bad.fj": "class Main { static void main() { this is not fj } }"},
	})
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "compile") {
		t.Fatalf("error %q does not mention compilation", st.Error)
	}
}
