package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/facade"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/vm"
)

// progKey identifies a compiled (and possibly transformed) program by its
// inputs, so two jobs submitting identical sources share one *ir.Program —
// the pointer identity facade.WithReusedVM keys on.
type progKey string

func programKey(req *SubmitRequest) progKey {
	h := sha256.New()
	names := make([]string, 0, len(req.Sources))
	for n := range req.Sources {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "%s\x00%d\x00%s\x00", n, len(req.Sources[n]), req.Sources[n])
	}
	fmt.Fprintf(h, "transform=%v\x00", req.Transform)
	for _, c := range req.DataClasses {
		fmt.Fprintf(h, "data=%s\x00", c)
	}
	return progKey(hex.EncodeToString(h.Sum(nil)))
}

// progCache compiles each distinct source set once and reuses the
// resulting *ir.Program for every later job, concurrent compiles of the
// same key collapsing into one. Bounded: past cap entries, the least
// recently used program is evicted so a daemon serving many distinct
// source sets does not retain them all forever.
type progCache struct {
	mu      sync.Mutex
	cap     int
	tick    int64
	entries map[progKey]*progEntry
}

type progEntry struct {
	once sync.Once
	prog *ir.Program
	err  error
	last int64 // recency stamp, guarded by progCache.mu
}

func newProgCache(capacity int) *progCache {
	return &progCache{cap: capacity, entries: make(map[progKey]*progEntry)}
}

func (pc *progCache) get(key progKey, build func() (*ir.Program, error)) (*ir.Program, error) {
	pc.mu.Lock()
	e, ok := pc.entries[key]
	if !ok {
		e = &progEntry{}
		pc.entries[key] = e
		if pc.cap > 0 && len(pc.entries) > pc.cap {
			pc.evictLRULocked(key)
		}
	}
	pc.tick++
	e.last = pc.tick
	pc.mu.Unlock()
	// An evicted entry still completes its build for the goroutines
	// holding it; the result just is not cached for later jobs.
	e.once.Do(func() { e.prog, e.err = build() })
	return e.prog, e.err
}

// evictLRULocked removes the least recently used entry other than keep.
// Caller holds pc.mu.
func (pc *progCache) evictLRULocked(keep progKey) {
	var victim progKey
	found := false
	var min int64
	for k, e := range pc.entries {
		if k == keep {
			continue
		}
		if !found || e.last < min {
			found, min, victim = true, e.last, k
		}
	}
	if found {
		delete(pc.entries, victim)
	}
}

// compileRequest builds the program a submit request describes: compile
// the sources, then optionally apply the FACADE transform using explicit
// data classes or in-source directives.
func compileRequest(req *SubmitRequest) (*ir.Program, error) {
	prog, err := facade.Compile(req.Sources)
	if err != nil {
		return nil, err
	}
	if !req.Transform {
		return prog, nil
	}
	data := req.DataClasses
	if len(data) == 0 {
		for _, src := range req.Sources {
			data = append(data, facade.DataClassesDirective(src)...)
		}
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("transform requested but no data classes given and no facadec directive found")
	}
	return facade.Transform(prog, facade.TransformOptions{DataClasses: data})
}

// vmKey identifies a warm-pool bucket: a VM is only reusable for runs of
// the same program at the same heap size.
type vmKey struct {
	prog progKey
	heap int
}

// warmPool keeps reset-verified VMs for reuse. Entries are verified at
// put time: a VM that fails ResetForReuse (leaked threads, live pages —
// the signature of a job that crashed mid-iteration) is dropped and
// counted as a pool rebuild instead of poisoning later jobs.
type warmPool struct {
	mu      sync.Mutex
	entries map[vmKey][]*vm.VM
	size    int
	cap     int

	hits     *obs.Counter
	misses   *obs.Counter
	rebuilds *obs.Counter
	gauge    *obs.Gauge
}

func newWarmPool(capacity int, reg *obs.Registry) *warmPool {
	return &warmPool{
		entries:  make(map[vmKey][]*vm.VM),
		cap:      capacity,
		hits:     reg.Counter(obs.CtrServerWarmHits),
		misses:   reg.Counter(obs.CtrServerWarmMisses),
		rebuilds: reg.Counter(obs.CtrServerPoolDrops),
		gauge:    reg.Gauge(obs.GaugeServerWarmPool),
	}
}

// take pops a warm VM for the given program and heap size, or returns nil
// on a miss.
func (wp *warmPool) take(key vmKey) *vm.VM {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	vs := wp.entries[key]
	if len(vs) == 0 {
		wp.misses.Add(1)
		return nil
	}
	m := vs[len(vs)-1]
	wp.entries[key] = vs[:len(vs)-1]
	wp.size--
	wp.gauge.Set(int64(wp.size))
	wp.hits.Add(1)
	return m
}

// put verifies a VM is safe to reuse and returns it to the pool. The
// verification is a full ResetForReuse: it fails exactly when the VM
// still has registered threads or live off-heap pages — the state a
// mid-run crash can leave behind — and such VMs are discarded (counted
// under server.pool_rebuilds) rather than stored.
func (wp *warmPool) put(key vmKey, m *vm.VM) {
	if m == nil {
		return
	}
	if err := m.ResetForReuse(vm.ResetConfig{Out: io.Discard, RandSeed: 1}); err != nil {
		wp.rebuilds.Add(1)
		return
	}
	wp.mu.Lock()
	defer wp.mu.Unlock()
	if wp.size >= wp.cap {
		return
	}
	wp.entries[key] = append(wp.entries[key], m)
	wp.size++
	wp.gauge.Set(int64(wp.size))
}

// drop discards a taken VM that turned out to be unusable (e.g. its
// program was evicted from the cache and recompiled, so the pointer
// identity WithReusedVM requires no longer holds), counting it as a pool
// rebuild.
func (wp *warmPool) drop() { wp.rebuilds.Add(1) }

// len reports the number of pooled VMs.
func (wp *warmPool) len() int {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	return wp.size
}
