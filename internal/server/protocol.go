// Package server implements the repro serve daemon: a multi-tenant
// runtime-as-a-service layer over facade.RunContext. The daemon keeps a
// pool of warm VMs (heap arena, dispatch tables, facade metadata, and the
// recycled page pool survive across jobs), admits concurrent job
// submissions under per-tenant heap budgets and off-heap page quotas, and
// speaks the versioned facade.job/v1 HTTP/JSON protocol documented in
// docs/SERVER.md.
//
// The thin client in this package (Client, EnsureServer) discovers a
// running daemon through its port file and auto-starts one when none is
// listening, so `repro submit` works without a separate daemon-management
// step — the clangd/gopls model of a transparently managed long-lived
// server behind a short-lived CLI.
package server

import (
	"fmt"
	"io"
	"time"

	"repro/facade"
	"repro/internal/obs"
)

// Schema versions the job protocol. Every request and response carries
// it; the daemon rejects requests whose schema it does not understand, so
// a stale client never silently runs against an incompatible server.
const Schema = "facade.job/v1"

// Job states, as reported in JobStatus.State.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Failure kinds, as reported in JobStatus.ErrorKind for failed/canceled
// jobs. They drive the daemon's retry policy (docs/ROBUSTNESS.md):
// transient failures are re-run automatically up to MaxAttempts with
// capped exponential backoff; deterministic ones fail fast — re-running a
// deterministic program against the same inputs can only fail the same
// way.
const (
	// ErrKindTransient: injected crash faults, warm-pool reset failures —
	// environment trouble, not a property of the program.
	ErrKindTransient = "transient"
	// ErrKindDeterministic: compile/verify/lint errors, OutOfMemoryError,
	// page-quota exhaustion — retrying cannot change the outcome.
	ErrKindDeterministic = "deterministic"
	// ErrKindDeadline: the job exceeded its deadline_ms (typed as
	// *DeadlineError on the client, never retried).
	ErrKindDeadline = "deadline"
	// ErrKindCanceled: canceled by the client or by daemon shutdown.
	ErrKindCanceled = "canceled"
)

// Daemon lifecycle phases, as reported by GET /v1/readyz and
// ServerStatus.Phase. The daemon is ready exactly when it is in
// PhaseReady; while replaying the journal or draining it answers 503 so
// load balancers and auto-start clients hold new work back.
const (
	PhaseReplaying = "replaying"
	PhaseReady     = "ready"
	PhaseDraining  = "draining"
	PhaseStopping  = "stopping"
)

// DeadlineError reports that a job exceeded its deadline_ms budget. The
// daemon enforces the deadline through the interpreter's safepoint
// cancellation, so a runaway job is stopped at the next call or loop
// back-edge; JobStatus.Err surfaces the same typed error client-side.
type DeadlineError struct {
	JobID string
	Limit time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("job %s exceeded its deadline of %v", e.JobID, e.Limit)
}

// SubmitRequest asks the daemon to compile and run an FJ program.
type SubmitRequest struct {
	Schema string `json:"schema"`
	// Tenant names the submitting tenant for budget accounting. Empty
	// means the "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders the admission queue: higher runs sooner. Ties run
	// in submission order.
	Priority int `json:"priority,omitempty"`

	// Sources maps file names to FJ source text.
	Sources map[string]string `json:"sources"`
	// Transform applies the FACADE transform before running (program P').
	Transform bool `json:"transform,omitempty"`
	// DataClasses names the data classes for the transform. When empty,
	// the daemon falls back to "// facadec: data=..." directives in the
	// sources.
	DataClasses []string `json:"data_classes,omitempty"`

	// Entry is the entry function key (default "Main.main").
	Entry string `json:"entry,omitempty"`
	// HeapSize is the managed heap budget in bytes (default 64 MiB). It
	// is also the amount reserved against the tenant and aggregate
	// budgets while the job is queued or running.
	HeapSize int `json:"heap_size,omitempty"`
	// PageQuota caps the job's live off-heap pages (0 = unlimited).
	PageQuota int64 `json:"page_quota,omitempty"`
	// TierDir enables the off-heap disk tier for transformed jobs: cold
	// pages spill to a file under this directory once more than
	// TierHighPages are resident in DRAM, evicting down to TierLowPages.
	// Empty TierDir with TierHighPages > 0 spills to the daemon's temp
	// directory. With a PageQuota the job spills before the quota fails.
	TierDir string `json:"tier_dir,omitempty"`
	// TierHighPages is the DRAM high watermark in pages (0 = no tier).
	TierHighPages int `json:"tier_high_pages,omitempty"`
	// TierLowPages is the eviction target (default TierHighPages / 2).
	TierLowPages int `json:"tier_low_pages,omitempty"`
	// RandSeed seeds Sys.rand; nil means the default seed 1 (the pointer
	// distinguishes "unset" from an explicit zero seed).
	RandSeed *int64 `json:"rand_seed,omitempty"`
	// Faults is a deterministic fault-injection spec
	// ("alloc=0.001,page=0.001,seed=7"); empty disables injection.
	Faults string `json:"faults,omitempty"`

	// DeadlineMillis bounds the job's end-to-end time (queued + every
	// attempt). A job past its deadline fails with a typed DeadlineError;
	// 0 means no deadline. Recovery replay restarts the budget: the
	// deadline bounds service latency, not wall-clock survival across
	// daemon crashes.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// MaxAttempts caps automatic re-runs after transient failures
	// (injected crash faults, warm-pool reset failures). 0 or 1 means no
	// retry; deterministic failures never retry regardless. Capped at 8.
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// SubmitResponse acknowledges an admitted job.
type SubmitResponse struct {
	Schema string `json:"schema"`
	JobID  string `json:"job_id"`
	State  string `json:"state"`
}

// JobStatus reports one job's lifecycle, output, and measurements.
type JobStatus struct {
	Schema string `json:"schema"`
	JobID  string `json:"job_id"`
	Tenant string `json:"tenant"`
	State  string `json:"state"`

	// WarmHit reports whether the job ran on a reused warm VM instead of
	// a freshly built one.
	WarmHit bool `json:"warm_hit"`

	// Output is the program's Sys.print output (terminal states only).
	Output string `json:"output,omitempty"`
	// Error describes the failure for failed/canceled jobs; ErrorKind
	// classifies it (transient, deterministic, deadline, canceled).
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
	// Stats mirrors facade.RunStats for completed runs.
	Stats *facade.RunStats `json:"stats,omitempty"`

	// Attempt is the execution attempt this status describes (1-based;
	// >1 means the daemon re-ran the job after transient failures).
	Attempt int `json:"attempt,omitempty"`
	// DeadlineMillis echoes the request's deadline budget.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`

	QueuedNanos   int64 `json:"queued_ns,omitempty"`      // time spent queued
	RunningNanos  int64 `json:"running_ns,omitempty"`     // time spent executing
	HeapReserved  int64 `json:"heap_reserved"`            // bytes held against budgets
	QueuePosition int   `json:"queue_position,omitempty"` // 1-based, queued state only
}

// Err maps a terminal status onto a typed error: nil for done, a
// *DeadlineError for deadline failures, and a descriptive error
// otherwise. Non-terminal statuses report nil — ask again.
func (st *JobStatus) Err() error {
	switch st.State {
	case StateDone, StateQueued, StateRunning, "":
		return nil
	}
	if st.ErrorKind == ErrKindDeadline {
		return &DeadlineError{JobID: st.JobID, Limit: time.Duration(st.DeadlineMillis) * time.Millisecond}
	}
	return fmt.Errorf("job %s %s: %s", st.JobID, st.State, st.Error)
}

// TenantStatus reports one tenant's budget accounting.
type TenantStatus struct {
	HeapBudget   int64 `json:"heap_budget"`
	HeapReserved int64 `json:"heap_reserved"`
	JobsQueued   int   `json:"jobs_queued"`
	JobsRunning  int   `json:"jobs_running"`
}

// ServerStatus is the daemon-wide view returned by GET /v1/status.
type ServerStatus struct {
	Schema  string `json:"schema"`
	PID     int    `json:"pid"`
	Started string `json:"started"` // RFC 3339
	// Phase is the lifecycle phase (replaying, ready, draining,
	// stopping); GET /v1/readyz answers 200 only in "ready".
	Phase string `json:"phase,omitempty"`

	HeapBudget   int64 `json:"heap_budget"`
	HeapReserved int64 `json:"heap_reserved"`

	JobsQueued   int `json:"jobs_queued"`
	JobsRunning  int `json:"jobs_running"`
	JobsDone     int `json:"jobs_done"`
	JobsFailed   int `json:"jobs_failed"`
	JobsCanceled int `json:"jobs_canceled"`
	JobsRejected int `json:"jobs_rejected"`
	// JobsReplayed counts non-terminal jobs this incarnation re-enqueued
	// from the journal at startup; JobsRetried counts automatic re-runs
	// after transient failures.
	JobsReplayed int `json:"jobs_replayed,omitempty"`
	JobsRetried  int `json:"jobs_retried,omitempty"`

	WarmPoolSize int   `json:"warm_pool_size"`
	WarmHits     int64 `json:"warm_hits"`
	WarmMisses   int64 `json:"warm_misses"`
	PoolRebuilds int64 `json:"pool_rebuilds"`

	Tenants map[string]TenantStatus `json:"tenants,omitempty"`
}

// ErrorResponse is the body of every non-2xx daemon reply.
type ErrorResponse struct {
	Schema string `json:"schema"`
	Error  string `json:"error"`
	// RetryAfterMillis is set on 429 (budget exhausted) responses and
	// mirrors the Retry-After header: the client should back off at
	// least this long before resubmitting.
	RetryAfterMillis int64 `json:"retry_after_ms,omitempty"`
}

// Validate checks a submit request for protocol-level problems before any
// compilation work happens.
func (r *SubmitRequest) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("unsupported schema %q (want %q)", r.Schema, Schema)
	}
	if len(r.Sources) == 0 {
		return fmt.Errorf("no sources")
	}
	if r.HeapSize < 0 {
		return fmt.Errorf("negative heap_size")
	}
	if r.PageQuota < 0 {
		return fmt.Errorf("negative page_quota")
	}
	if r.TierHighPages < 0 || r.TierLowPages < 0 {
		return fmt.Errorf("negative tier watermark")
	}
	if r.TierLowPages > r.TierHighPages {
		return fmt.Errorf("tier_low_pages %d above tier_high_pages %d", r.TierLowPages, r.TierHighPages)
	}
	if r.DeadlineMillis < 0 {
		return fmt.Errorf("negative deadline_ms")
	}
	if r.MaxAttempts < 0 || r.MaxAttempts > maxAttemptsCap {
		return fmt.Errorf("max_attempts %d out of range [0,%d]", r.MaxAttempts, maxAttemptsCap)
	}
	return nil
}

// maxAttemptsCap bounds automatic re-runs: past a handful of attempts a
// "transient" failure is not transient.
const maxAttemptsCap = 8

// ReadyStatus is the body of GET /v1/readyz (and, with Ready always
// true, GET /v1/healthz).
type ReadyStatus struct {
	Schema string `json:"schema"`
	Ready  bool   `json:"ready"`
	Phase  string `json:"phase"`
}

// EncodeJob writes any facade.job/v1 message as deterministic indented
// JSON (sorted keys, stable float formatting), so protocol fixtures can be
// byte-pinned in golden tests.
func EncodeJob(w io.Writer, v any) error {
	return obs.EncodeDeterministic(w, v)
}
