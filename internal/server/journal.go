package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/obs"
)

// JournalSchema versions the daemon's durable job journal: an append-only
// JSONL write-ahead log next to the port file. Every line is one event
// carrying this schema tag; the wire format is byte-pinned by a golden
// test (testdata/journal_v1.golden), so any change must be deliberate and,
// if incompatible, versioned to facade.journal/v2.
const JournalSchema = "facade.journal/v1"

// Journal event kinds. A job's durable life is submitted -> started
// (once per attempt) -> done (with its terminal state); a job whose
// journal ends without a done event is non-terminal and is re-enqueued —
// and, because FACADE jobs are deterministic, re-run bit-identically — by
// the next daemon incarnation. drain marks a graceful SIGTERM checkpoint.
const (
	jevSubmitted = "submitted"
	jevStarted   = "started"
	jevDone      = "done"
	jevDrain     = "drain"
)

// journalEvent is one JSONL line. It deliberately carries no timestamps
// or floats: encoding/json renders identical events to identical bytes
// (struct fields in declaration order, map keys sorted), which is what
// makes the golden test and crash/replay diffing possible.
type journalEvent struct {
	Schema  string         `json:"schema"`
	Kind    string         `json:"kind"`
	Seq     int64          `json:"seq,omitempty"`
	JobID   string         `json:"job_id,omitempty"`
	Tenant  string         `json:"tenant,omitempty"`
	Attempt int            `json:"attempt,omitempty"`
	State   string         `json:"state,omitempty"`
	ErrKind string         `json:"error_kind,omitempty"`
	Output  string         `json:"output,omitempty"`
	Error   string         `json:"error,omitempty"`
	Req     *SubmitRequest `json:"req,omitempty"`
}

var errJournalClosed = errors.New("journal closed")

// journal is the append side of the write-ahead log. Appends serialize
// under mu; durability is group-committed — concurrent durable appenders
// share one fsync issued by a background loop, so a submission burst pays
// one disk flush, not one per job.
type journal struct {
	mu       sync.Mutex
	f        *os.File
	dead     bool
	writeGen int64 // generation of the last buffered write
	syncGen  int64 // generation covered by the last fsync
	synced   *sync.Cond

	wake     chan struct{}
	quit     chan struct{}
	quitOnce sync.Once
	loopDone chan struct{}

	cEvents *obs.Counter
	cSyncs  *obs.Counter

	// onAppend, when set, runs after every append — the daemon-level
	// crash schedule point (faults.ServerCrash / "killat=N").
	onAppend func()
}

// createJournal opens path for appending (creating it if needed) and
// starts the group-commit sync loop.
func createJournal(path string, reg *obs.Registry) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j := &journal{
		f:        f,
		wake:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		loopDone: make(chan struct{}),
		cEvents:  reg.Counter(obs.CtrServerJournalEvents),
		cSyncs:   reg.Counter(obs.CtrServerJournalSyncs),
	}
	j.synced = sync.NewCond(&j.mu)
	go j.syncLoop()
	return j, nil
}

// append writes one event. With durable set it does not return until an
// fsync covers the write — the submitted path uses this, so an
// acknowledged job is never lost to a crash. Non-durable appends
// (started, done) return immediately: losing one to a crash only means
// the job is re-run on recovery, which is deterministic and therefore
// harmless.
func (j *journal) append(ev journalEvent, durable bool) error {
	ev.Schema = JournalSchema
	line, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	line = append(line, '\n')

	j.mu.Lock()
	if j.dead {
		j.mu.Unlock()
		return errJournalClosed
	}
	if _, err := j.f.Write(line); err != nil {
		j.mu.Unlock()
		return fmt.Errorf("journal append: %w", err)
	}
	j.writeGen++
	g := j.writeGen
	hook := j.onAppend
	j.mu.Unlock()
	j.cEvents.Add(1)

	select {
	case j.wake <- struct{}{}:
	default:
	}
	if hook != nil {
		hook()
	}
	if !durable {
		return nil
	}
	j.mu.Lock()
	for j.syncGen < g && !j.dead {
		j.synced.Wait()
	}
	dead := j.dead && j.syncGen < g
	j.mu.Unlock()
	if dead {
		return errJournalClosed
	}
	return nil
}

// syncLoop is the group-commit flusher: each pass covers every write that
// landed before the fsync, and wakes all appenders waiting on it.
func (j *journal) syncLoop() {
	defer close(j.loopDone)
	for {
		select {
		case <-j.quit:
			return
		case <-j.wake:
		}
		j.mu.Lock()
		if j.dead {
			j.mu.Unlock()
			return
		}
		g := j.writeGen
		if g == j.syncGen {
			j.mu.Unlock()
			continue
		}
		f := j.f
		j.mu.Unlock()

		err := f.Sync() // outside mu: appends batch behind this flush

		j.mu.Lock()
		if err == nil && g > j.syncGen {
			j.syncGen = g
			j.cSyncs.Add(1)
		}
		j.synced.Broadcast()
		j.mu.Unlock()
	}
}

// seal flushes and closes the journal — the graceful-stop path (drain,
// clean shutdown). Appends after seal are no-ops returning
// errJournalClosed. Idempotent.
func (j *journal) seal() { j.shut(true) }

// kill abandons the journal without a final flush — the in-process
// SIGKILL stand-in for crash-recovery tests. Whatever the last group
// commit covered is what the next incarnation replays.
func (j *journal) kill() { j.shut(false) }

func (j *journal) shut(flush bool) {
	j.mu.Lock()
	if j.dead {
		j.mu.Unlock()
		return
	}
	j.dead = true
	f := j.f
	j.mu.Unlock()
	j.quitOnce.Do(func() { close(j.quit) })
	<-j.loopDone
	if flush {
		f.Sync()
	}
	f.Close()
	j.mu.Lock()
	j.synced.Broadcast()
	j.mu.Unlock()
}

// readJournal loads every event from a journal file, tolerating a torn
// final line (the signature of a crash mid-append). A missing file is an
// empty journal. Lines with the wrong schema fail loudly: a journal
// written by an incompatible daemon must not be half-replayed.
func readJournal(path string) ([]journalEvent, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 64<<20)
	var events []journalEvent
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev journalEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			// A crash can only tear the tail; anything after a bad line
			// is untrusted and ignored.
			break
		}
		if ev.Schema != JournalSchema {
			return nil, fmt.Errorf("journal %s: event speaks %q, daemon wants %q", path, ev.Schema, JournalSchema)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// rewriteJournal atomically replaces the journal with a compacted event
// list (write temp + fsync + rename) — run at startup after replay so
// restarts do not grow the log without bound.
func rewriteJournal(path string, events []journalEvent) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, ev := range events {
		ev.Schema = JournalSchema
		line, err := json.Marshal(ev)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// replayedJob is one job reconstructed from the journal: terminal jobs
// keep their recorded outcome (still queryable after a restart);
// non-terminal jobs carry the request to re-enqueue.
type replayedJob struct {
	seq     int64
	id      string
	tenant  string
	req     SubmitRequest
	state   string // "" means non-terminal: re-enqueue and re-run
	errKind string
	output  string
	errMsg  string
}

// replayJournal folds an event list into per-job outcomes plus the
// highest sequence number seen (the next incarnation's ID counter floor).
func replayJournal(events []journalEvent) (jobs []*replayedJob, maxSeq int64) {
	byID := make(map[string]*replayedJob)
	for _, ev := range events {
		if ev.Seq > maxSeq {
			maxSeq = ev.Seq
		}
		switch ev.Kind {
		case jevSubmitted:
			if ev.Req == nil || ev.JobID == "" {
				continue
			}
			if _, dup := byID[ev.JobID]; dup {
				continue
			}
			rj := &replayedJob{seq: ev.Seq, id: ev.JobID, tenant: ev.Tenant, req: *ev.Req}
			byID[ev.JobID] = rj
			jobs = append(jobs, rj)
		case jevDone:
			if rj, ok := byID[ev.JobID]; ok {
				rj.state = ev.State
				rj.errKind = ev.ErrKind
				rj.output = ev.Output
				rj.errMsg = ev.Error
			}
		}
	}
	return jobs, maxSeq
}

// compactEvents renders the replayed state back to a minimal event list:
// one submitted (plus done, when terminal) per job.
func compactEvents(jobs []*replayedJob) []journalEvent {
	var out []journalEvent
	for _, rj := range jobs {
		req := rj.req
		out = append(out, journalEvent{
			Kind: jevSubmitted, Seq: rj.seq, JobID: rj.id, Tenant: rj.tenant, Req: &req,
		})
		if rj.state != "" {
			out = append(out, journalEvent{
				Kind: jevDone, Seq: rj.seq, JobID: rj.id, Tenant: rj.tenant,
				State: rj.state, ErrKind: rj.errKind, Output: rj.output, Error: rj.errMsg,
			})
		}
	}
	return out
}
