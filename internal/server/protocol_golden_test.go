package server

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/facade"
)

var update = flag.Bool("update", false, "rewrite golden protocol fixtures")

// TestGoldenJobSchema byte-pins the facade.job/v1 wire format: every
// message kind is encoded deterministically and compared against a
// checked-in fixture, so any field rename, addition, or encoding change
// shows up as a diff that must be deliberate (and versioned).
func TestGoldenJobSchema(t *testing.T) {
	seed := int64(7)
	msgs := []struct {
		name string
		v    any
	}{
		{"submit_request", SubmitRequest{
			Schema:      Schema,
			Tenant:      "analytics",
			Priority:    3,
			Sources:     map[string]string{"job.fj": "class Main { static void main() { Sys.println(42); } }"},
			Transform:   true,
			DataClasses: []string{"Vertex", "Edge"},
			Entry:       "Main.main",
			HeapSize:    32 << 20,
			PageQuota:   128,
			RandSeed:    &seed,
			Faults:      "alloc=0.001,seed=7",

			DeadlineMillis: 30000,
			MaxAttempts:    3,
		}},
		{"submit_response", SubmitResponse{
			Schema: Schema,
			JobID:  "job-000001",
			State:  StateQueued,
		}},
		{"job_status", JobStatus{
			Schema:       Schema,
			JobID:        "job-000001",
			Tenant:       "analytics",
			State:        StateDone,
			WarmHit:      true,
			Output:       "42\n",
			Stats:        &facade.RunStats{},
			QueuedNanos:  1500,
			RunningNanos: 250000,
		}},
		{"job_status_failed", JobStatus{
			Schema:         Schema,
			JobID:          "job-000002",
			Tenant:         "analytics",
			State:          StateFailed,
			Error:          "job job-000002 exceeded its deadline of 30s",
			ErrorKind:      ErrKindDeadline,
			Attempt:        2,
			DeadlineMillis: 30000,
			QueuedNanos:    1500,
			RunningNanos:   250000,
		}},
		{"server_status", ServerStatus{
			Schema:       Schema,
			PID:          4242,
			Started:      "2026-01-02T03:04:05Z",
			Phase:        PhaseReady,
			JobsReplayed: 2,
			JobsRetried:  1,
			HeapBudget:   1 << 30,
			HeapReserved: 96 << 20,
			JobsQueued:   1,
			JobsRunning:  2,
			JobsDone:     17,
			JobsFailed:   1,
			JobsCanceled: 1,
			JobsRejected: 3,
			WarmPoolSize: 2,
			WarmHits:     14,
			WarmMisses:   5,
			PoolRebuilds: 1,
			Tenants: map[string]TenantStatus{
				"analytics": {HeapBudget: 256 << 20, HeapReserved: 96 << 20, JobsQueued: 1, JobsRunning: 2},
			},
		}},
		{"error_response", ErrorResponse{
			Schema:           Schema,
			Error:            "aggregate heap budget exhausted: 1006632960 reserved + 67108864 requested > 1073741824",
			RetryAfterMillis: 500,
		}},
		{"ready_status", ReadyStatus{
			Schema: Schema,
			Ready:  false,
			Phase:  PhaseReplaying,
		}},
	}

	var buf bytes.Buffer
	for _, m := range msgs {
		buf.WriteString("== " + m.name + " ==\n")
		if err := EncodeJob(&buf, m.v); err != nil {
			t.Fatalf("encode %s: %v", m.name, err)
		}
		buf.WriteString("\n")
	}

	golden := filepath.Join("testdata", "job_v1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("facade.job/v1 encoding changed — if intentional, bump the schema and regenerate with -update.\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

// TestValidateRejectsBadRequests pins the protocol-level validation.
func TestValidateRejectsBadRequests(t *testing.T) {
	good := SubmitRequest{Schema: Schema, Sources: map[string]string{"a.fj": "x"}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := map[string]SubmitRequest{
		"wrong schema":  {Schema: "facade.job/v0", Sources: map[string]string{"a.fj": "x"}},
		"no schema":     {Sources: map[string]string{"a.fj": "x"}},
		"no sources":    {Schema: Schema},
		"neg heap":      {Schema: Schema, Sources: map[string]string{"a.fj": "x"}, HeapSize: -1},
		"neg quota":     {Schema: Schema, Sources: map[string]string{"a.fj": "x"}, PageQuota: -1},
		"neg deadline":  {Schema: Schema, Sources: map[string]string{"a.fj": "x"}, DeadlineMillis: -1},
		"neg attempts":  {Schema: Schema, Sources: map[string]string{"a.fj": "x"}, MaxAttempts: -1},
		"huge attempts": {Schema: Schema, Sources: map[string]string{"a.fj": "x"}, MaxAttempts: 99},
	}
	for name, req := range cases {
		if err := req.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
