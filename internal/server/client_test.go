package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// inProcessLaunch is a StartOptions.Launch hook that starts a real daemon
// in-process instead of exec'ing a binary, counting how many times it was
// invoked — the seam that makes the auto-start races testable.
func inProcessLaunch(t *testing.T, launches *atomic.Int32) func(string) error {
	t.Helper()
	var mu sync.Mutex
	var started []*Server
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range started {
			ctx, stop := context.WithTimeout(context.Background(), 30*time.Second)
			s.Shutdown(ctx)
			stop()
		}
	})
	return func(pf string) error {
		launches.Add(1)
		s, err := New(Config{PortFile: pf, JournalPath: "none"})
		if err != nil {
			return err
		}
		mu.Lock()
		started = append(started, s)
		mu.Unlock()
		return nil
	}
}

// TestEnsureServerConcurrentAutoStart: many clients racing past a failed
// Discover must elect exactly one daemon-starter through the lock file;
// everyone ends up talking to that daemon.
func TestEnsureServerConcurrentAutoStart(t *testing.T) {
	pf := filepath.Join(t.TempDir(), "port.json")
	var launches atomic.Int32
	launch := inProcessLaunch(t, &launches)

	const n = 8
	var wg sync.WaitGroup
	clients := make([]*Client, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clients[i], errs[i] = EnsureServer(pf, StartOptions{Launch: launch, Timeout: 30 * time.Second})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
	}
	if got := launches.Load(); got != 1 {
		t.Fatalf("%d daemons launched for %d racing clients, want 1", got, n)
	}
	// Everyone discovered the same daemon.
	for i := 1; i < n; i++ {
		if clients[i].BaseURL != clients[0].BaseURL {
			t.Fatalf("client %d points at %s, client 0 at %s", i, clients[i].BaseURL, clients[0].BaseURL)
		}
	}
	if _, err := clients[0].Status(); err != nil {
		t.Fatalf("elected daemon not serving: %v", err)
	}
}

// TestEnsureServerStalePortFile: a port file left behind by a dead daemon
// (valid schema, nobody listening) must not wedge auto-start — the stale
// file is replaced by a fresh daemon's.
func TestEnsureServerStalePortFile(t *testing.T) {
	pf := filepath.Join(t.TempDir(), "port.json")
	// A dead address: listen, record, close.
	dead, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr()
	ctx, stop := context.WithTimeout(context.Background(), 30*time.Second)
	dead.Shutdown(ctx)
	stop()
	data, _ := json.Marshal(portFileInfo{Schema: Schema, PID: 999999, Addr: addr})
	if err := os.WriteFile(pf, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var launches atomic.Int32
	c, err := EnsureServer(pf, StartOptions{Launch: inProcessLaunch(t, &launches), Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("EnsureServer past stale port file: %v", err)
	}
	if launches.Load() != 1 {
		t.Fatalf("launches = %d, want 1", launches.Load())
	}
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}
}

// TestEnsureServerStaleLockSteal: a lock file whose holder died before
// starting anything is stolen once it is older than the timeout, instead
// of deadlocking every future auto-start.
func TestEnsureServerStaleLockSteal(t *testing.T) {
	pf := filepath.Join(t.TempDir(), "port.json")
	lock := pf + ".lock"
	if err := os.WriteFile(lock, []byte("999999"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}

	var launches atomic.Int32
	c, err := EnsureServer(pf, StartOptions{Launch: inProcessLaunch(t, &launches), Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("EnsureServer past stale lock: %v", err)
	}
	if launches.Load() != 1 {
		t.Fatalf("launches = %d, want 1", launches.Load())
	}
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(lock); !os.IsNotExist(err) {
		t.Fatalf("lock file still present after auto-start: %v", err)
	}
}

// TestEnsureServerLockReleasedMidWait: the holder releases the lock (and
// starts nothing) while another client is waiting on it — the waiter must
// notice the release, take the lock itself, and start the daemon.
func TestEnsureServerLockReleasedMidWait(t *testing.T) {
	pf := filepath.Join(t.TempDir(), "port.json")
	lock := pf + ".lock"
	if err := os.WriteFile(lock, []byte("1"), 0o644); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(150 * time.Millisecond)
		os.Remove(lock)
	}()

	var launches atomic.Int32
	c, err := EnsureServer(pf, StartOptions{Launch: inProcessLaunch(t, &launches), Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("EnsureServer after mid-wait lock release: %v", err)
	}
	if launches.Load() != 1 {
		t.Fatalf("launches = %d, want 1", launches.Load())
	}
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitWithRetryEventualSuccess: 429 rejections with Retry-After are
// absorbed with backoff (honoring the server's hint) until the submission
// is admitted.
func TestSubmitWithRetryEventualSuccess(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(ErrorResponse{Schema: Schema, Error: "budget exhausted", RetryAfterMillis: 40})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(SubmitResponse{Schema: Schema, JobID: "job-000001", State: StateQueued})
	}))
	defer srv.Close()

	var slept []time.Duration
	c := &Client{BaseURL: srv.URL}
	resp, err := c.SubmitWithRetry(SubmitRequest{Sources: map[string]string{"a.fj": "x"}}, SubmitOptions{
		MaxRetries:  5,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		Seed:        7,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatalf("SubmitWithRetry: %v", err)
	}
	if resp.JobID != "job-000001" {
		t.Fatalf("job id %q", resp.JobID)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d submit calls, want 3", calls.Load())
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	for i, d := range slept {
		// Retry-After (40ms) dominates the small computed backoff.
		if d < 40*time.Millisecond {
			t.Fatalf("sleep %d = %v, shorter than the server's Retry-After", i, d)
		}
	}
}

// TestSubmitWithRetryGivesUp: the budget is finite — after MaxRetries
// rejections the caller gets the typed RejectedError back.
func TestSubmitWithRetryGivesUp(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(ErrorResponse{Schema: Schema, Error: "budget exhausted", RetryAfterMillis: 1})
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	_, err := c.SubmitWithRetry(SubmitRequest{Sources: map[string]string{"a.fj": "x"}}, SubmitOptions{
		MaxRetries:  2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Sleep:       func(time.Duration) {},
	})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("got %v, want RejectedError", err)
	}
	if calls.Load() != 3 { // initial + 2 retries
		t.Fatalf("%d submit calls, want 3", calls.Load())
	}
}

// TestWaitOutlivesClientTimeout pins the long-poll fix: Wait must not
// inherit the client's per-request timeout (historically a hardcoded 60s
// http.Client timeout that made Wait fail on any job slower than that).
// Here the client timeout is far shorter than the poll; Wait still
// completes because it budgets longPollWindow+grace per poll.
func TestWaitOutlivesClientTimeout(t *testing.T) {
	var polls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := JobStatus{Schema: Schema, JobID: "job-000001", State: StateRunning}
		if polls.Add(1) >= 2 {
			st.State = StateDone
			st.Output = "42\n"
		}
		time.Sleep(120 * time.Millisecond) // longer than Client.Timeout
		json.NewEncoder(w).Encode(st)
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Timeout: 20 * time.Millisecond}
	st, err := c.Wait("job-000001")
	if err != nil {
		t.Fatalf("Wait with short client timeout: %v", err)
	}
	if st.State != StateDone || st.Output != "42\n" {
		t.Fatalf("wait result: %+v", st)
	}
	// The short timeout still applies to plain requests.
	if _, err := c.Job("job-000001"); err == nil {
		t.Fatal("plain request ignored Client.Timeout")
	}
}
