package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"
)

// DefaultPortFile returns the per-user default discovery path:
// $TMPDIR/repro-serve-<uid>.json. Daemon and client must agree on it, so
// both default here.
func DefaultPortFile() string {
	return filepath.Join(os.TempDir(), fmt.Sprintf("repro-serve-%d.json", os.Getuid()))
}

// Client is a thin facade.job/v1 client for one daemon.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// RejectedError is returned by Submit when the daemon refused admission
// (heap budget exhausted). RetryAfter tells the caller how long to back
// off before resubmitting.
type RejectedError struct {
	Message    string
	RetryAfter time.Duration
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("rejected: %s (retry after %v)", e.Message, e.RetryAfter)
}

// Discover connects to the daemon a port file points at, verifying it is
// alive and speaks our schema. Returns an error when the file is missing,
// stale, or the daemon does not answer.
func Discover(portFile string) (*Client, error) {
	data, err := os.ReadFile(portFile)
	if err != nil {
		return nil, err
	}
	var info portFileInfo
	if err := json.Unmarshal(data, &info); err != nil {
		return nil, fmt.Errorf("port file %s: %w", portFile, err)
	}
	if info.Schema != Schema {
		return nil, fmt.Errorf("port file %s: daemon speaks %q, client wants %q", portFile, info.Schema, Schema)
	}
	c := &Client{BaseURL: "http://" + info.Addr, HTTP: &http.Client{Timeout: 60 * time.Second}}
	if _, err := c.Status(); err != nil {
		return nil, fmt.Errorf("daemon at %s not responding: %w", info.Addr, err)
	}
	return c, nil
}

// StartOptions configures daemon auto-start.
type StartOptions struct {
	// Args are extra arguments for the `serve` subcommand (budgets,
	// concurrency).
	Args []string
	// IdleTimeout is forwarded as -idle so an auto-started daemon reaps
	// itself (default 5m).
	IdleTimeout time.Duration
	// Timeout bounds how long to wait for the daemon to come up
	// (default 10s).
	Timeout time.Duration
}

// EnsureServer discovers a running daemon or transparently starts one:
// the current executable is re-invoked as `serve -portfile <pf> -idle
// <d>` and detached, then polled until its port file answers. This is
// how `repro submit` works without an explicit daemon-management step.
//
// Auto-start is serialized through an exclusive lock file next to the
// port file, so concurrent clients racing past a failed Discover spawn
// one daemon, not one each; losers of the lock race poll for the
// winner's daemon instead.
func EnsureServer(portFile string, opts StartOptions) (*Client, error) {
	if c, err := Discover(portFile); err == nil {
		return c, nil
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)

	lockFile := portFile + ".lock"
	for {
		lf, err := os.OpenFile(lockFile, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(lf, "%d", os.Getpid())
			lf.Close()
			break // we own the start
		}
		// Another client holds the lock and is starting the daemon.
		if c, derr := Discover(portFile); derr == nil {
			return c, nil
		}
		if fi, serr := os.Stat(lockFile); serr == nil {
			if time.Since(fi.ModTime()) > timeout {
				// The lock holder crashed before starting anything;
				// steal the stale lock and retry acquisition.
				os.Remove(lockFile)
				continue
			}
		} else {
			continue // lock released between OpenFile and Stat; retry
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("daemon auto-start: another client held %s but no daemon came up within %v", lockFile, timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
	defer os.Remove(lockFile)

	// Re-check under the lock: a daemon may have come up while we raced
	// for it, and its port file must not be clobbered.
	if c, err := Discover(portFile); err == nil {
		return c, nil
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("auto-start: %w", err)
	}
	idle := opts.IdleTimeout
	if idle == 0 {
		idle = 5 * time.Minute
	}
	// Remove a stale port file so we do not rediscover a dead daemon.
	os.Remove(portFile)
	args := append([]string{"serve", "-portfile", portFile, "-idle", idle.String()}, opts.Args...)
	cmd := exec.Command(exe, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("auto-start %s serve: %w", exe, err)
	}
	// Detach: the daemon outlives this client process.
	go cmd.Wait()

	for time.Now().Before(deadline) {
		if c, err := Discover(portFile); err == nil {
			return c, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return nil, fmt.Errorf("auto-started daemon did not come up within %v", timeout)
}

// Submit sends a job; the request's schema field is stamped automatically.
func (c *Client) Submit(req SubmitRequest) (SubmitResponse, error) {
	req.Schema = Schema
	var resp SubmitResponse
	err := c.do("POST", "/v1/jobs", &req, &resp)
	return resp, err
}

// Job fetches one job's status.
func (c *Client) Job(id string) (JobStatus, error) {
	var st JobStatus
	err := c.do("GET", "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait blocks until the job reaches a terminal state, long-polling the
// daemon.
func (c *Client) Wait(id string) (JobStatus, error) {
	for {
		var st JobStatus
		if err := c.do("GET", "/v1/jobs/"+id+"?wait=1", nil, &st); err != nil {
			return st, err
		}
		if st.State == StateDone || st.State == StateFailed || st.State == StateCanceled {
			return st, nil
		}
	}
}

// Cancel requests cancellation of a queued or running job and returns its
// (possibly still-running) status.
func (c *Client) Cancel(id string) (JobStatus, error) {
	var st JobStatus
	err := c.do("POST", "/v1/jobs/"+id+"/cancel", nil, &st)
	return st, err
}

// Status fetches the daemon-wide status.
func (c *Client) Status() (ServerStatus, error) {
	var st ServerStatus
	err := c.do("GET", "/v1/status", nil, &st)
	return st, err
}

// Shutdown asks the daemon to stop.
func (c *Client) Shutdown() error {
	return c.do("POST", "/v1/shutdown", nil, nil)
}

func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf := &bytes.Buffer{}
		if err := json.NewEncoder(buf).Encode(body); err != nil {
			return err
		}
		rd = buf
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var er ErrorResponse
		data, _ := io.ReadAll(resp.Body)
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			if resp.StatusCode == http.StatusTooManyRequests {
				retry := time.Duration(er.RetryAfterMillis) * time.Millisecond
				if retry == 0 {
					if secs, _ := strconv.Atoi(resp.Header.Get("Retry-After")); secs > 0 {
						retry = time.Duration(secs) * time.Second
					}
				}
				return &RejectedError{Message: er.Error, RetryAfter: retry}
			}
			return fmt.Errorf("%s %s: %s", method, path, er.Error)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
