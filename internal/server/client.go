package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"
)

// DefaultPortFile returns the per-user default discovery path:
// $TMPDIR/repro-serve-<uid>.json. Daemon and client must agree on it, so
// both default here.
func DefaultPortFile() string {
	return filepath.Join(os.TempDir(), fmt.Sprintf("repro-serve-%d.json", os.Getuid()))
}

// Client is a thin facade.job/v1 client for one daemon.
type Client struct {
	BaseURL string
	// HTTP is the underlying client (default http.DefaultClient). Leave
	// its Timeout zero: per-request deadlines come from Timeout below, so
	// long polls can budget their own window instead of racing a global
	// transport timeout.
	HTTP *http.Client
	// Timeout bounds each plain request (default 60s). Wait's long polls
	// ignore it and budget longPollWindow plus grace per poll instead.
	Timeout time.Duration
}

// RejectedError is returned by Submit when the daemon refused admission:
// 429 (heap budget exhausted) or 503 (draining toward shutdown, replaying
// its journal). RetryAfter tells the caller how long to back off before
// resubmitting; SubmitWithRetry does that automatically.
type RejectedError struct {
	Message    string
	RetryAfter time.Duration
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("rejected: %s (retry after %v)", e.Message, e.RetryAfter)
}

// Discover connects to the daemon a port file points at, verifying it is
// alive and speaks our schema. Returns an error when the file is missing,
// stale, or the daemon does not answer.
func Discover(portFile string) (*Client, error) {
	data, err := os.ReadFile(portFile)
	if err != nil {
		return nil, err
	}
	var info portFileInfo
	if err := json.Unmarshal(data, &info); err != nil {
		return nil, fmt.Errorf("port file %s: %w", portFile, err)
	}
	if info.Schema != Schema {
		return nil, fmt.Errorf("port file %s: daemon speaks %q, client wants %q", portFile, info.Schema, Schema)
	}
	c := &Client{BaseURL: "http://" + info.Addr}
	if _, err := c.Status(); err != nil {
		return nil, fmt.Errorf("daemon at %s not responding: %w", info.Addr, err)
	}
	return c, nil
}

// StartOptions configures daemon auto-start.
type StartOptions struct {
	// Args are extra arguments for the `serve` subcommand (budgets,
	// concurrency).
	Args []string
	// IdleTimeout is forwarded as -idle so an auto-started daemon reaps
	// itself (default 5m).
	IdleTimeout time.Duration
	// Timeout bounds how long to wait for the daemon to come up
	// (default 10s).
	Timeout time.Duration
	// Launch overrides how the winning client starts the daemon (tests
	// inject an in-process server here instead of exec'ing a binary). It
	// must arrange for portFile to eventually exist and answer.
	Launch func(portFile string) error
}

// EnsureServer discovers a running daemon or transparently starts one:
// the current executable is re-invoked as `serve -portfile <pf> -idle
// <d>` and detached, then polled until its port file answers. This is
// how `repro submit` works without an explicit daemon-management step.
//
// Auto-start is serialized through an exclusive lock file next to the
// port file, so concurrent clients racing past a failed Discover spawn
// one daemon, not one each; losers of the lock race poll for the
// winner's daemon instead.
func EnsureServer(portFile string, opts StartOptions) (*Client, error) {
	if c, err := Discover(portFile); err == nil {
		return c, nil
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)

	lockFile := portFile + ".lock"
	for {
		lf, err := os.OpenFile(lockFile, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(lf, "%d", os.Getpid())
			lf.Close()
			break // we own the start
		}
		// Another client holds the lock and is starting the daemon.
		if c, derr := Discover(portFile); derr == nil {
			return c, nil
		}
		if fi, serr := os.Stat(lockFile); serr == nil {
			if time.Since(fi.ModTime()) > timeout {
				// The lock holder crashed before starting anything;
				// steal the stale lock and retry acquisition.
				os.Remove(lockFile)
				continue
			}
		} else {
			continue // lock released between OpenFile and Stat; retry
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("daemon auto-start: another client held %s but no daemon came up within %v", lockFile, timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
	defer os.Remove(lockFile)

	// Re-check under the lock: a daemon may have come up while we raced
	// for it, and its port file must not be clobbered.
	if c, err := Discover(portFile); err == nil {
		return c, nil
	}
	// Remove a stale port file so we do not rediscover a dead daemon.
	os.Remove(portFile)
	launch := opts.Launch
	if launch == nil {
		launch = func(pf string) error { return launchDaemon(pf, opts) }
	}
	if err := launch(portFile); err != nil {
		return nil, err
	}

	for time.Now().Before(deadline) {
		if c, err := Discover(portFile); err == nil {
			return c, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return nil, fmt.Errorf("auto-started daemon did not come up within %v", timeout)
}

// launchDaemon re-invokes the current executable as a detached `serve`
// process — the default StartOptions.Launch.
func launchDaemon(portFile string, opts StartOptions) error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("auto-start: %w", err)
	}
	idle := opts.IdleTimeout
	if idle == 0 {
		idle = 5 * time.Minute
	}
	args := append([]string{"serve", "-portfile", portFile, "-idle", idle.String()}, opts.Args...)
	cmd := exec.Command(exe, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("auto-start %s serve: %w", exe, err)
	}
	// Detach: the daemon outlives this client process.
	go cmd.Wait()
	return nil
}

// Submit sends a job; the request's schema field is stamped automatically.
func (c *Client) Submit(req SubmitRequest) (SubmitResponse, error) {
	req.Schema = Schema
	var resp SubmitResponse
	err := c.do("POST", "/v1/jobs", &req, &resp)
	return resp, err
}

// SubmitOptions shapes SubmitWithRetry's client-side backoff.
type SubmitOptions struct {
	// MaxRetries is how many rejections to absorb before giving up
	// (0 = fail on the first RejectedError, like plain Submit).
	MaxRetries int
	// BaseBackoff and MaxBackoff shape the capped exponential backoff
	// (defaults 100ms / 5s). The daemon's Retry-After hint, when longer,
	// wins over the computed delay.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed makes the jitter deterministic for a given (seed, attempt);
	// callers that want reproducible schedules set it, everyone else can
	// leave it zero.
	Seed int64
	// Sleep replaces time.Sleep (tests). Nil means time.Sleep.
	Sleep func(time.Duration)
	// OnReject observes every rejection absorbed before a retry (load
	// generators count 429s with it). Nil means no observation.
	OnReject func(*RejectedError)
}

// SubmitWithRetry is Submit plus client-side backpressure handling: on a
// RejectedError (429 budget exhaustion, 503 drain/replay) it backs off
// and resubmits, up to opts.MaxRetries times. When the daemon supplies a
// millisecond-precision retry_after_ms hint it is authoritative — the
// daemon scales it with queue depth and reservation pressure, so a burst
// of rejected clients spreads out instead of re-stampeding on a coarse
// whole-second Retry-After — and only jitter is added on top. Without a
// hint the client falls back to capped exponential backoff. Any other
// error, including a protocol or transport error, fails immediately.
func (c *Client) SubmitWithRetry(req SubmitRequest, opts SubmitOptions) (SubmitResponse, error) {
	base := opts.BaseBackoff
	if base == 0 {
		base = 100 * time.Millisecond
	}
	maxB := opts.MaxBackoff
	if maxB == 0 {
		maxB = 5 * time.Second
	}
	sleep := opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	for attempt := 0; ; attempt++ {
		resp, err := c.Submit(req)
		if err == nil {
			return resp, nil
		}
		rej, ok := err.(*RejectedError)
		if !ok || attempt >= opts.MaxRetries {
			return resp, err
		}
		if opts.OnReject != nil {
			opts.OnReject(rej)
		}
		delay := rej.RetryAfter
		if delay <= 0 {
			// No hint from the daemon: capped exponential backoff.
			delay = base << uint(attempt)
			if delay <= 0 || delay > maxB {
				delay = maxB
			}
		}
		// Deterministic jitter in [0, delay/2]: decorrelates a burst of
		// rejected clients without losing reproducibility.
		z := uint64(opts.Seed)<<8 ^ uint64(attempt+1)
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		if half := uint64(delay / 2); half > 0 {
			delay += time.Duration(z % (half + 1))
		}
		sleep(delay)
	}
}

// Job fetches one job's status.
func (c *Client) Job(id string) (JobStatus, error) {
	var st JobStatus
	err := c.do("GET", "/v1/jobs/"+id, nil, &st)
	return st, err
}

// longPollGrace is how much the client's per-poll deadline exceeds the
// server's longPollWindow: enough headroom for scheduling and transport
// that a healthy poll always returns before the client gives up, however
// long the job runs.
const longPollGrace = 15 * time.Second

// Wait blocks until the job reaches a terminal state, long-polling the
// daemon. Each poll carries its own deadline of longPollWindow +
// longPollGrace — deliberately decoupled from Client.Timeout, so waiting
// on a job slower than any fixed request timeout works: the daemon ends
// each poll at longPollWindow and the client immediately re-polls.
func (c *Client) Wait(id string) (JobStatus, error) {
	for {
		var st JobStatus
		if err := c.doTimeout("GET", "/v1/jobs/"+id+"?wait=1", nil, &st, longPollWindow+longPollGrace); err != nil {
			return st, err
		}
		if st.State == StateDone || st.State == StateFailed || st.State == StateCanceled {
			return st, nil
		}
	}
}

// Cancel requests cancellation of a queued or running job and returns its
// (possibly still-running) status.
func (c *Client) Cancel(id string) (JobStatus, error) {
	var st JobStatus
	err := c.do("POST", "/v1/jobs/"+id+"/cancel", nil, &st)
	return st, err
}

// Status fetches the daemon-wide status.
func (c *Client) Status() (ServerStatus, error) {
	var st ServerStatus
	err := c.do("GET", "/v1/status", nil, &st)
	return st, err
}

// Ready asks GET /v1/readyz. It returns the daemon's lifecycle phase and
// whether it currently accepts new jobs (false while replaying its
// journal after a crash and while draining). Not-ready is a status, not
// an error: the daemon's 503 decodes into ReadyStatus like the 200 does.
func (c *Client) Ready() (ReadyStatus, error) {
	var rs ReadyStatus
	d := c.Timeout
	if d == 0 {
		d = 60 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", c.BaseURL+"/v1/readyz", nil)
	if err != nil {
		return rs, err
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return rs, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return rs, fmt.Errorf("GET /v1/readyz: HTTP %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&rs)
	return rs, err
}

// Shutdown asks the daemon to stop immediately, canceling queued and
// running jobs.
func (c *Client) Shutdown() error {
	return c.do("POST", "/v1/shutdown", nil, nil)
}

// Drain asks the daemon to stop gracefully: finish running jobs, keep
// queued ones checkpointed in the journal for the next incarnation.
func (c *Client) Drain() error {
	return c.do("POST", "/v1/shutdown?drain=1", nil, nil)
}

func (c *Client) do(method, path string, body, out any) error {
	d := c.Timeout
	if d == 0 {
		d = 60 * time.Second
	}
	return c.doTimeout(method, path, body, out, d)
}

func (c *Client) doTimeout(method, path string, body, out any, d time.Duration) error {
	var rd io.Reader
	if body != nil {
		buf := &bytes.Buffer{}
		if err := json.NewEncoder(buf).Encode(body); err != nil {
			return err
		}
		rd = buf
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var er ErrorResponse
		data, _ := io.ReadAll(resp.Body)
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			if resp.StatusCode == http.StatusTooManyRequests ||
				(resp.StatusCode == http.StatusServiceUnavailable && er.RetryAfterMillis > 0) {
				retry := time.Duration(er.RetryAfterMillis) * time.Millisecond
				if retry == 0 {
					if secs, _ := strconv.Atoi(resp.Header.Get("Retry-After")); secs > 0 {
						retry = time.Duration(secs) * time.Second
					}
				}
				return &RejectedError{Message: er.Error, RetryAfter: retry}
			}
			return fmt.Errorf("%s %s: %s", method, path, er.Error)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
