package server

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// mediumSrc runs for roughly half a second at interpreter speed — long
// enough to observe running/replaying/draining phases, short enough to
// complete. (slowSrc, by contrast, never finishes inside a test and is
// only ever canceled.)
const mediumSrc = `
class Main {
    static void main() {
        long acc = 0L;
        for (long i = 0L; i < 15000000L; i = i + 1) {
            acc = acc + i;
        }
        Sys.println(acc);
    }
}
`

// newJournaledServer starts a daemon wired to a journal path, for
// crash/restart tests that outlive one incarnation.
func newJournaledServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, stop := context.WithTimeout(context.Background(), 30*time.Second)
		defer stop()
		s.Shutdown(ctx)
	})
	return s, &Client{BaseURL: "http://" + s.Addr()}
}

func waitReady(t *testing.T, s *Server) {
	t.Helper()
	ctx, stop := context.WithTimeout(context.Background(), 120*time.Second)
	defer stop()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatalf("server never became ready: %v", err)
	}
}

// TestCrashRecoveryChaos is the tentpole chaos case: a mixed batch of
// jobs across tenants is in flight — some done, some running, some
// queued — when the daemon dies as if SIGKILLed (journal abandoned
// mid-group-commit, port file left behind). A fresh incarnation on the
// same journal must bring every acknowledged job to a terminal state with
// output bit-identical to a crash-free run.
func TestCrashRecoveryChaos(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "chaos.journal")
	cfg := Config{MaxConcurrent: 2, JournalPath: jp}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1 := &Client{BaseURL: "http://" + s1.Addr()}

	type item struct {
		id   string
		want string
	}
	var items []item
	for i := 0; i < 10; i++ {
		var req SubmitRequest
		if i%3 == 2 {
			req = SubmitRequest{
				Tenant:    "batch",
				Sources:   map[string]string{"churn.fj": churnSrc},
				Transform: true,
				HeapSize:  8 << 20,
			}
		} else {
			seed := int64(40 + i*13)
			req = SubmitRequest{
				Tenant:   fmt.Sprintf("tenant-%d", i%2),
				Sources:  map[string]string{"s.fj": seededSrc},
				HeapSize: 8 << 20,
				RandSeed: &seed,
			}
		}
		want := oneShot(t, req)
		resp, err := c1.Submit(req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		items = append(items, item{resp.JobID, want})
	}

	// Die mid-batch. Every submission above was acknowledged, so every
	// job is durably journaled; whatever was running is simply lost and
	// must be re-run by the next incarnation.
	s1.Kill()

	s2, c2 := newJournaledServer(t, cfg)
	waitReady(t, s2)
	for i, it := range items {
		st, err := c2.Wait(it.id)
		if err != nil {
			t.Fatalf("job %d (%s) after recovery: %v", i, it.id, err)
		}
		if st.State != StateDone {
			t.Fatalf("job %d (%s) after recovery: %s (%s)", i, it.id, st.State, st.Error)
		}
		if st.Output != it.want {
			t.Fatalf("job %d (%s) output diverges after crash recovery:\n got %q\nwant %q",
				i, it.id, st.Output, it.want)
		}
	}
	status, err := c2.Status()
	if err != nil {
		t.Fatal(err)
	}
	if status.Phase != PhaseReady {
		t.Fatalf("phase after replay = %s, want ready", status.Phase)
	}
}

// TestReadyzDuringReplay pins the readiness gate: while the new
// incarnation is re-running recovered jobs, /v1/readyz answers 503 with
// phase "replaying" and submissions are refused with a Retry-After —
// then, once replay converges, the daemon is ready and accepts work.
func TestReadyzDuringReplay(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "replay.journal")
	cfg := Config{MaxConcurrent: 1, JournalPath: jp}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1 := &Client{BaseURL: "http://" + s1.Addr()}
	if rs, err := c1.Ready(); err != nil || !rs.Ready || rs.Phase != PhaseReady {
		t.Fatalf("fresh daemon readyz: %+v, %v", rs, err)
	}
	want := oneShot(t, SubmitRequest{Sources: map[string]string{"med.fj": mediumSrc}, HeapSize: 8 << 20})
	resp, err := c1.Submit(SubmitRequest{Sources: map[string]string{"med.fj": mediumSrc}, HeapSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s1.Kill()

	s2, c2 := newJournaledServer(t, cfg)
	// The recovered job takes hundreds of ms to re-run; these checks land
	// well inside that window.
	rs, err := c2.Ready()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Ready || rs.Phase != PhaseReplaying {
		t.Fatalf("readyz during replay = %+v, want not-ready/replaying", rs)
	}
	_, err = c2.Submit(SubmitRequest{Sources: map[string]string{"s.fj": seededSrc}, HeapSize: 8 << 20})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("submit during replay: %v, want RejectedError", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("replay rejection carries no Retry-After: %v", rej)
	}

	waitReady(t, s2)
	if rs, err := c2.Ready(); err != nil || !rs.Ready {
		t.Fatalf("readyz after replay: %+v, %v", rs, err)
	}
	st, err := c2.Wait(resp.JobID)
	if err != nil || st.State != StateDone || st.Output != want {
		t.Fatalf("recovered job: %v %s output %q (want %q)", err, st.State, st.Output, want)
	}
	// And the daemon accepts new work again.
	if st := submitWait(t, c2, SubmitRequest{Sources: map[string]string{"s.fj": seededSrc}, HeapSize: 8 << 20}); st.State != StateDone {
		t.Fatalf("post-replay submit: %s (%s)", st.State, st.Error)
	}
}

// TestDrainPreservesQueuedJobs pins the SIGTERM semantics: a drain lets
// the running job finish (journaled terminal), refuses new submissions,
// leaves the queued job non-terminal in the sealed journal, and the next
// incarnation replays it to completion.
func TestDrainPreservesQueuedJobs(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "drain.journal")
	cfg := Config{MaxConcurrent: 1, JournalPath: jp, DrainTimeout: 60 * time.Second}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1 := &Client{BaseURL: "http://" + s1.Addr()}

	slowWant := oneShot(t, SubmitRequest{Sources: map[string]string{"med.fj": mediumSrc}, HeapSize: 8 << 20})
	seed := int64(77)
	queuedReq := SubmitRequest{Sources: map[string]string{"s.fj": seededSrc}, HeapSize: 8 << 20, RandSeed: &seed}
	queuedWant := oneShot(t, queuedReq)

	running, err := c1.Submit(SubmitRequest{Sources: map[string]string{"med.fj": mediumSrc}, HeapSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c1.Job(running.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	queued, err := c1.Submit(queuedReq)
	if err != nil {
		t.Fatal(err)
	}

	drainDone := make(chan error, 1)
	go func() {
		ctx, stop := context.WithTimeout(context.Background(), 120*time.Second)
		defer stop()
		drainDone <- s1.Drain(ctx)
	}()
	for s1.Phase() != PhaseDraining {
		time.Sleep(time.Millisecond)
	}
	// Draining: not ready, admission closed.
	if rs, err := c1.Ready(); err != nil || rs.Ready || rs.Phase != PhaseDraining {
		t.Fatalf("readyz during drain = %+v, %v", rs, err)
	}
	_, err = c1.Submit(SubmitRequest{Sources: map[string]string{"s.fj": seededSrc}, HeapSize: 8 << 20})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("submit during drain: %v, want RejectedError", err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}

	s2, c2 := newJournaledServer(t, cfg)
	waitReady(t, s2)
	// The running job finished during the drain; its outcome survived in
	// the journal and is queryable without re-running.
	st, err := c2.Job(running.JobID)
	if err != nil || st.State != StateDone || st.Output != slowWant {
		t.Fatalf("drained running job: %v %s output %q (want %q)", err, st.State, st.Output, slowWant)
	}
	// The queued job was never started, stayed durable, and ran here.
	st, err = c2.Wait(queued.JobID)
	if err != nil || st.State != StateDone || st.Output != queuedWant {
		t.Fatalf("checkpointed queued job: %v %s output %q (want %q)", err, st.State, st.Output, queuedWant)
	}
	status, err := c2.Status()
	if err != nil {
		t.Fatal(err)
	}
	if status.JobsReplayed != 1 {
		t.Fatalf("jobs_replayed = %d, want 1", status.JobsReplayed)
	}
}

// TestDeadlineExceededTyped pins deadline enforcement on a running job:
// the interpreter is stopped at a safepoint, the failure is typed
// (ErrorKind "deadline", *DeadlineError from JobStatus.Err), and a
// concurrent job from another tenant is untouched.
func TestDeadlineExceededTyped(t *testing.T) {
	_, c := newTestServer(t, Config{MaxConcurrent: 2})
	seed := int64(9)
	otherReq := SubmitRequest{
		Tenant:   "other",
		Sources:  map[string]string{"s.fj": seededSrc},
		HeapSize: 8 << 20,
		RandSeed: &seed,
	}
	otherWant := oneShot(t, otherReq)

	slow, err := c.Submit(SubmitRequest{
		Tenant:         "victim",
		Sources:        map[string]string{"slow.fj": slowSrc},
		HeapSize:       8 << 20,
		DeadlineMillis: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	other, err := c.Submit(otherReq)
	if err != nil {
		t.Fatal(err)
	}

	st, err := c.Wait(slow.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.ErrorKind != ErrKindDeadline {
		t.Fatalf("deadline job: %s kind %q (%s)", st.State, st.ErrorKind, st.Error)
	}
	var de *DeadlineError
	if !errors.As(st.Err(), &de) {
		t.Fatalf("JobStatus.Err() = %v, want *DeadlineError", st.Err())
	}
	if de.JobID != slow.JobID || de.Limit != 150*time.Millisecond {
		t.Fatalf("DeadlineError fields: %+v", de)
	}

	ost, err := c.Wait(other.JobID)
	if err != nil || ost.State != StateDone || ost.Output != otherWant {
		t.Fatalf("other tenant was affected: %v %s output %q (want %q)", err, ost.State, ost.Output, otherWant)
	}
}

// TestDeadlineExpiresWhileQueued: a job whose deadline passes before an
// execution slot frees up fails with the same typed error without ever
// running — the deadline bounds end-to-end latency, not just run time.
func TestDeadlineExpiresWhileQueued(t *testing.T) {
	_, c := newTestServer(t, Config{MaxConcurrent: 1})
	hog, err := c.Submit(SubmitRequest{Sources: map[string]string{"slow.fj": slowSrc}, HeapSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.Submit(SubmitRequest{
		Sources:        map[string]string{"s.fj": seededSrc},
		HeapSize:       8 << 20,
		DeadlineMillis: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(q.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.ErrorKind != ErrKindDeadline {
		t.Fatalf("queued deadline job: %s kind %q (%s)", st.State, st.ErrorKind, st.Error)
	}
	if st.RunningNanos != 0 {
		t.Fatalf("job ran for %dns despite expiring in the queue", st.RunningNanos)
	}
	if _, err := c.Cancel(hog.JobID); err != nil {
		t.Fatal(err)
	}
}

// TestTransientRetrySucceeds: an injected crash on attempt 1
// (alloc=0.004,seed=17 deterministically fails the first run) is
// classified transient and re-run with a re-derived fault stream; the
// second attempt succeeds with output identical to a fault-free run.
func TestTransientRetrySucceeds(t *testing.T) {
	_, c := newTestServer(t, Config{
		MaxConcurrent: 1,
		RetryBase:     time.Millisecond,
		RetryMax:      4 * time.Millisecond,
	})
	clean := SubmitRequest{Sources: map[string]string{"churn.fj": churnSrc}, HeapSize: 8 << 20}
	want := oneShot(t, clean)
	faulty := clean
	faulty.Faults = "alloc=0.004,seed=17"
	faulty.MaxAttempts = 3

	st := submitWait(t, c, faulty)
	if st.State != StateDone {
		t.Fatalf("retried job: %s kind %q (%s)", st.State, st.ErrorKind, st.Error)
	}
	if st.Attempt != 2 {
		t.Fatalf("attempt = %d, want 2 (fail once, then succeed)", st.Attempt)
	}
	if st.Output != want {
		t.Fatalf("retried output diverges: %q vs %q", st.Output, want)
	}
	status, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if status.JobsRetried != 1 {
		t.Fatalf("jobs_retried = %d, want 1", status.JobsRetried)
	}
}

// TestTransientRetryExhaustsAttempts: a fault that fires on every attempt
// (alloc=1) burns the whole attempt budget and fails transient with the
// attempt count on record.
func TestTransientRetryExhaustsAttempts(t *testing.T) {
	_, c := newTestServer(t, Config{
		MaxConcurrent: 1,
		RetryBase:     time.Millisecond,
		RetryMax:      4 * time.Millisecond,
	})
	st := submitWait(t, c, SubmitRequest{
		Sources:     map[string]string{"churn.fj": churnSrc},
		HeapSize:    8 << 20,
		Faults:      "alloc=1,seed=3",
		MaxAttempts: 3,
	})
	if st.State != StateFailed || st.ErrorKind != ErrKindTransient {
		t.Fatalf("exhausted job: %s kind %q (%s)", st.State, st.ErrorKind, st.Error)
	}
	if st.Attempt != 3 {
		t.Fatalf("attempt = %d, want 3", st.Attempt)
	}
	status, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if status.JobsRetried != 2 {
		t.Fatalf("jobs_retried = %d, want 2", status.JobsRetried)
	}
}

// TestDeterministicFailureNeverRetries: an OME from a genuinely too-small
// heap is deterministic — re-running cannot help, so the daemon must not
// burn attempts on it.
func TestDeterministicFailureNeverRetries(t *testing.T) {
	_, c := newTestServer(t, Config{MaxConcurrent: 1})
	// A retained linked list no heap of this size can hold: a real,
	// reproducible OutOfMemoryError, not an injected one.
	const oomSrc = `
class Node {
    long v;
    Node next;
    Node(long v, Node next) { this.v = v; this.next = next; }
}
class Main {
    static void main() {
        Node head = null;
        for (int i = 0; i < 1000000; i = i + 1) {
            head = new Node(i, head);
        }
        Sys.println(head.v);
    }
}
`
	st := submitWait(t, c, SubmitRequest{
		Sources:     map[string]string{"oom.fj": oomSrc},
		HeapSize:    1 << 20,
		MaxAttempts: 5,
	})
	if st.State != StateFailed || st.ErrorKind != ErrKindDeterministic {
		t.Fatalf("OME job: %s kind %q (%s)", st.State, st.ErrorKind, st.Error)
	}
	if st.Attempt != 1 {
		t.Fatalf("deterministic failure was retried: attempt %d", st.Attempt)
	}
	status, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if status.JobsRetried != 0 {
		t.Fatalf("jobs_retried = %d, want 0", status.JobsRetried)
	}
}

// TestDaemonFaultSpecCrashHook wires the daemon-level killat schedule to
// an in-process CrashFn: after the scheduled journal append the hook
// fires, the daemon is killed, and a clean restart (no fault spec)
// recovers every acknowledged job — the in-process twin of the CI
// daemon-recovery smoke, which does the same with a real os.Exit.
func TestDaemonFaultSpecCrashHook(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "killat.journal")
	crashed := make(chan struct{})
	var once sync.Once
	cfg := Config{
		MaxConcurrent: 1,
		JournalPath:   jp,
		FaultSpec:     "killat=3",
		CrashFn:       func() { once.Do(func() { close(crashed) }) },
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1 := &Client{BaseURL: "http://" + s1.Addr()}

	type item struct {
		id   string
		want string
	}
	var items []item
	for i := 0; i < 3; i++ {
		seed := int64(200 + i)
		req := SubmitRequest{Sources: map[string]string{"s.fj": seededSrc}, HeapSize: 8 << 20, RandSeed: &seed}
		want := oneShot(t, req)
		resp, err := c1.Submit(req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		items = append(items, item{resp.JobID, want})
	}
	select {
	case <-crashed:
	case <-time.After(30 * time.Second):
		t.Fatal("killat=3 crash hook never fired")
	}
	s1.Kill()

	clean := cfg
	clean.FaultSpec = ""
	clean.CrashFn = nil
	s2, c2 := newJournaledServer(t, clean)
	waitReady(t, s2)
	for i, it := range items {
		st, err := c2.Wait(it.id)
		if err != nil || st.State != StateDone || st.Output != it.want {
			t.Fatalf("job %d after killat crash: %v %s output %q (want %q)", i, err, st.State, st.Output, it.want)
		}
	}
}
