package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// fixtureEvents is a fixed journal history: three jobs submitted, one
// done, one failed, one left non-terminal (crashed mid-run), plus a drain
// marker — every event kind and field the format carries.
func fixtureEvents() []journalEvent {
	seed := int64(7)
	req := &SubmitRequest{
		Schema:   Schema,
		Tenant:   "analytics",
		Sources:  map[string]string{"job.fj": "class Main { static void main() { Sys.println(42); } }"},
		HeapSize: 8 << 20,
		RandSeed: &seed,

		DeadlineMillis: 30000,
		MaxAttempts:    3,
	}
	return []journalEvent{
		{Kind: jevSubmitted, Seq: 1, JobID: "job-000001", Tenant: "analytics", Req: req},
		{Kind: jevSubmitted, Seq: 2, JobID: "job-000002", Tenant: "batch", Req: req},
		{Kind: jevSubmitted, Seq: 3, JobID: "job-000003", Tenant: "batch", Req: req},
		{Kind: jevStarted, Seq: 1, JobID: "job-000001", Tenant: "analytics", Attempt: 1},
		{Kind: jevDone, Seq: 1, JobID: "job-000001", Tenant: "analytics", Attempt: 1,
			State: StateDone, Output: "42\n"},
		{Kind: jevStarted, Seq: 2, JobID: "job-000002", Tenant: "batch", Attempt: 2},
		{Kind: jevDone, Seq: 2, JobID: "job-000002", Tenant: "batch", Attempt: 2,
			State: StateFailed, ErrKind: ErrKindTransient, Error: "heap alloc failed (injected fault)"},
		{Kind: jevStarted, Seq: 3, JobID: "job-000003", Tenant: "batch", Attempt: 1},
		{Kind: jevDrain},
	}
}

// TestGoldenJournalSchema byte-pins the facade.journal/v1 on-disk format:
// the fixture history must serialize to the exact checked-in bytes, so
// any field or encoding change is a deliberate, versioned decision — a
// daemon must be able to replay a journal its predecessor wrote.
func TestGoldenJournalSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	jl, err := createJournal(path, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range fixtureEvents() {
		if err := jl.append(ev, false); err != nil {
			t.Fatal(err)
		}
	}
	jl.seal()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "journal_v1.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("facade.journal/v1 encoding changed — if intentional, bump the schema and regenerate with -update.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestJournalRoundTripAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	jl, err := createJournal(path, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range fixtureEvents() {
		if err := jl.append(ev, true); err != nil {
			t.Fatal(err)
		}
	}
	jl.seal()
	if err := jl.append(journalEvent{Kind: jevDrain}, false); err != errJournalClosed {
		t.Fatalf("append after seal: %v, want errJournalClosed", err)
	}

	events, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(fixtureEvents()) {
		t.Fatalf("read %d events, wrote %d", len(events), len(fixtureEvents()))
	}
	jobs, maxSeq := replayJournal(events)
	if maxSeq != 3 || len(jobs) != 3 {
		t.Fatalf("replay: %d jobs, maxSeq %d, want 3/3", len(jobs), maxSeq)
	}
	byID := map[string]*replayedJob{}
	for _, j := range jobs {
		byID[j.id] = j
	}
	if j := byID["job-000001"]; j.state != StateDone || j.output != "42\n" {
		t.Fatalf("job 1: state %q output %q", j.state, j.output)
	}
	if j := byID["job-000002"]; j.state != StateFailed || j.errKind != ErrKindTransient {
		t.Fatalf("job 2: state %q kind %q", j.state, j.errKind)
	}
	if j := byID["job-000003"]; j.state != "" {
		t.Fatalf("job 3 should be non-terminal, got %q", j.state)
	}

	// Compaction keeps exactly one submitted (+ done when terminal) per
	// job and replays to the same state.
	compact := compactEvents(jobs)
	if len(compact) != 5 { // 3 submitted + 2 done
		t.Fatalf("compacted to %d events, want 5", len(compact))
	}
	jobs2, maxSeq2 := replayJournal(compact)
	if maxSeq2 != maxSeq || len(jobs2) != len(jobs) {
		t.Fatalf("compacted journal replays differently: %d/%d", len(jobs2), maxSeq2)
	}
}

// TestJournalTornTail is the crash signature: a partial final line (the
// write the crash interrupted) is ignored; everything before it replays.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	jl, err := createJournal(path, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	evs := fixtureEvents()
	for _, ev := range evs[:3] {
		if err := jl.append(ev, true); err != nil {
			t.Fatal(err)
		}
	}
	jl.kill()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, `{"schema":"facade.journal/v1","kind":"done","seq":2,"jo`)
	f.Close()

	events, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("torn journal yielded %d events, want 3", len(events))
	}
	jobs, _ := replayJournal(events)
	for _, j := range jobs {
		if j.state != "" {
			t.Fatalf("job %s terminal after torn tail: %q", j.id, j.state)
		}
	}
}

func TestJournalRejectsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	if err := os.WriteFile(path, []byte(`{"schema":"facade.journal/v9","kind":"submitted"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readJournal(path); err == nil || !strings.Contains(err.Error(), "facade.journal/v9") {
		t.Fatalf("foreign schema accepted: %v", err)
	}
}

// TestJournalGroupCommit drives many concurrent durable appends and
// checks they all land while the fsync count stays below the event count
// — the group-commit batching working as designed.
func TestJournalGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	reg := obs.NewRegistry()
	jl, err := createJournal(path, reg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = jl.append(journalEvent{
				Kind: jevSubmitted, Seq: int64(i + 1), JobID: fmt.Sprintf("job-%06d", i+1),
				Req: &SubmitRequest{Schema: Schema, Sources: map[string]string{"a.fj": "x"}},
			}, true)
		}(i)
	}
	wg.Wait()
	jl.seal()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	events, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Fatalf("journal holds %d events, want %d", len(events), n)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.CtrServerJournalEvents]; got != n {
		t.Fatalf("journal_events = %d, want %d", got, n)
	}
	if syncs := snap.Counters[obs.CtrServerJournalSyncs]; syncs < 1 || syncs > n {
		t.Fatalf("journal_syncs = %d, want within [1,%d]", syncs, n)
	}
}
