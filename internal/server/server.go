package server

import (
	"container/heap"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/facade"
	"repro/internal/ir"
	"repro/internal/obs"
)

// Config configures a daemon instance. The zero value listens on an
// ephemeral localhost port with a 1 GiB aggregate heap budget, no
// per-tenant limits, two execution slots, and no idle timeout.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// PortFile, when set, is written after listen (JSON: schema, pid,
	// addr) and removed on shutdown; clients discover the daemon through
	// it.
	PortFile string

	// HeapBudget bounds the sum of heap reservations across all queued
	// and running jobs (default 1 GiB). Submissions that would exceed it
	// are rejected with 429 + Retry-After.
	HeapBudget int64
	// TenantBudget is the default per-tenant heap budget (0 = no
	// per-tenant limit beyond the aggregate).
	TenantBudget int64
	// TenantBudgets overrides TenantBudget for specific tenants.
	TenantBudgets map[string]int64

	// MaxConcurrent is the number of jobs executing at once (default 2).
	MaxConcurrent int
	// WarmPoolCap bounds the number of idle warm VMs kept (default 8).
	WarmPoolCap int
	// IdleTimeout shuts the daemon down after this long with no requests
	// and no work (0 = run until told to stop).
	IdleTimeout time.Duration

	// JobRetention is how long a terminal job (and its output) stays
	// queryable before being garbage-collected (default 15m, negative =
	// keep forever).
	JobRetention time.Duration
	// MaxJobHistory caps the number of retained terminal jobs regardless
	// of age, oldest evicted first (default 512, negative = unlimited).
	MaxJobHistory int
	// ProgCacheCap bounds the compiled-program cache, least recently used
	// evicted first (default 32, negative = unlimited).
	ProgCacheCap int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Addr == "" {
		out.Addr = "127.0.0.1:0"
	}
	if out.HeapBudget == 0 {
		out.HeapBudget = 1 << 30
	}
	if out.MaxConcurrent == 0 {
		out.MaxConcurrent = 2
	}
	if out.WarmPoolCap == 0 {
		out.WarmPoolCap = 8
	}
	if out.JobRetention == 0 {
		out.JobRetention = 15 * time.Minute
	}
	if out.MaxJobHistory == 0 {
		out.MaxJobHistory = 512
	}
	if out.ProgCacheCap == 0 {
		out.ProgCacheCap = 32
	}
	return out
}

// job is one submitted run and its full lifecycle.
type job struct {
	id       string
	seq      int64
	req      SubmitRequest
	tenant   string
	reserved int64

	state   string
	warmHit bool
	output  string
	errMsg  string
	stats   *facade.RunStats

	queuedAt, startedAt, finishedAt time.Time

	cancel context.CancelCauseFunc
	done   chan struct{} // closed when the job reaches a terminal state
}

func (j *job) terminal() bool {
	return j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
}

// jobQueue is a priority queue: higher Priority first, FIFO within a
// priority level.
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].req.Priority != q[j].req.Priority {
		return q[i].req.Priority > q[j].req.Priority
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(*job)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Server is a running daemon.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	progs *progCache
	pool  *warmPool

	ln      net.Listener
	httpSrv *http.Server
	started time.Time

	mu             sync.Mutex
	jobs           map[string]*job
	finished       []*job // terminal jobs in finish order, for pruning
	queue          jobQueue
	seq            int64
	reserved       int64
	tenantReserved map[string]int64
	running        int
	lastActivity   time.Time
	stopping       bool

	kick     chan struct{}
	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup

	cSubmitted, cDone, cFailed, cCanceled, cRejected *obs.Counter
	gRunning, gQueued, gReserved                     *obs.Gauge
}

// New starts a daemon: listen, write the port file, and begin serving.
// Callers stop it with Shutdown (or POST /v1/shutdown) and wait for full
// termination with Wait.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		cfg:            cfg,
		reg:            reg,
		progs:          newProgCache(cfg.ProgCacheCap),
		pool:           newWarmPool(cfg.WarmPoolCap, reg),
		started:        time.Now(),
		jobs:           make(map[string]*job),
		tenantReserved: make(map[string]int64),
		kick:           make(chan struct{}, 1),
		stopped:        make(chan struct{}),
		cSubmitted:     reg.Counter(obs.CtrServerSubmitted),
		cDone:          reg.Counter(obs.CtrServerDone),
		cFailed:        reg.Counter(obs.CtrServerFailed),
		cCanceled:      reg.Counter(obs.CtrServerCanceled),
		cRejected:      reg.Counter(obs.CtrServerRejected),
		gRunning:       reg.Gauge(obs.GaugeServerRunning),
		gQueued:        reg.Gauge(obs.GaugeServerQueued),
		gReserved:      reg.Gauge(obs.GaugeServerReserved),
	}
	s.lastActivity = s.started

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("POST /v1/shutdown", s.handleShutdown)
	s.httpSrv = &http.Server{Handler: mux}

	if cfg.PortFile != "" {
		if err := writePortFile(cfg.PortFile, s.Addr()); err != nil {
			ln.Close()
			return nil, err
		}
	}

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.httpSrv.Serve(ln) // returns on Shutdown/Close
	}()
	s.wg.Add(1)
	go s.schedule()
	if cfg.IdleTimeout > 0 {
		s.wg.Add(1)
		go s.idleWatch()
	}
	return s, nil
}

// Addr returns the daemon's listen address ("127.0.0.1:port").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Wait blocks until the daemon has fully stopped (idle timeout, shutdown
// endpoint, or Shutdown call).
func (s *Server) Wait() { <-s.stopped }

// Shutdown stops the daemon: pending and running jobs are canceled, the
// listener closes, and the port file is removed. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		s.stopping = true
		// Cancel everything still queued; the scheduler skips canceled
		// entries.
		for _, j := range s.jobs {
			if j.state == StateQueued {
				s.finishLocked(j, StateCanceled, "", nil, "server shutting down")
			} else if j.state == StateRunning && j.cancel != nil {
				j.cancel(fmt.Errorf("server shutting down"))
			}
		}
		s.mu.Unlock()
		s.kickScheduler()

		sctx, stop := context.WithTimeout(ctx, 5*time.Second)
		defer stop()
		s.httpSrv.Shutdown(sctx)
		close(s.stopped)
		if s.cfg.PortFile != "" {
			os.Remove(s.cfg.PortFile)
		}
	})
	// Wait for the scheduler and any running jobs to drain.
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) touch() {
	s.mu.Lock()
	s.lastActivity = time.Now()
	s.pruneJobsLocked(s.lastActivity)
	s.mu.Unlock()
}

// pruneJobsLocked garbage-collects terminal jobs: anything older than
// JobRetention, plus oldest-first overflow past MaxJobHistory, so a
// long-lived daemon does not pin every completed job's output forever.
// Caller holds s.mu.
func (s *Server) pruneJobsLocked(now time.Time) {
	n := 0
	for n < len(s.finished) {
		j := s.finished[n]
		overCap := s.cfg.MaxJobHistory > 0 && len(s.finished)-n > s.cfg.MaxJobHistory
		aged := s.cfg.JobRetention > 0 && now.Sub(j.finishedAt) >= s.cfg.JobRetention
		if !overCap && !aged {
			break
		}
		delete(s.jobs, j.id)
		n++
	}
	if n > 0 {
		s.finished = append(s.finished[:0], s.finished[n:]...)
	}
}

func (s *Server) idleWatch() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.IdleTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stopped:
			return
		case <-tick.C:
			s.mu.Lock()
			idle := time.Since(s.lastActivity) >= s.cfg.IdleTimeout &&
				s.running == 0 && len(s.queue) == 0 && !s.stopping
			s.mu.Unlock()
			if idle {
				go s.Shutdown(context.Background())
				return
			}
		}
	}
}

func (s *Server) kickScheduler() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// schedule moves queued jobs into execution slots as capacity frees up.
func (s *Server) schedule() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopped:
			return
		case <-s.kick:
		}
		for {
			s.mu.Lock()
			if s.stopping || s.running >= s.cfg.MaxConcurrent || len(s.queue) == 0 {
				s.mu.Unlock()
				break
			}
			j := heap.Pop(&s.queue).(*job)
			if j.terminal() { // canceled while queued
				s.mu.Unlock()
				continue
			}
			// Create the job's cancelable context here, under s.mu, so a
			// concurrent Shutdown/cancel never observes StateRunning with
			// a nil j.cancel (which would let the job run to completion).
			ctx, cancel := context.WithCancelCause(context.Background())
			j.cancel = cancel
			j.state = StateRunning
			j.startedAt = time.Now()
			s.running++
			s.gRunning.Set(int64(s.running))
			s.gQueued.Set(int64(len(s.queue)))
			s.mu.Unlock()
			s.wg.Add(1)
			go s.runJob(j, ctx, cancel)
		}
	}
}

// runJob executes one admitted job end to end: resolve the compiled
// program (shared cache), take a warm VM when one matches, run through
// facade.RunContext, and return the VM to the pool.
func (s *Server) runJob(j *job, ctx context.Context, cancel context.CancelCauseFunc) {
	defer s.wg.Done()
	defer s.kickScheduler()
	defer cancel(nil)

	key := programKey(&j.req)
	prog, err := s.progs.get(key, func() (*ir.Program, error) { return compileRequest(&j.req) })
	if err != nil {
		s.finish(j, StateFailed, "", nil, "compile: "+err.Error())
		return
	}

	vk := vmKey{prog: key, heap: j.req.HeapSize}
	warm := s.pool.take(vk)
	if warm != nil && warm.Prog != prog {
		// The program was evicted from the cache and recompiled since
		// this VM was pooled; WithReusedVM requires pointer identity.
		s.pool.drop()
		warm = nil
	}
	opts := runOptions(&j.req)
	if warm != nil {
		opts = append(opts, facade.WithReusedVM(warm))
	}

	s.mu.Lock()
	j.warmHit = warm != nil
	s.mu.Unlock()

	res, runErr := facade.RunContext(ctx, prog, opts...)
	var output string
	var stats *facade.RunStats
	if res != nil {
		output = res.Output()
		if res.VM != nil {
			st := res.Stats()
			stats = &st
		}
		res.Close()
		// Return the VM for reuse; put re-verifies it and drops it (a
		// pool rebuild) when a crashed run left threads or pages behind.
		s.pool.put(vk, res.VM)
	}
	if runErr != nil {
		state := StateFailed
		if _, ok := runErr.(*facade.CanceledError); ok {
			state = StateCanceled
		}
		s.finish(j, state, output, stats, runErr.Error())
		return
	}
	s.finish(j, StateDone, output, stats, "")
}

// runOptions maps a submit request onto facade options. The daemon
// execution path and the client-side one-shot path share this mapping, so
// the same request runs bit-identically either way.
func runOptions(req *SubmitRequest) []facade.Option {
	opts := []facade.Option{facade.WithHeapSize(req.HeapSize)}
	if req.Entry != "" {
		opts = append(opts, facade.WithEntry(req.Entry))
	}
	if req.RandSeed != nil {
		opts = append(opts, facade.WithRandSeed(*req.RandSeed))
	}
	if req.PageQuota > 0 {
		opts = append(opts, facade.WithPageQuota(req.PageQuota))
	}
	if req.Faults != "" {
		opts = append(opts, facade.WithFaults(req.Faults))
	}
	return opts
}

// OneShot runs a submit request in-process, without a daemon: the exact
// compile-and-run path runJob takes, minus warm-pool reuse. `repro submit
// -oneshot` uses it, and the CI daemon smoke compares daemon outputs
// against it byte for byte.
func OneShot(req SubmitRequest) (string, *facade.RunStats, error) {
	req.Schema = Schema
	if err := req.Validate(); err != nil {
		return "", nil, err
	}
	if req.HeapSize == 0 {
		req.HeapSize = 64 << 20
	}
	prog, err := compileRequest(&req)
	if err != nil {
		return "", nil, fmt.Errorf("compile: %w", err)
	}
	res, err := facade.Run(prog, runOptions(&req)...)
	if res == nil {
		return "", nil, err
	}
	out := res.Output()
	var stats *facade.RunStats
	if res.VM != nil {
		st := res.Stats()
		stats = &st
	}
	res.Close()
	return out, stats, err
}

func (s *Server) finish(j *job, state, output string, stats *facade.RunStats, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finishLocked(j, state, output, stats, errMsg)
}

// finishLocked moves a job to a terminal state, releases its budget
// reservation, and wakes any status long-pollers. Caller holds s.mu.
func (s *Server) finishLocked(j *job, state, output string, stats *facade.RunStats, errMsg string) {
	if j.terminal() {
		return
	}
	wasRunning := j.state == StateRunning
	j.state = state
	j.output = output
	j.stats = stats
	j.errMsg = errMsg
	j.finishedAt = time.Now()
	if j.startedAt.IsZero() {
		j.startedAt = j.finishedAt
	}
	s.reserved -= j.reserved
	s.tenantReserved[j.tenant] -= j.reserved
	s.gReserved.Set(s.reserved)
	if wasRunning {
		s.running--
		s.gRunning.Set(int64(s.running))
	}
	switch state {
	case StateDone:
		s.cDone.Add(1)
	case StateFailed:
		s.cFailed.Add(1)
	case StateCanceled:
		s.cCanceled.Add(1)
	}
	s.lastActivity = j.finishedAt
	s.finished = append(s.finished, j)
	s.pruneJobsLocked(j.finishedAt)
	close(j.done)
}

// --- HTTP handlers -------------------------------------------------------

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.touch()
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error(), 0)
		return
	}
	if err := req.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if req.HeapSize == 0 {
		req.HeapSize = 64 << 20
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	need := int64(req.HeapSize)

	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		s.writeError(w, http.StatusServiceUnavailable, "server shutting down", 0)
		return
	}
	if s.reserved+need > s.cfg.HeapBudget {
		s.mu.Unlock()
		s.cRejected.Add(1)
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("aggregate heap budget exhausted: %d reserved + %d requested > %d",
				s.reserved, need, s.cfg.HeapBudget), retryAfter)
		return
	}
	if tb := s.tenantBudget(req.Tenant); tb > 0 && s.tenantReserved[req.Tenant]+need > tb {
		s.mu.Unlock()
		s.cRejected.Add(1)
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q heap budget exhausted: %d reserved + %d requested > %d",
				req.Tenant, s.tenantReserved[req.Tenant], need, tb), retryAfter)
		return
	}
	s.seq++
	j := &job{
		id:       fmt.Sprintf("job-%06d", s.seq),
		seq:      s.seq,
		req:      req,
		tenant:   req.Tenant,
		reserved: need,
		state:    StateQueued,
		queuedAt: time.Now(),
		done:     make(chan struct{}),
	}
	s.jobs[j.id] = j
	heap.Push(&s.queue, j)
	s.reserved += need
	s.tenantReserved[req.Tenant] += need
	s.gReserved.Set(s.reserved)
	s.gQueued.Set(int64(len(s.queue)))
	s.cSubmitted.Add(1)
	s.mu.Unlock()
	s.kickScheduler()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	EncodeJob(w, SubmitResponse{Schema: Schema, JobID: j.id, State: StateQueued})
}

// retryAfter is the backoff hint (milliseconds) attached to 429 budget
// rejections.
const retryAfter = 500

func (s *Server) tenantBudget(tenant string) int64 {
	if b, ok := s.cfg.TenantBudgets[tenant]; ok {
		return b
	}
	return s.cfg.TenantBudget
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.touch()
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, "no such job", 0)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		// Long-poll: block until the job is terminal (bounded, so a
		// stuck client retries rather than pinning a connection).
		select {
		case <-j.done:
		case <-time.After(30 * time.Second):
		case <-s.stopped:
		}
		s.touch()
	}
	w.Header().Set("Content-Type", "application/json")
	EncodeJob(w, s.jobStatus(j))
}

func (s *Server) jobStatus(j *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{
		Schema:       Schema,
		JobID:        j.id,
		Tenant:       j.tenant,
		State:        j.state,
		WarmHit:      j.warmHit,
		Output:       j.output,
		Error:        j.errMsg,
		Stats:        j.stats,
		HeapReserved: j.reserved,
	}
	switch j.state {
	case StateQueued:
		st.QueuedNanos = time.Since(j.queuedAt).Nanoseconds()
		for i, q := range s.queue {
			if q == j {
				st.QueuePosition = i + 1
				break
			}
		}
	case StateRunning:
		st.QueuedNanos = j.startedAt.Sub(j.queuedAt).Nanoseconds()
		st.RunningNanos = time.Since(j.startedAt).Nanoseconds()
	default:
		st.QueuedNanos = j.startedAt.Sub(j.queuedAt).Nanoseconds()
		st.RunningNanos = j.finishedAt.Sub(j.startedAt).Nanoseconds()
		st.HeapReserved = 0
	}
	return st
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.touch()
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if ok {
		switch j.state {
		case StateQueued:
			s.finishLocked(j, StateCanceled, "", nil, "canceled by client")
		case StateRunning:
			if j.cancel != nil {
				j.cancel(fmt.Errorf("canceled by client"))
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, "no such job", 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	EncodeJob(w, s.jobStatus(j))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.touch()
	w.Header().Set("Content-Type", "application/json")
	EncodeJob(w, s.Status())
}

// Status snapshots the daemon-wide state (also served at GET /v1/status).
func (s *Server) Status() ServerStatus {
	snap := s.reg.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ServerStatus{
		Schema:       Schema,
		PID:          os.Getpid(),
		Started:      s.started.UTC().Format(time.RFC3339),
		HeapBudget:   s.cfg.HeapBudget,
		HeapReserved: s.reserved,
		JobsRunning:  s.running,
		JobsDone:     int(snap.Counters[obs.CtrServerDone]),
		JobsFailed:   int(snap.Counters[obs.CtrServerFailed]),
		JobsCanceled: int(snap.Counters[obs.CtrServerCanceled]),
		JobsRejected: int(snap.Counters[obs.CtrServerRejected]),
		WarmPoolSize: s.pool.len(),
		WarmHits:     snap.Counters[obs.CtrServerWarmHits],
		WarmMisses:   snap.Counters[obs.CtrServerWarmMisses],
		PoolRebuilds: snap.Counters[obs.CtrServerPoolDrops],
		Tenants:      make(map[string]TenantStatus),
	}
	for _, j := range s.jobs {
		if j.state == StateQueued {
			st.JobsQueued++
		}
	}
	for tenant, res := range s.tenantReserved {
		ts := TenantStatus{HeapBudget: s.tenantBudget(tenant), HeapReserved: res}
		for _, j := range s.jobs {
			if j.tenant != tenant {
				continue
			}
			switch j.state {
			case StateQueued:
				ts.JobsQueued++
			case StateRunning:
				ts.JobsRunning++
			}
		}
		st.Tenants[tenant] = ts
	}
	return st
}

func (s *Server) handleShutdown(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	EncodeJob(w, map[string]string{"schema": Schema, "state": "stopping"})
	go s.Shutdown(context.Background())
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string, retryMillis int64) {
	w.Header().Set("Content-Type", "application/json")
	if retryMillis > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((retryMillis+999)/1000, 10))
	}
	w.WriteHeader(code)
	EncodeJob(w, ErrorResponse{Schema: Schema, Error: msg, RetryAfterMillis: retryMillis})
}

// --- port file -----------------------------------------------------------

// portFileInfo is the discovery record the daemon writes next to its
// socket: enough for a client to find and health-check it.
type portFileInfo struct {
	Schema string `json:"schema"`
	PID    int    `json:"pid"`
	Addr   string `json:"addr"`
}

func writePortFile(path, addr string) error {
	data, err := json.Marshal(portFileInfo{Schema: Schema, PID: os.Getpid(), Addr: addr})
	if err != nil {
		return err
	}
	// Write-then-rename so a concurrently starting client never reads a
	// torn file.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
