package server

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/facade"
	"repro/internal/faults"
	"repro/internal/ir"
	"repro/internal/obs"
)

// Config configures a daemon instance. The zero value listens on an
// ephemeral localhost port with a 1 GiB aggregate heap budget, no
// per-tenant limits, two execution slots, and no idle timeout.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// PortFile, when set, is written after listen (JSON: schema, pid,
	// addr) and removed on shutdown; clients discover the daemon through
	// it.
	PortFile string
	// JournalPath is the durable job journal (facade.journal/v1, an
	// append-only JSONL write-ahead log). Empty derives "<PortFile>.journal"
	// when a port file is configured; "none" disables journaling (jobs
	// then die with the process, the pre-journal behavior).
	JournalPath string

	// HeapBudget bounds the sum of heap reservations across all queued
	// and running jobs (default 1 GiB). Submissions that would exceed it
	// are rejected with 429 + Retry-After.
	HeapBudget int64
	// TenantBudget is the default per-tenant heap budget (0 = no
	// per-tenant limit beyond the aggregate).
	TenantBudget int64
	// TenantBudgets overrides TenantBudget for specific tenants.
	TenantBudgets map[string]int64

	// MaxConcurrent is the number of jobs executing at once (default 2).
	MaxConcurrent int
	// WarmPoolCap bounds the number of idle warm VMs kept (default 8).
	WarmPoolCap int
	// IdleTimeout shuts the daemon down after this long with no requests
	// and no work (0 = run until told to stop).
	IdleTimeout time.Duration
	// DrainTimeout bounds how long a Drain (SIGTERM) waits for running
	// jobs to finish before sealing the journal and stopping (default
	// 10s). Jobs still queued or running at the deadline stay non-terminal
	// in the journal and are replayed by the next incarnation.
	DrainTimeout time.Duration

	// RetryBase and RetryMax shape the capped exponential backoff between
	// automatic re-runs of transiently failed jobs (defaults 50ms / 2s).
	RetryBase time.Duration
	RetryMax  time.Duration

	// JobRetention is how long a terminal job (and its output) stays
	// queryable before being garbage-collected (default 15m, negative =
	// keep forever).
	JobRetention time.Duration
	// MaxJobHistory caps the number of retained terminal jobs regardless
	// of age, oldest evicted first (default 512, negative = unlimited).
	MaxJobHistory int
	// FetchGrace protects a terminal job whose result has never been
	// served from MaxJobHistory eviction for this long after it finished,
	// so a client long-polling Wait between poll windows cannot see a
	// completed job turn into a 404 under sustained load. It must exceed
	// the long-poll window plus client turnaround (default 90s, negative
	// = no protection). JobRetention aging evicts regardless.
	FetchGrace time.Duration
	// ProgCacheCap bounds the compiled-program cache, least recently used
	// evicted first (default 32, negative = unlimited).
	ProgCacheCap int

	// FaultSpec enables daemon-level fault injection (internal/faults);
	// "killat=N" crashes the process at the N-th journal append — the
	// deterministic SIGKILL the crash-recovery smoke schedules.
	FaultSpec string
	// CrashFn overrides how an injected daemon crash dies (tests);
	// default prints a note and os.Exit(137), mimicking SIGKILL.
	CrashFn func()
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Addr == "" {
		out.Addr = "127.0.0.1:0"
	}
	if out.JournalPath == "" && out.PortFile != "" {
		out.JournalPath = out.PortFile + ".journal"
	}
	if out.JournalPath == "none" {
		out.JournalPath = ""
	}
	if out.HeapBudget == 0 {
		out.HeapBudget = 1 << 30
	}
	if out.MaxConcurrent == 0 {
		out.MaxConcurrent = 2
	}
	if out.WarmPoolCap == 0 {
		out.WarmPoolCap = 8
	}
	if out.DrainTimeout == 0 {
		out.DrainTimeout = 10 * time.Second
	}
	if out.RetryBase == 0 {
		out.RetryBase = 50 * time.Millisecond
	}
	if out.RetryMax == 0 {
		out.RetryMax = 2 * time.Second
	}
	if out.JobRetention == 0 {
		out.JobRetention = 15 * time.Minute
	}
	if out.MaxJobHistory == 0 {
		out.MaxJobHistory = 512
	}
	if out.FetchGrace == 0 {
		out.FetchGrace = 3 * longPollWindow
	}
	if out.ProgCacheCap == 0 {
		out.ProgCacheCap = 32
	}
	return out
}

// job is one submitted run and its full lifecycle.
type job struct {
	id       string
	seq      int64
	req      SubmitRequest
	tenant   string
	reserved int64

	attempt     int // 1-based execution attempt
	maxAttempts int
	deadline    time.Time // zero = no deadline
	recovered   bool      // re-enqueued from the journal at startup

	state   string
	warmHit bool
	output  string
	errMsg  string
	errKind string
	stats   *facade.RunStats
	fetched bool // a terminal status has been served at least once

	queuedAt, startedAt, finishedAt time.Time

	cancel context.CancelCauseFunc
	done   chan struct{} // closed when the job reaches a terminal state
}

func (j *job) terminal() bool {
	return j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
}

// jobQueue is a priority queue: higher Priority first, FIFO within a
// priority level.
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].req.Priority != q[j].req.Priority {
		return q[i].req.Priority > q[j].req.Priority
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(*job)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// longPollWindow bounds a GET /v1/jobs/{id}?wait=1 long poll server-side;
// the thin client budgets its per-request deadline against it (plus
// longPollGrace), so the two can never race each other.
const longPollWindow = 30 * time.Second

// Server is a running daemon.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	progs   *progCache
	pool    *warmPool
	journal *journal

	ln      net.Listener
	httpSrv *http.Server
	started time.Time

	mu             sync.Mutex
	jobs           map[string]*job
	finished       []*job // terminal jobs in finish order, for pruning
	queue          jobQueue
	seq            int64
	reserved       int64
	tenantReserved map[string]int64
	running        int
	lastActivity   time.Time
	stopping       bool
	draining       bool
	replayLeft     int // recovered jobs not yet terminal (phase "replaying")
	replayedTotal  int

	// inflight counts HTTP requests currently being served (every
	// endpoint, health probes included). The idle watch treats a nonzero
	// count as activity, so a daemon cannot self-terminate in the gap
	// between a load generator's ramp-up connect and its first submit.
	inflight atomic.Int64

	kick     chan struct{}
	ready    chan struct{} // closed once replay converges (or immediately)
	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup

	cSubmitted, cDone, cFailed, cCanceled, cRejected *obs.Counter
	cRetried, cDeadline, cReplayed                   *obs.Counter
	gRunning, gQueued, gReserved                     *obs.Gauge
	gReplaying, gDraining                            *obs.Gauge
}

// New starts a daemon: replay the journal, listen, write the port file,
// and begin serving. Callers stop it with Shutdown (or POST /v1/shutdown)
// and wait for full termination with Wait; SIGTERM handlers should prefer
// Drain.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		cfg:            cfg,
		reg:            reg,
		progs:          newProgCache(cfg.ProgCacheCap),
		pool:           newWarmPool(cfg.WarmPoolCap, reg),
		started:        time.Now(),
		jobs:           make(map[string]*job),
		tenantReserved: make(map[string]int64),
		kick:           make(chan struct{}, 1),
		ready:          make(chan struct{}),
		stopped:        make(chan struct{}),
		cSubmitted:     reg.Counter(obs.CtrServerSubmitted),
		cDone:          reg.Counter(obs.CtrServerDone),
		cFailed:        reg.Counter(obs.CtrServerFailed),
		cCanceled:      reg.Counter(obs.CtrServerCanceled),
		cRejected:      reg.Counter(obs.CtrServerRejected),
		cRetried:       reg.Counter(obs.CtrServerRetried),
		cDeadline:      reg.Counter(obs.CtrServerDeadline),
		cReplayed:      reg.Counter(obs.CtrServerReplayed),
		gRunning:       reg.Gauge(obs.GaugeServerRunning),
		gQueued:        reg.Gauge(obs.GaugeServerQueued),
		gReserved:      reg.Gauge(obs.GaugeServerReserved),
		gReplaying:     reg.Gauge(obs.GaugeServerReplaying),
		gDraining:      reg.Gauge(obs.GaugeServerDraining),
	}
	s.lastActivity = s.started

	if cfg.JournalPath != "" {
		if err := s.openJournal(cfg.JournalPath); err != nil {
			return nil, err
		}
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if s.journal != nil {
			s.journal.seal()
		}
		return nil, err
	}
	s.ln = ln

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	mux.HandleFunc("POST /v1/shutdown", s.handleShutdown)
	// Every request — healthz/readyz/status included — counts as activity
	// while in flight and stamps lastActivity on completion, so the idle
	// watch never fires under a request that is still being read or served.
	s.httpSrv = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			s.mu.Lock()
			s.lastActivity = time.Now()
			s.mu.Unlock()
		}()
		mux.ServeHTTP(w, r)
	})}

	if cfg.PortFile != "" {
		if err := writePortFile(cfg.PortFile, s.Addr()); err != nil {
			ln.Close()
			if s.journal != nil {
				s.journal.seal()
			}
			return nil, err
		}
	}

	if s.replayLeft == 0 {
		close(s.ready)
	} else {
		s.gReplaying.Set(1)
	}

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.httpSrv.Serve(ln) // returns on Shutdown/Close
	}()
	s.wg.Add(1)
	go s.schedule()
	if cfg.IdleTimeout > 0 {
		s.wg.Add(1)
		go s.idleWatch()
	}
	s.kickScheduler()
	return s, nil
}

// openJournal replays the write-ahead log left by the previous daemon
// incarnation, restores terminal jobs (still queryable), re-enqueues every
// non-terminal job — FACADE jobs are deterministic, so a re-run is
// bit-identical to the run the crash interrupted — compacts the log, and
// reopens it for appending.
func (s *Server) openJournal(path string) error {
	events, err := readJournal(path)
	if err != nil {
		return fmt.Errorf("journal replay: %w", err)
	}
	replayed, maxSeq := replayJournal(events)
	if maxSeq > s.seq {
		s.seq = maxSeq
	}
	now := time.Now()
	for _, rj := range replayed {
		j := &job{
			id:          rj.id,
			seq:         rj.seq,
			req:         rj.req,
			tenant:      rj.tenant,
			attempt:     1,
			maxAttempts: maxAttemptsOf(&rj.req),
			queuedAt:    now,
			done:        make(chan struct{}),
		}
		if rj.state != "" { // terminal: restore the recorded outcome
			j.state = rj.state
			j.output = rj.output
			j.errMsg = rj.errMsg
			j.errKind = rj.errKind
			j.startedAt, j.finishedAt = now, now
			close(j.done)
			s.jobs[j.id] = j
			s.finished = append(s.finished, j)
			continue
		}
		j.state = StateQueued
		j.recovered = true
		j.reserved = int64(j.req.HeapSize)
		if j.req.DeadlineMillis > 0 {
			// The deadline budget restarts: it bounds service latency,
			// not wall-clock survival across daemon crashes.
			j.deadline = now.Add(time.Duration(j.req.DeadlineMillis) * time.Millisecond)
		}
		s.jobs[j.id] = j
		heap.Push(&s.queue, j)
		s.reserved += j.reserved
		s.tenantReserved[j.tenant] += j.reserved
		s.replayLeft++
		s.replayedTotal++
	}
	s.gReserved.Set(s.reserved)
	s.gQueued.Set(int64(len(s.queue)))
	s.cReplayed.Add(int64(s.replayedTotal))

	if err := rewriteJournal(path, compactEvents(replayed)); err != nil {
		return fmt.Errorf("journal compact: %w", err)
	}
	jl, err := createJournal(path, s.reg)
	if err != nil {
		return err
	}
	s.journal = jl
	if s.cfg.FaultSpec != "" {
		fcfg, err := faults.Parse(s.cfg.FaultSpec)
		if err != nil {
			jl.seal()
			return fmt.Errorf("daemon fault spec: %w", err)
		}
		if inj := faults.New(&fcfg); inj != nil {
			crash := s.cfg.CrashFn
			if crash == nil {
				crash = func() {
					fmt.Fprintln(os.Stderr, "repro serve: injected daemon crash (server.crash)")
					os.Exit(137)
				}
			}
			jl.onAppend = func() {
				if inj.Fire(faults.ServerCrash) {
					crash()
				}
			}
		}
	}
	// Deadline timers for recovered queued jobs.
	for _, j := range s.jobs {
		if j.state == StateQueued && !j.deadline.IsZero() {
			s.armDeadline(j)
		}
	}
	return nil
}

func maxAttemptsOf(req *SubmitRequest) int {
	if req.MaxAttempts < 1 {
		return 1
	}
	return req.MaxAttempts
}

// journalAppend writes an event when a journal is configured, swallowing
// errors on the non-durable paths: losing a started/done record to a bad
// disk only means the job re-runs deterministically on recovery.
func (s *Server) journalAppend(ev journalEvent, durable bool) error {
	if s.journal == nil {
		return nil
	}
	err := s.journal.append(ev, durable)
	if errors.Is(err, errJournalClosed) && !durable {
		return nil
	}
	return err
}

// Addr returns the daemon's listen address ("127.0.0.1:port").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Wait blocks until the daemon has fully stopped (idle timeout, shutdown
// endpoint, or Shutdown call).
func (s *Server) Wait() { <-s.stopped }

// WaitReady blocks until startup replay has converged (all recovered jobs
// terminal) and the daemon answers /v1/readyz with 200.
func (s *Server) WaitReady(ctx context.Context) error {
	select {
	case <-s.ready:
		return nil
	case <-s.stopped:
		return errors.New("server stopped before becoming ready")
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Phase reports the lifecycle phase: replaying, ready, draining, or
// stopping.
func (s *Server) Phase() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.phaseLocked()
}

func (s *Server) phaseLocked() string {
	switch {
	case s.stopping:
		return PhaseStopping
	case s.draining:
		return PhaseDraining
	case s.replayLeft > 0:
		return PhaseReplaying
	default:
		return PhaseReady
	}
}

// Shutdown stops the daemon hard: pending and running jobs are canceled,
// the listener closes, and the port file is removed. Idempotent. Prefer
// Drain for a graceful stop that preserves queued work in the journal.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		s.stopping = true
		// Cancel everything still queued; the scheduler skips canceled
		// entries.
		for _, j := range s.jobs {
			if j.state == StateQueued {
				s.finishLocked(j, StateCanceled, "", nil, "server shutting down", ErrKindCanceled)
			} else if j.state == StateRunning && j.cancel != nil {
				j.cancel(fmt.Errorf("server shutting down"))
			}
		}
		s.mu.Unlock()
		s.kickScheduler()

		sctx, stop := context.WithTimeout(ctx, 5*time.Second)
		defer stop()
		s.httpSrv.Shutdown(sctx)
		close(s.stopped)
		if s.cfg.PortFile != "" {
			os.Remove(s.cfg.PortFile)
		}
	})
	// Wait for the scheduler and any running jobs to drain.
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		if s.journal != nil {
			s.journal.seal()
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain is the graceful stop SIGTERM triggers: admission closes (503 +
// Retry-After), running jobs get up to Config.DrainTimeout to finish, the
// queue stays durably checkpointed in the journal for the next
// incarnation, and only then does the daemon stop. Jobs still running at
// the drain deadline are canceled in-process but remain non-terminal on
// disk, so a restart replays them bit-identically.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.stopping || s.draining {
		s.mu.Unlock()
		return s.Shutdown(ctx)
	}
	s.draining = true
	s.gDraining.Set(1)
	s.mu.Unlock()
	s.journalAppend(journalEvent{Kind: jevDrain}, false)

	deadline := time.Now().Add(s.cfg.DrainTimeout)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
drain:
	for time.Now().Before(deadline) {
		s.mu.Lock()
		idle := s.running == 0
		s.mu.Unlock()
		if idle {
			break
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			break drain
		case <-s.stopped:
			break drain
		}
	}
	// Seal before the hard stop: the cancellations Shutdown issues to
	// stragglers must not journal terminal states — those jobs belong to
	// the next incarnation.
	if s.journal != nil {
		s.journal.seal()
	}
	return s.Shutdown(ctx)
}

// Kill abruptly stops the daemon without flushing the journal, journaling
// terminal states, or removing the port file — the in-process stand-in
// for SIGKILL that the crash-recovery tests use. Whatever the last group
// commit covered is exactly what the next incarnation replays.
func (s *Server) Kill() {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		s.stopping = true
		if s.journal != nil {
			s.journal.kill()
		}
		for _, j := range s.jobs {
			if j.state == StateRunning && j.cancel != nil {
				j.cancel(fmt.Errorf("daemon killed"))
			}
		}
		s.mu.Unlock()
		s.httpSrv.Close()
		close(s.stopped)
	})
	s.wg.Wait()
}

func (s *Server) touch() {
	s.mu.Lock()
	s.lastActivity = time.Now()
	s.pruneJobsLocked(s.lastActivity)
	s.mu.Unlock()
}

// pruneJobsLocked garbage-collects terminal jobs: anything older than
// JobRetention, plus oldest-first overflow past MaxJobHistory, so a
// long-lived daemon does not pin every completed job's output forever.
// A job whose terminal status has never been served is immune to the
// history cap for FetchGrace after finishing — under sustained load the
// cap can otherwise evict a completed job a client is still long-polling,
// turning its result into a 404. JobRetention aging evicts regardless:
// a client that has not fetched in 15 minutes is gone. Caller holds s.mu.
func (s *Server) pruneJobsLocked(now time.Time) {
	excess := 0
	if s.cfg.MaxJobHistory > 0 && len(s.finished) > s.cfg.MaxJobHistory {
		excess = len(s.finished) - s.cfg.MaxJobHistory
	}
	if excess == 0 && s.cfg.JobRetention <= 0 {
		return
	}
	kept := s.finished[:0]
	for _, j := range s.finished {
		aged := s.cfg.JobRetention > 0 && now.Sub(j.finishedAt) >= s.cfg.JobRetention
		protected := !j.fetched && s.cfg.FetchGrace > 0 && now.Sub(j.finishedAt) < s.cfg.FetchGrace
		if aged || (excess > 0 && !protected) {
			if excess > 0 {
				excess--
			}
			delete(s.jobs, j.id)
			continue
		}
		kept = append(kept, j)
	}
	tail := s.finished[len(kept):]
	for i := range tail {
		tail[i] = nil
	}
	s.finished = kept
}

func (s *Server) idleWatch() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.IdleTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stopped:
			return
		case <-tick.C:
			s.mu.Lock()
			idle := time.Since(s.lastActivity) >= s.cfg.IdleTimeout &&
				s.running == 0 && len(s.queue) == 0 && !s.stopping && !s.draining &&
				s.inflight.Load() == 0
			s.mu.Unlock()
			if idle {
				go s.Shutdown(context.Background())
				return
			}
		}
	}
}

func (s *Server) kickScheduler() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// schedule moves queued jobs into execution slots as capacity frees up.
// During a drain it starts nothing: queued jobs stay checkpointed for the
// next incarnation.
func (s *Server) schedule() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopped:
			return
		case <-s.kick:
		}
		for {
			s.mu.Lock()
			if s.stopping || s.draining || s.running >= s.cfg.MaxConcurrent || len(s.queue) == 0 {
				s.mu.Unlock()
				break
			}
			j := heap.Pop(&s.queue).(*job)
			if j.terminal() { // canceled while queued
				s.mu.Unlock()
				continue
			}
			if !j.deadline.IsZero() && !time.Now().Before(j.deadline) {
				de := &DeadlineError{JobID: j.id, Limit: time.Duration(j.req.DeadlineMillis) * time.Millisecond}
				s.finishLocked(j, StateFailed, "", nil, de.Error(), ErrKindDeadline)
				s.mu.Unlock()
				continue
			}
			// Create the job's cancelable context here, under s.mu, so a
			// concurrent Shutdown/cancel never observes StateRunning with
			// a nil j.cancel (which would let the job run to completion).
			base := context.Background()
			stopTimer := func() {}
			if !j.deadline.IsZero() {
				base, stopTimer = context.WithDeadlineCause(base, j.deadline,
					&DeadlineError{JobID: j.id, Limit: time.Duration(j.req.DeadlineMillis) * time.Millisecond})
			}
			ctx, cancel := context.WithCancelCause(base)
			j.cancel = cancel
			j.state = StateRunning
			j.startedAt = time.Now()
			s.running++
			s.gRunning.Set(int64(s.running))
			s.gQueued.Set(int64(len(s.queue)))
			s.mu.Unlock()
			s.wg.Add(1)
			go s.runJob(j, ctx, cancel, stopTimer)
		}
	}
}

// runJob executes one admitted job end to end: resolve the compiled
// program (shared cache), take a warm VM when one matches, run through
// facade.RunContext, and return the VM to the pool. Transient failures
// are re-queued with backoff up to the job's attempt budget.
func (s *Server) runJob(j *job, ctx context.Context, cancel context.CancelCauseFunc, stopTimer func()) {
	defer s.wg.Done()
	defer s.kickScheduler()
	defer stopTimer()
	defer cancel(nil)

	s.mu.Lock()
	attempt := j.attempt
	s.mu.Unlock()
	s.journalAppend(journalEvent{
		Kind: jevStarted, Seq: j.seq, JobID: j.id, Tenant: j.tenant, Attempt: attempt,
	}, false)

	key := programKey(&j.req)
	prog, err := s.progs.get(key, func() (*ir.Program, error) { return compileRequest(&j.req) })
	if err != nil {
		s.finish(j, StateFailed, "", nil, "compile: "+err.Error(), ErrKindDeterministic)
		return
	}

	vk := vmKey{prog: key, heap: j.req.HeapSize}
	warm := s.pool.take(vk)
	if warm != nil && warm.Prog != prog {
		// The program was evicted from the cache and recompiled since
		// this VM was pooled; WithReusedVM requires pointer identity.
		s.pool.drop()
		warm = nil
	}
	opts := runOptions(&j.req)
	if warm != nil {
		opts = append(opts, facade.WithReusedVM(warm))
	}
	if attempt >= 2 {
		// Re-derive the fault streams per attempt: an automatic re-run
		// must not deterministically replay the injected failure that
		// caused it (recovery replay restarts at attempt 1, so crash-free
		// and post-crash runs still match bit for bit).
		opts = append(opts, facade.WithFaultAttempt(attempt))
	}

	s.mu.Lock()
	j.warmHit = warm != nil
	s.mu.Unlock()

	res, runErr := facade.RunContext(ctx, prog, opts...)
	var output string
	var stats *facade.RunStats
	if res != nil {
		output = res.Output()
		if res.VM != nil {
			st := res.Stats()
			stats = &st
		}
		res.Close()
		// Return the VM for reuse; put re-verifies it and drops it (a
		// pool rebuild) when a crashed run left threads or pages behind.
		s.pool.put(vk, res.VM)
	}
	if runErr == nil {
		s.finish(j, StateDone, output, stats, "", "")
		return
	}
	switch kind := classifyFailure(runErr); kind {
	case ErrKindCanceled:
		s.finish(j, StateCanceled, output, stats, runErr.Error(), kind)
	case ErrKindDeadline:
		de := &DeadlineError{JobID: j.id, Limit: time.Duration(j.req.DeadlineMillis) * time.Millisecond}
		s.finish(j, StateFailed, output, stats, de.Error(), kind)
	case ErrKindTransient:
		if attempt < j.maxAttempts && s.retryLater(j) {
			return
		}
		s.finish(j, StateFailed, output, stats, runErr.Error(), kind)
	default:
		s.finish(j, StateFailed, output, stats, runErr.Error(), kind)
	}
}

// classifyFailure sorts a run error into the retry taxonomy
// (docs/ROBUSTNESS.md): deadline and cancellation are surfaced as-is;
// injected crash faults and warm-VM reset failures are transient
// (environment trouble — re-running can succeed); everything else —
// compile/verify/lint errors, OutOfMemoryError, page quotas — is
// deterministic and fails fast, because a deterministic program re-run
// against the same inputs can only fail the same way.
func classifyFailure(err error) string {
	var de *DeadlineError
	if errors.As(err, &de) {
		return ErrKindDeadline
	}
	var ce *facade.CanceledError
	if errors.As(err, &ce) {
		if errors.Is(err, context.DeadlineExceeded) {
			return ErrKindDeadline
		}
		return ErrKindCanceled
	}
	msg := err.Error()
	if strings.Contains(msg, "injected fault") || strings.Contains(msg, "reset with") ||
		strings.Contains(msg, "reset:") {
		return ErrKindTransient
	}
	return ErrKindDeterministic
}

// retryLater re-queues a transiently failed job after a capped
// exponential backoff with deterministic jitter. Returns false when the
// daemon is stopping/draining or the job's deadline leaves no headroom —
// the caller then fails the job instead.
func (s *Server) retryLater(j *job) bool {
	s.mu.Lock()
	if j.terminal() || s.stopping || s.draining {
		s.mu.Unlock()
		return false
	}
	if !j.deadline.IsZero() && !time.Now().Before(j.deadline) {
		s.mu.Unlock()
		return false
	}
	j.attempt++
	j.state = StateQueued
	j.cancel = nil
	s.running--
	s.gRunning.Set(int64(s.running))
	s.cRetried.Add(1)
	delay := retryDelay(s.cfg.RetryBase, s.cfg.RetryMax, j.seq, j.attempt)
	s.mu.Unlock()
	time.AfterFunc(delay, func() {
		s.mu.Lock()
		if j.terminal() || j.state != StateQueued || s.stopping {
			s.mu.Unlock()
			return
		}
		heap.Push(&s.queue, j)
		s.gQueued.Set(int64(len(s.queue)))
		s.mu.Unlock()
		s.kickScheduler()
	})
	return true
}

// retryDelay is capped exponential backoff (base doubling per attempt,
// clamped to max) plus deterministic jitter in [0, delay/2] drawn from a
// splitmix64 hash of (job seq, attempt) — reproducible run to run, but
// decorrelated across a batch of jobs failing together.
func retryDelay(base, max time.Duration, seq int64, attempt int) time.Duration {
	d := base << uint(attempt-2)
	if d <= 0 || d > max {
		d = max
	}
	z := uint64(seq)<<8 ^ uint64(attempt)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if half := uint64(d / 2); half > 0 {
		d += time.Duration(z % (half + 1))
	}
	return d
}

// armDeadline fails a job that is still queued when its deadline passes —
// without it, a job stuck behind long-running work would hold its
// reservation and its waiters past the promised bound. Running jobs are
// handled by the context deadline at the interpreter's safepoints.
func (s *Server) armDeadline(j *job) {
	wait := time.Until(j.deadline)
	if wait < 0 {
		wait = 0
	}
	time.AfterFunc(wait, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if j.terminal() || j.state != StateQueued {
			return
		}
		de := &DeadlineError{JobID: j.id, Limit: time.Duration(j.req.DeadlineMillis) * time.Millisecond}
		s.finishLocked(j, StateFailed, "", nil, de.Error(), ErrKindDeadline)
	})
}

// runOptions maps a submit request onto facade options. The daemon
// execution path and the client-side one-shot path share this mapping, so
// the same request runs bit-identically either way.
func runOptions(req *SubmitRequest) []facade.Option {
	opts := []facade.Option{facade.WithHeapSize(req.HeapSize)}
	if req.Entry != "" {
		opts = append(opts, facade.WithEntry(req.Entry))
	}
	if req.RandSeed != nil {
		opts = append(opts, facade.WithRandSeed(*req.RandSeed))
	}
	if req.PageQuota > 0 {
		opts = append(opts, facade.WithPageQuota(req.PageQuota))
	}
	if req.TierHighPages > 0 {
		dir := req.TierDir
		if dir == "" {
			dir = os.TempDir()
		}
		opts = append(opts, facade.WithTiering(dir, req.TierHighPages, req.TierLowPages))
	}
	if req.Faults != "" {
		opts = append(opts, facade.WithFaults(req.Faults))
	}
	return opts
}

// OneShot runs a submit request in-process, without a daemon: the exact
// compile-and-run path runJob takes, minus warm-pool reuse. `repro submit
// -oneshot` uses it, and the CI daemon smoke compares daemon outputs
// against it byte for byte.
func OneShot(req SubmitRequest) (string, *facade.RunStats, error) {
	req.Schema = Schema
	if err := req.Validate(); err != nil {
		return "", nil, err
	}
	if req.HeapSize == 0 {
		req.HeapSize = 64 << 20
	}
	prog, err := compileRequest(&req)
	if err != nil {
		return "", nil, fmt.Errorf("compile: %w", err)
	}
	res, err := facade.Run(prog, runOptions(&req)...)
	if res == nil {
		return "", nil, err
	}
	out := res.Output()
	var stats *facade.RunStats
	if res.VM != nil {
		st := res.Stats()
		stats = &st
	}
	res.Close()
	return out, stats, err
}

func (s *Server) finish(j *job, state, output string, stats *facade.RunStats, errMsg, errKind string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finishLocked(j, state, output, stats, errMsg, errKind)
}

// finishLocked moves a job to a terminal state, releases its budget
// reservation, journals the outcome, and wakes any status long-pollers.
// Caller holds s.mu.
func (s *Server) finishLocked(j *job, state, output string, stats *facade.RunStats, errMsg, errKind string) {
	if j.terminal() {
		return
	}
	wasRunning := j.state == StateRunning
	j.state = state
	j.output = output
	j.stats = stats
	j.errMsg = errMsg
	j.errKind = errKind
	j.finishedAt = time.Now()
	if j.startedAt.IsZero() {
		j.startedAt = j.finishedAt
	}
	s.reserved -= j.reserved
	s.tenantReserved[j.tenant] -= j.reserved
	s.gReserved.Set(s.reserved)
	if wasRunning {
		s.running--
		s.gRunning.Set(int64(s.running))
	}
	switch state {
	case StateDone:
		s.cDone.Add(1)
	case StateFailed:
		s.cFailed.Add(1)
	case StateCanceled:
		s.cCanceled.Add(1)
	}
	if errKind == ErrKindDeadline {
		s.cDeadline.Add(1)
	}
	if j.recovered && s.replayLeft > 0 {
		s.replayLeft--
		if s.replayLeft == 0 {
			s.gReplaying.Set(0)
			close(s.ready)
		}
	}
	s.lastActivity = j.finishedAt
	s.finished = append(s.finished, j)
	s.pruneJobsLocked(j.finishedAt)
	s.journalAppend(journalEvent{
		Kind: jevDone, Seq: j.seq, JobID: j.id, Tenant: j.tenant, Attempt: j.attempt,
		State: state, ErrKind: errKind, Output: output, Error: errMsg,
	}, false)
	close(j.done)
}

// --- HTTP handlers -------------------------------------------------------

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.touch()
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error(), 0)
		return
	}
	if err := req.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if req.HeapSize == 0 {
		req.HeapSize = 64 << 20
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	need := int64(req.HeapSize)

	s.mu.Lock()
	if ph := s.phaseLocked(); ph != PhaseReady {
		hint := s.retryHintLocked()
		s.mu.Unlock()
		s.writeError(w, http.StatusServiceUnavailable, "server "+ph+", not accepting jobs", hint)
		return
	}
	if s.reserved+need > s.cfg.HeapBudget {
		hint := s.retryHintLocked()
		s.mu.Unlock()
		s.cRejected.Add(1)
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("aggregate heap budget exhausted: %d reserved + %d requested > %d",
				s.reserved, need, s.cfg.HeapBudget), hint)
		return
	}
	if tb := s.tenantBudget(req.Tenant); tb > 0 && s.tenantReserved[req.Tenant]+need > tb {
		hint := s.retryHintLocked()
		s.mu.Unlock()
		s.cRejected.Add(1)
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q heap budget exhausted: %d reserved + %d requested > %d",
				req.Tenant, s.tenantReserved[req.Tenant], need, tb), hint)
		return
	}
	s.seq++
	j := &job{
		id:          fmt.Sprintf("job-%06d", s.seq),
		seq:         s.seq,
		req:         req,
		tenant:      req.Tenant,
		reserved:    need,
		attempt:     1,
		maxAttempts: maxAttemptsOf(&req),
		state:       StateQueued,
		queuedAt:    time.Now(),
		done:        make(chan struct{}),
	}
	if req.DeadlineMillis > 0 {
		j.deadline = j.queuedAt.Add(time.Duration(req.DeadlineMillis) * time.Millisecond)
	}
	s.jobs[j.id] = j
	s.reserved += need
	s.tenantReserved[req.Tenant] += need
	s.gReserved.Set(s.reserved)
	s.cSubmitted.Add(1)
	s.mu.Unlock()

	// Write-ahead: the job becomes durable (and only then runnable)
	// before the 202 goes out, so an acknowledged job survives SIGKILL.
	// Group commit batches concurrent submissions into one fsync.
	ev := journalEvent{Kind: jevSubmitted, Seq: j.seq, JobID: j.id, Tenant: j.tenant, Req: &j.req}
	if err := s.journalAppend(ev, true); err != nil {
		s.mu.Lock()
		s.finishLocked(j, StateCanceled, "", nil, "journal write failed: "+err.Error(), ErrKindTransient)
		hint := s.retryHintLocked()
		s.mu.Unlock()
		s.writeError(w, http.StatusServiceUnavailable, "journal write failed: "+err.Error(), hint)
		return
	}

	s.mu.Lock()
	if !j.terminal() { // canceled (shutdown) while the journal write was in flight
		heap.Push(&s.queue, j)
		s.gQueued.Set(int64(len(s.queue)))
	}
	s.mu.Unlock()
	if !j.deadline.IsZero() {
		s.armDeadline(j)
	}
	s.kickScheduler()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	EncodeJob(w, SubmitResponse{Schema: Schema, JobID: j.id, State: StateQueued})
}

// Backpressure hint bounds (milliseconds). The hint itself is computed
// per rejection by retryHintLocked, never a flat constant: a constant
// makes every rejected client in a burst back off identically and
// re-stampede together.
const (
	retryHintBase = 50
	retryHintMax  = 10_000
)

// retryHintLocked estimates how long a rejected client should back off,
// in milliseconds, from the state that caused the rejection: the hint
// grows with queue depth per execution slot (a proxy for time until a
// slot frees) and stretches as heap reservations approach the aggregate
// budget. Caller holds s.mu.
func (s *Server) retryHintLocked() int64 {
	slots := s.cfg.MaxConcurrent
	if slots < 1 {
		slots = 1
	}
	depth := int64(len(s.queue)) + int64(s.running)
	hint := int64(retryHintBase) + depth*retryHintBase/int64(slots)
	if s.cfg.HeapBudget > 0 {
		// Reservation pressure: at a full budget the hint doubles.
		hint += hint * s.reserved / s.cfg.HeapBudget
	}
	if hint > retryHintMax {
		hint = retryHintMax
	}
	return hint
}

// retryHint is retryHintLocked for callers not holding s.mu.
func (s *Server) retryHint() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retryHintLocked()
}

func (s *Server) tenantBudget(tenant string) int64 {
	if b, ok := s.cfg.TenantBudgets[tenant]; ok {
		return b
	}
	return s.cfg.TenantBudget
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.touch()
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, "no such job", 0)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		// Long-poll: block until the job is terminal (bounded, so a
		// stuck client retries rather than pinning a connection).
		select {
		case <-j.done:
		case <-time.After(longPollWindow):
		case <-s.stopped:
		}
		s.touch()
	}
	w.Header().Set("Content-Type", "application/json")
	EncodeJob(w, s.jobStatus(j))
}

func (s *Server) jobStatus(j *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.terminal() {
		// The result has been served: the job is now fair game for
		// MaxJobHistory eviction (see pruneJobsLocked).
		j.fetched = true
	}
	st := JobStatus{
		Schema:         Schema,
		JobID:          j.id,
		Tenant:         j.tenant,
		State:          j.state,
		WarmHit:        j.warmHit,
		Output:         j.output,
		Error:          j.errMsg,
		ErrorKind:      j.errKind,
		Stats:          j.stats,
		Attempt:        j.attempt,
		DeadlineMillis: j.req.DeadlineMillis,
		HeapReserved:   j.reserved,
	}
	switch j.state {
	case StateQueued:
		st.QueuedNanos = time.Since(j.queuedAt).Nanoseconds()
		for i, q := range s.queue {
			if q == j {
				st.QueuePosition = i + 1
				break
			}
		}
	case StateRunning:
		st.QueuedNanos = j.startedAt.Sub(j.queuedAt).Nanoseconds()
		st.RunningNanos = time.Since(j.startedAt).Nanoseconds()
	default:
		st.QueuedNanos = j.startedAt.Sub(j.queuedAt).Nanoseconds()
		st.RunningNanos = j.finishedAt.Sub(j.startedAt).Nanoseconds()
		st.HeapReserved = 0
	}
	return st
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.touch()
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if ok {
		switch j.state {
		case StateQueued:
			s.finishLocked(j, StateCanceled, "", nil, "canceled by client", ErrKindCanceled)
		case StateRunning:
			if j.cancel != nil {
				j.cancel(fmt.Errorf("canceled by client"))
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, "no such job", 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	EncodeJob(w, s.jobStatus(j))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.touch()
	w.Header().Set("Content-Type", "application/json")
	EncodeJob(w, s.Status())
}

// handleHealthz is liveness: the process is up and serving HTTP. It says
// nothing about whether work is being accepted — that is readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	EncodeJob(w, ReadyStatus{Schema: Schema, Ready: true, Phase: s.Phase()})
}

// handleReadyz is readiness: 200 exactly when the daemon accepts new
// jobs — false (503 + Retry-After) while replaying the journal after a
// crash and while draining toward shutdown.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ph := s.Phase()
	w.Header().Set("Content-Type", "application/json")
	if ph != PhaseReady {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	EncodeJob(w, ReadyStatus{Schema: Schema, Ready: ph == PhaseReady, Phase: ph})
}

// Status snapshots the daemon-wide state (also served at GET /v1/status).
func (s *Server) Status() ServerStatus {
	snap := s.reg.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ServerStatus{
		Schema:       Schema,
		PID:          os.Getpid(),
		Started:      s.started.UTC().Format(time.RFC3339),
		Phase:        s.phaseLocked(),
		HeapBudget:   s.cfg.HeapBudget,
		HeapReserved: s.reserved,
		JobsRunning:  s.running,
		JobsDone:     int(snap.Counters[obs.CtrServerDone]),
		JobsFailed:   int(snap.Counters[obs.CtrServerFailed]),
		JobsCanceled: int(snap.Counters[obs.CtrServerCanceled]),
		JobsRejected: int(snap.Counters[obs.CtrServerRejected]),
		JobsReplayed: s.replayedTotal,
		JobsRetried:  int(snap.Counters[obs.CtrServerRetried]),
		WarmPoolSize: s.pool.len(),
		WarmHits:     snap.Counters[obs.CtrServerWarmHits],
		WarmMisses:   snap.Counters[obs.CtrServerWarmMisses],
		PoolRebuilds: snap.Counters[obs.CtrServerPoolDrops],
		Tenants:      make(map[string]TenantStatus),
	}
	for _, j := range s.jobs {
		if j.state == StateQueued {
			st.JobsQueued++
		}
	}
	for tenant, res := range s.tenantReserved {
		ts := TenantStatus{HeapBudget: s.tenantBudget(tenant), HeapReserved: res}
		for _, j := range s.jobs {
			if j.tenant != tenant {
				continue
			}
			switch j.state {
			case StateQueued:
				ts.JobsQueued++
			case StateRunning:
				ts.JobsRunning++
			}
		}
		st.Tenants[tenant] = ts
	}
	return st
}

func (s *Server) handleShutdown(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	EncodeJob(w, map[string]string{"schema": Schema, "state": "stopping"})
	if r.URL.Query().Get("drain") != "" {
		go s.Drain(context.Background())
		return
	}
	go s.Shutdown(context.Background())
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string, retryMillis int64) {
	w.Header().Set("Content-Type", "application/json")
	if retryMillis > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((retryMillis+999)/1000, 10))
	}
	w.WriteHeader(code)
	EncodeJob(w, ErrorResponse{Schema: Schema, Error: msg, RetryAfterMillis: retryMillis})
}

// --- port file -----------------------------------------------------------

// portFileInfo is the discovery record the daemon writes next to its
// socket: enough for a client to find and health-check it.
type portFileInfo struct {
	Schema string `json:"schema"`
	PID    int    `json:"pid"`
	Addr   string `json:"addr"`
}

func writePortFile(path, addr string) error {
	data, err := json.Marshal(portFileInfo{Schema: Schema, PID: os.Getpid(), Addr: addr})
	if err != nil {
		return err
	}
	// Write-then-rename so a concurrently starting client never reads a
	// torn file.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
