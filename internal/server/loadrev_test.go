package server

// Regression tests for the daemon bugs that only show up under sustained
// load (revealed by the repro load harness, internal/load): lockstep
// backpressure hints, history-cap eviction of still-awaited results, and
// idle self-termination under an in-flight request.

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryHintScalesWithLoad: the 429 backoff hint must grow with queue
// depth and reservation pressure. A flat constant makes every rejected
// client in a burst back off identically and re-stampede together.
func TestRetryHintScalesWithLoad(t *testing.T) {
	s, c := newTestServer(t, Config{MaxConcurrent: 1, HeapBudget: 8 << 20})

	rejected := func(req SubmitRequest) time.Duration {
		t.Helper()
		_, err := c.Submit(req)
		rej, ok := err.(*RejectedError)
		if !ok {
			t.Fatalf("expected RejectedError, got %v", err)
		}
		return rej.RetryAfter
	}

	// Light load: empty daemon, request alone exceeds the budget.
	light := rejected(SubmitRequest{
		Sources:  map[string]string{"s.fj": seededSrc},
		HeapSize: 16 << 20,
	})

	// Heavy load: one slow job running, several queued, budget exhausted.
	slow, err := c.Submit(SubmitRequest{
		Sources:  map[string]string{"s.fj": slowSrc},
		HeapSize: 1 << 20,
	})
	if err != nil {
		t.Fatalf("slow submit: %v", err)
	}
	var queued []string
	for i := 0; i < 7; i++ {
		resp, err := c.Submit(SubmitRequest{
			Sources:  map[string]string{"s.fj": seededSrc},
			HeapSize: 1 << 20,
		})
		if err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
		queued = append(queued, resp.JobID)
	}
	heavy := rejected(SubmitRequest{
		Sources:  map[string]string{"s.fj": seededSrc},
		HeapSize: 1 << 20,
	})

	if heavy <= light {
		t.Fatalf("hint does not scale with load: light=%v heavy=%v", light, heavy)
	}
	if light <= 0 || light >= time.Second {
		t.Fatalf("light hint %v outside millisecond-precision range", light)
	}
	if hint := s.retryHint(); hint > retryHintMax*int64(time.Millisecond) {
		t.Fatalf("hint %d above cap", hint)
	}

	// Unwedge: cancel everything so Cleanup's shutdown is fast.
	c.Cancel(slow.JobID)
	for _, id := range queued {
		c.Cancel(id)
	}
}

// TestSubmitWithRetryPrefersBodyHint: when the daemon supplies a
// millisecond-precision retry_after_ms, the client must back off on that
// — not on the whole-second Retry-After header and not on its own (much
// larger) exponential schedule.
func TestSubmitWithRetryPrefersBodyHint(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1") // coarse, rounded up
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(ErrorResponse{Schema: Schema, Error: "busy", RetryAfterMillis: 40})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(SubmitResponse{Schema: Schema, JobID: "job-000001", State: StateQueued})
	}))
	defer srv.Close()

	var slept []time.Duration
	var rejections int
	c := &Client{BaseURL: srv.URL}
	_, err := c.SubmitWithRetry(SubmitRequest{Sources: map[string]string{"a.fj": "x"}}, SubmitOptions{
		MaxRetries:  3,
		BaseBackoff: 3 * time.Second, // exponential fallback would be huge
		Seed:        11,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
		OnReject:    func(*RejectedError) { rejections++ },
	})
	if err != nil {
		t.Fatalf("SubmitWithRetry: %v", err)
	}
	if len(slept) != 1 || rejections != 1 {
		t.Fatalf("slept %v, rejections %d; want one backoff", slept, rejections)
	}
	// 40ms hint + jitter in [0, 20ms]: far under both the 1s header and
	// the 3s exponential fallback.
	if slept[0] < 40*time.Millisecond || slept[0] > 100*time.Millisecond {
		t.Fatalf("backoff %v, want the 40ms body hint (+jitter), not the coarse header or exponential", slept[0])
	}
}

// TestPruneKeepsUnfetchedTerminalJob fills the job history past
// MaxJobHistory while a client still has a Wait outstanding on an
// already-completed job (it finished between the client's long-poll
// windows and was never fetched). The cap must not turn that completed
// job into a 404; once its result HAS been served, the cap applies again.
func TestPruneKeepsUnfetchedTerminalJob(t *testing.T) {
	s, c := newTestServer(t, Config{MaxConcurrent: 2, MaxJobHistory: 2})
	seed := int64(3)
	req := SubmitRequest{
		Sources:  map[string]string{"s.fj": seededSrc},
		HeapSize: 8 << 20,
		RandSeed: &seed,
	}

	// Submit job A and let it finish WITHOUT ever fetching its status —
	// the moral equivalent of a Wait client between poll windows.
	respA, err := c.Submit(req)
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	s.mu.Lock()
	jA := s.jobs[respA.JobID]
	s.mu.Unlock()
	select {
	case <-jA.done:
	case <-time.After(30 * time.Second):
		t.Fatal("job A did not finish")
	}

	// Fill the history well past the cap with fetched jobs.
	for i := 0; i < 6; i++ {
		st := submitWait(t, c, req)
		if st.State != StateDone {
			t.Fatalf("filler job %d: %s (%s)", i, st.State, st.Error)
		}
	}

	// The outstanding Wait now fetches A: it must still be there.
	st, err := c.Wait(respA.JobID)
	if err != nil {
		t.Fatalf("completed job evicted before its result was ever fetched: %v", err)
	}
	if st.State != StateDone || st.Output == "" {
		t.Fatalf("job A status = %s output %q", st.State, st.Output)
	}

	// A has been fetched once; the history cap applies to it again.
	for i := 0; i < 4; i++ {
		submitWait(t, c, req)
	}
	if _, err := c.Job(respA.JobID); err == nil || !strings.Contains(err.Error(), "no such job") {
		t.Fatalf("fetched job A survived the cap indefinitely: err=%v", err)
	}
}

// TestIdleWatchCountsInflightRequests: a daemon with a short idle timeout
// must not self-terminate while an HTTP request is still in flight — the
// gap between a load generator's ramp-up connect and its first submit
// burst. The request here is a submit whose body arrives slowly, held
// open across several idle periods.
func TestIdleWatchCountsInflightRequests(t *testing.T) {
	s, _ := newTestServer(t, Config{IdleTimeout: 150 * time.Millisecond})

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Headers complete, body deliberately unfinished: the submit handler
	// blocks reading it, holding one request in flight.
	partial := "POST /v1/jobs HTTP/1.1\r\nHost: repro\r\nContent-Type: application/json\r\nContent-Length: 400\r\n\r\n{\"schema\":"
	if _, err := conn.Write([]byte(partial)); err != nil {
		t.Fatal(err)
	}

	// Hold the request open for several idle periods; the daemon must
	// stay up the whole time.
	select {
	case <-s.stopped:
		t.Fatal("daemon idle-shutdown fired under an in-flight request")
	case <-time.After(5 * s.cfg.IdleTimeout):
	}

	// Release the request; with nothing in flight the idle watch may now
	// shut the daemon down.
	conn.Close()
	select {
	case <-s.stopped:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not idle out after the in-flight request ended")
	}
}
