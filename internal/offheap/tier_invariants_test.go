package offheap

import (
	"errors"
	"os"
	"testing"

	"repro/internal/faults"
)

// newTieredRuntime builds a store with a disk tier in a test temp dir.
// The dir is checked empty at test end: a tier must clean up its spill
// file on Reset.
func newTieredRuntime(t *testing.T, high, low int, portable bool) (*Runtime, string) {
	t.Helper()
	dir := t.TempDir()
	rt := NewRuntime()
	if err := rt.EnableTiering(TierConfig{Dir: dir, HighWater: high, LowWater: low, ForcePortable: portable}); err != nil {
		t.Fatal(err)
	}
	return rt, dir
}

// checkTierAccounting asserts the core tier invariant: every live page is
// either resident or on disk, never both, never neither.
func checkTierAccounting(t *testing.T, rt *Runtime) {
	t.Helper()
	s := rt.Stats()
	if s.PagesResident+s.PagesDisk != s.PagesLive {
		t.Fatalf("resident(%d) + disk(%d) != live(%d)", s.PagesResident, s.PagesDisk, s.PagesLive)
	}
	if s.PagesResident < 0 || s.PagesDisk < 0 {
		t.Fatalf("negative tier gauge: resident=%d disk=%d", s.PagesResident, s.PagesDisk)
	}
}

// dedicated allocates a record big enough to get a PageSize page to
// itself — the ideal eviction candidate (unpinned as soon as the alloc
// returns).
func dedicated(t *testing.T, m *PageManager, typeID uint16) PageRef {
	t.Helper()
	return mustRecord(t, m, typeID, 20000)
}

func forBothBackends(t *testing.T, f func(t *testing.T, portable bool)) {
	t.Run("mmap", func(t *testing.T) { f(t, false) })
	t.Run("portable", func(t *testing.T) { f(t, true) })
}

func TestTierSpillPromoteRoundtrip(t *testing.T) {
	forBothBackends(t, func(t *testing.T, portable bool) {
		rt, _ := newTieredRuntime(t, 4, 2, portable)
		ic := 0
		s := newScope(rt, &ic, 0)
		defer s.Close()
		const n = 12
		refs := make([]PageRef, n)
		for i := range refs {
			refs[i] = dedicated(t, s.Current(), uint16(i+1))
			rt.SetLong(refs[i], 0, int64(i)*1_000_003)
			rt.SetDouble(refs[i], 8, float64(i)+0.5)
			checkTierAccounting(t, rt)
		}
		st := rt.Stats()
		if st.PagesSpilled == 0 {
			t.Fatal("watermark pressure produced no spills")
		}
		if st.PagesResident > 4 {
			t.Fatalf("resident %d above high watermark after allocation", st.PagesResident)
		}
		// Reading every record promotes the spilled ones back; the data
		// must be bit-identical to what was written.
		for i, ref := range refs {
			if got := rt.GetLong(ref, 0); got != int64(i)*1_000_003 {
				t.Fatalf("record %d long = %d after spill/promote", i, got)
			}
			if got := rt.GetDouble(ref, 8); got != float64(i)+0.5 {
				t.Fatalf("record %d double = %v after spill/promote", i, got)
			}
			checkTierAccounting(t, rt)
		}
		if rt.Stats().PagesPromoted == 0 {
			t.Fatal("reads of spilled pages did not promote")
		}
	})
}

func TestTierNoDoubleSpillOrPromote(t *testing.T) {
	rt, _ := newTieredRuntime(t, 3, 1, false)
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	refs := make([]PageRef, 10)
	for i := range refs {
		refs[i] = dedicated(t, s.Current(), 1)
	}
	// Re-touch in rounds: each touch promotes at most once, each eviction
	// spills at most once, and while no page has been released every
	// spill is either still on disk or was promoted back — never both.
	for round := 0; round < 3; round++ {
		for i, ref := range refs {
			rt.SetInt(ref, 0, int32(round*100+i))
		}
	}
	st := rt.Stats()
	if st.PagesSpilled-st.PagesPromoted != st.PagesDisk {
		t.Fatalf("spilled(%d) - promoted(%d) != disk(%d): double spill or double promote",
			st.PagesSpilled, st.PagesPromoted, st.PagesDisk)
	}
	for i, ref := range refs {
		if got := rt.GetInt(ref, 0); got != int32(200+i) {
			t.Fatalf("record %d = %d after churn", i, got)
		}
	}
	checkTierAccounting(t, rt)
}

func TestTierPinnedPageNeverEvicted(t *testing.T) {
	rt, _ := newTieredRuntime(t, 2, 1, false)
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	ref := dedicated(t, s.Current(), 1)
	rt.SetLong(ref, 0, 42)
	idx, _ := splitRef(ref)
	p := (*rt.table.Load())[idx]
	p.pinned.Add(1) // simulate an in-flight record operation
	defer p.pinned.Add(-1)
	for i := 0; i < 8; i++ {
		dedicated(t, s.Current(), 2)
	}
	p.tierMu.Lock()
	spilled := p.spilled
	p.tierMu.Unlock()
	if spilled {
		t.Fatal("evictor spilled a pinned page")
	}
	if got := rt.GetLong(ref, 0); got != 42 {
		t.Fatalf("pinned page content = %d", got)
	}
	checkTierAccounting(t, rt)
}

func TestTierBumpPageNeverEvicted(t *testing.T) {
	rt, _ := newTieredRuntime(t, 2, 1, false)
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	// A small record opens a class-0 bump page; the manager holds its
	// acquire pin while it is the allocation target, so the eviction
	// pressure from the dedicated pages must never select it.
	ref := mustRecord(t, s.Current(), 1, 32)
	rt.SetInt(ref, 0, 7)
	idx, _ := splitRef(ref)
	bump := (*rt.table.Load())[idx]
	for i := 0; i < 10; i++ {
		dedicated(t, s.Current(), 2)
		bump.tierMu.Lock()
		spilled := bump.spilled
		bump.tierMu.Unlock()
		if spilled {
			t.Fatalf("evictor spilled the manager's bump page on round %d", i)
		}
		// Bump allocation into the page must keep working under pressure.
		r2 := mustRecord(t, s.Current(), 1, 32)
		rt.SetInt(r2, 0, int32(i))
		if rt.GetInt(r2, 0) != int32(i) {
			t.Fatal("bump allocation corrupted under eviction pressure")
		}
	}
	if rt.GetInt(ref, 0) != 7 {
		t.Fatal("bump page content lost")
	}
}

func TestTierIterationReleaseSkipsReadback(t *testing.T) {
	forBothBackends(t, func(t *testing.T, portable bool) {
		rt, _ := newTieredRuntime(t, 2, 1, portable)
		ic := 0
		s := newScope(rt, &ic, 0)
		defer s.Close()
		s.IterationStart()
		for i := 0; i < 8; i++ {
			dedicated(t, s.Current(), 1)
		}
		before := rt.Stats()
		if before.PagesDisk == 0 {
			t.Fatal("setup: nothing spilled")
		}
		s.IterationEnd()
		after := rt.Stats()
		if after.PagesPromoted != before.PagesPromoted {
			t.Fatalf("iteration release read %d spilled page(s) back from disk",
				after.PagesPromoted-before.PagesPromoted)
		}
		if after.PagesDisk != 0 || after.PagesLive != 0 {
			t.Fatalf("release left disk=%d live=%d", after.PagesDisk, after.PagesLive)
		}
	})
}

func TestTierQuotaSpillsBeforeFailing(t *testing.T) {
	rt, _ := newTieredRuntime(t, 1000, 999, false)
	rt.SetPageQuota(3) // caps DRAM-resident pages when tiered
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	refs := make([]PageRef, 10)
	for i := range refs {
		// Untiered, the 4th acquire would fail with ErrPageQuota; with a
		// tier the store spills first — the new first rung of the ladder.
		refs[i] = dedicated(t, s.Current(), 1)
		rt.SetLong(refs[i], 0, int64(i))
	}
	st := rt.Stats()
	if st.PagesResident > 3 {
		t.Fatalf("quota let %d pages stay resident", st.PagesResident)
	}
	if st.PagesSpilled == 0 {
		t.Fatal("quota pressure did not spill")
	}
	for i, ref := range refs {
		if got := rt.GetLong(ref, 0); got != int64(i) {
			t.Fatalf("record %d = %d under quota spill", i, got)
		}
	}
	checkTierAccounting(t, rt)
}

func TestTierLoadFaultSurfacesAsPageExhausted(t *testing.T) {
	rt, _ := newTieredRuntime(t, 2, 1, false)
	rt.SetFaultInjector(faults.New(&faults.Config{Seed: 5, TierLoadAt: 1}))
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	refs := make([]PageRef, 6)
	for i := range refs {
		refs[i] = dedicated(t, s.Current(), 1)
		rt.SetLong(refs[i], 0, int64(i))
	}
	var tf *TierFault
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("injected TierLoad did not fire on the first promotion")
			}
			var ok bool
			if tf, ok = r.(*TierFault); !ok {
				panic(r)
			}
		}()
		for _, ref := range refs {
			rt.GetLong(ref, 0)
		}
	}()
	if !errors.Is(tf, ErrPageExhausted) {
		t.Fatalf("TierFault %v does not wrap ErrPageExhausted", tf)
	}
	// The schedule is one-shot: a retry of the same reads succeeds with
	// the original values — the degradation ladder's replay contract.
	for i, ref := range refs {
		if got := rt.GetLong(ref, 0); got != int64(i) {
			t.Fatalf("record %d = %d on retry after injected load fault", i, got)
		}
	}
	checkTierAccounting(t, rt)
}

func TestTierSpillFaultIsBestEffort(t *testing.T) {
	rt, _ := newTieredRuntime(t, 2, 1, false)
	rt.SetFaultInjector(faults.New(&faults.Config{Seed: 5, TierSpillAt: 1}))
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	refs := make([]PageRef, 8)
	for i := range refs {
		refs[i] = dedicated(t, s.Current(), 1) // first eviction attempt fails silently
		rt.SetLong(refs[i], 0, int64(i))
	}
	for i, ref := range refs {
		if got := rt.GetLong(ref, 0); got != int64(i) {
			t.Fatalf("record %d = %d after injected spill fault", i, got)
		}
	}
	if rt.Stats().PagesSpilled == 0 {
		t.Fatal("one-shot spill fault permanently disabled eviction")
	}
	checkTierAccounting(t, rt)
}

func TestTierResetTearsDownSpillFile(t *testing.T) {
	forBothBackends(t, func(t *testing.T, portable bool) {
		rt, dir := newTieredRuntime(t, 2, 1, portable)
		ic := 0
		s := newScope(rt, &ic, 0)
		for i := 0; i < 6; i++ {
			dedicated(t, s.Current(), 1)
		}
		if ents, _ := os.ReadDir(dir); len(ents) != 1 {
			t.Fatalf("expected one spill file during the run, found %d entries", len(ents))
		}
		s.Close()
		if err := rt.Reset(nil, nil); err != nil {
			t.Fatal(err)
		}
		if rt.Tiered() {
			t.Fatal("Reset left the tier attached")
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Fatalf("Reset leaked %d spill file(s): %v", len(ents), ents)
		}
		st := rt.Stats()
		if st.PagesSpilled != 0 || st.PagesResident != 0 || st.PagesDisk != 0 {
			t.Fatalf("Reset left tier counters: %+v", st)
		}
	})
}

func TestEnableTieringValidation(t *testing.T) {
	rt := NewRuntime()
	if err := rt.EnableTiering(TierConfig{Dir: t.TempDir(), HighWater: 0, LowWater: 0}); err == nil {
		t.Fatal("zero high watermark accepted")
	}
	if err := rt.EnableTiering(TierConfig{Dir: t.TempDir(), HighWater: 2, LowWater: 5}); err == nil {
		t.Fatal("low watermark above high accepted")
	}
	dir := t.TempDir()
	if err := rt.EnableTiering(TierConfig{Dir: dir, HighWater: 4, LowWater: 2}); err != nil {
		t.Fatal(err)
	}
	if err := rt.EnableTiering(TierConfig{Dir: dir, HighWater: 4, LowWater: 2}); err == nil {
		t.Fatal("double enable accepted")
	}
}
