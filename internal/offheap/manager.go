package offheap

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Size classes for record allocation (§3.6): each class serves a range of
// record sizes from its own pages, "similarly to what a high-performance
// allocator would do". Records larger than half a page get an empty page
// to themselves; records larger than a page go to the oversize class.
var sizeClasses = [...]int{64, 256, 1024, 4096, PageSize / 2}

const numClasses = len(sizeClasses)

func classFor(size int) int {
	for i, c := range sizeClasses {
		if size <= c {
			return i
		}
	}
	return -1 // dedicated or oversize page
}

// PageManager allocates records for one ⟨iterationID, thread⟩ pair and
// owns the pages it allocates from. Managers form the runtime tree of
// §3.6: a sub-iteration's manager is a child of the enclosing iteration's
// manager, and a new thread's default manager is a child of the manager
// current in the creating thread. Releasing a manager releases the whole
// subtree's pages at once.
//
// Alloc is single-threaded by construction (a manager belongs to one
// thread); the children list is the only shared state.
type PageManager struct {
	rt     *Runtime
	parent *PageManager

	childMu  sync.Mutex
	children []*PageManager

	cur      [numClasses]*page
	pages    []*page
	hwPages  int // most pages this manager has owned at once
	released bool

	// IterID identifies the iteration this manager serves; -1 is the
	// thread-default manager ⟨⊥, t⟩. ThreadID identifies the owning thread.
	IterID   int
	ThreadID int
}

// NewManager creates a page manager. parent may be nil for a root manager.
func (rt *Runtime) NewManager(parent *PageManager, iterID, threadID int) *PageManager {
	m := &PageManager{rt: rt, parent: parent, IterID: iterID, ThreadID: threadID}
	rt.stats.managers.Add(1)
	if parent != nil {
		parent.childMu.Lock()
		parent.children = append(parent.children, m)
		parent.childMu.Unlock()
	}
	return m
}

// alloc returns a page reference to size zeroed bytes. Allocation from a
// released manager and page-acquire failures surface as typed errors
// (ErrReleasedManager, ErrPageExhausted) rather than panics, so they can
// propagate through the VM boundary and be recovered from.
func (m *PageManager) alloc(size int) (PageRef, error) {
	if m.released {
		return 0, fmt.Errorf("%w (iteration %d, thread %d)", ErrReleasedManager, m.IterID, m.ThreadID)
	}
	size = (size + 7) &^ 7
	ci := classFor(size)
	if ci < 0 || size > PageSize/2 {
		// Large record: an empty page of its own ("large arrays are
		// allocated on empty pages"), oversize if it exceeds PageSize.
		want := size
		if want < PageSize {
			want = PageSize
		}
		p, err := m.rt.getPage(want)
		if err != nil {
			return 0, err
		}
		m.pages = append(m.pages, p)
		m.notePages()
		p.pos = size
		zero(p.buf[:size])
		return MakeRef(p.idx, 0), nil
	}
	p := m.cur[ci]
	if p == nil || p.pos+size > len(p.buf) {
		var err error
		p, err = m.rt.getPage(PageSize)
		if err != nil {
			return 0, err
		}
		m.pages = append(m.pages, p)
		m.notePages()
		m.cur[ci] = p
	}
	off := p.pos
	p.pos += size
	zero(p.buf[off : off+size])
	return MakeRef(p.idx, off), nil
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// notePages updates the manager's page high-water mark; callers are the
// owning thread (Alloc is single-threaded by construction).
func (m *PageManager) notePages() {
	if len(m.pages) > m.hwPages {
		m.hwPages = len(m.pages)
	}
}

// PageHighWater returns the most pages this manager has owned at once
// (excluding children).
func (m *PageManager) PageHighWater() int { return m.hwPages }

// ReleaseAll releases every page owned by this manager and, recursively,
// by its children — the bulk reclamation that ends a (sub-)iteration.
// The release is announced on the runtime's event stream with the
// manager's identity and page high-water mark.
func (m *PageManager) ReleaseAll() {
	if m.released {
		return
	}
	m.released = true
	m.rt.obs.Emit(obs.EvManagerRelease, "", int64(m.IterID), int64(m.ThreadID), int64(m.hwPages))
	m.childMu.Lock()
	children := m.children
	m.children = nil
	m.childMu.Unlock()
	for _, c := range children {
		c.ReleaseAll()
	}
	for _, p := range m.pages {
		m.rt.releasePage(p)
	}
	m.pages = nil
	for i := range m.cur {
		m.cur[i] = nil
	}
	if m.parent != nil {
		m.parent.childMu.Lock()
		for i, c := range m.parent.children {
			if c == m {
				m.parent.children = append(m.parent.children[:i], m.parent.children[i+1:]...)
				break
			}
		}
		m.parent.childMu.Unlock()
	}
}

// Released reports whether the manager's pages have been reclaimed.
func (m *PageManager) Released() bool { return m.released }

// PageCount returns the number of pages currently owned (excluding
// children).
func (m *PageManager) PageCount() int { return len(m.pages) }

// AllocRecord allocates a zeroed scalar record with the given type ID and
// body size and returns its page reference.
func (m *PageManager) AllocRecord(typeID uint16, bodySize int) (PageRef, error) {
	ref, err := m.alloc(ScalarHeader + bodySize)
	if err != nil {
		return 0, err
	}
	b := m.rt.bytesFor(ref)
	putU16(b, typeID)
	m.rt.stats.records.Add(1)
	return ref, nil
}

// AllocArray allocates a zeroed array record for n elements of elemSize
// bytes, tagged with the array type index (-1, from an exhausted
// ArrayTypeIndex registry, is rejected with ErrTooManyArrayTypes).
func (m *PageManager) AllocArray(arrTypeIdx int, elemSize, n int) (PageRef, error) {
	if n < 0 {
		return 0, fmt.Errorf("offheap: negative array size %d", n)
	}
	if arrTypeIdx < 0 {
		return 0, ErrTooManyArrayTypes
	}
	ref, err := m.alloc(ArrayHeader + n*elemSize)
	if err != nil {
		return 0, err
	}
	b := m.rt.bytesFor(ref)
	putU16(b, arrayTypeBit|uint16(arrTypeIdx))
	putU32(b[4:], uint32(n))
	m.rt.stats.records.Add(1)
	return ref, nil
}

// IterScope manages a thread's stack of page managers: the default
// manager at the bottom, one manager per active (sub-)iteration above it.
type IterScope struct {
	rt       *Runtime
	stack    []*PageManager
	nextIter *int
	threadID int
}

// NewIterScope creates the scope for a thread whose default manager is a
// child of parent (the manager current in the creating thread; nil for the
// first thread). nextIter supplies global iteration IDs.
func (rt *Runtime) NewIterScope(parent *PageManager, nextIter *int, threadID int) *IterScope {
	def := rt.NewManager(parent, -1, threadID)
	return &IterScope{rt: rt, stack: []*PageManager{def}, nextIter: nextIter, threadID: threadID}
}

// Current returns the manager new records should be allocated from.
func (s *IterScope) Current() *PageManager { return s.stack[len(s.stack)-1] }

// Default returns the thread-default manager ⟨⊥, t⟩.
func (s *IterScope) Default() *PageManager { return s.stack[0] }

// IterationStart opens a (sub-)iteration: a child manager of the current
// one becomes the allocation target.
func (s *IterScope) IterationStart() {
	id := *s.nextIter
	*s.nextIter = id + 1
	m := s.rt.NewManager(s.Current(), id, s.threadID)
	s.stack = append(s.stack, m)
}

// IterationEnd closes the innermost iteration and releases its pages (and
// those of any nested iterations and spawned threads parented under it).
func (s *IterScope) IterationEnd() {
	if len(s.stack) == 1 {
		panic("offheap: IterationEnd without matching IterationStart")
	}
	m := s.Current()
	s.stack = s.stack[:len(s.stack)-1]
	m.ReleaseAll()
}

// Close releases the thread's default manager (thread termination).
func (s *IterScope) Close() {
	for len(s.stack) > 1 {
		s.IterationEnd()
	}
	s.stack[0].ReleaseAll()
}

// Depth returns the number of open iterations.
func (s *IterScope) Depth() int { return len(s.stack) - 1 }
