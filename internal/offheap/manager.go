package offheap

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Size classes for record allocation (§3.6): each class serves a range of
// record sizes from its own pages, "similarly to what a high-performance
// allocator would do". Records larger than half a page get an empty page
// to themselves; records larger than a page go to the oversize class.
var sizeClasses = [...]int{64, 256, 1024, 4096, PageSize / 2}

const numClasses = len(sizeClasses)

func classFor(size int) int {
	for i, c := range sizeClasses {
		if size <= c {
			return i
		}
	}
	return -1 // dedicated or oversize page
}

// pageCacheCap bounds the per-scope page cache. Iterative workloads churn
// a handful of pages per iteration per thread; 32 pages (1 MB) covers that
// while keeping the worst-case memory parked in caches negligible.
const pageCacheCap = 32

// pageCache is a small per-IterScope stash of recycled PageSize pages.
// When an iteration ends, its manager parks recyclable pages here instead
// of pushing them through the runtime's global pool; the next iteration in
// the same scope pops them back without touching rt.mu. The mutex exists
// only because ReleaseAll can run on a different thread than the scope's
// owner (a parent iteration releasing a spawned thread's managers); it is
// scope-local, so it is uncontended in steady state.
type pageCache struct {
	mu      sync.Mutex
	entries []cachedPage
}

// cachedPage remembers which iteration released the page. IterIDs are
// globally unique and a manager never allocates after release, so a cached
// page can only be served to a *different* (later) iteration — the
// invariant the property test in offheap_test.go checks.
type cachedPage struct {
	p       *page
	srcIter int
}

// pop removes and returns the most recently cached page.
func (c *pageCache) pop() (cachedPage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	if n == 0 {
		return cachedPage{}, false
	}
	e := c.entries[n-1]
	c.entries[n-1] = cachedPage{}
	c.entries = c.entries[:n-1]
	return e, true
}

// put parks a page in the cache; reports false when the cache is full.
func (c *pageCache) put(p *page, srcIter int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= pageCacheCap {
		return false
	}
	c.entries = append(c.entries, cachedPage{p: p, srcIter: srcIter})
	return true
}

// PageManager allocates records for one ⟨iterationID, thread⟩ pair and
// owns the pages it allocates from. Managers form the runtime tree of
// §3.6: a sub-iteration's manager is a child of the enclosing iteration's
// manager, and a new thread's default manager is a child of the manager
// current in the creating thread. Releasing a manager releases the whole
// subtree's pages at once.
//
// Alloc is single-threaded by construction (a manager belongs to one
// thread); the children list is the only shared state.
type PageManager struct {
	rt     *Runtime
	parent *PageManager

	childMu  sync.Mutex
	children []*PageManager

	cur      [numClasses]*page
	pages    []*page
	hwPages  int // most pages this manager has owned at once
	released bool

	// cache is the owning scope's page cache; nil for managers created
	// outside a scope (e.g. the VM root manager), which always use the
	// global pool.
	cache *pageCache

	// IterID identifies the iteration this manager serves; -1 is the
	// thread-default manager ⟨⊥, t⟩. ThreadID identifies the owning thread.
	IterID   int
	ThreadID int
}

// NewManager creates a page manager. parent may be nil for a root manager.
func (rt *Runtime) NewManager(parent *PageManager, iterID, threadID int) *PageManager {
	m := &PageManager{rt: rt, parent: parent, IterID: iterID, ThreadID: threadID}
	rt.stats.managers.Add(1)
	if parent != nil {
		parent.childMu.Lock()
		parent.children = append(parent.children, m)
		parent.childMu.Unlock()
	}
	return m
}

// alloc returns a page reference to size zeroed bytes. Allocation from a
// released manager and page-acquire failures surface as typed errors
// (ErrReleasedManager, ErrPageExhausted) rather than panics, so they can
// propagate through the VM boundary and be recovered from.
func (m *PageManager) alloc(size int) (PageRef, error) {
	if m.released {
		return 0, fmt.Errorf("%w (iteration %d, thread %d)", ErrReleasedManager, m.IterID, m.ThreadID)
	}
	size = (size + 7) &^ 7
	ci := classFor(size)
	if ci < 0 || size > PageSize/2 {
		// Large record: an empty page of its own ("large arrays are
		// allocated on empty pages"), oversize if it exceeds PageSize.
		want := size
		if want < PageSize {
			want = PageSize
		}
		var p *page
		var err error
		if want == PageSize {
			p, err = m.acquirePage()
		} else {
			p, err = m.rt.getPage(want)
		}
		if err != nil {
			return 0, err
		}
		m.pages = append(m.pages, p)
		m.notePages()
		p.pos = size
		zero(p.buf[:size])
		// The acquire pin held the page resident through the init writes;
		// from here on record accessors pin it per operation.
		m.rt.unpinAcquire(p)
		return MakeRef(p.idx, 0), nil
	}
	p := m.cur[ci]
	if p == nil || p.pos+size > len(p.buf) {
		var err error
		p, err = m.acquirePage()
		if err != nil {
			return 0, err
		}
		// The new page keeps its acquire pin as the bump-page pin: the
		// evictor must never target the page a manager is bump-allocating
		// into. The replaced page's pin is dropped here.
		m.rt.unpinAcquire(m.cur[ci])
		m.pages = append(m.pages, p)
		m.notePages()
		m.cur[ci] = p
	}
	off := p.pos
	p.pos += size
	zero(p.buf[off : off+size])
	return MakeRef(p.idx, off), nil
}

// acquirePage returns a PageSize page, preferring the scope cache (a pop
// plus lock-free stat updates) over the runtime's locked getPage path. A
// fault injected at the cache-hit acquire point puts the page back, so the
// cache's contents are unchanged by a failed acquire.
func (m *PageManager) acquirePage() (*page, error) {
	if m.cache != nil && !m.rt.DisablePageCache {
		if e, ok := m.cache.pop(); ok {
			if err := m.rt.noteCachedRecycle(e.p); err != nil {
				m.cache.put(e.p, e.srcIter)
				return nil, err
			}
			return e.p, nil
		}
	}
	return m.rt.getPage(PageSize)
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// notePages updates the manager's page high-water mark; callers are the
// owning thread (Alloc is single-threaded by construction).
func (m *PageManager) notePages() {
	if len(m.pages) > m.hwPages {
		m.hwPages = len(m.pages)
	}
}

// PageHighWater returns the most pages this manager has owned at once
// (excluding children).
func (m *PageManager) PageHighWater() int { return m.hwPages }

// ReleaseAll releases every page owned by this manager and, recursively,
// by its children — the bulk reclamation that ends a (sub-)iteration.
// The release is announced on the runtime's event stream with the
// manager's identity and page high-water mark.
func (m *PageManager) ReleaseAll() {
	if m.released {
		return
	}
	m.released = true
	m.rt.obs.Emit(obs.EvManagerRelease, "", int64(m.IterID), int64(m.ThreadID), int64(m.hwPages))
	m.childMu.Lock()
	children := m.children
	m.children = nil
	m.childMu.Unlock()
	for _, c := range children {
		c.ReleaseAll()
	}
	for i := range m.cur {
		m.rt.unpinAcquire(m.cur[i]) // drop the bump-page pins before releasing
	}
	tiered := m.rt.tier != nil
	for _, p := range m.pages {
		if m.cache != nil && !m.rt.DisablePageCache && !m.rt.DisableRecycle &&
			(tiered || len(p.buf) == PageSize) {
			// Tiered: cacheRelease checks the size itself, under the page's
			// tier lock — p.buf may be concurrently nil'd by the evictor.
			if m.rt.cacheRelease(m.cache, p, m.IterID) {
				continue
			}
		}
		m.rt.releasePage(p)
	}
	m.pages = nil
	for i := range m.cur {
		m.cur[i] = nil
	}
	if m.parent != nil {
		m.parent.childMu.Lock()
		for i, c := range m.parent.children {
			if c == m {
				m.parent.children = append(m.parent.children[:i], m.parent.children[i+1:]...)
				break
			}
		}
		m.parent.childMu.Unlock()
	}
}

// Released reports whether the manager's pages have been reclaimed.
func (m *PageManager) Released() bool { return m.released }

// PageCount returns the number of pages currently owned (excluding
// children).
func (m *PageManager) PageCount() int { return len(m.pages) }

// AllocRecord allocates a zeroed scalar record with the given type ID and
// body size and returns its page reference.
func (m *PageManager) AllocRecord(typeID uint16, bodySize int) (PageRef, error) {
	ref, err := m.alloc(ScalarHeader + bodySize)
	if err != nil {
		return 0, err
	}
	if m.rt.tier == nil {
		putU16(m.rt.bytesFast(ref), typeID)
	} else {
		b, p := m.rt.bytesPinned(ref)
		putU16(b, typeID)
		m.rt.unpin(p)
	}
	m.rt.stats.records.Add(1)
	m.rt.maybeEvict()
	return ref, nil
}

// AllocArray allocates a zeroed array record for n elements of elemSize
// bytes, tagged with the array type index (-1, from an exhausted
// ArrayTypeIndex registry, is rejected with ErrTooManyArrayTypes).
func (m *PageManager) AllocArray(arrTypeIdx int, elemSize, n int) (PageRef, error) {
	if n < 0 {
		return 0, fmt.Errorf("offheap: negative array size %d", n)
	}
	if arrTypeIdx < 0 {
		return 0, ErrTooManyArrayTypes
	}
	ref, err := m.alloc(ArrayHeader + n*elemSize)
	if err != nil {
		return 0, err
	}
	if m.rt.tier == nil {
		b := m.rt.bytesFast(ref)
		putU16(b, arrayTypeBit|uint16(arrTypeIdx))
		putU32(b[4:], uint32(n))
	} else {
		b, p := m.rt.bytesPinned(ref)
		putU16(b, arrayTypeBit|uint16(arrTypeIdx))
		putU32(b[4:], uint32(n))
		m.rt.unpin(p)
	}
	m.rt.stats.records.Add(1)
	m.rt.maybeEvict()
	return ref, nil
}

// IterScope manages a thread's stack of page managers: the default
// manager at the bottom, one manager per active (sub-)iteration above it.
type IterScope struct {
	rt       *Runtime
	stack    []*PageManager
	nextIter *int
	threadID int
	cache    *pageCache
}

// NewIterScope creates the scope for a thread whose default manager is a
// child of parent (the manager current in the creating thread; nil for the
// first thread). nextIter supplies global iteration IDs.
func (rt *Runtime) NewIterScope(parent *PageManager, nextIter *int, threadID int) *IterScope {
	def := rt.NewManager(parent, -1, threadID)
	c := &pageCache{}
	def.cache = c
	return &IterScope{rt: rt, stack: []*PageManager{def}, nextIter: nextIter, threadID: threadID, cache: c}
}

// Current returns the manager new records should be allocated from.
func (s *IterScope) Current() *PageManager { return s.stack[len(s.stack)-1] }

// Default returns the thread-default manager ⟨⊥, t⟩.
func (s *IterScope) Default() *PageManager { return s.stack[0] }

// IterationStart opens a (sub-)iteration: a child manager of the current
// one becomes the allocation target.
func (s *IterScope) IterationStart() {
	id := *s.nextIter
	*s.nextIter = id + 1
	m := s.rt.NewManager(s.Current(), id, s.threadID)
	m.cache = s.cache
	s.stack = append(s.stack, m)
}

// IterationEnd closes the innermost iteration and releases its pages (and
// those of any nested iterations and spawned threads parented under it).
func (s *IterScope) IterationEnd() {
	if len(s.stack) == 1 {
		panic("offheap: IterationEnd without matching IterationStart")
	}
	m := s.Current()
	s.stack = s.stack[:len(s.stack)-1]
	m.ReleaseAll()
}

// Close releases the thread's default manager (thread termination) and
// hands the scope's cached pages back to the global pool.
func (s *IterScope) Close() {
	for len(s.stack) > 1 {
		s.IterationEnd()
	}
	s.stack[0].ReleaseAll()
	s.drainCache()
}

// drainCache moves cached pages to the runtime free pool. The pages were
// already stat-released when they entered the cache, so only the free-list
// append remains (they are simply dropped under DisableRecycle, like any
// released page).
func (s *IterScope) drainCache() {
	s.cache.mu.Lock()
	entries := s.cache.entries
	s.cache.entries = nil
	s.cache.mu.Unlock()
	if len(entries) == 0 || s.rt.DisableRecycle {
		return
	}
	s.rt.mu.Lock()
	for _, e := range entries {
		s.rt.free = append(s.rt.free, e.p)
	}
	s.rt.mu.Unlock()
}

// CachedPages returns the number of pages parked in the scope cache
// (observability and tests).
func (s *IterScope) CachedPages() int {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	return len(s.cache.entries)
}

// Depth returns the number of open iterations.
func (s *IterScope) Depth() int { return len(s.stack) - 1 }
