package offheap

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// The disk tier extends the page store down one storage level: cold pages
// spill to a file and promote back on access, so a dataset can exceed the
// DRAM the store is allowed to keep resident. Because records are
// self-contained native pages (no object graph, no GC metadata), eviction
// is a PageSize copy, not a serialization pass — "move the data, don't
// serialize it".
//
// Resolution stays transparent: a PageRef is valid whether its page is in
// DRAM or on disk. Record accessors pin the page (a per-page counter)
// before touching its bytes and promote it first when spilled; the evictor
// only takes unpinned pages, selected by a second-chance clock sweep over
// per-page access bits. The watermark policy is synchronous — eviction
// runs at allocation and promotion points on the allocating thread, never
// on a background goroutine — so a single-threaded run spills and promotes
// on a deterministic schedule.
//
// Lock order: rt.mu → page.tierMu → tier.mu. The victim sweep holds
// tier.mu and TryLocks page.tierMu (reverse order, non-blocking, so it
// cannot deadlock). All spill-file I/O happens under tier.mu.

// TierConfig configures the disk tier (EnableTiering).
type TierConfig struct {
	// Dir is the directory for the spill file (created with
	// os.CreateTemp, removed at Reset/teardown). Empty means os.TempDir.
	Dir string
	// HighWater is the DRAM-resident page count that triggers eviction;
	// LowWater is the count eviction drains down to. 0 < LowWater <=
	// HighWater.
	HighWater int
	LowWater  int
	// ForcePortable selects the pread/pwrite backend even on platforms
	// with an mmap backend (tests exercise both on linux).
	ForcePortable bool
}

// TierFault carries a disk-tier I/O failure across the infallible record
// accessors: a failed promotion panics with *TierFault, which the VM call
// boundary recovers into the wrapped error. Err wraps ErrPageExhausted, so
// engines walk the same degradation ladder they use for memory exhaustion.
type TierFault struct{ Err error }

func (f *TierFault) Error() string { return "offheap: tier fault: " + f.Err.Error() }
func (f *TierFault) Unwrap() error { return f.Err }

// tierBackend is the spill-file I/O abstraction: fixed PageSize slots.
// All calls are serialized under tier.mu.
type tierBackend interface {
	writeSlot(slot int, buf []byte) error
	readSlot(slot int, buf []byte) error
	close(remove bool) error
}

// fileBackend is the portable pread/pwrite backend.
type fileBackend struct{ f *os.File }

func (b *fileBackend) writeSlot(slot int, buf []byte) error {
	_, err := b.f.WriteAt(buf, int64(slot)*PageSize)
	return err
}

func (b *fileBackend) readSlot(slot int, buf []byte) error {
	_, err := b.f.ReadAt(buf, int64(slot)*PageSize)
	return err
}

func (b *fileBackend) close(remove bool) error {
	name := b.f.Name()
	err := b.f.Close()
	if remove {
		if rerr := os.Remove(name); err == nil {
			err = rerr
		}
	}
	return err
}

// tier is the disk tier's state: the backend, the slot allocator, and the
// eviction candidate list (live resident PageSize pages).
type tier struct {
	cfg TierConfig

	mu         sync.Mutex
	backend    tierBackend
	freeSlots  []int
	nextSlot   int
	candidates []*page
	hand       int // clock hand into candidates

	// resident/disk split of pagesLive (resident + disk == live).
	resident atomic.Int64
	disk     atomic.Int64

	cSpilled      *obs.Counter
	cPromoted     *obs.Counter
	cSpillBytes   *obs.Counter
	cPromoteBytes *obs.Counter
	gResident     *obs.Gauge
	gDisk         *obs.Gauge
	hSpillStall   *obs.Histogram
	hPromoteStall *obs.Histogram
	cFaultSpill   *obs.Counter
	cFaultLoad    *obs.Counter
}

// EnableTiering attaches a disk tier to the store. Must be called before
// any page is allocated (the candidate list is built from acquires) and
// after SetFaultInjector. Reset tears the tier down again — a reused store
// does not inherit the previous job's tier.
func (rt *Runtime) EnableTiering(cfg TierConfig) error {
	if rt.tier != nil {
		return errors.New("offheap: tiering already enabled")
	}
	if cfg.HighWater <= 0 {
		return errors.New("offheap: tiering needs a positive high watermark")
	}
	if cfg.LowWater <= 0 || cfg.LowWater > cfg.HighWater {
		return fmt.Errorf("offheap: low watermark %d must be in 1..%d", cfg.LowWater, cfg.HighWater)
	}
	if rt.stats.pagesLive.Load() != 0 {
		return errors.New("offheap: tiering must be enabled before pages are live")
	}
	f, err := os.CreateTemp(cfg.Dir, "spill-*.pages")
	if err != nil {
		return fmt.Errorf("offheap: spill file: %w", err)
	}
	var backend tierBackend
	if cfg.ForcePortable {
		backend = &fileBackend{f: f}
	} else {
		backend = newMmapBackend(f)
	}
	reg := rt.obs
	rt.tier = &tier{
		cfg:           cfg,
		backend:       backend,
		cSpilled:      reg.Counter(obs.CtrPagesSpilled),
		cPromoted:     reg.Counter(obs.CtrPagesPromoted),
		cSpillBytes:   reg.Counter(obs.CtrSpillBytes),
		cPromoteBytes: reg.Counter(obs.CtrPromoteBytes),
		gResident:     reg.Gauge(obs.GaugePagesResident),
		gDisk:         reg.Gauge(obs.GaugePagesDisk),
		hSpillStall:   reg.Histogram(obs.HistSpillStall, obs.GCPauseBounds),
		hPromoteStall: reg.Histogram(obs.HistPromoteStall, obs.GCPauseBounds),
		cFaultSpill:   reg.Counter(obs.CtrFaultTierSpill),
		cFaultLoad:    reg.Counter(obs.CtrFaultTierLoad),
	}
	return nil
}

// Tiered reports whether the store has a disk tier attached.
func (rt *Runtime) Tiered() bool { return rt.tier != nil }

// closeTier tears down the tier: unmap/close/remove the spill file and
// detach. Pages still spilled lose their bodies — callers (Reset) ensure
// no page is live.
func (rt *Runtime) closeTier() error {
	t := rt.tier
	if t == nil {
		return nil
	}
	rt.tier = nil
	t.mu.Lock()
	defer t.mu.Unlock()
	t.candidates = nil
	return t.backend.close(true)
}

// --- candidate list (tier.mu held) ---

func (t *tier) addCandidateLocked(p *page) {
	if p.candIdx != -1 {
		return
	}
	p.candIdx = len(t.candidates)
	t.candidates = append(t.candidates, p)
}

func (t *tier) removeCandidateLocked(p *page) {
	i := p.candIdx
	if i < 0 {
		return
	}
	last := len(t.candidates) - 1
	t.candidates[i] = t.candidates[last]
	t.candidates[i].candIdx = i
	t.candidates[last] = nil
	t.candidates = t.candidates[:last]
	p.candIdx = -1
	if t.hand > last {
		t.hand = 0
	}
}

// --- acquire/release bookkeeping ---

// tierAcquire records a page entering the live set resident, registers it
// as an eviction candidate when it is a standard PageSize page, and
// returns it pre-pinned so it cannot be evicted before the allocating
// manager has initialized it. No-op when untiered.
func (rt *Runtime) tierAcquire(p *page) {
	t := rt.tier
	if t == nil {
		return
	}
	p.pinned.Add(1)
	p.accessed.Store(true)
	t.resident.Add(1)
	t.gResident.Add(1)
	if len(p.buf) == PageSize {
		t.mu.Lock()
		t.addCandidateLocked(p)
		t.mu.Unlock()
	}
}

// unpinAcquire drops the pin tierAcquire installed. Managers call it when
// the page stops being an allocation target (immediately for dedicated and
// oversize pages, on replacement or release for bump pages).
func (rt *Runtime) unpinAcquire(p *page) {
	if rt.tier == nil || p == nil {
		return
	}
	p.pinned.Add(-1)
}

// tierRelease records a page leaving the live set: a resident page is
// deregistered from the candidate list; a spilled page has its disk slot
// freed without ever being read back — the whole point of iteration-end
// bulk release. Returns with the page resident-state fields cleared.
// No-op when untiered.
func (rt *Runtime) tierRelease(p *page) {
	t := rt.tier
	if t == nil {
		return
	}
	p.tierMu.Lock()
	defer p.tierMu.Unlock()
	if p.spilled {
		t.mu.Lock()
		t.freeSlots = append(t.freeSlots, p.slot)
		t.mu.Unlock()
		p.spilled = false
		p.slot = -1
		p.evicting.Store(false)
		t.disk.Add(-1)
		t.gDisk.Add(-1)
		return
	}
	t.resident.Add(-1)
	t.gResident.Add(-1)
	t.mu.Lock()
	t.removeCandidateLocked(p)
	t.mu.Unlock()
}

// --- eviction ---

// maybeEvict spills cold pages down to the low watermark when the
// resident count crosses the high watermark. Callers must hold no page
// tierMu and not rt.mu.
// maybeEvict is split from evictIfOver so the untiered fast path inlines
// into the allocators; the tiered path can afford the extra call.
func (rt *Runtime) maybeEvict() {
	if rt.tier != nil {
		rt.evictIfOver()
	}
}

func (rt *Runtime) evictIfOver() {
	t := rt.tier
	if t.resident.Load() <= int64(t.cfg.HighWater) {
		return
	}
	rt.evictTo(int64(t.cfg.LowWater))
}

// evictTo spills candidates until at most target pages are resident or
// nothing evictable remains (everything pinned or spill failing).
func (rt *Runtime) evictTo(target int64) {
	t := rt.tier
	if target < 0 {
		target = 0
	}
	for t.resident.Load() > target {
		p := t.selectVictim()
		if p == nil {
			return
		}
		err := rt.spillLocked(p)
		p.tierMu.Unlock()
		if err != nil {
			return // best effort: the page stays resident
		}
	}
}

// selectVictim runs the second-chance clock sweep and returns an unpinned
// resident candidate with its tierMu held and evicting set, or nil when a
// full sweep finds nothing evictable. The pinned check under both
// tier.mu-TryLock(tierMu) and the evicting flag close the race against
// accessors pinning concurrently (see pinResident).
func (t *tier) selectVictim() *page {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 2 * len(t.candidates); i > 0; i-- {
		if len(t.candidates) == 0 {
			return nil
		}
		if t.hand >= len(t.candidates) {
			t.hand = 0
		}
		p := t.candidates[t.hand]
		t.hand++
		if p.pinned.Load() > 0 {
			continue
		}
		if p.accessed.Load() {
			p.accessed.Store(false) // second chance
			continue
		}
		if !p.tierMu.TryLock() {
			continue // busy; treat like pinned
		}
		p.evicting.Store(true)
		if p.pinned.Load() > 0 || p.spilled || p.released.Load() {
			p.evicting.Store(false)
			p.tierMu.Unlock()
			continue
		}
		return p
	}
	return nil
}

// spillLocked writes p's body to a disk slot and drops the DRAM buffer.
// p.tierMu is held, evicting is set, and p is a validated victim. On error
// the page stays resident (the caller clears nothing; evicting is reset
// here) — spill is best effort, the store degrades toward the quota/OME
// rungs instead.
func (rt *Runtime) spillLocked(p *page) error {
	t := rt.tier
	if rt.inj != nil && rt.inj.Fire(faults.TierSpill) {
		n := t.cFaultSpill.Load() + 1
		t.cFaultSpill.Inc()
		rt.obs.Emit(obs.EvFault, string(faults.TierSpill), n, 0, 0)
		p.evicting.Store(false)
		return fmt.Errorf("offheap: tier spill: injected fault")
	}
	start := time.Now()
	t.mu.Lock()
	var slot int
	if n := len(t.freeSlots); n > 0 {
		slot = t.freeSlots[n-1]
		t.freeSlots = t.freeSlots[:n-1]
	} else {
		slot = t.nextSlot
		t.nextSlot++
	}
	err := t.backend.writeSlot(slot, p.buf)
	if err != nil {
		t.freeSlots = append(t.freeSlots, slot)
		t.mu.Unlock()
		p.evicting.Store(false)
		return fmt.Errorf("offheap: tier spill: %w", err)
	}
	t.removeCandidateLocked(p)
	t.mu.Unlock()
	t.hSpillStall.Observe(time.Since(start).Nanoseconds())
	p.slot = slot
	p.spilled = true
	p.buf = nil
	t.resident.Add(-1)
	t.gResident.Add(-1)
	t.disk.Add(1)
	t.gDisk.Add(1)
	t.cSpilled.Inc()
	t.cSpillBytes.Add(PageSize)
	rt.addBytes(-PageSize) // bytesInUse counts DRAM only
	return nil
}

// promoteLocked reads p's body back from its disk slot. p.tierMu is held
// and p.spilled is true. A failed read (injected TierLoad or real I/O
// error) leaves the page spilled and returns an error wrapping
// ErrPageExhausted so the caller's panic rides the OOM degradation rails.
func (rt *Runtime) promoteLocked(p *page) error {
	t := rt.tier
	if rt.inj != nil && rt.inj.Fire(faults.TierLoad) {
		n := t.cFaultLoad.Load() + 1
		t.cFaultLoad.Inc()
		rt.obs.Emit(obs.EvFault, string(faults.TierLoad), n, 0, 0)
		return fmt.Errorf("%w (injected tier load fault)", ErrPageExhausted)
	}
	buf := make([]byte, PageSize)
	start := time.Now()
	t.mu.Lock()
	if err := t.backend.readSlot(p.slot, buf); err != nil {
		t.mu.Unlock()
		return fmt.Errorf("%w (tier load: %v)", ErrPageExhausted, err)
	}
	t.freeSlots = append(t.freeSlots, p.slot)
	t.addCandidateLocked(p)
	t.mu.Unlock()
	t.hPromoteStall.Observe(time.Since(start).Nanoseconds())
	p.slot = -1
	p.buf = buf
	p.spilled = false
	p.evicting.Store(false)
	p.accessed.Store(true)
	t.disk.Add(-1)
	t.gDisk.Add(-1)
	t.resident.Add(1)
	t.gResident.Add(1)
	t.cPromoted.Inc()
	t.cPromoteBytes.Add(PageSize)
	rt.addBytes(PageSize)
	return nil
}

// --- pinned access ---

// pinResident pins ref's page resident and returns the record bytes plus
// the page to unpin (nil page when untiered — unpin is a no-op then).
//
// The pin/evict handshake is a Dekker pair: the accessor stores its pin
// and then loads evicting; the evictor stores evicting and then loads the
// pin (both under seq-cst atomics). Whichever ordering the race resolves
// to, either the evictor sees the pin and skips, or the accessor sees
// evicting and takes the slow path, serializing on tierMu behind the
// spill and promoting the page back. There is no interleaving where the
// accessor reads a buffer the evictor is tearing down.
func (rt *Runtime) pinResident(ref PageRef) ([]byte, *page, error) {
	idx, off := splitRef(ref)
	p := (*rt.table.Load())[idx]
	if rt.tier == nil {
		return p.buf[off:], nil, nil
	}
	p.pinned.Add(1)
	p.accessed.Store(true)
	if p.evicting.Load() {
		p.tierMu.Lock()
		if p.spilled {
			if err := rt.promoteLocked(p); err != nil {
				p.tierMu.Unlock()
				p.pinned.Add(-1)
				return nil, nil, err
			}
			p.tierMu.Unlock()
			// Promotion raised the resident count; rebalance. The pin
			// keeps this page out of the sweep.
			rt.maybeEvict()
		} else {
			p.tierMu.Unlock()
		}
	}
	return p.buf[off:], p, nil
}

// bytesPinned is pinResident for infallible callers: a tier-load failure
// panics with *TierFault, recovered at the VM call boundary.
func (rt *Runtime) bytesPinned(ref PageRef) ([]byte, *page) {
	b, p, err := rt.pinResident(ref)
	if err != nil {
		panic(&TierFault{Err: err})
	}
	return b, p
}

// bodyPinned is bytesPinned skipping the record header.
func (rt *Runtime) bodyPinned(ref PageRef) ([]byte, *page) {
	b, p := rt.bytesPinned(ref)
	if getU16(b)&arrayTypeBit != 0 {
		return b[ArrayHeader:], p
	}
	return b[ScalarHeader:], p
}

// unpin releases a pin taken by bytesPinned/bodyPinned/pinResident.
func (rt *Runtime) unpin(p *page) {
	if p != nil {
		p.pinned.Add(-1)
	}
}
