package offheap

import (
	"encoding/binary"
	"math"
)

// Record accessors. Field offsets are the same byte offsets the managed
// heap uses (computed once per class in internal/lang), so the synthesized
// conversion functions are field-by-field copies with no remapping.
//
// Every accessor branches on tier presence. Untiered (the common case) it
// is the old lock-free copy-on-write table read — no pin, no atomics, and
// small enough that the resolution inlines into the accessor. With a disk
// tier attached it goes through bytesPinned/bodyPinned, which pin the page
// resident for the duration of the operation (promoting it first when
// spilled), so a reference resolves transparently whichever tier the page
// is on.

func putU16(b []byte, v uint16) { binary.LittleEndian.PutUint16(b, v) }
func getU16(b []byte) uint16    { return binary.LittleEndian.Uint16(b) }
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }

// bytesFast resolves ref without pinning. Only valid when rt.tier == nil:
// with a tier attached an unpinned read races the evictor mid-spill.
func (rt *Runtime) bytesFast(ref PageRef) []byte {
	idx, off := splitRef(ref)
	return (*rt.table.Load())[idx].buf[off:]
}

// bodyFast is bytesFast skipping the record header.
func (rt *Runtime) bodyFast(ref PageRef) []byte {
	b := rt.bytesFast(ref)
	if getU16(b)&arrayTypeBit != 0 {
		return b[ArrayHeader:]
	}
	return b[ScalarHeader:]
}

// TypeID returns the record's raw type word (class ID, or array bit |
// array type index).
func (rt *Runtime) TypeID(ref PageRef) uint16 {
	if rt.tier == nil {
		return getU16(rt.bytesFast(ref))
	}
	b, p := rt.bytesPinned(ref)
	v := getU16(b)
	rt.unpin(p)
	return v
}

// IsArrayRecord reports whether ref names an array record.
func (rt *Runtime) IsArrayRecord(ref PageRef) bool {
	return rt.TypeID(ref)&arrayTypeBit != 0
}

// ClassID returns the class ID of a scalar record.
func (rt *Runtime) ClassID(ref PageRef) int { return int(rt.TypeID(ref)) }

// ArrayTypeOf returns the array type index of an array record.
func (rt *Runtime) ArrayTypeOf(ref PageRef) int {
	return int(rt.TypeID(ref) &^ arrayTypeBit)
}

// ArrayLen returns the length of an array record.
func (rt *Runtime) ArrayLen(ref PageRef) int {
	if rt.tier == nil {
		return int(getU32(rt.bytesFast(ref)[4:]))
	}
	b, p := rt.bytesPinned(ref)
	n := int(getU32(b[4:]))
	rt.unpin(p)
	return n
}

// GetLockID reads the record's 2-byte lock field.
func (rt *Runtime) GetLockID(ref PageRef) uint16 {
	if rt.tier == nil {
		return getU16(rt.bytesFast(ref)[2:])
	}
	b, p := rt.bytesPinned(ref)
	v := getU16(b[2:])
	rt.unpin(p)
	return v
}

// SetLockID writes the record's lock field. Callers serialize through the
// lock pool.
func (rt *Runtime) SetLockID(ref PageRef, id uint16) {
	if rt.tier == nil {
		putU16(rt.bytesFast(ref)[2:], id)
		return
	}
	b, p := rt.bytesPinned(ref)
	putU16(b[2:], id)
	rt.unpin(p)
}

// GetByte reads a byte/boolean slot.
func (rt *Runtime) GetByte(ref PageRef, off int) int8 {
	if rt.tier == nil {
		return int8(rt.bodyFast(ref)[off])
	}
	b, p := rt.bodyPinned(ref)
	v := int8(b[off])
	rt.unpin(p)
	return v
}

// SetByte writes a byte/boolean slot.
func (rt *Runtime) SetByte(ref PageRef, off int, v int8) {
	if rt.tier == nil {
		rt.bodyFast(ref)[off] = byte(v)
		return
	}
	b, p := rt.bodyPinned(ref)
	b[off] = byte(v)
	rt.unpin(p)
}

// GetInt reads an int slot.
func (rt *Runtime) GetInt(ref PageRef, off int) int32 {
	if rt.tier == nil {
		return int32(getU32(rt.bodyFast(ref)[off:]))
	}
	b, p := rt.bodyPinned(ref)
	v := int32(getU32(b[off:]))
	rt.unpin(p)
	return v
}

// SetInt writes an int slot.
func (rt *Runtime) SetInt(ref PageRef, off int, v int32) {
	if rt.tier == nil {
		putU32(rt.bodyFast(ref)[off:], uint32(v))
		return
	}
	b, p := rt.bodyPinned(ref)
	putU32(b[off:], uint32(v))
	rt.unpin(p)
}

// GetLong reads a long slot (also used for reference slots, which store
// page references).
func (rt *Runtime) GetLong(ref PageRef, off int) int64 {
	if rt.tier == nil {
		return int64(getU64(rt.bodyFast(ref)[off:]))
	}
	b, p := rt.bodyPinned(ref)
	v := int64(getU64(b[off:]))
	rt.unpin(p)
	return v
}

// SetLong writes a long slot.
func (rt *Runtime) SetLong(ref PageRef, off int, v int64) {
	if rt.tier == nil {
		putU64(rt.bodyFast(ref)[off:], uint64(v))
		return
	}
	b, p := rt.bodyPinned(ref)
	putU64(b[off:], uint64(v))
	rt.unpin(p)
}

// GetDouble reads a double slot.
func (rt *Runtime) GetDouble(ref PageRef, off int) float64 {
	if rt.tier == nil {
		return math.Float64frombits(getU64(rt.bodyFast(ref)[off:]))
	}
	b, p := rt.bodyPinned(ref)
	v := math.Float64frombits(getU64(b[off:]))
	rt.unpin(p)
	return v
}

// SetDouble writes a double slot.
func (rt *Runtime) SetDouble(ref PageRef, off int, v float64) {
	if rt.tier == nil {
		putU64(rt.bodyFast(ref)[off:], math.Float64bits(v))
		return
	}
	b, p := rt.bodyPinned(ref)
	putU64(b[off:], math.Float64bits(v))
	rt.unpin(p)
}

// GetRef reads a reference slot (a nested page reference).
func (rt *Runtime) GetRef(ref PageRef, off int) PageRef { return rt.GetLong(ref, off) }

// SetRef writes a reference slot. There is no write barrier: nothing
// traces these pages — that is the optimization.
func (rt *Runtime) SetRef(ref PageRef, off int, v PageRef) { rt.SetLong(ref, off, v) }

// WriteBody copies data into the record body at off (bulk byte-array
// fills).
func (rt *Runtime) WriteBody(ref PageRef, off int, data []byte) {
	if rt.tier == nil {
		copy(rt.bodyFast(ref)[off:], data)
		return
	}
	b, p := rt.bodyPinned(ref)
	copy(b[off:], data)
	rt.unpin(p)
}

// ReadBody copies n body bytes starting at off out of the record.
func (rt *Runtime) ReadBody(ref PageRef, off, n int) []byte {
	out := make([]byte, n)
	if rt.tier == nil {
		copy(out, rt.bodyFast(ref)[off:])
		return out
	}
	b, p := rt.bodyPinned(ref)
	copy(out, b[off:])
	rt.unpin(p)
	return out
}

// ArrayCopy copies n elements of elemSize bytes between array records,
// the native-memory model of System.arraycopy. Both pages stay pinned for
// the copy; a tier-load failure on the second pin releases the first
// before surfacing (pins must not leak — a leaked pin makes a page
// unevictable for the rest of the run).
func (rt *Runtime) ArrayCopy(src PageRef, srcPos int, dst PageRef, dstPos, n, elemSize int) {
	if rt.tier == nil {
		sb := rt.bodyFast(src)
		db := rt.bodyFast(dst)
		copy(db[dstPos*elemSize:(dstPos+n)*elemSize], sb[srcPos*elemSize:(srcPos+n)*elemSize])
		return
	}
	sb, sp := rt.bodyPinned(src)
	db, dp, err := rt.pinResident(dst)
	if err != nil {
		rt.unpin(sp)
		panic(&TierFault{Err: err})
	}
	if getU16(db)&arrayTypeBit != 0 {
		db = db[ArrayHeader:]
	} else {
		db = db[ScalarHeader:]
	}
	copy(db[dstPos*elemSize:(dstPos+n)*elemSize], sb[srcPos*elemSize:(srcPos+n)*elemSize])
	rt.unpin(dp)
	rt.unpin(sp)
}
