package offheap

import (
	"encoding/binary"
	"math"
)

// Record accessors. Field offsets are the same byte offsets the managed
// heap uses (computed once per class in internal/lang), so the synthesized
// conversion functions are field-by-field copies with no remapping.

func putU16(b []byte, v uint16) { binary.LittleEndian.PutUint16(b, v) }
func getU16(b []byte) uint16    { return binary.LittleEndian.Uint16(b) }
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }

// TypeID returns the record's raw type word (class ID, or array bit |
// array type index).
func (rt *Runtime) TypeID(ref PageRef) uint16 { return getU16(rt.bytesFor(ref)) }

// IsArrayRecord reports whether ref names an array record.
func (rt *Runtime) IsArrayRecord(ref PageRef) bool {
	return rt.TypeID(ref)&arrayTypeBit != 0
}

// ClassID returns the class ID of a scalar record.
func (rt *Runtime) ClassID(ref PageRef) int { return int(rt.TypeID(ref)) }

// ArrayTypeOf returns the array type index of an array record.
func (rt *Runtime) ArrayTypeOf(ref PageRef) int {
	return int(rt.TypeID(ref) &^ arrayTypeBit)
}

// ArrayLen returns the length of an array record.
func (rt *Runtime) ArrayLen(ref PageRef) int {
	return int(getU32(rt.bytesFor(ref)[4:]))
}

// body returns the record's field/element area.
func (rt *Runtime) body(ref PageRef) []byte {
	b := rt.bytesFor(ref)
	if getU16(b)&arrayTypeBit != 0 {
		return b[ArrayHeader:]
	}
	return b[ScalarHeader:]
}

// GetLockID reads the record's 2-byte lock field.
func (rt *Runtime) GetLockID(ref PageRef) uint16 { return getU16(rt.bytesFor(ref)[2:]) }

// SetLockID writes the record's lock field. Callers serialize through the
// lock pool.
func (rt *Runtime) SetLockID(ref PageRef, id uint16) { putU16(rt.bytesFor(ref)[2:], id) }

// GetByte reads a byte/boolean slot.
func (rt *Runtime) GetByte(ref PageRef, off int) int8 { return int8(rt.body(ref)[off]) }

// SetByte writes a byte/boolean slot.
func (rt *Runtime) SetByte(ref PageRef, off int, v int8) { rt.body(ref)[off] = byte(v) }

// GetInt reads an int slot.
func (rt *Runtime) GetInt(ref PageRef, off int) int32 { return int32(getU32(rt.body(ref)[off:])) }

// SetInt writes an int slot.
func (rt *Runtime) SetInt(ref PageRef, off int, v int32) { putU32(rt.body(ref)[off:], uint32(v)) }

// GetLong reads a long slot (also used for reference slots, which store
// page references).
func (rt *Runtime) GetLong(ref PageRef, off int) int64 { return int64(getU64(rt.body(ref)[off:])) }

// SetLong writes a long slot.
func (rt *Runtime) SetLong(ref PageRef, off int, v int64) { putU64(rt.body(ref)[off:], uint64(v)) }

// GetDouble reads a double slot.
func (rt *Runtime) GetDouble(ref PageRef, off int) float64 {
	return math.Float64frombits(getU64(rt.body(ref)[off:]))
}

// SetDouble writes a double slot.
func (rt *Runtime) SetDouble(ref PageRef, off int, v float64) {
	putU64(rt.body(ref)[off:], math.Float64bits(v))
}

// GetRef reads a reference slot (a nested page reference).
func (rt *Runtime) GetRef(ref PageRef, off int) PageRef { return rt.GetLong(ref, off) }

// SetRef writes a reference slot. There is no write barrier: nothing
// traces these pages — that is the optimization.
func (rt *Runtime) SetRef(ref PageRef, off int, v PageRef) { rt.SetLong(ref, off, v) }

// WriteBody copies data into the record body at off (bulk byte-array
// fills).
func (rt *Runtime) WriteBody(ref PageRef, off int, data []byte) {
	copy(rt.body(ref)[off:], data)
}

// ReadBody copies n body bytes starting at off out of the record.
func (rt *Runtime) ReadBody(ref PageRef, off, n int) []byte {
	out := make([]byte, n)
	copy(out, rt.body(ref)[off:])
	return out
}

// ArrayCopy copies n elements of elemSize bytes between array records,
// the native-memory model of System.arraycopy.
func (rt *Runtime) ArrayCopy(src PageRef, srcPos int, dst PageRef, dstPos, n, elemSize int) {
	sb := rt.body(src)[srcPos*elemSize : (srcPos+n)*elemSize]
	db := rt.body(dst)[dstPos*elemSize : (dstPos+n)*elemSize]
	copy(db, sb)
}
