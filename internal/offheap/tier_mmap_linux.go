//go:build linux

package offheap

import (
	"fmt"
	"os"
	"syscall"
)

// mmapBackend maps the spill file and serves slot reads/writes as memory
// copies. The mapping grows geometrically (Ftruncate + remap); remapping
// is safe because page bodies are always copied in and out under tier.mu —
// no PageRef ever resolves into the mapping itself.
type mmapBackend struct {
	f     *os.File
	data  []byte
	slots int
}

func newMmapBackend(f *os.File) tierBackend { return &mmapBackend{f: f} }

func (b *mmapBackend) ensure(slot int) error {
	if slot < b.slots {
		return nil
	}
	n := b.slots * 2
	if n < slot+1 {
		n = slot + 1
	}
	if n < 64 {
		n = 64
	}
	if err := syscall.Ftruncate(int(b.f.Fd()), int64(n)*PageSize); err != nil {
		return err
	}
	if b.data != nil {
		if err := syscall.Munmap(b.data); err != nil {
			return err
		}
		b.data = nil
		b.slots = 0
	}
	data, err := syscall.Mmap(int(b.f.Fd()), 0, n*PageSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return err
	}
	b.data = data
	b.slots = n
	return nil
}

func (b *mmapBackend) writeSlot(slot int, buf []byte) error {
	if err := b.ensure(slot); err != nil {
		return err
	}
	copy(b.data[slot*PageSize:(slot+1)*PageSize], buf)
	return nil
}

func (b *mmapBackend) readSlot(slot int, buf []byte) error {
	if slot < 0 || slot >= b.slots {
		return fmt.Errorf("offheap: tier slot %d out of range", slot)
	}
	copy(buf, b.data[slot*PageSize:(slot+1)*PageSize])
	return nil
}

func (b *mmapBackend) close(remove bool) error {
	var err error
	if b.data != nil {
		err = syscall.Munmap(b.data)
		b.data = nil
		b.slots = 0
	}
	name := b.f.Name()
	if cerr := b.f.Close(); err == nil {
		err = cerr
	}
	if remove {
		if rerr := os.Remove(name); err == nil {
			err = rerr
		}
	}
	return err
}
