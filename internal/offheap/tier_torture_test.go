package offheap

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestTierTorture churns allocation, spill, promotion, and iteration
// release from several goroutines at once under a watermark tight enough
// that the evictor runs constantly. Every goroutine re-verifies a shared
// set of pinned-by-access records each round, so a lost page body, a
// double spill, or a promote racing an eviction shows up as a value
// mismatch — and the -race run in CI checks the locking protocol itself.
// Sibling of internal/heap's GC torture test, one storage level down.
func TestTierTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test skipped in -short")
	}
	rt, _ := newTieredRuntime(t, 6, 3, false)
	ic := 0
	root := newScope(rt, &ic, 0)
	defer root.Close()

	// Shared records, one dedicated page each, written once and read by
	// every worker: they spill and promote continuously under pressure.
	const nShared = 8
	shared := make([]PageRef, nShared)
	for i := range shared {
		shared[i] = dedicated(t, root.Current(), uint16(i+1))
		rt.SetLong(shared[i], 0, int64(i)*7919)
		rt.SetDouble(shared[i], 8, float64(i)+0.25)
	}

	const (
		workers = 4
		rounds  = 60
	)
	// iterMu serializes scope/iteration transitions: the iteration-ID
	// counter is shared and plain (the VM serializes it the same way).
	var iterMu sync.Mutex
	var failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			iterMu.Lock()
			s := rt.NewIterScope(root.Current(), &ic, w+1)
			iterMu.Unlock()
			defer func() {
				iterMu.Lock()
				s.Close()
				iterMu.Unlock()
			}()
			for r := 0; r < rounds; r++ {
				iterMu.Lock()
				s.IterationStart()
				iterMu.Unlock()
				// Private churn: allocations that force eviction, written
				// and immediately re-read.
				priv := make([]PageRef, 0, 6)
				for i := 0; i < 6; i++ {
					ref, err := s.Current().AllocRecord(100, 20000)
					if err != nil {
						failures.Add(1)
						continue
					}
					rt.SetLong(ref, 0, int64(w*1_000_000+r*1_000+i))
					priv = append(priv, ref)
				}
				for i, ref := range priv {
					if got := rt.GetLong(ref, 0); got != int64(w*1_000_000+r*1_000+i) {
						t.Errorf("worker %d round %d: private record %d = %d", w, r, i, got)
					}
				}
				// Shared records must read the same values from any tier.
				for i, ref := range shared {
					if got := rt.GetLong(ref, 0); got != int64(i)*7919 {
						t.Errorf("worker %d round %d: shared record %d long = %d", w, r, i, got)
					}
					if got := rt.GetDouble(ref, 8); got != float64(i)+0.25 {
						t.Errorf("worker %d round %d: shared record %d double = %v", w, r, i, got)
					}
				}
				iterMu.Lock()
				s.IterationEnd()
				iterMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d allocation failures without fault injection", n)
	}
	checkTierAccounting(t, rt)
	for i, ref := range shared {
		if got := rt.GetLong(ref, 0); got != int64(i)*7919 {
			t.Fatalf("shared record %d = %d after torture", i, got)
		}
	}
}
