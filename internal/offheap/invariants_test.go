package offheap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// Invariant tests for the native store: size-class boundary behavior,
// page high-water monotonicity, release idempotence, and the page-cache
// iteration-isolation property the per-scope cache relies on.

func TestSizeClassBoundaries(t *testing.T) {
	// classFor operates on the full record size (header + body, rounded to
	// 8); the table is 64/256/1024/4096/PageSize/2, with -1 meaning "empty
	// page of its own" (§3.6 large records) or oversize.
	cases := []struct {
		size, class int
	}{
		{1, 0}, {64, 0},
		{65, 1}, {256, 1},
		{257, 2}, {1024, 2},
		{1025, 3}, {4096, 3},
		{4097, 4}, {PageSize / 2, 4},
		{PageSize/2 + 1, -1},
		{PageSize, -1},
		{PageSize + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.size); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.size, got, c.class)
		}
	}

	// Allocation-level behavior at the boundaries. Two records of exactly
	// PageSize/2 must share one page; one byte more forces a dedicated
	// empty page; more than a page is oversize and counted as such.
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	m := s.Current()

	half := PageSize/2 - ScalarHeader // body size for a PageSize/2 record
	mustRecord(t, m, 1, half)
	mustRecord(t, m, 1, half)
	if got := m.PageCount(); got != 1 {
		t.Fatalf("two half-page records occupy %d pages, want 1 shared page", got)
	}
	mustRecord(t, m, 1, half)
	if got := m.PageCount(); got != 2 {
		t.Fatalf("third half-page record: %d pages, want 2", got)
	}

	mustRecord(t, m, 1, half+8) // rounds past PageSize/2: dedicated page
	if got := m.PageCount(); got != 3 {
		t.Fatalf("large record did not get its own page: %d pages", got)
	}
	mustRecord(t, m, 1, 16) // small record must NOT land on the dedicated page
	if got := m.PageCount(); got != 4 {
		t.Fatalf("small record shared a dedicated large page: %d pages", got)
	}

	before := rt.Stats().Oversize
	ref := mustRecord(t, m, 1, PageSize) // header pushes it past PageSize
	if got := rt.Stats().Oversize; got != before+1 {
		t.Fatalf("oversize count %d, want %d", got, before+1)
	}
	if !rt.ReleaseOversize(ref) {
		t.Fatal("oversize record not releasable early")
	}
}

func TestPageHighWaterMonotonic(t *testing.T) {
	// PageHighWater must track max(PageCount) over the manager's lifetime:
	// never decrease, never undershoot the current count, and survive
	// ReleaseAll as a record of the peak.
	check := func(seed int64) bool {
		rt := NewRuntime()
		ic := 0
		s := newScope(rt, &ic, 0)
		defer s.Close()
		s.IterationStart()
		m := s.Current()
		rng := rand.New(rand.NewSource(seed))
		prevHW, maxSeen := 0, 0
		for op := 0; op < 200; op++ {
			// Mix of class sizes so several cur[] pages are in flight.
			body := []int{16, 200, 900, 4000, PageSize / 2}[rng.Intn(5)]
			if _, err := m.AllocRecord(1, body); err != nil {
				t.Fatal(err)
			}
			hw := m.PageHighWater()
			if hw < prevHW {
				t.Errorf("seed %d op %d: high water fell %d -> %d", seed, op, prevHW, hw)
				return false
			}
			if hw < m.PageCount() {
				t.Errorf("seed %d op %d: high water %d < live pages %d", seed, op, hw, m.PageCount())
				return false
			}
			if m.PageCount() > maxSeen {
				maxSeen = m.PageCount()
			}
			prevHW = hw
		}
		if m.PageHighWater() != maxSeen {
			t.Errorf("seed %d: high water %d != observed max %d", seed, m.PageHighWater(), maxSeen)
			return false
		}
		s.IterationEnd()
		if m.PageCount() != 0 {
			t.Errorf("seed %d: pages remain after release", seed)
			return false
		}
		if m.PageHighWater() != maxSeen {
			t.Errorf("seed %d: release erased the high-water mark", seed)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleReleaseIsIdempotent(t *testing.T) {
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	s.IterationStart()
	m := s.Current()
	for i := 0; i < 50; i++ {
		mustRecord(t, m, 1, 100)
	}
	s.IterationEnd()
	after := rt.Stats()
	if after.PagesLive < 0 || after.BytesInUse < 0 {
		t.Fatalf("negative accounting after release: %+v", after)
	}
	// Releasing again must change nothing: no double stat decrement, no
	// page freed twice into the pool.
	m.ReleaseAll()
	m.ReleaseAll()
	if again := rt.Stats(); again != after {
		t.Fatalf("double release changed stats:\nfirst:  %+v\nsecond: %+v", after, again)
	}
	// And allocation from the released manager fails with the typed error.
	if _, err := m.AllocRecord(1, 8); !errors.Is(err, ErrReleasedManager) {
		t.Fatalf("alloc after release: %v, want ErrReleasedManager", err)
	}
	s.Close()
	if final := rt.Stats(); final.PagesLive != 0 {
		t.Fatalf("pages live after scope close: %d", final.PagesLive)
	}
}

// TestCacheNeverCrossesOpenIterations is the page-cache isolation property:
// the scope cache only ever holds pages released by *closed* iterations, so
// a pop can never hand an iteration back a page that a still-live iteration
// (including itself) is using. Checked against random open/alloc/close walks.
func TestCacheNeverCrossesOpenIterations(t *testing.T) {
	check := func(seed int64) bool {
		rt := NewRuntime()
		ic := 0
		s := newScope(rt, &ic, 0)
		defer s.Close()
		rng := rand.New(rand.NewSource(seed))

		assertIsolated := func(op int) bool {
			open := map[int]bool{}
			for _, m := range s.stack {
				open[m.IterID] = true
			}
			s.cache.mu.Lock()
			defer s.cache.mu.Unlock()
			for _, e := range s.cache.entries {
				if open[e.srcIter] {
					t.Errorf("seed %d op %d: cache holds page from open iteration %d", seed, op, e.srcIter)
					return false
				}
				if e.srcIter >= ic && e.srcIter != -1 {
					t.Errorf("seed %d op %d: cache entry from unissued iteration %d", seed, op, e.srcIter)
					return false
				}
			}
			return true
		}

		for op := 0; op < 400; op++ {
			switch rng.Intn(5) {
			case 0:
				if s.Depth() < 4 {
					s.IterationStart()
				}
			case 1:
				if s.Depth() > 0 {
					s.IterationEnd()
				}
			default:
				// Enough churn that iterations routinely span pages and
				// the cache sees real traffic.
				body := []int{32, 512, 3000}[rng.Intn(3)]
				for i := 0; i < 30; i++ {
					if _, err := s.Current().AllocRecord(1, body); err != nil {
						t.Fatal(err)
					}
				}
			}
			if !assertIsolated(op) {
				return false
			}
		}
		if s.CachedPages() == 0 && rt.Stats().PagesRecycled == 0 {
			t.Errorf("seed %d: walk never exercised the cache", seed)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
