package offheap

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/faults"
	"repro/internal/lang"
)

func newScope(rt *Runtime, iterCounter *int, tid int) *IterScope {
	return rt.NewIterScope(nil, iterCounter, tid)
}

func mustRecord(t testing.TB, m *PageManager, typeID uint16, size int) PageRef {
	t.Helper()
	ref, err := m.AllocRecord(typeID, size)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestRecordRoundtrip(t *testing.T) {
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	ref := mustRecord(t, s.Current(), 7, 64)
	if rt.ClassID(ref) != 7 || rt.IsArrayRecord(ref) {
		t.Fatal("bad scalar header")
	}
	rt.SetInt(ref, 0, -123)
	rt.SetLong(ref, 8, 1<<40)
	rt.SetDouble(ref, 16, 3.25)
	rt.SetByte(ref, 24, -5)
	rt.SetRef(ref, 32, ref)
	if rt.GetInt(ref, 0) != -123 || rt.GetLong(ref, 8) != 1<<40 ||
		rt.GetDouble(ref, 16) != 3.25 || rt.GetByte(ref, 24) != -5 ||
		rt.GetRef(ref, 32) != ref {
		t.Fatal("record field roundtrip failed")
	}
}

func TestArrayRecord(t *testing.T) {
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	idx := rt.ArrayTypeIndex(lang.IntType)
	ref, err := s.Current().AllocArray(idx, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.IsArrayRecord(ref) || rt.ArrayLen(ref) != 1000 || rt.ArrayTypeOf(ref) != idx {
		t.Fatal("bad array header")
	}
	for i := 0; i < 1000; i++ {
		rt.SetInt(ref, i*4, int32(i))
	}
	for i := 0; i < 1000; i++ {
		if rt.GetInt(ref, i*4) != int32(i) {
			t.Fatalf("elem %d", i)
		}
	}
}

func TestHeaderSizesMatchPaper(t *testing.T) {
	// Figure 1: 4-byte record header, 8 bytes for arrays (2-byte type ID,
	// 2-byte lock, 4-byte length).
	if ScalarHeader != 4 || ArrayHeader != 8 {
		t.Fatalf("headers %d/%d", ScalarHeader, ArrayHeader)
	}
}

// TestRecordValuesSurviveRandomOps is a property test over random record
// writes: values read back must match a shadow model.
func TestRecordValuesSurviveRandomOps(t *testing.T) {
	check := func(seed int64) bool {
		rt := NewRuntime()
		ic := 0
		s := newScope(rt, &ic, 0)
		defer s.Close()
		rng := rand.New(rand.NewSource(seed))
		type slot struct {
			ref PageRef
			off int
		}
		shadow := make(map[slot]int64)
		var refs []PageRef
		for i := 0; i < 50; i++ {
			refs = append(refs, mustRecord(t, s.Current(), uint16(i%100), 128))
		}
		for op := 0; op < 2000; op++ {
			sl := slot{refs[rng.Intn(len(refs))], rng.Intn(15) * 8}
			v := rng.Int63()
			rt.SetLong(sl.ref, sl.off, v)
			shadow[sl] = v
		}
		for sl, v := range shadow {
			if rt.GetLong(sl.ref, sl.off) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestIterationReclaimsPages(t *testing.T) {
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	for iter := 0; iter < 10; iter++ {
		s.IterationStart()
		for i := 0; i < 10000; i++ {
			s.Current().AllocRecord(1, 48)
		}
		s.IterationEnd()
	}
	st := rt.Stats()
	// Pages must be recycled across iterations: the distinct page count
	// should be roughly one iteration's worth, not ten.
	if st.PagesCreated > 40 {
		t.Fatalf("pages created = %d; recycling is not working", st.PagesCreated)
	}
	if st.PagesRecycled == 0 {
		t.Fatal("no pages were recycled")
	}
	if st.PagesLive != 0 {
		t.Fatalf("%d pages still live after all iterations ended", st.PagesLive)
	}
}

func TestNestedIterations(t *testing.T) {
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	s.IterationStart()
	outer := s.Current()
	outerRec := mustRecord(t, outer, 1, 32)
	rt.SetInt(outerRec, 0, 77)
	for sub := 0; sub < 5; sub++ {
		s.IterationStart()
		if s.Depth() != 2 {
			t.Fatalf("depth %d", s.Depth())
		}
		for i := 0; i < 5000; i++ {
			s.Current().AllocRecord(2, 64)
		}
		s.IterationEnd()
	}
	// Outer iteration's data is untouched by sub-iteration reclamation.
	if rt.GetInt(outerRec, 0) != 77 {
		t.Fatal("outer record corrupted by sub-iteration release")
	}
	s.IterationEnd()
	if rt.Stats().PagesLive != 0 {
		t.Fatal("pages leak after outer iteration end")
	}
}

func TestThreadManagerParentedUnderIteration(t *testing.T) {
	// A thread spawned during an iteration gets a manager parented under
	// that iteration's manager; ending the iteration reclaims the
	// (closed) thread's pages too.
	rt := NewRuntime()
	ic := 0
	main := newScope(rt, &ic, 0)
	defer main.Close()
	main.IterationStart()
	child := rt.NewIterScope(main.Current(), &ic, 1)
	child.Current().AllocRecord(3, 64)
	// Thread finishes without closing explicitly: the subtree release at
	// iteration end must still reclaim it.
	main.IterationEnd()
	if rt.Stats().PagesLive != 0 {
		t.Fatalf("%d pages live; thread manager not released with iteration", rt.Stats().PagesLive)
	}
	if !child.Default().Released() {
		t.Fatal("child default manager not released")
	}
}

func TestOversizeAllocation(t *testing.T) {
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	idx := rt.ArrayTypeIndex(lang.ByteType)
	ref, err := s.Current().AllocArray(idx, 1, 5*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if rt.ArrayLen(ref) != 5*PageSize {
		t.Fatal("oversize length wrong")
	}
	rt.SetByte(ref, 5*PageSize-1, 42)
	if rt.GetByte(ref, 5*PageSize-1) != 42 {
		t.Fatal("oversize tail write failed")
	}
	if rt.Stats().Oversize != 1 {
		t.Fatalf("oversize count %d", rt.Stats().Oversize)
	}
}

func TestLargeRecordGetsOwnPage(t *testing.T) {
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	// Two large-but-not-oversize arrays must land on distinct pages
	// ("large arrays are allocated on empty pages").
	idx := rt.ArrayTypeIndex(lang.ByteType)
	a, _ := s.Current().AllocArray(idx, 1, PageSize*3/4)
	b, _ := s.Current().AllocArray(idx, 1, PageSize*3/4)
	pa, _ := splitRef(a)
	pb, _ := splitRef(b)
	if pa == pb {
		t.Fatal("two large arrays share a page")
	}
}

func TestContiguousSmallAllocations(t *testing.T) {
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	// Policy 1: consecutive small records of the same size class are
	// contiguous within a page.
	a := mustRecord(t, s.Current(), 1, 20)
	b := mustRecord(t, s.Current(), 1, 20)
	pa, oa := splitRef(a)
	pb, ob := splitRef(b)
	if pa != pb || ob != oa+24 { // 4-byte header + 20 rounded to 24
		t.Fatalf("not contiguous: page %d off %d -> page %d off %d", pa, oa, pb, ob)
	}
}

// ---------------------------------------------------------------------------
// Lock pool

func TestLockPoolMutualExclusion(t *testing.T) {
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	rec := mustRecord(t, s.Current(), 1, 16)
	rt.SetInt(rec, 0, 0)

	const nThreads = 8
	const perThread = 1000
	var wg sync.WaitGroup
	for i := 0; i < nThreads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			owner := &struct{}{}
			for j := 0; j < perThread; j++ {
				if err := rt.Locks.Enter(rt, rec, owner, nil); err != nil {
					t.Error(err)
					return
				}
				v := rt.GetInt(rec, 0)
				rt.SetInt(rec, 0, v+1)
				if err := rt.Locks.Exit(rt, rec, owner); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := rt.GetInt(rec, 0); got != nThreads*perThread {
		t.Fatalf("counter = %d, want %d (lock pool does not exclude)", got, nThreads*perThread)
	}
	// After the last exit the lock returns to the pool and the record's
	// lock field is zeroed (§3.4).
	if rt.GetLockID(rec) != 0 {
		t.Fatal("record lock field not zeroed after release")
	}
	if rt.Locks.InUse() != 0 {
		t.Fatalf("%d locks still in use", rt.Locks.InUse())
	}
}

func TestLockPoolReentrancy(t *testing.T) {
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	rec := mustRecord(t, s.Current(), 1, 16)
	owner := &struct{}{}
	for i := 0; i < 3; i++ {
		if err := rt.Locks.Enter(rt, rec, owner, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := rt.Locks.Exit(rt, rec, owner); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Locks.InUse() != 0 {
		t.Fatal("reentrant lock not released")
	}
}

func TestLockPoolBound(t *testing.T) {
	// The number of pool locks in use is bounded by concurrent
	// synchronization, not by the number of records ever locked.
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	owner := &struct{}{}
	for i := 0; i < 10000; i++ {
		rec := mustRecord(t, s.Current(), 1, 16)
		if err := rt.Locks.Enter(rt, rec, owner, nil); err != nil {
			t.Fatal(err)
		}
		if err := rt.Locks.Exit(rt, rec, owner); err != nil {
			t.Fatal(err)
		}
	}
	if peak := rt.Locks.PeakInUse(); peak != 1 {
		t.Fatalf("peak locks %d, want 1: locks are not recycled", peak)
	}
}

func TestLockPoolExitErrors(t *testing.T) {
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	rec := mustRecord(t, s.Current(), 1, 16)
	if err := rt.Locks.Exit(rt, rec, &struct{}{}); err == nil {
		t.Fatal("exit without enter must fail")
	}
	a, b := &struct{}{}, &struct{}{}
	if err := rt.Locks.Enter(rt, rec, a, nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.Locks.Exit(rt, rec, b); err == nil {
		t.Fatal("exit by non-owner must fail")
	}
	if err := rt.Locks.Exit(rt, rec, a); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseOversizeEarly(t *testing.T) {
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	s.IterationStart()
	idx := rt.ArrayTypeIndex(lang.ByteType)
	big, _ := s.Current().AllocArray(idx, 1, 4*PageSize)
	small := mustRecord(t, s.Current(), 1, 32)
	before := rt.Stats().BytesInUse
	if !rt.ReleaseOversize(big) {
		t.Fatal("oversize page not released")
	}
	if rt.Stats().BytesInUse >= before {
		t.Fatal("bytes not reclaimed")
	}
	// Double release (iteration end) must be harmless, and small records
	// on shared pages must be refused.
	if rt.ReleaseOversize(small) {
		t.Fatal("released a shared page")
	}
	if rt.ReleaseOversize(0) {
		t.Fatal("released null")
	}
	s.IterationEnd()
	if rt.Stats().PagesLive != 0 {
		t.Fatalf("%d pages live after iteration end", rt.Stats().PagesLive)
	}
}

func TestReleasedManagerAllocError(t *testing.T) {
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	s.IterationStart()
	m := s.Current()
	s.IterationEnd()
	if _, err := m.AllocRecord(1, 16); !errors.Is(err, ErrReleasedManager) {
		t.Fatalf("err = %v, want ErrReleasedManager", err)
	}
	if _, err := m.AllocArray(0, 4, 10); !errors.Is(err, ErrReleasedManager) {
		t.Fatalf("array err = %v, want ErrReleasedManager", err)
	}
}

func TestAllocArrayRejectsExhaustedTypeRegistry(t *testing.T) {
	rt := NewRuntime()
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	// -1 is ArrayTypeIndex's "registry full" answer.
	if _, err := s.Current().AllocArray(-1, 4, 10); !errors.Is(err, ErrTooManyArrayTypes) {
		t.Fatalf("err = %v, want ErrTooManyArrayTypes", err)
	}
}

func TestInjectedPageFault(t *testing.T) {
	rt := NewRuntime()
	rt.SetFaultInjector(faults.New(&faults.Config{Seed: 3, PageAt: 1}))
	ic := 0
	s := newScope(rt, &ic, 0)
	defer s.Close()
	_, err := s.Current().AllocRecord(1, 16)
	if !errors.Is(err, ErrPageExhausted) {
		t.Fatalf("err = %v, want ErrPageExhausted", err)
	}
	// The schedule was one-shot; the next acquire succeeds and the store
	// is unharmed.
	if _, err := s.Current().AllocRecord(1, 16); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().PagesLive != 1 {
		t.Fatalf("pages live = %d after one failed and one good acquire", rt.Stats().PagesLive)
	}
}
