package offheap

import (
	"fmt"
	"sync"
)

// LockPool is the shared pool of reentrant monitor locks backing
// synchronized blocks on page records (§3.4). A record's 2-byte lock
// field holds the 1-based index of the pool lock currently protecting it,
// or 0. A bit vector tracks which pool locks are in use; when the last
// thread using a lock exits, the lock is returned to the pool and the
// record's lock field is zeroed, so the number of live lock objects is
// O(threads × nesting), not O(records).
const defaultLockPoolSize = 4096

// Parker lets a blocking monitor operation mark its thread as parked (at a
// GC safepoint) for the duration of the wait. A nil Parker is allowed.
type Parker interface {
	BeginExternal()
	EndExternal()
}

type poolLock struct {
	mu    sync.Mutex
	cond  *sync.Cond
	owner any
	depth int
	// users counts threads that hold or are blocked on this lock plus the
	// records currently pointing at it; maintained under the pool mutex.
	users int
}

// LockPool is safe for concurrent use.
type LockPool struct {
	mu    sync.Mutex
	bits  []uint64 // in-use bit vector, bit i == lock i in use
	locks []*poolLock
	// InUse is maintained for stats/tests.
	inUse int
	peak  int
}

// NewLockPool creates a pool with capacity locks.
func NewLockPool(capacity int) *LockPool {
	lp := &LockPool{
		bits:  make([]uint64, (capacity+63)/64),
		locks: make([]*poolLock, capacity),
	}
	for i := range lp.locks {
		l := &poolLock{}
		l.cond = sync.NewCond(&l.mu)
		lp.locks[i] = l
	}
	return lp
}

// InUse returns the number of pool locks currently assigned to records.
func (lp *LockPool) InUse() int {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	return lp.inUse
}

// PeakInUse returns the high-water mark of assigned locks.
func (lp *LockPool) PeakInUse() int {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	return lp.peak
}

func (lp *LockPool) acquireFreeLocked() (uint16, error) {
	for wi, w := range lp.bits {
		if w == ^uint64(0) {
			continue
		}
		for b := 0; b < 64; b++ {
			if w&(1<<b) == 0 {
				i := wi*64 + b
				if i >= len(lp.locks) {
					break
				}
				lp.bits[wi] |= 1 << b
				lp.inUse++
				if lp.inUse > lp.peak {
					lp.peak = lp.inUse
				}
				return uint16(i + 1), nil
			}
		}
	}
	return 0, fmt.Errorf("offheap: lock pool exhausted (%d locks)", len(lp.locks))
}

func (lp *LockPool) freeLocked(id uint16) {
	i := int(id - 1)
	lp.bits[i/64] &^= 1 << (i % 64)
	lp.inUse--
}

// Enter implements enterMonitor(record): it binds a pool lock to the
// record if none is bound, then acquires it reentrantly on behalf of
// owner. The Parker, if non-nil, marks the thread parked while blocked.
func (lp *LockPool) Enter(rt *Runtime, ref PageRef, owner any, pk Parker) error {
	lp.mu.Lock()
	id := rt.GetLockID(ref)
	if id == 0 {
		var err error
		id, err = lp.acquireFreeLocked()
		if err != nil {
			lp.mu.Unlock()
			return err
		}
		rt.SetLockID(ref, id)
	}
	l := lp.locks[id-1]
	l.users++
	lp.mu.Unlock()

	l.mu.Lock()
	for l.owner != nil && l.owner != owner {
		if pk != nil {
			pk.BeginExternal()
		}
		l.cond.Wait()
		if pk != nil {
			l.mu.Unlock()
			pk.EndExternal()
			l.mu.Lock()
		}
	}
	l.owner = owner
	l.depth++
	l.mu.Unlock()
	return nil
}

// Exit implements exitMonitor(record). When the last user releases the
// lock it is returned to the pool and the record's lock field is zeroed.
func (lp *LockPool) Exit(rt *Runtime, ref PageRef, owner any) error {
	lp.mu.Lock()
	id := rt.GetLockID(ref)
	if id == 0 {
		lp.mu.Unlock()
		return fmt.Errorf("offheap: exitMonitor on unlocked record")
	}
	l := lp.locks[id-1]
	lp.mu.Unlock()

	l.mu.Lock()
	if l.owner != owner {
		l.mu.Unlock()
		return fmt.Errorf("offheap: exitMonitor by non-owner")
	}
	l.depth--
	if l.depth == 0 {
		l.owner = nil
		l.cond.Broadcast()
	}
	l.mu.Unlock()

	lp.mu.Lock()
	l.users--
	if l.users == 0 {
		// No thread holds or waits on this lock: recycle it.
		if l.owner == nil {
			rt.SetLockID(ref, 0)
			lp.freeLocked(id)
		}
	}
	lp.mu.Unlock()
	return nil
}
