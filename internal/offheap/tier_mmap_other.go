//go:build !linux

package offheap

import "os"

// Platforms without an mmap backend fall back to pread/pwrite.
func newMmapBackend(f *os.File) tierBackend { return &fileBackend{f: f} }
