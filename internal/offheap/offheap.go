// Package offheap implements the FACADE runtime's native-memory data store
// (§2.1, §3.6 of the paper): fixed-size 32 KB pages carved into size
// classes, an "oversize" class for records larger than a page, and a tree
// of page managers keyed by ⟨iterationID, thread⟩ that supports
// iteration-based bulk reclamation with nested sub-iterations.
//
// Data records stored here are never seen by the managed heap's garbage
// collector; that is the entire point. A record is addressed by a 64-bit
// page reference (PageRef) and laid out exactly like the body of the
// corresponding heap object, preceded by a compact header (Figure 1):
//
//	scalar record: [type ID u16][lock ID u16]             = 4-byte header
//	array record:  [type ID u16][lock ID u16][length u32] = 8-byte header
//
// versus the 12/16-byte headers of managed objects — the space saving the
// paper reports comes directly from this difference plus the removal of GC
// metadata.
//
// As with real native memory, a reference into a page that has been
// released by its iteration dangles: it reads whatever the recycled page
// now contains. The paper's correctness argument (§3.7) excludes this by
// the user's iteration specification, and so do we.
package offheap

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/obs"
)

// Typed allocation errors. These propagate through the VM boundary like
// heap.ErrOutOfMemory does, so both injected faults and programmer errors
// are recoverable and testable instead of process-killing panics.
var (
	// ErrReleasedManager is returned for an allocation from a page
	// manager whose iteration has already been released (§3.6: a record
	// must not outlive its iteration).
	ErrReleasedManager = errors.New("offheap: allocation from a released page manager")
	// ErrTooManyArrayTypes is returned when the dense array-type registry
	// is exhausted (the type word reserves 14 bits for the index).
	ErrTooManyArrayTypes = errors.New("offheap: too many distinct array element types")
	// ErrPageExhausted is returned when a page acquire fails — via
	// injected faults or an exceeded page quota, standing in for native
	// allocation failure.
	ErrPageExhausted = errors.New("offheap: page store exhausted")
	// ErrPageQuota wraps ErrPageExhausted for acquires denied by a tenant
	// page quota (SetPageQuota), so quota overruns ride the same OOM
	// degradation rails while staying distinguishable with errors.Is.
	ErrPageQuota = fmt.Errorf("%w: page quota exceeded", ErrPageExhausted)
)

// PageRef is a reference to a record in native memory: the page index+1 in
// the high 32 bits and the byte offset within the page in the low 32 bits.
// 0 is null.
type PageRef = int64

// PageSize is the fixed page size (32 KB, "a common practice in the
// database design").
const PageSize = 32 << 10

// Record header layout.
const (
	// ScalarHeader and ArrayHeader are the record header sizes.
	ScalarHeader = 4
	ArrayHeader  = 8

	arrayTypeBit uint16 = 1 << 14
)

// MakeRef builds a PageRef from a page index and offset.
func MakeRef(pageIdx int, off int) PageRef {
	return PageRef(int64(pageIdx+1)<<32 | int64(off))
}

func splitRef(r PageRef) (pageIdx, off int) {
	return int(r>>32) - 1, int(r & 0xffffffff)
}

// page is one native memory block.
type page struct {
	buf []byte
	pos int // bump pointer, owned by the manager currently holding the page
	idx int // index in the runtime page table
	// released guards against double release: oversize pages can be freed
	// early (§3.6) and would otherwise be freed again at iteration end.
	released atomic.Bool

	// Disk-tier state; only touched when the runtime has a tier attached
	// (see tier.go for the locking protocol).
	pinned   atomic.Int32 // in-flight record ops + the manager's bump-page pin
	evicting atomic.Bool  // spill in progress or completed (Dekker flag vs pinners)
	accessed atomic.Bool  // second-chance bit for the clock sweep
	tierMu   sync.Mutex   // serializes spill/promote/release transitions
	spilled  bool         // under tierMu: the body lives in the spill file
	slot     int          // under tierMu: spill-file slot while spilled
	candIdx  int          // under tier.mu: index in the candidate list, -1 if absent
}

// Runtime owns all pages, the free-page pool, the array type registry, and
// the shared lock pool.
type Runtime struct {
	// DisableRecycle turns off the free-page pool (ablation: every page
	// released at an iteration end is dropped and later allocations get
	// fresh pages).
	DisableRecycle bool
	// DisablePageCache turns off the per-scope page cache (ablation:
	// every recycled page goes through the global pool and rt.mu).
	DisablePageCache bool

	mu   sync.Mutex
	free []*page // recycled pages awaiting reuse
	// table is a copy-on-write page table so record accesses resolve page
	// references without locking.
	table atomic.Pointer[[]*page]

	arrMu    sync.Mutex
	arrTypes []*lang.Type
	arrIndex map[string]int

	Locks *LockPool

	stats struct {
		pagesCreated  atomic.Int64
		pagesRecycled atomic.Int64
		pagesLive     atomic.Int64
		oversize      atomic.Int64
		records       atomic.Int64
		bytesInUse    atomic.Int64
		peakBytes     atomic.Int64
		managers      atomic.Int64
	}

	// Observability instruments (internal/obs).
	obs           *obs.Registry
	cPageAcquires *obs.Counter
	cPageReleases *obs.Counter
	cPageRecycles *obs.Counter
	gPagesLive    *obs.Gauge

	// Fault injection: nil when disabled.
	inj        *faults.Injector
	cFaultsInj *obs.Counter

	// quota caps simultaneously live pages (0 = unlimited); acquires past
	// the cap fail with ErrPageQuota. This is the per-tenant offheap
	// budget hook the daemon's admission control leans on. With a disk
	// tier attached the quota caps DRAM-resident pages instead, and an
	// acquire at the cap tries to spill before failing.
	quota atomic.Int64

	// tier is the disk tier, nil unless EnableTiering attached one.
	// Set before the store is shared between threads, cleared by Reset.
	tier *tier
}

// Stats is a snapshot of the native store counters.
type Stats struct {
	PagesCreated  int64 // distinct page allocations from the OS (Go) side
	PagesLive     int64 // pages currently owned by some manager
	PagesLiveHW   int64 // high-water mark of simultaneously live pages
	PagesRecycled int64 // page reuses through the free pool
	Oversize      int64 // oversize allocations (> PageSize records)
	Records       int64 // records ever allocated
	BytesInUse    int64 // DRAM bytes held by live pages (spilled bodies excluded)
	PeakBytes     int64
	Managers      int64 // page managers ever created

	// Disk tier (all zero when no tier is attached).
	PagesSpilled  int64 // evictions DRAM -> disk
	PagesPromoted int64 // promotions disk -> DRAM
	PagesResident int64 // live pages currently in DRAM
	PagesDisk     int64 // live pages currently spilled
	SpillBytes    int64
	PromoteBytes  int64
}

// NewRuntime creates an empty native store with a private observability
// registry.
func NewRuntime() *Runtime { return NewRuntimeWith(nil) }

// NewRuntimeWith creates an empty native store publishing its instruments
// to reg (a fresh private registry when nil).
func NewRuntimeWith(reg *obs.Registry) *Runtime {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	rt := &Runtime{
		arrIndex:      make(map[string]int),
		Locks:         NewLockPool(defaultLockPoolSize),
		obs:           reg,
		cPageAcquires: reg.Counter(obs.CtrPageAcquires),
		cPageReleases: reg.Counter(obs.CtrPageReleases),
		cPageRecycles: reg.Counter(obs.CtrPageRecycles),
		gPagesLive:    reg.Gauge(obs.GaugePagesLive),
	}
	empty := make([]*page, 0)
	rt.table.Store(&empty)
	return rt
}

// Obs returns the store's observability registry.
func (rt *Runtime) Obs() *obs.Registry { return rt.obs }

// SetFaultInjector installs a fault injector consulted on every page
// acquire (nil disables injection). Call before the store is shared
// between threads.
func (rt *Runtime) SetFaultInjector(inj *faults.Injector) {
	rt.inj = inj
	if inj != nil && rt.cFaultsInj == nil {
		rt.cFaultsInj = rt.obs.Counter(obs.CtrFaultPageAcquire)
	}
}

// SetPageQuota caps the number of simultaneously live pages (0 removes
// the cap). An acquire that would exceed the quota fails with
// ErrPageQuota, which wraps ErrPageExhausted and therefore takes the same
// recovery path as native allocation failure. Deterministic for a given
// program: the cap is evaluated against the store's live-page gauge, which
// a single-job VM drives deterministically.
func (rt *Runtime) SetPageQuota(pages int64) { rt.quota.Store(pages) }

// PageQuota returns the current live-page cap (0 = unlimited).
func (rt *Runtime) PageQuota() int64 { return rt.quota.Load() }

// checkQuota admits one more live page or returns ErrPageQuota. With a
// disk tier the quota caps DRAM-resident pages, and eviction runs first —
// spill is the new first rung of the degradation ladder, before
// budget-halving, before OME.
func (rt *Runtime) checkQuota() error {
	q := rt.quota.Load()
	if q <= 0 {
		return nil
	}
	if t := rt.tier; t != nil {
		if t.resident.Load() >= q {
			rt.evictTo(q - 1)
		}
		if t.resident.Load() >= q {
			return fmt.Errorf("%w (quota %d resident pages)", ErrPageQuota, q)
		}
		return nil
	}
	if rt.stats.pagesLive.Load() >= q {
		return fmt.Errorf("%w (quota %d pages)", ErrPageQuota, q)
	}
	return nil
}

// Reset returns the store to its post-New state for reuse by another job,
// keeping the recycled-page free pool warm: free pages are re-indexed into
// a fresh page table so the table does not grow without bound across jobs,
// counters rewind to zero, and the instruments rebind to reg. It fails if
// any page is still live — a job that leaked pages poisons the store, and
// the daemon rebuilds instead of reusing it.
func (rt *Runtime) Reset(reg *obs.Registry, inj *faults.Injector) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if live := rt.stats.pagesLive.Load(); live != 0 {
		return fmt.Errorf("offheap: reset with %d live page(s)", live)
	}
	next := make([]*page, len(rt.free))
	for i, p := range rt.free {
		p.idx = i
		p.pos = 0
		p.released.Store(false)
		p.candIdx = -1
		next[i] = p
	}
	rt.table.Store(&next)
	rt.stats.pagesCreated.Store(0)
	rt.stats.pagesRecycled.Store(0)
	rt.stats.pagesLive.Store(0)
	rt.stats.oversize.Store(0)
	rt.stats.records.Store(0)
	rt.stats.bytesInUse.Store(0)
	rt.stats.peakBytes.Store(0)
	rt.stats.managers.Store(0)
	rt.quota.Store(0) // a reused store must not inherit the previous job's cap
	rt.Locks = NewLockPool(defaultLockPoolSize)
	if reg == nil {
		reg = obs.NewRegistry()
	}
	rt.obs = reg
	rt.cPageAcquires = reg.Counter(obs.CtrPageAcquires)
	rt.cPageReleases = reg.Counter(obs.CtrPageReleases)
	rt.cPageRecycles = reg.Counter(obs.CtrPageRecycles)
	rt.gPagesLive = reg.Gauge(obs.GaugePagesLive)
	rt.inj = inj
	rt.cFaultsInj = nil
	if inj != nil {
		rt.cFaultsInj = reg.Counter(obs.CtrFaultPageAcquire)
	}
	// Tear down the disk tier: a pooled warm VM must not leak spill files
	// (or tier counters) across tenant jobs.
	if err := rt.closeTier(); err != nil {
		return fmt.Errorf("offheap: reset: %w", err)
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (rt *Runtime) Stats() Stats {
	s := Stats{
		PagesCreated:  rt.stats.pagesCreated.Load(),
		PagesLive:     rt.stats.pagesLive.Load(),
		PagesLiveHW:   rt.gPagesLive.HighWater(),
		PagesRecycled: rt.stats.pagesRecycled.Load(),
		Oversize:      rt.stats.oversize.Load(),
		Records:       rt.stats.records.Load(),
		BytesInUse:    rt.stats.bytesInUse.Load(),
		PeakBytes:     rt.stats.peakBytes.Load(),
		Managers:      rt.stats.managers.Load(),
	}
	if t := rt.tier; t != nil {
		s.PagesSpilled = t.cSpilled.Load()
		s.PagesPromoted = t.cPromoted.Load()
		s.PagesResident = t.resident.Load()
		s.PagesDisk = t.disk.Load()
		s.SpillBytes = t.cSpillBytes.Load()
		s.PromoteBytes = t.cPromoteBytes.Load()
	}
	return s
}

// ArrayTypeIndex returns the dense index for an array element type, or -1
// when the registry is exhausted (the allocation sites turn -1 into
// ErrTooManyArrayTypes; lookups of already-registered types never fail).
func (rt *Runtime) ArrayTypeIndex(elem *lang.Type) int {
	key := elem.String()
	rt.arrMu.Lock()
	defer rt.arrMu.Unlock()
	if i, ok := rt.arrIndex[key]; ok {
		return i
	}
	i := len(rt.arrTypes)
	if i >= int(arrayTypeBit) {
		return -1
	}
	rt.arrTypes = append(rt.arrTypes, elem)
	rt.arrIndex[key] = i
	return i
}

// ArrayElemType returns the element type registered under idx.
func (rt *Runtime) ArrayElemType(idx int) *lang.Type {
	rt.arrMu.Lock()
	defer rt.arrMu.Unlock()
	return rt.arrTypes[idx]
}

// getPage allocates or recycles a page of at least size bytes. Pages
// larger than PageSize ("oversize") are never recycled through the pool.
// The faults.PageAcquire point is evaluated first: a firing point fails
// the acquire with ErrPageExhausted, modeling native allocation failure.
func (rt *Runtime) getPage(size int) (*page, error) {
	if rt.inj != nil && rt.inj.Fire(faults.PageAcquire) {
		n := rt.cFaultsInj.Load() + 1
		rt.cFaultsInj.Inc()
		rt.obs.Emit(obs.EvFault, string(faults.PageAcquire), n, 0, 0)
		return nil, fmt.Errorf("%w (injected fault)", ErrPageExhausted)
	}
	if err := rt.checkQuota(); err != nil {
		return nil, err
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.stats.pagesLive.Add(1)
	rt.cPageAcquires.Inc()
	rt.gPagesLive.Add(1)
	if size <= PageSize {
		size = PageSize
		if n := len(rt.free); n > 0 {
			p := rt.free[n-1]
			rt.free = rt.free[:n-1]
			p.pos = 0
			rt.stats.pagesRecycled.Add(1)
			rt.cPageRecycles.Inc()
			rt.addBytes(int64(len(p.buf)))
			rt.tierAcquire(p)
			return p, nil
		}
	} else {
		rt.stats.oversize.Add(1)
	}
	old := *rt.table.Load()
	p := &page{buf: make([]byte, size), idx: len(old), candIdx: -1}
	next := make([]*page, len(old)+1)
	copy(next, old)
	next[len(old)] = p
	rt.table.Store(&next)
	rt.stats.pagesCreated.Add(1)
	rt.addBytes(int64(size))
	rt.tierAcquire(p)
	return p, nil
}

// noteCachedRecycle replicates getPage's fault point and statistics for a
// PageSize page served from a scope-local cache, so fault schedules and
// observability counters are identical whether a recycled page came from
// the global pool or a cache. Unlike getPage it never takes rt.mu: the
// counters are atomics and no free-list or page-table access is needed —
// this is the lock-free fast path the cache exists for.
func (rt *Runtime) noteCachedRecycle(p *page) error {
	if rt.inj != nil && rt.inj.Fire(faults.PageAcquire) {
		n := rt.cFaultsInj.Load() + 1
		rt.cFaultsInj.Inc()
		rt.obs.Emit(obs.EvFault, string(faults.PageAcquire), n, 0, 0)
		return fmt.Errorf("%w (injected fault)", ErrPageExhausted)
	}
	if err := rt.checkQuota(); err != nil {
		return err
	}
	rt.stats.pagesLive.Add(1)
	rt.cPageAcquires.Inc()
	rt.gPagesLive.Add(1)
	rt.stats.pagesRecycled.Add(1)
	rt.cPageRecycles.Inc()
	rt.addBytes(int64(len(p.buf)))
	p.pos = 0
	rt.tierAcquire(p)
	return nil
}

// releasePage returns a page to the free pool (or drops oversize pages
// entirely; their table slot keeps the buffer reachable until Go reclaims
// it on table growth, mirroring free() of a large malloc block).
// Idempotent: a page freed early by ReleaseOversize is skipped when its
// manager releases the iteration.
func (rt *Runtime) releasePage(p *page) {
	if p.released.Swap(true) {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	// Settle tier state first: this serializes behind any in-flight spill
	// and frees a spilled page's disk slot without reading it back. After
	// it returns no evictor can touch p, so the buf reads below are safe.
	rt.tierRelease(p)
	rt.stats.pagesLive.Add(-1)
	rt.cPageReleases.Inc()
	rt.gPagesLive.Add(-1)
	rt.addBytes(-int64(len(p.buf))) // 0 for a spilled page: its DRAM was freed at spill
	if len(p.buf) == PageSize && !rt.DisableRecycle {
		p.released.Store(false) // recyclable pages are reborn via the pool
		rt.free = append(rt.free, p)
	}
}

// cacheRelease parks a recyclable PageSize page in a scope cache instead
// of the global pool, replicating releasePage's statistics without taking
// rt.mu. Reports false when the page is not cacheable (oversize, spilled,
// or the cache is full), in which case the caller falls back to
// releasePage. The page's released flag stays false, exactly like a page
// reborn through the pool.
func (rt *Runtime) cacheRelease(c *pageCache, p *page, srcIter int) bool {
	if p.released.Load() {
		return true // freed early; nothing left to release
	}
	if t := rt.tier; t != nil {
		// tierMu serializes against an evictor mid-spill: once acquired,
		// the page is either still resident (cache it, deregistered so no
		// future sweep can take it) or spilled (release it through
		// releasePage, which frees the slot without a read-back).
		p.tierMu.Lock()
		if p.spilled || len(p.buf) != PageSize {
			p.tierMu.Unlock()
			return false
		}
		if !c.put(p, srcIter) {
			p.tierMu.Unlock()
			return false
		}
		t.mu.Lock()
		t.removeCandidateLocked(p)
		t.mu.Unlock()
		t.resident.Add(-1)
		t.gResident.Add(-1)
		p.tierMu.Unlock()
	} else if len(p.buf) != PageSize || !c.put(p, srcIter) {
		return false
	}
	rt.stats.pagesLive.Add(-1)
	rt.cPageReleases.Inc()
	rt.gPagesLive.Add(-1)
	rt.addBytes(-int64(len(p.buf)))
	return true
}

// ReleaseOversize frees the oversize page backing ref before its iteration
// ends — §3.6's optimization for large arrays dropped by data-structure
// resizes. Records on regular pages are untouched (they share pages).
// It reports whether a page was released.
func (rt *Runtime) ReleaseOversize(ref PageRef) bool {
	if ref == 0 {
		return false
	}
	idx, off := splitRef(ref)
	if off != 0 {
		return false // not the first record of a page => shared page
	}
	p := (*rt.table.Load())[idx]
	if len(p.buf) <= PageSize {
		return false
	}
	rt.releasePage(p)
	return true
}

func (rt *Runtime) addBytes(d int64) {
	v := rt.stats.bytesInUse.Add(d)
	for {
		cur := rt.stats.peakBytes.Load()
		if v <= cur || rt.stats.peakBytes.CompareAndSwap(cur, v) {
			return
		}
	}
}
