// Package dfs is an in-memory stand-in for HDFS: a shared, thread-safe
// file namespace the simulated cluster's workers read partitions from and
// write results to (the paper's jobs "write the result into the Hadoop
// Distributed File System running on the cluster").
package dfs

import (
	"fmt"
	"sort"
	"sync"
)

// FS is an in-memory distributed file system.
type FS struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// New creates an empty file system.
func New() *FS {
	return &FS{files: make(map[string][]byte)}
}

// Write creates or replaces a file.
func (fs *FS) Write(path string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	fs.files[path] = cp
}

// Append appends to a file, creating it if absent.
func (fs *FS) Append(path string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[path] = append(fs.files[path], data...)
}

// Read returns a copy of the file contents.
func (fs *FS) Read(path string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	data, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", path)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// List returns the sorted paths under a prefix.
func (fs *FS) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns the byte size of a file (0 if absent).
func (fs *FS) Size(path string) int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.files[path])
}

// TotalBytes returns the total stored bytes.
func (fs *FS) TotalBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n int64
	for _, d := range fs.files {
		n += int64(len(d))
	}
	return n
}

// Delete removes a file if present.
func (fs *FS) Delete(path string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, path)
}
