package dfs

import (
	"fmt"
	"sync"
	"testing"
)

func TestWriteReadRoundtrip(t *testing.T) {
	fs := New()
	fs.Write("/a/b", []byte("hello"))
	got, err := fs.Read("/a/b")
	if err != nil || string(got) != "hello" {
		t.Fatalf("roundtrip: %q %v", got, err)
	}
	// Read returns a copy: mutating it must not affect the store.
	got[0] = 'X'
	again, _ := fs.Read("/a/b")
	if string(again) != "hello" {
		t.Fatal("Read aliases internal storage")
	}
	// Write copies its input too.
	data := []byte("mut")
	fs.Write("/m", data)
	data[0] = 'X'
	if got, _ := fs.Read("/m"); string(got) != "mut" {
		t.Fatal("Write aliases caller storage")
	}
}

func TestMissingFile(t *testing.T) {
	fs := New()
	if _, err := fs.Read("/nope"); err == nil {
		t.Fatal("expected error")
	}
	if fs.Size("/nope") != 0 {
		t.Fatal("size of missing file")
	}
}

func TestAppendAndList(t *testing.T) {
	fs := New()
	fs.Append("/out/p1", []byte("a"))
	fs.Append("/out/p1", []byte("b"))
	fs.Write("/out/p0", []byte("z"))
	fs.Write("/other", []byte("q"))
	got, _ := fs.Read("/out/p1")
	if string(got) != "ab" {
		t.Fatalf("append: %q", got)
	}
	paths := fs.List("/out/")
	if len(paths) != 2 || paths[0] != "/out/p0" || paths[1] != "/out/p1" {
		t.Fatalf("list: %v", paths)
	}
	if fs.TotalBytes() != 4 {
		t.Fatalf("total: %d", fs.TotalBytes())
	}
	fs.Delete("/out/p0")
	if len(fs.List("/out/")) != 1 {
		t.Fatal("delete failed")
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/p/%d", i)
			for j := 0; j < 100; j++ {
				fs.Append(path, []byte{byte(j)})
				if _, err := fs.Read(path); err != nil {
					t.Error(err)
					return
				}
				fs.List("/p/")
			}
		}(i)
	}
	wg.Wait()
	if len(fs.List("/p/")) != 16 {
		t.Fatal("files lost")
	}
	for _, p := range fs.List("/p/") {
		if fs.Size(p) != 100 {
			t.Fatalf("%s has %d bytes", p, fs.Size(p))
		}
	}
}
