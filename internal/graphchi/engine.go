package graphchi

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/vm"
)

// App selects the vertex program.
type App int

// Supported applications (§4.1 evaluates PR and CC).
const (
	PageRank App = iota
	ConnectedComponents
)

func (a App) String() string {
	if a == PageRank {
		return "PR"
	}
	return "CC"
}

// progClass returns the FJ class implementing the app's vertex program.
func (a App) progClass() string {
	if a == PageRank {
		return "PageRankProgram"
	}
	return "ConnCompProgram"
}

// Config drives one engine run.
type Config struct {
	App        App
	Workers    int // update worker threads (paper: two pools of 16)
	Iterations int // full passes over the graph
	// MemoryBudget bounds the bytes of vertex/edge objects loaded per
	// sub-iteration; GraphChi derives it from the maximum heap size, so
	// callers pass a value proportional to the configured heap.
	MemoryBudget int64
	// BytesPerEdge is the load estimator used to convert the budget into
	// an edge count per interval (default 48: a ChiPointer record plus
	// its array slot plus amortized vertex overhead).
	BytesPerEdge int64
}

// Metrics are the measurements Table 2 reports, plus the object counters
// behind the paper's §4.1 object-bound claim.
type Metrics struct {
	ET time.Duration // total execution time
	UT time.Duration // engine update time
	LT time.Duration // data load (+store) time
	GT time.Duration // garbage collection time
	PM int64         // peak memory: managed heap peak + native peak

	HeapPeak    int64
	NativePeak  int64
	MinorGCs    int64
	FullGCs     int64
	SubIters    int
	DataObjects int64 // heap objects allocated for the data classes
	Pages       int64 // native pages created (P' only)
	PagesLiveHW int64 // high-water mark of simultaneously live pages
	Records     int64 // page records allocated (P' only)
	Edges       int64 // edges processed (NumEdges * Iterations)

	// Obs is the run's full observability snapshot (GC pause histograms,
	// safepoint waits, page counters, interpreter counters, event ring).
	Obs obs.Snapshot
	// ClassAllocs counts heap allocations per class/array type.
	ClassAllocs map[string]int64
}

// Throughput returns edges processed per second (Figure 4a's metric).
func (m *Metrics) Throughput() float64 {
	if m.ET == 0 {
		return 0
	}
	return float64(m.Edges) / m.ET.Seconds()
}

// Run executes cfg.Iterations passes of the vertex program over sg on the
// given VM (program P or P') and returns metrics plus the final vertex
// values.
func Run(machine *vm.VM, sg *ShardedGraph, cfg Config) (*Metrics, []float64, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 3
	}
	if cfg.BytesPerEdge <= 0 {
		cfg.BytesPerEdge = 48
	}
	if cfg.MemoryBudget <= 0 {
		cfg.MemoryBudget = 8 << 20
	}

	main, err := machine.NewThread(nil)
	if err != nil {
		return nil, nil, err
	}
	defer main.Close()

	pool, err := newWorkerPool(machine, main, cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	defer pool.close()

	prog, err := main.NewObj(cfg.App.progClass())
	if err != nil {
		return nil, nil, err
	}
	defer main.FreeObj(prog)

	// Vertex values ("vertex data file" on disk, control path).
	values := make([]float64, sg.NumVertices)
	for i := range values {
		if cfg.App == PageRank {
			values[i] = 1.0
		} else {
			values[i] = float64(i)
		}
	}

	intervals := sg.Intervals(cfg.MemoryBudget / cfg.BytesPerEdge)
	met := &Metrics{Edges: int64(sg.NumEdges()) * int64(cfg.Iterations)}
	start := time.Now()

	reg := machine.Obs()
	for iter := 0; iter < cfg.Iterations; iter++ {
		iterStart := time.Now()
		main.IterationStart()
		for _, iv := range intervals {
			if err := runInterval(main, pool, prog, sg, cfg, values, iv, met); err != nil {
				return nil, nil, fmt.Errorf("graphchi: interval %v: %w", iv, err)
			}
			met.SubIters++
		}
		main.IterationEnd()
		reg.Emit(obs.EvIteration, "graphchi", int64(iter), time.Since(iterStart).Nanoseconds(), int64(len(intervals)))
	}

	met.ET = time.Since(start)
	hs := machine.Heap.Stats()
	met.GT = hs.GCTime
	met.MinorGCs = hs.MinorGCs
	met.FullGCs = hs.FullGCs
	met.HeapPeak = hs.PeakUsed
	if machine.RT != nil {
		ns := machine.RT.Stats()
		met.NativePeak = ns.PeakBytes
		met.Pages = ns.PagesCreated
		met.PagesLiveHW = ns.PagesLiveHW
		met.Records = ns.Records
	}
	met.PM = met.HeapPeak + met.NativePeak
	met.DataObjects = countDataObjects(machine)
	met.ClassAllocs = machine.Heap.ClassAllocCounts()
	met.Obs = reg.Snapshot()
	return met, values, nil
}

// RunProgram builds a VM for prog with the given heap budget and runs the
// engine on it. It is the entry point for callers that only need metrics:
// everything the run measured comes back in Metrics (including the
// observability snapshot), so no VM or heap types leak out.
func RunProgram(prog *ir.Program, heapSize int, sg *ShardedGraph, cfg Config) (*Metrics, []float64, error) {
	machine, err := vm.New(prog, vm.Config{HeapSize: heapSize})
	if err != nil {
		return nil, nil, err
	}
	return Run(machine, sg, cfg)
}

// countDataObjects totals heap allocations of the profiled data classes
// (facade classes for P').
func countDataObjects(machine *vm.VM) int64 {
	var n int64
	for _, name := range []string{"ChiVertex", "ChiPointer", "VertexDegree"} {
		if c := machine.Prog.H.Class(name); c != nil && !machine.Prog.Transformed {
			n += machine.Heap.ClassAllocCount(c)
		}
		if c := machine.Prog.H.Class(name + "Facade"); c != nil {
			n += machine.Heap.ClassAllocCount(c)
		}
	}
	return n
}

func runInterval(main *vm.Thread, pool *workerPool, prog vm.Obj, sg *ShardedGraph, cfg Config, values []float64, iv [2]int, met *Metrics) error {
	a, b := iv[0], iv[1]
	n := b - a
	if n == 0 {
		return nil
	}
	main.IterationStart() // sub-iteration
	defer main.IterationEnd()

	loadStart := time.Now()
	eStart, eEnd := sg.InStart[a], sg.InStart[b]
	srcs := sg.InSrc[eStart:eEnd]
	inCounts := make([]int32, n)
	outDegs := make([]int32, n)
	initVals := make([]float64, n)
	for i := 0; i < n; i++ {
		inCounts[i] = sg.InDeg[a+i]
		outDegs[i] = sg.OutDeg[a+i]
		initVals[i] = values[a+i]
	}
	srcVals := make([]float64, len(srcs))
	for i, s := range srcs {
		if cfg.App == PageRank {
			d := sg.OutDeg[s]
			if d == 0 {
				d = 1
			}
			srcVals[i] = values[s] / float64(d)
		} else {
			srcVals[i] = values[s]
		}
	}

	// Boundary: ship the shard slice into the data path and build the
	// subgraph there.
	oInCounts, err := main.NewIntArr(inCounts)
	if err != nil {
		return err
	}
	defer main.FreeObj(oInCounts)
	oOutDegs, err := main.NewIntArr(outDegs)
	if err != nil {
		return err
	}
	defer main.FreeObj(oOutDegs)
	oSrcs, err := main.NewIntArr(srcs)
	if err != nil {
		return err
	}
	defer main.FreeObj(oSrcs)
	oSrcVals, err := main.NewDoubleArr(srcVals)
	if err != nil {
		return err
	}
	defer main.FreeObj(oSrcVals)

	vs, err := main.InvokeStaticObj("GraphChiDriver", "build",
		vm.I(int64(a)), vm.I(int64(n)), vm.O(oInCounts), vm.O(oOutDegs), vm.O(oSrcs), vm.O(oSrcVals))
	if err != nil {
		return err
	}
	defer main.FreeObj(vs)
	oInit, err := main.NewDoubleArr(initVals)
	if err != nil {
		return err
	}
	defer main.FreeObj(oInit)
	if _, err := main.InvokeStatic("GraphChiDriver", "initValues", vm.O(vs), vm.O(oInit)); err != nil {
		return err
	}
	met.LT += time.Since(loadStart)

	// Parallel update.
	updStart := time.Now()
	if err := pool.runRange(prog, vs, n); err != nil {
		return err
	}
	met.UT += time.Since(updStart)

	// Write back vertex values (exit conversion).
	storeStart := time.Now()
	oOut, err := main.NewArr("double", n)
	if err != nil {
		return err
	}
	defer main.FreeObj(oOut)
	if _, err := main.InvokeStatic("GraphChiDriver", "extract", vm.O(vs), vm.O(oOut)); err != nil {
		return err
	}
	out, err := main.ReadDoubleArr(oOut)
	if err != nil {
		return err
	}
	copy(values[a:b], out)
	met.LT += time.Since(storeStart)
	return nil
}

// ---------------------------------------------------------------------------
// Worker pool: long-lived VM threads updating vertex ranges in parallel.

type workerTask struct {
	prog, vs vm.Obj
	from, to int
	err      chan error
}

type workerPool struct {
	tasks   chan workerTask
	wg      sync.WaitGroup
	threads []*vm.Thread
	n       int
}

func newWorkerPool(machine *vm.VM, parent *vm.Thread, n int) (*workerPool, error) {
	p := &workerPool{tasks: make(chan workerTask), n: n}
	for i := 0; i < n; i++ {
		t, err := machine.NewThread(parent)
		if err != nil {
			p.close()
			return nil, err
		}
		p.threads = append(p.threads, t)
		p.wg.Add(1)
		go func(t *vm.Thread) {
			defer p.wg.Done()
			for task := range p.tasks {
				_, err := t.InvokeStatic("GraphChiDriver", "runRange",
					vm.O(task.prog), vm.O(task.vs), vm.I(int64(task.from)), vm.I(int64(task.to)))
				task.err <- err
			}
		}(t)
	}
	return p, nil
}

// runRange splits [0, n) across the workers and waits for completion.
func (p *workerPool) runRange(prog, vs vm.Obj, n int) error {
	chunks := p.n
	if chunks > n {
		chunks = n
	}
	if chunks == 0 {
		return nil
	}
	errs := make(chan error, chunks)
	per := (n + chunks - 1) / chunks
	sent := 0
	for from := 0; from < n; from += per {
		to := from + per
		if to > n {
			to = n
		}
		p.tasks <- workerTask{prog: prog, vs: vs, from: from, to: to, err: errs}
		sent++
	}
	var first error
	for i := 0; i < sent; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (p *workerPool) close() {
	close(p.tasks)
	p.wg.Wait()
	for _, t := range p.threads {
		t.Close()
	}
}
