package graphchi

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/offheap"
	"repro/internal/vm"
)

// App selects the vertex program.
type App int

// Supported applications (§4.1 evaluates PR and CC).
const (
	PageRank App = iota
	ConnectedComponents
)

func (a App) String() string {
	if a == PageRank {
		return "PR"
	}
	return "CC"
}

// progClass returns the FJ class implementing the app's vertex program.
func (a App) progClass() string {
	if a == PageRank {
		return "PageRankProgram"
	}
	return "ConnCompProgram"
}

// Config drives one engine run.
type Config struct {
	App        App
	Workers    int // update worker threads (paper: two pools of 16)
	Iterations int // full passes over the graph
	// MemoryBudget bounds the bytes of vertex/edge objects loaded per
	// sub-iteration; GraphChi derives it from the maximum heap size, so
	// callers pass a value proportional to the configured heap.
	MemoryBudget int64
	// BytesPerEdge is the load estimator used to convert the budget into
	// an edge count per interval (default 48: a ChiPointer record plus
	// its array slot plus amortized vertex overhead).
	BytesPerEdge int64

	// Faults configures deterministic fault injection (nil disables).
	// RunProgram threads the derived injector into the VM so heap-alloc
	// and page-acquire points fire, and the engine plans worker-thread
	// crashes from the same seed. Interval recovery itself is always on:
	// a sub-iteration that fails with memory exhaustion or a worker
	// crash is replayed from the shard files instead of aborting.
	Faults *faults.Config

	// Tiering spills cold off-heap pages to a file-backed store
	// (RunProgram threads it into the VM; nil keeps every page in DRAM).
	// A failed promotion from disk surfaces as offheap.ErrPageExhausted
	// and rides the same degradation ladder as page exhaustion. P only
	// ignores it — untransformed programs have no pages.
	Tiering *offheap.TierConfig
}

// Recovery counts the fault-tolerance work a run performed. The shard
// files plus the vertex values at the interval boundary are a complete
// checkpoint, so every recovery here is a replay from that state.
type Recovery struct {
	IntervalRetries int64 // failed sub-iterations replayed from the shard
	WorkerCrashes   int64 // planned worker-thread crashes survived
	WorkerRestarts  int64 // update worker threads rebuilt
	OOMRecoveries   int64 // memory-exhaustion failures recovered
	BudgetHalvings  int64 // degradation-ladder budget halvings
}

// Metrics are the measurements Table 2 reports, plus the object counters
// behind the paper's §4.1 object-bound claim.
type Metrics struct {
	ET time.Duration // total execution time
	UT time.Duration // engine update time
	LT time.Duration // data load (+store) time
	GT time.Duration // garbage collection time
	PM int64         // peak memory: managed heap peak + native peak

	HeapPeak    int64
	NativePeak  int64
	MinorGCs    int64
	FullGCs     int64
	SubIters    int
	DataObjects int64 // heap objects allocated for the data classes
	Pages       int64 // native pages created (P' only)
	PagesLiveHW int64 // high-water mark of simultaneously live pages
	Records     int64 // page records allocated (P' only)

	// Disk-tier traffic (P' with Config.Tiering only).
	PagesSpilled  int64
	PagesPromoted int64
	Edges         int64 // edges processed (NumEdges * Iterations)

	// Recovery reports the run's fault-tolerance activity (all zero for
	// a failure-free run).
	Recovery Recovery

	// Obs is the run's full observability snapshot (GC pause histograms,
	// safepoint waits, page counters, interpreter counters, event ring).
	Obs obs.Snapshot
	// ClassAllocs counts heap allocations per class/array type.
	ClassAllocs map[string]int64
}

// Throughput returns edges processed per second (Figure 4a's metric).
func (m *Metrics) Throughput() float64 {
	if m.ET == 0 {
		return 0
	}
	return float64(m.Edges) / m.ET.Seconds()
}

// maxIntervalReplays bounds recovery attempts for a single sub-iteration,
// so a fault storm degenerates into an error instead of an endless replay.
const maxIntervalReplays = 64

// engine carries one run's control-path state: the VM boundary objects,
// the worker pool, and the recovery books.
type engine struct {
	machine *vm.VM
	main    *vm.Thread
	pool    *workerPool
	prog    vm.Obj
	sg      *ShardedGraph
	cfg     Config

	inj     *faults.Injector
	plan    []faults.Crash // planned worker crashes, by sub-iteration ordinal
	planned []bool         // plan entries already fired
	subIter int            // global sub-iteration ordinal (crash occasions)

	rec Recovery
}

// Run executes cfg.Iterations passes of the vertex program over sg on the
// given VM (program P or P') and returns metrics plus the final vertex
// values. Fault injection draws from the injector the VM was built with
// (vm.Config.Faults); RunProgram wires cfg.Faults there.
func Run(machine *vm.VM, sg *ShardedGraph, cfg Config) (*Metrics, []float64, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 3
	}
	if cfg.BytesPerEdge <= 0 {
		cfg.BytesPerEdge = 48
	}
	if cfg.MemoryBudget <= 0 {
		cfg.MemoryBudget = 8 << 20
	}

	main, err := machine.NewThread(nil)
	if err != nil {
		return nil, nil, err
	}
	defer main.Close()

	e := &engine{machine: machine, main: main, sg: sg, cfg: cfg, inj: machine.Injector()}
	e.pool, err = newWorkerPool(machine, main, cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	defer func() { e.pool.close() }()

	e.prog, err = main.NewObj(cfg.App.progClass())
	if err != nil {
		return nil, nil, err
	}
	defer main.FreeObj(e.prog)

	// Vertex values ("vertex data file" on disk, control path).
	values := make([]float64, sg.NumVertices)
	for i := range values {
		if cfg.App == PageRank {
			values[i] = 1.0
		} else {
			values[i] = float64(i)
		}
	}

	intervals := sg.Intervals(cfg.MemoryBudget / cfg.BytesPerEdge)
	e.plan = e.inj.CrashPlan(cfg.Iterations*len(intervals), cfg.Workers)
	e.planned = make([]bool, len(e.plan))
	met := &Metrics{Edges: int64(sg.NumEdges()) * int64(cfg.Iterations)}
	start := time.Now()

	reg := machine.Obs()
	for iter := 0; iter < cfg.Iterations; iter++ {
		iterStart := time.Now()
		main.IterationStart()
		for _, iv := range intervals {
			if err := e.runInterval(iv, values, met); err != nil {
				main.IterationEnd()
				return nil, nil, fmt.Errorf("graphchi: interval %v: %w", iv, err)
			}
			met.SubIters++
			e.subIter++
		}
		main.IterationEnd()
		reg.Emit(obs.EvIteration, "graphchi", int64(iter), time.Since(iterStart).Nanoseconds(), int64(len(intervals)))
	}

	met.ET = time.Since(start)
	hs := machine.Heap.Stats()
	met.GT = hs.GCTime
	met.MinorGCs = hs.MinorGCs
	met.FullGCs = hs.FullGCs
	met.HeapPeak = hs.PeakUsed
	if machine.RT != nil {
		ns := machine.RT.Stats()
		met.NativePeak = ns.PeakBytes
		met.Pages = ns.PagesCreated
		met.PagesLiveHW = ns.PagesLiveHW
		met.Records = ns.Records
		met.PagesSpilled = ns.PagesSpilled
		met.PagesPromoted = ns.PagesPromoted
	}
	met.PM = met.HeapPeak + met.NativePeak
	met.DataObjects = countDataObjects(machine)
	met.ClassAllocs = machine.Heap.ClassAllocCounts()
	met.Recovery = e.rec
	met.Obs = reg.Snapshot()
	return met, values, nil
}

// RunProgram builds a VM for prog with the given heap budget and runs the
// engine on it. It is the entry point for callers that only need metrics:
// everything the run measured comes back in Metrics (including the
// observability snapshot), so no VM or heap types leak out. cfg.Faults is
// wired into the VM here, so injected heap-alloc and page-acquire faults
// fire alongside the engine's planned worker crashes.
func RunProgram(prog *ir.Program, heapSize int, sg *ShardedGraph, cfg Config) (*Metrics, []float64, error) {
	vmCfg := vm.Config{HeapSize: heapSize, Faults: faults.New(cfg.Faults)}
	if prog.Transformed {
		vmCfg.Tiering = cfg.Tiering
	}
	machine, err := vm.New(prog, vmCfg)
	if err != nil {
		return nil, nil, err
	}
	return Run(machine, sg, cfg)
}

// countDataObjects totals heap allocations of the profiled data classes
// (facade classes for P').
func countDataObjects(machine *vm.VM) int64 {
	var n int64
	for _, name := range []string{"ChiVertex", "ChiPointer", "VertexDegree"} {
		if c := machine.Prog.H.Class(name); c != nil && !machine.Prog.Transformed {
			n += machine.Heap.ClassAllocCount(c)
		}
		if c := machine.Prog.H.Class(name + "Facade"); c != nil {
			n += machine.Heap.ClassAllocCount(c)
		}
	}
	return n
}

// takeCrash returns the planned worker crash for this sub-iteration, if
// any, consuming the plan entry so a replay does not re-fire it.
func (e *engine) takeCrash() *faults.Crash {
	for i := range e.plan {
		if e.plan[i].Occasion == e.subIter && !e.planned[i] {
			e.planned[i] = true
			return &e.plan[i]
		}
	}
	return nil
}

// runInterval executes one sub-iteration with recovery: the ShardedGraph
// plus values[a:b] at entry are a complete checkpoint, so a failed attempt
// is replayed from them — with fresh worker threads after a crash, and at
// a halved memory budget (the interval re-split via IntervalsIn) after a
// memory-exhaustion failure. values is written only after every chunk of
// every piece of the interval has succeeded, which is what makes the
// replay sound and bit-identical: all pieces read the same pre-interval
// snapshot no matter how the ladder re-split the range.
func (e *engine) runInterval(iv [2]int, values []float64, met *Metrics) error {
	if iv[1]-iv[0] == 0 {
		return nil
	}
	budget := e.cfg.MemoryBudget
	crashChunk := -1
	if crash := e.takeCrash(); crash != nil {
		crashChunk = crash.Node
	}
	reg := e.machine.Obs()
	for attempt := 0; ; attempt++ {
		if attempt > maxIntervalReplays {
			return fmt.Errorf("still failing after %d recovery attempts", maxIntervalReplays)
		}
		out, err := e.runIntervalAt(iv, values, budget, crashChunk, met)
		crashChunk = -1 // a planned crash fires on the first attempt only
		if err == nil {
			copy(values[iv[0]:iv[1]], out)
			return nil
		}
		switch {
		case errors.Is(err, errWorkerCrashed):
			// Rebuild the update fleet from scratch and replay the
			// sub-iteration from the shard.
			e.rec.WorkerCrashes++
			e.rec.IntervalRetries++
			reg.Counter(obs.CtrIntervalRetries).Inc()
			reg.Emit(obs.EvRecovery, "crash", int64(workerOf(err)), int64(e.subIter), int64(attempt))
			if rerr := e.restartPool(); rerr != nil {
				return fmt.Errorf("rebuilding workers after crash: %w", rerr)
			}
		case isOOM(err):
			// Degradation ladder: halve the budget for this interval and
			// re-split it; a single vertex that still does not fit is a
			// genuine out-of-memory result.
			e.rec.OOMRecoveries++
			e.rec.IntervalRetries++
			reg.Counter(obs.CtrIntervalRetries).Inc()
			reg.Emit(obs.EvRecovery, "oom", -1, int64(e.subIter), int64(attempt))
			if budget/2/e.cfg.BytesPerEdge < 1 {
				return fmt.Errorf("out of memory with budget ladder exhausted (budget %d): %w", budget, err)
			}
			budget /= 2
			e.rec.BudgetHalvings++
			reg.Counter(obs.CtrBudgetHalvings).Inc()
			reg.Emit(obs.EvDegraded, "interval", int64(iv[0]), budget/e.cfg.BytesPerEdge, int64(e.subIter))
		default:
			return err
		}
	}
}

// runIntervalAt runs the interval as one or more pieces under the given
// budget, collecting the updated values without touching the values
// slice. Every piece reads the same pre-interval values, so the result is
// bit-identical whatever the split.
func (e *engine) runIntervalAt(iv [2]int, values []float64, budget int64, crashChunk int, met *Metrics) ([]float64, error) {
	out := make([]float64, iv[1]-iv[0])
	for _, sub := range e.sg.IntervalsIn(iv[0], iv[1], budget/e.cfg.BytesPerEdge) {
		o, err := e.runIntervalOnce(sub, values, crashChunk, met)
		if err != nil {
			return nil, err
		}
		crashChunk = -1
		copy(out[sub[0]-iv[0]:], o)
	}
	return out, nil
}

// runIntervalOnce loads [a, b) from the shard into the data path, runs the
// parallel update, and returns the extracted values for the range. The
// caller owns the write-back; on any error the values slice is untouched.
func (e *engine) runIntervalOnce(iv [2]int, values []float64, crashChunk int, met *Metrics) ([]float64, error) {
	main, sg, cfg := e.main, e.sg, e.cfg
	a, b := iv[0], iv[1]
	n := b - a
	main.IterationStart() // sub-iteration
	defer main.IterationEnd()

	loadStart := time.Now()
	eStart, eEnd := sg.InStart[a], sg.InStart[b]
	srcs := sg.InSrc[eStart:eEnd]
	inCounts := make([]int32, n)
	outDegs := make([]int32, n)
	initVals := make([]float64, n)
	for i := 0; i < n; i++ {
		inCounts[i] = sg.InDeg[a+i]
		outDegs[i] = sg.OutDeg[a+i]
		initVals[i] = values[a+i]
	}
	srcVals := make([]float64, len(srcs))
	for i, s := range srcs {
		if cfg.App == PageRank {
			d := sg.OutDeg[s]
			if d == 0 {
				d = 1
			}
			srcVals[i] = values[s] / float64(d)
		} else {
			srcVals[i] = values[s]
		}
	}

	// Boundary: ship the shard slice into the data path and build the
	// subgraph there.
	oInCounts, err := main.NewIntArr(inCounts)
	if err != nil {
		return nil, err
	}
	defer main.FreeObj(oInCounts)
	oOutDegs, err := main.NewIntArr(outDegs)
	if err != nil {
		return nil, err
	}
	defer main.FreeObj(oOutDegs)
	oSrcs, err := main.NewIntArr(srcs)
	if err != nil {
		return nil, err
	}
	defer main.FreeObj(oSrcs)
	oSrcVals, err := main.NewDoubleArr(srcVals)
	if err != nil {
		return nil, err
	}
	defer main.FreeObj(oSrcVals)

	vs, err := main.InvokeStaticObj("GraphChiDriver", "build",
		vm.I(int64(a)), vm.I(int64(n)), vm.O(oInCounts), vm.O(oOutDegs), vm.O(oSrcs), vm.O(oSrcVals))
	if err != nil {
		return nil, err
	}
	defer main.FreeObj(vs)
	oInit, err := main.NewDoubleArr(initVals)
	if err != nil {
		return nil, err
	}
	defer main.FreeObj(oInit)
	if _, err := main.InvokeStatic("GraphChiDriver", "initValues", vm.O(vs), vm.O(oInit)); err != nil {
		return nil, err
	}
	met.LT += time.Since(loadStart)

	// Parallel update.
	updStart := time.Now()
	if err := e.pool.runRange(e.prog, vs, n, crashChunk); err != nil {
		met.UT += time.Since(updStart)
		return nil, err
	}
	met.UT += time.Since(updStart)

	// Extract the updated values (exit conversion); the caller commits
	// them to the vertex data file only after the whole interval succeeds.
	storeStart := time.Now()
	oOut, err := main.NewArr("double", n)
	if err != nil {
		return nil, err
	}
	defer main.FreeObj(oOut)
	if _, err := main.InvokeStatic("GraphChiDriver", "extract", vm.O(vs), vm.O(oOut)); err != nil {
		return nil, err
	}
	out, err := main.ReadDoubleArr(oOut)
	if err != nil {
		return nil, err
	}
	met.LT += time.Since(storeStart)
	return out, nil
}

// restartPool tears down the worker fleet (closing every thread, dead or
// alive) and builds a fresh one. Replacement threads parent their page
// managers at the VM root scope, so they are safe to create while the
// main thread is inside an iteration.
func (e *engine) restartPool() error {
	e.pool.close()
	pool, err := newWorkerPool(e.machine, nil, e.cfg.Workers)
	if err != nil {
		return err
	}
	e.pool = pool
	e.rec.WorkerRestarts += int64(e.cfg.Workers)
	reg := e.machine.Obs()
	reg.Counter(obs.CtrWorkerRestarts).Add(int64(e.cfg.Workers))
	return nil
}

// errWorkerCrashed marks a chunk lost to a planned worker-thread crash.
var errWorkerCrashed = errors.New("graphchi: worker thread crashed (injected)")

// crashError tags errWorkerCrashed with the dead worker's index.
type crashError struct{ worker int }

func (c *crashError) Error() string { return fmt.Sprintf("%v: worker %d", errWorkerCrashed, c.worker) }
func (c *crashError) Unwrap() error { return errWorkerCrashed }

// workerOf extracts the crashed worker index from an error tree.
func workerOf(err error) int {
	var ce *crashError
	if errors.As(err, &ce) {
		return ce.worker
	}
	return -1
}

// isOOM classifies memory-exhaustion failures — real or injected, managed
// heap or page store — which the engine recovers from; anything else is a
// genuine bug and propagates.
func isOOM(err error) bool {
	return errors.Is(err, heap.ErrOutOfMemory) ||
		errors.Is(err, offheap.ErrPageExhausted) ||
		strings.Contains(err.Error(), "OutOfMemoryError")
}

// ---------------------------------------------------------------------------
// Worker pool: long-lived VM threads updating vertex ranges in parallel.

type workerTask struct {
	prog, vs vm.Obj
	from, to int
	crash    int // worker index to crash instead of running, or -1
	err      chan error
}

type workerPool struct {
	tasks   chan workerTask
	wg      sync.WaitGroup
	threads []*vm.Thread
	n       int
}

// newWorkerPool spawns n update threads. parent may be nil (threads then
// parent their page managers at the VM root scope), which is what crash
// recovery uses: the pool must be rebuildable while the main thread is
// inside an iteration scope that will be released before the pool is.
func newWorkerPool(machine *vm.VM, parent *vm.Thread, n int) (*workerPool, error) {
	p := &workerPool{tasks: make(chan workerTask), n: n}
	for i := 0; i < n; i++ {
		t, err := machine.NewThread(parent)
		if err != nil {
			p.close()
			return nil, err
		}
		p.threads = append(p.threads, t)
		p.wg.Add(1)
		go func(t *vm.Thread) {
			defer p.wg.Done()
			for task := range p.tasks {
				if task.crash >= 0 {
					// The thread assigned this chunk dies mid-update: its
					// chunk is lost and the engine rebuilds the fleet.
					task.err <- &crashError{worker: task.crash}
					continue
				}
				_, err := t.InvokeStatic("GraphChiDriver", "runRange",
					vm.O(task.prog), vm.O(task.vs), vm.I(int64(task.from)), vm.I(int64(task.to)))
				task.err <- err
			}
		}(t)
	}
	return p, nil
}

// runRange splits [0, n) across the workers and waits for completion.
// crashChunk >= 0 marks the chunk whose worker dies instead of updating
// (the planned worker-crash fault point): chunk assignment is a pure
// function of (n, workers), so the same chunk is lost on every run with
// the same seed, and the replay recomputes it deterministically.
func (p *workerPool) runRange(prog, vs vm.Obj, n int, crashChunk int) error {
	chunks := p.n
	if chunks > n {
		chunks = n
	}
	if chunks == 0 {
		return nil
	}
	if crashChunk >= 0 {
		crashChunk %= chunks
	}
	errs := make(chan error, chunks)
	per := (n + chunks - 1) / chunks
	sent := 0
	for from := 0; from < n; from += per {
		to := from + per
		if to > n {
			to = n
		}
		crash := -1
		if sent == crashChunk {
			crash = crashChunk
		}
		p.tasks <- workerTask{prog: prog, vs: vs, from: from, to: to, crash: crash, err: errs}
		sent++
	}
	var first error
	for i := 0; i < sent; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (p *workerPool) close() {
	close(p.tasks)
	p.wg.Wait()
	for _, t := range p.threads {
		t.Close()
	}
}
