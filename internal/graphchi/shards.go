package graphchi

import (
	"sort"

	"repro/internal/datagen"
)

// ShardedGraph is the on-"disk" representation the engine streams from:
// in-edges grouped by destination (the role GraphChi's shards play), plus
// per-vertex degrees. These Go-side arrays model the memory-mapped shard
// files — they are never part of the managed heap, just as GraphChi's
// shards live on disk, not in the JVM heap.
type ShardedGraph struct {
	NumVertices int
	NumShards   int
	// InStart[v]..InStart[v+1] indexes InSrc: the sources of v's in-edges.
	InStart []int64
	InSrc   []int32
	OutDeg  []int32
	InDeg   []int32
	// ShardBounds[i] is the first vertex of shard i (len NumShards+1).
	ShardBounds []int
}

// Shard builds the sharded representation. undirected adds the reverse of
// every edge first (connected components runs on the undirected graph).
// nShards partitions vertices into shards with roughly equal edge counts
// (the paper fixes 20 shards; the count has little performance impact).
func Shard(g *datagen.Graph, nShards int, undirected bool) *ShardedGraph {
	v := g.NumVertices
	type edge struct{ src, dst int32 }
	edges := make([]edge, 0, len(g.Src)*2)
	for i := range g.Src {
		edges = append(edges, edge{g.Src[i], g.Dst[i]})
		if undirected {
			edges = append(edges, edge{g.Dst[i], g.Src[i]})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].dst != edges[j].dst {
			return edges[i].dst < edges[j].dst
		}
		return edges[i].src < edges[j].src
	})
	sg := &ShardedGraph{
		NumVertices: v,
		NumShards:   nShards,
		InStart:     make([]int64, v+1),
		InSrc:       make([]int32, len(edges)),
		OutDeg:      make([]int32, v),
		InDeg:       make([]int32, v),
	}
	for i, e := range edges {
		sg.InSrc[i] = e.src
		sg.InDeg[e.dst]++
		sg.OutDeg[e.src]++
	}
	pos := int64(0)
	for i := 0; i < v; i++ {
		sg.InStart[i] = pos
		pos += int64(sg.InDeg[i])
	}
	sg.InStart[v] = pos

	// Shard boundaries with balanced edge counts.
	perShard := (len(edges) + nShards - 1) / nShards
	sg.ShardBounds = []int{0}
	cnt := 0
	for vert := 0; vert < v; vert++ {
		cnt += int(sg.InDeg[vert])
		if cnt >= perShard && len(sg.ShardBounds) < nShards {
			sg.ShardBounds = append(sg.ShardBounds, vert+1)
			cnt = 0
		}
	}
	for len(sg.ShardBounds) <= nShards {
		sg.ShardBounds = append(sg.ShardBounds, v)
	}
	return sg
}

// NumEdges returns the (possibly doubled) edge count.
func (sg *ShardedGraph) NumEdges() int { return len(sg.InSrc) }

// Intervals splits the vertex range into execution intervals
// (sub-iterations) so that each holds at most budgetEdges in-edges —
// GraphChi's adaptive memory-budget loading: a smaller heap means smaller
// intervals and more load passes. An empty graph yields no intervals.
func (sg *ShardedGraph) Intervals(budgetEdges int64) [][2]int {
	return sg.IntervalsIn(0, sg.NumVertices, budgetEdges)
}

// IntervalsIn splits the vertex sub-range [lo, hi) into execution
// intervals under the same budget rule. The engine's OOM degradation
// ladder uses it to re-split a failed interval at a halved budget;
// the returned intervals tile [lo, hi) exactly once, each non-empty
// (nil when lo >= hi). A single vertex whose in-degree alone exceeds
// the budget still gets its own interval — it cannot be split further.
func (sg *ShardedGraph) IntervalsIn(lo, hi int, budgetEdges int64) [][2]int {
	if lo >= hi {
		return nil
	}
	if budgetEdges < 1 {
		budgetEdges = 1
	}
	var out [][2]int
	start := lo
	var cnt int64
	for v := lo; v < hi; v++ {
		d := int64(sg.InDeg[v])
		if cnt > 0 && cnt+d > budgetEdges {
			out = append(out, [2]int{start, v})
			start = v
			cnt = 0
		}
		cnt += d
	}
	out = append(out, [2]int{start, hi})
	return out
}
