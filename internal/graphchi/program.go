// Package graphchi reimplements the GraphChi single-machine out-of-core
// graph engine (§4.1 of the FACADE paper) on the FJ VM. The control path —
// sharding, the parallel-sliding-windows load loop, the memory-budget
// interval selection, worker scheduling — is Go code; the data path — the
// ChiVertex/ChiPointer representation and the vertex update programs — is
// FJ code, which is exactly the part the FACADE transform rewrites.
//
// The paper's profile of GraphChi found ChiVertex, ChiPointer, and
// VertexDegree to be the classes whose instance counts grow with the
// input; those are the seed data classes here too.
package graphchi

import (
	"fmt"

	"repro/facade"
	"repro/internal/core"
	"repro/internal/ir"
)

// Source is the FJ data path of the engine.
const Source = `
// GraphChi data path.

class ChiPointer {
    int srcId;
    double value;
}

class VertexDegree {
    int inDeg;
    int outDeg;
}

class ChiVertex {
    int id;
    double value;
    int outDegree;
    int numInEdges;
    ChiPointer[] inEdges;

    ChiVertex(int id, int nIn, int outDeg) {
        this.id = id;
        this.outDegree = outDeg;
        this.numInEdges = nIn;
        this.inEdges = new ChiPointer[nIn];
    }

    void addInEdge(int i, int src, double v) {
        ChiPointer p = new ChiPointer();
        p.srcId = src;
        p.value = v;
        this.inEdges[i] = p;
    }

    double getValue() { return this.value; }
    void setValue(double v) { this.value = v; }
    int numIn() { return this.numInEdges; }
}

interface VertexProgram {
    void update(ChiVertex v);
}

class PageRankProgram implements VertexProgram {
    void update(ChiVertex v) {
        double sum = 0.0;
        ChiPointer[] in = v.inEdges;
        int n = v.numInEdges;
        for (int i = 0; i < n; i = i + 1) {
            sum = sum + in[i].value;
        }
        v.setValue(0.15 + 0.85 * sum);
    }
}

class ConnCompProgram implements VertexProgram {
    void update(ChiVertex v) {
        double m = v.getValue();
        ChiPointer[] in = v.inEdges;
        int n = v.numInEdges;
        for (int i = 0; i < n; i = i + 1) {
            if (in[i].value < m) { m = in[i].value; }
        }
        v.setValue(m);
    }
}

// GraphChiDriver hosts the batch entry points the engine calls across the
// boundary: subgraph construction, the update loop, and value extraction.
class GraphChiDriver {
    static ChiVertex[] build(int first, int n, int[] inCounts, int[] outDegs, int[] srcs, double[] srcVals) {
        ChiVertex[] vs = new ChiVertex[n];
        int e = 0;
        for (int i = 0; i < n; i = i + 1) {
            int nIn = inCounts[i];
            ChiVertex v = new ChiVertex(first + i, nIn, outDegs[i]);
            for (int k = 0; k < nIn; k = k + 1) {
                v.addInEdge(k, srcs[e], srcVals[e]);
                e = e + 1;
            }
            vs[i] = v;
        }
        return vs;
    }

    static void initValues(ChiVertex[] vs, double[] init) {
        for (int i = 0; i < vs.length; i = i + 1) {
            vs[i].setValue(init[i]);
        }
    }

    static void runRange(VertexProgram prog, ChiVertex[] vs, int from, int to) {
        for (int i = from; i < to; i = i + 1) {
            prog.update(vs[i]);
        }
    }

    static void extract(ChiVertex[] vs, double[] out) {
        for (int i = 0; i < vs.length; i = i + 1) {
            out[i] = vs[i].getValue();
        }
    }

    static VertexDegree degreeOf(int inDeg, int outDeg) {
        VertexDegree d = new VertexDegree();
        d.inDeg = inDeg;
        d.outDeg = outDeg;
        return d;
    }
}
`

// DataClasses is the data path handed to the FACADE transform: the three
// profiled classes plus the data-manipulation classes that touch them.
var DataClasses = []string{
	"ChiVertex", "ChiPointer", "VertexDegree",
	"PageRankProgram", "ConnCompProgram", "GraphChiDriver",
}

// BuildPrograms compiles the data path and returns (P, P').
func BuildPrograms() (*ir.Program, *ir.Program, error) {
	p, err := facade.Compile(map[string]string{"graphchi.fj": Source})
	if err != nil {
		return nil, nil, fmt.Errorf("graphchi: compile: %w", err)
	}
	p2, err := core.Transform(p, core.Options{DataClasses: DataClasses})
	if err != nil {
		return nil, nil, fmt.Errorf("graphchi: transform: %w", err)
	}
	return p, p2, nil
}
