package graphchi

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/ir"
	"repro/internal/offheap"
	"repro/internal/vm"
)

func buildBoth(t *testing.T) (pVM, p2VM *vm.VM) {
	t.Helper()
	p, p2, err := BuildPrograms()
	if err != nil {
		t.Fatal(err)
	}
	mv, err := vm.New(p, vm.Config{HeapSize: 48 << 20})
	if err != nil {
		t.Fatal(err)
	}
	mv2, err := vm.New(p2, vm.Config{HeapSize: 48 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return mv, mv2
}

func TestShardingInvariants(t *testing.T) {
	g := datagen.PowerLawGraph(500, 5000, 42)
	sg := Shard(g, 8, false)
	if sg.NumEdges() != 5000 {
		t.Fatalf("edges %d", sg.NumEdges())
	}
	// InStart is a proper prefix sum over InDeg.
	var total int64
	for v := 0; v < sg.NumVertices; v++ {
		if sg.InStart[v] != total {
			t.Fatalf("InStart[%d]=%d want %d", v, sg.InStart[v], total)
		}
		total += int64(sg.InDeg[v])
	}
	if total != int64(len(sg.InSrc)) {
		t.Fatal("prefix sum mismatch")
	}
	// Shard bounds are monotone and cover the vertex range.
	if sg.ShardBounds[0] != 0 || sg.ShardBounds[len(sg.ShardBounds)-1] != sg.NumVertices {
		t.Fatal("shard bounds do not cover")
	}
	for i := 1; i < len(sg.ShardBounds); i++ {
		if sg.ShardBounds[i] < sg.ShardBounds[i-1] {
			t.Fatal("shard bounds not monotone")
		}
	}
}

func TestIntervalsRespectBudget(t *testing.T) {
	g := datagen.PowerLawGraph(1000, 20000, 1)
	sg := Shard(g, 8, false)
	ivs := sg.Intervals(1000)
	covered := 0
	for _, iv := range ivs {
		edges := sg.InStart[iv[1]] - sg.InStart[iv[0]]
		// A single vertex may exceed the budget; otherwise intervals obey
		// it.
		if iv[1]-iv[0] > 1 && edges > 1000 {
			t.Fatalf("interval %v has %d edges", iv, edges)
		}
		covered += iv[1] - iv[0]
	}
	if covered != sg.NumVertices {
		t.Fatalf("intervals cover %d of %d vertices", covered, sg.NumVertices)
	}
	// Smaller budget => at least as many intervals.
	if len(sg.Intervals(500)) < len(ivs) {
		t.Fatal("smaller budget produced fewer intervals")
	}
}

// referencePageRank computes PR in plain Go with the same update schedule
// (in-interval order, Jacobi-per-interval like the engine's per-interval
// extract/reload).
func referencePageRank(sg *ShardedGraph, iters int) []float64 {
	vals := make([]float64, sg.NumVertices)
	for i := range vals {
		vals[i] = 1.0
	}
	for it := 0; it < iters; it++ {
		contrib := make([]float64, sg.NumVertices)
		for v := range contrib {
			d := sg.OutDeg[v]
			if d == 0 {
				d = 1
			}
			contrib[v] = vals[v] / float64(d)
		}
		next := make([]float64, sg.NumVertices)
		for v := 0; v < sg.NumVertices; v++ {
			sum := 0.0
			for e := sg.InStart[v]; e < sg.InStart[v+1]; e++ {
				sum += contrib[sg.InSrc[e]]
			}
			next[v] = 0.15 + 0.85*sum
		}
		vals = next
	}
	return vals
}

func TestPageRankMatchesReferenceAndTransform(t *testing.T) {
	g := datagen.PowerLawGraph(300, 3000, 7)
	sg := Shard(g, 4, false)
	mv, mv2 := buildBoth(t)
	cfg := Config{App: PageRank, Workers: 2, Iterations: 3, MemoryBudget: 1 << 30}

	_, valsP, err := Run(mv, sg, cfg)
	if err != nil {
		t.Fatalf("P: %v", err)
	}
	_, valsP2, err := Run(mv2, sg, cfg)
	if err != nil {
		t.Fatalf("P': %v", err)
	}
	// P and P' agree bit for bit.
	for i := range valsP {
		if valsP[i] != valsP2[i] {
			t.Fatalf("vertex %d: P=%v P'=%v", i, valsP[i], valsP2[i])
		}
	}
	// With one interval (huge budget) the engine is exactly Jacobi.
	ref := referencePageRank(sg, 3)
	for i := range ref {
		if math.Abs(ref[i]-valsP[i]) > 1e-9 {
			t.Fatalf("vertex %d: ref=%v engine=%v", i, ref[i], valsP[i])
		}
	}
}

func TestConnectedComponentsConverges(t *testing.T) {
	g := datagen.PowerLawGraph(200, 1500, 3)
	sg := Shard(g, 4, true) // undirected
	mv, mv2 := buildBoth(t)
	cfg := Config{App: ConnectedComponents, Workers: 2, Iterations: 8, MemoryBudget: 1 << 30}
	_, valsP, err := Run(mv, sg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, valsP2, err := Run(mv2, sg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range valsP {
		if valsP[i] != valsP2[i] {
			t.Fatalf("vertex %d: P=%v P'=%v", i, valsP[i], valsP2[i])
		}
	}
	// Labels must be non-increasing versus initial IDs and a valid label.
	for i, l := range valsP {
		if l > float64(i) || l < 0 {
			t.Fatalf("vertex %d has label %v", i, l)
		}
	}
}

// referencePageRankScheduled models the engine's exact multi-interval
// schedule: within one iteration, an interval's in-edge values are read
// from the `values` array, which already contains the updates of earlier
// intervals — GraphChi's asynchronous update semantics.
func referencePageRankScheduled(sg *ShardedGraph, intervals [][2]int, iters int) []float64 {
	values := make([]float64, sg.NumVertices)
	for i := range values {
		values[i] = 1.0
	}
	for it := 0; it < iters; it++ {
		for _, iv := range intervals {
			a, b := iv[0], iv[1]
			next := make([]float64, b-a)
			for v := a; v < b; v++ {
				sum := 0.0
				for e := sg.InStart[v]; e < sg.InStart[v+1]; e++ {
					s := sg.InSrc[e]
					d := sg.OutDeg[s]
					if d == 0 {
						d = 1
					}
					sum += values[s] / float64(d)
				}
				next[v-a] = 0.15 + 0.85*sum
			}
			copy(values[a:b], next)
		}
	}
	return values
}

func TestMultiIntervalAsyncScheduleMatchesReference(t *testing.T) {
	g := datagen.PowerLawGraph(400, 5000, 17)
	sg := Shard(g, 4, false)
	budget := int64(64 << 10)
	cfg := Config{App: PageRank, Workers: 2, Iterations: 3, MemoryBudget: budget}
	intervals := sg.Intervals(budget / 48)
	if len(intervals) < 3 {
		t.Fatalf("want multiple intervals, got %d", len(intervals))
	}
	mv, mv2 := buildBoth(t)
	_, valsP, err := Run(mv, sg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, valsP2, err := Run(mv2, sg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := referencePageRankScheduled(sg, intervals, 3)
	for v := range ref {
		if math.Abs(valsP[v]-ref[v]) > 1e-9 {
			t.Fatalf("P vertex %d: %v want %v", v, valsP[v], ref[v])
		}
		if valsP[v] != valsP2[v] {
			t.Fatalf("P/P' diverge at vertex %d", v)
		}
	}
}

func TestObjectBoundOnGraphChi(t *testing.T) {
	// §4.1's claim, in miniature: P' allocates a bounded number of heap
	// objects for the data classes regardless of graph size, while P
	// allocates in proportion to edges.
	g := datagen.PowerLawGraph(400, 6000, 11)
	sg := Shard(g, 4, false)
	mv, mv2 := buildBoth(t)
	cfg := Config{App: PageRank, Workers: 2, Iterations: 2, MemoryBudget: 4 << 20}
	metP, _, err := Run(mv, sg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	metP2, _, err := Run(mv2, sg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if metP.DataObjects < int64(sg.NumEdges()) {
		t.Fatalf("P data objects = %d, want >= #edges %d", metP.DataObjects, sg.NumEdges())
	}
	// P': facades only — a few per thread per type.
	if metP2.DataObjects > 200 {
		t.Fatalf("P' data objects = %d, want bounded by pools", metP2.DataObjects)
	}
	if metP2.Records < int64(sg.NumEdges()) {
		t.Fatalf("P' records = %d, want >= #edges", metP2.Records)
	}
	// Page recycling: far fewer pages than sub-iterations' worth of data.
	if metP2.Pages > 2000 {
		t.Fatalf("pages created = %d", metP2.Pages)
	}
}

func TestVertexDegreePreprocessing(t *testing.T) {
	// The third profiled data class: VertexDegree records built through
	// the data path (GraphChi's degree-file preprocessing).
	mv, mv2 := buildBoth(t)
	for name, m := range map[string]*vm.VM{"P": mv, "P'": mv2} {
		th, err := m.NewThread(nil)
		if err != nil {
			t.Fatal(err)
		}
		d, err := th.InvokeStaticObj("GraphChiDriver", "degreeOf", vm.I(3), vm.I(9))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in, err := th.GetField(d, "VertexDegree", "inDeg")
		if err != nil {
			t.Fatal(err)
		}
		out, err := th.GetField(d, "VertexDegree", "outDeg")
		if err != nil {
			t.Fatal(err)
		}
		if int32(in) != 3 || int32(out) != 9 {
			t.Fatalf("%s: degree record (%d,%d)", name, int32(in), int32(out))
		}
		th.FreeObj(d)
		th.Close()
	}
}

func TestSmallerBudgetMoreSubIterations(t *testing.T) {
	g := datagen.PowerLawGraph(300, 4000, 5)
	sg := Shard(g, 4, false)
	mv, _ := buildBoth(t)
	metBig, _, err := Run(mv, sg, Config{App: PageRank, Workers: 1, Iterations: 1, MemoryBudget: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	mv2, _ := buildBoth(t)
	metSmall, _, err := Run(mv2, sg, Config{App: PageRank, Workers: 1, Iterations: 1, MemoryBudget: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if metSmall.SubIters <= metBig.SubIters {
		t.Fatalf("budget did not increase sub-iterations: %d vs %d", metSmall.SubIters, metBig.SubIters)
	}
}

// TestFaultMatrixIntervalRecovery is the tentpole acceptance test: PR and
// CC, on both P and P', must converge bit-identically to fault-free runs
// under an injected worker crash (sub-iteration replayed from the shard
// with a rebuilt worker fleet), an injected heap OOM, and an injected
// page-store failure — the latter two walking the budget-halving
// degradation ladder. The shard plus the interval-boundary values are a
// complete checkpoint, so replay changes nothing observable but the
// recovery counters.
func TestFaultMatrixIntervalRecovery(t *testing.T) {
	p, p2, err := BuildPrograms()
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.PowerLawGraph(300, 3000, 7)

	apps := []struct {
		app        App
		undirected bool
		iters      int
	}{
		{PageRank, false, 3},
		{ConnectedComponents, true, 6},
	}
	cases := []struct {
		name   string
		faults faults.Config
		only   string // restrict to one program ("" = both)
		tiered bool   // run with the disk tier at a tight watermark
	}{
		// Planned worker-thread crash mid-sub-iteration.
		{"crash", faults.Config{Seed: 21, Crashes: 1}, "", false},
		{"crash2", faults.Config{Seed: 97, Crashes: 2}, "", false},
		// Heap allocation failure past setup, inside interval work;
		// recovery halves the budget and re-splits the interval. Only P
		// allocates data objects on the managed heap per interval — P'
		// puts them in pages, so its slow-path heap allocations all
		// happen during setup.
		{"oom-alloc", faults.Config{Seed: 5, AllocAt: 8}, "P", false},
		// Off-heap page-acquire failure (P' allocates pages; P never does).
		{"oom-page", faults.Config{Seed: 9, PageAt: 8}, "P'", false},
		// Disk-tier promotion failure: a record access needs a spilled
		// page back and the read fails. It surfaces as ErrPageExhausted
		// through the accessor's recover rail and must ride the same
		// ladder — and the replay, re-reading the page from the spill
		// file, must still match the untiered fault-free run bit for bit.
		{"tier-load", faults.Config{Seed: 11, TierLoadAt: 1}, "P'", true},
	}

	for _, ac := range apps {
		// Small budget => several intervals per iteration, so the crash
		// plan has occasions to land on and the ladder has room to halve.
		base := Config{App: ac.app, Workers: 2, Iterations: ac.iters, MemoryBudget: 128 << 10}
		sg := Shard(g, 4, ac.undirected)
		for name, prog := range map[string]*ir.Program{"P": p, "P'": p2} {
			clean, cleanVals, err := RunProgram(prog, 48<<20, sg, base)
			if err != nil {
				t.Fatalf("%v/%s fault-free: %v", ac.app, name, err)
			}
			if clean.Recovery != (Recovery{}) {
				t.Fatalf("%v/%s fault-free run reports recovery work: %+v", ac.app, name, clean.Recovery)
			}
			for _, tc := range cases {
				if tc.only != "" && tc.only != name {
					continue
				}
				t.Run(ac.app.String()+"/"+name+"/"+tc.name, func(t *testing.T) {
					fc := tc.faults
					cfg := base
					cfg.Faults = &fc
					if tc.tiered {
						cfg.Tiering = &offheap.TierConfig{Dir: t.TempDir(), HighWater: 2, LowWater: 1}
					}
					met, vals, err := RunProgram(prog, 48<<20, sg, cfg)
					if err != nil {
						t.Fatalf("faulty run: %v", err)
					}
					if tc.tiered && met.PagesSpilled == 0 {
						t.Fatal("tiered case never spilled; the tier-load fault cannot have fired")
					}
					for v := range cleanVals {
						if vals[v] != cleanVals[v] {
							t.Fatalf("vertex %d diverged: fault-free=%v faulty=%v",
								v, cleanVals[v], vals[v])
						}
					}
					rec := met.Recovery
					if rec.IntervalRetries < 1 {
						t.Fatalf("no interval replayed: %+v", rec)
					}
					if fc.Crashes > 0 {
						if rec.WorkerCrashes < int64(fc.Crashes) || rec.WorkerRestarts < int64(cfg.Workers) {
							t.Fatalf("crash not reflected in recovery stats: %+v", rec)
						}
					}
					if fc.AllocAt > 0 || fc.PageAt > 0 || fc.TierLoadAt > 0 {
						if rec.OOMRecoveries < 1 || rec.BudgetHalvings < 1 {
							t.Fatalf("OOM degradation ladder not exercised: %+v", rec)
						}
					}
					// The counters surface through obs too.
					if c := met.Obs.Counters["recovery.interval_retries"]; c != rec.IntervalRetries {
						t.Fatalf("obs interval_retries = %d, Recovery says %d", c, rec.IntervalRetries)
					}
				})
			}
		}
	}
}

// TestTieredPageRankAtScale is the tiering acceptance test: PageRank on
// P' at 10x the Table 2 bench size (20000 vertices / 300000 edges), with
// the DRAM watermark capping resident pages at 64 (2 MiB) — an order of
// magnitude below what the dataset's records occupy — must complete by
// spilling cold pages to disk, and produce values bit-identical to the
// DRAM-only run.
func TestTieredPageRankAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short")
	}
	_, p2, err := BuildPrograms()
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.PowerLawGraph(20000, 300000, 42)
	sg := Shard(g, 10, false)
	cfg := Config{App: PageRank, Workers: 2, Iterations: 2, MemoryBudget: 8 << 20}

	_, ref, err := RunProgram(p2, 48<<20, sg, cfg)
	if err != nil {
		t.Fatalf("DRAM-only: %v", err)
	}

	tiered := cfg
	tiered.Tiering = &offheap.TierConfig{Dir: t.TempDir(), HighWater: 64, LowWater: 32}
	met, vals, err := RunProgram(p2, 48<<20, sg, tiered)
	if err != nil {
		t.Fatalf("tiered: %v", err)
	}
	for v := range ref {
		if vals[v] != ref[v] {
			t.Fatalf("vertex %d diverged: DRAM=%v tiered=%v", v, ref[v], vals[v])
		}
	}
	if met.PagesSpilled == 0 {
		t.Fatalf("DRAM cap of 64 pages never spilled (created %d, live hw %d)",
			met.Pages, met.PagesLiveHW)
	}
	if met.PagesPromoted == 0 {
		t.Fatal("no spilled page was ever promoted back; the data path never touched disk")
	}
	if c := met.Obs.Counters["offheap.pages_spilled"]; c != met.PagesSpilled {
		t.Fatalf("obs pages_spilled = %d, Metrics say %d", c, met.PagesSpilled)
	}
}

// TestBudgetLadderExhaustionIsOME: when the budget cannot halve any
// further (a single edge no longer fits), the engine reports a genuine
// OutOfMemoryError instead of looping.
func TestBudgetLadderExhaustionIsOME(t *testing.T) {
	p, _, err := BuildPrograms()
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.PowerLawGraph(120, 1000, 3)
	sg := Shard(g, 4, false)
	// Fire an allocation failure on every slow-path allocation from #30
	// on: every replay re-fails, and the ladder must bottom out.
	fc := faults.Config{Seed: 7, AllocProb: 1, AllocAt: 0}
	cfg := Config{App: PageRank, Workers: 1, Iterations: 1,
		MemoryBudget: 96, BytesPerEdge: 48, Faults: &fc}
	_, _, err = RunProgram(p, 48<<20, sg, cfg)
	if err == nil {
		t.Fatal("run survived unrecoverable allocation failure")
	}
	if !isOOM(err) {
		t.Fatalf("want an out-of-memory classification, got: %v", err)
	}
}

// --- Shard / Intervals edge cases -----------------------------------------

// lineGraph builds v vertices where vertex 0 receives one in-edge from
// every other vertex (in-degree v-1) and the rest receive none.
func starGraph(v int) *datagen.Graph {
	g := &datagen.Graph{NumVertices: v,
		OutDeg: make([]int32, v), InDeg: make([]int32, v)}
	for s := 1; s < v; s++ {
		g.Src = append(g.Src, int32(s))
		g.Dst = append(g.Dst, 0)
		g.OutDeg[s]++
		g.InDeg[0]++
	}
	return g
}

func TestIntervalsHubVertexExceedsBudget(t *testing.T) {
	// Vertex 0's in-degree (9) alone exceeds the budget (3): it must still
	// get its own interval — it cannot be split — and every other interval
	// must respect the budget.
	sg := Shard(starGraph(10), 2, false)
	ivs := sg.Intervals(3)
	if len(ivs) == 0 {
		t.Fatal("no intervals")
	}
	if ivs[0] != [2]int{0, 1} {
		t.Fatalf("hub vertex not isolated: first interval %v", ivs[0])
	}
	for _, iv := range ivs[1:] {
		if edges := sg.InStart[iv[1]] - sg.InStart[iv[0]]; edges > 3 {
			t.Fatalf("interval %v has %d edges, budget 3", iv, edges)
		}
	}
	assertTiling(t, sg, ivs)
}

func TestShardMoreShardsThanVertices(t *testing.T) {
	g := datagen.PowerLawGraph(5, 20, 2)
	sg := Shard(g, 50, false)
	if len(sg.ShardBounds) != 51 {
		t.Fatalf("ShardBounds length %d, want nShards+1", len(sg.ShardBounds))
	}
	if sg.ShardBounds[0] != 0 || sg.ShardBounds[50] != 5 {
		t.Fatal("shard bounds do not cover the vertex range")
	}
	for i := 1; i < len(sg.ShardBounds); i++ {
		if sg.ShardBounds[i] < sg.ShardBounds[i-1] {
			t.Fatal("shard bounds not monotone")
		}
	}
}

func TestEmptyGraphHasNoIntervals(t *testing.T) {
	sg := Shard(&datagen.Graph{}, 4, false)
	if sg.NumEdges() != 0 || sg.NumVertices != 0 {
		t.Fatalf("empty graph sharded to %d vertices / %d edges", sg.NumVertices, sg.NumEdges())
	}
	if ivs := sg.Intervals(100); ivs != nil {
		t.Fatalf("empty graph produced intervals: %v", ivs)
	}
}

// assertTiling checks the interval invariant: the intervals cover
// [0, NumVertices) exactly once, in order, each non-empty.
func assertTiling(t *testing.T, sg *ShardedGraph, ivs [][2]int) {
	t.Helper()
	next := 0
	for _, iv := range ivs {
		if iv[0] != next {
			t.Fatalf("interval %v does not start at %d", iv, next)
		}
		if iv[1] <= iv[0] {
			t.Fatalf("empty interval %v", iv)
		}
		next = iv[1]
	}
	if next != sg.NumVertices {
		t.Fatalf("intervals end at %d, want %d", next, sg.NumVertices)
	}
}

func TestIntervalsTileExactlyOnce(t *testing.T) {
	g := datagen.PowerLawGraph(777, 9000, 13)
	sg := Shard(g, 6, false)
	for _, budget := range []int64{1, 7, 100, 1000, 1 << 40} {
		assertTiling(t, sg, sg.Intervals(budget))
	}
	// Sub-range splitting (the degradation ladder's entry point) tiles the
	// sub-range the same way.
	ivs := sg.IntervalsIn(100, 300, 50)
	next := 100
	for _, iv := range ivs {
		if iv[0] != next || iv[1] <= iv[0] {
			t.Fatalf("sub-range interval %v does not tile from %d", iv, next)
		}
		next = iv[1]
	}
	if next != 300 {
		t.Fatalf("sub-range intervals end at %d, want 300", next)
	}
}
