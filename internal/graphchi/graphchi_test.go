package graphchi

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/vm"
)

func buildBoth(t *testing.T) (pVM, p2VM *vm.VM) {
	t.Helper()
	p, p2, err := BuildPrograms()
	if err != nil {
		t.Fatal(err)
	}
	mv, err := vm.New(p, vm.Config{HeapSize: 48 << 20})
	if err != nil {
		t.Fatal(err)
	}
	mv2, err := vm.New(p2, vm.Config{HeapSize: 48 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return mv, mv2
}

func TestShardingInvariants(t *testing.T) {
	g := datagen.PowerLawGraph(500, 5000, 42)
	sg := Shard(g, 8, false)
	if sg.NumEdges() != 5000 {
		t.Fatalf("edges %d", sg.NumEdges())
	}
	// InStart is a proper prefix sum over InDeg.
	var total int64
	for v := 0; v < sg.NumVertices; v++ {
		if sg.InStart[v] != total {
			t.Fatalf("InStart[%d]=%d want %d", v, sg.InStart[v], total)
		}
		total += int64(sg.InDeg[v])
	}
	if total != int64(len(sg.InSrc)) {
		t.Fatal("prefix sum mismatch")
	}
	// Shard bounds are monotone and cover the vertex range.
	if sg.ShardBounds[0] != 0 || sg.ShardBounds[len(sg.ShardBounds)-1] != sg.NumVertices {
		t.Fatal("shard bounds do not cover")
	}
	for i := 1; i < len(sg.ShardBounds); i++ {
		if sg.ShardBounds[i] < sg.ShardBounds[i-1] {
			t.Fatal("shard bounds not monotone")
		}
	}
}

func TestIntervalsRespectBudget(t *testing.T) {
	g := datagen.PowerLawGraph(1000, 20000, 1)
	sg := Shard(g, 8, false)
	ivs := sg.Intervals(1000)
	covered := 0
	for _, iv := range ivs {
		edges := sg.InStart[iv[1]] - sg.InStart[iv[0]]
		// A single vertex may exceed the budget; otherwise intervals obey
		// it.
		if iv[1]-iv[0] > 1 && edges > 1000 {
			t.Fatalf("interval %v has %d edges", iv, edges)
		}
		covered += iv[1] - iv[0]
	}
	if covered != sg.NumVertices {
		t.Fatalf("intervals cover %d of %d vertices", covered, sg.NumVertices)
	}
	// Smaller budget => at least as many intervals.
	if len(sg.Intervals(500)) < len(ivs) {
		t.Fatal("smaller budget produced fewer intervals")
	}
}

// referencePageRank computes PR in plain Go with the same update schedule
// (in-interval order, Jacobi-per-interval like the engine's per-interval
// extract/reload).
func referencePageRank(sg *ShardedGraph, iters int) []float64 {
	vals := make([]float64, sg.NumVertices)
	for i := range vals {
		vals[i] = 1.0
	}
	for it := 0; it < iters; it++ {
		contrib := make([]float64, sg.NumVertices)
		for v := range contrib {
			d := sg.OutDeg[v]
			if d == 0 {
				d = 1
			}
			contrib[v] = vals[v] / float64(d)
		}
		next := make([]float64, sg.NumVertices)
		for v := 0; v < sg.NumVertices; v++ {
			sum := 0.0
			for e := sg.InStart[v]; e < sg.InStart[v+1]; e++ {
				sum += contrib[sg.InSrc[e]]
			}
			next[v] = 0.15 + 0.85*sum
		}
		vals = next
	}
	return vals
}

func TestPageRankMatchesReferenceAndTransform(t *testing.T) {
	g := datagen.PowerLawGraph(300, 3000, 7)
	sg := Shard(g, 4, false)
	mv, mv2 := buildBoth(t)
	cfg := Config{App: PageRank, Workers: 2, Iterations: 3, MemoryBudget: 1 << 30}

	_, valsP, err := Run(mv, sg, cfg)
	if err != nil {
		t.Fatalf("P: %v", err)
	}
	_, valsP2, err := Run(mv2, sg, cfg)
	if err != nil {
		t.Fatalf("P': %v", err)
	}
	// P and P' agree bit for bit.
	for i := range valsP {
		if valsP[i] != valsP2[i] {
			t.Fatalf("vertex %d: P=%v P'=%v", i, valsP[i], valsP2[i])
		}
	}
	// With one interval (huge budget) the engine is exactly Jacobi.
	ref := referencePageRank(sg, 3)
	for i := range ref {
		if math.Abs(ref[i]-valsP[i]) > 1e-9 {
			t.Fatalf("vertex %d: ref=%v engine=%v", i, ref[i], valsP[i])
		}
	}
}

func TestConnectedComponentsConverges(t *testing.T) {
	g := datagen.PowerLawGraph(200, 1500, 3)
	sg := Shard(g, 4, true) // undirected
	mv, mv2 := buildBoth(t)
	cfg := Config{App: ConnectedComponents, Workers: 2, Iterations: 8, MemoryBudget: 1 << 30}
	_, valsP, err := Run(mv, sg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, valsP2, err := Run(mv2, sg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range valsP {
		if valsP[i] != valsP2[i] {
			t.Fatalf("vertex %d: P=%v P'=%v", i, valsP[i], valsP2[i])
		}
	}
	// Labels must be non-increasing versus initial IDs and a valid label.
	for i, l := range valsP {
		if l > float64(i) || l < 0 {
			t.Fatalf("vertex %d has label %v", i, l)
		}
	}
}

// referencePageRankScheduled models the engine's exact multi-interval
// schedule: within one iteration, an interval's in-edge values are read
// from the `values` array, which already contains the updates of earlier
// intervals — GraphChi's asynchronous update semantics.
func referencePageRankScheduled(sg *ShardedGraph, intervals [][2]int, iters int) []float64 {
	values := make([]float64, sg.NumVertices)
	for i := range values {
		values[i] = 1.0
	}
	for it := 0; it < iters; it++ {
		for _, iv := range intervals {
			a, b := iv[0], iv[1]
			next := make([]float64, b-a)
			for v := a; v < b; v++ {
				sum := 0.0
				for e := sg.InStart[v]; e < sg.InStart[v+1]; e++ {
					s := sg.InSrc[e]
					d := sg.OutDeg[s]
					if d == 0 {
						d = 1
					}
					sum += values[s] / float64(d)
				}
				next[v-a] = 0.15 + 0.85*sum
			}
			copy(values[a:b], next)
		}
	}
	return values
}

func TestMultiIntervalAsyncScheduleMatchesReference(t *testing.T) {
	g := datagen.PowerLawGraph(400, 5000, 17)
	sg := Shard(g, 4, false)
	budget := int64(64 << 10)
	cfg := Config{App: PageRank, Workers: 2, Iterations: 3, MemoryBudget: budget}
	intervals := sg.Intervals(budget / 48)
	if len(intervals) < 3 {
		t.Fatalf("want multiple intervals, got %d", len(intervals))
	}
	mv, mv2 := buildBoth(t)
	_, valsP, err := Run(mv, sg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, valsP2, err := Run(mv2, sg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := referencePageRankScheduled(sg, intervals, 3)
	for v := range ref {
		if math.Abs(valsP[v]-ref[v]) > 1e-9 {
			t.Fatalf("P vertex %d: %v want %v", v, valsP[v], ref[v])
		}
		if valsP[v] != valsP2[v] {
			t.Fatalf("P/P' diverge at vertex %d", v)
		}
	}
}

func TestObjectBoundOnGraphChi(t *testing.T) {
	// §4.1's claim, in miniature: P' allocates a bounded number of heap
	// objects for the data classes regardless of graph size, while P
	// allocates in proportion to edges.
	g := datagen.PowerLawGraph(400, 6000, 11)
	sg := Shard(g, 4, false)
	mv, mv2 := buildBoth(t)
	cfg := Config{App: PageRank, Workers: 2, Iterations: 2, MemoryBudget: 4 << 20}
	metP, _, err := Run(mv, sg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	metP2, _, err := Run(mv2, sg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if metP.DataObjects < int64(sg.NumEdges()) {
		t.Fatalf("P data objects = %d, want >= #edges %d", metP.DataObjects, sg.NumEdges())
	}
	// P': facades only — a few per thread per type.
	if metP2.DataObjects > 200 {
		t.Fatalf("P' data objects = %d, want bounded by pools", metP2.DataObjects)
	}
	if metP2.Records < int64(sg.NumEdges()) {
		t.Fatalf("P' records = %d, want >= #edges", metP2.Records)
	}
	// Page recycling: far fewer pages than sub-iterations' worth of data.
	if metP2.Pages > 2000 {
		t.Fatalf("pages created = %d", metP2.Pages)
	}
}

func TestVertexDegreePreprocessing(t *testing.T) {
	// The third profiled data class: VertexDegree records built through
	// the data path (GraphChi's degree-file preprocessing).
	mv, mv2 := buildBoth(t)
	for name, m := range map[string]*vm.VM{"P": mv, "P'": mv2} {
		th, err := m.NewThread(nil)
		if err != nil {
			t.Fatal(err)
		}
		d, err := th.InvokeStaticObj("GraphChiDriver", "degreeOf", vm.I(3), vm.I(9))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in, err := th.GetField(d, "VertexDegree", "inDeg")
		if err != nil {
			t.Fatal(err)
		}
		out, err := th.GetField(d, "VertexDegree", "outDeg")
		if err != nil {
			t.Fatal(err)
		}
		if int32(in) != 3 || int32(out) != 9 {
			t.Fatalf("%s: degree record (%d,%d)", name, int32(in), int32(out))
		}
		th.FreeObj(d)
		th.Close()
	}
}

func TestSmallerBudgetMoreSubIterations(t *testing.T) {
	g := datagen.PowerLawGraph(300, 4000, 5)
	sg := Shard(g, 4, false)
	mv, _ := buildBoth(t)
	metBig, _, err := Run(mv, sg, Config{App: PageRank, Workers: 1, Iterations: 1, MemoryBudget: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	mv2, _ := buildBoth(t)
	metSmall, _, err := Run(mv2, sg, Config{App: PageRank, Workers: 1, Iterations: 1, MemoryBudget: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if metSmall.SubIters <= metBig.SubIters {
		t.Fatalf("budget did not increase sub-iterations: %d vs %d", metSmall.SubIters, metBig.SubIters)
	}
}
