package heap

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lang"
)

// GC torture test: several mutator goroutines churn linked object graphs
// (lists with array fan-out, old->young edges through the batched write
// barrier) while a collector goroutine forces minor and full collections
// as fast as it can. After every safepoint crossing each worker re-walks
// its graph and verifies the checksum, so any collection that loses an
// edge, misdirects a forwarding pointer, or drops a buffered remembered-
// set entry fails immediately and locally.
//
// CI runs this under -race as its own step: the thread-local allocation
// batching and remembered-set buffers introduced for the fast paths are
// exactly the kind of state a racy flush would corrupt.
//
// Root visibility is safe without extra locking for the same reason as in
// the other concurrent tests: workers publish w.head/w.anchor by parking
// at a safepoint (BeginExternal locks sp.mu), and the collector only
// visits roots once every thread is parked, so the sp.mu handshake orders
// the writes before the visit.

const (
	tortureWorkers = 4
	tortureRounds  = 60
	tortureList    = 400
	tortureMinGCs  = 14 // workers churn extra rounds until this many ran
)

type tortureWorker struct {
	id     int
	head   Addr // current young list (GC root)
	anchor Addr // long-lived node carrying old->young edges (GC root)
}

func TestGCTorture(t *testing.T) {
	rounds := tortureRounds
	if testing.Short() {
		rounds = 15
	}
	h := testHierarchy(t)
	hp := New(Config{HeapSize: 48 << 20}, h)
	node := h.Class("Node")
	val := node.FindField("val")
	next := node.FindField("next")
	kids := node.FindField("kids")

	workers := make([]*tortureWorker, tortureWorkers)
	for i := range workers {
		workers[i] = &tortureWorker{id: i}
		w := workers[i]
		hp.AddRoots(RootFunc(func(visit func(Addr) Addr) {
			w.head = visit(w.head)
			w.anchor = visit(w.anchor)
		}))
	}

	// alloc retries once after a forced full collection, so transient
	// nursery exhaustion under GC pressure is not a test failure.
	alloc := func(tc *ThreadCtx) (Addr, error) {
		a, err := hp.AllocObject(tc, node, 0)
		if errors.Is(err, ErrOutOfMemory) {
			if err = hp.ForceGC(tc, true); err == nil {
				a, err = hp.AllocObject(tc, node, 0)
			}
		}
		return a, err
	}

	var stop atomic.Bool
	var collector sync.WaitGroup
	collector.Add(1)
	go func() {
		defer collector.Done()
		tc := hp.RegisterThread()
		defer hp.UnregisterThread(tc)
		full := false
		for !stop.Load() {
			if err := hp.ForceGC(tc, full); err != nil {
				t.Errorf("forced GC: %v", err)
				return
			}
			full = !full
			// Yield between collections so mutators re-enter the running
			// state; a zero-delay loop would re-request the safepoint
			// before parked threads wake.
			time.Sleep(50 * time.Microsecond)
		}
	}()

	var mutators sync.WaitGroup
	for _, w := range workers {
		w := w
		mutators.Add(1)
		go func() {
			defer mutators.Done()
			tc := hp.RegisterThread()
			tc.EndExternal()
			defer func() {
				tc.BeginExternal()
				hp.UnregisterThread(tc)
			}()
			// The long-lived anchor; forced full GCs promote it, turning
			// every later anchor.next store into an old->young edge.
			a, err := alloc(tc)
			if err != nil {
				t.Error(err)
				return
			}
			hp.SetInt(a, val.Offset, int32(w.id))
			w.anchor = a
			// Run the planned rounds, then keep churning (bounded) until
			// the collector has met its quota: collections are much slower
			// under -race, and a torture run with two GCs proves nothing.
			gcs := func() int64 {
				st := hp.Stats()
				return st.MinorGCs + st.FullGCs
			}
			for round := 0; (round < rounds || gcs() < tortureMinGCs) &&
				round < rounds*200 && !t.Failed(); round++ {
				// Build a fresh list; the previous round's becomes garbage.
				want := int64(0)
				w.head = 0
				for i := 0; i < tortureList; i++ {
					n, err := alloc(tc)
					if err != nil {
						t.Error(err)
						return
					}
					v := int32(w.id*1_000_000 + round*1000 + i)
					hp.SetInt(n, val.Offset, v)
					hp.SetRefTC(tc, n, next.Offset, w.head)
					w.head = n
					want += int64(v)
					if i%64 == 0 {
						// Array fan-out pointing back into the list, plus
						// an old->young edge through the anchor: exactly
						// the stores the batched barrier buffers.
						arr, err := hp.AllocArray(tc, lang.ClassType("Node"), 4, 0)
						if err != nil {
							t.Error(err)
							return
						}
						hp.SetRefTC(tc, arr, 0, n)
						hp.SetRefTC(tc, n, kids.Offset, arr)
						hp.SetRefTC(tc, w.anchor, next.Offset, n)
						tc.Safepoint()
					}
				}
				tc.Safepoint()
				// Verify after the safepoint: everything may have moved.
				got := int64(0)
				cnt := 0
				for c := w.head; c != 0; c = hp.GetRef(c, next.Offset) {
					got += int64(hp.GetInt(c, val.Offset))
					if arr := hp.GetRef(c, kids.Offset); arr != 0 {
						if hp.GetRef(arr, 0) != c {
							t.Errorf("worker %d round %d: kids[0] no longer points at owner", w.id, round)
							return
						}
					}
					cnt++
				}
				if got != want || cnt != tortureList {
					t.Errorf("worker %d round %d: checksum %d (want %d), len %d (want %d)",
						w.id, round, got, want, cnt, tortureList)
					return
				}
				if hp.GetInt(w.anchor, val.Offset) != int32(w.id) {
					t.Errorf("worker %d round %d: anchor payload corrupted", w.id, round)
					return
				}
				// The anchor's old->young edge must survive the buffered
				// write barrier across any number of collections.
				if hp.GetRef(w.anchor, next.Offset) == 0 {
					t.Errorf("worker %d round %d: anchor lost its old->young edge", w.id, round)
					return
				}
			}
		}()
	}

	mutators.Wait()
	stop.Store(true)
	collector.Wait()

	st := hp.Stats()
	t.Logf("torture ran %d minor + %d full collections", st.MinorGCs, st.FullGCs)
	if st.MinorGCs+st.FullGCs < 10 {
		t.Fatalf("only %d collections ran; torture was not tortuous", st.MinorGCs+st.FullGCs)
	}
}
