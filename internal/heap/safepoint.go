package heap

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Stop-the-world coordination. Mutator threads are either "running"
// (executing IR and touching the heap) or "external" (parked at a
// safepoint, or executing framework Go code that only reaches the heap
// through handles). A collection may proceed only when every registered
// thread except the collector is external.

type safepointState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	gcMu    sync.Mutex // ownership of a collection
	wanted  atomic.Bool
	running int
	threads map[*ThreadCtx]struct{}
}

func (sp *safepointState) init() {
	sp.cond = sync.NewCond(&sp.mu)
	sp.threads = make(map[*ThreadCtx]struct{})
}

// ThreadCtx is the per-VM-thread heap context: its TLAB and safepoint
// state. Every thread that executes IR must hold one and call Safepoint
// regularly (the interpreter does so on calls and loop back-edges).
//
// The context also batches allocation accounting and write-barrier
// entries thread-locally, so the TLAB bump-pointer path touches no shared
// cache line: counters flush to the heap's shared atomics when the thread
// crosses the boundary (BeginExternal); the remembered-set buffer is
// merged when a collection stops the world, or under mu when it fills.
type ThreadCtx struct {
	hp      *Heap
	tlab    TLAB
	running bool

	// Allocation accounting (flushed by flushAllocStats).
	allocBytes   int64
	allocObjects int64
	classCounts  []int64 // per class ID, same indexing as hp.classCounts
	arrCounts    []int64 // per array type index, grown on demand
	histCounts   []int64 // hp.hAllocSize buckets
	histSum      int64
	histMin      int64
	histMax      int64

	// remBuf holds old->young reference slots recorded by the write
	// barrier (SetRefTC) since the last drain.
	remBuf []Addr

	// Lifetime state (lifetime.go): the epoch nesting depth, the stack of
	// live epoch regions (enforce mode), the per-site allocation profile
	// (nil when lifetimes are off), the bounded survival-sample buffer
	// consumed by the collector, and batched placement counters.
	epochDepth   int
	epochs       []epochLevel
	siteAllocs   []int64
	siteBytes    []int64
	samples      []survivalSample
	sampleTick   uint32
	pretenured   int64
	regionAllocs int64
}

// RegisterThread creates a thread context. The context starts external;
// call EndExternal (or run IR through the VM, which does it) to start
// mutating.
func (hp *Heap) RegisterThread() *ThreadCtx {
	tc := &ThreadCtx{
		hp:          hp,
		classCounts: make([]int64, len(hp.classCounts)),
		histCounts:  make([]int64, hp.hAllocSize.NumBuckets()),
		histMin:     math.MaxInt64,
		histMax:     math.MinInt64,
	}
	if n := len(hp.life); n > 0 {
		tc.siteAllocs = make([]int64, n)
		tc.siteBytes = make([]int64, n)
	}
	sp := &hp.sp
	sp.mu.Lock()
	sp.threads[tc] = struct{}{}
	sp.mu.Unlock()
	return tc
}

// UnregisterThread removes the context; the thread must be external.
func (hp *Heap) UnregisterThread(tc *ThreadCtx) {
	tc.flushAllocStats()
	tc.flushRemBuf()
	tc.releaseEpochs()
	tc.samples = nil
	sp := &hp.sp
	sp.mu.Lock()
	if tc.running {
		sp.running--
		tc.running = false
		sp.cond.Broadcast()
	}
	delete(sp.threads, tc)
	sp.mu.Unlock()
}

// BeginExternal marks the thread as not mutating (framework code, blocking
// calls). The thread must not touch heap memory until EndExternal.
// Thread-local allocation counters flush here, so shared Stats lag a
// running mutator by at most one boundary crossing.
func (tc *ThreadCtx) BeginExternal() {
	tc.flushAllocStats()
	sp := &tc.hp.sp
	sp.mu.Lock()
	if tc.running {
		tc.running = false
		sp.running--
		sp.cond.Broadcast()
	}
	sp.mu.Unlock()
}

// EndExternal re-enters mutator state, blocking while a collection is
// pending or in progress. Time spent blocked is recorded in the
// safepoint-wait histogram (the wait is measured only when a collection
// is actually pending, keeping the common path free of clock reads).
func (tc *ThreadCtx) EndExternal() {
	sp := &tc.hp.sp
	sp.mu.Lock()
	if sp.wanted.Load() {
		start := time.Now()
		for sp.wanted.Load() {
			sp.cond.Wait()
		}
		tc.hp.hSafepointWait.Observe(time.Since(start).Nanoseconds())
	}
	if !tc.running {
		tc.running = true
		sp.running++
	}
	sp.mu.Unlock()
}

// FlushStats publishes the thread's batched allocation counters to the
// heap's shared statistics immediately, without leaving mutator state.
// Callers that inspect Stats or per-class counts while a thread is still
// running must flush that thread first; boundary crossings (BeginExternal,
// UnregisterThread) flush automatically.
func (tc *ThreadCtx) FlushStats() {
	tc.flushAllocStats()
}

// Safepoint parks the thread if a collection has been requested. The check
// is a single atomic load when no collection is pending.
func (tc *ThreadCtx) Safepoint() {
	if tc.hp.sp.wanted.Load() {
		tc.BeginExternal()
		tc.EndExternal()
	}
}

// Collect runs a collection (minor, or full when full is true) with the
// calling thread as the collector. It returns ErrOutOfMemory if a full
// collection cannot fit the live set.
func (hp *Heap) Collect(tc *ThreadCtx, full bool) error {
	sp := &hp.sp
	tc.BeginExternal()
	sp.gcMu.Lock()
	sp.wanted.Store(true)
	// Wait for every other thread to leave the running state.
	sp.mu.Lock()
	for sp.running > 0 {
		sp.cond.Wait()
	}
	sp.mu.Unlock()

	err := hp.collectSTW(full)

	sp.wanted.Store(false)
	sp.mu.Lock()
	sp.cond.Broadcast()
	sp.mu.Unlock()
	sp.gcMu.Unlock()
	tc.EndExternal()
	return err
}

// invalidateTLABs resets every thread's TLAB after the nursery has been
// recycled. Called with the world stopped.
func (hp *Heap) invalidateTLABs() {
	for tc := range hp.sp.threads {
		tc.tlab = TLAB{}
	}
}
