// Package heap implements the managed heap the FJ VM allocates objects in,
// together with a stop-the-world generational tracing garbage collector.
// It stands in for the JVM heap in the paper's evaluation: program P's data
// objects live here and are traced by the collector, while program P' keeps
// only control objects and facades here and stores data in the off-heap
// page arena (internal/offheap), which this collector never scans.
//
// # Layout
//
// The heap is one contiguous byte arena addressed by 32-bit offsets
// (Addr); address 0 is null. The low part of the arena is the old
// generation, the high part is the nursery (young generation). Objects are
// allocated in the nursery through per-thread TLABs; a minor collection
// evacuates live nursery objects into the old generation (promotion on
// first survival); a full collection marks both generations and slides the
// old generation (Lisp-2 compaction).
//
// Object layout mirrors a 64-bit HotSpot-style JVM, which is what gives
// program P its per-object overhead (§2.4 of the paper):
//
//	scalar object:  [type word][gc word][lock word]            = 12-byte header
//	array object:   [type word][gc word][lock word][length]    = 16-byte header
//
// followed by the field/element body laid out per lang.Class offsets —
// the same offsets the off-heap page records use, which is what makes the
// synthesized conversion functions straight memory copies.
package heap

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/obs"
)

// Addr is a heap address: a byte offset into the arena. 0 is null.
type Addr = uint32

// Header field offsets and sizes.
const (
	hdrType = 0 // u32: class ID, or array bit | array type index
	hdrGC   = 4 // u32: mark/forwarding word
	hdrLock = 8 // u32: lock word

	// ScalarHeader and ArrayHeader are the managed object header sizes the
	// paper's space-overhead argument is built on (12 and 16 bytes).
	ScalarHeader = 12
	ArrayHeader  = 16

	arrayBit uint32 = 1 << 31
)

// ErrOutOfMemory is reported when an allocation cannot be satisfied even
// after a full collection. It models the JVM's OutOfMemoryError that makes
// program P fail on large datasets (Table 3: "OME(n)").
var ErrOutOfMemory = fmt.Errorf("OutOfMemoryError: managed heap exhausted")

// Config sizes the heap.
type Config struct {
	// HeapSize is the maximum heap size in bytes (the -Xmx of the run).
	HeapSize int
	// YoungSize is the nursery size; defaults to HeapSize/4, clamped to
	// [256 KiB, 64 MiB].
	YoungSize int
	// GCWorkers is the number of goroutines used by the full collector's
	// mark phase (the paper's runs use HotSpot's parallel collector).
	// Defaults to min(GOMAXPROCS, 4); 1 forces single-threaded marking.
	GCWorkers int
	// Obs receives the heap's observability instruments (pause and
	// allocation-size histograms, promotion counters). A fresh private
	// registry is created when nil.
	Obs *obs.Registry
	// Faults, when non-nil, is consulted on every slow-path allocation:
	// a firing faults.HeapAlloc point fails the allocation with
	// ErrOutOfMemory ahead of true exhaustion (deterministic OOM
	// injection for robustness tests).
	Faults *faults.Injector
	// Lifetimes carries the static per-site lifetime classification (see
	// lifetime.go). The zero value disables lifetime handling.
	Lifetimes LifetimeConfig
}

// Stats is a snapshot of allocation and collection counters.
type Stats struct {
	AllocBytes   int64 // total bytes ever allocated
	AllocObjects int64 // total objects ever allocated
	MinorGCs     int64
	FullGCs      int64
	GCTime       time.Duration // total stop-the-world collection time
	Promoted     int64         // objects promoted young -> old
	MarkedNodes  int64         // objects traced across all collections
	PeakUsed     int64         // high-water mark of live+garbage bytes present
	LiveAfterGC  int64         // live bytes measured at the last full GC
	HeapSize     int64
}

// Heap is the managed heap. All exported methods are safe for use from
// multiple VM threads; collections stop the world via the safepoint
// protocol in safepoint.go.
type Heap struct {
	arena []byte

	oldBase  Addr
	oldEnd   Addr
	youngEnd Addr

	// Epoch-region area: [regionBase, regionEnd) sits between the old
	// generation and the nursery; the nursery proper starts at youngBase.
	// With lifetimes off (or not enforced) the area is empty and
	// youngBase == oldEnd, preserving the classic two-space layout.
	regionBase Addr
	regionEnd  Addr
	youngBase  Addr

	mu       sync.Mutex // guards oldPos, youngPos, remset, TLAB handout
	oldPos   Addr
	youngPos Addr

	// remset holds absolute addresses of reference slots in the old
	// generation that may point into the nursery (filled by the write
	// barrier, consumed and cleared by minor collections).
	remset map[Addr]struct{}

	h *lang.Hierarchy

	// Array type registry: array types are assigned dense indices so the
	// type word can describe them.
	arrMu    sync.Mutex
	arrTypes []*lang.Type
	arrIndex map[string]int

	// Static reference slots registered as roots by the VM.
	rootsMu sync.Mutex
	roots   []RootSource

	// Allocation counters per class ID and per array type index, for the
	// paper's object-count experiment (§4.1).
	classCounts []int64
	arrCounts   []int64

	// gcWorkers is the mark-phase parallelism; markBits is the side mark
	// bitmap (one bit per 8 heap bytes) CAS-set by concurrent markers.
	gcWorkers int
	markBits  []uint32

	stats struct {
		allocBytes   atomic.Int64
		allocObjects atomic.Int64
		minorGCs     atomic.Int64
		fullGCs      atomic.Int64
		gcNanos      atomic.Int64
		promoted     atomic.Int64
		marked       atomic.Int64
		peakUsed     atomic.Int64
		liveAfterGC  atomic.Int64
	}

	// Observability instruments (internal/obs). Hot paths use the direct
	// pointers; the registry is only consulted at creation/snapshot time.
	obs            *obs.Registry
	hPause         *obs.Histogram // every stop-the-world pause, ns
	hPauseMinor    *obs.Histogram
	hPauseFull     *obs.Histogram
	hSafepointWait *obs.Histogram // mutator wait entering the VM during GC, ns
	hAllocSize     *obs.Histogram // per-allocation sizes, bytes
	cPromotedBytes *obs.Counter   // bytes evacuated young -> old
	cEvacuated     *obs.Counter   // objects evacuated by minor collections
	cRemsetScanned *obs.Counter   // remembered-set slots scanned by minor GCs

	// Fault injection: nil when disabled, so the slow path pays one nil
	// check.
	inj        *faults.Injector
	cFaultsInj *obs.Counter

	// Lifetime state (lifetime.go). lifeStatic is the immutable config;
	// life is the working copy that runtime demotions mutate (read with
	// atomics on the allocation path). The site* arrays hold the per-site
	// allocation profile; freeChunks is the epoch-region chunk free list
	// (guarded by mu).
	lifeMode      LifetimeMode
	lifeStatic    []Life
	life          []uint32
	siteAllocs    []int64
	siteBytes     []int64
	siteSampled   []int64
	siteSurvived  []int64
	freeChunks    []Addr
	regionInUse   int64
	verifyRegions bool
	sampleActive  uint32 // survival sampling on while any long site lacks a verdict

	cLifePretenured *obs.Counter // allocations routed old-gen by pretenuring
	cLifeRegion     *obs.Counter // allocations served from epoch regions
	cLifeDemoted    *obs.Counter // sites demoted to unknown at runtime

	sp safepointState
}

// RootSource enumerates GC roots. The visitor receives each root value and
// returns its (possibly moved) replacement; implementations must write the
// returned value back.
type RootSource interface {
	VisitRoots(visit func(Addr) Addr)
}

// RootFunc adapts a function to RootSource.
type RootFunc func(visit func(Addr) Addr)

// VisitRoots implements RootSource.
func (f RootFunc) VisitRoots(visit func(Addr) Addr) { f(visit) }

// New creates a heap of the configured size for the given class hierarchy.
func New(cfg Config, h *lang.Hierarchy) *Heap {
	if cfg.HeapSize < 1<<20 {
		cfg.HeapSize = 1 << 20
	}
	young := cfg.YoungSize
	if young == 0 {
		young = cfg.HeapSize / 4
		if young > 64<<20 {
			young = 64 << 20
		}
	}
	if young < 256<<10 {
		young = 256 << 10
	}
	if young > cfg.HeapSize/2 {
		young = cfg.HeapSize / 2
	}
	hp := &Heap{
		arena:       make([]byte, cfg.HeapSize),
		h:           h,
		remset:      make(map[Addr]struct{}),
		arrIndex:    make(map[string]int),
		classCounts: make([]int64, len(h.ClassList)),
	}
	hp.oldBase = 8 // reserve null
	hp.oldEnd = Addr(cfg.HeapSize - young)
	hp.youngEnd = Addr(cfg.HeapSize)
	hp.oldPos = hp.oldBase
	hp.youngPos = hp.oldEnd
	hp.SetLifetimes(cfg.Lifetimes) // sets youngBase/region and rewinds youngPos
	hp.gcWorkers = cfg.GCWorkers
	if hp.gcWorkers <= 0 {
		hp.gcWorkers = runtime.GOMAXPROCS(0)
		if hp.gcWorkers > 4 {
			hp.gcWorkers = 4
		}
	}
	// One mark bit per 8 bytes of heap.
	hp.markBits = make([]uint32, (cfg.HeapSize/8+31)/32)
	hp.bindInstruments(cfg.Obs, cfg.Faults)
	hp.sp.init()
	return hp
}

// bindInstruments points the heap's hot-path instrument pointers at reg (a
// fresh private registry when nil) and installs the fault injector. Called
// at construction and again by Reset so a reused heap reports into the new
// job's registry.
func (hp *Heap) bindInstruments(reg *obs.Registry, inj *faults.Injector) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	hp.obs = reg
	hp.hPause = reg.Histogram(obs.HistGCPause, obs.GCPauseBounds)
	hp.hPauseMinor = reg.Histogram(obs.HistGCPauseMinor, obs.GCPauseBounds)
	hp.hPauseFull = reg.Histogram(obs.HistGCPauseFull, obs.GCPauseBounds)
	hp.hSafepointWait = reg.Histogram(obs.HistSafepointWait, obs.SafepointWaitBounds)
	hp.hAllocSize = reg.Histogram(obs.HistAllocSize, obs.AllocSizeBounds)
	hp.cPromotedBytes = reg.Counter(obs.CtrPromotedBytes)
	hp.cEvacuated = reg.Counter(obs.CtrEvacuated)
	hp.cRemsetScanned = reg.Counter(obs.CtrRemsetScanned)
	hp.cLifePretenured = reg.Counter(obs.CtrLifetimePretenured)
	hp.cLifeRegion = reg.Counter(obs.CtrLifetimeRegionAllocs)
	hp.cLifeDemoted = reg.Counter(obs.CtrLifetimeDemotions)
	hp.inj = inj
	hp.cFaultsInj = reg.Counter(obs.CtrFaultHeapAlloc)
}

// Reset returns the heap to its post-New state so a long-lived VM can be
// reused for another job without re-allocating the arena: allocation
// cursors rewind, the remembered set and allocation counters clear, and
// the instruments rebind to reg. The arena and GC-worker configuration are
// retained — that is the warm state a daemon keeps between jobs. Every
// thread must have been unregistered first; Reset fails otherwise, so a
// poisoned heap (a job that leaked a thread) is rebuilt rather than
// reused.
func (hp *Heap) Reset(reg *obs.Registry, inj *faults.Injector) error {
	hp.sp.mu.Lock()
	live := len(hp.sp.threads)
	hp.sp.mu.Unlock()
	if live != 0 {
		return fmt.Errorf("heap: reset with %d registered thread(s)", live)
	}
	hp.mu.Lock()
	hp.oldPos = hp.oldBase
	hp.remset = make(map[Addr]struct{})
	hp.mu.Unlock()
	// Re-derive the region layout and restore the static (pre-demotion)
	// classification; also rewinds youngPos to youngBase.
	hp.SetLifetimes(LifetimeConfig{Mode: hp.lifeMode, Sites: hp.lifeStatic})
	for i := range hp.classCounts {
		atomic.StoreInt64(&hp.classCounts[i], 0)
	}
	hp.arrMu.Lock()
	for i := range hp.arrCounts {
		atomic.StoreInt64(&hp.arrCounts[i], 0)
	}
	hp.arrMu.Unlock()
	hp.clearMarkBits()
	hp.stats.allocBytes.Store(0)
	hp.stats.allocObjects.Store(0)
	hp.stats.minorGCs.Store(0)
	hp.stats.fullGCs.Store(0)
	hp.stats.gcNanos.Store(0)
	hp.stats.promoted.Store(0)
	hp.stats.marked.Store(0)
	hp.stats.peakUsed.Store(0)
	hp.stats.liveAfterGC.Store(0)
	hp.bindInstruments(reg, inj)
	return nil
}

// injectAllocFault consults the fault injector; when the heap.alloc point
// fires, the allocation fails with ErrOutOfMemory (wrapped, so errors.Is
// matches and the failure rides the same rails as a true exhaustion).
func (hp *Heap) injectAllocFault() error {
	if hp.inj == nil || !hp.inj.Fire(faults.HeapAlloc) {
		return nil
	}
	n := hp.cFaultsInj.Load() + 1
	hp.cFaultsInj.Inc()
	hp.obs.Emit(obs.EvFault, string(faults.HeapAlloc), n, 0, 0)
	return fmt.Errorf("%w (injected fault)", ErrOutOfMemory)
}

// Obs returns the heap's observability registry.
func (hp *Heap) Obs() *obs.Registry { return hp.obs }

// Size returns the configured heap size in bytes.
func (hp *Heap) Size() int { return len(hp.arena) }

// Hierarchy returns the class hierarchy this heap was built for.
func (hp *Heap) Hierarchy() *lang.Hierarchy { return hp.h }

// AddRoots registers an additional root source.
func (hp *Heap) AddRoots(r RootSource) {
	hp.rootsMu.Lock()
	hp.roots = append(hp.roots, r)
	hp.rootsMu.Unlock()
}

// ArrayTypeIndex returns the dense index for an array's element type,
// registering it on first use.
func (hp *Heap) ArrayTypeIndex(elem *lang.Type) int {
	key := elem.String()
	hp.arrMu.Lock()
	defer hp.arrMu.Unlock()
	if i, ok := hp.arrIndex[key]; ok {
		return i
	}
	i := len(hp.arrTypes)
	hp.arrTypes = append(hp.arrTypes, elem)
	hp.arrIndex[key] = i
	for len(hp.arrCounts) <= i {
		hp.arrCounts = append(hp.arrCounts, 0)
	}
	return i
}

// ArrayElemType returns the element type for an array type index.
func (hp *Heap) ArrayElemType(idx int) *lang.Type {
	hp.arrMu.Lock()
	defer hp.arrMu.Unlock()
	return hp.arrTypes[idx]
}

func roundUp8(n int) int { return (n + 7) &^ 7 }

// TLAB is a thread-local allocation buffer handed out from the nursery.
type TLAB struct {
	pos, end Addr
}

const tlabSize = 32 << 10

// objSize returns the total size of the object at a, derived from its
// header (the heap is address-walkable).
func (hp *Heap) objSize(a Addr) int {
	tw := hp.getU32(a + hdrType)
	if tw&arrayBit != 0 {
		elem := hp.arrTypes[int(tw&^arrayBit)]
		n := int(hp.getU32(a + 12))
		return roundUp8(ArrayHeader + n*elem.FieldSize())
	}
	cls := hp.h.ClassList[int(tw)]
	return roundUp8(ScalarHeader + cls.BodySize)
}

// IsArray reports whether the object at a is an array.
func (hp *Heap) IsArray(a Addr) bool {
	return hp.getU32(a+hdrType)&arrayBit != 0
}

// ClassOf returns the class of a scalar object (nil for arrays).
func (hp *Heap) ClassOf(a Addr) *lang.Class {
	tw := hp.getU32(a + hdrType)
	if tw&arrayBit != 0 {
		return nil
	}
	return hp.h.ClassList[int(tw)]
}

// ArrayElemOf returns the element type of an array object.
func (hp *Heap) ArrayElemOf(a Addr) *lang.Type {
	tw := hp.getU32(a + hdrType)
	return hp.arrTypes[int(tw&^arrayBit)]
}

// ArrayLen returns the length of the array at a.
func (hp *Heap) ArrayLen(a Addr) int { return int(hp.getU32(a + 12)) }

// inYoung reports whether a is in the nursery.
func (hp *Heap) inYoung(a Addr) bool { return a >= hp.youngBase }

// inOld reports whether a is a non-null old-generation address.
func (hp *Heap) inOld(a Addr) bool { return a != 0 && a < hp.oldEnd }

// AllocObject allocates a zeroed instance of cls using the thread context's
// TLAB, collecting if needed. Accounting is thread-local (noteAlloc), so
// the common path performs no atomic operation and takes no lock. site is
// the static allocation-site ID (0 for unnumbered/runtime allocations);
// with lifetimes enabled it selects pretenuring or epoch-region placement.
func (hp *Heap) AllocObject(tc *ThreadCtx, cls *lang.Class, site int32) (Addr, error) {
	size := roundUp8(ScalarHeader + cls.BodySize)
	a, err := hp.allocSited(tc, size, site)
	if err != nil {
		return 0, err
	}
	hp.setU32(a+hdrType, uint32(cls.ID))
	tc.classCounts[cls.ID]++
	tc.noteAlloc(int64(size))
	return a, nil
}

// AllocArray allocates a zeroed array with the given element type.
func (hp *Heap) AllocArray(tc *ThreadCtx, elem *lang.Type, n int, site int32) (Addr, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative array size %d", n)
	}
	idx := hp.ArrayTypeIndex(elem)
	size := roundUp8(ArrayHeader + n*elem.FieldSize())
	a, err := hp.allocSited(tc, size, site)
	if err != nil {
		return 0, err
	}
	hp.setU32(a+hdrType, arrayBit|uint32(idx))
	hp.setU32(a+12, uint32(n))
	for len(tc.arrCounts) <= idx {
		tc.arrCounts = append(tc.arrCounts, 0)
	}
	tc.arrCounts[idx]++
	tc.noteAlloc(int64(size))
	return a, nil
}

// noteAlloc records one allocation in the thread-local counters; they
// flush to the shared atomics at the next boundary crossing.
func (tc *ThreadCtx) noteAlloc(size int64) {
	tc.allocObjects++
	tc.allocBytes += size
	tc.histCounts[tc.hp.hAllocSize.BucketIndex(size)]++
	tc.histSum += size
	if size < tc.histMin {
		tc.histMin = size
	}
	if size > tc.histMax {
		tc.histMax = size
	}
}

// flushAllocStats publishes the thread-local allocation counters into the
// heap's shared counters. Called at boundary crossings (BeginExternal) and
// on UnregisterThread; safe to call at any time from the owning thread.
func (tc *ThreadCtx) flushAllocStats() {
	if tc.allocObjects == 0 {
		return
	}
	hp := tc.hp
	hp.stats.allocObjects.Add(tc.allocObjects)
	hp.stats.allocBytes.Add(tc.allocBytes)
	tc.allocObjects, tc.allocBytes = 0, 0
	for id, c := range tc.classCounts {
		if c != 0 {
			atomic.AddInt64(&hp.classCounts[id], c)
			tc.classCounts[id] = 0
		}
	}
	if len(tc.arrCounts) > 0 {
		hp.arrMu.Lock()
		for idx, c := range tc.arrCounts {
			if c != 0 {
				hp.arrCounts[idx] += c
				tc.arrCounts[idx] = 0
			}
		}
		hp.arrMu.Unlock()
	}
	hp.hAllocSize.ObserveBatch(tc.histCounts, tc.histSum, tc.histMin, tc.histMax)
	for i := range tc.histCounts {
		tc.histCounts[i] = 0
	}
	tc.histSum = 0
	tc.histMin = math.MaxInt64
	tc.histMax = math.MinInt64
	if tc.siteAllocs != nil && hp.siteAllocs != nil {
		for site, c := range tc.siteAllocs {
			if c != 0 {
				atomic.AddInt64(&hp.siteAllocs[site], c)
				atomic.AddInt64(&hp.siteBytes[site], tc.siteBytes[site])
				tc.siteAllocs[site], tc.siteBytes[site] = 0, 0
			}
		}
	}
	if tc.pretenured != 0 {
		hp.cLifePretenured.Add(tc.pretenured)
		tc.pretenured = 0
	}
	if tc.regionAllocs != 0 {
		hp.cLifeRegion.Add(tc.regionAllocs)
		tc.regionAllocs = 0
	}
}

// allocRaw returns size zeroed bytes. Small allocations come from the
// thread's TLAB (an inline bump with no lock, no atomics, and no per-object
// zeroing — TLAB memory is zeroed once at handout); large ones go straight
// to the old generation.
func (hp *Heap) allocRaw(tc *ThreadCtx, size int) (Addr, error) {
	if size > tlabSize/2 {
		return hp.allocLarge(tc, size)
	}
	if a := tc.tlab.pos; a+Addr(size) <= tc.tlab.end {
		tc.tlab.pos = a + Addr(size)
		return a, nil
	}
	return hp.allocSlow(tc, size)
}

func (hp *Heap) allocSlow(tc *ThreadCtx, size int) (Addr, error) {
	if err := hp.injectAllocFault(); err != nil {
		return 0, err
	}
	for attempt := 0; ; attempt++ {
		hp.mu.Lock()
		if hp.youngPos+tlabSize <= hp.youngEnd {
			start := hp.youngPos
			hp.youngPos += tlabSize
			hp.notePeakLocked()
			hp.mu.Unlock()
			// Zero the whole TLAB once, outside the lock: the region is
			// exclusively ours, and it makes the bump path zero-free.
			hp.zero(start, tlabSize)
			tc.tlab.pos = start + Addr(size)
			tc.tlab.end = start + tlabSize
			return start, nil
		}
		hp.mu.Unlock()
		if attempt >= 2 {
			return 0, ErrOutOfMemory
		}
		if err := hp.Collect(tc, attempt > 0); err != nil {
			return 0, err
		}
	}
}

func (hp *Heap) allocLarge(tc *ThreadCtx, size int) (Addr, error) {
	if err := hp.injectAllocFault(); err != nil {
		return 0, err
	}
	for attempt := 0; ; attempt++ {
		hp.mu.Lock()
		if hp.oldPos+Addr(size) <= hp.oldEnd {
			a := hp.oldPos
			hp.oldPos += Addr(size)
			hp.notePeakLocked()
			hp.mu.Unlock()
			hp.zero(a, size)
			return a, nil
		}
		hp.mu.Unlock()
		if attempt >= 2 {
			return 0, ErrOutOfMemory
		}
		// Large allocation pressure goes straight to a full collection.
		if err := hp.Collect(tc, true); err != nil {
			return 0, err
		}
	}
}

// notePeakLocked updates the high-water mark; callers hold hp.mu or have
// the world stopped.
func (hp *Heap) notePeakLocked() {
	used := int64(hp.oldPos-hp.oldBase) + int64(hp.youngPos-hp.youngBase) + hp.regionInUse
	for {
		cur := hp.stats.peakUsed.Load()
		if used <= cur || hp.stats.peakUsed.CompareAndSwap(cur, used) {
			return
		}
	}
}

func (hp *Heap) zero(a Addr, size int) {
	b := hp.arena[a : int(a)+size]
	for i := range b {
		b[i] = 0
	}
}

// ---------------------------------------------------------------------------
// Typed accessors. off is the field offset within the object body.

func (hp *Heap) getU32(a Addr) uint32 { return binary.LittleEndian.Uint32(hp.arena[a:]) }
func (hp *Heap) setU32(a Addr, v uint32) {
	binary.LittleEndian.PutUint32(hp.arena[a:], v)
}
func (hp *Heap) getU64(a Addr) uint64 { return binary.LittleEndian.Uint64(hp.arena[a:]) }
func (hp *Heap) setU64(a Addr, v uint64) {
	binary.LittleEndian.PutUint64(hp.arena[a:], v)
}

// FieldBase returns the absolute address of the body of object a.
func (hp *Heap) FieldBase(a Addr) Addr {
	if hp.IsArray(a) {
		return a + ArrayHeader
	}
	return a + ScalarHeader
}

// GetByte reads a byte/boolean field.
func (hp *Heap) GetByte(a Addr, off int) int8 { return int8(hp.arena[hp.FieldBase(a)+Addr(off)]) }

// SetByte writes a byte/boolean field.
func (hp *Heap) SetByte(a Addr, off int, v int8) { hp.arena[hp.FieldBase(a)+Addr(off)] = byte(v) }

// GetInt reads an int field.
func (hp *Heap) GetInt(a Addr, off int) int32 {
	return int32(hp.getU32(hp.FieldBase(a) + Addr(off)))
}

// SetInt writes an int field.
func (hp *Heap) SetInt(a Addr, off int, v int32) {
	hp.setU32(hp.FieldBase(a)+Addr(off), uint32(v))
}

// GetLong reads a long field.
func (hp *Heap) GetLong(a Addr, off int) int64 {
	return int64(hp.getU64(hp.FieldBase(a) + Addr(off)))
}

// SetLong writes a long field.
func (hp *Heap) SetLong(a Addr, off int, v int64) {
	hp.setU64(hp.FieldBase(a)+Addr(off), uint64(v))
}

// GetDouble reads a double field.
func (hp *Heap) GetDouble(a Addr, off int) float64 {
	return math.Float64frombits(hp.getU64(hp.FieldBase(a) + Addr(off)))
}

// SetDouble writes a double field.
func (hp *Heap) SetDouble(a Addr, off int, v float64) {
	hp.setU64(hp.FieldBase(a)+Addr(off), math.Float64bits(v))
}

// GetRef reads a reference field.
func (hp *Heap) GetRef(a Addr, off int) Addr {
	return Addr(hp.getU64(hp.FieldBase(a) + Addr(off)))
}

// SetRef writes a reference field, applying the generational write barrier.
// Callers with a ThreadCtx in hand should prefer SetRefTC, which batches
// barrier entries thread-locally instead of taking mu per store.
func (hp *Heap) SetRef(a Addr, off int, v Addr) {
	slot := hp.FieldBase(a) + Addr(off)
	hp.setU64(slot, uint64(v))
	if hp.inOld(a) && hp.inYoung(v) {
		hp.mu.Lock()
		hp.remset[slot] = struct{}{}
		hp.mu.Unlock()
	}
}

// remBufSpill bounds the per-thread write-barrier buffer; a full buffer
// spills into the shared remset under mu.
const remBufSpill = 1024

// SetRefTC writes a reference field from mutator code. The generational
// write barrier records old->young slots in the thread's local buffer;
// buffers merge into the remset when a collection stops the world
// (drainRemBuffers) or when the buffer fills, so the hot store path takes
// no lock.
func (hp *Heap) SetRefTC(tc *ThreadCtx, a Addr, off int, v Addr) {
	slot := hp.FieldBase(a) + Addr(off)
	hp.setU64(slot, uint64(v))
	if hp.inOld(a) && hp.inYoung(v) {
		tc.remBuf = append(tc.remBuf, slot)
		if len(tc.remBuf) >= remBufSpill {
			tc.flushRemBuf()
		}
	}
}

// flushRemBuf spills the thread's write-barrier buffer into the shared
// remset. Called by the owning thread (spill, unregister); the stop-the-
// world drain in the collector uses drainRemBuffers instead.
func (tc *ThreadCtx) flushRemBuf() {
	if len(tc.remBuf) == 0 {
		return
	}
	hp := tc.hp
	hp.mu.Lock()
	for _, s := range tc.remBuf {
		hp.remset[s] = struct{}{}
	}
	hp.mu.Unlock()
	tc.remBuf = tc.remBuf[:0]
}

// ElemOffset computes the byte offset of array element i for element size
// es.
func ElemOffset(i, es int) int { return i * es }

// WriteBody copies data into the object body at off (bulk byte-array
// fills; no reference slots may be written this way).
func (hp *Heap) WriteBody(a Addr, off int, data []byte) {
	base := hp.FieldBase(a) + Addr(off)
	copy(hp.arena[base:], data)
}

// ReadBody copies n body bytes starting at off out of the object.
func (hp *Heap) ReadBody(a Addr, off, n int) []byte {
	base := hp.FieldBase(a) + Addr(off)
	out := make([]byte, n)
	copy(out, hp.arena[base:])
	return out
}

// CopyBody copies n body bytes between two objects (System.arraycopy for
// primitive arrays).
func (hp *Heap) CopyBody(src Addr, srcOff int, dst Addr, dstOff, n int) {
	sb := hp.FieldBase(src) + Addr(srcOff)
	db := hp.FieldBase(dst) + Addr(dstOff)
	copy(hp.arena[db:db+Addr(n)], hp.arena[sb:sb+Addr(n)])
}

// GetLock reads the lock word of object a. Callers (the VM's monitor
// implementation) serialize access with their own lock.
func (hp *Heap) GetLock(a Addr) uint32 { return hp.getU32(a + hdrLock) }

// SetLock stores the lock word of object a.
func (hp *Heap) SetLock(a Addr, v uint32) { hp.setU32(a+hdrLock, v) }

// Stats returns a snapshot of the heap counters.
func (hp *Heap) Stats() Stats {
	return Stats{
		AllocBytes:   hp.stats.allocBytes.Load(),
		AllocObjects: hp.stats.allocObjects.Load(),
		MinorGCs:     hp.stats.minorGCs.Load(),
		FullGCs:      hp.stats.fullGCs.Load(),
		GCTime:       time.Duration(hp.stats.gcNanos.Load()),
		Promoted:     hp.stats.promoted.Load(),
		MarkedNodes:  hp.stats.marked.Load(),
		PeakUsed:     hp.stats.peakUsed.Load(),
		LiveAfterGC:  hp.stats.liveAfterGC.Load(),
		HeapSize:     int64(len(hp.arena)),
	}
}

// ClassAllocCount returns how many instances of cls were ever allocated.
func (hp *Heap) ClassAllocCount(cls *lang.Class) int64 {
	return atomic.LoadInt64(&hp.classCounts[cls.ID])
}

// ArrayAllocCount returns how many arrays with element type elem were ever
// allocated.
func (hp *Heap) ArrayAllocCount(elem *lang.Type) int64 {
	idx := hp.ArrayTypeIndex(elem)
	return atomic.LoadInt64(&hp.arrCounts[idx])
}

// ClassAllocCounts returns the allocation count per class name (plus
// "[]T" entries for arrays of element type T), nonzero entries only — the
// paper's per-data-class allocation profile (§4.1), in the form the -json
// run report embeds.
func (hp *Heap) ClassAllocCounts() map[string]int64 {
	out := make(map[string]int64)
	for id := range hp.classCounts {
		if c := atomic.LoadInt64(&hp.classCounts[id]); c != 0 {
			out[hp.h.ClassList[id].Name] = c
		}
	}
	hp.arrMu.Lock()
	for idx, elem := range hp.arrTypes {
		if c := atomic.LoadInt64(&hp.arrCounts[idx]); c != 0 {
			out["[]"+elem.String()] = c
		}
	}
	hp.arrMu.Unlock()
	return out
}

// UsedBytes returns the bytes currently occupied (live + garbage).
func (hp *Heap) UsedBytes() int64 {
	hp.mu.Lock()
	defer hp.mu.Unlock()
	return int64(hp.oldPos-hp.oldBase) + int64(hp.youngPos-hp.youngBase) + hp.regionInUse
}
