package heap

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Collector implementation. Minor collections evacuate live nursery
// objects into the old generation (copying scavenge with promotion on
// first survival); full collections mark both generations and slide the
// old generation (Lisp-2 mark-compact), then evacuate nursery survivors
// behind it. Both run with the world stopped.

// collectSTW runs with all mutators parked.
func (hp *Heap) collectSTW(full bool) error {
	start := time.Now()
	var err error
	if !full {
		// A minor collection promotes at most the used nursery bytes; if
		// the old generation cannot absorb that, escalate to a full
		// collection.
		if int64(hp.oldEnd-hp.oldPos) < int64(hp.youngPos-hp.youngBase) {
			full = true
		}
	}
	promotedBefore := hp.stats.promoted.Load()
	if full {
		err = hp.fullGC()
		hp.stats.fullGCs.Add(1)
	} else {
		hp.minorGC()
		hp.stats.minorGCs.Add(1)
	}
	// Survival sampling reads the GC words of sampled nursery allocations
	// (forwarded == survived) while the world is still stopped.
	hp.sampleSurvival()
	pause := time.Since(start).Nanoseconds()
	hp.stats.gcNanos.Add(pause)
	hp.hPause.Observe(pause)
	if full {
		hp.hPauseFull.Observe(pause)
		hp.obs.Emit(obs.EvGC, "full", pause, hp.stats.liveAfterGC.Load(), 0)
	} else {
		hp.hPauseMinor.Observe(pause)
		hp.obs.Emit(obs.EvGC, "minor", pause, hp.stats.promoted.Load()-promotedBefore, 0)
	}
	return err
}

// refSlots calls f with the absolute address of every reference slot in
// the object at a.
func (hp *Heap) refSlots(a Addr, f func(slot Addr)) {
	tw := hp.getU32(a + hdrType)
	if tw&arrayBit != 0 {
		elem := hp.arrTypes[int(tw&^arrayBit)]
		if !elem.IsRef() {
			return
		}
		n := int(hp.getU32(a + 12))
		base := a + ArrayHeader
		for i := 0; i < n; i++ {
			f(base + Addr(i*8))
		}
		return
	}
	cls := hp.h.ClassList[int(tw)]
	base := a + ScalarHeader
	for _, fl := range cls.AllFields {
		if fl.Type.IsRef() {
			f(base + Addr(fl.Offset))
		}
	}
}

func (hp *Heap) visitAllRoots(visit func(Addr) Addr) {
	hp.rootsMu.Lock()
	roots := make([]RootSource, len(hp.roots))
	copy(roots, hp.roots)
	hp.rootsMu.Unlock()
	for _, r := range roots {
		r.VisitRoots(visit)
	}
}

// ---------------------------------------------------------------------------
// Minor collection

// drainRemBuffers merges every thread's write-barrier buffer into the
// remset. Runs with the world stopped: parked threads publish their
// buffers via the safepoint mutex, so the reads here are race-free.
func (hp *Heap) drainRemBuffers() {
	for tc := range hp.sp.threads {
		for _, s := range tc.remBuf {
			hp.remset[s] = struct{}{}
		}
		tc.remBuf = tc.remBuf[:0]
	}
}

func (hp *Heap) minorGC() {
	hp.drainRemBuffers()
	scanStart := hp.oldPos

	// copyYoung evacuates a nursery object to the old generation,
	// leaving a forwarding address in its GC word.
	var promotedBytes int64
	var copyYoung func(a Addr) Addr
	copyYoung = func(a Addr) Addr {
		if a == 0 || !hp.inYoung(a) {
			return a
		}
		if fwd := hp.getU32(a + hdrGC); fwd != 0 {
			return fwd
		}
		size := hp.objSize(a)
		dst := hp.oldPos
		hp.oldPos += Addr(size)
		copy(hp.arena[dst:int(dst)+size], hp.arena[a:int(a)+size])
		hp.setU32(a+hdrGC, dst)
		hp.stats.promoted.Add(1)
		hp.stats.marked.Add(1)
		promotedBytes += int64(size)
		return dst
	}

	hp.visitAllRoots(copyYoung)
	hp.cRemsetScanned.Add(int64(len(hp.remset)))
	for slot := range hp.remset {
		v := Addr(hp.getU64(slot))
		hp.setU64(slot, uint64(copyYoung(v)))
	}
	// Live epoch-region objects are extra roots: minor collections never
	// move them, but they may hold the only reference to a young object.
	hp.forEachRegionObject(func(a Addr) {
		hp.refSlots(a, func(slot Addr) {
			v := Addr(hp.getU64(slot))
			hp.setU64(slot, uint64(copyYoung(v)))
		})
	})
	// Cheney scan over the freshly promoted objects.
	for scan := scanStart; scan < hp.oldPos; {
		hp.refSlots(scan, func(slot Addr) {
			v := Addr(hp.getU64(slot))
			hp.setU64(slot, uint64(copyYoung(v)))
		})
		scan += Addr(hp.objSize(scan))
	}

	hp.youngPos = hp.youngBase
	hp.remset = make(map[Addr]struct{})
	hp.invalidateTLABs()
	hp.notePeakLocked()
	hp.cPromotedBytes.Add(promotedBytes)
}

// ---------------------------------------------------------------------------
// Full collection
//
// Marking uses a side bitmap (one bit per 8 heap bytes) set with
// compare-and-swap, so it can run on several workers — the parallel mark
// of the paper's collector. Forwarding addresses then use the whole GC
// header word.

// marked reports whether a's mark bit is set.
func (hp *Heap) marked(a Addr) bool {
	w := a / 8
	return atomic.LoadUint32(&hp.markBits[w/32])&(1<<(w%32)) != 0
}

// tryMark sets a's mark bit, reporting whether this call set it.
func (hp *Heap) tryMark(a Addr) bool {
	w := a / 8
	idx := w / 32
	bit := uint32(1) << (w % 32)
	for {
		old := atomic.LoadUint32(&hp.markBits[idx])
		if old&bit != 0 {
			return false
		}
		if atomic.CompareAndSwapUint32(&hp.markBits[idx], old, old|bit) {
			return true
		}
	}
}

func (hp *Heap) clearMarkBits() {
	for i := range hp.markBits {
		hp.markBits[i] = 0
	}
}

// markHeap traces the live set into the mark bitmap using hp.gcWorkers
// goroutines and returns the live nursery objects (for evacuation).
func (hp *Heap) markHeap() []Addr {
	type shared struct {
		mu    sync.Mutex
		cond  *sync.Cond
		stack []Addr
		idle  int
		done  bool
	}
	sh := &shared{}
	sh.cond = sync.NewCond(&sh.mu)

	// Seed from roots (single-threaded; root sources are not
	// thread-safe).
	hp.visitAllRoots(func(a Addr) Addr {
		if a != 0 && hp.tryMark(a) {
			sh.stack = append(sh.stack, a)
		}
		return a
	})
	// Epoch-region objects are roots too: the full collector neither moves
	// nor reclaims them (their space is reclaimed in bulk at EpochEnd).
	hp.forEachRegionObject(func(a Addr) {
		if hp.tryMark(a) {
			sh.stack = append(sh.stack, a)
		}
	})

	n := hp.gcWorkers
	if n < 1 {
		n = 1
	}
	liveYoung := make([][]Addr, n)
	markedCnt := make([]int64, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []Addr
			for {
				// Refill from the shared stack.
				sh.mu.Lock()
				for len(sh.stack) == 0 && !sh.done {
					sh.idle++
					if sh.idle == n {
						sh.done = true
						sh.cond.Broadcast()
						sh.mu.Unlock()
						return
					}
					sh.cond.Wait()
					sh.idle--
				}
				if sh.done {
					sh.mu.Unlock()
					return
				}
				grab := len(sh.stack)
				if grab > 256 {
					grab = 256
				}
				local = append(local[:0], sh.stack[len(sh.stack)-grab:]...)
				sh.stack = sh.stack[:len(sh.stack)-grab]
				sh.mu.Unlock()

				for len(local) > 0 {
					a := local[len(local)-1]
					local = local[:len(local)-1]
					markedCnt[w]++
					if hp.inYoung(a) {
						liveYoung[w] = append(liveYoung[w], a)
					}
					hp.refSlots(a, func(slot Addr) {
						child := Addr(hp.getU64(slot))
						if child != 0 && hp.tryMark(child) {
							local = append(local, child)
						}
					})
					// Donate surplus work from the tail (cheap slice cut).
					if len(local) > 2048 {
						half := len(local) / 2
						sh.mu.Lock()
						sh.stack = append(sh.stack, local[half:]...)
						sh.cond.Broadcast()
						sh.mu.Unlock()
						local = local[:half]
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var out []Addr
	var total int64
	for w := 0; w < n; w++ {
		out = append(out, liveYoung[w]...)
		total += markedCnt[w]
	}
	hp.stats.marked.Add(total)
	return out
}

func (hp *Heap) fullGC() error {
	// Phase 1: parallel mark into the bitmap; live nursery objects are
	// recorded for evacuation.
	liveYoung := hp.markHeap()
	defer hp.clearMarkBits()

	// Phase 2: compute forwarding addresses (stored in the whole GC
	// header word; liveness lives in the bitmap). Old generation slides
	// left; nursery survivors are placed right behind it.
	newPos := hp.oldBase
	liveBytes := int64(0)
	for a := hp.oldBase; a < hp.oldPos; {
		size := Addr(hp.objSize(a))
		if hp.marked(a) {
			hp.setU32(a+hdrGC, uint32(newPos))
			newPos += size
			liveBytes += int64(size)
		}
		a += size
	}
	for _, a := range liveYoung {
		size := Addr(hp.objSize(a))
		hp.setU32(a+hdrGC, uint32(newPos))
		newPos += size
		liveBytes += int64(size)
	}
	if newPos > hp.oldEnd {
		// The live set does not fit in the old generation: the program
		// has outgrown the heap.
		hp.clearMarks(liveYoung)
		return ErrOutOfMemory
	}

	// Phase 3: update references (roots and live-object slots) to
	// forwarding addresses while objects are still in place.
	fwd := func(a Addr) Addr {
		if a == 0 || hp.inRegion(a) {
			// Region objects never move; their GC word stays zero.
			return a
		}
		return hp.getU32(a + hdrGC)
	}
	hp.visitAllRoots(fwd)
	updateSlots := func(a Addr) {
		hp.refSlots(a, func(slot Addr) {
			hp.setU64(slot, uint64(fwd(Addr(hp.getU64(slot)))))
		})
	}
	for a := hp.oldBase; a < hp.oldPos; {
		size := Addr(hp.objSize(a))
		if hp.marked(a) {
			updateSlots(a)
		}
		a += size
	}
	for _, a := range liveYoung {
		updateSlots(a)
	}
	// Region objects stay put but their referents may move.
	hp.forEachRegionObject(updateSlots)

	// Phase 4: move. Slide the old generation in address order (dest <=
	// src), then evacuate nursery survivors.
	var movedBytes int64
	for a := hp.oldBase; a < hp.oldPos; {
		size := Addr(hp.objSize(a))
		if hp.marked(a) {
			dst := hp.getU32(a + hdrGC)
			if dst != a {
				copy(hp.arena[dst:dst+size], hp.arena[a:a+size])
				movedBytes += int64(size)
			}
			hp.setU32(dst+hdrGC, 0)
		}
		a += size
	}
	for _, a := range liveYoung {
		size := Addr(hp.objSize(a))
		dst := hp.getU32(a + hdrGC)
		copy(hp.arena[dst:dst+size], hp.arena[a:a+size])
		hp.setU32(dst+hdrGC, 0)
		movedBytes += int64(size)
	}
	hp.cEvacuated.Add(movedBytes)

	hp.oldPos = newPos
	hp.youngPos = hp.youngBase
	hp.remset = make(map[Addr]struct{})
	// Buffered barrier entries name pre-compaction slots; the nursery was
	// evacuated, so they are all stale — drop them with the remset.
	for tc := range hp.sp.threads {
		tc.remBuf = tc.remBuf[:0]
	}
	hp.invalidateTLABs()
	hp.stats.liveAfterGC.Store(liveBytes)
	hp.notePeakLocked()
	return nil
}

// clearMarks undoes forwarding words after a failed full collection so the
// heap remains walkable (the VM is about to fail with OOM anyway); the
// bitmap is cleared by fullGC's defer.
func (hp *Heap) clearMarks(liveYoung []Addr) {
	for a := hp.oldBase; a < hp.oldPos; {
		size := Addr(hp.objSize(a))
		hp.setU32(a+hdrGC, 0)
		a += size
	}
	for _, a := range liveYoung {
		hp.setU32(a+hdrGC, 0)
	}
}

// ForceGC runs a collection on behalf of tests and tools.
func (hp *Heap) ForceGC(tc *ThreadCtx, full bool) error {
	return hp.Collect(tc, full)
}

// LiveDataTypeObjects counts live objects whose class is in the given name
// set by walking the old generation; nursery objects are not counted (call
// after ForceGC for exact results). Used by the object-bound experiments.
func (hp *Heap) LiveDataTypeObjects(classes map[string]bool) int64 {
	hp.mu.Lock()
	defer hp.mu.Unlock()
	n := int64(0)
	for a := hp.oldBase; a < hp.oldPos; {
		size := Addr(hp.objSize(a))
		if cls := hp.ClassOf(a); cls != nil && classes[cls.Name] {
			n++
		}
		a += size
	}
	return n
}
