package heap

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

// newLifetimeHeap builds a heap with the given per-site classification in
// enforce mode (sites index 1..len).
func newLifetimeHeap(t *testing.T, size int, mode LifetimeMode, sites []Life) (*Heap, *ThreadCtx) {
	t.Helper()
	h := testHierarchy(t)
	hp := New(Config{HeapSize: size, Lifetimes: LifetimeConfig{Mode: mode, Sites: sites}}, h)
	tc := hp.RegisterThread()
	tc.EndExternal()
	t.Cleanup(func() {
		tc.BeginExternal()
		hp.UnregisterThread(tc)
	})
	return hp, tc
}

func TestRegionLayoutCarvedOnlyWhenEnforcing(t *testing.T) {
	sites := []Life{LifeUnknown, LifeEpoch}
	h := testHierarchy(t)
	for _, tc := range []struct {
		mode       LifetimeMode
		wantRegion bool
	}{
		{LifetimeOff, false},
		{LifetimeObserve, false},
		{LifetimeEnforce, true},
	} {
		hp := New(Config{HeapSize: 16 << 20, Lifetimes: LifetimeConfig{Mode: tc.mode, Sites: sites}}, h)
		hasRegion := hp.regionEnd > hp.regionBase
		if hasRegion != tc.wantRegion {
			t.Errorf("mode %v: region carved = %v, want %v", tc.mode, hasRegion, tc.wantRegion)
		}
		if !hasRegion && hp.youngBase != hp.oldEnd {
			t.Errorf("mode %v: youngBase %#x != oldEnd %#x with no region", tc.mode, hp.youngBase, hp.oldEnd)
		}
		if hasRegion && (hp.youngBase != hp.regionEnd || hp.regionBase != hp.oldEnd) {
			t.Errorf("mode %v: bad region geometry [%#x,%#x) youngBase %#x oldEnd %#x",
				tc.mode, hp.regionBase, hp.regionEnd, hp.youngBase, hp.oldEnd)
		}
	}
}

func TestPretenuredSiteAllocatesOld(t *testing.T) {
	hp, tc := newLifetimeHeap(t, 16<<20, LifetimeEnforce, []Life{LifeUnknown, LifeLong})
	node := hp.Hierarchy().Class("Node")
	a, err := hp.AllocObject(tc, node, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !hp.inOld(a) {
		t.Fatalf("long-lived site allocated at %#x, not in old gen", a)
	}
	// An unknown site still goes young.
	b, _ := hp.AllocObject(tc, node, 0)
	if !hp.inYoung(b) {
		t.Fatalf("unsited allocation at %#x, not in nursery", b)
	}
	tc.flushAllocStats()
	if got := hp.cLifePretenured.Load(); got != 1 {
		t.Fatalf("pretenured counter = %d, want 1", got)
	}
}

func TestEpochRegionBulkReset(t *testing.T) {
	hp, tc := newLifetimeHeap(t, 16<<20, LifetimeEnforce, []Life{LifeUnknown, LifeEpoch})
	node := hp.Hierarchy().Class("Node")

	// Outside any epoch the site falls back to the nursery and is demoted.
	a, _ := hp.AllocObject(tc, node, 1)
	if !hp.inYoung(a) {
		t.Fatalf("epoch site outside epoch allocated at %#x, want nursery", a)
	}
	if got := hp.cLifeDemoted.Load(); got != 1 {
		t.Fatalf("demotions = %d, want 1 (allocation at epoch depth 0)", got)
	}

	// A fresh heap (site not demoted): inside an epoch the site allocates
	// in the region, and EpochEnd returns the chunks.
	hp2, tc2 := newLifetimeHeap(t, 16<<20, LifetimeEnforce, []Life{LifeUnknown, LifeEpoch})
	node2 := hp2.Hierarchy().Class("Node")
	free0 := len(hp2.freeChunks)
	hp2.EpochBegin(tc2)
	b, err := hp2.AllocObject(tc2, node2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !hp2.inRegion(b) {
		t.Fatalf("epoch-local allocation at %#x, not in region [%#x,%#x)", b, hp2.regionBase, hp2.regionEnd)
	}
	if len(hp2.freeChunks) != free0-1 {
		t.Fatalf("free chunks %d, want %d after first region alloc", len(hp2.freeChunks), free0-1)
	}
	hp2.EpochEnd(tc2)
	if len(hp2.freeChunks) != free0 {
		t.Fatalf("free chunks %d, want %d after EpochEnd", len(hp2.freeChunks), free0)
	}
	tc2.flushAllocStats()
	if got := hp2.cLifeRegion.Load(); got != 1 {
		t.Fatalf("region alloc counter = %d, want 1", got)
	}
	if tc2.epochDepth != 0 || len(tc2.epochs) != 0 {
		t.Fatalf("epoch state not reset: depth %d, %d levels", tc2.epochDepth, len(tc2.epochs))
	}
}

func TestNestedEpochsResetInnermostOnly(t *testing.T) {
	hp, tc := newLifetimeHeap(t, 16<<20, LifetimeEnforce, []Life{LifeUnknown, LifeEpoch})
	node := hp.Hierarchy().Class("Node")
	hp.EpochBegin(tc)
	outer, _ := hp.AllocObject(tc, node, 1)
	hp.EpochBegin(tc)
	inner, _ := hp.AllocObject(tc, node, 1)
	if !hp.inRegion(outer) || !hp.inRegion(inner) {
		t.Fatalf("nested epoch allocs not in region: %#x %#x", outer, inner)
	}
	hp.SetInt(outer, hp.Hierarchy().Class("Node").FindField("val").Offset, 7)
	hp.EpochEnd(tc) // inner dies
	if got := hp.GetInt(outer, hp.Hierarchy().Class("Node").FindField("val").Offset); got != 7 {
		t.Fatalf("outer-epoch object corrupted by inner EpochEnd: val = %d", got)
	}
	hp.EpochEnd(tc)
}

func TestRegionSurvivesMinorGC(t *testing.T) {
	hp, tc := newLifetimeHeap(t, 16<<20, LifetimeEnforce, []Life{LifeUnknown, LifeEpoch})
	node := hp.Hierarchy().Class("Node")
	next := node.FindField("next")
	val := node.FindField("val")

	hp.EpochBegin(tc)
	r, _ := hp.AllocObject(tc, node, 1) // region object
	y, _ := hp.AllocObject(tc, node, 0) // young object, only ref held by r
	hp.SetInt(y, val.Offset, 99)
	hp.SetRefTC(tc, r, next.Offset, y)

	if err := hp.ForceGC(tc, false); err != nil {
		t.Fatal(err)
	}
	// The region object must not have moved; its young referent must have
	// been promoted (region chunks are minor-GC roots) and the slot updated.
	if !hp.inRegion(r) {
		t.Fatalf("region object moved by minor GC: %#x", r)
	}
	y2 := hp.GetRef(r, next.Offset)
	if !hp.inOld(y2) {
		t.Fatalf("young referent of region object at %#x, want promoted to old", y2)
	}
	if got := hp.GetInt(y2, val.Offset); got != 99 {
		t.Fatalf("promoted object corrupted: val = %d", got)
	}
	hp.EpochEnd(tc)
}

func TestRegionSurvivesFullGC(t *testing.T) {
	hp, tc := newLifetimeHeap(t, 16<<20, LifetimeEnforce, []Life{LifeUnknown, LifeEpoch})
	node := hp.Hierarchy().Class("Node")
	next := node.FindField("next")
	val := node.FindField("val")

	hp.EpochBegin(tc)
	r, _ := hp.AllocObject(tc, node, 1)
	y, _ := hp.AllocObject(tc, node, 0)
	hp.SetInt(y, val.Offset, 123)
	hp.SetRefTC(tc, r, next.Offset, y)
	hp.SetInt(r, val.Offset, 321)

	if err := hp.ForceGC(tc, true); err != nil {
		t.Fatal(err)
	}
	if !hp.inRegion(r) {
		t.Fatalf("region object moved by full GC: %#x", r)
	}
	if got := hp.GetInt(r, val.Offset); got != 321 {
		t.Fatalf("region object corrupted by full GC: val = %d", got)
	}
	y2 := hp.GetRef(r, next.Offset)
	if y2 == 0 || hp.inRegion(y2) {
		t.Fatalf("region object's referent slot %#x not updated to evacuated copy", y2)
	}
	if got := hp.GetInt(y2, val.Offset); got != 123 {
		t.Fatalf("referent corrupted: val = %d", got)
	}
	hp.EpochEnd(tc)
}

func TestRegionOverflowFallsBackToNursery(t *testing.T) {
	hp, tc := newLifetimeHeap(t, 16<<20, LifetimeEnforce, []Life{LifeUnknown, LifeEpoch})
	hp.EpochBegin(tc)
	// Exhaust every chunk, then keep allocating: no error, nursery takes
	// the spill.
	chunks := len(hp.freeChunks) + 1
	perChunk := regionChunkSize / roundUp8(ArrayHeader+1024*4)
	sawYoung := false
	for i := 0; i < chunks*(perChunk+1); i++ {
		a, err := hp.AllocArray(tc, lang.IntType, 1024, 1)
		if err != nil {
			t.Fatal(err)
		}
		if hp.inYoung(a) {
			sawYoung = true
		}
	}
	if !sawYoung {
		t.Fatal("region exhaustion never spilled into the nursery")
	}
	hp.EpochEnd(tc)
}

func TestSurvivalSamplingDemotesDeadLongSites(t *testing.T) {
	hp, tc := newLifetimeHeap(t, 16<<20, LifetimeObserve, []Life{LifeUnknown, LifeLong})
	node := hp.Hierarchy().Class("Node")
	// In observe mode the long-lived site allocates young; none of the
	// objects survive, so after a GC with >= demoteSampleMin samples the
	// site must be demoted. Survival records are subsampled 1 in
	// survivalSampleEvery, so over-allocate accordingly.
	for i := 0; i < demoteSampleMin*survivalSampleEvery*2; i++ {
		if _, err := hp.AllocObject(tc, node, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := hp.ForceGC(tc, false); err != nil {
		t.Fatal(err)
	}
	if got := hp.lifeOf(1); got != LifeUnknown {
		t.Fatalf("dead long-lived site not demoted: %v", got)
	}
	if hp.cLifeDemoted.Load() == 0 {
		t.Fatal("demotion counter not bumped")
	}
	prof := hp.SiteProfile()
	if len(prof) != 1 || prof[0].Site != 1 {
		t.Fatalf("site profile = %+v, want site 1 only", prof)
	}
	if prof[0].Sampled < demoteSampleMin || prof[0].Survived != 0 {
		t.Fatalf("profile sampled/survived = %d/%d", prof[0].Sampled, prof[0].Survived)
	}
}

func TestRegionViolationWitness(t *testing.T) {
	hp, tc := newLifetimeHeap(t, 16<<20, LifetimeEnforce, []Life{LifeUnknown, LifeEpoch})
	hp.SetVerifyRegions(true)
	node := hp.Hierarchy().Class("Node")

	// Plant a dangling reference: an old-generation object points at an
	// epoch-local object whose region is about to die. (A correct static
	// classification makes this impossible; the verifier is the witness
	// for the golden test.)
	old, _ := hp.AllocArray(tc, lang.ClassType("Node"), 8192, 0) // large => old gen
	if !hp.inOld(old) {
		t.Fatalf("setup: array at %#x not in old gen", old)
	}
	hp.EpochBegin(tc)
	r, _ := hp.AllocObject(tc, node, 1)
	if !hp.inRegion(r) {
		t.Fatalf("setup: %#x not in region", r)
	}
	hp.SetRefTC(tc, old, 0, r)

	defer func() {
		v, ok := recover().(*RegionViolation)
		if !ok {
			t.Fatalf("EpochEnd did not panic with *RegionViolation")
		}
		if v.To != r || v.From != old || v.Source != "old" {
			t.Fatalf("witness = %+v, want From=%#x To=%#x Source=old", v, old, r)
		}
		if !strings.Contains(v.Error(), "still references dead epoch region") {
			t.Fatalf("witness message = %q", v.Error())
		}
		// Clean up the dangling slot so the deferred UnregisterThread's
		// releaseEpochs does not trip anything else.
		hp.SetRef(old, 0, 0)
	}()
	hp.EpochEnd(tc)
}

func TestResetRestoresStaticClassification(t *testing.T) {
	h := testHierarchy(t)
	hp := New(Config{HeapSize: 16 << 20, Lifetimes: LifetimeConfig{Mode: LifetimeEnforce, Sites: []Life{LifeUnknown, LifeEpoch, LifeLong}}}, h)
	tc := hp.RegisterThread()
	tc.EndExternal()
	node := h.Class("Node")
	// Demote site 1 by allocating outside an epoch.
	if _, err := hp.AllocObject(tc, node, 1); err != nil {
		t.Fatal(err)
	}
	if hp.lifeOf(1) != LifeUnknown {
		t.Fatal("site 1 not demoted")
	}
	tc.BeginExternal()
	hp.UnregisterThread(tc)
	if err := hp.Reset(nil, nil); err != nil {
		t.Fatal(err)
	}
	if hp.lifeOf(1) != LifeEpoch || hp.lifeOf(2) != LifeLong {
		t.Fatalf("reset did not restore static classification: %v %v", hp.lifeOf(1), hp.lifeOf(2))
	}
	if got := hp.cLifeDemoted.Load(); got != 0 {
		t.Fatalf("counters not rebound on reset: demotions = %d", got)
	}
	if free, want := len(hp.freeChunks), int(hp.regionEnd-hp.regionBase)/regionChunkSize; free != want {
		t.Fatalf("free chunks %d, want %d after reset", free, want)
	}
}
