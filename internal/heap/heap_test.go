package heap

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/faults"
	"repro/internal/lang"
)

// testHierarchy builds a tiny hierarchy: Object, Node{int val; Node next;
// Node[] kids}.
func testHierarchy(t *testing.T) *lang.Hierarchy {
	t.Helper()
	src := `
class Object { }
class Node {
    int val;
    Node next;
    Node[] kids;
}
`
	f, err := lang.Parse("t.fj", src)
	if err != nil {
		t.Fatal(err)
	}
	h, err := lang.BuildHierarchy(f)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func newTestHeap(t *testing.T, size int) (*Heap, *ThreadCtx) {
	h := testHierarchy(t)
	hp := New(Config{HeapSize: size}, h)
	tc := hp.RegisterThread()
	tc.EndExternal()
	t.Cleanup(func() {
		tc.BeginExternal()
		hp.UnregisterThread(tc)
	})
	return hp, tc
}

func TestAllocAndFieldAccess(t *testing.T) {
	hp, tc := newTestHeap(t, 4<<20)
	node := hp.Hierarchy().Class("Node")
	a, err := hp.AllocObject(tc, node, 0)
	if err != nil {
		t.Fatal(err)
	}
	val := node.FindField("val")
	next := node.FindField("next")
	hp.SetInt(a, val.Offset, -42)
	if got := hp.GetInt(a, val.Offset); got != -42 {
		t.Fatalf("val = %d", got)
	}
	if hp.GetRef(a, next.Offset) != 0 {
		t.Fatal("fresh ref field not null")
	}
	b, _ := hp.AllocObject(tc, node, 0)
	hp.SetRef(a, next.Offset, b)
	if hp.GetRef(a, next.Offset) != b {
		t.Fatal("ref field roundtrip failed")
	}
	if hp.ClassOf(a) != node {
		t.Fatal("ClassOf wrong")
	}
}

func TestArrayAlloc(t *testing.T) {
	hp, tc := newTestHeap(t, 4<<20)
	arr, err := hp.AllocArray(tc, lang.IntType, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !hp.IsArray(arr) || hp.ArrayLen(arr) != 100 {
		t.Fatal("bad array header")
	}
	for i := 0; i < 100; i++ {
		hp.SetInt(arr, i*4, int32(i*i))
	}
	for i := 0; i < 100; i++ {
		if hp.GetInt(arr, i*4) != int32(i*i) {
			t.Fatalf("elem %d wrong", i)
		}
	}
}

func TestHeaderSizes(t *testing.T) {
	// The paper's space argument: 12-byte scalar headers, 16-byte array
	// headers.
	if ScalarHeader != 12 || ArrayHeader != 16 {
		t.Fatalf("headers %d/%d", ScalarHeader, ArrayHeader)
	}
}

// TestGCPreservesRandomGraph is the core GC property test: build a random
// object graph, force collections, verify the graph is intact.
func TestGCPreservesRandomGraph(t *testing.T) {
	check := func(seed int64) bool {
		hp, tc := newTestHeap(t, 8<<20)
		node := hp.Hierarchy().Class("Node")
		val := node.FindField("val")
		next := node.FindField("next")

		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		roots := make([]Addr, n)
		hp.AddRoots(RootFunc(func(visit func(Addr) Addr) {
			for i := range roots {
				roots[i] = visit(roots[i])
			}
		}))
		//

		// Build chains hanging off each root with known values.
		for i := range roots {
			a, err := hp.AllocObject(tc, node, 0)
			if err != nil {
				return false
			}
			hp.SetInt(a, val.Offset, int32(i*1000))
			roots[i] = a
			cur := a
			depth := rng.Intn(10)
			for d := 1; d <= depth; d++ {
				b, err := hp.AllocObject(tc, node, 0)
				if err != nil {
					return false
				}
				hp.SetInt(b, val.Offset, int32(i*1000+d))
				hp.SetRef(cur, next.Offset, b)
				cur = b
			}
			// Allocate garbage in between.
			for g := 0; g < rng.Intn(20); g++ {
				if _, err := hp.AllocObject(tc, node, 0); err != nil {
					return false
				}
			}
		}
		if err := hp.ForceGC(tc, false); err != nil {
			return false
		}
		if err := hp.ForceGC(tc, true); err != nil {
			return false
		}
		// Verify all chains.
		for i := range roots {
			cur := roots[i]
			d := 0
			for cur != 0 {
				if hp.GetInt(cur, val.Offset) != int32(i*1000+d) {
					t.Logf("seed %d: chain %d depth %d corrupted", seed, i, d)
					return false
				}
				cur = hp.GetRef(cur, next.Offset)
				d++
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestGCShadowModel interleaves random allocation, pointer mutation, and
// minor/full collections, checking the heap against a Go shadow model
// after every collection. This covers barrier/remset/compaction
// interactions that the chain test cannot reach.
func TestGCShadowModel(t *testing.T) {
	type shadowNode struct {
		val  int32
		next int // shadow index of next, -1 for null
	}
	run := func(seed int64) {
		hp, tc := newTestHeap(t, 8<<20)
		node := hp.Hierarchy().Class("Node")
		valF := node.FindField("val")
		nextF := node.FindField("next")
		rng := rand.New(rand.NewSource(seed))

		var shadow []shadowNode
		var addrs []Addr // addrs[i] mirrors shadow[i]; updated as roots
		hp.AddRoots(RootFunc(func(visit func(Addr) Addr) {
			for i := range addrs {
				addrs[i] = visit(addrs[i])
			}
		}))

		verify := func(step int) {
			for i := range shadow {
				a := addrs[i]
				if hp.GetInt(a, valF.Offset) != shadow[i].val {
					t.Fatalf("seed %d step %d: node %d val %d want %d",
						seed, step, i, hp.GetInt(a, valF.Offset), shadow[i].val)
				}
				got := hp.GetRef(a, nextF.Offset)
				if shadow[i].next == -1 {
					if got != 0 {
						t.Fatalf("seed %d step %d: node %d next not null", seed, step, i)
					}
				} else if got != addrs[shadow[i].next] {
					t.Fatalf("seed %d step %d: node %d next points wrong", seed, step, i)
				}
			}
		}

		for step := 0; step < 400; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // allocate a tracked node
				a, err := hp.AllocObject(tc, node, 0)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				v := int32(rng.Int31())
				hp.SetInt(a, valF.Offset, v)
				addrs = append(addrs, a)
				shadow = append(shadow, shadowNode{val: v, next: -1})
			case 4, 5: // mutate a next pointer
				if len(shadow) > 1 {
					i := rng.Intn(len(shadow))
					j := rng.Intn(len(shadow))
					hp.SetRef(addrs[i], nextF.Offset, addrs[j])
					shadow[i].next = j
				}
			case 6: // null out a pointer
				if len(shadow) > 0 {
					i := rng.Intn(len(shadow))
					hp.SetRef(addrs[i], nextF.Offset, 0)
					shadow[i].next = -1
				}
			case 7: // garbage
				for k := 0; k < rng.Intn(30); k++ {
					if _, err := hp.AllocObject(tc, node, 0); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			case 8: // minor GC
				if err := hp.ForceGC(tc, false); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				verify(step)
			case 9: // full GC
				if err := hp.ForceGC(tc, true); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				verify(step)
			}
		}
		if err := hp.ForceGC(tc, true); err != nil {
			t.Fatal(err)
		}
		verify(-1)
	}
	for seed := int64(0); seed < 15; seed++ {
		run(seed)
	}
}

func TestParallelAndSerialMarkAgree(t *testing.T) {
	// The same object graph collected with 1 and with 4 mark workers must
	// preserve identical structure and report the same live size.
	build := func(workers int) (*Heap, int64) {
		h := testHierarchy(t)
		hp := New(Config{HeapSize: 8 << 20, GCWorkers: workers}, h)
		tc := hp.RegisterThread()
		tc.EndExternal()
		defer func() {
			tc.BeginExternal()
			hp.UnregisterThread(tc)
		}()
		node := h.Class("Node")
		val := node.FindField("val")
		next := node.FindField("next")
		kids := node.FindField("kids")
		roots := make([]Addr, 8)
		hp.AddRoots(RootFunc(func(visit func(Addr) Addr) {
			for i := range roots {
				roots[i] = visit(roots[i])
			}
		}))
		// A dag: chains with cross links and a shared array.
		arr, _ := hp.AllocArray(tc, lang.ClassType("Node"), 16, 0)
		for i := range roots {
			a, _ := hp.AllocObject(tc, node, 0)
			hp.SetInt(a, val.Offset, int32(i))
			hp.SetRef(a, kids.Offset, arr)
			roots[i] = a
			cur := a
			for d := 0; d < 200; d++ {
				b, _ := hp.AllocObject(tc, node, 0)
				hp.SetInt(b, val.Offset, int32(i*1000+d))
				hp.SetRef(cur, next.Offset, b)
				if d%17 == 0 {
					hp.SetRef(arr, (d%16)*8, b)
				}
				cur = b
			}
		}
		if err := hp.ForceGC(tc, true); err != nil {
			t.Fatal(err)
		}
		// Verify chains.
		for i := range roots {
			cur := roots[i]
			if hp.GetInt(cur, val.Offset) != int32(i) {
				t.Fatalf("workers=%d: root %d corrupted", workers, i)
			}
			cur = hp.GetRef(cur, next.Offset)
			d := 0
			for cur != 0 {
				if hp.GetInt(cur, val.Offset) != int32(i*1000+d) {
					t.Fatalf("workers=%d: chain %d depth %d corrupted", workers, i, d)
				}
				cur = hp.GetRef(cur, next.Offset)
				d++
			}
			if d != 200 {
				t.Fatalf("workers=%d: chain %d lost nodes (%d)", workers, i, d)
			}
		}
		return hp, hp.Stats().LiveAfterGC
	}
	_, live1 := build(1)
	_, live4 := build(4)
	if live1 != live4 {
		t.Fatalf("live bytes differ: serial %d parallel %d", live1, live4)
	}
}

func TestGCReclaimsGarbage(t *testing.T) {
	hp, tc := newTestHeap(t, 8<<20)
	node := hp.Hierarchy().Class("Node")
	// No roots: everything is garbage.
	for i := 0; i < 100000; i++ {
		if _, err := hp.AllocObject(tc, node, 0); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if err := hp.ForceGC(tc, true); err != nil {
		t.Fatal(err)
	}
	st := hp.Stats()
	if st.LiveAfterGC != 0 {
		t.Fatalf("live after GC = %d, want 0", st.LiveAfterGC)
	}
	if st.MinorGCs+st.FullGCs == 0 {
		t.Fatal("no collections happened")
	}
}

func TestOldToYoungBarrier(t *testing.T) {
	hp, tc := newTestHeap(t, 8<<20)
	node := hp.Hierarchy().Class("Node")
	val := node.FindField("val")
	next := node.FindField("next")
	var root Addr
	hp.AddRoots(RootFunc(func(visit func(Addr) Addr) {
		root = visit(root)
	}))
	a, _ := hp.AllocObject(tc, node, 0)
	root = a
	hp.SetInt(root, val.Offset, 7)
	// Promote root to the old generation.
	if err := hp.ForceGC(tc, false); err != nil {
		t.Fatal(err)
	}
	// New young object referenced ONLY from the old object: the write
	// barrier must keep it alive across a minor collection.
	b, _ := hp.AllocObject(tc, node, 0)
	hp.SetInt(b, val.Offset, 13)
	hp.SetRef(root, next.Offset, b)
	if err := hp.ForceGC(tc, false); err != nil {
		t.Fatal(err)
	}
	got := hp.GetRef(root, next.Offset)
	if got == 0 || hp.GetInt(got, val.Offset) != 13 {
		t.Fatal("write barrier lost an old->young reference")
	}
}

func TestOutOfMemory(t *testing.T) {
	hp, tc := newTestHeap(t, 2<<20)
	node := hp.Hierarchy().Class("Node")
	kids := node.FindField("kids")
	var root Addr
	hp.AddRoots(RootFunc(func(visit func(Addr) Addr) {
		root = visit(root)
	}))
	a, err := hp.AllocObject(tc, node, 0)
	if err != nil {
		t.Fatal(err)
	}
	root = a
	// Keep a growing live array chain until the heap cannot hold it.
	for i := 0; ; i++ {
		arr, err := hp.AllocArray(tc, lang.ClassType("Node"), 4096, 0)
		if err != nil {
			if err != ErrOutOfMemory {
				t.Fatalf("wrong error: %v", err)
			}
			return
		}
		// Link to keep alive: kids field of a fresh node.
		n, err := hp.AllocObject(tc, node, 0)
		if err != nil {
			if err != ErrOutOfMemory {
				t.Fatalf("wrong error: %v", err)
			}
			return
		}
		hp.SetRef(n, kids.Offset, arr)
		hp.SetRef(n, node.FindField("next").Offset, root)
		root = n
		if i > 10000 {
			t.Fatal("never ran out of memory")
		}
	}
}

func TestConcurrentAllocAndGC(t *testing.T) {
	h := testHierarchy(t)
	hp := New(Config{HeapSize: 16 << 20}, h)
	node := h.Class("Node")
	val := node.FindField("val")

	const nThreads = 8
	const perThread = 20000
	var wg sync.WaitGroup
	errs := make(chan error, nThreads)
	for i := 0; i < nThreads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tc := hp.RegisterThread()
			tc.EndExternal()
			defer func() {
				tc.BeginExternal()
				hp.UnregisterThread(tc)
			}()
			for j := 0; j < perThread; j++ {
				a, err := hp.AllocObject(tc, node, 0)
				if err != nil {
					errs <- err
					return
				}
				hp.SetInt(a, val.Offset, int32(id))
				if hp.GetInt(a, val.Offset) != int32(id) {
					errs <- ErrOutOfMemory
					return
				}
				tc.Safepoint()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := hp.Stats()
	if st.AllocObjects != nThreads*perThread {
		t.Fatalf("alloc count %d want %d", st.AllocObjects, nThreads*perThread)
	}
	if st.MinorGCs+st.FullGCs == 0 {
		t.Fatal("expected collections under churn")
	}
}

func TestArrayElementWriteBarrier(t *testing.T) {
	hp, tc := newTestHeap(t, 8<<20)
	node := hp.Hierarchy().Class("Node")
	val := node.FindField("val")
	var root Addr
	hp.AddRoots(RootFunc(func(visit func(Addr) Addr) {
		root = visit(root)
	}))
	arr, _ := hp.AllocArray(tc, lang.ClassType("Node"), 8, 0)
	root = arr
	if err := hp.ForceGC(tc, false); err != nil { // promote the array
		t.Fatal(err)
	}
	arr = root
	young, _ := hp.AllocObject(tc, node, 0)
	hp.SetInt(young, val.Offset, 99)
	hp.SetRef(arr, 3*8, young) // old array -> young element
	if err := hp.ForceGC(tc, false); err != nil {
		t.Fatal(err)
	}
	got := hp.GetRef(root, 3*8)
	if got == 0 || hp.GetInt(got, val.Offset) != 99 {
		t.Fatal("array element barrier lost old->young reference")
	}
}

func TestAllocationCounters(t *testing.T) {
	hp, tc := newTestHeap(t, 8<<20)
	node := hp.Hierarchy().Class("Node")
	for i := 0; i < 7; i++ {
		if _, err := hp.AllocObject(tc, node, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := hp.AllocArray(tc, lang.IntType, 4, 0); err != nil {
			t.Fatal(err)
		}
	}
	tc.FlushStats() // allocation counters batch thread-locally
	if hp.ClassAllocCount(node) != 7 {
		t.Fatalf("class count %d", hp.ClassAllocCount(node))
	}
	if hp.ArrayAllocCount(lang.IntType) != 3 {
		t.Fatalf("array count %d", hp.ArrayAllocCount(lang.IntType))
	}
}

func TestLiveDataTypeObjects(t *testing.T) {
	hp, tc := newTestHeap(t, 8<<20)
	node := hp.Hierarchy().Class("Node")
	roots := make([]Addr, 5)
	hp.AddRoots(RootFunc(func(visit func(Addr) Addr) {
		for i := range roots {
			roots[i] = visit(roots[i])
		}
	}))
	for i := range roots {
		a, _ := hp.AllocObject(tc, node, 0)
		roots[i] = a
	}
	for i := 0; i < 100; i++ { // garbage
		if _, err := hp.AllocObject(tc, node, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := hp.ForceGC(tc, true); err != nil {
		t.Fatal(err)
	}
	n := hp.LiveDataTypeObjects(map[string]bool{"Node": true})
	if n != 5 {
		t.Fatalf("live census %d want 5", n)
	}
}

func TestPeakTracksUsage(t *testing.T) {
	hp, tc := newTestHeap(t, 8<<20)
	node := hp.Hierarchy().Class("Node")
	for i := 0; i < 1000; i++ {
		if _, err := hp.AllocObject(tc, node, 0); err != nil {
			t.Fatal(err)
		}
	}
	if hp.Stats().PeakUsed == 0 {
		t.Fatal("peak usage not tracked")
	}
}

func TestInjectedAllocFault(t *testing.T) {
	h := testHierarchy(t)
	inj := faults.New(&faults.Config{Seed: 7, AllocAt: 1})
	hp := New(Config{HeapSize: 4 << 20, Faults: inj}, h)
	tc := hp.RegisterThread()
	tc.EndExternal()
	defer func() {
		tc.BeginExternal()
		hp.UnregisterThread(tc)
	}()
	node := hp.Hierarchy().Class("Node")
	// The first slow-path allocation is the scheduled fault: it must fail
	// with the same sentinel a real exhaustion produces.
	_, err := hp.AllocObject(tc, node, 0)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// A one-shot schedule leaves the heap fully usable afterwards.
	if _, err := hp.AllocObject(tc, node, 0); err != nil {
		t.Fatal(err)
	}
	if got := inj.Fires()[string(faults.HeapAlloc)]; got != 1 {
		t.Fatalf("injector recorded %d heap.alloc fires, want 1", got)
	}
}
