package heap

import (
	"fmt"
	"sync/atomic"
)

// Lifetime-guided allocation: pretenuring and per-epoch bump regions.
//
// The static-analysis layer (internal/analysis) classifies every numbered
// allocation site as epoch-local, long-lived, or unknown; the VM forwards
// the classification here as a LifetimeConfig. The heap consumes it in two
// ways:
//
//   - pretenuring (enforce mode): long-lived sites allocate straight into
//     the old generation, skipping the nursery and therefore every minor-GC
//     evacuation copy the object would otherwise pay (NG2C-style);
//
//   - epoch regions (enforce mode): epoch-local sites allocate from a
//     per-thread bump arena tied to the innermost epoch (iteration). When
//     the VM signals the iteration boundary (EpochEnd), the arena is
//     bulk-reset — no tracing, no copying, exactly the reclamation model
//     the off-heap page store uses for data objects (§2.2 of the paper),
//     applied to the control heap.
//
// Placement never changes program semantics: addresses are not program
// values beyond identity, objects are never moved out from under a live
// reference, and an epoch-local proof guarantees the value is dead before
// its region resets. A lightweight profiler cross-checks the static story
// at runtime: per-site allocation and survival counters, and demotion of
// mispredicted sites back to unknown (observe mode measures and demotes
// without changing placement; that is the default facade.Run mode).

// LifetimeMode selects how much of the lifetime machinery is active.
type LifetimeMode uint8

// Lifetime modes.
const (
	// LifetimeOff disables classification consumption entirely.
	LifetimeOff LifetimeMode = iota
	// LifetimeObserve profiles sites and demotes mispredictions but keeps
	// every allocation on the default path (bit-identical layout to off).
	LifetimeObserve
	// LifetimeEnforce additionally routes long-lived sites to the old
	// generation and epoch-local sites to per-epoch regions.
	LifetimeEnforce
)

func (m LifetimeMode) String() string {
	switch m {
	case LifetimeObserve:
		return "observe"
	case LifetimeEnforce:
		return "enforce"
	default:
		return "off"
	}
}

// Life is the heap's view of a site classification (kept free of an
// internal/ir dependency; the VM converts).
type Life uint8

// Site lifetime classes.
const (
	LifeUnknown Life = iota
	LifeEpoch
	LifeLong
)

func (l Life) String() string {
	switch l {
	case LifeEpoch:
		return "epoch-local"
	case LifeLong:
		return "long-lived"
	default:
		return "unknown"
	}
}

// LifetimeConfig carries the per-site classification into the heap.
type LifetimeConfig struct {
	Mode LifetimeMode
	// Sites is indexed by allocation-site ID (index 0 unused). Nil or
	// empty disables lifetime handling regardless of Mode.
	Sites []Life
}

// SiteStats is one site's runtime allocation profile.
type SiteStats struct {
	Site     int32
	Life     Life  // current (post-demotion) classification
	Allocs   int64 // objects allocated at the site
	Bytes    int64 // bytes allocated at the site
	Sampled  int64 // young allocations sampled for survival
	Survived int64 // sampled allocations that survived a collection
}

// Region geometry. Chunks are handed to threads one at a time and walked
// object-by-object by the collector, exactly like TLABs, so the chunk size
// bounds both fragmentation and the largest region-allocable object.
const (
	regionChunkSize = 16 << 10
	// maxSurvivalSamples bounds the per-thread survival sample buffer per
	// GC cycle; sampling is for demotion decisions, not exact counts.
	maxSurvivalSamples = 4096
	// survivalSampleEvery subsamples the survival records: one young sited
	// allocation in this many is tracked across a collection.
	survivalSampleEvery = 8
	// demoteSampleMin is the minimum sampled population before a
	// long-lived site with zero survivors is demoted.
	demoteSampleMin = 32
)

// regionChunk is one bump span carved out of the region area.
type regionChunk struct {
	base, pos, end Addr
}

// epochLevel is the per-thread state of one (possibly nested) epoch.
type epochLevel struct {
	chunks []regionChunk
}

// survivalSample records one young allocation for the GC-time survival
// check.
type survivalSample struct {
	addr Addr
	site int32
}

// SetLifetimes installs a lifetime configuration. The heap must be empty
// (freshly created or Reset, no registered threads): enforce mode carves
// the epoch-region area out of the nursery, which moves the young base.
func (hp *Heap) SetLifetimes(cfg LifetimeConfig) {
	hp.lifeMode = cfg.Mode
	hp.lifeStatic = nil
	hp.life = nil
	hp.regionBase, hp.regionEnd = hp.oldEnd, hp.oldEnd
	hp.youngBase = hp.oldEnd
	hp.freeChunks = hp.freeChunks[:0]
	hp.regionInUse = 0
	if cfg.Mode == LifetimeOff || len(cfg.Sites) == 0 {
		hp.siteAllocs, hp.siteBytes, hp.siteSampled, hp.siteSurvived = nil, nil, nil, nil
		hp.mu.Lock()
		hp.youngPos = hp.youngBase
		hp.mu.Unlock()
		return
	}
	hp.lifeStatic = append([]Life(nil), cfg.Sites...)
	hp.life = make([]uint32, len(cfg.Sites))
	hasEpoch, hasLong := false, false
	for i, l := range cfg.Sites {
		hp.life[i] = uint32(l)
		if l == LifeEpoch {
			hasEpoch = true
		}
		if l == LifeLong {
			hasLong = true
		}
	}
	// Survival sampling exists to give every long-lived prediction a
	// runtime verdict; with no long sites there is nothing to decide.
	hp.sampleActive = 0
	if hasLong {
		hp.sampleActive = 1
	}
	n := len(cfg.Sites)
	hp.siteAllocs = make([]int64, n)
	hp.siteBytes = make([]int64, n)
	hp.siteSampled = make([]int64, n)
	hp.siteSurvived = make([]int64, n)
	if cfg.Mode == LifetimeEnforce && hasEpoch {
		young := int(hp.youngEnd - hp.oldEnd)
		region := (young / 4) / regionChunkSize * regionChunkSize
		if young >= 512<<10 && region > 0 {
			hp.regionEnd = hp.regionBase + Addr(region)
			hp.youngBase = hp.regionEnd
			for c := hp.regionBase; c < hp.regionEnd; c += regionChunkSize {
				hp.freeChunks = append(hp.freeChunks, c)
			}
		}
	}
	hp.mu.Lock()
	hp.youngPos = hp.youngBase
	hp.mu.Unlock()
}

// inRegion reports whether a lies in the epoch-region area.
func (hp *Heap) inRegion(a Addr) bool { return a >= hp.regionBase && a < hp.regionEnd }

// lifeOf returns the current (post-demotion) classification of a site, or
// LifeUnknown when lifetimes are off or the site is unnumbered.
func (hp *Heap) lifeOf(site int32) Life {
	if hp.life == nil || site <= 0 || int(site) >= len(hp.life) {
		return LifeUnknown
	}
	return Life(atomic.LoadUint32(&hp.life[int(site)]))
}

// demoteSite drops a mispredicted site to unknown (once) and counts it.
func (hp *Heap) demoteSite(site int32) {
	was := atomic.LoadUint32(&hp.life[int(site)])
	if was == uint32(LifeUnknown) {
		return
	}
	if atomic.CompareAndSwapUint32(&hp.life[int(site)], was, uint32(LifeUnknown)) {
		hp.cLifeDemoted.Inc()
	}
}

// allocSited is the classification-aware allocation path. The first guard
// is the whole cost for unsited allocations and lifetimes-off heaps; the
// observe path adds one atomic load, the thread-local site counters, and a
// subsampled survival record.
func (hp *Heap) allocSited(tc *ThreadCtx, size int, site int32) (Addr, error) {
	if hp.life == nil || site <= 0 || int(site) >= len(hp.life) {
		return hp.allocRaw(tc, size)
	}
	// Per-site profile counters; tc.siteAllocs is sized with hp.life, so
	// the guard above covers both.
	tc.siteAllocs[site]++
	tc.siteBytes[site] += int64(size)
	switch Life(atomic.LoadUint32(&hp.life[site])) {
	case LifeEpoch:
		if tc.epochDepth == 0 {
			// The static proof said "inside an iteration"; the runtime
			// disagrees (e.g. a function the engine calls outside its
			// epoch). Demote and fall through to the default path.
			hp.demoteSite(site)
		} else if hp.lifeMode == LifetimeEnforce {
			if a, err, ok := hp.regionAlloc(tc, size); ok {
				tc.regionAllocs++
				return a, err
			}
			// Region overflow: silent fallback to the nursery.
		}
	case LifeLong:
		if hp.lifeMode == LifetimeEnforce {
			tc.pretenured++
			return hp.allocLarge(tc, size)
		}
	}
	a, err := hp.allocRaw(tc, size)
	// Survival sampling is for demotion decisions, not exact counts: 1 in
	// survivalSampleEvery sited allocations is plenty, and sampling shuts
	// off entirely once every long-lived site has a verdict.
	if err == nil && atomic.LoadUint32(&hp.sampleActive) != 0 && hp.inYoung(a) {
		if tc.sampleTick++; tc.sampleTick%survivalSampleEvery == 0 &&
			len(tc.samples) < maxSurvivalSamples {
			tc.samples = append(tc.samples, survivalSample{addr: a, site: site})
		}
	}
	return a, err
}

// regionAlloc bump-allocates size bytes in the innermost epoch's current
// chunk, grabbing a fresh chunk when needed. ok=false means the request
// cannot be served from the region (no epoch, oversized, or exhausted) and
// the caller should fall back to the nursery.
func (hp *Heap) regionAlloc(tc *ThreadCtx, size int) (Addr, error, bool) {
	if len(tc.epochs) == 0 || size > regionChunkSize {
		return 0, nil, false
	}
	lvl := &tc.epochs[len(tc.epochs)-1]
	if n := len(lvl.chunks); n > 0 {
		c := &lvl.chunks[n-1]
		if c.pos+Addr(size) <= c.end {
			a := c.pos
			c.pos += Addr(size)
			return a, nil, true
		}
	}
	hp.mu.Lock()
	if len(hp.freeChunks) == 0 {
		hp.mu.Unlock()
		return 0, nil, false
	}
	base := hp.freeChunks[len(hp.freeChunks)-1]
	hp.freeChunks = hp.freeChunks[:len(hp.freeChunks)-1]
	hp.regionInUse += regionChunkSize
	hp.notePeakLocked()
	hp.mu.Unlock()
	// Zero the whole chunk once at handout, like a TLAB, so region bumps
	// need no per-object zeroing and retired chunks are walkable.
	hp.zero(base, regionChunkSize)
	lvl.chunks = append(lvl.chunks, regionChunk{base: base, pos: base + Addr(size), end: base + regionChunkSize})
	return base, nil, true
}

// EpochBegin marks the start of an iteration on tc's thread. Cheap enough
// to call unconditionally from the VM's iteration hooks.
func (hp *Heap) EpochBegin(tc *ThreadCtx) {
	tc.epochDepth++
	if hp.lifeMode == LifetimeEnforce && hp.regionEnd > hp.regionBase {
		tc.epochs = append(tc.epochs, epochLevel{})
	}
}

// EpochEnd marks the end of an iteration: the innermost epoch's chunks are
// bulk-returned to the free list — reclamation is pointer arithmetic, no
// tracing. With region verification enabled, the dying span is first
// checked for dangling references from roots, old, and young.
func (hp *Heap) EpochEnd(tc *ThreadCtx) {
	if tc.epochDepth > 0 {
		tc.epochDepth--
	}
	if len(tc.epochs) == 0 {
		return
	}
	lvl := tc.epochs[len(tc.epochs)-1]
	tc.epochs = tc.epochs[:len(tc.epochs)-1]
	if len(lvl.chunks) == 0 {
		return
	}
	if hp.verifyRegions {
		if v := hp.checkDeadRegionRefs(lvl.chunks); v != nil {
			panic(v)
		}
	}
	hp.mu.Lock()
	for _, c := range lvl.chunks {
		hp.freeChunks = append(hp.freeChunks, c.base)
	}
	hp.regionInUse -= int64(len(lvl.chunks)) * regionChunkSize
	hp.mu.Unlock()
}

// releaseEpochs force-returns every chunk a thread still holds (thread
// unregister without balanced EpochEnd calls).
func (tc *ThreadCtx) releaseEpochs() {
	if len(tc.epochs) == 0 {
		tc.epochDepth = 0
		return
	}
	hp := tc.hp
	hp.mu.Lock()
	for _, lvl := range tc.epochs {
		for _, c := range lvl.chunks {
			hp.freeChunks = append(hp.freeChunks, c.base)
		}
		hp.regionInUse -= int64(len(lvl.chunks)) * regionChunkSize
	}
	hp.mu.Unlock()
	tc.epochs = nil
	tc.epochDepth = 0
}

// forEachRegionObject walks every object in every live (not yet freed)
// region chunk. Called with the world stopped.
func (hp *Heap) forEachRegionObject(f func(a Addr)) {
	for tc := range hp.sp.threads {
		for li := range tc.epochs {
			for ci := range tc.epochs[li].chunks {
				c := &tc.epochs[li].chunks[ci]
				for a := c.base; a < c.pos; {
					f(a)
					a += Addr(hp.objSize(a))
				}
			}
		}
	}
}

// sampleSurvival runs at the end of a collection, world still stopped:
// every sampled young allocation's GC word tells whether it was evacuated
// (survived) or died in place. Long-lived predictions with a sampled
// population and zero survivors are demoted.
func (hp *Heap) sampleSurvival() {
	if hp.life == nil || atomic.LoadUint32(&hp.sampleActive) == 0 {
		return
	}
	for tc := range hp.sp.threads {
		for _, s := range tc.samples {
			atomic.AddInt64(&hp.siteSampled[s.site], 1)
			if hp.getU32(s.addr+hdrGC) != 0 {
				atomic.AddInt64(&hp.siteSurvived[s.site], 1)
			}
		}
		tc.samples = tc.samples[:0]
	}
	// Demote long predictions that died wholesale, and shut sampling off
	// once every long site has a verdict: a demoted site leaves the class,
	// a site with demoteSampleMin samples and a survivor is confirmed.
	undecided := false
	for site := 1; site < len(hp.life); site++ {
		if Life(atomic.LoadUint32(&hp.life[site])) != LifeLong {
			continue
		}
		sampled := atomic.LoadInt64(&hp.siteSampled[site])
		survived := atomic.LoadInt64(&hp.siteSurvived[site])
		if sampled >= demoteSampleMin && survived == 0 {
			hp.demoteSite(int32(site))
		} else if sampled < demoteSampleMin && hp.lifeMode != LifetimeEnforce {
			// Enforce mode pretenures long sites past the nursery, so they
			// can never accumulate samples; don't wait on them.
			undecided = true
		}
	}
	if !undecided {
		atomic.StoreUint32(&hp.sampleActive, 0)
	}
}

// SiteProfile returns the per-site allocation profile (sites with any
// recorded activity only), in site order. Threads still running should be
// flushed first (FlushStats).
func (hp *Heap) SiteProfile() []SiteStats {
	if hp.life == nil {
		return nil
	}
	var out []SiteStats
	for site := 1; site < len(hp.life); site++ {
		s := SiteStats{
			Site:     int32(site),
			Life:     Life(atomic.LoadUint32(&hp.life[site])),
			Allocs:   atomic.LoadInt64(&hp.siteAllocs[site]),
			Bytes:    atomic.LoadInt64(&hp.siteBytes[site]),
			Sampled:  atomic.LoadInt64(&hp.siteSampled[site]),
			Survived: atomic.LoadInt64(&hp.siteSurvived[site]),
		}
		if s.Allocs != 0 || s.Sampled != 0 {
			out = append(out, s)
		}
	}
	return out
}

// --- dead-region reference verifier ----------------------------------------

// RegionViolation is the witness produced when a reference into a dying
// epoch region survives the region's reset — the region analogue of
// analysis.SeedViolation, used by golden tests.
type RegionViolation struct {
	// From is the object (or 0 for a root) holding the dangling reference.
	From Addr
	// Slot is the absolute address of the offending reference slot (0 for
	// roots).
	Slot Addr
	// To is the dangling region address.
	To Addr
	// Source describes where the reference was found: "root", "old",
	// "young".
	Source string
}

func (v *RegionViolation) Error() string {
	if v.Source == "root" {
		return fmt.Sprintf("heap: root still references dead epoch region address %#x", v.To)
	}
	return fmt.Sprintf("heap: %s-generation object %#x slot %#x still references dead epoch region address %#x",
		v.Source, v.From, v.Slot, v.To)
}

// SetVerifyRegions toggles the dead-region reference check run at every
// EpochEnd. The scan walks roots and both generations, so it is meant for
// tests (and assumes a quiescent heap: single mutator or stopped world).
func (hp *Heap) SetVerifyRegions(on bool) { hp.verifyRegions = on }

// checkDeadRegionRefs scans roots, the old generation, and the nursery for
// references into the chunks about to be freed and returns a witness for
// the first one found.
func (hp *Heap) checkDeadRegionRefs(dead []regionChunk) *RegionViolation {
	inDead := func(a Addr) bool {
		for _, c := range dead {
			if a >= c.base && a < c.pos {
				return true
			}
		}
		return false
	}
	var v *RegionViolation
	hp.visitAllRoots(func(a Addr) Addr {
		if v == nil && inDead(a) {
			v = &RegionViolation{To: a, Source: "root"}
		}
		return a
	})
	if v != nil {
		return v
	}
	check := func(a Addr, source string) {
		hp.refSlots(a, func(slot Addr) {
			if v != nil {
				return
			}
			if to := Addr(hp.getU64(slot)); inDead(to) {
				v = &RegionViolation{From: a, Slot: slot, To: to, Source: source}
			}
		})
	}
	hp.mu.Lock()
	oldPos, youngPos := hp.oldPos, hp.youngPos
	hp.mu.Unlock()
	for a := hp.oldBase; a < oldPos && v == nil; {
		check(a, "old")
		a += Addr(hp.objSize(a))
	}
	// The nursery is only walkable up to each thread's TLAB frontier; walk
	// the handed-out span conservatively and stop at the first zero type
	// word (unallocated TLAB remainder is zeroed at handout).
	for a := hp.youngBase; a < youngPos && v == nil; {
		if hp.getU32(a+hdrType) == 0 && hp.getU32(a+12) == 0 {
			// Unused, zeroed TLAB tail: skip to the next TLAB boundary.
			next := (a-hp.youngBase)/tlabSize*tlabSize + tlabSize + hp.youngBase
			a = next
			continue
		}
		check(a, "young")
		a += Addr(hp.objSize(a))
	}
	return v
}
