// Package gps reimplements the GPS distributed graph processing system of
// §4.3 on the simulated cluster: a Pregel-style bulk-synchronous engine
// where each node owns a vertex partition (round-robin by ID, GPS's
// default), supersteps run vertex compute functions written in FJ, and
// messages are serialized between nodes at superstep boundaries.
//
// Mirroring the paper's observation that GPS already uses primitive arrays
// extensively (which is why its GC share is only 1-17% and FACADE's gains
// there are modest), the partition's adjacency lives in flat int arrays;
// per-superstep allocation is limited to vertex wrappers and message
// objects.
package gps

import (
	"fmt"

	"repro/facade"
	"repro/internal/core"
	"repro/internal/ir"
)

// Source is the FJ data path of the engine.
const Source = `
// GPS data path: vertex-centric compute functions.

class Message {
    double value;
    Message next;
}

class GPSVertex {
    int id;
    double value;
    int adjStart;
    int adjEnd;
    Message msgs;

    GPSVertex(int id, double value, int adjStart, int adjEnd) {
        this.id = id;
        this.value = value;
        this.adjStart = adjStart;
        this.adjEnd = adjEnd;
    }

    void addMsg(Message m) {
        m.next = this.msgs;
        this.msgs = m;
    }

    double sumMsgs() {
        double s = 0.0;
        Message m = this.msgs;
        while (m != null) {
            s = s + m.value;
            m = m.next;
        }
        return s;
    }

    int countMsgs() {
        int n = 0;
        Message m = this.msgs;
        while (m != null) {
            n = n + 1;
            m = m.next;
        }
        return n;
    }

    void clearMsgs() { this.msgs = null; }

    int degree() { return this.adjEnd - this.adjStart; }
}

// KPoint is a k-means data point.
class KPoint {
    double x;
    double y;
    int cluster;

    KPoint(double x, double y) {
        this.x = x;
        this.y = y;
        this.cluster = -1;
    }
}

class GPSDriver {
    // buildPartition wraps the node's flat vertex data in GPSVertex
    // objects (allocated before any superstep: these live for the whole
    // job, like GPS's object-array graph representation).
    static GPSVertex[] buildPartition(int[] ids, double[] vals, int[] adjIndex) {
        GPSVertex[] vs = new GPSVertex[ids.length];
        for (int i = 0; i < ids.length; i = i + 1) {
            vs[i] = new GPSVertex(ids[i], vals[i], adjIndex[i], adjIndex[i + 1]);
        }
        return vs;
    }

    // deliver materializes incoming message values onto their target
    // vertices (Message objects churn per superstep).
    static void deliver(GPSVertex[] vs, int[] localIdx, double[] mvals) {
        for (int i = 0; i < localIdx.length; i = i + 1) {
            Message m = new Message();
            m.value = mvals[i];
            vs[localIdx[i]].addMsg(m);
        }
    }

    // prStep runs one PageRank superstep: absorb messages, update values,
    // emit value/degree along every out-edge. Returns messages emitted.
    static int prStep(GPSVertex[] vs, int[] adj, int[] outTargets, double[] outVals, boolean first, boolean last) {
        int e = 0;
        for (int i = 0; i < vs.length; i = i + 1) {
            GPSVertex v = vs[i];
            if (!first) {
                v.value = 0.15 + 0.85 * v.sumMsgs();
            }
            v.clearMsgs();
            if (!last) {
                int d = v.degree();
                if (d > 0) {
                    double share = v.value / d;
                    for (int k = v.adjStart; k < v.adjEnd; k = k + 1) {
                        outTargets[e] = adj[k];
                        outVals[e] = share;
                        e = e + 1;
                    }
                }
            }
        }
        return e;
    }

    // rwStep moves every arriving walker to a uniformly random
    // out-neighbor, counting visits in v.value. Returns walkers emitted.
    static int rwStep(GPSVertex[] vs, int[] adj, int[] outTargets, boolean last) {
        int e = 0;
        for (int i = 0; i < vs.length; i = i + 1) {
            GPSVertex v = vs[i];
            int walkers = v.countMsgs();
            v.clearMsgs();
            v.value = v.value + walkers;
            if (!last) {
                int d = v.degree();
                for (int w = 0; w < walkers; w = w + 1) {
                    int t;
                    if (d > 0) {
                        t = adj[v.adjStart + Sys.rand(d)];
                    } else {
                        t = v.id;
                    }
                    outTargets[e] = t;
                    e = e + 1;
                }
            }
        }
        return e;
    }

    // seedWalkers places initial walkers (one message each) on the given
    // local vertices.
    static void seedWalkers(GPSVertex[] vs, int[] localIdx) {
        for (int i = 0; i < localIdx.length; i = i + 1) {
            Message m = new Message();
            m.value = 1.0;
            vs[localIdx[i]].addMsg(m);
        }
    }

    static void extractValues(GPSVertex[] vs, double[] out) {
        for (int i = 0; i < vs.length; i = i + 1) {
            out[i] = vs[i].value;
        }
    }

    // --- k-means ---

    static KPoint[] buildPoints(double[] xs, double[] ys) {
        KPoint[] pts = new KPoint[xs.length];
        for (int i = 0; i < xs.length; i = i + 1) {
            pts[i] = new KPoint(xs[i], ys[i]);
        }
        return pts;
    }

    // kmeansAssign assigns each point to its nearest centroid and
    // accumulates per-cluster sums into sums[3k]: sumX, sumY, count.
    static int kmeansAssign(KPoint[] pts, double[] cx, double[] cy, double[] sums) {
        int moved = 0;
        int k = cx.length;
        for (int i = 0; i < pts.length; i = i + 1) {
            KPoint p = pts[i];
            int best = 0;
            double bestD = 0.0;
            for (int c = 0; c < k; c = c + 1) {
                double dx = p.x - cx[c];
                double dy = p.y - cy[c];
                double d = dx * dx + dy * dy;
                if (c == 0 || d < bestD) {
                    bestD = d;
                    best = c;
                }
            }
            if (best != p.cluster) {
                moved = moved + 1;
                p.cluster = best;
            }
            sums[best * 3] = sums[best * 3] + p.x;
            sums[best * 3 + 1] = sums[best * 3 + 1] + p.y;
            sums[best * 3 + 2] = sums[best * 3 + 2] + 1.0;
        }
        return moved;
    }
}
`

// DataClasses is the data path handed to FACADE (the paper: 4 seed
// classes, 44 detected data classes, 13 boundary classes).
var DataClasses = []string{"GPSVertex", "Message", "KPoint", "GPSDriver"}

// BuildPrograms compiles the data path and returns (P, P').
func BuildPrograms() (*ir.Program, *ir.Program, error) {
	p, err := facade.Compile(map[string]string{"gps.fj": Source})
	if err != nil {
		return nil, nil, fmt.Errorf("gps: compile: %w", err)
	}
	p2, err := core.Transform(p, core.Options{DataClasses: DataClasses})
	if err != nil {
		return nil, nil, fmt.Errorf("gps: transform: %w", err)
	}
	return p, p2, nil
}
