package gps

import (
	"math"
	"testing"
	"time"

	"repro/facade"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/ir"
)

// coreTransformDevirt builds the GPS data path with devirtualization on.
func coreTransformDevirt() (*ir.Program, error) {
	p, err := facade.Compile(map[string]string{"gps.fj": Source})
	if err != nil {
		return nil, err
	}
	return core.Transform(p, core.Options{DataClasses: DataClasses, Devirtualize: true})
}

var cachedP, cachedP2 *ir.Program

func programs(t *testing.T) (*ir.Program, *ir.Program) {
	t.Helper()
	if cachedP == nil {
		p, p2, err := BuildPrograms()
		if err != nil {
			t.Fatal(err)
		}
		cachedP, cachedP2 = p, p2
	}
	return cachedP, cachedP2
}

// refPageRank computes BSP PageRank the way the engine schedules it.
func refPageRank(g *datagen.Graph, steps int) []float64 {
	vals := make([]float64, g.NumVertices)
	for i := range vals {
		vals[i] = 1.0
	}
	adj := make([][]int32, g.NumVertices)
	for i, s := range g.Src {
		adj[s] = append(adj[s], g.Dst[i])
	}
	for s := 0; s < steps; s++ {
		// Messages emitted at step s-1 are consumed at step s (>0).
		if s > 0 {
			incoming := make([]float64, g.NumVertices)
			for v := 0; v < g.NumVertices; v++ {
				if d := len(adj[v]); d > 0 {
					share := vals[v] / float64(d)
					for _, t := range adj[v] {
						incoming[t] += share
					}
				}
			}
			for v := range vals {
				vals[v] = 0.15 + 0.85*incoming[v]
			}
		}
	}
	return vals
}

func TestPageRankBothProgramsMatchReference(t *testing.T) {
	p, p2 := programs(t)
	g := datagen.PowerLawGraph(300, 2500, 5)
	cfg := Config{App: PageRank, Nodes: 3, HeapPerNode: 16 << 20, Supersteps: 4}
	resP, err := Run(p, g, cfg)
	if err != nil {
		t.Fatalf("P: %v", err)
	}
	resP2, err := Run(p2, g, cfg)
	if err != nil {
		t.Fatalf("P': %v", err)
	}
	// BSP emission order differs per node arrival order, but sums are the
	// same set of float64 additions in potentially different order; the
	// engine delivers messages per-frame deterministically, yet frame
	// arrival order may vary, so compare with tolerance.
	ref := refPageRank(g, 4)
	for v := range ref {
		if math.Abs(resP.Values[v]-ref[v]) > 1e-9 {
			t.Fatalf("P vertex %d: %v want %v", v, resP.Values[v], ref[v])
		}
		if math.Abs(resP2.Values[v]-ref[v]) > 1e-9 {
			t.Fatalf("P' vertex %d: %v want %v", v, resP2.Values[v], ref[v])
		}
	}
}

func TestRandomWalkConservesWalkers(t *testing.T) {
	p, p2 := programs(t)
	g := datagen.PowerLawGraph(200, 2000, 9)
	cfg := Config{App: RandomWalk, Nodes: 2, HeapPerNode: 16 << 20, Supersteps: 6, Walkers: 50, Seed: 3}
	for name, prog := range map[string]*ir.Program{"P": p, "P'": p2} {
		res, err := Run(prog, g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Total visits = walkers * supersteps (each walker visits one
		// vertex per step).
		total := 0.0
		for _, v := range res.Values {
			total += v
		}
		want := float64(cfg.Walkers * cfg.Supersteps)
		if total != want {
			t.Fatalf("%s: total visits %v want %v", name, total, want)
		}
	}
}

func TestKMeansAssignsAllPoints(t *testing.T) {
	p, p2 := programs(t)
	g := datagen.PowerLawGraph(240, 2000, 13)
	cfg := Config{App: KMeans, Nodes: 3, HeapPerNode: 16 << 20, Supersteps: 5, K: 4}
	resP, err := Run(p, g, cfg)
	if err != nil {
		t.Fatalf("P: %v", err)
	}
	resP2, err := Run(p2, g, cfg)
	if err != nil {
		t.Fatalf("P': %v", err)
	}
	for v := range resP.Values {
		c := int(resP.Values[v])
		if c < 0 || c >= cfg.K {
			t.Fatalf("P: vertex %d assigned to cluster %d", v, c)
		}
		if resP.Values[v] != resP2.Values[v] {
			t.Fatalf("vertex %d: P cluster %v, P' cluster %v", v, resP.Values[v], resP2.Values[v])
		}
	}
	if len(resP.Centroids) != cfg.K {
		t.Fatalf("got %d centroids", len(resP.Centroids))
	}
	for c := range resP.Centroids {
		if math.Abs(resP.Centroids[c][0]-resP2.Centroids[c][0]) > 1e-9 ||
			math.Abs(resP.Centroids[c][1]-resP2.Centroids[c][1]) > 1e-9 {
			t.Fatalf("centroid %d differs between P and P'", c)
		}
	}
}

func TestDevirtualizedGPSEquivalence(t *testing.T) {
	// The full GPS data path under the §3.6 devirtualizing transform must
	// produce bit-identical PageRank values.
	p, _ := programs(t)
	p3, err := func() (*ir.Program, error) {
		return coreTransformDevirt()
	}()
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.PowerLawGraph(300, 2500, 5)
	cfg := Config{App: PageRank, Nodes: 2, HeapPerNode: 16 << 20, Supersteps: 4}
	r1, err := Run(p, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(p3, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1.Values {
		if r1.Values[v] != r3.Values[v] {
			t.Fatalf("vertex %d: P=%v devirt-P'=%v", v, r1.Values[v], r3.Values[v])
		}
	}
}

func TestGPSGCProfileModest(t *testing.T) {
	// §4.3: GPS's primitive-array-heavy design keeps GC small; both
	// programs should complete with few full collections at this scale.
	p, _ := programs(t)
	g := datagen.PowerLawGraph(500, 6000, 21)
	res, err := Run(p, g, Config{App: PageRank, Nodes: 2, HeapPerNode: 12 << 20, Supersteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.ET == 0 {
		t.Fatal("no time measured")
	}
	if res.GT > res.ET {
		t.Fatalf("GC time %v exceeds run time %v", res.GT, res.ET)
	}
}

// TestPageRankFaultMatrix runs PageRank under each fault class (and all of
// them combined) and asserts the results are bit-identical to a fault-free
// run: retries, dedup, canonical barrier ordering, and checkpoint/replay
// must make injected faults invisible to the computation.
func TestPageRankFaultMatrix(t *testing.T) {
	p, p2 := programs(t)
	g := datagen.PowerLawGraph(250, 2000, 7)
	base := Config{App: PageRank, Nodes: 3, HeapPerNode: 16 << 20, Supersteps: 4}

	cases := []struct {
		name string
		spec string
	}{
		{"drop", "drop=0.1,seed=11"},
		{"dup", "dup=0.15,seed=12"},
		{"delay", "delay=2ms,delayp=0.2,seed=13"},
		{"reorder", "reorder=0.3,seed=14"},
		{"crash", "crash=1,seed=15"},
		{"all", "drop=0.05,dup=0.1,delay=1ms,delayp=0.1,reorder=0.1,crash=1,seed=42"},
	}
	for name, prog := range map[string]*ir.Program{"P": p, "P'": p2} {
		clean, err := Run(prog, g, base)
		if err != nil {
			t.Fatalf("%s fault-free: %v", name, err)
		}
		if clean.Recovery != (Recovery{}) {
			t.Fatalf("%s fault-free run reports recovery work: %+v", name, clean.Recovery)
		}
		for _, tc := range cases {
			t.Run(name+"/"+tc.name, func(t *testing.T) {
				fc, err := faults.Parse(tc.spec)
				if err != nil {
					t.Fatal(err)
				}
				cfg := base
				cfg.Faults = &fc
				cfg.RecvTimeout = 5 * time.Second
				res, err := Run(prog, g, cfg)
				if err != nil {
					t.Fatalf("faulty run: %v", err)
				}
				for v := range clean.Values {
					if res.Values[v] != clean.Values[v] {
						t.Fatalf("vertex %d diverged: fault-free=%v faulty=%v",
							v, clean.Values[v], res.Values[v])
					}
				}
				if res.Recovery.Checkpoints != int64(base.Supersteps) {
					t.Fatalf("checkpoints = %d, want one per superstep (%d)",
						res.Recovery.Checkpoints, base.Supersteps)
				}
				if fc.Drop > 0 && res.Net.Retries == 0 {
					t.Fatal("drop injection produced no retries")
				}
				if fc.Dup > 0 && res.Net.Deduped == 0 {
					t.Fatal("dup injection produced no dedups")
				}
				if fc.Crashes > 0 {
					if res.Recovery.Crashes < 1 || res.Recovery.NodeRestarts < 1 ||
						res.Recovery.Restores < 1 {
						t.Fatalf("crash not reflected in recovery stats: %+v", res.Recovery)
					}
				}
			})
		}
	}
}

// TestPageRankOOMNodeRecovers injects a single allocation failure on one
// node mid-run; the engine must restore from checkpoint, replay the
// superstep, and still converge to the fault-free answer.
func TestPageRankOOMNodeRecovers(t *testing.T) {
	p, _ := programs(t)
	g := datagen.PowerLawGraph(250, 2000, 7)
	base := Config{App: PageRank, Nodes: 3, HeapPerNode: 16 << 20, Supersteps: 4}
	clean, err := Run(p, g, base)
	if err != nil {
		t.Fatal(err)
	}
	// Fire the 2nd slow-path allocation on every node's injector stream:
	// past the initial partition build, inside a checkpointed superstep.
	fc := faults.Config{Seed: 3, AllocAt: 2}
	cfg := base
	cfg.Faults = &fc
	res, err := Run(p, g, cfg)
	if err != nil {
		t.Fatalf("run with injected alloc fault: %v", err)
	}
	for v := range clean.Values {
		if res.Values[v] != clean.Values[v] {
			t.Fatalf("vertex %d diverged after OOM recovery: %v vs %v",
				v, clean.Values[v], res.Values[v])
		}
	}
	if res.Recovery.OOMRecoveries < 1 || res.Recovery.Restores < 1 {
		t.Fatalf("expected OOM recovery in stats: %+v", res.Recovery)
	}
}

// TestRandomWalkCrashReplayBitIdentical is the fault-matrix case for the
// rng-cursor fix: RandomWalk recovery must be bit-identical — the exact
// same per-vertex visit counts as the fault-free run — not merely
// walker-conserving, because the checkpoint now carries each node's
// Sys.rand cursor and restore rewinds it.
func TestRandomWalkCrashReplayBitIdentical(t *testing.T) {
	p, p2 := programs(t)
	g := datagen.PowerLawGraph(200, 2000, 9)
	base := Config{App: RandomWalk, Nodes: 2, HeapPerNode: 16 << 20, Supersteps: 6, Walkers: 50, Seed: 3}
	for name, prog := range map[string]*ir.Program{"P": p, "P'": p2} {
		clean, err := Run(prog, g, base)
		if err != nil {
			t.Fatalf("%s fault-free: %v", name, err)
		}
		for _, spec := range []string{"crash=1,seed=15", "crash=2,seed=77"} {
			fc, err := faults.Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.Faults = &fc
			cfg.RecvTimeout = 5 * time.Second
			res, err := Run(prog, g, cfg)
			if err != nil {
				t.Fatalf("%s %s: %v", name, spec, err)
			}
			if res.Recovery.Crashes < int64(fc.Crashes) {
				t.Fatalf("%s %s: planned crashes not fired: %+v", name, spec, res.Recovery)
			}
			for v := range clean.Values {
				if res.Values[v] != clean.Values[v] {
					t.Fatalf("%s %s: vertex %d diverged: fault-free=%v faulty=%v",
						name, spec, v, clean.Values[v], res.Values[v])
				}
			}
		}
	}
}

// TestCheckpointRetentionBounded asserts the retention fix: a tolerant
// run holds at most one checkpoint at a time, dropping the superseded
// snapshot as each successor is taken.
func TestCheckpointRetentionBounded(t *testing.T) {
	p, _ := programs(t)
	g := datagen.PowerLawGraph(250, 2000, 7)
	fc := faults.Config{Seed: 15, Crashes: 1}
	cfg := Config{App: PageRank, Nodes: 3, HeapPerNode: 16 << 20, Supersteps: 4,
		Faults: &fc, RecvTimeout: 5 * time.Second}
	res, err := Run(p, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.RetainedCheckpointsHW > 1 {
		t.Fatalf("retained-checkpoint high-water = %d, want <= 1", res.Recovery.RetainedCheckpointsHW)
	}
	// Every checkpoint but the final one must have been dropped.
	if want := res.Recovery.Checkpoints - 1; res.Recovery.CheckpointsDropped != want {
		t.Fatalf("checkpoints dropped = %d, want %d (of %d taken)",
			res.Recovery.CheckpointsDropped, want, res.Recovery.Checkpoints)
	}
}

// TestCheckpointIntervalReplays runs with checkpoints every 2 supersteps:
// a crash rewinds more than one superstep to the last checkpoint, the
// intervening supersteps replay deterministically, and the result is
// still bit-identical to the fault-free run.
func TestCheckpointIntervalReplays(t *testing.T) {
	p, _ := programs(t)
	g := datagen.PowerLawGraph(250, 2000, 7)
	base := Config{App: PageRank, Nodes: 3, HeapPerNode: 16 << 20, Supersteps: 4}
	clean, err := Run(p, g, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []App{PageRank, RandomWalk} {
		fc := faults.Config{Seed: 15, Crashes: 1}
		cfg := base
		cfg.App = app
		cfg.CheckpointInterval = 2
		cfg.Faults = &fc
		cfg.RecvTimeout = 5 * time.Second
		if app == RandomWalk {
			cfg.Walkers = 50
			cfg.Seed = 3
		}
		res, err := Run(p, g, cfg)
		if err != nil {
			t.Fatalf("%v: %v", app, err)
		}
		// Supersteps 0 and 2 checkpoint; the crash replays from one of
		// them without re-taking it.
		if res.Recovery.Checkpoints != 2 {
			t.Fatalf("%v: checkpoints = %d, want 2 (every 2nd superstep)", app, res.Recovery.Checkpoints)
		}
		if res.Recovery.CheckpointsDropped != 1 {
			t.Fatalf("%v: checkpoints dropped = %d, want 1", app, res.Recovery.CheckpointsDropped)
		}
		if res.Recovery.RetainedCheckpointsHW > 1 {
			t.Fatalf("%v: retained high-water = %d, want <= 1", app, res.Recovery.RetainedCheckpointsHW)
		}
		if res.Recovery.Crashes != 1 || res.Recovery.Restores < 1 {
			t.Fatalf("%v: crash recovery missing from stats: %+v", app, res.Recovery)
		}
		if app == PageRank {
			for v := range clean.Values {
				if res.Values[v] != clean.Values[v] {
					t.Fatalf("vertex %d diverged under interval checkpointing: %v vs %v",
						v, clean.Values[v], res.Values[v])
				}
			}
		} else {
			cleanRW := cfg
			cleanRW.Faults = nil
			cleanRW.CheckpointInterval = 0
			ref, err := Run(p, g, cleanRW)
			if err != nil {
				t.Fatal(err)
			}
			for v := range ref.Values {
				if res.Values[v] != ref.Values[v] {
					t.Fatalf("RW vertex %d diverged under interval checkpointing: %v vs %v",
						v, ref.Values[v], res.Values[v])
				}
			}
		}
	}
}
