package gps

import (
	"encoding/binary"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/vm"
)

// App selects the vertex program (§4.3 evaluates PR, k-means, and random
// walk).
type App int

// Applications.
const (
	PageRank App = iota
	KMeans
	RandomWalk
)

func (a App) String() string {
	switch a {
	case PageRank:
		return "PR"
	case KMeans:
		return "k-means"
	default:
		return "random-walk"
	}
}

// Config drives one GPS job.
type Config struct {
	App         App
	Nodes       int
	HeapPerNode int
	Supersteps  int
	K           int // k-means clusters
	Walkers     int // random-walk walkers
	Seed        int64
}

// Result reports one run (§4.3's ET/GT/space comparison).
type Result struct {
	ET         time.Duration
	GT         time.Duration
	PM         int64 // worst per-node heap+native peak
	HeapPeak   int64
	NativePeak int64
	MinorGCs   int64
	FullGCs    int64
	Values     []float64 // final vertex values / point assignments
	Centroids  [][2]float64

	// NodeObs holds each node's observability snapshot (indexed by node
	// ID); supersteps appear as EvIteration events in each.
	NodeObs []obs.Snapshot
}

// partition is one node's share of the graph.
type partition struct {
	ids      []int32
	vals     []float64
	adjIndex []int32
	adj      []int32
	// globalToLocal maps a global vertex ID it owns to its local index.
	local map[int32]int32
}

// partitionGraph assigns vertices round-robin (GPS's default) and builds
// per-node flat adjacency.
func partitionGraph(g *datagen.Graph, nodes int, initVal func(int) float64) []*partition {
	parts := make([]*partition, nodes)
	for i := range parts {
		parts[i] = &partition{local: make(map[int32]int32)}
	}
	// Out-adjacency per vertex.
	adjStart := make([]int32, g.NumVertices+1)
	for _, s := range g.Src {
		adjStart[s+1]++
	}
	for v := 1; v <= g.NumVertices; v++ {
		adjStart[v] += adjStart[v-1]
	}
	adj := make([]int32, len(g.Src))
	cursor := make([]int32, g.NumVertices)
	for i, s := range g.Src {
		adj[adjStart[s]+cursor[s]] = g.Dst[i]
		cursor[s]++
	}
	for v := 0; v < g.NumVertices; v++ {
		p := parts[v%nodes]
		p.local[int32(v)] = int32(len(p.ids))
		p.ids = append(p.ids, int32(v))
		p.vals = append(p.vals, initVal(v))
		p.adjIndex = append(p.adjIndex, int32(len(p.adj)))
		p.adj = append(p.adj, adj[adjStart[v]:adjStart[v+1]]...)
	}
	for i := range parts {
		parts[i].adjIndex = append(parts[i].adjIndex, int32(len(parts[i].adj)))
	}
	return parts
}

// nodeState is the per-node VM-side state.
type nodeState struct {
	part     *partition
	vsObj    vm.Obj // GPSVertex[] (or KPoint[])
	adjObj   vm.Obj
	outT     vm.Obj // reusable out-target buffer
	outV     vm.Obj // reusable out-value buffer
	incoming [][]byte
}

// msg frame format: n × (u32 globalTarget, f64 value).

// Run executes the job and returns metrics plus final values (vertex
// values for PR/RW, assignments for k-means).
func Run(prog *ir.Program, g *datagen.Graph, cfg Config) (*Result, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Supersteps <= 0 {
		cfg.Supersteps = 5
	}
	if cfg.K <= 0 {
		cfg.K = 4
	}
	if cfg.Walkers <= 0 {
		cfg.Walkers = g.NumVertices / 4
	}
	cl, err := cluster.New(prog, cluster.Config{NumNodes: cfg.Nodes, HeapPerNode: cfg.HeapPerNode, RandSeed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	if cfg.App == KMeans {
		return runKMeans(cl, g, cfg)
	}

	initVal := func(v int) float64 {
		if cfg.App == PageRank {
			return 1.0
		}
		return 0.0
	}
	parts := partitionGraph(g, cfg.Nodes, initVal)
	states := make([]*nodeState, cfg.Nodes)
	start := time.Now()

	// Build partitions inside the VMs (before any iteration: vertex
	// objects live for the whole job).
	err = cl.ParallelEach(func(n *cluster.Node) error {
		st := &nodeState{part: parts[n.ID]}
		states[n.ID] = st
		t := n.Main
		oIds, err := t.NewIntArr(st.part.ids)
		if err != nil {
			return err
		}
		defer t.FreeObj(oIds)
		oVals, err := t.NewDoubleArr(st.part.vals)
		if err != nil {
			return err
		}
		defer t.FreeObj(oVals)
		oIdx, err := t.NewIntArr(st.part.adjIndex)
		if err != nil {
			return err
		}
		defer t.FreeObj(oIdx)
		st.vsObj, err = t.InvokeStaticObj("GPSDriver", "buildPartition", vm.O(oIds), vm.O(oVals), vm.O(oIdx))
		if err != nil {
			return err
		}
		st.adjObj, err = t.NewIntArr(st.part.adj)
		if err != nil {
			return err
		}
		maxOut := len(st.part.adj)
		if cfg.App == RandomWalk {
			maxOut = cfg.Walkers // every walker could land here
		}
		if maxOut == 0 {
			maxOut = 1
		}
		st.outT, err = t.NewArr("int", maxOut)
		if err != nil {
			return err
		}
		st.outV, err = t.NewArr("double", maxOut)
		return err
	})
	if err != nil {
		return nil, err
	}

	// Random walk: seed walkers round-robin across vertices.
	if cfg.App == RandomWalk {
		seedByNode := make([][]int32, cfg.Nodes)
		for w := 0; w < cfg.Walkers; w++ {
			v := int32((w * 7919) % g.NumVertices)
			node := int(v) % cfg.Nodes
			seedByNode[node] = append(seedByNode[node], parts[node].local[v])
		}
		err = cl.ParallelEach(func(n *cluster.Node) error {
			if len(seedByNode[n.ID]) == 0 {
				return nil
			}
			t := n.Main
			oSeed, err := t.NewIntArr(seedByNode[n.ID])
			if err != nil {
				return err
			}
			defer t.FreeObj(oSeed)
			_, err = t.InvokeStatic("GPSDriver", "seedWalkers", vm.O(states[n.ID].vsObj), vm.O(oSeed))
			return err
		})
		if err != nil {
			return nil, err
		}
	}

	for step := 0; step < cfg.Supersteps; step++ {
		step := step
		first := step == 0
		last := step == cfg.Supersteps-1
		err = cl.ParallelEach(func(n *cluster.Node) error {
			return superstep(cl, n, states[n.ID], cfg, step, first, last)
		})
		if err != nil {
			return nil, err
		}
		// Barrier: collect this superstep's frames for the next.
		for _, n := range cl.Nodes {
			states[n.ID].incoming = states[n.ID].incoming[:0]
			for i := 0; i < cfg.Nodes; i++ {
				f := cl.Net.Recv(n.ID)
				if len(f.Data) > 0 {
					states[n.ID].incoming = append(states[n.ID].incoming, f.Data)
				}
			}
		}
	}

	// Extract final values.
	values := make([]float64, g.NumVertices)
	err = cl.ParallelEach(func(n *cluster.Node) error {
		st := states[n.ID]
		t := n.Main
		out, err := t.NewArr("double", len(st.part.ids))
		if err != nil {
			return err
		}
		defer t.FreeObj(out)
		if _, err := t.InvokeStatic("GPSDriver", "extractValues", vm.O(st.vsObj), vm.O(out)); err != nil {
			return err
		}
		vals, err := t.ReadDoubleArr(out)
		if err != nil {
			return err
		}
		for i, id := range st.part.ids {
			values[id] = vals[i]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := resultFrom(cl, start)
	res.Values = values
	return res, nil
}

// superstep runs one node's compute phase and sends one frame per peer.
func superstep(cl *cluster.Cluster, n *cluster.Node, st *nodeState, cfg Config, step int, first, last bool) error {
	stepStart := time.Now()
	t := n.Main
	t.IterationStart()
	defer t.IterationEnd()
	defer func() {
		n.VM.Obs().Emit(obs.EvIteration, "superstep", int64(step), time.Since(stepStart).Nanoseconds(), int64(n.ID))
	}()

	// Deliver incoming messages (u32 local target already translated by
	// sender? No: sender sends global IDs; translate here).
	for _, f := range st.incoming {
		cnt := len(f) / 12
		locals := make([]int32, cnt)
		vals := make([]float64, cnt)
		for i := 0; i < cnt; i++ {
			g := int32(binary.LittleEndian.Uint32(f[i*12:]))
			locals[i] = st.part.local[g]
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(f[i*12+4:]))
		}
		oL, err := t.NewIntArr(locals)
		if err != nil {
			return err
		}
		oV, err := t.NewDoubleArr(vals)
		if err != nil {
			t.FreeObj(oL)
			return err
		}
		_, err = t.InvokeStatic("GPSDriver", "deliver", vm.O(st.vsObj), vm.O(oL), vm.O(oV))
		t.FreeObj(oL)
		t.FreeObj(oV)
		if err != nil {
			return err
		}
	}

	var emitted int
	var targets []int32
	var vals []float64
	switch cfg.App {
	case PageRank:
		ev, err := t.InvokeStatic("GPSDriver", "prStep",
			vm.O(st.vsObj), vm.O(st.adjObj), vm.O(st.outT), vm.O(st.outV),
			vm.I(b2i(first)), vm.I(b2i(last)))
		if err != nil {
			return err
		}
		emitted = int(int32(ev))
		if emitted > 0 {
			targets, err = readIntPrefix(t, st.outT, emitted)
			if err != nil {
				return err
			}
			vals, err = readDoublePrefix(t, st.outV, emitted)
			if err != nil {
				return err
			}
		}
	case RandomWalk:
		ev, err := t.InvokeStatic("GPSDriver", "rwStep",
			vm.O(st.vsObj), vm.O(st.adjObj), vm.O(st.outT), vm.I(b2i(last)))
		if err != nil {
			return err
		}
		emitted = int(int32(ev))
		if emitted > 0 {
			var err error
			targets, err = readIntPrefix(t, st.outT, emitted)
			if err != nil {
				return err
			}
			vals = make([]float64, emitted)
			for i := range vals {
				vals[i] = 1.0
			}
		}
	}

	// Group by destination node and send frames (the serialization
	// boundary between machines).
	frames := make([][]byte, len(cl.Nodes))
	for i := 0; i < emitted; i++ {
		dst := int(targets[i]) % len(cl.Nodes)
		var buf [12]byte
		binary.LittleEndian.PutUint32(buf[0:], uint32(targets[i]))
		binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(vals[i]))
		frames[dst] = append(frames[dst], buf[:]...)
	}
	for d, f := range frames {
		cl.Net.Send(cluster.Frame{From: n.ID, To: d, Tag: "msgs", Data: f})
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func readIntPrefix(t *vm.Thread, o vm.Obj, n int) ([]int32, error) {
	all, err := t.ReadIntArr(o)
	if err != nil {
		return nil, err
	}
	return all[:n], nil
}

func readDoublePrefix(t *vm.Thread, o vm.Obj, n int) ([]float64, error) {
	all, err := t.ReadDoubleArr(o)
	if err != nil {
		return nil, err
	}
	return all[:n], nil
}

func resultFrom(cl *cluster.Cluster, start time.Time) *Result {
	st := cl.Stats()
	return &Result{
		ET:         time.Since(start),
		GT:         st.GCTime,
		PM:         st.MaxTotal,
		HeapPeak:   st.MaxHeapPeak,
		NativePeak: st.MaxNative,
		MinorGCs:   st.MinorGCs,
		FullGCs:    st.FullGCs,
		NodeObs:    cl.ObsSnapshots(),
	}
}

// ---------------------------------------------------------------------------
// k-means: points are graph vertices embedded deterministically in 2-D;
// centroids are broadcast by the master each superstep and partial sums
// reduced from the nodes (the Pregel "master.compute" aggregation).

func runKMeans(cl *cluster.Cluster, g *datagen.Graph, cfg Config) (*Result, error) {
	nodes := len(cl.Nodes)
	xs := make([][]float64, nodes)
	ys := make([][]float64, nodes)
	owner := make([]int, g.NumVertices)
	localIdx := make([]int, g.NumVertices)
	for v := 0; v < g.NumVertices; v++ {
		n := v % nodes
		owner[v] = n
		localIdx[v] = len(xs[n])
		// Deterministic embedding: degree vs hashed position.
		xs[n] = append(xs[n], float64(g.OutDeg[v])+float64(v%17)*0.1)
		ys[n] = append(ys[n], float64(g.InDeg[v])+float64(v%23)*0.1)
	}
	ptObjs := make([]vm.Obj, nodes)
	start := time.Now()
	err := cl.ParallelEach(func(n *cluster.Node) error {
		t := n.Main
		ox, err := t.NewDoubleArr(xs[n.ID])
		if err != nil {
			return err
		}
		defer t.FreeObj(ox)
		oy, err := t.NewDoubleArr(ys[n.ID])
		if err != nil {
			return err
		}
		defer t.FreeObj(oy)
		ptObjs[n.ID], err = t.InvokeStaticObj("GPSDriver", "buildPoints", vm.O(ox), vm.O(oy))
		return err
	})
	if err != nil {
		return nil, err
	}

	k := cfg.K
	cx := make([]float64, k)
	cy := make([]float64, k)
	for c := 0; c < k; c++ {
		// Spread initial centroids over the embedding range.
		cx[c] = float64(c * 7)
		cy[c] = float64(c * 11)
	}
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	for step := 0; step < cfg.Supersteps; step++ {
		step := step
		sums := make([]float64, 3*k)
		err := cl.ParallelEach(func(n *cluster.Node) error {
			stepStart := time.Now()
			t := n.Main
			t.IterationStart()
			defer t.IterationEnd()
			defer func() {
				n.VM.Obs().Emit(obs.EvIteration, "superstep", int64(step), time.Since(stepStart).Nanoseconds(), int64(n.ID))
			}()
			ocx, err := t.NewDoubleArr(cx)
			if err != nil {
				return err
			}
			defer t.FreeObj(ocx)
			ocy, err := t.NewDoubleArr(cy)
			if err != nil {
				return err
			}
			defer t.FreeObj(ocy)
			osums, err := t.NewArr("double", 3*k)
			if err != nil {
				return err
			}
			defer t.FreeObj(osums)
			if _, err := t.InvokeStatic("GPSDriver", "kmeansAssign",
				vm.O(ptObjs[n.ID]), vm.O(ocx), vm.O(ocy), vm.O(osums)); err != nil {
				return err
			}
			part, err := t.ReadDoubleArr(osums)
			if err != nil {
				return err
			}
			<-mu
			for i := range sums {
				sums[i] += part[i]
			}
			mu <- struct{}{}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for c := 0; c < k; c++ {
			if cnt := sums[c*3+2]; cnt > 0 {
				cx[c] = sums[c*3] / cnt
				cy[c] = sums[c*3+1] / cnt
			}
		}
	}
	// Extract assignments: vertex v lives at node v%nodes, local v/nodes.
	values := make([]float64, g.NumVertices)
	err = cl.ParallelEach(func(n *cluster.Node) error {
		t := n.Main
		cnt := len(xs[n.ID])
		for i := 0; i < cnt; i++ {
			p, err := t.ArrGetObj(ptObjs[n.ID], i)
			if err != nil {
				return err
			}
			cv, err := t.GetField(p, "KPoint", "cluster")
			t.FreeObj(p)
			if err != nil {
				return err
			}
			values[i*nodes+n.ID] = float64(int32(cv))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := resultFrom(cl, start)
	res.Values = values
	cents := make([][2]float64, k)
	for c := 0; c < k; c++ {
		cents[c] = [2]float64{cx[c], cy[c]}
	}
	res.Centroids = cents
	return res, nil
}
