package gps

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/offheap"
	"repro/internal/vm"
)

// App selects the vertex program (§4.3 evaluates PR, k-means, and random
// walk).
type App int

// Applications.
const (
	PageRank App = iota
	KMeans
	RandomWalk
)

func (a App) String() string {
	switch a {
	case PageRank:
		return "PR"
	case KMeans:
		return "k-means"
	default:
		return "random-walk"
	}
}

// Config drives one GPS job.
type Config struct {
	App         App
	Nodes       int
	HeapPerNode int
	Supersteps  int
	K           int // k-means clusters
	Walkers     int // random-walk walkers
	Seed        int64

	// Faults configures deterministic fault injection (nil disables).
	// When any fault is enabled the engine checkpoints vertex state at
	// superstep boundaries so crashed or OOM-killed nodes can be
	// rebuilt and the computation replayed from the last checkpoint.
	Faults *faults.Config

	// CheckpointInterval checkpoints every k superstep boundaries
	// (default 1: every boundary). Larger k trades checkpoint cost for a
	// longer replay: a failure rewinds to the last checkpointed step and
	// re-runs everything after it. Only the newest checkpoint is
	// retained; the superseded one is dropped as soon as its successor
	// is durably taken.
	CheckpointInterval int

	// RecvTimeout bounds the superstep barrier's wait for peer frames
	// (cluster.DefaultRecvTimeout when zero).
	RecvTimeout time.Duration
}

// Recovery counts the fault-tolerance work a run performed.
type Recovery struct {
	Checkpoints        int64 // superstep checkpoints taken
	CheckpointBytes    int64 // codec-encoded checkpoint payload, summed
	CheckpointsDropped int64 // superseded checkpoints released
	Restores           int64 // checkpoint restores (one per recovery)
	NodeRestarts       int64 // node VMs rebuilt from scratch
	Crashes            int64 // planned whole-node crashes survived
	OOMRecoveries      int64 // out-of-memory failures recovered

	// RetainedCheckpointsHW is the largest number of checkpoints held at
	// once. The engine keeps only the newest, so it never exceeds 1 —
	// the retention bug this field guards against was holding one full
	// snapshot per superstep for the whole run.
	RetainedCheckpointsHW int64
}

// Result reports one run (§4.3's ET/GT/space comparison).
type Result struct {
	ET         time.Duration
	GT         time.Duration
	PM         int64 // worst per-node heap+native peak
	HeapPeak   int64
	NativePeak int64
	MinorGCs   int64
	FullGCs    int64
	Values     []float64 // final vertex values / point assignments
	Centroids  [][2]float64

	// Recovery and Net report the run's fault-tolerance activity; both
	// are zero for a fault-free run.
	Recovery Recovery
	Net      cluster.NetStats

	// NodeObs holds each node's observability snapshot (indexed by node
	// ID); supersteps appear as EvIteration events in each.
	NodeObs []obs.Snapshot
}

// partition is one node's share of the graph.
type partition struct {
	ids      []int32
	vals     []float64
	adjIndex []int32
	adj      []int32
	// globalToLocal maps a global vertex ID it owns to its local index.
	local map[int32]int32
}

// partitionGraph assigns vertices round-robin (GPS's default) and builds
// per-node flat adjacency.
func partitionGraph(g *datagen.Graph, nodes int, initVal func(int) float64) []*partition {
	parts := make([]*partition, nodes)
	for i := range parts {
		parts[i] = &partition{local: make(map[int32]int32)}
	}
	// Out-adjacency per vertex.
	adjStart := make([]int32, g.NumVertices+1)
	for _, s := range g.Src {
		adjStart[s+1]++
	}
	for v := 1; v <= g.NumVertices; v++ {
		adjStart[v] += adjStart[v-1]
	}
	adj := make([]int32, len(g.Src))
	cursor := make([]int32, g.NumVertices)
	for i, s := range g.Src {
		adj[adjStart[s]+cursor[s]] = g.Dst[i]
		cursor[s]++
	}
	for v := 0; v < g.NumVertices; v++ {
		p := parts[v%nodes]
		p.local[int32(v)] = int32(len(p.ids))
		p.ids = append(p.ids, int32(v))
		p.vals = append(p.vals, initVal(v))
		p.adjIndex = append(p.adjIndex, int32(len(p.adj)))
		p.adj = append(p.adj, adj[adjStart[v]:adjStart[v+1]]...)
	}
	for i := range parts {
		parts[i].adjIndex = append(parts[i].adjIndex, int32(len(parts[i].adj)))
	}
	return parts
}

// nodeState is the per-node VM-side state.
type nodeState struct {
	part     *partition
	vm       *vm.VM // incarnation the handles below belong to
	built    bool
	vsObj    vm.Obj // GPSVertex[] (or KPoint[])
	adjObj   vm.Obj
	outT     vm.Obj // reusable out-target buffer
	outV     vm.Obj // reusable out-value buffer
	incoming [][]byte
}

// msg frame format: n × (u32 globalTarget, f64 value). Checkpoints reuse
// the exact same codec: a node's vertex state serializes to n × (u32
// globalID, f64 value).

// checkpoint is the superstep-boundary recovery state: every node's
// codec-encoded vertex values, the frames it was about to consume, and
// its VM rng cursor (the Sys.rand stream RandomWalk draws from — without
// it a replay would re-roll different walks and recovery would only be
// walker-conserving, not bit-identical). Restoring it and re-running the
// supersteps since replays the computation exactly.
type checkpoint struct {
	step     int
	vals     [][]byte   // per node: n × (u32 id, f64 value)
	incoming [][][]byte // per node: the superstep's undelivered frames
	rng      []uint64   // per node: Sys.rand cursor (vm rng state)
}

// maxReplays bounds recovery attempts for a single superstep, so a fault
// storm degenerates into an error instead of an infinite replay loop.
const maxReplays = 4

// engine carries one PR/RW run's cluster-side state.
type engine struct {
	cl       *cluster.Cluster
	cfg      Config
	parts    []*partition
	states   []*nodeState
	vertices int // graph vertex count (walker seeding)
	plan     []faults.Crash
	planned  []bool // plan entries already fired (a crash fires once)
	ckpt     *checkpoint
	replays  map[int]int // recovery attempts per failing superstep
	rec      Recovery
}

// Run executes the job and returns metrics plus final values (vertex
// values for PR/RW, assignments for k-means).
func Run(prog *ir.Program, g *datagen.Graph, cfg Config) (*Result, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Supersteps <= 0 {
		cfg.Supersteps = 5
	}
	if cfg.K <= 0 {
		cfg.K = 4
	}
	if cfg.Walkers <= 0 {
		cfg.Walkers = g.NumVertices / 4
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 1
	}
	cl, err := cluster.New(prog, cluster.Config{
		NumNodes:    cfg.Nodes,
		HeapPerNode: cfg.HeapPerNode,
		RandSeed:    cfg.Seed,
		Faults:      cfg.Faults,
		RecvTimeout: cfg.RecvTimeout,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	if cfg.App == KMeans {
		return runKMeans(cl, g, cfg)
	}

	initVal := func(v int) float64 {
		if cfg.App == PageRank {
			return 1.0
		}
		return 0.0
	}
	e := &engine{
		cl:       cl,
		cfg:      cfg,
		parts:    partitionGraph(g, cfg.Nodes, initVal),
		states:   make([]*nodeState, cfg.Nodes),
		vertices: g.NumVertices,
		plan:     cl.CrashPlan(cfg.Supersteps),
		replays:  make(map[int]int),
	}
	e.planned = make([]bool, len(e.plan))
	start := time.Now()

	// Build partitions inside the VMs (before any iteration: vertex
	// objects live for the whole job).
	err = cl.ParallelEach(func(n *cluster.Node) error {
		return e.buildNodeState(n, nil)
	})
	if err != nil {
		return nil, err
	}

	// Random walk: seed walkers round-robin across vertices.
	if cfg.App == RandomWalk {
		if err := e.seedWalkers(); err != nil {
			return nil, err
		}
	}

	for step := 0; step < cfg.Supersteps; {
		next, err := e.runSuperstep(step)
		if err != nil {
			return nil, err
		}
		step = next
	}

	// Extract final values.
	values := make([]float64, g.NumVertices)
	err = cl.ParallelEach(func(n *cluster.Node) error {
		st := e.states[n.ID]
		vals, err := readValues(n, st)
		if err != nil {
			return err
		}
		for i, id := range st.part.ids {
			values[id] = vals[i]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := resultFrom(cl, start)
	res.Values = values
	res.Recovery = e.rec
	return res, nil
}

// tolerant reports whether the run checkpoints and recovers (any fault
// injection enabled). A fault-free run pays nothing for the machinery.
func (e *engine) tolerant() bool { return e.cl.Injector() != nil }

// takeCrash returns the planned crash for this superstep, if any,
// consuming the plan entry: a replay of the same superstep after a
// multi-step rewind must not re-fire it.
func (e *engine) takeCrash(step int) *faults.Crash {
	for i := range e.plan {
		if e.plan[i].Occasion == step && !e.planned[i] {
			e.planned[i] = true
			return &e.plan[i]
		}
	}
	return nil
}

// seedWalkers plants cfg.Walkers walkers round-robin across vertices by
// calling GPSDriver.seedWalkers on each owning node. Seeded walkers live
// in vertex message lists — not in any frame — so a rewind to the
// step-0 checkpoint (whose node states are rebuilt empty) re-runs this.
func (e *engine) seedWalkers() error {
	seedByNode := make([][]int32, e.cfg.Nodes)
	for w := 0; w < e.cfg.Walkers; w++ {
		v := int32((w * 7919) % e.vertices)
		node := int(v) % e.cfg.Nodes
		seedByNode[node] = append(seedByNode[node], e.parts[node].local[v])
	}
	return e.cl.ParallelEach(func(n *cluster.Node) error {
		if len(seedByNode[n.ID]) == 0 {
			return nil
		}
		t := n.Main
		oSeed, err := t.NewIntArr(seedByNode[n.ID])
		if err != nil {
			return err
		}
		defer t.FreeObj(oSeed)
		_, err = t.InvokeStatic("GPSDriver", "seedWalkers", vm.O(e.states[n.ID].vsObj), vm.O(oSeed))
		return err
	})
}

// retain makes c the run's one retained checkpoint, dropping the
// superseded snapshot now that its successor is durably taken. Holding
// only the newest bounds checkpoint memory at one snapshot regardless of
// superstep count.
func (e *engine) retain(c *checkpoint) {
	if old := e.ckpt; old != nil {
		e.rec.CheckpointsDropped++
		for _, n := range e.cl.Nodes {
			reg := n.VM.Obs()
			reg.Counter(obs.CtrCheckpointsDropped).Inc()
			reg.Emit(obs.EvCheckpoint, "drop", int64(old.step), int64(len(old.vals[n.ID])), int64(n.ID))
		}
	}
	e.ckpt = c
	if e.rec.RetainedCheckpointsHW < 1 {
		e.rec.RetainedCheckpointsHW = 1
	}
}

// buildNodeState (re)builds one node's VM-side partition state. vals
// overrides the initial vertex values (checkpoint restore); nil uses the
// partition's initial values. Handles from a previous build on the same VM
// incarnation are freed first; handles into a replaced VM are simply
// forgotten with it.
func (e *engine) buildNodeState(n *cluster.Node, vals []float64) error {
	st := e.states[n.ID]
	if st == nil {
		st = &nodeState{part: e.parts[n.ID]}
		e.states[n.ID] = st
	}
	t := n.Main
	if st.built && st.vm == n.VM {
		t.FreeObj(st.vsObj)
		t.FreeObj(st.adjObj)
		t.FreeObj(st.outT)
		t.FreeObj(st.outV)
	}
	st.built = false
	st.vm = n.VM
	if vals == nil {
		vals = st.part.vals
	}
	oIds, err := t.NewIntArr(st.part.ids)
	if err != nil {
		return err
	}
	defer t.FreeObj(oIds)
	oVals, err := t.NewDoubleArr(vals)
	if err != nil {
		return err
	}
	defer t.FreeObj(oVals)
	oIdx, err := t.NewIntArr(st.part.adjIndex)
	if err != nil {
		return err
	}
	defer t.FreeObj(oIdx)
	st.vsObj, err = t.InvokeStaticObj("GPSDriver", "buildPartition", vm.O(oIds), vm.O(oVals), vm.O(oIdx))
	if err != nil {
		return err
	}
	st.adjObj, err = t.NewIntArr(st.part.adj)
	if err != nil {
		return err
	}
	maxOut := len(st.part.adj)
	if e.cfg.App == RandomWalk {
		maxOut = e.cfg.Walkers // every walker could land here
	}
	if maxOut == 0 {
		maxOut = 1
	}
	st.outT, err = t.NewArr("int", maxOut)
	if err != nil {
		return err
	}
	st.outV, err = t.NewArr("double", maxOut)
	if err != nil {
		return err
	}
	st.built = true
	return nil
}

// runSuperstep drives one superstep through checkpointing, compute,
// recovery (if a crash was planned or a node OOMed), and the frame
// barrier. It returns the next superstep to run: step+1 on success, or
// the last checkpointed step after a recovery — with CheckpointInterval
// > 1 that rewinds several supersteps, which replay deterministically.
func (e *engine) runSuperstep(step int) (int, error) {
	if e.tolerant() && step%e.cfg.CheckpointInterval == 0 && (e.ckpt == nil || e.ckpt.step != step) {
		c, err := e.takeCheckpoint(step)
		if err != nil {
			return 0, err
		}
		e.retain(c)
	}
	if crash := e.takeCrash(step); crash != nil {
		// The node dies mid-superstep: it computes nothing and its
		// mailbox black-holes, while the surviving nodes finish their
		// compute and send into the void.
		e.rec.Crashes++
		e.cl.Net.Crash(crash.Node)
		if err := e.compute(step, crash.Node); err != nil {
			return 0, err
		}
		return e.recoverAndRewind(step, crash.Node, "crash")
	}
	err := e.compute(step, -1)
	if err == nil {
		if err := e.barrier(); err != nil {
			return 0, err
		}
		return step + 1, nil
	}
	ne := cluster.FirstNodeError(err)
	if e.ckpt == nil || ne == nil || !isOOM(ne.Err) {
		return 0, err
	}
	e.rec.OOMRecoveries++
	return e.recoverAndRewind(step, ne.ID, "oom")
}

// recoverAndRewind recovers from the retained checkpoint and returns the
// superstep to resume from (the checkpointed one), bounding how often a
// single superstep may fail before the run gives up.
func (e *engine) recoverAndRewind(step, failed int, kind string) (int, error) {
	e.replays[step]++
	if e.replays[step] > maxReplays {
		return 0, fmt.Errorf("gps: superstep %d still failing after %d recovery attempts", step, maxReplays)
	}
	if e.ckpt == nil {
		return 0, fmt.Errorf("gps: superstep %d failed (%s, node %d) with no checkpoint to rewind to", step, kind, failed)
	}
	if err := e.recover(step, e.ckpt, failed, kind); err != nil {
		return 0, err
	}
	return e.ckpt.step, nil
}

// compute runs the superstep's compute phase on every node except skip.
func (e *engine) compute(step, skip int) error {
	first := step == 0
	last := step == e.cfg.Supersteps-1
	return e.cl.ParallelEach(func(n *cluster.Node) error {
		if n.ID == skip {
			return nil
		}
		return superstep(e.cl, n, e.states[n.ID], e.cfg, step, first, last)
	})
}

// barrier collects one frame per peer for every node. Frames are filed by
// sender ID, so the next superstep delivers them in a canonical order no
// matter how injected delays and reorders shuffled their arrival — this is
// what makes a faulty run's result bit-identical to the fault-free one.
func (e *engine) barrier() error {
	for _, n := range e.cl.Nodes {
		byFrom := make([][]byte, len(e.cl.Nodes))
		for i := 0; i < len(e.cl.Nodes); i++ {
			f, err := e.cl.Net.Recv(n.ID)
			if err != nil {
				return err
			}
			byFrom[f.From] = f.Data
		}
		st := e.states[n.ID]
		st.incoming = nil
		for _, d := range byFrom {
			if len(d) > 0 {
				st.incoming = append(st.incoming, d)
			}
		}
	}
	return nil
}

// takeCheckpoint serializes every node's vertex state through the frame
// codec and snapshots its undelivered frames and Sys.rand cursor.
func (e *engine) takeCheckpoint(step int) (*checkpoint, error) {
	ck := &checkpoint{
		step:     step,
		vals:     make([][]byte, len(e.cl.Nodes)),
		incoming: make([][][]byte, len(e.cl.Nodes)),
		rng:      make([]uint64, len(e.cl.Nodes)),
	}
	err := e.cl.ParallelEach(func(n *cluster.Node) error {
		st := e.states[n.ID]
		vals, err := readValues(n, st)
		if err != nil {
			return err
		}
		buf := make([]byte, 0, len(vals)*12)
		for i, v := range vals {
			var b [12]byte
			binary.LittleEndian.PutUint32(b[0:], uint32(st.part.ids[i]))
			binary.LittleEndian.PutUint64(b[4:], math.Float64bits(v))
			buf = append(buf, b[:]...)
		}
		ck.vals[n.ID] = buf
		ck.incoming[n.ID] = append([][]byte(nil), st.incoming...)
		ck.rng[n.ID] = n.VM.RandState()
		reg := n.VM.Obs()
		reg.Counter(obs.CtrCheckpoints).Inc()
		reg.Counter(obs.CtrCheckpointBytes).Add(int64(len(buf)))
		reg.Emit(obs.EvCheckpoint, "save", int64(step), int64(len(buf)), int64(n.ID))
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.rec.Checkpoints++
	for _, b := range ck.vals {
		e.rec.CheckpointBytes += int64(len(b))
	}
	return ck, nil
}

// recover rebuilds the failed node with a fresh VM, discards the aborted
// attempt's frames, and winds every node back to the checkpoint so the
// superstep can replay.
func (e *engine) recover(step int, ckpt *checkpoint, failed int, kind string) error {
	if err := e.cl.RestartNode(failed); err != nil {
		return err
	}
	e.rec.NodeRestarts++
	e.rec.Restores++
	reg := e.cl.Nodes[failed].VM.Obs()
	reg.Counter(obs.CtrNodeRestarts).Inc()
	reg.Emit(obs.EvRecovery, kind, int64(failed), int64(step), 0)
	// The aborted attempt's frames (sent by surviving nodes before the
	// failure surfaced) are stale: the replay will resend them.
	for id := range e.cl.Nodes {
		for {
			if _, ok := e.cl.Net.TryRecv(id); !ok {
				break
			}
		}
	}
	return e.restore(ckpt)
}

// restore rebuilds every node's vertex state, incoming frames, and
// Sys.rand cursor from the checkpoint. All nodes are rebuilt, not just
// the failed one: survivors already consumed their incoming frames,
// advanced their vertex values, and drew from their rng streams during
// the aborted attempt. Restoring the rng cursor is what makes a
// RandomWalk replay bit-identical rather than merely walker-conserving.
func (e *engine) restore(ckpt *checkpoint) error {
	err := e.cl.ParallelEach(func(n *cluster.Node) error {
		buf := ckpt.vals[n.ID]
		vals := make([]float64, len(buf)/12)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*12+4:]))
		}
		if err := e.buildNodeState(n, vals); err != nil {
			return err
		}
		e.states[n.ID].incoming = ckpt.incoming[n.ID]
		n.VM.SetRandState(ckpt.rng[n.ID])
		reg := n.VM.Obs()
		reg.Counter(obs.CtrRestores).Inc()
		reg.Emit(obs.EvCheckpoint, "restore", int64(ckpt.step), int64(len(buf)), int64(n.ID))
		return nil
	})
	if err != nil {
		return err
	}
	// Seeded walkers live in vertex message lists, which buildNodeState
	// rebuilds empty; a rewind to the pre-step-0 state must replant them.
	if ckpt.step == 0 && e.cfg.App == RandomWalk {
		return e.seedWalkers()
	}
	return nil
}

// readValues extracts a node's current vertex values in partition order.
func readValues(n *cluster.Node, st *nodeState) ([]float64, error) {
	t := n.Main
	out, err := t.NewArr("double", len(st.part.ids))
	if err != nil {
		return nil, err
	}
	defer t.FreeObj(out)
	if _, err := t.InvokeStatic("GPSDriver", "extractValues", vm.O(st.vsObj), vm.O(out)); err != nil {
		return nil, err
	}
	return t.ReadDoubleArr(out)
}

// isOOM classifies memory-exhaustion failures — real or injected, managed
// heap or page store — which the engine recovers from; anything else is a
// genuine bug and propagates.
func isOOM(err error) bool {
	return errors.Is(err, heap.ErrOutOfMemory) ||
		errors.Is(err, offheap.ErrPageExhausted) ||
		strings.Contains(err.Error(), "OutOfMemoryError")
}

// superstep runs one node's compute phase and sends one frame per peer.
func superstep(cl *cluster.Cluster, n *cluster.Node, st *nodeState, cfg Config, step int, first, last bool) error {
	stepStart := time.Now()
	t := n.Main
	t.IterationStart()
	defer t.IterationEnd()
	defer func() {
		n.VM.Obs().Emit(obs.EvIteration, "superstep", int64(step), time.Since(stepStart).Nanoseconds(), int64(n.ID))
	}()

	// Deliver incoming messages (u32 local target already translated by
	// sender? No: sender sends global IDs; translate here).
	for _, f := range st.incoming {
		cnt := len(f) / 12
		locals := make([]int32, cnt)
		vals := make([]float64, cnt)
		for i := 0; i < cnt; i++ {
			g := int32(binary.LittleEndian.Uint32(f[i*12:]))
			locals[i] = st.part.local[g]
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(f[i*12+4:]))
		}
		oL, err := t.NewIntArr(locals)
		if err != nil {
			return err
		}
		oV, err := t.NewDoubleArr(vals)
		if err != nil {
			t.FreeObj(oL)
			return err
		}
		_, err = t.InvokeStatic("GPSDriver", "deliver", vm.O(st.vsObj), vm.O(oL), vm.O(oV))
		t.FreeObj(oL)
		t.FreeObj(oV)
		if err != nil {
			return err
		}
	}

	var emitted int
	var targets []int32
	var vals []float64
	switch cfg.App {
	case PageRank:
		ev, err := t.InvokeStatic("GPSDriver", "prStep",
			vm.O(st.vsObj), vm.O(st.adjObj), vm.O(st.outT), vm.O(st.outV),
			vm.I(b2i(first)), vm.I(b2i(last)))
		if err != nil {
			return err
		}
		emitted = int(int32(ev))
		if emitted > 0 {
			targets, err = readIntPrefix(t, st.outT, emitted)
			if err != nil {
				return err
			}
			vals, err = readDoublePrefix(t, st.outV, emitted)
			if err != nil {
				return err
			}
		}
	case RandomWalk:
		ev, err := t.InvokeStatic("GPSDriver", "rwStep",
			vm.O(st.vsObj), vm.O(st.adjObj), vm.O(st.outT), vm.I(b2i(last)))
		if err != nil {
			return err
		}
		emitted = int(int32(ev))
		if emitted > 0 {
			var err error
			targets, err = readIntPrefix(t, st.outT, emitted)
			if err != nil {
				return err
			}
			vals = make([]float64, emitted)
			for i := range vals {
				vals[i] = 1.0
			}
		}
	}

	// Group by destination node and send frames (the serialization
	// boundary between machines).
	frames := make([][]byte, len(cl.Nodes))
	for i := 0; i < emitted; i++ {
		dst := int(targets[i]) % len(cl.Nodes)
		var buf [12]byte
		binary.LittleEndian.PutUint32(buf[0:], uint32(targets[i]))
		binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(vals[i]))
		frames[dst] = append(frames[dst], buf[:]...)
	}
	for d, f := range frames {
		cl.Net.Send(cluster.Frame{From: n.ID, To: d, Tag: "msgs", Data: f})
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func readIntPrefix(t *vm.Thread, o vm.Obj, n int) ([]int32, error) {
	all, err := t.ReadIntArr(o)
	if err != nil {
		return nil, err
	}
	return all[:n], nil
}

func readDoublePrefix(t *vm.Thread, o vm.Obj, n int) ([]float64, error) {
	all, err := t.ReadDoubleArr(o)
	if err != nil {
		return nil, err
	}
	return all[:n], nil
}

func resultFrom(cl *cluster.Cluster, start time.Time) *Result {
	st := cl.Stats()
	return &Result{
		ET:         time.Since(start),
		GT:         st.GCTime,
		PM:         st.MaxTotal,
		HeapPeak:   st.MaxHeapPeak,
		NativePeak: st.MaxNative,
		MinorGCs:   st.MinorGCs,
		FullGCs:    st.FullGCs,
		Net:        cl.Net.Stats(),
		NodeObs:    cl.ObsSnapshots(),
	}
}

// ---------------------------------------------------------------------------
// k-means: points are graph vertices embedded deterministically in 2-D;
// centroids are broadcast by the master each superstep and partial sums
// reduced from the nodes (the Pregel "master.compute" aggregation).

func runKMeans(cl *cluster.Cluster, g *datagen.Graph, cfg Config) (*Result, error) {
	nodes := len(cl.Nodes)
	xs := make([][]float64, nodes)
	ys := make([][]float64, nodes)
	owner := make([]int, g.NumVertices)
	localIdx := make([]int, g.NumVertices)
	for v := 0; v < g.NumVertices; v++ {
		n := v % nodes
		owner[v] = n
		localIdx[v] = len(xs[n])
		// Deterministic embedding: degree vs hashed position.
		xs[n] = append(xs[n], float64(g.OutDeg[v])+float64(v%17)*0.1)
		ys[n] = append(ys[n], float64(g.InDeg[v])+float64(v%23)*0.1)
	}
	ptObjs := make([]vm.Obj, nodes)
	start := time.Now()
	err := cl.ParallelEach(func(n *cluster.Node) error {
		t := n.Main
		ox, err := t.NewDoubleArr(xs[n.ID])
		if err != nil {
			return err
		}
		defer t.FreeObj(ox)
		oy, err := t.NewDoubleArr(ys[n.ID])
		if err != nil {
			return err
		}
		defer t.FreeObj(oy)
		ptObjs[n.ID], err = t.InvokeStaticObj("GPSDriver", "buildPoints", vm.O(ox), vm.O(oy))
		return err
	})
	if err != nil {
		return nil, err
	}

	k := cfg.K
	cx := make([]float64, k)
	cy := make([]float64, k)
	for c := 0; c < k; c++ {
		// Spread initial centroids over the embedding range.
		cx[c] = float64(c * 7)
		cy[c] = float64(c * 11)
	}
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	for step := 0; step < cfg.Supersteps; step++ {
		step := step
		sums := make([]float64, 3*k)
		err := cl.ParallelEach(func(n *cluster.Node) error {
			stepStart := time.Now()
			t := n.Main
			t.IterationStart()
			defer t.IterationEnd()
			defer func() {
				n.VM.Obs().Emit(obs.EvIteration, "superstep", int64(step), time.Since(stepStart).Nanoseconds(), int64(n.ID))
			}()
			ocx, err := t.NewDoubleArr(cx)
			if err != nil {
				return err
			}
			defer t.FreeObj(ocx)
			ocy, err := t.NewDoubleArr(cy)
			if err != nil {
				return err
			}
			defer t.FreeObj(ocy)
			osums, err := t.NewArr("double", 3*k)
			if err != nil {
				return err
			}
			defer t.FreeObj(osums)
			if _, err := t.InvokeStatic("GPSDriver", "kmeansAssign",
				vm.O(ptObjs[n.ID]), vm.O(ocx), vm.O(ocy), vm.O(osums)); err != nil {
				return err
			}
			part, err := t.ReadDoubleArr(osums)
			if err != nil {
				return err
			}
			<-mu
			for i := range sums {
				sums[i] += part[i]
			}
			mu <- struct{}{}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for c := 0; c < k; c++ {
			if cnt := sums[c*3+2]; cnt > 0 {
				cx[c] = sums[c*3] / cnt
				cy[c] = sums[c*3+1] / cnt
			}
		}
	}
	// Extract assignments: vertex v lives at node v%nodes, local v/nodes.
	values := make([]float64, g.NumVertices)
	err = cl.ParallelEach(func(n *cluster.Node) error {
		t := n.Main
		cnt := len(xs[n.ID])
		for i := 0; i < cnt; i++ {
			p, err := t.ArrGetObj(ptObjs[n.ID], i)
			if err != nil {
				return err
			}
			cv, err := t.GetField(p, "KPoint", "cluster")
			t.FreeObj(p)
			if err != nil {
				return err
			}
			values[i*nodes+n.ID] = float64(int32(cv))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := resultFrom(cl, start)
	res.Values = values
	cents := make([][2]float64, k)
	for c := 0; c < k; c++ {
		cents[c] = [2]float64{cx[c], cy[c]}
	}
	res.Centroids = cents
	return res, nil
}
