package load

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"repro/internal/bench"
	"repro/internal/obs"
)

// ReportSchema versions the load-report format.
const ReportSchema = "facade.load/v1"

// Report is one load run's full record: the plan echo, the throughput and
// latency headline, backpressure and memory health, the queue-depth
// trace, and the deterministic per-job results digest.
type Report struct {
	Schema string `json:"schema"`

	Seed    int64   `json:"seed"`
	Jobs    int     `json:"jobs"`
	Clients int     `json:"clients"`
	Tenants int     `json:"tenants"`
	Rate    float64 `json:"rate,omitempty"` // 0 = closed loop
	Mode    string  `json:"mode"`           // "closed" or "open"

	WallNS     int64   `json:"wall_ns"`
	JobsPerSec float64 `json:"jobs_per_sec"`

	LatencyP50NS int64 `json:"latency_p50_ns"`
	LatencyP95NS int64 `json:"latency_p95_ns"`
	LatencyP99NS int64 `json:"latency_p99_ns"`
	LatencyMinNS int64 `json:"latency_min_ns"`
	LatencyMaxNS int64 `json:"latency_max_ns"`
	LatencyMADNS int64 `json:"latency_mad_ns"`

	Rejections    int64   `json:"rejections"`     // 429/503 answers absorbed
	ClientRetries int64   `json:"client_retries"` // resubmits those caused
	WarmHitRate   float64 `json:"warm_hit_rate"`
	GCPauseShare  float64 `json:"gc_pause_share"` // Σ gc pause / Σ run time
	OMECount      int     `json:"ome_count"`
	OMERate       float64 `json:"ome_rate"`

	States map[string]int `json:"states"` // terminal state → count

	QueueMaxDepth int      `json:"queue_max_depth"` // max queued+running seen
	Samples       []Sample `json:"samples,omitempty"`

	// ResultsDigest is the sha256 over WriteResults' lines: the
	// deterministic fingerprint of every job's (plan, state, output).
	ResultsDigest string      `json:"results_digest"`
	Results       []JobResult `json:"results,omitempty"`
}

func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func buildReport(cfg Config, results []JobResult, samples []Sample, wallNS int64, rejected, retries int64) *Report {
	r := &Report{
		Schema:  ReportSchema,
		Seed:    cfg.Seed,
		Jobs:    len(results),
		Clients: cfg.Clients,
		Tenants: cfg.Tenants,
		Rate:    cfg.Rate,
		Mode:    "closed",
		WallNS:  wallNS,

		Rejections:    rejected,
		ClientRetries: retries,
		States:        map[string]int{},
		Samples:       samples,
		Results:       results,
	}
	if cfg.Rate > 0 {
		r.Mode = "open"
	}
	if wallNS > 0 {
		r.JobsPerSec = float64(len(results)) / (float64(wallNS) / 1e9)
	}

	lat := make([]int64, 0, len(results))
	var warm, gcNS, runNS int64
	for _, jr := range results {
		lat = append(lat, jr.LatencyNS)
		r.States[jr.State]++
		if jr.WarmHit {
			warm++
		}
		if jr.OME {
			r.OMECount++
		}
		gcNS += jr.gcNS
		runNS += jr.runNS
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if n := len(lat); n > 0 {
		r.LatencyMinNS = lat[0]
		r.LatencyMaxNS = lat[n-1]
		r.LatencyP50NS = percentile(lat, 0.50)
		r.LatencyP95NS = percentile(lat, 0.95)
		r.LatencyP99NS = percentile(lat, 0.99)
		dev := make([]int64, n)
		for i, v := range lat {
			d := v - r.LatencyP50NS
			if d < 0 {
				d = -d
			}
			dev[i] = d
		}
		sort.Slice(dev, func(i, j int) bool { return dev[i] < dev[j] })
		r.LatencyMADNS = percentile(dev, 0.50)
		r.WarmHitRate = float64(warm) / float64(n)
		r.OMERate = float64(r.OMECount) / float64(n)
	}
	if runNS > 0 {
		r.GCPauseShare = float64(gcNS) / float64(runNS)
	}
	for _, s := range samples {
		if d := s.Queued + s.Running; d > r.QueueMaxDepth {
			r.QueueMaxDepth = d
		}
	}
	r.ResultsDigest = digest(results)
	return r
}

func digest(results []JobResult) string {
	h := sha256.New()
	for _, jr := range results {
		writeResultLine(h, jr)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeResultLine(w io.Writer, jr JobResult) {
	// Deliberately excludes job IDs (assigned in arrival order, which
	// races) and error text (carries attempt counts and timing); state +
	// output hash is the deterministic contract.
	fmt.Fprintf(w, "%d|%s|%s|%d|%s|%s\n",
		jr.Index, jr.Scenario, jr.Tenant, jr.Seed, jr.State, jr.OutputSHA)
}

// WriteResults writes one line per job — the material ResultsDigest
// hashes. Two same-seed runs must produce byte-identical output here;
// the CI load smoke diffs these files directly.
func (r *Report) WriteResults(w io.Writer) error {
	for _, jr := range r.Results {
		if _, err := fmt.Fprintf(w, "%d|%s|%s|%d|%s|%s\n",
			jr.Index, jr.Scenario, jr.Tenant, jr.Seed, jr.State, jr.OutputSHA); err != nil {
			return err
		}
	}
	return nil
}

// Encode writes the report as deterministic JSON (sorted keys, stable
// float formatting); the measured values inside still vary run to run.
func (r *Report) Encode(w io.Writer) error {
	return obs.EncodeDeterministic(w, r)
}

// BenchCases renders the run as facade.bench/v1 sustained cases so the
// existing -baseline/-tolerance machinery gates scale regressions:
//
//	sustained/<profile>/latency  — median submit→done latency (MedianNS),
//	                               with p95/p99 and backpressure counters
//	                               carried as metrics
//	sustained/<profile>/job-cost — wall time per job (MedianNS), the
//	                               inverse of sustained throughput
//
// The profile names the workload shape (e.g. "smoke", "mixed-300") so
// differently-shaped runs never gate against each other's numbers.
func (r *Report) BenchCases(profile string) []bench.Result {
	latency := bench.Result{
		Name:     "sustained/" + profile + "/latency",
		Reps:     r.Jobs,
		MedianNS: r.LatencyP50NS,
		MADNS:    r.LatencyMADNS,
		MinNS:    r.LatencyMinNS,
		MaxNS:    r.LatencyMaxNS,
		Metrics: map[string]float64{
			"p95_ns":         float64(r.LatencyP95NS),
			"p99_ns":         float64(r.LatencyP99NS),
			"rejections":     float64(r.Rejections),
			"warm_hit_rate":  r.WarmHitRate,
			"gc_pause_share": r.GCPauseShare,
			"ome_rate":       r.OMERate,
		},
	}
	cost := bench.Result{
		Name:     "sustained/" + profile + "/job-cost",
		Reps:     r.Jobs,
		MedianNS: 0,
		MADNS:    r.LatencyMADNS,
		MinNS:    r.LatencyMinNS,
		MaxNS:    r.LatencyMaxNS,
		Metrics: map[string]float64{
			"jobs_per_sec":    r.JobsPerSec,
			"queue_max_depth": float64(r.QueueMaxDepth),
		},
	}
	if r.Jobs > 0 {
		cost.MedianNS = r.WallNS / int64(r.Jobs)
	}
	return []bench.Result{latency, cost}
}
