package load

// Every seeded scenario the load harness can drive must pass facade.Vet:
// both P and P' verify, the facade-safety linter is silent, and the
// lifetime pass classifies at least one site per program. kmeans and
// wordcount allocate per-iteration scratch, so those must show
// epoch-local sites; pagerank and randomwalk keep their scratch in vertex
// fields and allocate nothing inside the boundary.

import (
	"testing"

	"repro/facade"
)

func TestScenariosVetClean(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			r, err := facade.Vet(sc.Sources, facade.VetLifetimes())
			if err != nil {
				t.Fatalf("vet %s: %v", sc.Name, err)
			}
			if !r.Clean() {
				t.Fatalf("%s does not vet clean:\nverify: %v\ndiagnostics: %v",
					sc.Name, r.VerifyErrs, r.Diagnostics)
			}
			if r.VerifiedFuncs == 0 {
				t.Fatalf("%s: no functions verified", sc.Name)
			}
			if len(r.Lifetimes) == 0 {
				t.Fatalf("%s: lifetime pass classified no sites", sc.Name)
			}
			if sc.Name == "kmeans" || sc.Name == "wordcount" {
				if r.LifetimeCounts["epoch-local"] == 0 {
					t.Errorf("%s: no epoch-local site found; counts = %v (allocates per-iteration scratch)",
						sc.Name, r.LifetimeCounts)
				}
			}
		})
	}
}
