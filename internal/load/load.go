// Package load is the sustained-throughput instrument for the repro
// daemon: a deterministic, seed-driven workload generator that drives a
// live facade.job/v1 server with many concurrent simulated clients across
// mixed scenarios and tenants, open- or closed-loop, and reports jobs/s,
// latency percentiles, queue depth over time, backpressure (429/retry)
// counts, GC pause share, and OME rate.
//
// Determinism contract: the job plan — which scenario, tenant, Sys.rand
// seed, fault schedule, and page quota job k gets — is a pure function of
// (Config.Seed, k), and every scenario's output is a pure function of its
// seed. Two runs with the same seed therefore produce bit-identical
// per-job outputs (Report.ResultsDigest) no matter how the daemon
// interleaves them; only the timing sections of the report differ. That
// is what lets the CI load smoke assert correctness under load, and what
// makes the sustained facade.bench/v1 section a regression gate rather
// than a one-off measurement (docs/PERFORMANCE.md).
package load

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// Config shapes one load run.
type Config struct {
	// Seed drives the whole job plan; same seed, same plan, same outputs.
	Seed int64
	// Jobs is the total number of jobs to push through the daemon.
	Jobs int
	// Clients is the number of concurrent simulated clients: in closed
	// loop each client runs submit→wait→submit; in open loop it caps the
	// number of in-flight jobs (default 16).
	Clients int
	// Rate switches to open loop: arrivals are scheduled at this many
	// jobs per second regardless of completions (0 = closed loop).
	Rate float64
	// Tenants spreads jobs across this many tenants, "tenant-0" ..
	// "tenant-N" (default 1), exercising per-tenant budget accounting.
	Tenants int
	// Mix weights the scenario selection by name (nil = every built-in
	// scenario at weight 1). Unknown names are an error.
	Mix map[string]int
	// FaultEvery gives every Nth job a deterministic injected-fault
	// schedule plus a 3-attempt retry budget (0 = no faults).
	FaultEvery int
	// QuotaEvery gives every Nth job a 1-page off-heap quota, forcing a
	// deterministic quota failure that feeds the OME-rate metric (0 =
	// never).
	QuotaEvery int
	// MaxRetries bounds client-side resubmits per job when the daemon
	// answers 429/503 (default 16).
	MaxRetries int
	// SampleEvery is the queue-depth sampling interval (default 100ms).
	SampleEvery time.Duration
	// Progress receives one line per 100 completed jobs when non-nil.
	Progress io.Writer
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Jobs <= 0 {
		out.Jobs = 100
	}
	if out.Clients <= 0 {
		out.Clients = 16
	}
	if out.Tenants <= 0 {
		out.Tenants = 1
	}
	if out.MaxRetries == 0 {
		out.MaxRetries = 16
	}
	if out.SampleEvery <= 0 {
		out.SampleEvery = 100 * time.Millisecond
	}
	if out.Mix == nil {
		out.Mix = map[string]int{}
		for _, s := range Scenarios() {
			out.Mix[s.Name] = 1
		}
	}
	for name, w := range out.Mix {
		if _, ok := ScenarioByName(name); !ok {
			return out, fmt.Errorf("load: unknown scenario %q in mix", name)
		}
		if w <= 0 {
			return out, fmt.Errorf("load: non-positive weight %d for scenario %q", w, name)
		}
	}
	return out, nil
}

// JobPlan is the deterministic part of one job: everything decided before
// the job touches the daemon.
type JobPlan struct {
	Index    int    `json:"index"`
	Scenario string `json:"scenario"`
	Tenant   string `json:"tenant"`
	Seed     int64  `json:"seed"`
	Faults   string `json:"faults,omitempty"`
	Quota    int64  `json:"quota,omitempty"`
}

// JobResult is one job's outcome. State and OutputSHA are deterministic
// for a given plan; the latency and retry fields are measurements.
type JobResult struct {
	JobPlan
	State     string `json:"state"`
	OutputSHA string `json:"output_sha"`
	ErrorKind string `json:"error_kind,omitempty"`
	OME       bool   `json:"ome,omitempty"`

	LatencyNS int64 `json:"latency_ns"` // first submit attempt → terminal status
	Rejected  int   `json:"rejected"`   // 429/503 rejections absorbed
	WarmHit   bool  `json:"warm_hit"`
	Attempts  int   `json:"attempts"` // server-side execution attempts

	gcNS  int64 // GC pause time inside the job's VM
	runNS int64 // wall time the job spent executing
}

// Sample is one queue-depth observation.
type Sample struct {
	OffsetMS int64 `json:"t_ms"`
	Queued   int   `json:"queued"`
	Running  int   `json:"running"`
}

// splitmix64 is the repo's standard deterministic hash for decorrelated
// per-index values (same construction as the daemon's retry jitter).
func splitmix64(seed int64, k int64) uint64 {
	z := uint64(seed) + uint64(k)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Plan computes job k's deterministic assignment under cfg. Exported so
// tests (and tooling) can verify the plan is a pure function of the seed.
func Plan(cfg Config, k int) JobPlan {
	cfg, err := cfg.withDefaults()
	if err != nil {
		panic(err) // mix validated by Run before Plan is used
	}
	return plan(cfg, k)
}

func plan(cfg Config, k int) JobPlan {
	names := make([]string, 0, len(cfg.Mix))
	for n := range cfg.Mix {
		names = append(names, n)
	}
	sort.Strings(names)
	total := 0
	for _, n := range names {
		total += cfg.Mix[n]
	}
	h := splitmix64(cfg.Seed, int64(k)*4+1)
	pick := int(h % uint64(total))
	scenario := names[len(names)-1]
	for _, n := range names {
		if pick < cfg.Mix[n] {
			scenario = n
			break
		}
		pick -= cfg.Mix[n]
	}
	p := JobPlan{
		Index:    k,
		Scenario: scenario,
		Tenant:   fmt.Sprintf("tenant-%d", splitmix64(cfg.Seed, int64(k)*4+2)%uint64(cfg.Tenants)),
		Seed:     int64(splitmix64(cfg.Seed, int64(k)*4+3) % 1_000_000),
	}
	if cfg.QuotaEvery > 0 && (k+1)%cfg.QuotaEvery == 0 {
		p.Quota = 1
	} else if cfg.FaultEvery > 0 && (k+1)%cfg.FaultEvery == 0 {
		p.Faults = fmt.Sprintf("alloc=0.0005,page=0.0005,seed=%d",
			splitmix64(cfg.Seed, int64(k)*4+4)%1_000_000)
	}
	return p
}

func (p JobPlan) request() server.SubmitRequest {
	sc, _ := ScenarioByName(p.Scenario)
	seed := p.Seed
	req := server.SubmitRequest{
		Tenant:    p.Tenant,
		Sources:   sc.Sources,
		Transform: sc.Transform,
		HeapSize:  sc.HeapSize,
		RandSeed:  &seed,
		PageQuota: p.Quota,
		Faults:    p.Faults,
	}
	if p.Faults != "" {
		req.MaxAttempts = 3
	}
	return req
}

// Run drives the daemon behind c with cfg's workload and collects the
// report. Jobs whose daemon conversation fails at the transport or
// protocol layer abort the run — under a healthy daemon every job ends
// in a terminal state, even a rejected or faulted one.
func Run(c *server.Client, cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}

	results := make([]JobResult, cfg.Jobs)
	var rejected, clientRetries atomic.Int64
	var completed atomic.Int64
	var firstErr atomic.Pointer[error]
	fail := func(err error) {
		e := err
		firstErr.CompareAndSwap(nil, &e)
	}

	runOne := func(k int) {
		p := plan(cfg, k)
		req := p.request()
		start := time.Now()
		var rej int
		resp, err := c.SubmitWithRetry(req, server.SubmitOptions{
			MaxRetries: cfg.MaxRetries,
			Seed:       cfg.Seed ^ int64(k),
			OnReject: func(*server.RejectedError) {
				rej++
				rejected.Add(1)
				clientRetries.Add(1)
			},
		})
		if err != nil {
			fail(fmt.Errorf("load: job %d (%s) submit: %w", k, p.Scenario, err))
			return
		}
		st, err := c.Wait(resp.JobID)
		if err != nil {
			fail(fmt.Errorf("load: job %d (%s) wait: %w", k, p.Scenario, err))
			return
		}
		sum := sha256.Sum256([]byte(st.Output))
		r := JobResult{
			JobPlan:   p,
			State:     st.State,
			OutputSHA: hex.EncodeToString(sum[:]),
			ErrorKind: st.ErrorKind,
			OME: st.State == server.StateFailed &&
				(strings.Contains(st.Error, "OutOfMemoryError") || strings.Contains(st.Error, "quota")),
			LatencyNS: time.Since(start).Nanoseconds(),
			Rejected:  rej,
			WarmHit:   st.WarmHit,
			Attempts:  st.Attempt,
		}
		if st.Stats != nil {
			r.gcNS = int64(st.Stats.Heap.GCTime)
		}
		r.runNS = st.RunningNanos
		results[k] = r
		if n := completed.Add(1); cfg.Progress != nil && n%100 == 0 {
			fmt.Fprintf(cfg.Progress, "load: %d/%d jobs done\n", n, cfg.Jobs)
		}
	}

	// Queue-depth sampler: polls GET /v1/status until the run completes.
	samples := make([]Sample, 0, 256)
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	wallStart := time.Now()
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(cfg.SampleEvery)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				st, err := c.Status()
				if err != nil {
					continue
				}
				if len(samples) < 4096 {
					samples = append(samples, Sample{
						OffsetMS: time.Since(wallStart).Milliseconds(),
						Queued:   st.JobsQueued,
						Running:  st.JobsRunning,
					})
				}
			}
		}
	}()

	var wg sync.WaitGroup
	if cfg.Rate > 0 {
		// Open loop: arrivals on a fixed schedule, decoupled from
		// completions; Clients caps in-flight work (a saturated daemon
		// stalls the arrival, which the report shows as rising latency).
		slots := make(chan struct{}, cfg.Clients)
		for k := 0; k < cfg.Jobs; k++ {
			target := wallStart.Add(time.Duration(float64(k) / cfg.Rate * float64(time.Second)))
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
			slots <- struct{}{}
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				defer func() { <-slots }()
				runOne(k)
			}(k)
		}
	} else {
		// Closed loop: each client owns the indices congruent to its id
		// and runs them back to back.
		for w := 0; w < cfg.Clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := w; k < cfg.Jobs; k += cfg.Clients {
					if firstErr.Load() != nil {
						return
					}
					runOne(k)
				}
			}(w)
		}
	}
	wg.Wait()
	wallNS := time.Since(wallStart).Nanoseconds()
	close(stopSampler)
	<-samplerDone

	if ep := firstErr.Load(); ep != nil {
		return nil, *ep
	}
	return buildReport(cfg, results, samples, wallNS,
		rejected.Load(), clientRetries.Load()), nil
}
