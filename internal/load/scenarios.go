package load

import "sort"

// Scenario is one workload the generator can drive through the daemon: a
// self-contained FJ program whose output depends only on the job's
// Sys.rand seed, so any two runs of the same (scenario, seed) pair are
// bit-identical however they are scheduled. The four built-ins are the
// daemon-sized miniatures of the repo's evaluation corpus: GraphChi
// PageRank, Hyracks WordCount, GPS k-means, and GPS RandomWalk.
type Scenario struct {
	Name      string
	Sources   map[string]string
	Transform bool // run the FACADE transform (program P')
	HeapSize  int  // per-job managed heap reservation (bytes)
}

var scenarios = map[string]Scenario{
	"pagerank": {
		Name:      "pagerank",
		Sources:   map[string]string{"pagerank.fj": pagerankSrc},
		Transform: true,
		HeapSize:  8 << 20,
	},
	"wordcount": {
		Name:      "wordcount",
		Sources:   map[string]string{"wordcount.fj": wordcountSrc},
		Transform: true,
		HeapSize:  8 << 20,
	},
	"kmeans": {
		Name:      "kmeans",
		Sources:   map[string]string{"kmeans.fj": kmeansSrc},
		Transform: true,
		HeapSize:  8 << 20,
	},
	"randomwalk": {
		Name:      "randomwalk",
		Sources:   map[string]string{"randomwalk.fj": randomwalkSrc},
		Transform: true,
		HeapSize:  8 << 20,
	},
}

// Scenarios returns the built-in scenarios sorted by name.
func Scenarios() []Scenario {
	out := make([]Scenario, 0, len(scenarios))
	for _, s := range scenarios {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ScenarioByName looks up a built-in scenario.
func ScenarioByName(name string) (Scenario, bool) {
	s, ok := scenarios[name]
	return s, ok
}

// pagerankSrc: PageRank over a seeded random graph — a ring for
// connectivity plus Sys.rand chords, 6 supersteps with iteration-scoped
// scratch. Output is the final rank mass times 1e6, truncated, so runs
// with different seeds print different integers.
const pagerankSrc = `
// facadec: data=Vertex,Main
class Vertex {
    double rank;
    double next;
    int[] out;
    int deg;
    Vertex(int cap) {
        this.rank = 1.0;
        this.next = 0.0;
        this.out = new int[cap];
        this.deg = 0;
    }
    void edge(int to) {
        this.out[this.deg] = to;
        this.deg = this.deg + 1;
    }
}
class Main {
    static void main() {
        int n = 24;
        Vertex[] g = new Vertex[n];
        for (int i = 0; i < n; i = i + 1) {
            g[i] = new Vertex(4);
        }
        for (int i = 0; i < n; i = i + 1) {
            g[i].edge((i + 1) % n);
        }
        for (int i = 0; i < n; i = i + 1) {
            int to = Sys.rand(n);
            if (to != i) {
                g[i].edge(to);
            }
        }
        for (int s = 0; s < 6; s = s + 1) {
            Sys.iterStart();
            for (int i = 0; i < n; i = i + 1) {
                Vertex v = g[i];
                double share = v.rank / (double) v.deg;
                for (int e = 0; e < v.deg; e = e + 1) {
                    g[v.out[e]].next = g[v.out[e]].next + share;
                }
            }
            for (int i = 0; i < n; i = i + 1) {
                g[i].rank = 0.15 + 0.85 * g[i].next;
                g[i].next = 0.0;
            }
            Sys.iterEnd();
        }
        double mass = 0.0;
        for (int i = 0; i < n; i = i + 1) {
            mass = mass + g[i].rank * (double) (i + 1);
        }
        Sys.println((long) (mass * 1000000.0));
    }
}
`

// wordcountSrc: WordCount over a seeded stream — 240 draws from a fixed
// vocabulary, counted in a linear table inside one iteration boundary
// (the Table 3 shape). Prints a positional checksum of the counts.
const wordcountSrc = `
// facadec: data=Word,Main
class Word {
    String text;
    int count;
    Word(String text) {
        this.text = text;
        this.count = 1;
    }
}
class Main {
    static int add(Word[] table, int n, String t) {
        for (int i = 0; i < n; i = i + 1) {
            if (table[i].text.equals(t)) {
                table[i].count = table[i].count + 1;
                return n;
            }
        }
        table[n] = new Word(t);
        return n + 1;
    }
    static void main() {
        String[] vocab = new String[8];
        vocab[0] = "map";
        vocab[1] = "reduce";
        vocab[2] = "shuffle";
        vocab[3] = "page";
        vocab[4] = "facade";
        vocab[5] = "heap";
        vocab[6] = "iterate";
        vocab[7] = "bound";
        Sys.iterStart();
        Word[] table = new Word[8];
        int n = 0;
        for (int i = 0; i < 240; i = i + 1) {
            n = Main.add(table, n, vocab[Sys.rand(8)]);
        }
        long sum = 0L;
        for (int i = 0; i < n; i = i + 1) {
            sum = sum + (long) table[i].count * (long) (i + 1);
        }
        Sys.println(sum);
        Sys.iterEnd();
    }
}
`

// kmeansSrc: k-means over seeded points — 36 points drawn with Sys.rand,
// 3 centroids, 5 iterations with per-iteration accumulator scratch (the
// GPS shape). Prints the final assignment checksum.
const kmeansSrc = `
// facadec: data=Point,Main
class Point {
    double x;
    double y;
    int cluster;
    Point(double x, double y) {
        this.x = x;
        this.y = y;
        this.cluster = 0;
    }
}
class Main {
    static void main() {
        int n = 36;
        int k = 3;
        Point[] pts = new Point[n];
        for (int i = 0; i < n; i = i + 1) {
            pts[i] = new Point((double) Sys.rand(1000) * 0.01, (double) Sys.rand(1000) * 0.01);
        }
        double[] cx = new double[k];
        double[] cy = new double[k];
        for (int c = 0; c < k; c = c + 1) {
            cx[c] = (double) (c * 4);
            cy[c] = (double) (c * 4);
        }
        for (int it = 0; it < 5; it = it + 1) {
            Sys.iterStart();
            double[] sx = new double[k];
            double[] sy = new double[k];
            int[] cnt = new int[k];
            for (int i = 0; i < n; i = i + 1) {
                Point p = pts[i];
                int best = 0;
                double bd = 1.0e18;
                for (int c = 0; c < k; c = c + 1) {
                    double dx = p.x - cx[c];
                    double dy = p.y - cy[c];
                    double d = dx * dx + dy * dy;
                    if (d < bd) {
                        bd = d;
                        best = c;
                    }
                }
                p.cluster = best;
                sx[best] = sx[best] + p.x;
                sy[best] = sy[best] + p.y;
                cnt[best] = cnt[best] + 1;
            }
            for (int c = 0; c < k; c = c + 1) {
                if (cnt[c] > 0) {
                    cx[c] = sx[c] / (double) cnt[c];
                    cy[c] = sy[c] / (double) cnt[c];
                }
            }
            Sys.iterEnd();
        }
        long sum = 0L;
        for (int i = 0; i < n; i = i + 1) {
            sum = sum + (long) ((pts[i].cluster + 1) * (i + 1));
        }
        Sys.println(sum);
    }
}
`

// randomwalkSrc: seeded random walks over a small graph — 48 walkers, 16
// steps each, visit counts accumulated per node (the GPS RandomWalk
// shape). Every step consumes Sys.rand, so the output is a deep function
// of the seed.
const randomwalkSrc = `
// facadec: data=Node,Main
class Node {
    int[] out;
    int deg;
    long visits;
    Node(int cap) {
        this.out = new int[cap];
        this.deg = 0;
        this.visits = 0L;
    }
    void edge(int to) {
        this.out[this.deg] = to;
        this.deg = this.deg + 1;
    }
}
class Main {
    static void main() {
        int n = 20;
        Node[] g = new Node[n];
        for (int i = 0; i < n; i = i + 1) {
            g[i] = new Node(3);
        }
        for (int i = 0; i < n; i = i + 1) {
            g[i].edge((i + 1) % n);
            g[i].edge((i + 7) % n);
        }
        for (int w = 0; w < 48; w = w + 1) {
            Sys.iterStart();
            int at = Sys.rand(n);
            for (int s = 0; s < 16; s = s + 1) {
                Node cur = g[at];
                at = cur.out[Sys.rand(cur.deg)];
                g[at].visits = g[at].visits + 1L;
            }
            Sys.iterEnd();
        }
        long sum = 0L;
        for (int i = 0; i < n; i = i + 1) {
            sum = sum + g[i].visits * (long) (i + 1);
        }
        Sys.println(sum);
    }
}
`
