package load

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func newDaemon(t *testing.T, cfg server.Config) *server.Client {
	t.Helper()
	if cfg.JournalPath == "" {
		cfg.JournalPath = "none"
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, stop := context.WithTimeout(context.Background(), 30*time.Second)
		defer stop()
		s.Shutdown(ctx)
	})
	return &server.Client{BaseURL: "http://" + s.Addr()}
}

// TestPlanIsPure: the job plan must be a pure function of (seed, index) —
// same inputs, same assignment — and actually spread work across the
// configured scenarios and tenants.
func TestPlanIsPure(t *testing.T) {
	cfg := Config{Seed: 7, Jobs: 64, Tenants: 3, QuotaEvery: 16, FaultEvery: 5}
	scenarios := map[string]bool{}
	tenants := map[string]bool{}
	quotas, faults := 0, 0
	for k := 0; k < 64; k++ {
		p := Plan(cfg, k)
		if again := Plan(cfg, k); again != p {
			t.Fatalf("plan(%d) not pure: %+v vs %+v", k, p, again)
		}
		scenarios[p.Scenario] = true
		tenants[p.Tenant] = true
		if p.Quota > 0 {
			quotas++
		}
		if p.Faults != "" {
			faults++
		}
	}
	if len(scenarios) != len(Scenarios()) {
		t.Fatalf("64 jobs hit %d/%d scenarios", len(scenarios), len(Scenarios()))
	}
	if len(tenants) != 3 {
		t.Fatalf("64 jobs hit %d/3 tenants", len(tenants))
	}
	if quotas != 4 {
		t.Fatalf("QuotaEvery=16 gave %d quota jobs in 64, want 4", quotas)
	}
	if faults == 0 {
		t.Fatal("FaultEvery=5 produced no fault schedules")
	}
	if p := Plan(Config{Seed: 8, Jobs: 64, Tenants: 3}, 0); p == Plan(cfg, 0) {
		t.Fatal("different seeds produced identical plans")
	}
}

// TestRunDeterministicAcrossRuns is the harness's core contract: two runs
// with the same seed against a live daemon — concurrent clients, mixed
// scenarios, multiple tenants, injected quota failures — produce
// bit-identical per-job results, however the daemon interleaved them.
func TestRunDeterministicAcrossRuns(t *testing.T) {
	c := newDaemon(t, server.Config{MaxConcurrent: 4})
	cfg := Config{
		Seed:       42,
		Jobs:       24,
		Clients:    6,
		Tenants:    3,
		QuotaEvery: 12,
		FaultEvery: 7,
	}

	first, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if first.ResultsDigest != second.ResultsDigest {
		t.Fatalf("same seed, different digests:\n  %s\n  %s", first.ResultsDigest, second.ResultsDigest)
	}
	var a, b bytes.Buffer
	if err := first.WriteResults(&a); err != nil {
		t.Fatal(err)
	}
	if err := second.WriteResults(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("results files differ:\n%s\nvs\n%s", a.String(), b.String())
	}

	// And a different seed must actually change the outputs.
	other, err := Run(c, Config{Seed: 43, Jobs: 24, Clients: 6, Tenants: 3, QuotaEvery: 12, FaultEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	if other.ResultsDigest == first.ResultsDigest {
		t.Fatal("different seeds produced identical results digests")
	}

	// Sanity on the report itself.
	if first.Jobs != 24 || first.Mode != "closed" {
		t.Fatalf("report echo wrong: jobs=%d mode=%s", first.Jobs, first.Mode)
	}
	if first.States[server.StateDone] == 0 {
		t.Fatalf("no jobs completed: states=%v", first.States)
	}
	// Jobs 12 and 24 ran under a 1-page quota and must have failed
	// deterministically, feeding the OME-rate metric.
	if first.OMECount != 2 {
		t.Fatalf("OMECount = %d, want 2 quota deaths (states=%v)", first.OMECount, first.States)
	}
	if first.LatencyP50NS <= 0 || first.LatencyP99NS < first.LatencyP50NS {
		t.Fatalf("latency percentiles inconsistent: p50=%d p99=%d", first.LatencyP50NS, first.LatencyP99NS)
	}
	if first.JobsPerSec <= 0 {
		t.Fatalf("jobs/s = %v", first.JobsPerSec)
	}
}

// TestRunOpenLoop: rate-paced arrivals complete and report open-loop mode
// with queue-depth samples.
func TestRunOpenLoop(t *testing.T) {
	c := newDaemon(t, server.Config{MaxConcurrent: 2})
	rep, err := Run(c, Config{
		Seed:        5,
		Jobs:        8,
		Clients:     4,
		Rate:        50,
		SampleEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Fatalf("mode = %s, want open", rep.Mode)
	}
	if rep.States[server.StateDone] != 8 {
		t.Fatalf("states = %v, want 8 done", rep.States)
	}
	if len(rep.Samples) == 0 {
		t.Fatal("no queue-depth samples collected")
	}
}

// TestBenchCases: the sustained section must carry the gate-relevant
// numbers under stable names.
func TestBenchCases(t *testing.T) {
	rep := &Report{
		Jobs:         10,
		WallNS:       1_000_000_000,
		LatencyP50NS: 40_000_000,
		LatencyMADNS: 3_000_000,
		LatencyP95NS: 80_000_000,
		LatencyP99NS: 90_000_000,
		JobsPerSec:   10,
	}
	cases := rep.BenchCases("smoke")
	if len(cases) != 2 {
		t.Fatalf("got %d cases", len(cases))
	}
	if cases[0].Name != "sustained/smoke/latency" || cases[0].MedianNS != 40_000_000 {
		t.Fatalf("latency case wrong: %+v", cases[0])
	}
	if cases[1].Name != "sustained/smoke/job-cost" || cases[1].MedianNS != 100_000_000 {
		t.Fatalf("job-cost case wrong: %+v", cases[1])
	}
	if cases[1].Metrics["jobs_per_sec"] != 10 {
		t.Fatalf("job-cost metrics: %v", cases[1].Metrics)
	}
}

// TestConfigValidation: unknown scenarios and bad weights are rejected
// up front, not midway through a run.
func TestConfigValidation(t *testing.T) {
	c := &server.Client{BaseURL: "http://127.0.0.1:1"} // never dialed
	if _, err := Run(c, Config{Mix: map[string]int{"nope": 1}}); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("unknown scenario not rejected: %v", err)
	}
	if _, err := Run(c, Config{Mix: map[string]int{"pagerank": 0}}); err == nil || !strings.Contains(err.Error(), "non-positive weight") {
		t.Fatalf("zero weight not rejected: %v", err)
	}
}
