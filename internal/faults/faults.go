// Package faults is the deterministic, seed-driven fault-injection layer
// of the runtime. Every place a real deployment can fail — a managed-heap
// allocation, an off-heap page acquire, a network frame in flight, a whole
// cluster node — is a named fault point that consults an Injector before
// doing its work. With no injector configured every check is a single nil
// test, so compiled-in injection costs nothing on the happy path.
//
// Determinism is the design center: a fixed Config.Seed must reproduce the
// exact same fault sequence run after run, or the fault-matrix tests (and
// any bug they catch) would not replay. Two firing modes provide this
// under concurrency:
//
//   - Counter-based points (Fire) draw from a per-point splitmix64 stream
//     advanced under a lock. They are deterministic when the point is
//     evaluated from a single goroutine — which holds for the per-node
//     heap and page-store injectors, since every cluster node gets its own
//     Injector derived with Config.ForNode.
//   - Keyed points (FireKeyed) hash the seed with a caller-supplied key
//     (for the network: from, to, sequence number, attempt) and are
//     deterministic regardless of goroutine interleaving, because the
//     decision depends only on the frame's identity, never on global
//     order.
//
// Whole-node crashes are planned, not sampled: CrashPlan maps the
// configured crash count onto concrete (occasion, node) pairs — a
// superstep for GPS, a phase for Hyracks — so "one mid-run crash" is
// guaranteed to land mid-run.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names one fault-injection site.
type Point string

// The runtime's fault points.
const (
	// HeapAlloc fails a managed-heap allocation with OutOfMemoryError
	// ahead of true exhaustion (counter-based, per-node injector).
	HeapAlloc Point = "heap.alloc"
	// PageAcquire fails an off-heap page acquire with ErrPageExhausted
	// (counter-based, per-node injector).
	PageAcquire Point = "offheap.page"
	// NetDrop loses a frame delivery attempt (keyed by frame identity and
	// attempt; the sender retries with backoff).
	NetDrop Point = "net.drop"
	// NetDup delivers a frame twice (keyed; the receiver dedups).
	NetDup Point = "net.dup"
	// NetDelay sleeps a frame for a keyed-uniform duration in
	// (0, Config.DelayMax].
	NetDelay Point = "net.delay"
	// NetReorder delivers a frame ahead of frames already queued.
	NetReorder Point = "net.reorder"
	// TierSpill fails a page spill to the disk tier (counter-based).
	// A failed spill is best-effort — the page stays resident and the
	// store degrades toward the quota/OME rungs of the ladder — so the
	// point models a full disk or a transient write error without ever
	// corrupting data.
	TierSpill Point = "offheap.tier_spill"
	// TierLoad fails a promotion read from the disk tier (counter-based).
	// Loads are not optional: the failure surfaces through the VM as a
	// typed error wrapping ErrPageExhausted, so engines walk the same
	// degradation ladder they use for memory exhaustion.
	TierLoad Point = "offheap.tier_load"
	// NodeCrash kills a whole node (planned via CrashPlan, not sampled).
	NodeCrash Point = "node.crash"
	// ServerCrash kills the whole daemon process at a scheduled journal
	// append (the repro serve crash-recovery smoke uses it to die
	// mid-batch deterministically, standing in for kill -9).
	ServerCrash Point = "server.crash"
)

// Config declares which faults to inject. The zero value injects nothing.
type Config struct {
	// Seed drives every pseudo-random decision. Two runs with the same
	// Config produce the same fault sequence.
	Seed int64

	// Drop, Dup, Reorder are per-delivery-attempt probabilities for the
	// corresponding network points.
	Drop    float64
	Dup     float64
	Reorder float64

	// DelayProb is the per-frame probability of an injected delay of
	// keyed-uniform length in (0, DelayMax]. Parse sets DelayProb to 1
	// when a "delay=<dur>" bound is given without an explicit "delayp=".
	DelayProb float64
	DelayMax  time.Duration

	// Crashes is the number of whole-node crashes to plan (see CrashPlan).
	Crashes int

	// AllocProb fails managed-heap allocations with that probability;
	// AllocAt fails exactly the AllocAt-th evaluation (1-based).
	AllocProb float64
	AllocAt   int64

	// PageProb / PageAt are the analogous controls for off-heap page
	// acquires.
	PageProb float64
	PageAt   int64

	// TierSpillProb / TierSpillAt fail disk-tier spill writes;
	// TierLoadProb / TierLoadAt fail disk-tier promotion reads.
	TierSpillProb float64
	TierSpillAt   int64
	TierLoadProb  float64
	TierLoadAt    int64

	// KillAt crashes the daemon process at exactly the KillAt-th journal
	// append (1-based) — the deterministic stand-in for SIGKILL that the
	// daemon crash-recovery smoke schedules via "killat=N".
	KillAt int64
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Reorder > 0 ||
		(c.DelayProb > 0 && c.DelayMax > 0) || c.Crashes > 0 ||
		c.AllocProb > 0 || c.AllocAt > 0 || c.PageProb > 0 || c.PageAt > 0 ||
		c.TierSpillProb > 0 || c.TierSpillAt > 0 ||
		c.TierLoadProb > 0 || c.TierLoadAt > 0 ||
		c.KillAt > 0
}

// ForNode derives the per-node variant of the config: same fault rates,
// node-unique seed, so each node's counter-based streams are independent
// but reproducible.
func (c Config) ForNode(node int) Config {
	d := c
	d.Seed = int64(uint64(c.Seed) ^ (uint64(node+1) * 0x9E3779B97F4A7C15))
	return d
}

// Parse reads a comma-separated fault spec, e.g.
//
//	drop=0.05,dup=0.02,delay=5ms,crash=1,seed=42
//
// Keys: drop, dup, reorder, delayp (probabilities in [0,1]); delay (max
// injected delay, a Go duration); crash (node crashes to plan); alloc /
// page (probabilities); allocat / pageat (1-based scheduled evaluation);
// seed (int). Unknown keys are errors so typos fail loudly.
func Parse(spec string) (Config, error) {
	var c Config
	c.Seed = 1
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return c, nil
	}
	delayProbSet := false
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return c, fmt.Errorf("faults: %q is not key=value", tok)
		}
		switch k {
		case "drop", "dup", "reorder", "delayp", "alloc", "page", "tierspill", "tierload":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return c, fmt.Errorf("faults: %s wants a probability in [0,1], got %q", k, v)
			}
			switch k {
			case "drop":
				c.Drop = p
			case "dup":
				c.Dup = p
			case "reorder":
				c.Reorder = p
			case "delayp":
				c.DelayProb = p
				delayProbSet = true
			case "alloc":
				c.AllocProb = p
			case "page":
				c.PageProb = p
			case "tierspill":
				c.TierSpillProb = p
			case "tierload":
				c.TierLoadProb = p
			}
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return c, fmt.Errorf("faults: delay wants a duration, got %q", v)
			}
			c.DelayMax = d
		case "crash":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return c, fmt.Errorf("faults: crash wants a count, got %q", v)
			}
			c.Crashes = n
		case "allocat", "pageat", "killat", "tierspillat", "tierloadat":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 1 {
				return c, fmt.Errorf("faults: %s wants a positive index, got %q", k, v)
			}
			switch k {
			case "allocat":
				c.AllocAt = n
			case "pageat":
				c.PageAt = n
			case "killat":
				c.KillAt = n
			case "tierspillat":
				c.TierSpillAt = n
			case "tierloadat":
				c.TierLoadAt = n
			}
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return c, fmt.Errorf("faults: seed wants an integer, got %q", v)
			}
			c.Seed = n
		default:
			return c, fmt.Errorf("faults: unknown key %q", k)
		}
	}
	if c.DelayMax > 0 && !delayProbSet {
		c.DelayProb = 1
	}
	return c, nil
}

// Crash is one planned whole-node crash: the node dies at the start of
// the given occasion (a GPS superstep, a Hyracks phase, ...).
type Crash struct {
	Occasion int
	Node     int
}

// Injector evaluates fault points against a Config. All methods are safe
// on a nil receiver (and report "no fault"), so layers hold a possibly-nil
// *Injector and pay one nil check when injection is off.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	states map[Point]*pointState
}

type pointState struct {
	rng   uint64 // splitmix64 state, advanced per evaluation
	evals int64
	fires int64
}

// New builds an injector for cfg, or nil when cfg is nil / injects
// nothing — callers can pass the result around unconditionally.
func New(cfg *Config) *Injector {
	if cfg == nil || !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: *cfg, states: make(map[Point]*pointState)}
}

// Config returns the injector's configuration (zero for nil).
func (i *Injector) Config() Config {
	if i == nil {
		return Config{}
	}
	return i.cfg
}

func (i *Injector) state(p Point) *pointState {
	s, ok := i.states[p]
	if !ok {
		s = &pointState{rng: uint64(i.cfg.Seed) ^ hashString(string(p))}
		i.states[p] = s
	}
	return s
}

// probAt returns the probability and 1-based schedule index for a
// counter-based point.
func (i *Injector) probAt(p Point) (float64, int64) {
	switch p {
	case HeapAlloc:
		return i.cfg.AllocProb, i.cfg.AllocAt
	case PageAcquire:
		return i.cfg.PageProb, i.cfg.PageAt
	case TierSpill:
		return i.cfg.TierSpillProb, i.cfg.TierSpillAt
	case TierLoad:
		return i.cfg.TierLoadProb, i.cfg.TierLoadAt
	case ServerCrash:
		return 0, i.cfg.KillAt
	case NetDrop:
		return i.cfg.Drop, 0
	case NetDup:
		return i.cfg.Dup, 0
	case NetReorder:
		return i.cfg.Reorder, 0
	case NetDelay:
		if i.cfg.DelayMax <= 0 {
			return 0, 0
		}
		return i.cfg.DelayProb, 0
	}
	return 0, 0
}

// Fire evaluates a counter-based point: it fires on the scheduled
// evaluation (if configured) or with the configured probability, drawn
// from the point's private deterministic stream.
func (i *Injector) Fire(p Point) bool {
	if i == nil {
		return false
	}
	prob, at := i.probAt(p)
	if prob == 0 && at == 0 {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	s := i.state(p)
	s.evals++
	fired := false
	if at > 0 && s.evals == at {
		fired = true
	}
	s.rng += 0x9E3779B97F4A7C15
	if !fired && prob > 0 && unit(mix(s.rng)) < prob {
		fired = true
	}
	if fired {
		s.fires++
	}
	return fired
}

// FireKeyed evaluates a keyed point: the decision is a pure function of
// (seed, point, key), so concurrent callers get reproducible answers.
// Fires are still counted for reporting.
func (i *Injector) FireKeyed(p Point, key uint64) bool {
	if i == nil {
		return false
	}
	prob, _ := i.probAt(p)
	if prob == 0 {
		return false
	}
	h := mix(uint64(i.cfg.Seed) ^ hashString(string(p)) ^ mix(key))
	fired := unit(h) < prob
	if fired {
		i.mu.Lock()
		s := i.state(p)
		s.fires++
		i.mu.Unlock()
	}
	return fired
}

// DelayKeyed returns the injected delay for a frame key: a keyed-uniform
// duration in (0, DelayMax]. Callers should have checked
// FireKeyed(NetDelay, key) first.
func (i *Injector) DelayKeyed(key uint64) time.Duration {
	if i == nil || i.cfg.DelayMax <= 0 {
		return 0
	}
	h := mix(uint64(i.cfg.Seed) ^ hashString("net.delay.len") ^ mix(key))
	d := time.Duration(unit(h) * float64(i.cfg.DelayMax))
	if d <= 0 {
		d = time.Nanosecond
	}
	return d
}

// CrashPlan maps Config.Crashes onto concrete (occasion, node) pairs for
// an engine with the given number of recovery occasions and nodes.
// Occasions are chosen mid-run — never occasion 0, so there is always a
// pre-crash state to checkpoint — and distinct while free occasions
// remain; nodes are chosen uniformly. The plan is a pure function of the
// seed, sorted by occasion.
func (i *Injector) CrashPlan(occasions, nodes int) []Crash {
	if i == nil || i.cfg.Crashes <= 0 || occasions < 2 || nodes < 1 {
		return nil
	}
	rng := uint64(i.cfg.Seed) ^ hashString("node.crash")
	used := make(map[int]bool)
	var plan []Crash
	for j := 0; j < i.cfg.Crashes; j++ {
		rng += 0x9E3779B97F4A7C15
		occ := 1 + int(mix(rng)%uint64(occasions-1))
		for tries := 0; used[occ] && tries < occasions; tries++ {
			occ = 1 + (occ % (occasions - 1))
		}
		used[occ] = true
		rng += 0x9E3779B97F4A7C15
		plan = append(plan, Crash{Occasion: occ, Node: int(mix(rng) % uint64(nodes))})
	}
	sort.Slice(plan, func(a, b int) bool { return plan[a].Occasion < plan[b].Occasion })
	return plan
}

// Fires returns how many times each point has fired so far, keyed by
// point name — the injection side of the books that recovery counters
// are audited against.
func (i *Injector) Fires() map[string]int64 {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[string]int64, len(i.states))
	for p, s := range i.states {
		if s.fires > 0 {
			out[string(p)] = s.fires
		}
	}
	return out
}

// mix is the splitmix64 output function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
