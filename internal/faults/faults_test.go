package faults

import (
	"testing"
	"time"
)

func TestParseFullSpec(t *testing.T) {
	c, err := Parse("drop=0.05,dup=0.02,delay=5ms,reorder=0.01,crash=1,alloc=0.001,page=0.002,allocat=7,pageat=9,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if c.Drop != 0.05 || c.Dup != 0.02 || c.Reorder != 0.01 {
		t.Fatalf("net probs: %+v", c)
	}
	if c.DelayMax != 5*time.Millisecond || c.DelayProb != 1 {
		t.Fatalf("delay: %+v", c)
	}
	if c.Crashes != 1 || c.AllocProb != 0.001 || c.PageProb != 0.002 {
		t.Fatalf("crash/alloc/page: %+v", c)
	}
	if c.AllocAt != 7 || c.PageAt != 9 || c.Seed != 42 {
		t.Fatalf("schedules/seed: %+v", c)
	}
	if !c.Enabled() {
		t.Fatal("spec should enable injection")
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"drop=2", "drop=x", "delay=fast", "crash=-1", "allocat=0", "bogus=1", "noequals"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestParseEmptyDisabled(t *testing.T) {
	c, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if c.Enabled() {
		t.Fatal("empty spec should not enable injection")
	}
	if New(&c) != nil {
		t.Fatal("disabled config should build a nil injector")
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var i *Injector
	if i.Fire(HeapAlloc) || i.FireKeyed(NetDrop, 9) || i.DelayKeyed(1) != 0 {
		t.Fatal("nil injector fired")
	}
	if i.CrashPlan(10, 4) != nil || i.Fires() != nil {
		t.Fatal("nil injector planned/counted")
	}
}

func TestCounterStreamDeterministic(t *testing.T) {
	run := func() []bool {
		inj := New(&Config{Seed: 7, AllocProb: 0.3})
		out := make([]bool, 200)
		for k := range out {
			out[k] = inj.Fire(HeapAlloc)
		}
		return out
	}
	a, b := run(), run()
	fires := 0
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("divergence at %d", k)
		}
		if a[k] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("implausible fire count %d/200 at p=0.3", fires)
	}
}

func TestScheduledFire(t *testing.T) {
	inj := New(&Config{Seed: 1, AllocAt: 5})
	for k := 1; k <= 10; k++ {
		got := inj.Fire(HeapAlloc)
		if got != (k == 5) {
			t.Fatalf("eval %d: fired=%v", k, got)
		}
	}
	if inj.Fires()[string(HeapAlloc)] != 1 {
		t.Fatalf("fires: %v", inj.Fires())
	}
}

func TestKeyedIndependentOfOrder(t *testing.T) {
	inj := New(&Config{Seed: 99, Drop: 0.4})
	// Same keys in different orders give the same per-key answers.
	keys := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	first := make(map[uint64]bool)
	for _, k := range keys {
		first[k] = inj.FireKeyed(NetDrop, k)
	}
	for j := len(keys) - 1; j >= 0; j-- {
		k := keys[j]
		if inj.FireKeyed(NetDrop, k) != first[k] {
			t.Fatalf("key %d changed answer", k)
		}
	}
}

func TestDelayKeyedWithinBound(t *testing.T) {
	inj := New(&Config{Seed: 3, DelayProb: 1, DelayMax: 5 * time.Millisecond})
	for k := uint64(0); k < 100; k++ {
		d := inj.DelayKeyed(k)
		if d <= 0 || d > 5*time.Millisecond {
			t.Fatalf("delay %v out of (0, 5ms]", d)
		}
	}
}

func TestCrashPlanMidRunAndDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Crashes: 2}
	p1 := New(&cfg).CrashPlan(8, 4)
	p2 := New(&cfg).CrashPlan(8, 4)
	if len(p1) != 2 {
		t.Fatalf("plan: %+v", p1)
	}
	for j, c := range p1 {
		if c != p2[j] {
			t.Fatalf("plans diverge: %+v vs %+v", p1, p2)
		}
		if c.Occasion < 1 || c.Occasion >= 8 {
			t.Fatalf("crash not mid-run: %+v", c)
		}
		if c.Node < 0 || c.Node >= 4 {
			t.Fatalf("bad node: %+v", c)
		}
	}
	if p1[0].Occasion == p1[1].Occasion {
		t.Fatalf("occasions should be distinct: %+v", p1)
	}
	if New(&Config{Seed: 11, Crashes: 1}).CrashPlan(1, 4) != nil {
		t.Fatal("single-occasion engine cannot host a mid-run crash")
	}
}

func TestForNodeDistinctStreams(t *testing.T) {
	base := Config{Seed: 5, AllocProb: 0.5}
	a := New(&Config{Seed: base.ForNode(0).Seed, AllocProb: 0.5})
	b := New(&Config{Seed: base.ForNode(1).Seed, AllocProb: 0.5})
	same := true
	for k := 0; k < 64; k++ {
		if a.Fire(HeapAlloc) != b.Fire(HeapAlloc) {
			same = false
		}
	}
	if same {
		t.Fatal("per-node streams identical")
	}
}

// TestKillAtSchedule pins the daemon-level crash point: killat=N fires
// server.crash on exactly the N-th evaluation — the deterministic SIGKILL
// stand-in the crash-recovery smoke schedules.
func TestKillAtSchedule(t *testing.T) {
	c, err := Parse("killat=3")
	if err != nil {
		t.Fatal(err)
	}
	if c.KillAt != 3 {
		t.Fatalf("KillAt = %d, want 3", c.KillAt)
	}
	if !c.Enabled() {
		t.Fatal("killat spec should enable injection")
	}
	i := New(&c)
	if i == nil {
		t.Fatal("killat spec built a nil injector")
	}
	for n := 1; n <= 6; n++ {
		fired := i.Fire(ServerCrash)
		if fired != (n == 3) {
			t.Fatalf("evaluation %d: fired=%v", n, fired)
		}
	}
	if _, err := Parse("killat=0"); err == nil {
		t.Fatal("killat=0 accepted")
	}
}
